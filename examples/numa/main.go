// NUMA example: the same scan and probe workload against a 1 GiB region
// placed with four different policies on a 4-socket machine. The one-line
// lesson of the keynote's NUMA discussion: an engine that does not know
// where its memory lives leaves 20–80% of the machine on the table.
package main

import (
	"fmt"

	"hwstar"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
)

func main() {
	m := hwstar.NUMA4S()
	fmt.Printf("machine: %s\n\n", m)

	const region = 1 << 30 // 1 GiB working set
	const probes = 1 << 22
	readerSocket := 0
	ctx := hw.DefaultContext()

	fmt.Println("placement                       scan GB/s-equiv   probe ns/access")
	type policyCase struct {
		name      string
		policy    mem.Policy
		allocNode int
	}
	for _, pc := range []policyCase{
		{"local (engine placed it)", mem.PolicyLocal, readerSocket},
		{"interleave (numactl -i all)", mem.PolicyInterleave, readerSocket},
		{"first-touch by loader thread", mem.PolicyFirstTouch, 3},
		{"remote (worst case)", mem.PolicyRemote, readerSocket},
	} {
		alloc := mem.NewNUMAAllocator(m, pc.policy)
		placement := alloc.Place(region, pc.allocNode)

		scanCycles := m.Cycles(mem.ReadWork("scan", placement, readerSocket), ctx)
		probeCycles := m.Cycles(mem.RandomReadWork("probe", placement, readerSocket, probes), ctx)

		scanSec := m.CyclesToSeconds(scanCycles)
		probeNs := m.CyclesToSeconds(probeCycles/probes) * 1e9
		fmt.Printf("%-31s %8.1f          %8.1f\n",
			pc.name, float64(region)/scanSec/1e9, probeNs)
	}

	fmt.Println("\nthe scheduler's task pinning (sched.PinRoundRobin) plus local placement keeps")
	fmt.Println("both numbers at the top row; everything else is silent performance loss.")
}
