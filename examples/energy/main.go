// Energy example: the same nightly batch job executed under three DVFS
// policies on a server with a deep idle state. Where the job's cycles go
// (compute vs memory stalls) decides which policy wins — the knob most
// schedulers never look at.
package main

import (
	"fmt"

	"hwstar/internal/energy"
	"hwstar/internal/hw"
)

func main() {
	m := hw.Server2S()
	model := energy.NewModel(m)
	fmt.Printf("machine: %s\nidle power: %.0fW awake / %.0fW asleep, DVFS range %.0f%%..%.0f%%\n\n",
		m, m.WattsIdle, model.SleepWatts, model.FMin*100, model.FMax*100)

	period := 2.0 // a 2-second batch slot
	jobs := []energy.Job{
		{Name: "compile-like (compute-bound)", ComputeCycles: 1.2e9, MemCycles: 0.1e9, Cores: 4},
		{Name: "scan-like (memory-bound)", ComputeCycles: 0.1e9, MemCycles: 1.2e9, Cores: 4},
	}
	for _, j := range jobs {
		race, err := model.RaceToIdle(j, period)
		if err != nil {
			panic(err)
		}
		pace, _ := model.PaceToDeadline(j, period)
		opt, _ := model.OptimalFrequency(j, period)
		fmt.Printf("%s (%.0f%% memory-bound):\n", j.Name, 100*j.MemoryBoundness())
		fmt.Printf("  race-to-idle: %5.1f J at f=1.00 (runs %.2fs, sleeps %.2fs)\n",
			race.Joules, race.RuntimeSeconds, period-race.RuntimeSeconds)
		fmt.Printf("  pace:         %5.1f J at f=%.2f\n", pace.Joules, pace.Frequency)
		fmt.Printf("  optimal:      %5.1f J at f=%.2f  (%.0f%% saved vs race)\n\n",
			opt.Joules, opt.Frequency, 100*(1-opt.Joules/race.Joules))
	}
	fmt.Println("memory stalls don't speed up with the clock — so memory-bound work should run slow")
}
