// Planning example: the keynote's bottom line. The same logical join is
// cheapest with a different physical operator depending on the machine and
// the data statistics — so the engine asks the machine model at plan time
// instead of hard-coding a choice.
package main

import (
	"fmt"
	"log"

	"hwstar"
)

func main() {
	for _, m := range []*hwstar.Machine{hwstar.Laptop(), hwstar.Server2S(), hwstar.Manycore()} {
		engine, err := hwstar.New(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", m)
		fmt.Println("  build rows   miss   chosen variant")
		for _, build := range []int64{1 << 12, 1 << 18, 1 << 23} {
			for _, miss := range []float64{0, 0.9} {
				variant, _ := engine.PlanJoin(build, 4*build, miss)
				fmt.Printf("  %-12d %-6.0f %s\n", build, miss*100, variant)
			}
		}
		fmt.Println()
	}
	fmt.Println("same query, three machines, different best plans — the planner reads the")
	fmt.Println("hardware profile, which is the keynote's entire point in one function call.")
}
