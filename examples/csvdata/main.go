// CSV example: bring your own data. A small sales file is loaded through
// the public CSV API, queried with the engine's top-k grouping, and the
// result is written back out as CSV — the full adopt-this-library loop
// without any generated data.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"hwstar"
)

const salesCSV = `region,amount
north,120.5
south,80.0
north,99.5
east,210.0
south,45.25
east,30.0
west,310.0
north,60.0
west,12.5
east,150.0
`

func main() {
	schema := hwstar.MustSchema(
		hwstar.ColumnDef{Name: "region", Type: hwstar.TypeString},
		hwstar.ColumnDef{Name: "amount", Type: hwstar.TypeFloat64},
	)
	tbl, err := hwstar.LoadCSV("sales", schema, strings.NewReader(salesCSV))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows of %s\n\n", tbl.NumRows(), tbl.Name())

	// Group by region (dictionary codes become group keys), top 3 by sum.
	regions, err := tbl.StringColumn("region")
	if err != nil {
		log.Fatal(err)
	}
	amounts, err := tbl.Float64Column("amount")
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]int64, len(regions.Codes))
	for i, c := range regions.Codes {
		keys[i] = int64(c)
	}

	engine, err := hwstar.New(hwstar.Laptop())
	if err != nil {
		log.Fatal(err)
	}
	top, err := engine.TopGroups(context.Background(), keys, amounts, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top regions by revenue:")
	for rank, g := range top {
		fmt.Printf("  %d. %-6s %8.2f  (%d sales)\n", rank+1, regions.Dict[g.Key], g.Sum, g.Count)
	}

	// Round-trip the table back to CSV (stdout here; a file in real use).
	fmt.Println("\nraw table as CSV:")
	if err := tbl.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
