// Quickstart: create an engine on a machine profile, generate data, and run
// the three headline operations — an analytic query under three execution
// models, a parallel join, and a grouped aggregation — reading back both the
// real results and the modeled hardware cost.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hwstar"
)

func main() {
	// An Engine binds operators to a machine profile. The profile decides
	// simulated costs; real execution runs on your host either way.
	engine, err := hwstar.New(hwstar.Server2S())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", engine.Machine())

	// 1. The same query under three execution models. The fused pipeline
	// is what JiT compilation produces; Volcano is the classic interpreter.
	ctx := context.Background()
	lineitem := hwstar.GenLineItem(1, 200_000)
	fmt.Printf("\nQ6 over %d rows (%d columns):\n", lineitem.NumRows(), lineitem.Schema().NumColumns())
	for _, eng := range []hwstar.QueryEngine{hwstar.Volcano, hwstar.Vectorized, hwstar.Fused} {
		start := time.Now()
		q6, err := engine.RunQ6(ctx, eng, lineitem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s revenue=%.2f   model %5.1f cyc/tuple   real %6.2fms\n",
			eng, q6.Revenue, q6.SimCycles/float64(lineitem.NumRows()),
			float64(time.Since(start).Microseconds())/1000)
	}

	// 2. A parallel hash join. JoinAuto picks the no-partitioning join for
	// cache-resident build sides and the radix-partitioned join beyond.
	data := hwstar.GenJoin(2, 100_000, 400_000, 0)
	res, err := engine.HashJoin(ctx, data.BuildKeys, data.BuildVals, data.ProbeKeys, data.ProbeVals, hwstar.JoinAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin 100k x 400k: %d matches via %s, simulated makespan %.1f Mcycles on %d cores\n",
		res.Matches, res.Algorithm, res.SimCycles/1e6, engine.Workers())

	// 3. Grouped aggregation with a contention-free strategy.
	keys := hwstar.GenZipf(3, 500_000, 1000, 1.2)
	vals := hwstar.GenUniform(4, 500_000, 100)
	agg, err := engine.GroupSum(ctx, keys, vals, hwstar.AggRadix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group-sum of 500k rows: %d groups, simulated makespan %.1f Mcycles\n",
		len(agg.Groups), agg.SimCycles/1e6)

	// 4. Ask the layout advisor where the data should live.
	best, costs, err := engine.AdviseLayout(1_000_000, 16, hwstar.AccessProfile{
		Scans: 500, ScanCols: []int{0, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayout advisor for a scan-heavy workload: %s (NSM %.0fM / DSM %.0fM / PAX %.0fM cycles)\n",
		best, costs[hwstar.NSM]/1e6, costs[hwstar.DSM]/1e6, costs[hwstar.PAX]/1e6)
}
