// Shared scan example: a dashboard backend where hundreds of widgets each
// ask a range-filtered aggregate of the same fact table, concurrently. A
// query-at-a-time engine re-reads the table per widget; the clock scan
// answers the whole batch in one pass over the data.
package main

import (
	"context"
	"fmt"
	"log"

	"hwstar"
)

func main() {
	engine, err := hwstar.New(hwstar.Server2S())
	if err != nil {
		log.Fatal(err)
	}

	// Fact table: one million events with a timestamp-like dimension and a
	// metric column.
	const rows = 1_000_000
	cols := [][]int64{
		hwstar.GenUniform(1, rows, 86_400), // seconds-of-day
		hwstar.GenUniform(2, rows, 500),    // metric
	}

	// Each dashboard widget sums the metric over its own time window.
	for _, widgets := range []int{16, 128, 1024} {
		qs := make([]hwstar.ScanQuery, widgets)
		starts := hwstar.GenUniform(3, widgets, 80_000)
		for i := range qs {
			qs[i] = hwstar.ScanQuery{FilterCol: 0, Lo: starts[i], Hi: starts[i] + 3600, AggCol: 1}
		}
		res, err := engine.SharedScan(context.Background(), cols, qs)
		if err != nil {
			log.Fatal(err)
		}
		// A query-at-a-time engine would stream 2 columns per widget.
		qatCycles := float64(widgets) * engine.Cost(hwstar.Work{
			Tuples: rows, ComputePerTuple: 3, SeqReadBytes: 2 * rows * 8,
		})
		fmt.Printf("%4d widgets: clock scan %7.1f Mcycles vs query-at-a-time %9.1f Mcycles  (%.0fx saved)\n",
			widgets, res.SimCycles/1e6, qatCycles/1e6, qatCycles/res.SimCycles)
	}

	fmt.Println("\nthe clock scan reads the fact table once per batch — memory traffic no longer scales with widgets")
}
