// Radix join example: the keynote's headline case. A fact-to-dimension join
// is executed with the hardware-oblivious no-partitioning hash join and the
// hardware-conscious radix-partitioned join over growing dimension tables,
// showing the crossover as the hash table falls out of the cache hierarchy —
// and how probe-side skew changes the verdict.
package main

import (
	"context"
	"fmt"
	"log"

	"hwstar"
)

func main() {
	engine, err := hwstar.New(hwstar.Server2S())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	m := engine.Machine()
	fmt.Printf("machine: %s\n\n", m)

	fmt.Println("size sweep (uniform probes, probe = 4x build):")
	fmt.Println("build rows   npo Mcyc   radix Mcyc   winner")
	for _, build := range []int{1 << 14, 1 << 17, 1 << 20} {
		data := hwstar.GenJoin(1, build, 4*build, 0)
		npo, err := engine.HashJoin(ctx, data.BuildKeys, data.BuildVals, data.ProbeKeys, data.ProbeVals, hwstar.JoinNPO)
		if err != nil {
			log.Fatal(err)
		}
		radix, err := engine.HashJoin(ctx, data.BuildKeys, data.BuildVals, data.ProbeKeys, data.ProbeVals, hwstar.JoinRadix)
		if err != nil {
			log.Fatal(err)
		}
		if npo.Matches != radix.Matches || npo.Checksum != radix.Checksum {
			log.Fatalf("algorithms disagree: %d vs %d", npo.Matches, radix.Matches)
		}
		winner := "radix"
		if npo.SimCycles < radix.SimCycles {
			winner = "npo"
		}
		fmt.Printf("%-12d %-10.1f %-12.1f %s\n", build, npo.SimCycles/1e6, radix.SimCycles/1e6, winner)
	}

	fmt.Println("\nskew sweep (build fixed at 2M rows — hash table far beyond the LLC):")
	fmt.Println("zipf s   npo Mcyc   radix Mcyc   winner")
	for _, s := range []float64{0, 1.1, 1.5} {
		data := hwstar.GenJoin(2, 1<<21, 1<<23, s)
		npo, err := engine.HashJoin(ctx, data.BuildKeys, data.BuildVals, data.ProbeKeys, data.ProbeVals, hwstar.JoinNPO)
		if err != nil {
			log.Fatal(err)
		}
		radix, err := engine.HashJoin(ctx, data.BuildKeys, data.BuildVals, data.ProbeKeys, data.ProbeVals, hwstar.JoinRadix)
		if err != nil {
			log.Fatal(err)
		}
		winner := "radix"
		if npo.SimCycles < radix.SimCycles {
			winner = "npo"
		}
		fmt.Printf("%-8.1f %-10.1f %-12.1f %s\n", s, npo.SimCycles/1e6, radix.SimCycles/1e6, winner)
	}

	fmt.Println("\nhardware still matters: the right join depends on cache sizes AND data distribution,")
	fmt.Println("which is why the engine's JoinAuto consults the machine profile instead of a constant.")
}
