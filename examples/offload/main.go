// Offload example: the dark-silicon consequence the keynote predicts. A
// filter-aggregate operator can run on the CPU or be shipped to a
// specialized streaming engine; the planner prices both against the machine
// profile and picks per invocation. Small requests stay on the CPU (setup
// dominates), long streams go to the device.
package main

import (
	"fmt"
	"log"

	"hwstar/internal/accel"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func main() {
	m := hw.Server2S()
	// A consolidated socket: all 8 cores busy — the realistic context in
	// which offload decisions are made.
	ctx := hw.ExecContext{ActiveCoresOnSocket: 8, InterferenceFactor: 1}
	fpga := accel.FPGA2013()
	smart := accel.SmartStorage()

	fmt.Printf("machine: %s\ndevices: %s (discrete), %s (in data path)\n\n", m, fpga.Name, smart.Name)

	fmt.Println("stream size   cpu ms   fpga ms   smart ms   planner(fpga)   planner(smart)")
	for _, bytes := range []int64{1 << 20, 1 << 24, 1 << 28, 1 << 32} {
		tuples := bytes / 8
		w := hw.Work{Tuples: tuples, ComputePerTuple: 3, SeqReadBytes: bytes, BranchMisses: tuples / 4}
		pf, cpu, fdev := accel.Plan(fpga, m, ctx, w)
		ps, _, sdev := accel.Plan(smart, m, ctx, w)
		toMs := func(c float64) float64 { return m.CyclesToSeconds(c) * 1e3 }
		fmt.Printf("%-13s %-8.1f %-9.1f %-10.1f %-15s %s\n",
			fmtBytes(bytes), toMs(cpu), toMs(fdev), toMs(sdev), pf, ps)
	}

	if cross := accel.Crossover(fpga, m, ctx, 1<<36); cross > 0 {
		fmt.Printf("\nFPGA pays off from %s; the in-data-path engine from %s\n",
			fmtBytes(cross), fmtBytes(accel.Crossover(smart, m, ctx, 1<<36)))
	}

	// The operator is real: run it once and check the planner's pick.
	data := workload.UniformInts(1, 1<<21, 1<<30)
	fs := accel.FilterSum{Device: fpga, Machine: m, Ctx: ctx}
	res, err := fs.Run(data, 1<<28, 1<<29)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive run over %d tuples: %d matched, placed on %s (%.1f vs %.1f Mcycles)\n",
		len(data), res.Count, res.Placement, res.CPUCycles/1e6, res.AccelCycles/1e6)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dKiB", b>>10)
	}
}
