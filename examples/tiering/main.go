// Tiering example: a table too large for DRAM, with a flash tier below it.
// The engine logs record accesses, estimates access frequencies offline
// (exponential smoothing), and pins the hot set in memory — compared
// against LRU caching under the scan pollution that breaks recency-based
// schemes.
package main

import (
	"fmt"

	"hwstar/internal/hotcold"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func main() {
	m := hw.Server2S()
	fmt.Printf("machine: %s, flash tier at %d cycles/read\n\n", m, int(hotcold.FlashLatencyCycles))

	// An OLTP trace: skewed point accesses with nightly analytic sweeps
	// mixed in.
	const n = 500_000
	const keyspace = 100_000
	zipf := workload.ZipfInts(1, n, keyspace, 1.3)
	trace := make([]int64, 0, n+n/4)
	for i, v := range zipf {
		trace = append(trace, v)
		if i%4 == 0 {
			trace = append(trace, int64(i)%keyspace) // the sweep
		}
	}

	est, err := hotcold.NewEstimator().Estimate(trace)
	if err != nil {
		panic(err)
	}

	fmt.Println("memory budget   classifier hit   LRU hit   avg latency (class vs LRU)")
	for _, pct := range []int{1, 5, 20} {
		k := keyspace * pct / 100
		hot := hotcold.HotSet(est, k)
		classHit := hotcold.HitRate(trace, hot)
		lruHit := hotcold.LRUHitRate(trace, k)
		classLat := hotcold.TierLatency(trace, hot, m.MemLatencyCycles, hotcold.FlashLatencyCycles)
		lruLat := lruHit*m.MemLatencyCycles + (1-lruHit)*hotcold.FlashLatencyCycles
		fmt.Printf("%6d%%          %.3f            %.3f     %6.0f vs %6.0f cycles\n",
			pct, classHit, lruHit, classLat, lruLat)
	}
	fmt.Println("\nthe sweeps keep flushing LRU; the frequency estimator knows the scan rows are cold")
}
