package hwstar

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"hwstar/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNilMachine) {
		t.Fatalf("nil machine: %v", err)
	}
	m := Laptop()
	m.MLP = 0
	if _, err := New(m); err == nil {
		t.Fatal("invalid machine should fail")
	}
	if _, err := New(Laptop(), WithWorkers(99)); !errors.Is(err, ErrWorkersOutOfRange) {
		t.Fatalf("too many workers: %v", err)
	}
	e, err := New(Server2S(), WithWorkers(4), WithoutStealing())
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 4 || e.Machine().Name != "server-2s8c" {
		t.Fatalf("engine misconfigured: %d workers on %s", e.Workers(), e.Machine().Name)
	}
}

func TestHashJoinAlgorithms(t *testing.T) {
	e, _ := New(Server2S())
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 1, BuildRows: 5000, ProbeRows: 20000})
	var results []JoinResult
	for _, algo := range []JoinAlgorithm{JoinNPO, JoinRadix, JoinAuto} {
		r, err := e.HashJoin(context.Background(), g.BuildKeys, g.BuildVals, g.ProbeKeys, g.ProbeVals, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.SimCycles <= 0 {
			t.Fatalf("%s: no cycles", algo)
		}
		results = append(results, r)
	}
	if results[0].Matches != results[1].Matches || results[0].Checksum != results[1].Checksum {
		t.Fatal("algorithms disagree")
	}
	if results[0].Matches != 20000 {
		t.Fatalf("matches = %d, want 20000 (unique FK join)", results[0].Matches)
	}
	// Auto on a small build side resolves to NPO.
	if results[2].Algorithm != JoinNPO {
		t.Fatalf("auto picked %s for a cache-resident build side", results[2].Algorithm)
	}
}

func TestHashJoinAutoPicksRadixWhenLarge(t *testing.T) {
	e, _ := New(Server2S())
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 2, BuildRows: 1 << 20, ProbeRows: 1 << 20})
	r, err := e.HashJoin(context.Background(), g.BuildKeys, g.BuildVals, g.ProbeKeys, g.ProbeVals, JoinAuto)
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != JoinRadix {
		t.Fatalf("auto picked %s for an LLC-exceeding build side", r.Algorithm)
	}
}

func TestHashJoinErrors(t *testing.T) {
	e, _ := New(Laptop())
	if _, err := e.HashJoin(context.Background(), []int64{1}, nil, nil, nil, JoinNPO); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("ragged input: %v", err)
	}
	if _, err := e.HashJoin(context.Background(), nil, nil, nil, nil, JoinAlgorithm("bogus")); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("unknown algorithm: %v", err)
	}
}

func TestGroupSum(t *testing.T) {
	e, _ := New(Laptop())
	keys := []int64{1, 2, 1, 3}
	vals := []int64{10, 20, 30, 40}
	want := map[int64]int64{1: 40, 2: 20, 3: 40}
	for _, strat := range []AggStrategy{AggGlobalAtomic, AggLocalMerge, AggRadix} {
		r, err := e.GroupSum(context.Background(), keys, vals, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !reflect.DeepEqual(r.Groups, want) {
			t.Fatalf("%s: groups = %v", strat, r.Groups)
		}
	}
	if _, err := e.GroupSum(context.Background(), keys, vals[:1], AggRadix); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("ragged input: %v", err)
	}
}

func TestSharedScan(t *testing.T) {
	e, _ := New(Server2S())
	cols := [][]int64{
		workload.UniformInts(3, 10000, 1000),
		workload.UniformInts(4, 10000, 50),
	}
	qs := []ScanQuery{
		{FilterCol: 0, Lo: 0, Hi: 999, AggCol: 1},
		{FilterCol: 0, Lo: 100, Hi: 200, AggCol: 1},
	}
	r, err := e.SharedScan(context.Background(), cols, qs)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range cols[1] {
		total += v
	}
	if r.Sums[0] != total {
		t.Fatalf("full-range query sum = %d, want %d", r.Sums[0], total)
	}
	if r.Sums[1] >= r.Sums[0] {
		t.Fatal("narrow query should sum less than full range")
	}
	if _, err := e.SharedScan(context.Background(), nil, qs); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("empty relation: %v", err)
	}
}

func TestAdviseLayout(t *testing.T) {
	e, _ := New(Server2S())
	best, costs, err := e.AdviseLayout(1_000_000, 16, AccessProfile{Scans: 100, ScanCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if best == NSM {
		t.Fatal("OLAP profile should not pick NSM")
	}
	if len(costs) != 3 {
		t.Fatalf("costs = %v", costs)
	}
	if _, _, err := e.AdviseLayout(0, 0, AccessProfile{}); err == nil {
		t.Fatal("invalid profile should fail")
	}
}

func TestCost(t *testing.T) {
	e, _ := New(Laptop())
	if c := e.Cost(Work{Tuples: 1000, ComputePerTuple: 2}); c != 2000 {
		t.Fatalf("cost = %f", c)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 13 || ids[0] != "E1" {
		t.Fatalf("experiment ids = %v", ids)
	}
	tables, err := RunExperiment("E4", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("E4 produced no output")
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestPlanJoinFacade(t *testing.T) {
	e, _ := New(Server2S())
	variant, costs := e.PlanJoin(4096, 16384, 0)
	if variant != "npo" {
		t.Fatalf("small join planned as %s (%v)", variant, costs)
	}
	if len(costs) != 4 {
		t.Fatalf("costs = %v", costs)
	}
	variant, _ = e.PlanJoin(1<<22, 1<<24, 0.9)
	if variant == "npo" {
		t.Fatal("large miss-heavy join should not stay naive")
	}
}

func TestCSVFacade(t *testing.T) {
	schema := MustSchema(
		ColumnDef{Name: "id", Type: TypeInt64},
		ColumnDef{Name: "price", Type: TypeFloat64},
		ColumnDef{Name: "city", Type: TypeString},
	)
	tbl, err := LoadCSV("orders", schema, strings.NewReader("id,price,city\n1,2.5,zurich\n2,3.5,basel\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "zurich") {
		t.Fatalf("csv round trip missing data: %q", sb.String())
	}
	if _, err := LoadCSV("bad", schema, strings.NewReader("nope\n")); err == nil {
		t.Fatal("bad CSV should fail")
	}
}

func TestTopGroupsFacade(t *testing.T) {
	e, _ := New(Laptop())
	keys := []int64{1, 2, 1, 3, 2, 1}
	vals := []float64{10, 20, 30, 40, 50, 60}
	top, err := e.TopGroups(context.Background(), keys, vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Key != 1 || top[0].Sum != 100 || top[1].Key != 2 || top[1].Sum != 70 {
		t.Fatalf("top groups = %v", top)
	}
	if _, err := e.TopGroups(context.Background(), keys, vals[:2], 2); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("ragged input: %v", err)
	}
}

func TestQueryFacade(t *testing.T) {
	e, _ := New(Server2S())
	ctx := context.Background()
	li := GenLineItem(99, 10000)
	q6, err := e.RunQ6(ctx, Fused, li)
	if err != nil || q6.Revenue <= 0 || q6.SimCycles <= 0 {
		t.Fatalf("RunQ6: %+v, %v", q6, err)
	}
	q1, err := e.RunQ1(ctx, Vectorized, li)
	if err != nil || len(q1.Rows) == 0 || q1.SimCycles <= 0 {
		t.Fatalf("RunQ1: %+v, %v", q1, err)
	}
	if _, err := e.RunQ6(ctx, QueryEngine("bogus"), li); err == nil {
		t.Fatal("unknown engine should fail Q6")
	}
	if _, err := e.RunQ1(ctx, QueryEngine("bogus"), li); err == nil {
		t.Fatal("unknown engine should fail Q1")
	}
}

// TestCancelledContext checks that every Engine operation returns promptly
// with the context's error when called with an already-cancelled context.
func TestCancelledContext(t *testing.T) {
	e, _ := New(Server2S())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 8, BuildRows: 1 << 16, ProbeRows: 1 << 18})
	cols := [][]int64{workload.UniformInts(9, 1<<18, 1000), workload.UniformInts(10, 1<<18, 50)}
	li := GenLineItem(11, 10000)
	fvals := make([]float64, len(cols[0]))

	ops := map[string]func() error{
		"HashJoin": func() error {
			_, err := e.HashJoin(ctx, g.BuildKeys, g.BuildVals, g.ProbeKeys, g.ProbeVals, JoinAuto)
			return err
		},
		"GroupSum": func() error {
			_, err := e.GroupSum(ctx, cols[0], cols[1], AggRadix)
			return err
		},
		"SharedScan": func() error {
			_, err := e.SharedScan(ctx, cols, []ScanQuery{{FilterCol: 0, Lo: 0, Hi: 10, AggCol: 1}})
			return err
		},
		"TopGroups": func() error {
			_, err := e.TopGroups(ctx, cols[0], fvals, 3)
			return err
		},
		"RunQ1": func() error {
			_, err := e.RunQ1(ctx, Vectorized, li)
			return err
		},
		"RunQ6": func() error {
			_, err := e.RunQ6(ctx, Fused, li)
			return err
		},
	}
	for name, op := range ops {
		start := time.Now()
		err := op()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context: %v", name, err)
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("%s took %v to notice cancellation", name, d)
		}
	}
}

func TestGenJoinFacade(t *testing.T) {
	d := GenJoin(5, 100, 400, 1.2)
	if len(d.BuildKeys) != 100 || len(d.ProbeKeys) != 400 {
		t.Fatalf("GenJoin sizes: %d/%d", len(d.BuildKeys), len(d.ProbeKeys))
	}
}
