package hwstar

// The benchmark harness regenerates every experiment table (E1–E18 plus
// ablations) under `go test -bench`, and additionally benchmarks the real
// wall-clock performance of the core algorithms so the modeled effects can
// be cross-checked against live Go execution on the host:
//
//	go test -bench=BenchmarkE -benchmem        # the experiment suite
//	go test -bench=BenchmarkReal -benchmem     # live algorithm microbenches

import (
	"io"
	"testing"

	"hwstar/internal/cache"
	"hwstar/internal/compress"
	"hwstar/internal/concurrent"
	"hwstar/internal/experiments"
	"hwstar/internal/hw"
	"hwstar/internal/index"
	"hwstar/internal/join"
	"hwstar/internal/layout"
	"hwstar/internal/queries"
	"hwstar/internal/scan"
	hwsort "hwstar/internal/sort"
	"hwstar/internal/workload"
)

// benchScale keeps a full -bench=. sweep in the minutes range; the hwbench
// binary runs the suite at scale 1.
const benchScale = 0.1

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Scale: benchScale}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// One benchmark per experiment table of DESIGN.md.

func BenchmarkE1Joins(b *testing.B)          { runExperiment(b, "E1") }
func BenchmarkE1aRadixAblation(b *testing.B) { runExperiment(b, "E1a") }
func BenchmarkE1bJoinSkew(b *testing.B)      { runExperiment(b, "E1b") }
func BenchmarkE1cPrefetch(b *testing.B)      { runExperiment(b, "E1c") }
func BenchmarkE2Scaling(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkE2aStealing(b *testing.B)      { runExperiment(b, "E2a") }
func BenchmarkE2bMorselSize(b *testing.B)    { runExperiment(b, "E2b") }
func BenchmarkE3SharedScan(b *testing.B)     { runExperiment(b, "E3") }
func BenchmarkE4NUMA(b *testing.B)           { runExperiment(b, "E4") }
func BenchmarkE5Layout(b *testing.B)         { runExperiment(b, "E5") }
func BenchmarkE5aAdvisor(b *testing.B)       { runExperiment(b, "E5a") }
func BenchmarkE6Exec(b *testing.B)           { runExperiment(b, "E6") }
func BenchmarkE7Offload(b *testing.B)        { runExperiment(b, "E7") }
func BenchmarkE8Interference(b *testing.B)   { runExperiment(b, "E8") }
func BenchmarkE9Energy(b *testing.B)         { runExperiment(b, "E9") }
func BenchmarkE10Index(b *testing.B)         { runExperiment(b, "E10") }
func BenchmarkE10aYCSB(b *testing.B)         { runExperiment(b, "E10a") }
func BenchmarkE11Sort(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12Compression(b *testing.B)   { runExperiment(b, "E12") }
func BenchmarkE13RackJoin(b *testing.B)      { runExperiment(b, "E13") }
func BenchmarkE14HotCold(b *testing.B)       { runExperiment(b, "E14") }
func BenchmarkE15LatchFree(b *testing.B)     { runExperiment(b, "E15") }
func BenchmarkE16BloomJoin(b *testing.B)     { runExperiment(b, "E16") }
func BenchmarkE17Planner(b *testing.B)       { runExperiment(b, "E17") }
func BenchmarkE18Validation(b *testing.B)    { runExperiment(b, "E18") }
func BenchmarkE19Serve(b *testing.B)         { runExperiment(b, "E19") }
func BenchmarkE20Chaos(b *testing.B)         { runExperiment(b, "E20") }
func BenchmarkE21Observe(b *testing.B)       { runExperiment(b, "E21") }
func BenchmarkE22Memory(b *testing.B)        { runExperiment(b, "E22") }
func BenchmarkE23Tenants(b *testing.B)       { runExperiment(b, "E23") }
func BenchmarkE24Store(b *testing.B)         { runExperiment(b, "E24") }
func BenchmarkE25VecServe(b *testing.B)      { runExperiment(b, "E25") }
func BenchmarkE26Shard(b *testing.B)         { runExperiment(b, "E26") }

// Live microbenchmarks: the real Go implementations on the host CPU.

func benchJoinInput(n int) join.Input {
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 9001, BuildRows: n, ProbeRows: 4 * n})
	return join.Input{BuildKeys: g.BuildKeys, BuildVals: g.BuildVals, ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals}
}

func BenchmarkRealJoinNPO(b *testing.B) {
	in := benchJoinInput(1 << 17)
	b.SetBytes(int64(len(in.BuildKeys)+len(in.ProbeKeys)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.NPO(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealJoinRadix(b *testing.B) {
	in := benchJoinInput(1 << 17)
	m := hw.Server2S()
	b.SetBytes(int64(len(in.BuildKeys)+len(in.ProbeKeys)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.Radix(in, join.RadixOptions{}, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealJoinSortMerge(b *testing.B) {
	in := benchJoinInput(1 << 15)
	b.SetBytes(int64(len(in.BuildKeys)+len(in.ProbeKeys)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.SortMerge(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLineItem(b *testing.B) *Table {
	b.Helper()
	return workload.LineItem(9002, 200_000)
}

func BenchmarkRealQ6Volcano(b *testing.B) {
	li := benchLineItem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.Q6(queries.EngineVolcano, li, queries.DefaultQ6(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealQ6Vectorized(b *testing.B) {
	li := benchLineItem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.Q6(queries.EngineVectorized, li, queries.DefaultQ6(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealQ6Fused(b *testing.B) {
	li := benchLineItem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.Q6(queries.EngineFused, li, queries.DefaultQ6(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealQ1Volcano(b *testing.B) {
	li := benchLineItem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.Q1(queries.EngineVolcano, li, queries.DefaultQ1(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealQ1Fused(b *testing.B) {
	li := benchLineItem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.Q1(queries.EngineFused, li, queries.DefaultQ1(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLayout(kind layout.Kind) *layout.Relation {
	cols := make([][]int64, 16)
	for c := range cols {
		cols[c] = workload.UniformInts(int64(9100+c), 1<<18, 1<<30)
	}
	return layout.MustBuild(kind, cols)
}

func BenchmarkRealScanNSMOneCol(b *testing.B) {
	r := benchLayout(layout.NSM)
	b.SetBytes(r.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.SumColumn(3)
	}
}

func BenchmarkRealScanDSMOneCol(b *testing.B) {
	r := benchLayout(layout.DSM)
	b.SetBytes(int64(r.NumRows()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.SumColumn(3)
	}
}

func BenchmarkRealBTreeGet(b *testing.B) {
	bt := index.NewBTree(0)
	keys := workload.ShuffledInts(9200, 1<<18)
	for _, k := range keys {
		bt.Insert(k, k)
	}
	probes := workload.UniformInts(9201, 1<<12, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := probes[i%len(probes)]
		if _, ok := bt.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkRealBSTGet(b *testing.B) {
	bst := index.NewBST(0)
	keys := workload.ShuffledInts(9200, 1<<18)
	for _, k := range keys {
		bst.Insert(k, k)
	}
	probes := workload.UniformInts(9201, 1<<12, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := probes[i%len(probes)]
		if _, ok := bst.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkRealSharedScan256Queries(b *testing.B) {
	rel, err := scan.NewRelation([][]int64{
		workload.UniformInts(9300, 1<<18, 100000),
		workload.UniformInts(9301, 1<<18, 1000),
	})
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]scan.Query, 256)
	los := workload.UniformInts(9302, len(qs), 90000)
	for i := range qs {
		qs[i] = scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.Shared(rel, qs, scan.SharedOptions{UseQueryIndex: true}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealCacheSimAccess(b *testing.B) {
	h := cache.FromMachine(hw.Server2S())
	addrs := workload.UniformInts(9400, 1<<16, 1<<28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(addrs[i%len(addrs)]))
	}
}

func BenchmarkRealRadixSort(b *testing.B) {
	keys := workload.UniformInts(9500, 1<<20, 1<<60)
	m := hw.Server2S()
	buf := make([]int64, len(keys))
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		hwsort.Radix(buf, hwsort.RadixOptions{}, m)
	}
}

func BenchmarkRealComparisonSort(b *testing.B) {
	keys := workload.UniformInts(9500, 1<<20, 1<<60)
	buf := make([]int64, len(keys))
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		hwsort.Comparison(buf)
	}
}

func BenchmarkRealCompressedSum(b *testing.B) {
	c := compress.Encode(workload.UniformInts(9600, 1<<20, 256))
	b.SetBytes(c.RawBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Sum()
	}
}

func BenchmarkRealSkipListInsert(b *testing.B) {
	keys := workload.ShuffledInts(9700, 1<<20)
	b.ResetTimer()
	sl := concurrent.NewSkipList(1)
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		sl.Insert(k, k)
	}
}

func BenchmarkRealLockedTreeInsert(b *testing.B) {
	keys := workload.ShuffledInts(9700, 1<<20)
	b.ResetTimer()
	lt := concurrent.NewLockedTree()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		lt.Insert(k, k)
	}
}
