// Package hwstar is a hardware-conscious main-memory data processing engine
// built as an executable reproduction of Gustavo Alonso's ICDE 2013 keynote
// "Hardware killed the software star". The keynote argues that data
// processing software can no longer ignore the machine it runs on; this
// library makes each of the keynote's claims operational:
//
//   - joins and aggregations engineered for caches, TLBs, and NUMA, next to
//     their hardware-oblivious baselines (internal/join, internal/agg);
//   - vectorized and fused execution next to a Volcano interpreter
//     (internal/vecexec, internal/volcano, internal/queries);
//   - shared clock scans for concurrent analytics (internal/scan);
//   - NSM/DSM/PAX storage layouts with a cost-based advisor (internal/layout);
//   - a morsel-driven NUMA-aware scheduler (internal/sched);
//   - models for accelerator offload, virtualization interference, and
//     DVFS energy policies (internal/accel, internal/vmsim, internal/energy);
//   - and the substrates that make hardware effects measurable anywhere: a
//     parameterized machine cost model (internal/hw) and a trace-driven
//     cache/TLB simulator (internal/cache).
//
// This package is the public façade: an Engine bound to a machine profile,
// with high-level, context-first operations that return both real results and
// modeled hardware costs, and a Server that multiplexes concurrent clients
// onto the engine with shared-scan batching, admission control, and
// memory-budget governance with graceful spill, and a durable storage tier
// (checkpointed segments, crash recovery) via OpenStore. The E1–E24
// experiment suite (internal/experiments, cmd/hwbench) reproduces the
// behaviour the hardware-conscious database literature reports, on any host,
// deterministically.
//
// All Engine operations take a context.Context as their first parameter.
// Cancellation is cooperative: parallel operations check the context at every
// morsel boundary, so a cancelled context aborts within one morsel's worth of
// work and returns an error wrapping the context's error.
package hwstar

import (
	"context"
	"fmt"

	"hwstar/internal/agg"
	"hwstar/internal/bench"
	"hwstar/internal/errs"
	"hwstar/internal/experiments"
	"hwstar/internal/fault"
	"hwstar/internal/frontend"
	v1 "hwstar/internal/frontend/v1"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/layout"
	"hwstar/internal/mem"
	"hwstar/internal/planner"
	"hwstar/internal/queries"
	"hwstar/internal/scan"
	"hwstar/internal/sched"
	"hwstar/internal/serve"
	"hwstar/internal/shard"
	"hwstar/internal/store"
	"hwstar/internal/table"
	"hwstar/internal/trace"
	"hwstar/internal/vecexec"
	"hwstar/internal/workload"
)

// Sentinel errors. All validation and lifecycle failures across the façade
// and the server wrap one of these, so callers can classify failures with
// errors.Is regardless of the message text.
var (
	// ErrNilMachine reports a nil machine profile.
	ErrNilMachine = errs.ErrNilMachine
	// ErrWorkersOutOfRange reports a worker count outside 1..TotalCores.
	ErrWorkersOutOfRange = errs.ErrWorkersOutOfRange
	// ErrInvalidInput reports malformed operation input (mismatched slice
	// lengths, unknown algorithm or strategy names, out-of-range columns).
	ErrInvalidInput = errs.ErrInvalidInput
	// ErrOverloaded reports that a Server's intake queue is full.
	ErrOverloaded = errs.ErrOverloaded
	// ErrClosed reports an operation on a closed Server.
	ErrClosed = errs.ErrClosed
	// ErrWorkerPanic reports a recovered task panic that the run could not
	// absorb (stack attached to the wrapping error).
	ErrWorkerPanic = errs.ErrWorkerPanic
	// ErrTransient reports a retryable morsel-level failure that survived
	// the server's retry budget.
	ErrTransient = errs.ErrTransient
	// ErrDegraded reports a request shed because the Server's circuit
	// breaker is open.
	ErrDegraded = errs.ErrDegraded
	// ErrMemoryPressure reports a request shed at admission or an
	// allocation denied because the Server's memory budget is exhausted.
	// Retryable: pressure subsides as running queries release their
	// reservations.
	ErrMemoryPressure = errs.ErrMemoryPressure
	// ErrOOMKilled reports a simulated OOM kill: an ungoverned engine
	// (MemoryConfig.KillOnOverage) allocated past its budget. Fatal, not
	// retryable.
	ErrOOMKilled = errs.ErrOOMKilled
	// ErrCorrupted reports durable state that failed validation: a segment
	// or manifest whose checksum does not match its payload. Not retryable;
	// recovery falls back to the last manifest version that validates.
	ErrCorrupted = errs.ErrCorrupted
	// ErrRecovering reports a request that arrived while a Server was still
	// replaying durable state after a restart. Retryable — admission opens
	// as soon as the hot set is loaded.
	ErrRecovering = errs.ErrRecovering
	// ErrPartialResult reports a sharded query that could not reach every
	// replica of some range: the returned Response is exact over
	// CoveredFraction of the rows and flagged Partial, never a silent wrong
	// total. Retryable once the lost ranges re-replicate.
	ErrPartialResult = errs.ErrPartialResult
)

// Cost is the modeled hardware cost shared by every result type: simulated
// cycles on the engine's machine profile. For parallel operations SimCycles
// is the scheduled makespan; for single-threaded query plans it is the
// accounted total; for batched server execution it is the amortized
// per-query share of the batch.
type Cost = hw.Cost

// Re-exported core types. The aliases are identical to the internal types,
// so values flow freely between the façade and the sub-packages.
type (
	// Machine is a hardware profile: topology, caches, memory system.
	Machine = hw.Machine
	// Work describes code behaviour in hardware terms for the cost model.
	Work = hw.Work
	// ExecContext states the conditions work executes under.
	ExecContext = hw.ExecContext
	// Table is an immutable columnar relation.
	Table = table.Table
	// Schema describes a table's columns.
	Schema = table.Schema
	// ScanQuery is a range-filter aggregation for shared scans.
	ScanQuery = scan.Query
	// LayoutKind identifies a storage layout (NSM/DSM/PAX).
	LayoutKind = layout.Kind
	// AccessProfile characterizes a workload for the layout advisor.
	AccessProfile = layout.AccessProfile
	// AggStrategy names a parallel aggregation design.
	AggStrategy = agg.Strategy
	// ResultTable is a rendered experiment result.
	ResultTable = bench.Table
)

// Machine profiles (see internal/hw for parameters).
var (
	// Laptop is a 1-socket 4-core client profile.
	Laptop = hw.Laptop
	// Server2S is a 2-socket 8-core NUMA server profile.
	Server2S = hw.Server2S
	// NUMA4S is a 4-socket 16-core NUMA machine profile.
	NUMA4S = hw.NUMA4S
	// Manycore is a 1-socket 64-core bandwidth-limited profile.
	Manycore = hw.Manycore
)

// Layout kinds.
const (
	NSM = layout.NSM
	DSM = layout.DSM
	PAX = layout.PAX
)

// Aggregation strategies.
const (
	AggGlobalAtomic AggStrategy = agg.StrategyGlobal
	AggLocalMerge   AggStrategy = agg.StrategyLocalMerge
	AggRadix        AggStrategy = agg.StrategyRadix
)

// Engine binds the hwstar operators to one machine profile and a worker
// configuration. An Engine is cheap to create and safe to use from one
// goroutine; create one per concurrent client.
type Engine struct {
	machine  *Machine
	workers  int
	stealing bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the number of simulated cores parallel operations use
// (default: all cores of the machine).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithoutStealing disables cross-socket work stealing (default: enabled).
func WithoutStealing() Option { return func(e *Engine) { e.stealing = false } }

// New creates an Engine on the given machine profile.
func New(m *Machine, opts ...Option) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("hwstar: %w", ErrNilMachine)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{machine: m, workers: m.TotalCores(), stealing: true}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 || e.workers > m.TotalCores() {
		return nil, fmt.Errorf("hwstar: worker count %d not in 1..%d: %w", e.workers, m.TotalCores(), ErrWorkersOutOfRange)
	}
	return e, nil
}

// Machine returns the engine's hardware profile.
func (e *Engine) Machine() *Machine { return e.machine }

// Workers returns the engine's simulated core count.
func (e *Engine) Workers() int { return e.workers }

// scheduler builds a fresh scheduler for one parallel operation.
func (e *Engine) scheduler() (*sched.Scheduler, error) {
	return sched.New(e.machine, sched.Options{Workers: e.workers, Stealing: e.stealing})
}

// JoinAlgorithm selects a join implementation.
type JoinAlgorithm string

// Join algorithms.
const (
	JoinAuto  JoinAlgorithm = "auto"  // radix when the build side exceeds the LLC, else NPO
	JoinNPO   JoinAlgorithm = "npo"   // no-partitioning hash join
	JoinRadix JoinAlgorithm = "radix" // parallel radix-partitioned hash join
)

// JoinResult reports an equi-join outcome.
type JoinResult struct {
	// Cost carries SimCycles, the simulated parallel makespan.
	Cost
	// Matches and Checksum aggregate the join output.
	Matches  int64
	Checksum uint64
	// Algorithm is the implementation that ran (resolved for JoinAuto).
	Algorithm JoinAlgorithm
}

// HashJoin joins build (unique or duplicate keys, with payloads) against
// probe, in parallel on the engine's simulated cores. Cancelling ctx aborts
// at the next morsel boundary.
func (e *Engine) HashJoin(ctx context.Context, buildKeys, buildVals, probeKeys, probeVals []int64, algo JoinAlgorithm) (JoinResult, error) {
	in := join.Input{BuildKeys: buildKeys, BuildVals: buildVals, ProbeKeys: probeKeys, ProbeVals: probeVals}
	if err := in.Validate(); err != nil {
		return JoinResult{}, err
	}
	if algo == JoinAuto || algo == "" {
		htBytes := int64(len(buildKeys)) * 34
		if htBytes > e.machine.LLC().SizeBytes {
			algo = JoinRadix
		} else {
			algo = JoinNPO
		}
	}
	s, err := e.scheduler()
	if err != nil {
		return JoinResult{}, err
	}
	var res join.ParallelResult
	switch algo {
	case JoinNPO:
		res, err = join.ParallelNPO(ctx, in, s, 0)
	case JoinRadix:
		res, err = join.ParallelRadix(ctx, in, join.RadixOptions{}, s, e.machine, 0)
	default:
		return JoinResult{}, fmt.Errorf("hwstar: unknown join algorithm %q: %w", algo, ErrInvalidInput)
	}
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Matches: res.Matches, Checksum: res.Checksum, Algorithm: algo, Cost: Cost{SimCycles: res.MakespanCycles}}, nil
}

// GroupSumResult reports a parallel aggregation outcome.
type GroupSumResult struct {
	// Cost carries SimCycles, the simulated parallel makespan.
	Cost
	Groups map[int64]int64
}

// GroupSum computes SUM(vals) GROUP BY keys with the given strategy on the
// engine's simulated cores. Cancelling ctx aborts at the next morsel
// boundary.
func (e *Engine) GroupSum(ctx context.Context, keys, vals []int64, strategy AggStrategy) (GroupSumResult, error) {
	s, err := e.scheduler()
	if err != nil {
		return GroupSumResult{}, err
	}
	res, err := agg.Parallel(ctx, keys, vals, strategy, s, e.machine, 0)
	if err != nil {
		return GroupSumResult{}, err
	}
	return GroupSumResult{Groups: res.Groups, Cost: Cost{SimCycles: res.MakespanCycles}}, nil
}

// SharedScanResult reports a shared-scan batch execution.
type SharedScanResult struct {
	// Cost carries SimCycles, the parallel makespan of the clock scan.
	Cost
	// Sums holds one aggregate per query, in input order.
	Sums []int64
}

// SharedScan answers a batch of range-filter SUM queries with one
// cooperative clock scan over the columns. Cancelling ctx aborts at the next
// segment boundary.
func (e *Engine) SharedScan(ctx context.Context, cols [][]int64, qs []ScanQuery) (SharedScanResult, error) {
	rel, err := scan.NewRelation(cols)
	if err != nil {
		return SharedScanResult{}, err
	}
	s, err := e.scheduler()
	if err != nil {
		return SharedScanResult{}, err
	}
	sums, schedRes, err := scan.ParallelShared(ctx, rel, qs, scan.SharedOptions{UseQueryIndex: true}, s, 0)
	if err != nil {
		return SharedScanResult{}, err
	}
	return SharedScanResult{Sums: sums, Cost: Cost{SimCycles: schedRes.MakespanCycles}}, nil
}

// TopGroup is one entry of a TopGroups result.
type TopGroup = vecexec.GroupResult

// TopGroups computes SUM(vals) GROUP BY keys and returns the k groups with
// the largest sums, descending — the vectorized engine's ORDER BY ... LIMIT
// k, built on a cache-sized open-addressing table and a size-k heap instead
// of a full sort. The context is checked between vector-sized batches.
func (e *Engine) TopGroups(ctx context.Context, keys []int64, vals []float64, k int) ([]TopGroup, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("hwstar: keys/vals length mismatch: %d vs %d: %w", len(keys), len(vals), ErrInvalidInput)
	}
	g := vecexec.NewHashGroupSum(1024)
	var ctxErr error
	vecexec.Chunks(len(keys), func(start, end int) {
		if ctxErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return
		}
		g.AddBatch(keys[start:end], vals[start:end], nil)
	})
	if ctxErr != nil {
		return nil, fmt.Errorf("hwstar: top-groups aborted: %w", ctxErr)
	}
	return g.TopK(k), nil
}

// AdviseLayout recommends a storage layout for a rows×cols relation under
// the given access profile, with the modeled cost of every candidate.
func (e *Engine) AdviseLayout(rows, cols int, p AccessProfile) (LayoutKind, map[LayoutKind]float64, error) {
	adv, err := layout.Advise(rows, cols, p, e.machine)
	if err != nil {
		return 0, nil, err
	}
	return adv.Best, adv.Costs, nil
}

// Cost prices a hardware-work description on the engine's machine under a
// single-core context — the entry point for users modelling their own
// operators.
func (e *Engine) Cost(w Work) float64 {
	return e.machine.Cycles(w, hw.DefaultContext())
}

// Schema construction and CSV I/O, re-exported so users can bring their own
// data: build a Schema, LoadCSV into a Table, and feed it to the engine
// (Table.WriteCSV round-trips results back out).
type ColumnDef = table.ColumnDef

// Column types for schema construction.
const (
	TypeInt64   = table.Int64
	TypeFloat64 = table.Float64
	TypeString  = table.String
)

// NewSchema builds a schema from column definitions.
var NewSchema = table.NewSchema

// MustSchema is NewSchema that panics on error, for statically known schemas.
var MustSchema = table.MustSchema

// LoadCSV reads a header-carrying CSV stream into a Table using the given
// schema (header names must match the schema).
var LoadCSV = table.ReadCSV

// JoinVariant names one of the planner's executable join implementations.
type JoinVariant = planner.JoinVariant

// PlanJoin consults the machine model to pick the cheapest join variant
// (naive, group-prefetched, Bloom-filtered, or radix-partitioned) for the
// given statistics, returning the choice and every variant's predicted
// cycles.
func (e *Engine) PlanJoin(buildRows, probeRows int64, missFrac float64) (JoinVariant, map[JoinVariant]float64) {
	p := planner.ChooseJoin(e.machine, join.Stats{
		BuildRows: buildRows, ProbeRows: probeRows, MissFrac: missFrac,
	}, hw.DefaultContext())
	return p.Variant, p.All
}

// QueryEngine selects an execution model for the built-in analytic queries:
// "volcano" (tuple-at-a-time), "vectorized", or "fused".
type QueryEngine = queries.Engine

// Query engines.
const (
	Volcano    = queries.EngineVolcano
	Vectorized = queries.EngineVectorized
	Fused      = queries.EngineFused
)

// Q1Row is one group of the Q1-shaped aggregation query.
type Q1Row = queries.Q1Row

// Q6Result reports a Q6 execution: the revenue sum plus the modeled cycles.
type Q6Result struct {
	Cost
	Revenue float64
}

// Q1Result reports a Q1 execution: the result groups plus the modeled cycles.
type Q1Result struct {
	Cost
	Rows []Q1Row
}

// RunQ6 executes the TPC-H-Q6-shaped query on a lineitem table with the
// given execution model. The query plans are single-threaded; the context is
// checked before execution starts.
func (e *Engine) RunQ6(ctx context.Context, eng QueryEngine, lineitem *Table) (Q6Result, error) {
	if err := ctx.Err(); err != nil {
		return Q6Result{}, fmt.Errorf("hwstar: q6 aborted: %w", err)
	}
	acct := hw.NewAccount(e.machine, hw.DefaultContext())
	sum, err := queries.Q6(eng, lineitem, queries.DefaultQ6(), acct)
	if err != nil {
		return Q6Result{}, err
	}
	return Q6Result{Revenue: sum, Cost: Cost{SimCycles: acct.TotalCycles()}}, nil
}

// RunQ1 executes the TPC-H-Q1-shaped query on a lineitem table with the
// given execution model. The query plans are single-threaded; the context is
// checked before execution starts.
func (e *Engine) RunQ1(ctx context.Context, eng QueryEngine, lineitem *Table) (Q1Result, error) {
	if err := ctx.Err(); err != nil {
		return Q1Result{}, fmt.Errorf("hwstar: q1 aborted: %w", err)
	}
	acct := hw.NewAccount(e.machine, hw.DefaultContext())
	rows, err := queries.Q1(eng, lineitem, queries.DefaultQ1(), acct)
	if err != nil {
		return Q1Result{}, err
	}
	return Q1Result{Rows: rows, Cost: Cost{SimCycles: acct.TotalCycles()}}, nil
}

// Server is a concurrent query service on top of the engine: an
// admission-controlled intake queue feeding a dispatcher that batches
// compatible scan requests into one shared clock scan and schedules other
// operations under a per-server simulated-core budget. See the serve
// package for the full semantics; NewServer is the entry point.
type Server = serve.Server

// ServerOptions configures a Server (worker budget, queue depth, batching
// window, batch size cap). The zero value uses sensible defaults.
type ServerOptions = serve.Options

// Request is one operation submitted to a Server.
type Request = serve.Request

// Response is a Server's answer: the operation's result fields plus the
// amortized modeled cost.
type Response = serve.Response

// ServerOp names a Server operation kind.
type ServerOp = serve.Op

// Server operation kinds.
const (
	OpScan     = serve.OpScan
	OpJoin     = serve.OpJoin
	OpGroupSum = serve.OpGroupSum
	OpQ1       = serve.OpQ1
	OpQ6       = serve.OpQ6
)

// NewServer starts a query server on the given machine profile. Submit
// queries with Server.Submit; stop it with Server.Close, which drains
// admitted work before returning.
func NewServer(m *Machine, opts ServerOptions) (*Server, error) {
	return serve.New(m, opts)
}

// FaultConfig arms a fault injector: seeded, per-class probabilities for
// injected panics, stragglers, transient failures, core loss, and allocation
// failures. See internal/fault for the full semantics.
type FaultConfig = fault.Config

// FaultInjector produces deterministic faults and logs every firing. Arm
// one on a Server via ServerOptions.Faults; read its Log/Counts afterwards
// to prove what the run survived.
type FaultInjector = fault.Injector

// FaultEvent is one fired fault in a FaultInjector's log.
type FaultEvent = fault.Event

// NewFaultInjector builds an injector from a FaultConfig.
var NewFaultInjector = fault.New

// ServerHealth is the resilience snapshot returned by Server.Health():
// breaker state, failure streak, retry/re-dispatch counters, memory-governor
// position, and injected fault counts.
type ServerHealth = serve.Health

// MemoryConfig arms a Server's memory governor via ServerOptions.Memory: a
// server-wide byte budget, a per-query reservation granted at admission, and
// optionally KillOnOverage (the "naive engine" mode E22 uses as its
// baseline, where allocation always succeeds but crossing the budget is a
// fatal simulated OOM kill). See internal/mem for the full semantics.
type MemoryConfig = mem.Config

// MemoryStats is the governor's snapshot inside ServerHealth.Memory: budget
// position, peak usage, live reservations, and denial/kill counters.
type MemoryStats = mem.Stats

// Store is the durable storage tier: checkpointed columnar segments with
// per-segment checksums, an atomically-committed versioned manifest,
// crash-recovery replay, and DRAM/flash tiering priced through the machine's
// flash bandwidth. Arm one on a Server via ServerOptions.Store; the server
// replays the hot set before admitting work and the caller closes the store
// after Server.Close. See internal/store for the commit protocol.
type Store = store.Store

// StoreOptions configures a Store: directory, pricing machine, fault
// injector, and the DRAM budget of the hot/cold placement policy.
type StoreOptions = store.Options

// RecoveryStats describes one OpenStore's replay of durable state:
// the manifest version recovery landed on, fallbacks past corrupt
// candidates, and the validated byte volume with its modeled flash cost.
type RecoveryStats = store.RecoveryStats

// CheckpointStats describes one committed checkpoint: manifest version,
// segments and bytes written, modeled flash-write cycles, and wall time.
type CheckpointStats = store.CheckpointStats

// OpenStore opens (or creates) a durable store and replays its committed
// state, falling back to the newest manifest version that validates end to
// end. A directory whose manifests are all corrupt fails with ErrCorrupted
// rather than silently serving an empty store.
var OpenStore = store.Open

// Tracer records query-lifecycle span trees (admit → queue → batch assembly
// → execute → retries, down to per-worker schedules) in a bounded ring. Arm
// one on a Server via ServerOptions.Trace; read completed traces with
// Tracer.Snapshot. A nil Tracer is valid everywhere and records nothing.
type Tracer = trace.Tracer

// Span is one stage of a traced request. All methods are nil-safe, so
// instrumented code never branches on whether tracing is armed.
type Span = trace.Span

// TraceConfig sizes a Tracer: ring capacity, per-trace span cap, sampling
// rate. The zero value uses sensible defaults.
type TraceConfig = trace.Config

// TraceData is an immutable snapshot of one completed trace; SpanData one
// span of it. TraceData.Render formats the span tree for humans.
type (
	TraceData = trace.TraceData
	SpanData  = trace.SpanData
)

// NewTracer builds a Tracer from a TraceConfig.
var NewTracer = trace.New

// Data generators re-exported from internal/workload so examples and users
// can produce the same deterministic datasets the experiments use.
var (
	// GenUniform returns n keys uniform in [0, max).
	GenUniform = workload.UniformInts
	// GenZipf returns n keys in [0, max) with Zipf skew s.
	GenZipf = workload.ZipfInts
	// GenShuffled returns a permutation of 0..n-1.
	GenShuffled = workload.ShuffledInts
	// GenLineItem generates a TPC-H-flavoured lineitem table.
	GenLineItem = workload.LineItem
)

// JoinData holds generated foreign-key join inputs.
type JoinData = workload.JoinInput

// GenJoin generates a foreign-key join input: build rows with unique keys
// and probe rows drawn from the build domain with optional Zipf skew.
func GenJoin(seed int64, buildRows, probeRows int, zipfS float64) JoinData {
	return workload.GenerateJoin(workload.JoinConfig{
		Seed: seed, BuildRows: buildRows, ProbeRows: probeRows, ZipfS: zipfS,
	})
}

// Router is the sharded serving tier: N serve.Server shards behind a
// consistent-hash router with R-way replication, replica failover with
// per-node circuit breakers, hedged dispatch against stragglers,
// cost-model-chosen distributed join strategies, typed partial results on
// total replica loss, and governed re-replication from surviving durable
// stores on node recovery. See internal/shard.
type Router = shard.Router

// RouterOptions configures a Router: shard/replica/partition counts, the
// per-shard ServerOptions, per-node durable stores, cluster fabric, fault
// injector, cluster-wide admission and memory budgets, and the hedging and
// breaker policy.
type RouterOptions = shard.Options

// RouterResponse is a Router's distributed answer: the serve.Response plus
// the fabric price paid (strategy, network cycles, bytes moved) and the
// routing story (hedged, failovers).
type RouterResponse = shard.Response

// ClusterHealth is the Router's observability surface: topology, live
// nodes, routing counters (failovers, hedges, partials, re-replications),
// and per-node breakdowns.
type ClusterHealth = shard.ClusterHealth

// NodeHealth is one shard's slice of ClusterHealth.
type NodeHealth = shard.NodeHealth

// PartitionInfo describes one partition's placement: its row stripe and
// replica set. Chaos tooling uses it to stage targeted failures.
type PartitionInfo = shard.PartitionInfo

// NewRouter boots a sharded serving tier on the given machine profile,
// waiting for every shard's durable replay (if stores are armed) before
// returning.
var NewRouter = shard.New

// Frontend is the multi-tenant HTTP/JSON face of a Server: sessions with
// bearer tokens, per-tenant token-bucket rate limits and concurrency quotas,
// priority classes, and the versioned v1 wire protocol. Mount
// Frontend.Handler on an http.Server. See internal/frontend.
type Frontend = frontend.Frontend

// FrontendConfig assembles a Frontend: the backend it fronts (a Server, or
// any FrontendBackend such as a Router), the tenant set, session TTL, query
// timeout, and named lineitem tables for q1/q6.
type FrontendConfig = frontend.Config

// FrontendBackend is the engine surface a Frontend fronts; both *Server and
// *Router satisfy it.
type FrontendBackend = frontend.Backend

// TenantConfig declares one tenant: id, API key, default priority class, and
// its governance envelope (rate limit, concurrency quota, memory cap).
type TenantConfig = frontend.TenantConfig

// NewFrontend validates a FrontendConfig and builds the HTTP API state.
var NewFrontend = frontend.New

// Priority classifies a Server request's dispatch class; batch work is
// core-capped and queued behind interactive work so it cannot starve
// interactive p99.
type Priority = serve.Priority

// Priority classes.
const (
	PriorityInteractive = serve.PriorityInteractive
	PriorityBatch       = serve.PriorityBatch
)

// TenantHealth is one tenant's slice of a Server's counters and latency
// distribution, inside ServerHealth.Tenants.
type TenantHealth = serve.TenantHealth

// V1 wire protocol DTOs: the stable JSON contract of the Frontend's
// /v1/* endpoints, decoupled from the internal Request/Response types.
type (
	// V1QueryRequest is the body of POST /v1/query.
	V1QueryRequest = v1.QueryRequest
	// V1QueryResponse is its success body (cost, spill, result).
	V1QueryResponse = v1.QueryResponse
	// V1SessionRequest and V1SessionResponse open sessions.
	V1SessionRequest  = v1.SessionRequest
	V1SessionResponse = v1.SessionResponse
	// V1HealthResponse is the body of GET /v1/health.
	V1HealthResponse = v1.HealthResponse
	// V1TenantStats is the body of GET /v1/tenants/{id}/stats.
	V1TenantStats = v1.TenantStats
	// V1ErrorBody is the structured envelope of every non-2xx response;
	// V1ErrorInfo its payload (stable code, retryability, retry-after).
	V1ErrorBody = v1.ErrorBody
	V1ErrorInfo = v1.ErrorInfo
)

// V1CodeFor classifies an error against the v1 wire error-code table,
// returning the stable code, HTTP status, and retryability.
var V1CodeFor = v1.CodeFor

// RunExperiment executes one experiment of the E1–E24 suite at the given
// scale (1 = full size) and returns its result tables.
func RunExperiment(id string, scale float64) ([]*ResultTable, error) {
	exp, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return exp.Run(experiments.Config{Scale: scale})
}

// ExperimentIDs lists the available experiment identifiers in order.
func ExperimentIDs() []string {
	all := experiments.All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}
