module hwstar

go 1.22
