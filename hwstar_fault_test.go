package hwstar

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hwstar/internal/errs"
)

// TestSentinelFacade asserts every sentinel in internal/errs is re-exported
// by the façade as the identical value, so errors.Is classification works
// across the package boundary, including through wrapping.
func TestSentinelFacade(t *testing.T) {
	cases := []struct {
		name     string
		internal error
		public   error
	}{
		{"ErrNilMachine", errs.ErrNilMachine, ErrNilMachine},
		{"ErrWorkersOutOfRange", errs.ErrWorkersOutOfRange, ErrWorkersOutOfRange},
		{"ErrInvalidInput", errs.ErrInvalidInput, ErrInvalidInput},
		{"ErrOverloaded", errs.ErrOverloaded, ErrOverloaded},
		{"ErrClosed", errs.ErrClosed, ErrClosed},
		{"ErrWorkerPanic", errs.ErrWorkerPanic, ErrWorkerPanic},
		{"ErrTransient", errs.ErrTransient, ErrTransient},
		{"ErrDegraded", errs.ErrDegraded, ErrDegraded},
	}
	for _, c := range cases {
		if c.internal != c.public {
			t.Errorf("%s: façade value differs from internal sentinel", c.name)
		}
		wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", c.internal))
		if !errors.Is(wrapped, c.public) {
			t.Errorf("%s: errors.Is fails through wrapping", c.name)
		}
	}
}

// TestFaultErrorsReachClients produces each resilience sentinel through the
// public API: a server without isolation surfaces ErrWorkerPanic, one
// without retries surfaces ErrTransient, and a tripped breaker sheds with
// ErrDegraded.
func TestFaultErrorsReachClients(t *testing.T) {
	cols := [][]int64{GenUniform(51, 4096, 1000), GenUniform(52, 4096, 100)}
	scanReq := Request{Op: OpScan, Table: "facts", Query: ScanQuery{FilterCol: 0, Lo: 0, Hi: 1000, AggCol: 1}}
	groupReq := Request{Op: OpGroupSum, Keys: cols[0], Vals: cols[1], Strategy: AggRadix}

	newSrv := func(t *testing.T, opts ServerOptions) *Server {
		t.Helper()
		opts.QueueDepth = 8
		opts.MaxBatch = 1
		srv, err := NewServer(Server2S(), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Register("facts", cols); err != nil {
			t.Fatal(err)
		}
		return srv
	}

	t.Run("worker panic", func(t *testing.T) {
		srv := newSrv(t, ServerOptions{
			Faults: NewFaultInjector(FaultConfig{Seed: 1, PanicProb: 1, MaxFaults: 1}),
		})
		if _, err := srv.Submit(context.Background(), scanReq); !errors.Is(err, ErrWorkerPanic) {
			t.Fatalf("err = %v, want ErrWorkerPanic", err)
		}
	})

	t.Run("transient", func(t *testing.T) {
		srv := newSrv(t, ServerOptions{
			Faults: NewFaultInjector(FaultConfig{Seed: 1, TransientProb: 1, MaxFaults: 1}),
		})
		if _, err := srv.Submit(context.Background(), scanReq); !errors.Is(err, ErrTransient) {
			t.Fatalf("err = %v, want ErrTransient", err)
		}
	})

	t.Run("degraded", func(t *testing.T) {
		srv := newSrv(t, ServerOptions{
			Faults:           NewFaultInjector(FaultConfig{Seed: 1, TransientProb: 1, MaxFaults: 1}),
			BreakerThreshold: 1,
		})
		if _, err := srv.Submit(context.Background(), groupReq); !errors.Is(err, ErrTransient) {
			t.Fatalf("tripping failure: %v", err)
		}
		if _, err := srv.Submit(context.Background(), groupReq); !errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v, want ErrDegraded", err)
		}
		if h := srv.Health(); h.State != "degraded" {
			t.Fatalf("health state = %q, want degraded", h.State)
		}
	})
}
