GO ?= go

.PHONY: all build vet lint test race check bench experiments clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the static-analysis gate: go vet always, staticcheck and
# govulncheck when installed. Missing tools are reported and skipped, not
# fetched, so offline builds and hermetic CI runners both pass.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipped (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: compile everything, run the static
# analyzers, and run the whole suite under the race detector.
check:
	$(GO) build ./...
	$(MAKE) lint
	$(GO) test -race ./...

bench:
	$(GO) test -bench=BenchmarkE -benchtime=1x .

experiments:
	$(GO) run ./cmd/hwbench

clean:
	$(GO) clean ./...
