GO ?= go

.PHONY: all build vet test race check bench experiments clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: compile everything, vet, and run the
# whole suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=BenchmarkE -benchtime=1x .

experiments:
	$(GO) run ./cmd/hwbench

clean:
	$(GO) clean ./...
