GO ?= go

# STRICT=1 (set in CI) turns missing optional analyzers (staticcheck,
# govulncheck) into hard failures instead of skips, so the CI gate can never
# silently narrow. hwlint is never optional: it is built from this tree with
# no dependencies beyond the toolchain.
STRICT ?=

.PHONY: all build vet hwlint lint lint-report test race race-core check bench bench-frontend bench-store bench-serve bench-cluster experiments clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# hwlint is the house-rule gate: the internal/analysis suite (ctxfirst,
# seededrand, senterr, pairedresource, nolockcopy, hotalloc, goroleak,
# lockorder, atomiconly, commitproto) over every package. Non-zero on any
# violation.
hwlint:
	$(GO) run ./cmd/hwlint

# lint is the full static-analysis gate: go vet and hwlint always;
# staticcheck and govulncheck when installed (always, under STRICT=1).
lint: vet hwlint
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	elif [ -n "$(STRICT)" ]; then echo "lint: staticcheck required under STRICT but not installed" >&2; exit 1; \
	else echo "lint: staticcheck not installed, skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	elif [ -n "$(STRICT)" ]; then echo "lint: govulncheck required under STRICT but not installed" >&2; exit 1; \
	else echo "lint: govulncheck not installed, skipped (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

# lint-report prints every hwlint diagnostic as file:line:col (editor-
# jumpable) and always exits 0: the editor-loop companion to the hard gate.
lint-report:
	@$(GO) run ./cmd/hwlint || true

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core re-runs the concurrency-heavy layers race-enabled and uncached:
# the serving, scheduling, memory-governance, and network-frontend suites are
# where a data race would land first, so they get a fresh pass even when the
# full race target is cache-warm. store joined when the checkpoint/recovery
# paths went concurrent (PR 7/8); cluster, concurrent, and metrics are the
# remaining shared-mutable-state tiers.
race-core:
	$(GO) test -race -count=1 ./internal/serve ./internal/sched ./internal/mem ./internal/frontend ./internal/vecexec ./internal/compress ./internal/shard ./internal/store ./internal/cluster ./internal/concurrent ./internal/metrics

# check is the full verification gate: compile everything, run the static
# analyzers, and run the whole suite under the race detector (core
# concurrency packages uncached).
check:
	$(GO) build ./...
	$(MAKE) lint
	$(MAKE) race-core
	$(GO) test -race ./...

bench:
	$(GO) test -bench=BenchmarkE -benchtime=1x .

# bench-frontend runs E23 (multi-tenant isolation over the HTTP API) at full
# scale and regenerates the committed BENCH_frontend.json artifact.
bench-frontend:
	$(GO) run ./cmd/hwbench -scale 1 -frontend-json BENCH_frontend.json E23

# bench-store runs E24 (durable tier: kill/recover schedules, recovery time
# vs data volume, checkpoint interference) at full scale and regenerates the
# committed BENCH_store.json artifact.
bench-store:
	$(GO) run ./cmd/hwbench -scale 1 -store-json BENCH_store.json E24

# bench-serve runs E25 (vectorized compressed serving: speedup over the
# row-at-a-time path, controller convergence, chaos-mix tail latency) at full
# scale and regenerates the committed BENCH_serve.json artifact.
bench-serve:
	$(GO) run ./cmd/hwbench -scale 1 -serve-json BENCH_serve.json E25

# bench-cluster runs E26 (sharded tier: node-kill/failover cycles, hedged
# dispatch vs stragglers, typed partial results, distributed join strategy)
# at full scale and regenerates the committed BENCH_cluster.json artifact.
bench-cluster:
	$(GO) run ./cmd/hwbench -scale 1 -cluster-json BENCH_cluster.json E26

experiments:
	$(GO) run ./cmd/hwbench

clean:
	$(GO) clean ./...
