package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("new counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("sum = %f, want 15", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %f, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %f/%f, want 1/5", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("median = %f, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %f, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q1 = %f, want 5", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if got := h.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %f, want %f", got, want)
	}
}

func TestHistogramInterpolation(t *testing.T) {
	h := NewHistogram(2)
	h.Record(0)
	h.Record(10)
	if got := h.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q0.25 = %f, want 2.5", got)
	}
}

func TestHistogramRecordAfterQuantile(t *testing.T) {
	// Recording after a quantile query must invalidate the sorted cache.
	h := NewHistogram(4)
	h.Record(5)
	_ = h.Quantile(0.5)
	h.Record(1)
	if got := h.Min(); got != 1 {
		t.Fatalf("min after late record = %f, want 1", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(4)
	h.Record(9)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset did not clear histogram")
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			h.Record(v)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := h.Quantile(qa), h.Quantile(qb)
		return va <= vb+1e-9 && va >= h.Min()-1e-9 && vb <= h.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median of a shuffled known multiset equals the true median.
func TestHistogramMedianMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		h := NewHistogram(n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
			h.Record(vals[i])
		}
		sort.Float64s(vals)
		pos := 0.5 * float64(n-1)
		lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
		frac := pos - float64(lo)
		want := vals[lo]*(1-frac) + vals[hi]*frac
		if got := h.Quantile(0.5); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: median = %f, want %f", trial, got, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Add(4)
	r.Counter("b").Inc()
	r.Histogram("h").Record(1)

	if got := r.Counter("a").Value(); got != 7 {
		t.Fatalf("counter a = %d, want 7", got)
	}
	snap := r.Counters()
	if snap["a"] != 7 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "h" {
		t.Fatalf("names = %v", names)
	}
	r.Reset()
	if r.Counter("a").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatalf("registry reset failed")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Record(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 4000 {
		t.Fatalf("shared = %d, want 4000", got)
	}
	if got := r.Histogram("lat").Count(); got != 4000 {
		t.Fatalf("lat count = %d, want 4000", got)
	}
}

func TestHistogramSummaryNonEmpty(t *testing.T) {
	h := NewHistogram(1)
	h.Record(2)
	if s := h.Summary(); s == "" {
		t.Fatal("summary should not be empty")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(8)
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	st := h.Stats()
	if st.Count != 100 || st.Mean != 50.5 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != h.Quantile(0.5) || st.P95 != h.Quantile(0.95) || st.P99 != h.Quantile(0.99) {
		t.Fatalf("stats quantiles disagree with Quantile: %+v", st)
	}
	if empty := NewHistogram(0).Stats(); empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("depth").Set(7)
	r.Histogram("lat").Record(1)
	r.Histogram("lat").Record(3)
	s := r.Snapshot()
	if s.Counters["reqs"] != 3 || s.Gauges["depth"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Histograms["lat"]; got.Count != 2 || got.Mean != 2 || got.Max != 3 {
		t.Fatalf("snapshot histogram = %+v", got)
	}
	// The snapshot is a copy: later recording must not change it.
	r.Counter("reqs").Inc()
	if s.Counters["reqs"] != 3 {
		t.Fatal("snapshot aliases live counters")
	}
}
