package metrics

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("new counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("sum = %f, want 15", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %f, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %f/%f, want 1/5", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("median = %f, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %f, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q1 = %f, want 5", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if got := h.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %f, want %f", got, want)
	}
}

func TestHistogramInterpolation(t *testing.T) {
	h := NewHistogram(2)
	h.Record(0)
	h.Record(10)
	if got := h.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q0.25 = %f, want 2.5", got)
	}
}

func TestHistogramRecordAfterQuantile(t *testing.T) {
	// Recording after a quantile query must invalidate the sorted cache.
	h := NewHistogram(4)
	h.Record(5)
	_ = h.Quantile(0.5)
	h.Record(1)
	if got := h.Min(); got != 1 {
		t.Fatalf("min after late record = %f, want 1", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(4)
	h.Record(9)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset did not clear histogram")
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			h.Record(v)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := h.Quantile(qa), h.Quantile(qb)
		return va <= vb+1e-9 && va >= h.Min()-1e-9 && vb <= h.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median of a shuffled known multiset equals the true median.
func TestHistogramMedianMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		h := NewHistogram(n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
			h.Record(vals[i])
		}
		sort.Float64s(vals)
		pos := 0.5 * float64(n-1)
		lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
		frac := pos - float64(lo)
		want := vals[lo]*(1-frac) + vals[hi]*frac
		if got := h.Quantile(0.5); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: median = %f, want %f", trial, got, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Add(4)
	r.Counter("b").Inc()
	r.Histogram("h").Record(1)

	if got := r.Counter("a").Value(); got != 7 {
		t.Fatalf("counter a = %d, want 7", got)
	}
	snap := r.Counters()
	if snap["a"] != 7 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "h" {
		t.Fatalf("names = %v", names)
	}
	r.Reset()
	if r.Counter("a").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatalf("registry reset failed")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Record(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 4000 {
		t.Fatalf("shared = %d, want 4000", got)
	}
	if got := r.Histogram("lat").Count(); got != 4000 {
		t.Fatalf("lat count = %d, want 4000", got)
	}
}

func TestHistogramSummaryNonEmpty(t *testing.T) {
	h := NewHistogram(1)
	h.Record(2)
	if s := h.Summary(); s == "" {
		t.Fatal("summary should not be empty")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(8)
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	st := h.Stats()
	if st.Count != 100 || st.Mean != 50.5 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != h.Quantile(0.5) || st.P95 != h.Quantile(0.95) || st.P99 != h.Quantile(0.99) {
		t.Fatalf("stats quantiles disagree with Quantile: %+v", st)
	}
	if empty := NewHistogram(0).Stats(); empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

// Regression for the unbounded-growth leak: 10M samples must stay under a
// hard memory ceiling, while count/sum/min/max stay exact.
func TestHistogramBoundedUnderSustainedLoad(t *testing.T) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	h := NewHistogram(64)
	const n = 10_000_000
	for i := 0; i < n; i++ {
		h.Record(float64(i % 1000))
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.SampleLen() > DefaultReservoir {
		t.Fatalf("reservoir holds %d samples, bound is %d", h.SampleLen(), DefaultReservoir)
	}
	if h.Min() != 0 || h.Max() != 999 {
		t.Fatalf("min/max = %f/%f, want 0/999", h.Min(), h.Max())
	}
	if got, want := h.Sum(), float64(n/1000)*(999*1000/2); got != want {
		t.Fatalf("sum = %f, want %f", got, want)
	}
	// 10M float64 samples would be 80MB; the reservoir keeps 8192 (64KB).
	// Allow generous slack for allocator noise.
	const ceiling = 8 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Fatalf("heap grew %d bytes recording 10M samples, ceiling %d", grew, ceiling)
	}
}

// Past the reservoir bound, quantiles are estimates over a uniform
// subsample; for a uniform input the median must land near the middle.
func TestHistogramReservoirQuantileEstimate(t *testing.T) {
	h := NewHistogramReservoir(1024)
	rng := rand.New(rand.NewSource(7))
	const n = 200_000
	for i := 0; i < n; i++ {
		h.Record(rng.Float64() * 100)
	}
	if h.Count() != n || h.SampleLen() != 1024 {
		t.Fatalf("count/reservoir = %d/%d, want %d/1024", h.Count(), h.SampleLen(), n)
	}
	if p50 := h.Quantile(0.5); p50 < 40 || p50 > 60 {
		t.Fatalf("reservoir p50 = %f, want ~50", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 95 {
		t.Fatalf("reservoir p99 = %f, want >= 95", p99)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile endpoints must stay exact min/max")
	}
}

// Quantile's domain is defined for all inputs: NaN in, NaN out; q outside
// [0,1] clamps to the exact extremes; the empty histogram reports 0.
func TestHistogramQuantileDomain(t *testing.T) {
	h := NewHistogram(4)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("empty histogram NaN quantile = %f, want 0", got)
	}
	for _, v := range []float64{5, 1, 3} {
		h.Record(v)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %f, want NaN", got)
	}
	if got := h.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %f, want min 1", got)
	}
	if got := h.Quantile(2); got != 5 {
		t.Fatalf("Quantile(2) = %f, want max 5", got)
	}
	if got := h.Quantile(math.Inf(1)); got != 5 {
		t.Fatalf("Quantile(+Inf) = %f, want max 5", got)
	}
	if got := h.Quantile(math.Inf(-1)); got != 1 {
		t.Fatalf("Quantile(-Inf) = %f, want min 1", got)
	}
}

// Satellite regression: Snapshot must be safe against concurrent Record/Inc
// on the same registry (run under -race).
func TestSnapshotConcurrentWithRecording(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("ops").Inc()
				r.Gauge("depth").Set(int64(i))
				r.Histogram("lat").Record(float64(i % 100))
				if g == 0 && i%10 == 0 {
					r.Counter("extra" + string(rune('a'+i%26))).Inc()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if s.Counters["ops"] < 0 {
			t.Fatal("negative counter in snapshot")
		}
		if h, ok := s.Histograms["lat"]; ok && h.Count > 0 && (h.P50 < 0 || h.P99 > 99) {
			t.Fatalf("implausible snapshot histogram: %+v", h)
		}
	}
	close(stop)
	wg.Wait()
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.admitted").Add(42)
	r.Gauge("serve.queue_depth").Set(7)
	for i := 1; i <= 100; i++ {
		r.Histogram("serve.latency_ms").Record(float64(i))
	}
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_admitted counter\nserve_admitted 42\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 7\n",
		"# TYPE serve_latency_ms summary\n",
		"serve_latency_ms{quantile=\"0.99\"}",
		"serve_latency_ms_sum 5050\n",
		"serve_latency_ms_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two scrapes of the same state render identically.
	var b2 strings.Builder
	if err := r.Snapshot().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("prometheus output is not deterministic")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.latency_ms": "serve_latency_ms",
		"a-b c":            "a_b_c",
		"9lives":           "_9lives",
		"ok_name:x":        "ok_name:x",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("depth").Set(7)
	r.Histogram("lat").Record(1)
	r.Histogram("lat").Record(3)
	s := r.Snapshot()
	if s.Counters["reqs"] != 3 || s.Gauges["depth"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Histograms["lat"]; got.Count != 2 || got.Mean != 2 || got.Max != 3 {
		t.Fatalf("snapshot histogram = %+v", got)
	}
	// The snapshot is a copy: later recording must not change it.
	r.Counter("reqs").Inc()
	if s.Counters["reqs"] != 3 {
		t.Fatal("snapshot aliases live counters")
	}
}
