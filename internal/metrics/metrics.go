// Package metrics provides lightweight counters, timers, and histograms used
// throughout hwstar to record both real (wall-clock) and simulated
// (model-cycle) measurements.
//
// The package is deliberately dependency-free and allocation-conscious:
// experiment harnesses create thousands of histograms and counters during a
// parameter sweep, and the cost of recording a sample must be negligible
// compared to the work being measured.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Negative deltas are permitted so that
// callers can implement gauges on top of Counter, but the common use is
// monotonic counting.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable 64-bit value safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultReservoir is the default sample bound of a Histogram: below it every
// sample is kept and order statistics are exact; above it the histogram keeps
// a uniform reservoir of this size, so memory stays bounded under sustained
// serving load while count, sum, mean, min, max, and stddev remain exact.
const DefaultReservoir = 8192

// Histogram records float64 samples and reports order statistics. It is
// bounded: up to its reservoir size (DefaultReservoir unless set with
// NewHistogramReservoir) all samples are retained and quantiles are exact;
// beyond it, reservoir sampling (Vitter's Algorithm R, deterministic seed)
// keeps a uniform subset for quantile estimation. Count, Sum, Mean, Min,
// Max, and Stddev are always computed over every recorded sample. Record is
// O(1); quantile queries sort the reservoir lazily.
type Histogram struct {
	mu       sync.Mutex
	vals     []float64 // the reservoir (all samples while count <= maxKeep)
	maxKeep  int
	sorted   bool
	count    int64
	sum      float64
	sumSq    float64
	minV     float64
	maxV     float64
	rngState uint64
}

// NewHistogram returns an empty histogram with capacity hint n and the
// default reservoir bound.
func NewHistogram(n int) *Histogram {
	if n > DefaultReservoir {
		n = DefaultReservoir
	}
	return &Histogram{vals: make([]float64, 0, n), maxKeep: DefaultReservoir, rngState: 0x9E3779B97F4A7C15}
}

// NewHistogramReservoir returns an empty histogram that retains at most
// reservoir samples (minimum 16) for quantile estimation.
func NewHistogramReservoir(reservoir int) *Histogram {
	if reservoir < 16 {
		reservoir = 16
	}
	return &Histogram{maxKeep: reservoir, rngState: 0x9E3779B97F4A7C15}
}

// nextRand is a splitmix64 step — a tiny deterministic generator so reservoir
// eviction does not contend on the global math/rand lock.
func (h *Histogram) nextRand() uint64 {
	h.rngState += 0x9E3779B97F4A7C15
	z := h.rngState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.minV {
		h.minV = v
	}
	if h.count == 0 || v > h.maxV {
		h.maxV = v
	}
	h.count++
	h.sum += v
	h.sumSq += v * v
	if len(h.vals) < h.maxKeep {
		h.vals = append(h.vals, v)
		h.sorted = false
	} else if j := h.nextRand() % uint64(h.count); j < uint64(h.maxKeep) {
		// Algorithm R: sample i (>= maxKeep) replaces a random slot with
		// probability maxKeep/i, keeping the reservoir uniform over all
		// samples seen.
		h.vals[j] = v
		h.sorted = false
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples (all of them, not just the
// retained reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (exact), or 0 for an empty histogram.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.minV
}

// Max returns the largest sample (exact), or 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxV
}

// Quantile returns the q-quantile using linear interpolation between order
// statistics (the "type 7" estimator): position q*(n-1) in the sorted
// samples, interpolating between the two neighbouring ranks when it is
// fractional. Once the sample count exceeds the reservoir bound the result
// is an estimate over a uniform subsample; the q=0 and q=1 endpoints stay
// exact (tracked min/max).
//
// Out-of-domain inputs are defined: q is clamped to [0, 1] (q <= 0 returns
// the minimum, q >= 1 the maximum), a NaN q returns NaN, and an empty
// histogram returns 0 for any q.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.minV
	}
	if q >= 1 {
		return h.maxV
	}
	h.ensureSortedLocked()
	n := len(h.vals)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.vals[lo]
	}
	frac := pos - float64(lo)
	return h.vals[lo]*(1-frac) + h.vals[hi]*frac
}

// Stddev returns the population standard deviation over all recorded
// samples (exact, via running sums).
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	mean := h.sum / float64(h.count)
	varr := h.sumSq/float64(h.count) - mean*mean
	if varr < 0 {
		varr = 0 // floating-point cancellation guard
	}
	return math.Sqrt(varr)
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.vals = h.vals[:0]
	h.count = 0
	h.sum = 0
	h.sumSq = 0
	h.minV = 0
	h.maxV = 0
	h.sorted = false
	h.mu.Unlock()
}

// SampleLen returns the number of retained samples — bounded by the
// reservoir size no matter how many were recorded.
func (h *Histogram) SampleLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Summary returns a compact single-line description with count, mean, and
// common tail percentiles, suitable for experiment logs.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// HistogramStats is a compact, copyable summary of a histogram — what
// health endpoints and experiment tables need without holding the samples.
type HistogramStats struct {
	Count                              int
	Sum, Mean, Min, P50, P95, P99, Max float64
}

// Stats returns the histogram's summary statistics in one lock acquisition
// per quantile family.
func (h *Histogram) Stats() HistogramStats {
	return HistogramStats{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Registry is a named collection of counters and histograms. Operators and
// substrates register their metrics here so that experiments can snapshot
// everything that happened during a run.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	hists  map[string]*Histogram
	gauges map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]*Gauge),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(64)
		r.hists[name] = h
	}
	return h
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Gauges returns a snapshot of all gauge values keyed by name.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	return out
}

// Counters returns a snapshot of all counter values keyed by name.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.ctrs))
	for k, c := range r.ctrs {
		out[k] = c.Value()
	}
	return out
}

// Names returns the sorted names of all registered counters and histograms.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ctrs)+len(r.hists)+len(r.gauges))
	for k := range r.ctrs {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot is a point-in-time copy of everything a registry recorded.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramStats
}

// Snapshot captures all counters, gauges, and histogram summaries at once,
// for health reporting and experiment output.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	names := make([]string, 0, len(r.hists))
	for k, h := range r.hists {
		hists = append(hists, h)
		names = append(names, k)
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   r.Counters(),
		Gauges:     r.Gauges(),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	// Histogram stats are computed outside the registry lock: Quantile
	// sorts lazily and must not block concurrent Counter/Histogram lookups.
	for i, h := range hists {
		s.Histograms[names[i]] = h.Stats()
	}
	return s
}

// Reset resets every counter and histogram in the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
}
