// Package metrics provides lightweight counters, timers, and histograms used
// throughout hwstar to record both real (wall-clock) and simulated
// (model-cycle) measurements.
//
// The package is deliberately dependency-free and allocation-conscious:
// experiment harnesses create thousands of histograms and counters during a
// parameter sweep, and the cost of recording a sample must be negligible
// compared to the work being measured.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Negative deltas are permitted so that
// callers can implement gauges on top of Counter, but the common use is
// monotonic counting.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable 64-bit value safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records float64 samples and reports order statistics. It keeps
// every sample, which is appropriate for experiment-scale data (up to a few
// million samples); Record is O(1) amortized and quantile queries sort lazily.
type Histogram struct {
	mu     sync.Mutex
	vals   []float64
	sorted bool
	sum    float64
}

// NewHistogram returns an empty histogram with capacity hint n.
func NewHistogram(n int) *Histogram {
	return &Histogram{vals: make([]float64, 0, n)}
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.mu.Lock()
	h.vals = append(h.vals, v)
	h.sorted = false
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	return h.sum / float64(len(h.vals))
}

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ensureSortedLocked()
	if len(h.vals) == 0 {
		return 0
	}
	return h.vals[0]
}

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ensureSortedLocked()
	if len(h.vals) == 0 {
		return 0
	}
	return h.vals[len(h.vals)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank
// interpolation. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ensureSortedLocked()
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.vals[0]
	}
	if q >= 1 {
		return h.vals[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.vals[lo]
	}
	frac := pos - float64(lo)
	return h.vals[lo]*(1-frac) + h.vals[hi]*frac
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.vals = h.vals[:0]
	h.sum = 0
	h.sorted = false
	h.mu.Unlock()
}

// Summary returns a compact single-line description with count, mean, and
// common tail percentiles, suitable for experiment logs.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// HistogramStats is a compact, copyable summary of a histogram — what
// health endpoints and experiment tables need without holding the samples.
type HistogramStats struct {
	Count                    int
	Mean, P50, P95, P99, Max float64
}

// Stats returns the histogram's summary statistics in one lock acquisition
// per quantile family.
func (h *Histogram) Stats() HistogramStats {
	return HistogramStats{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Registry is a named collection of counters and histograms. Operators and
// substrates register their metrics here so that experiments can snapshot
// everything that happened during a run.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	hists  map[string]*Histogram
	gauges map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]*Gauge),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(64)
		r.hists[name] = h
	}
	return h
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Gauges returns a snapshot of all gauge values keyed by name.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	return out
}

// Counters returns a snapshot of all counter values keyed by name.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.ctrs))
	for k, c := range r.ctrs {
		out[k] = c.Value()
	}
	return out
}

// Names returns the sorted names of all registered counters and histograms.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ctrs)+len(r.hists)+len(r.gauges))
	for k := range r.ctrs {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot is a point-in-time copy of everything a registry recorded.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramStats
}

// Snapshot captures all counters, gauges, and histogram summaries at once,
// for health reporting and experiment output.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	names := make([]string, 0, len(r.hists))
	for k, h := range r.hists {
		hists = append(hists, h)
		names = append(names, k)
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   r.Counters(),
		Gauges:     r.Gauges(),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	// Histogram stats are computed outside the registry lock: Quantile
	// sorts lazily and must not block concurrent Counter/Histogram lookups.
	for i, h := range hists {
		s.Histograms[names[i]] = h.Stats()
	}
	return s
}

// Reset resets every counter and histogram in the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
}
