// Prometheus text exposition for registry snapshots. The exporter is
// pull-based and allocation-light: a scrape takes one Snapshot (counters and
// gauges under the registry lock, histogram summaries outside it) and
// renders deterministic, sorted output — no background goroutines, no
// third-party client library.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName converts a registry metric name ("serve.latency_ms") to a valid
// Prometheus metric name ("serve_latency_ms"): every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as summaries with quantile labels plus _sum and _count. Families are
// emitted in sorted name order so scrapes diff cleanly.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			pn, pn, h.P50, pn, h.P95, pn, h.P99, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
