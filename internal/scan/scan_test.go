package scan

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/sched"
	"hwstar/internal/workload"
)

func testRelation(t *testing.T, rows int) *Relation {
	t.Helper()
	r, err := NewRelation([][]int64{
		workload.UniformInts(1, rows, 10000), // col 0: filter domain
		workload.UniformInts(2, rows, 100),   // col 1: agg values
		workload.SequentialInts(rows),        // col 2
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testQueries(n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		lo := int64(i * 37 % 9000)
		qs[i] = Query{FilterCol: 0, Lo: lo, Hi: lo + 500, AggCol: 1}
	}
	return qs
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation(nil); err == nil {
		t.Fatal("empty relation should fail")
	}
	if _, err := NewRelation([][]int64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged columns should fail")
	}
	r, err := NewRelation([][]int64{{1, 2, 3}})
	if err != nil || r.NumRows() != 3 || r.NumCols() != 1 {
		t.Fatalf("relation: %v %v", r, err)
	}
}

func TestQueryValidate(t *testing.T) {
	if err := (Query{FilterCol: 0, Lo: 0, Hi: 1, AggCol: 0}).Validate(1); err != nil {
		t.Fatal(err)
	}
	bad := []Query{
		{FilterCol: -1, Hi: 1},
		{FilterCol: 3, Hi: 1},
		{AggCol: 3, Hi: 1},
		{Lo: 5, Hi: 2},
	}
	for i, q := range bad {
		if err := q.Validate(2); err == nil {
			t.Fatalf("query %d should be invalid", i)
		}
	}
}

func TestSharedMatchesQueryAtATime(t *testing.T) {
	r := testRelation(t, 20000)
	qs := testQueries(50)
	want, err := QueryAtATime(r, qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, indexed := range []bool{false, true} {
		got, err := Shared(r, qs, SharedOptions{UseQueryIndex: indexed}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("indexed=%v: shared scan disagrees with baseline", indexed)
		}
	}
}

func TestSharedMixedFilterColumns(t *testing.T) {
	// Queries on different filter columns cannot use the index but must
	// still be correct.
	r := testRelation(t, 5000)
	qs := []Query{
		{FilterCol: 0, Lo: 0, Hi: 5000, AggCol: 1},
		{FilterCol: 2, Lo: 100, Hi: 200, AggCol: 1},
	}
	want, _ := QueryAtATime(r, qs, nil)
	got, err := Shared(r, qs, SharedOptions{UseQueryIndex: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mixed-filter shared scan disagrees")
	}
}

func TestSharedEmptyQueryBatch(t *testing.T) {
	r := testRelation(t, 100)
	got, err := Shared(r, nil, SharedOptions{}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
}

func TestValidationErrorsPropagate(t *testing.T) {
	r := testRelation(t, 100)
	bad := []Query{{FilterCol: 9, Hi: 1}}
	if _, err := QueryAtATime(r, bad, nil); err == nil {
		t.Fatal("QueryAtATime should reject bad query")
	}
	if _, err := Shared(r, bad, SharedOptions{}, nil); err == nil {
		t.Fatal("Shared should reject bad query")
	}
	m := hw.Laptop()
	s, _ := sched.New(m, sched.Options{Workers: 2})
	if _, _, err := ParallelShared(context.Background(), r, bad, SharedOptions{}, s, 0); err == nil {
		t.Fatal("ParallelShared should reject bad query")
	}
}

func TestSharedSavesBandwidth(t *testing.T) {
	m := hw.Server2S()
	r := testRelation(t, 1<<17)
	qs := testQueries(64)

	qat := hw.NewAccount(m, hw.DefaultContext())
	if _, err := QueryAtATime(r, qs, qat); err != nil {
		t.Fatal(err)
	}
	shared := hw.NewAccount(m, hw.DefaultContext())
	if _, err := Shared(r, qs, SharedOptions{UseQueryIndex: true}, shared); err != nil {
		t.Fatal(err)
	}
	if shared.TotalCycles() >= qat.TotalCycles() {
		t.Fatalf("shared scan %.0f should beat 64× query-at-a-time %.0f",
			shared.TotalCycles(), qat.TotalCycles())
	}
	// The shared scan must stream the data roughly once, not 64 times.
	if sb, qb := shared.Breakdown().Streaming, qat.Breakdown().Streaming; sb*10 > qb {
		t.Fatalf("shared streaming %.0f should be ~64× below baseline %.0f", sb, qb)
	}
}

func TestQueryIndexReducesCompute(t *testing.T) {
	m := hw.Server2S()
	r := testRelation(t, 1<<16)
	qs := testQueries(512)
	naive := hw.NewAccount(m, hw.DefaultContext())
	if _, err := Shared(r, qs, SharedOptions{}, naive); err != nil {
		t.Fatal(err)
	}
	indexed := hw.NewAccount(m, hw.DefaultContext())
	if _, err := Shared(r, qs, SharedOptions{UseQueryIndex: true}, indexed); err != nil {
		t.Fatal(err)
	}
	if indexed.Breakdown().Compute >= naive.Breakdown().Compute {
		t.Fatalf("query index compute %.0f should beat naive %.0f",
			indexed.Breakdown().Compute, naive.Breakdown().Compute)
	}
}

func TestParallelSharedMatchesSerial(t *testing.T) {
	r := testRelation(t, 50000)
	qs := testQueries(32)
	want, _ := QueryAtATime(r, qs, nil)
	m := hw.Server2S()
	s, err := sched.New(m, sched.Options{Workers: 8, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	got, schedRes, err := ParallelShared(context.Background(), r, qs, SharedOptions{UseQueryIndex: true}, s, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel shared scan disagrees")
	}
	if schedRes.TasksRun != (50000+4095)/4096 {
		t.Fatalf("tasks = %d", schedRes.TasksRun)
	}
	if schedRes.Speedup() <= 1 {
		t.Fatalf("speedup = %f", schedRes.Speedup())
	}
}

func TestParallelSharedDefaultSegment(t *testing.T) {
	r := testRelation(t, 1000)
	qs := testQueries(4)
	m := hw.Laptop()
	s, _ := sched.New(m, sched.Options{Workers: 2})
	got, _, err := ParallelShared(context.Background(), r, qs, SharedOptions{}, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := QueryAtATime(r, qs, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("default segment size result wrong")
	}
}

func TestDomain(t *testing.T) {
	lo, hi := domain([]int64{5, -3, 9, 0})
	if lo != -3 || hi != 9 {
		t.Fatalf("domain = %d, %d", lo, hi)
	}
	lo, hi = domain(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty domain should be 0,0")
	}
}

func TestQueryIndexCandidatesComplete(t *testing.T) {
	// Every query must appear among candidates for every value inside its
	// range (no false negatives; false positives are fine).
	qs := testQueries(200)
	qi := buildQueryIndex(qs, 0, 10000)
	for _, v := range []int64{0, 1, 499, 500, 5000, 9999, 10000} {
		cands := map[int32]bool{}
		for _, id := range qi.candidates(v) {
			cands[id] = true
		}
		for id, q := range qs {
			if v >= q.Lo && v <= q.Hi && !cands[int32(id)] {
				t.Fatalf("query %d missing from candidates of value %d", id, v)
			}
		}
	}
}

// Property: shared (indexed and naive) and parallel scans agree with the
// query-at-a-time baseline for random data and queries.
func TestScanEquivalenceProperty(t *testing.T) {
	m := hw.Laptop()
	f := func(seed int64, nq uint8) bool {
		rows := 2000
		r, err := NewRelation([][]int64{
			workload.UniformInts(seed, rows, 1000),
			workload.UniformInts(seed+1, rows, 50),
		})
		if err != nil {
			return false
		}
		qs := make([]Query, int(nq)%20+1)
		los := workload.UniformInts(seed+2, len(qs), 900)
		spans := workload.UniformInts(seed+3, len(qs), 200)
		for i := range qs {
			qs[i] = Query{FilterCol: 0, Lo: los[i], Hi: los[i] + spans[i], AggCol: 1}
		}
		want, err := QueryAtATime(r, qs, nil)
		if err != nil {
			return false
		}
		for _, indexed := range []bool{false, true} {
			got, err := Shared(r, qs, SharedOptions{UseQueryIndex: indexed}, nil)
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		s, err := sched.New(m, sched.Options{Workers: 3, Stealing: true})
		if err != nil {
			return false
		}
		got, _, err := ParallelShared(context.Background(), r, qs, SharedOptions{UseQueryIndex: true}, s, 333)
		return err == nil && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedWithUpdatesSemantics(t *testing.T) {
	mk := func() *Relation {
		r, err := NewRelation([][]int64{
			{10, 20, 30, 40, 50},
			{1, 1, 1, 1, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	updates := []Update{
		{FilterCol: 0, Lo: 15, Hi: 45, SetCol: 1, Delta: 100}, // rows 1..3
		{FilterCol: 0, Lo: 0, Hi: 25, SetCol: 1, Delta: 7},    // rows 0..1
	}
	queries := []Query{
		{FilterCol: 0, Lo: 0, Hi: 100, AggCol: 1},
		{FilterCol: 0, Lo: 20, Hi: 30, AggCol: 1},
	}

	// Reference: apply all updates fully, then run queries.
	ref := mk()
	for _, u := range updates {
		for i := 0; i < ref.NumRows(); i++ {
			if v := ref.cols[u.FilterCol][i]; v >= u.Lo && v <= u.Hi {
				ref.cols[u.SetCol][i] += u.Delta
			}
		}
	}
	want, err := QueryAtATime(ref, queries, nil)
	if err != nil {
		t.Fatal(err)
	}

	fused := mk()
	got, err := SharedWithUpdates(fused, updates, queries, SharedOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("read-write clock scan = %v, want %v", got, want)
	}
	// The relation itself must carry the updates afterwards.
	for i := 0; i < fused.NumRows(); i++ {
		if fused.cols[1][i] != ref.cols[1][i] {
			t.Fatalf("row %d: updated value %d, want %d", i, fused.cols[1][i], ref.cols[1][i])
		}
	}
}

func TestSharedWithUpdatesValidation(t *testing.T) {
	r := testRelation(t, 100)
	badU := []Update{{FilterCol: 9, SetCol: 0}}
	if _, err := SharedWithUpdates(r, badU, nil, SharedOptions{}, nil); err == nil {
		t.Fatal("bad update should fail")
	}
	badU = []Update{{FilterCol: 0, SetCol: 9}}
	if _, err := SharedWithUpdates(r, badU, nil, SharedOptions{}, nil); err == nil {
		t.Fatal("bad set column should fail")
	}
	badU = []Update{{FilterCol: 0, Lo: 5, Hi: 2, SetCol: 0}}
	if _, err := SharedWithUpdates(r, badU, nil, SharedOptions{}, nil); err == nil {
		t.Fatal("empty range should fail")
	}
	badQ := []Query{{FilterCol: 9, Hi: 1}}
	if _, err := SharedWithUpdates(r, nil, badQ, SharedOptions{}, nil); err == nil {
		t.Fatal("bad query should fail")
	}
}

func TestSharedWithUpdatesCostAmortized(t *testing.T) {
	m := hw.Server2S()
	r := testRelation(t, 1<<16)
	updates := make([]Update, 16)
	for i := range updates {
		updates[i] = Update{FilterCol: 0, Lo: int64(i * 100), Hi: int64(i*100 + 500), SetCol: 1, Delta: 1}
	}
	qs := testQueries(64)
	acct := hw.NewAccount(m, hw.DefaultContext())
	if _, err := SharedWithUpdates(r, updates, qs, SharedOptions{}, acct); err != nil {
		t.Fatal(err)
	}
	// One read-write pass must stream far less than 80 separate passes.
	separate := float64(len(updates)+len(qs)) * m.Cycles(hw.Work{
		Tuples: int64(r.NumRows()), ComputePerTuple: 3,
		SeqReadBytes: 2 * int64(r.NumRows()) * colBytes,
	}, hw.DefaultContext())
	if acct.TotalCycles() >= separate {
		t.Fatalf("read-write clock scan %.0f should beat %.0f (one pass per operation)",
			acct.TotalCycles(), separate)
	}
}
