// Package scan implements cooperative shared scans in the style of
// Crescando/ClockScan (from the keynote author's group): instead of running
// each query as its own pass over the data — which multiplies memory traffic
// by the number of concurrent queries — a single clock scan streams the data
// once per batch and evaluates every active query against each chunk. A
// query-index over predicates keeps the per-tuple work sublinear in the
// number of queries.
//
// The package provides the query-at-a-time baseline, the shared scan, and a
// parallel segmented variant (each worker owns a data segment, as in the real
// system), all computing identical results over real data.
package scan

import (
	"context"
	"fmt"

	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/sched"
	"hwstar/internal/trace"
)

// Query is a range-filter aggregation: SUM(agg column) over rows whose
// filter-column value lies in [Lo, Hi].
type Query struct {
	FilterCol int
	Lo, Hi    int64
	AggCol    int
}

// Validate checks the query against a relation of ncols columns.
func (q Query) Validate(ncols int) error {
	if q.FilterCol < 0 || q.FilterCol >= ncols {
		return fmt.Errorf("scan: filter column %d out of range: %w", q.FilterCol, errs.ErrInvalidInput)
	}
	if q.AggCol < 0 || q.AggCol >= ncols {
		return fmt.Errorf("scan: agg column %d out of range: %w", q.AggCol, errs.ErrInvalidInput)
	}
	if q.Lo > q.Hi {
		return fmt.Errorf("scan: empty range [%d, %d]: %w", q.Lo, q.Hi, errs.ErrInvalidInput)
	}
	return nil
}

// Relation is columnar int64 data for scanning.
type Relation struct {
	cols [][]int64
	rows int
}

// NewRelation wraps columns (equal length) as a scannable relation.
func NewRelation(cols [][]int64) (*Relation, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("scan: need at least one column: %w", errs.ErrInvalidInput)
	}
	rows := len(cols[0])
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("scan: column %d has %d rows, expected %d: %w", i, len(c), rows, errs.ErrInvalidInput)
		}
	}
	return &Relation{cols: cols, rows: rows}, nil
}

// NumRows returns the row count.
func (r *Relation) NumRows() int { return r.rows }

// NumCols returns the column count.
func (r *Relation) NumCols() int { return len(r.cols) }

const colBytes = 8

// QueryAtATime runs each query as its own full scan — the baseline whose
// memory traffic is queries × data size.
func QueryAtATime(r *Relation, queries []Query, acct *hw.Account) ([]int64, error) {
	out := make([]int64, len(queries))
	for qi, q := range queries {
		if err := q.Validate(r.NumCols()); err != nil {
			return nil, err
		}
		fc, ac := r.cols[q.FilterCol], r.cols[q.AggCol]
		var sum int64
		for i, v := range fc {
			if v >= q.Lo && v <= q.Hi {
				sum += ac[i]
			}
		}
		out[qi] = sum
		if acct != nil {
			acct.Charge(hw.Work{
				Name:            "qat-scan",
				Tuples:          int64(r.rows),
				ComputePerTuple: 3,
				SeqReadBytes:    2 * int64(r.rows) * colBytes,
			})
		}
	}
	return out, nil
}

// queryIndex buckets the filter domain so a tuple only checks queries whose
// range overlaps its bucket — Crescando's predicate indexing idea, which
// keeps per-tuple cost near O(matching queries) instead of O(all queries).
type queryIndex struct {
	lo, hi     int64
	bucketSpan int64
	buckets    [][]int32 // query ids per bucket
	all        []Query
}

const indexBuckets = 1024

// buildQueryIndex indexes queries by their filter range over the observed
// domain [lo, hi]. All queries must share one filter column to be indexable;
// the caller checks that.
func buildQueryIndex(queries []Query, lo, hi int64) *queryIndex {
	span := (hi - lo + int64(indexBuckets)) / int64(indexBuckets)
	if span <= 0 {
		span = 1
	}
	qi := &queryIndex{lo: lo, hi: hi, bucketSpan: span, buckets: make([][]int32, indexBuckets), all: queries}
	for id, q := range queries {
		b0 := clampBucket((q.Lo - lo) / span)
		b1 := clampBucket((q.Hi - lo) / span)
		for b := b0; b <= b1; b++ {
			qi.buckets[b] = append(qi.buckets[b], int32(id))
		}
	}
	return qi
}

func clampBucket(b int64) int64 {
	if b < 0 {
		return 0
	}
	if b >= indexBuckets {
		return indexBuckets - 1
	}
	return b
}

// candidates returns the ids of queries whose range may contain v.
func (qi *queryIndex) candidates(v int64) []int32 {
	return qi.buckets[clampBucket((v-qi.lo)/qi.bucketSpan)]
}

// SharedOptions tunes the shared scan.
type SharedOptions struct {
	// UseQueryIndex enables predicate indexing; without it every query is
	// checked against every tuple (the naive sharing).
	UseQueryIndex bool
}

// Shared runs all queries in one clock-scan pass: the data is streamed once
// and each tuple is evaluated against the (indexed) query batch. All queries
// must filter on the same column when the index is enabled.
func Shared(r *Relation, queries []Query, opts SharedOptions, acct *hw.Account) ([]int64, error) {
	out := make([]int64, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	for _, q := range queries {
		if err := q.Validate(r.NumCols()); err != nil {
			return nil, err
		}
	}
	fcol := queries[0].FilterCol
	sameFilter := true
	for _, q := range queries {
		if q.FilterCol != fcol {
			sameFilter = false
			break
		}
	}

	var evalsPerTuple float64
	if opts.UseQueryIndex && sameFilter {
		lo, hi := domain(r.cols[fcol])
		qi := buildQueryIndex(queries, lo, hi)
		fc := r.cols[fcol]
		var totalEvals int64
		for i, v := range fc {
			for _, id := range qi.candidates(v) {
				q := qi.all[id]
				if v >= q.Lo && v <= q.Hi {
					out[id] += r.cols[q.AggCol][i]
				}
				totalEvals++
			}
		}
		if r.rows > 0 {
			evalsPerTuple = float64(totalEvals) / float64(r.rows)
		}
		evalsPerTuple += 1 // bucket lookup
	} else {
		for i := 0; i < r.rows; i++ {
			for qid, q := range queries {
				v := r.cols[q.FilterCol][i]
				if v >= q.Lo && v <= q.Hi {
					out[qid] += r.cols[q.AggCol][i]
				}
			}
		}
		evalsPerTuple = float64(len(queries))
	}

	if acct != nil {
		// Data streamed once: filter column plus the union of agg columns.
		aggCols := map[int]bool{}
		for _, q := range queries {
			aggCols[q.AggCol] = true
		}
		streamCols := int64(len(aggCols)) + 1
		acct.Charge(hw.Work{
			Name:            "shared-scan",
			Tuples:          int64(r.rows),
			ComputePerTuple: 2 + 3*evalsPerTuple,
			SeqReadBytes:    streamCols * int64(r.rows) * colBytes,
		})
	}
	return out, nil
}

// domain returns the min and max of a column (0,0 for empty).
func domain(col []int64) (lo, hi int64) {
	if len(col) == 0 {
		return 0, 0
	}
	lo, hi = col[0], col[0]
	for _, v := range col {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ParallelShared runs the shared scan segmented over the scheduler's
// workers: each task owns a contiguous segment (as Crescando's scan threads
// own memory partitions) and evaluates the whole query batch against it;
// per-query partial sums are combined after the pass. Cancellation is
// checked at every segment boundary; on a cancelled context the partial
// schedule and the context's error are returned and the sums must be
// discarded.
func ParallelShared(ctx context.Context, r *Relation, queries []Query, opts SharedOptions, s *sched.Scheduler, segRows int) ([]int64, sched.Result, error) {
	for _, q := range queries {
		if err := q.Validate(r.NumCols()); err != nil {
			return nil, sched.Result{}, err
		}
	}
	if segRows <= 0 {
		segRows = 1 << 16
	}
	nSegs := (r.rows + segRows - 1) / segRows
	partials := make([][]int64, nSegs)

	tasks := sched.Morsels(r.rows, segRows, "clock-scan", func(start, end int, w *sched.Worker) {
		seg := segmentOf(r, start, end)
		res, err := Shared(seg, queries, opts, nil)
		if err != nil {
			// Validation already ran; a failure here is a programming error.
			panic(err)
		}
		partials[start/segRows] = res
		n := int64(end - start)
		aggCols := map[int]bool{}
		for _, q := range queries {
			aggCols[q.AggCol] = true
		}
		evals := float64(len(queries))
		if opts.UseQueryIndex {
			// The index reduces evaluated queries per tuple; charge the
			// average selectivity-driven cost (approximated as same ratio
			// the serial path computes — here we conservatively charge
			// log-bucket lookup plus expected matches).
			evals = 1 + evals/indexBuckets*4
		}
		acct := hw.Work{
			Name:            "clock-scan",
			Tuples:          n,
			ComputePerTuple: 2 + 3*evals,
			SeqReadBytes:    (int64(len(aggCols)) + 1) * n * colBytes,
		}
		w.Charge(acct)
	})
	// The scan pass reports into a "clock-scan" phase span (no-op when the
	// context carries no span): the phase's makespan cycles, its query batch
	// size, and the scheduler's per-worker breakdown beneath it.
	ps := trace.FromContext(ctx).Child("clock-scan")
	ps.SetAttr("queries", fmt.Sprintf("%d", len(queries)))
	ps.SetAttr("segments", fmt.Sprintf("%d", nSegs))
	schedRes, err := s.RunContext(trace.NewContext(ctx, ps), tasks)
	ps.AddCycles(schedRes.MakespanCycles)
	ps.End()
	if err != nil {
		return nil, schedRes, err
	}

	out := make([]int64, len(queries))
	for _, p := range partials {
		for i, v := range p {
			out[i] += v
		}
	}
	return out, schedRes, nil
}

// segmentOf views rows [start, end) of r as a relation (no copying).
func segmentOf(r *Relation, start, end int) *Relation {
	cols := make([][]int64, len(r.cols))
	for i, c := range r.cols {
		cols[i] = c[start:end]
	}
	return &Relation{cols: cols, rows: end - start}
}

// Update is a predicate-scoped modification processed by the same clock
// scan that answers queries — Crescando's defining trick: reads and writes
// ride one cooperative pass, so update cost is also amortized across the
// batch. Rows whose FilterCol value lies in [Lo, Hi] get Delta added to
// their SetCol.
type Update struct {
	FilterCol int
	Lo, Hi    int64
	SetCol    int
	Delta     int64
}

// Validate checks the update against a relation of ncols columns.
func (u Update) Validate(ncols int) error {
	if u.FilterCol < 0 || u.FilterCol >= ncols {
		return fmt.Errorf("scan: update filter column %d out of range: %w", u.FilterCol, errs.ErrInvalidInput)
	}
	if u.SetCol < 0 || u.SetCol >= ncols {
		return fmt.Errorf("scan: update set column %d out of range: %w", u.SetCol, errs.ErrInvalidInput)
	}
	if u.Lo > u.Hi {
		return fmt.Errorf("scan: empty update range [%d, %d]: %w", u.Lo, u.Hi, errs.ErrInvalidInput)
	}
	return nil
}

// SharedWithUpdates executes one clock-scan pass that first applies every
// update to each tuple (in batch order), then evaluates every query against
// the updated tuple. The semantics are deterministic: queries in the batch
// observe all of the batch's updates, exactly as if the updates had run to
// completion first — but the data is only streamed once.
func SharedWithUpdates(r *Relation, updates []Update, queries []Query, opts SharedOptions, acct *hw.Account) ([]int64, error) {
	for _, u := range updates {
		if err := u.Validate(r.NumCols()); err != nil {
			return nil, err
		}
	}
	for _, q := range queries {
		if err := q.Validate(r.NumCols()); err != nil {
			return nil, err
		}
	}
	out := make([]int64, len(queries))
	for i := 0; i < r.rows; i++ {
		for _, u := range updates {
			if v := r.cols[u.FilterCol][i]; v >= u.Lo && v <= u.Hi {
				r.cols[u.SetCol][i] += u.Delta
			}
		}
		for qid, q := range queries {
			if v := r.cols[q.FilterCol][i]; v >= q.Lo && v <= q.Hi {
				out[qid] += r.cols[q.AggCol][i]
			}
		}
	}
	if acct != nil {
		touched := map[int]bool{}
		for _, q := range queries {
			touched[q.FilterCol] = true
			touched[q.AggCol] = true
		}
		for _, u := range updates {
			touched[u.FilterCol] = true
			touched[u.SetCol] = true
		}
		acct.Charge(hw.Work{
			Name:            "clock-scan-rw",
			Tuples:          int64(r.rows),
			ComputePerTuple: 2 + 3*float64(len(updates)+len(queries)),
			SeqReadBytes:    int64(len(touched)) * int64(r.rows) * colBytes,
			SeqWriteBytes:   int64(r.rows) * colBytes, // updated column writes back
		})
	}
	return out, nil
}
