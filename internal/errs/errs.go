// Package errs defines the sentinel errors shared across hwstar's layers.
// The public façade re-exports them (hwstar.ErrInvalidInput, ...), and the
// internal packages wrap them with %w so callers can classify failures with
// errors.Is regardless of which layer produced them — admission control in
// internal/serve, validation in internal/join and internal/scan, or engine
// construction in the façade.
package errs

import "errors"

// Sentinel errors. Wrap with fmt.Errorf("...: %w", Err...) to add detail
// while keeping errors.Is classification working.
var (
	// ErrNilMachine reports an engine or server built without a machine
	// profile.
	ErrNilMachine = errors.New("machine must not be nil")
	// ErrWorkersOutOfRange reports a worker count outside 1..machine cores.
	ErrWorkersOutOfRange = errors.New("worker count out of range")
	// ErrInvalidInput reports malformed operator input: ragged key/value
	// slices, out-of-range columns, empty ranges, unknown algorithm or
	// strategy names.
	ErrInvalidInput = errors.New("invalid input")
	// ErrOverloaded reports an admission-control rejection: the server's
	// bounded intake queue is full. Clients should back off and retry.
	ErrOverloaded = errors.New("server overloaded")
	// ErrClosed reports a request submitted to a closed server.
	ErrClosed = errors.New("server closed")
	// ErrWorkerPanic reports a panic inside a scheduled task. The scheduler
	// recovers it, captures the stack, and either isolates the failure
	// (retiring the worker and re-dispatching its morsels) or surfaces it
	// wrapped around this sentinel.
	ErrWorkerPanic = errors.New("worker panic")
	// ErrTransient reports a transient task failure (injected or real) that
	// is safe to retry: the morsel had no partial effect. The serving layer
	// retries these with bounded exponential backoff.
	ErrTransient = errors.New("transient failure")
	// ErrDegraded reports that a server's circuit breaker is open and the
	// request was shed. Unlike ErrOverloaded (queue full), ErrDegraded means
	// the server is failing, not merely busy; scan requests are still served
	// from a reduced worker budget instead of being shed.
	ErrDegraded = errors.New("server degraded")
	// ErrMemoryPressure reports that a memory request could not be granted
	// under the engine's byte budget: admission shed the query, an operator's
	// reservation could not grow, or an injected allocation fault fired.
	// Retryable — pressure subsides as concurrent queries release memory.
	ErrMemoryPressure = errors.New("memory pressure")
	// ErrOOMKilled reports the simulated out-of-memory kill an ungoverned
	// engine suffers when its total footprint exceeds physical memory. Unlike
	// ErrMemoryPressure it is fatal, not retryable: the naive engine in E22
	// dies this way, the governed engine never does.
	ErrOOMKilled = errors.New("oom killed")
	// ErrCorrupted reports durable state that failed validation: a segment or
	// manifest whose checksum does not match its payload, a torn write, or a
	// truncated file. Not retryable — the bytes on disk are wrong and will
	// stay wrong; recovery falls back to the last manifest version that
	// validates end to end.
	ErrCorrupted = errors.New("corrupted data")
	// ErrRecovering reports a request that arrived while the server was still
	// replaying its durable state after a restart. Retryable — admission
	// opens as soon as the hot set is loaded and validated.
	ErrRecovering = errors.New("server recovering")
	// ErrPartialResult reports that a distributed query could not reach every
	// replica of every key range — typically because a range lost all its
	// replicas at once — and the response carries an exact answer over the
	// covered fraction only. The result is never a silent wrong total: the
	// router marks the response Partial, reports CoveredFraction, and wraps
	// this sentinel so callers can distinguish "partial but correct over what
	// survived" from a full answer. Retryable once recovery re-replicates the
	// lost range.
	ErrPartialResult = errors.New("partial result")
)
