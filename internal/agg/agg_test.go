package agg

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/sched"
	"hwstar/internal/workload"
)

func newSched(t *testing.T, m *hw.Machine, workers int) *sched.Scheduler {
	t.Helper()
	s, err := sched.New(m, sched.Options{Workers: workers, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSerialReference(t *testing.T) {
	keys := []int64{1, 2, 1, 3, 2, 1}
	vals := []int64{10, 20, 30, 40, 50, 60}
	got := Serial(keys, vals)
	want := map[int64]int64{1: 100, 2: 70, 3: 40}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("serial = %v, want %v", got, want)
	}
	if len(Serial(nil, nil)) != 0 {
		t.Fatal("empty input should produce no groups")
	}
}

func TestAllStrategiesMatchSerial(t *testing.T) {
	m := hw.Server2S()
	keys := workload.ZipfInts(1, 20000, 500, 1.3)
	vals := workload.UniformInts(2, 20000, 1000)
	want := Serial(keys, vals)
	for _, strat := range []Strategy{StrategyGlobal, StrategyLocalMerge, StrategyRadix} {
		s := newSched(t, m, 8)
		res, err := Parallel(context.Background(), keys, vals, strat, s, m, 1024)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !reflect.DeepEqual(res.Groups, want) {
			t.Fatalf("%s: wrong groups (got %d, want %d entries)", strat, len(res.Groups), len(want))
		}
		if res.MakespanCycles <= 0 {
			t.Fatalf("%s: no cycles charged", strat)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	m := hw.Laptop()
	s := newSched(t, m, 2)
	if _, err := Parallel(context.Background(), []int64{1}, nil, StrategyGlobal, s, m, 0); err == nil {
		t.Fatal("mismatched inputs should fail")
	}
	if _, err := Parallel(context.Background(), nil, nil, Strategy("bogus"), s, m, 0); err == nil {
		t.Fatal("unknown strategy should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	m := hw.Laptop()
	for _, strat := range []Strategy{StrategyGlobal, StrategyLocalMerge, StrategyRadix} {
		s := newSched(t, m, 2)
		res, err := Parallel(context.Background(), nil, nil, strat, s, m, 0)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(res.Groups) != 0 {
			t.Fatalf("%s: groups = %v", strat, res.Groups)
		}
	}
}

func TestGlobalContentionGrowsWithWorkers(t *testing.T) {
	m := hw.NUMA4S()
	// Few groups: heavy contention on the shared table.
	keys := workload.UniformInts(1, 1<<16, 8)
	vals := workload.UniformInts(2, 1<<16, 100)
	perTuple := func(workers int) float64 {
		s := newSched(t, m, workers)
		res, err := Parallel(context.Background(), keys, vals, StrategyGlobal, s, m, 1024)
		if err != nil {
			t.Fatal(err)
		}
		// Total busy cycles per tuple: contention inflates per-update cost.
		return res.Phases[0].TotalCycles / float64(len(keys))
	}
	if c1, c32 := perTuple(1), perTuple(32); c32 <= c1 {
		t.Fatalf("global strategy per-tuple cost should grow with workers: %f <= %f", c32, c1)
	}
}

func TestRadixBeatsGlobalOnFewGroupsManyWorkers(t *testing.T) {
	m := hw.NUMA4S()
	keys := workload.UniformInts(3, 1<<17, 64)
	vals := workload.UniformInts(4, 1<<17, 100)
	run := func(strat Strategy) float64 {
		s := newSched(t, m, 32)
		res, err := Parallel(context.Background(), keys, vals, strat, s, m, 2048)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanCycles
	}
	global, radix := run(StrategyGlobal), run(StrategyRadix)
	if radix >= global {
		t.Fatalf("contended global (%.0f) should lose to radix (%.0f) at 32 workers / 64 groups", global, radix)
	}
	localMerge := run(StrategyLocalMerge)
	if localMerge >= global {
		t.Fatalf("local-merge (%.0f) should also beat contended global (%.0f) on few groups", localMerge, global)
	}
}

func TestLocalMergePaysForHighCardinality(t *testing.T) {
	m := hw.Server2S()
	// Groups ≈ rows: local tables are as large as the problem and the merge
	// phase redoes all the work serially.
	keys := workload.UniformInts(5, 1<<16, 1<<30)
	vals := workload.UniformInts(6, 1<<16, 100)
	run := func(strat Strategy) float64 {
		s := newSched(t, m, 16)
		res, err := Parallel(context.Background(), keys, vals, strat, s, m, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanCycles
	}
	if lm, rx := run(StrategyLocalMerge), run(StrategyRadix); rx >= lm {
		t.Fatalf("high-cardinality: radix (%.0f) should beat local-merge (%.0f)", rx, lm)
	}
}

func TestRadixPhases(t *testing.T) {
	m := hw.Server2S()
	keys := workload.UniformInts(7, 5000, 1<<20)
	vals := workload.UniformInts(8, 5000, 100)
	s := newSched(t, m, 4)
	res, err := Parallel(context.Background(), keys, vals, StrategyRadix, s, m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("radix should have 2 phases, got %d", len(res.Phases))
	}
	if !reflect.DeepEqual(res.Groups, Serial(keys, vals)) {
		t.Fatal("radix result wrong")
	}
}

// Property: every strategy computes exactly the serial aggregation for
// arbitrary inputs.
func TestStrategiesEquivalenceProperty(t *testing.T) {
	m := hw.Laptop()
	f := func(rawKeys []uint8, rawVals []uint8, workersRaw uint8) bool {
		n := len(rawKeys)
		if len(rawVals) < n {
			n = len(rawVals)
		}
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(rawKeys[i] % 16)
			vals[i] = int64(rawVals[i])
		}
		want := Serial(keys, vals)
		workers := int(workersRaw)%4 + 1
		for _, strat := range []Strategy{StrategyGlobal, StrategyLocalMerge, StrategyRadix} {
			s, err := sched.New(m, sched.Options{Workers: workers, Stealing: true})
			if err != nil {
				return false
			}
			res, err := Parallel(context.Background(), keys, vals, strat, s, m, 8)
			if err != nil || !reflect.DeepEqual(res.Groups, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
