package agg

import (
	"fmt"
	"testing"
)

// serialUnsized is the pre-presizing Serial, kept as the benchmark baseline:
// the map starts at default capacity and rehashes its way up as groups appear.
func serialUnsized(keys, vals []int64) map[int64]int64 {
	out := make(map[int64]int64)
	for i, k := range keys {
		out[k] += vals[i]
	}
	return out
}

func benchInput(n, groups int) (keys, vals []int64) {
	keys = make([]int64, n)
	vals = make([]int64, n)
	for i := range keys {
		keys[i] = int64(i % groups)
		vals[i] = int64(i)
	}
	return
}

// BenchmarkSerialPresized/BenchmarkSerialUnsized measure the cost of map
// growth during aggregation. Serial's sampled capacity hint removes the
// incremental rehashes (each re-inserts all live groups) on unique-heavy
// inputs — the case where the unsized map rehashes log2(groups) times —
// while low-cardinality inputs keep a small table instead of one sized to
// the row count.
func BenchmarkSerialPresized(b *testing.B) {
	for _, groups := range []int{64, 1 << 12, 1 << 17} {
		keys, vals := benchInput(1<<17, groups)
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = Serial(keys, vals)
			}
		})
	}
}

func BenchmarkSerialUnsized(b *testing.B) {
	for _, groups := range []int{64, 1 << 12, 1 << 17} {
		keys, vals := benchInput(1<<17, groups)
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = serialUnsized(keys, vals)
			}
		})
	}
}

// sink defeats dead-code elimination of the benchmarked result.
var sink map[int64]int64
