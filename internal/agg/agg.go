// Package agg implements parallel GROUP-BY aggregation in three designs that
// span the hardware-consciousness spectrum the keynote describes:
//
//   - StrategyGlobal: all workers update one shared hash table behind atomic
//     operations — the straightforward "software star" design whose cache-line
//     ping-pong gets worse with every added core.
//   - StrategyLocalMerge: each worker aggregates morsels into a private table,
//     merged at the end — contention-free, but the merge grows with
//     (workers × groups) and private tables overflow the cache when the group
//     count is large.
//   - StrategyRadix: inputs are hash-partitioned by group key so each group
//     belongs to exactly one worker — no contention and cache-resident state,
//     at the price of a partitioning pass.
//
// All strategies execute real Go code producing identical results; the
// hardware cost of each design is charged to the simulated scheduler.
package agg

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/sched"
	"hwstar/internal/trace"
)

// Strategy names an aggregation design.
type Strategy string

// Available strategies.
const (
	StrategyGlobal     Strategy = "global-atomic"
	StrategyLocalMerge Strategy = "local-merge"
	StrategyRadix      Strategy = "radix-partitioned"
)

// groupEntryBytes is the hash-table footprint per group (key + sum + flag,
// at 50% fill).
const groupEntryBytes = 2 * (8 + 8 + 1)

// tupleBytes is the input width per tuple (key + value).
const tupleBytes = 16

// Serial computes the reference aggregation: SUM(vals) GROUP BY keys. The
// table is pre-sized from a sampled cardinality estimate, so unique-heavy
// inputs skip every incremental rehash (each of which re-inserts all live
// groups) without low-cardinality inputs paying for a table sized to the row
// count (see BenchmarkSerialPresized / BenchmarkSerialUnsized for the delta).
func Serial(keys, vals []int64) map[int64]int64 {
	out := make(map[int64]int64, serialHint(keys))
	for i, k := range keys {
		out[k] += vals[i]
	}
	return out
}

// serialHint estimates a group-table capacity by counting distinct keys in a
// strided sample. A near-all-distinct sample means a unique-heavy input:
// presize to the row count. Otherwise presize to twice the sampled
// cardinality — an underestimate only costs a few rehashes of a still-small
// table, where an overestimate allocates and zeroes the worst case up front.
func serialHint(keys []int64) int {
	const sample = 1024
	n := len(keys)
	if n <= 2*sample {
		return n
	}
	stride := n / sample
	seen := make(map[int64]struct{}, sample)
	for i := 0; i < n; i += stride {
		seen[keys[i]] = struct{}{}
	}
	d := len(seen)
	if d*8 >= sample*7 {
		return n
	}
	return capHint(int64(2*d), n)
}

// capHint bounds a map capacity hint: the expected group count g, capped by
// the rows that will actually be inserted.
func capHint(g int64, rows int) int {
	if g > int64(rows) {
		g = int64(rows)
	}
	if g < 0 {
		g = 0
	}
	return int(g)
}

// Result is a parallel aggregation outcome.
type Result struct {
	// Groups maps each key to its aggregated sum.
	Groups map[int64]int64
	// Phases holds the schedule of each phase; MakespanCycles their sum.
	Phases         []sched.Result
	MakespanCycles float64
	// Spilled reports that the group table exceeded the query's memory
	// reservation and the aggregation degraded to the partitioned spill
	// path; SpillBytes is the simulated traffic written to the spill tier.
	Spilled    bool
	SpillBytes int64
}

func (r *Result) addPhase(s sched.Result) {
	r.Phases = append(r.Phases, s)
	r.MakespanCycles += s.MakespanCycles
}

// runPhase executes tasks with cancellation checked at morsel boundaries and
// folds the (possibly partial) schedule into the result. The phase reports
// into a named child span of the context's trace span (a no-op when the
// context carries none), so traces attribute cycles phase by phase.
func (r *Result) runPhase(ctx context.Context, name string, s *sched.Scheduler, tasks []sched.Task) error {
	ps := trace.FromContext(ctx).Child(name)
	phase, err := s.RunContext(trace.NewContext(ctx, ps), tasks)
	ps.AddCycles(phase.MakespanCycles)
	ps.End()
	r.addPhase(phase)
	return err
}

// Parallel aggregates keys/vals with the given strategy on scheduler s.
// Group cardinality is estimated from the data up front (exact, via one
// uncharged counting pass — a real system would use a sketch) and shared by
// the cost model, the map capacity hints, and the memory governor.
//
// When the scheduler carries a memory reservation, the group-table footprint
// is charged before execution. A denial (budget pressure or an injected
// allocation fault) degrades the aggregation to the partitioned spill path
// regardless of the requested strategy; only a simulated OOM kill (naive
// mode) or an unspillable budget aborts. Cancellation is checked at every
// morsel boundary.
func Parallel(ctx context.Context, keys, vals []int64, strat Strategy, s *sched.Scheduler, m *hw.Machine, morsel int) (Result, error) {
	if len(keys) != len(vals) {
		return Result{}, fmt.Errorf("agg: keys/vals length mismatch: %d vs %d: %w", len(keys), len(vals), errs.ErrInvalidInput)
	}
	switch strat {
	case StrategyGlobal, StrategyLocalMerge, StrategyRadix:
	default:
		return Result{}, fmt.Errorf("agg: unknown strategy %q: %w", strat, errs.ErrInvalidInput)
	}
	g := distinct(keys)
	if g == 0 {
		g = 1
	}
	resv := s.Mem()
	tableBytes := g * groupEntryBytes
	if err := resv.Charge("agg-table", -1, tableBytes); err != nil {
		if errors.Is(err, errs.ErrMemoryPressure) {
			return spilledAgg(ctx, keys, vals, g, s, morsel, tableBytes, err)
		}
		return Result{}, fmt.Errorf("agg: group table: %w", err)
	}
	defer resv.Uncharge(tableBytes)
	switch strat {
	case StrategyGlobal:
		return globalAtomic(ctx, keys, vals, g, s, morsel)
	case StrategyLocalMerge:
		return localMerge(ctx, keys, vals, g, s, morsel)
	default:
		return radixPartitioned(ctx, keys, vals, g, s, m, morsel)
	}
}

func morselOrDefault(m int) int {
	if m <= 0 {
		return 1 << 14
	}
	return m
}

// distinct counts group cardinality (modelling aid, not charged).
func distinct(keys []int64) int64 {
	seen := make(map[int64]struct{}, 1024)
	for _, k := range keys {
		seen[k] = struct{}{}
	}
	return int64(len(seen))
}

// globalAtomic: one shared table, every update an atomic read-modify-write.
// The contention model charges each update an extra penalty that grows with
// the number of cores hammering the same lines: with G groups and P active
// cores, the probability of a concurrent update to the same entry scales
// with P/G, and each conflict costs a cache-line transfer.
func globalAtomic(ctx context.Context, keys, vals []int64, g int64, s *sched.Scheduler, morsel int) (Result, error) {
	var res Result
	groups := make(map[int64]int64, capHint(g, len(keys)))
	tableBytes := g * groupEntryBytes
	// A conflicting atomic update pays a cross-core line transfer plus
	// serialization on the hot line.
	const lineTransferCycles = 120
	tasks := sched.Morsels(len(keys), morsel, "agg-global", func(start, end int, w *sched.Worker) {
		for i := start; i < end; i++ {
			groups[keys[i]] += vals[i]
		}
		n := int64(end - start)
		p := float64(w.TotalWorkers())
		conflictProb := (p - 1) / float64(g)
		if conflictProb > 1 {
			conflictProb = 1
		}
		if conflictProb < 0 {
			conflictProb = 0
		}
		w.Charge(hw.Work{
			Name:            "agg-global",
			Tuples:          n,
			ComputePerTuple: 8 + conflictProb*lineTransferCycles,
			SeqReadBytes:    n * tupleBytes,
			RandomReads:     n,
			RandomWS:        tableBytes,
		})
	})
	if err := res.runPhase(ctx, "agg-global", s, tasks); err != nil {
		return res, err
	}
	res.Groups = groups
	return res, nil
}

// localMerge: per-morsel private tables, then a serial-per-partition merge.
func localMerge(ctx context.Context, keys, vals []int64, g int64, s *sched.Scheduler, morsel int) (Result, error) {
	var res Result
	msz := morselOrDefault(morsel)
	nChunks := (len(keys) + msz - 1) / msz
	locals := make([]map[int64]int64, nChunks)
	localBytes := g * groupEntryBytes // worst case: every group in every local table

	tasks := sched.Morsels(len(keys), msz, "agg-local", func(start, end int, w *sched.Worker) {
		local := make(map[int64]int64, capHint(g, end-start))
		for i := start; i < end; i++ {
			local[keys[i]] += vals[i]
		}
		locals[start/msz] = local
		n := int64(end - start)
		w.Charge(hw.Work{
			Name:            "agg-local",
			Tuples:          n,
			ComputePerTuple: 8,
			SeqReadBytes:    n * tupleBytes,
			RandomReads:     n,
			RandomWS:        localBytes,
		})
	})
	if err := res.runPhase(ctx, "agg-local", s, tasks); err != nil {
		return res, err
	}

	// Merge phase: a single worker folds all local tables (the simple merge
	// used by many engines; its cost ∝ chunks × groups is exactly the
	// scalability trap this strategy carries).
	groups := make(map[int64]int64, g)
	var merged int64
	for _, local := range locals {
		for k, v := range local {
			groups[k] += v
			merged++
		}
	}
	mergeTask := []sched.Task{{Name: "agg-merge", Socket: -1, Run: func(w *sched.Worker) {
		w.Charge(hw.Work{
			Name:            "agg-merge",
			Tuples:          merged,
			ComputePerTuple: 8,
			RandomReads:     merged,
			RandomWS:        g * groupEntryBytes,
		})
	}}}
	if err := res.runPhase(ctx, "agg-merge", s, mergeTask); err != nil {
		return res, err
	}
	res.Groups = groups
	return res, nil
}

// radixPartitioned: partition input by group-key hash so each partition's
// groups are disjoint; one task aggregates each partition into a private,
// cache-sized table; results concatenate without merging.
func radixPartitioned(ctx context.Context, keys, vals []int64, g int64, s *sched.Scheduler, m *hw.Machine, morsel int) (Result, error) {
	var res Result
	// Fan-out chosen so a partition's group state fits in half the L2 AND
	// phase 2 has enough tasks to occupy (and balance across) all workers.
	target := int64(128 << 10)
	if m != nil && len(m.Caches) >= 2 {
		target = m.Caches[1].SizeBytes / 2
	}
	bits := 0
	for g*groupEntryBytes>>uint(bits) > target && bits < 16 {
		bits++
	}
	for 1<<bits < 4*s.Workers() && bits < 16 {
		bits++
	}
	fanout := 1 << bits
	mask := uint64(fanout - 1)

	// Phase 1: partition (real scatter, charged per morsel).
	type part struct{ keys, vals []int64 }
	msz := morselOrDefault(morsel)
	nChunks := (len(keys) + msz - 1) / msz
	chunkParts := make([][]part, nChunks)
	tasks := sched.Morsels(len(keys), msz, "agg-part", func(start, end int, w *sched.Worker) {
		ps := make([]part, fanout)
		for i := start; i < end; i++ {
			h := hash64(keys[i]) & mask
			ps[h].keys = append(ps[h].keys, keys[i])
			ps[h].vals = append(ps[h].vals, vals[i])
		}
		chunkParts[start/msz] = ps
		n := int64(end - start)
		work := hw.Work{
			Name:            "agg-part",
			Tuples:          n,
			ComputePerTuple: 4,
			SeqReadBytes:    n * tupleBytes,
			SeqWriteBytes:   n * tupleBytes,
		}
		if m != nil && fanout > m.TLBEntries {
			work.SeqWriteBytes = 0
			work.RandomReads = n
			work.RandomWS = n * tupleBytes
		}
		w.Charge(work)
	})
	if err := res.runPhase(ctx, "agg-part", s, tasks); err != nil {
		return res, err
	}

	// Phase 2: aggregate each partition.
	partGroups := make([]map[int64]int64, fanout)
	aggTasks := make([]sched.Task, fanout)
	for p := 0; p < fanout; p++ {
		p := p
		aggTasks[p] = sched.Task{Name: "agg-p" + strconv.Itoa(p), Site: "agg-reduce", Socket: -1, Run: func(w *sched.Worker) {
			local := make(map[int64]int64, capHint(g/int64(fanout)+16, len(keys)))
			var n int64
			for _, cp := range chunkParts {
				if p >= len(cp) {
					continue
				}
				for i, k := range cp[p].keys {
					local[k] += cp[p].vals[i]
				}
				n += int64(len(cp[p].keys))
			}
			partGroups[p] = local
			w.Charge(hw.Work{
				Name:            "agg-reduce",
				Tuples:          n,
				ComputePerTuple: 8,
				SeqReadBytes:    n * tupleBytes,
				RandomReads:     n,
				RandomWS:        int64(len(local)) * groupEntryBytes,
			})
		}}
	}
	if err := res.runPhase(ctx, "agg-reduce", s, aggTasks); err != nil {
		return res, err
	}

	groups := make(map[int64]int64, g)
	for _, pg := range partGroups {
		for k, v := range pg {
			groups[k] = v
		}
	}
	res.Groups = groups
	return res, nil
}

func hash64(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}
