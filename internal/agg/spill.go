package agg

import (
	"context"
	"fmt"
	"strconv"

	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/sched"
	"hwstar/internal/trace"
)

// spilledAgg is the degraded execution Parallel falls back to when the group
// table does not fit the query's memory reservation: the input is
// hash-partitioned by group key into K fragments written to the simulated
// spill tier (priced by hw.Machine.SpillBandwidth), then each fragment is
// read back and aggregated into a small table that does fit. Partitions have
// disjoint group sets, so results concatenate without a merge — the same
// property the radix strategy exploits, applied one tier down the memory
// hierarchy. denial is the original over-budget error, returned verbatim
// when even spilling cannot fit.
func spilledAgg(ctx context.Context, keys, vals []int64, g int64, s *sched.Scheduler, morsel int, tableBytes int64, denial error) (Result, error) {
	var res Result
	resv := s.Mem()
	K := mem.SpillFanout(tableBytes, resv.Available(), s.Workers())
	if K == 0 {
		return res, denial
	}
	res.Spilled = true
	mask := uint64(K - 1)
	trace.FromContext(ctx).Annotate("agg spilled: table %d B over budget, %d-way partitioned", tableBytes, K)

	// Phase 1: partition the input and stream it to the spill tier. The
	// scheduler's virtual-time loop runs morsels sequentially, so scattering
	// into shared partition buffers is safe.
	type part struct{ keys, vals []int64 }
	parts := make([]part, K)
	tasks := sched.Morsels(len(keys), morsel, "agg-spill-part", func(start, end int, w *sched.Worker) {
		for i := start; i < end; i++ {
			p := &parts[hash64(keys[i])&mask]
			p.keys = append(p.keys, keys[i])
			p.vals = append(p.vals, vals[i])
		}
		n := int64(end - start)
		w.Charge(hw.Work{
			Name: "agg-spill-part", Tuples: n, ComputePerTuple: 4,
			SeqReadBytes:    n * tupleBytes,
			SpillWriteBytes: n * tupleBytes,
		})
	})
	if err := res.runPhase(ctx, "agg-spill-part", s, tasks); err != nil {
		return res, err
	}
	spillBytes := int64(len(keys)) * tupleBytes
	res.SpillBytes = spillBytes
	resv.NoteSpill(spillBytes)

	// Phase 2: one task per partition reads its fragment back and aggregates
	// into a budget-charged table. Charge failures (budget exhausted
	// mid-run, injected allocation faults) cannot surface through a
	// sched.Task, so they are collected and raised after the phase.
	partGroups := make([]map[int64]int64, K)
	chargeErrs := make([]error, K)
	aggTasks := make([]sched.Task, K)
	for p := 0; p < K; p++ {
		p := p
		aggTasks[p] = sched.Task{Name: "agg-spill-p" + strconv.Itoa(p), Site: "agg-spill-reduce", Socket: -1, Run: func(w *sched.Worker) {
			pt := &parts[p]
			if len(pt.keys) == 0 {
				return
			}
			pBytes := (g/int64(K) + 1) * groupEntryBytes
			if err := w.Mem().Charge("agg-spill-reduce", w.ID, pBytes); err != nil {
				chargeErrs[p] = err
				return
			}
			defer w.Mem().Uncharge(pBytes)
			local := make(map[int64]int64, capHint(g/int64(K)+16, len(pt.keys)))
			for i, k := range pt.keys {
				local[k] += pt.vals[i]
			}
			partGroups[p] = local
			n := int64(len(pt.keys))
			w.Charge(hw.Work{
				Name: "agg-spill-reduce", Tuples: n, ComputePerTuple: 8,
				SpillReadBytes: n * tupleBytes,
				RandomReads:    n,
				RandomWS:       int64(len(local)) * groupEntryBytes,
			})
		}}
	}
	if err := res.runPhase(ctx, "agg-spill-reduce", s, aggTasks); err != nil {
		return res, err
	}
	for _, err := range chargeErrs {
		if err != nil {
			return res, fmt.Errorf("agg: spill partition table denied: %w", err)
		}
	}

	groups := make(map[int64]int64, capHint(g, len(keys)))
	for _, pg := range partGroups {
		for k, v := range pg {
			groups[k] = v
		}
	}
	res.Groups = groups
	return res, nil
}
