package layout

import (
	"testing"
	"testing/quick"

	"hwstar/internal/cache"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func makeCols(rows, cols int) [][]int64 {
	out := make([][]int64, cols)
	for c := range out {
		col := make([]int64, rows)
		for r := range col {
			col[r] = int64(c*1000000 + r)
		}
		out[c] = col
	}
	return out
}

func TestKindString(t *testing.T) {
	if NSM.String() != "NSM" || DSM.String() != "DSM" || PAX.String() != "PAX" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(NSM, nil); err == nil {
		t.Fatal("no columns should fail")
	}
	if _, err := Build(NSM, [][]int64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged columns should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on error")
		}
	}()
	MustBuild(DSM, nil)
}

func TestGetAcrossLayouts(t *testing.T) {
	cols := makeCols(1000, 4) // crosses a PAX page boundary at row 512
	for _, k := range []Kind{NSM, DSM, PAX} {
		r := MustBuild(k, cols)
		if r.NumRows() != 1000 || r.NumCols() != 4 {
			t.Fatalf("%s: shape %d×%d", k, r.NumRows(), r.NumCols())
		}
		for _, row := range []int{0, 1, 511, 512, 513, 999} {
			for c := 0; c < 4; c++ {
				if got := r.Get(row, c); got != cols[c][row] {
					t.Fatalf("%s: Get(%d,%d) = %d, want %d", k, row, c, got, cols[c][row])
				}
			}
		}
	}
}

func TestSetRoundTrip(t *testing.T) {
	for _, k := range []Kind{NSM, DSM, PAX} {
		r := MustBuild(k, makeCols(600, 3))
		r.Set(555, 2, -42)
		if got := r.Get(555, 2); got != -42 {
			t.Fatalf("%s: Set/Get = %d", k, got)
		}
		// Neighbours untouched.
		if r.Get(554, 2) != 2*1000000+554 || r.Get(555, 1) != 1*1000000+555 {
			t.Fatalf("%s: Set clobbered a neighbour", k)
		}
	}
}

func TestSumColumnMatchesReference(t *testing.T) {
	cols := makeCols(1537, 5) // deliberately not a multiple of the PAX page size
	var want int64
	for _, v := range cols[3] {
		want += v
	}
	for _, k := range []Kind{NSM, DSM, PAX} {
		r := MustBuild(k, cols)
		if got := r.SumColumn(3); got != want {
			t.Fatalf("%s: SumColumn = %d, want %d", k, got, want)
		}
	}
}

func TestReadRow(t *testing.T) {
	cols := makeCols(100, 3)
	for _, k := range []Kind{NSM, DSM, PAX} {
		r := MustBuild(k, cols)
		out := make([]int64, 3)
		r.ReadRow(42, out)
		for c := range out {
			if out[c] != cols[c][42] {
				t.Fatalf("%s: ReadRow mismatch at col %d", k, c)
			}
		}
	}
}

func TestAddrDistinctAndAligned(t *testing.T) {
	for _, k := range []Kind{NSM, DSM, PAX} {
		r := MustBuild(k, makeCols(700, 3))
		r.SetBase(1 << 20)
		seen := map[uint64]bool{}
		for row := 0; row < 700; row++ {
			for c := 0; c < 3; c++ {
				a := r.Addr(row, c)
				if a%8 != 0 {
					t.Fatalf("%s: unaligned address %d", k, a)
				}
				if seen[a] {
					t.Fatalf("%s: duplicate address for (%d,%d)", k, row, c)
				}
				seen[a] = true
				if a < 1<<20 || a >= 1<<20+uint64(r.Bytes()) {
					t.Fatalf("%s: address %d outside relation", k, a)
				}
			}
		}
	}
}

func TestScanWorkShapes(t *testing.T) {
	line := int64(64)
	nsm := MustBuild(NSM, makeCols(1000, 10))
	dsm := MustBuild(DSM, makeCols(1000, 10))
	one := []int{0}
	// NSM scanning 1 of 10 columns still streams all bytes; DSM streams 10%.
	wn, wd := nsm.ScanWork(one, line), dsm.ScanWork(one, line)
	if wn.SeqReadBytes != 1000*10*8 {
		t.Fatalf("NSM scan bytes = %d", wn.SeqReadBytes)
	}
	if wd.SeqReadBytes != 1000*1*8 {
		t.Fatalf("DSM scan bytes = %d", wd.SeqReadBytes)
	}
	// At full projectivity they converge.
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if nsm.ScanWork(all, line).SeqReadBytes != dsm.ScanWork(all, line).SeqReadBytes {
		t.Fatal("full-projectivity scans should stream equal bytes")
	}
}

func TestPointWorkShapes(t *testing.T) {
	line := int64(64)
	cols := []int{0, 1, 2, 3, 4}
	nsm := MustBuild(NSM, makeCols(1000, 8))
	dsm := MustBuild(DSM, makeCols(1000, 8))
	pax := MustBuild(PAX, makeCols(1000, 8))
	sumReads := func(ws []hw.Work) int64 {
		var t int64
		for _, w := range ws {
			t += w.RandomReads
		}
		return t
	}
	// NSM row = 64 bytes = 1 line; DSM needs 5 distant accesses.
	if got := sumReads(nsm.PointWork(cols, line)); got != 1 {
		t.Fatalf("NSM point reads = %d, want 1", got)
	}
	if got := sumReads(dsm.PointWork(cols, line)); got != 5 {
		t.Fatalf("DSM point reads = %d, want 5", got)
	}
	pw := pax.PointWork(cols, line)
	if len(pw) != 2 || pw[0].RandomReads != 1 || pw[1].RandomReads != 4 {
		t.Fatalf("PAX point work = %+v", pw)
	}
	if pw[1].RandomWS >= pw[0].RandomWS {
		t.Fatal("PAX follow-up accesses should see a smaller working set")
	}
	// Single-column point on PAX has no follow-up item.
	if got := pax.PointWork([]int{0}, line); len(got) != 1 {
		t.Fatalf("PAX single-column point = %+v", got)
	}
}

func TestTraceScanLineUtilization(t *testing.T) {
	// 8 columns of 8 bytes = 64-byte rows: one line per row under NSM.
	const rows = 4096
	colsData := makeCols(rows, 8)
	m := hw.Laptop()

	// Low projectivity (1 column): DSM touches 8× fewer lines than NSM.
	nsm := MustBuild(NSM, colsData)
	dsm := MustBuild(DSM, colsData)
	hn := cache.FromMachine(m)
	hd := cache.FromMachine(m)
	nsm.TraceScan(hn, []int{0})
	dsm.TraceScan(hd, []int{0})
	nsmMisses := hn.Levels()[0].Misses
	dsmMisses := hd.Levels()[0].Misses
	if dsmMisses*6 > nsmMisses {
		t.Fatalf("DSM misses %d should be ~8× below NSM %d at projectivity 1/8", dsmMisses, nsmMisses)
	}
}

func TestTracePointLayoutEffect(t *testing.T) {
	const rows = 1 << 15
	colsData := makeCols(rows, 8)
	m := hw.Laptop()
	nsm := MustBuild(NSM, colsData)
	dsm := MustBuild(DSM, colsData)
	dsm.SetBase(1 << 30)

	probe := workload.UniformInts(5, 2000, rows)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	hn, hd := cache.FromMachine(m), cache.FromMachine(m)
	var cn, cd float64
	for _, row := range probe {
		cn += nsm.TracePoint(hn, int(row), all)
		cd += dsm.TracePoint(hd, int(row), all)
	}
	if cd <= cn {
		t.Fatalf("full-row point reads: DSM cycles %f should exceed NSM %f", cd, cn)
	}
}

func TestAdvisorPrefersExpectedLayouts(t *testing.T) {
	m := hw.Server2S()
	// OLAP: many low-projectivity scans → DSM or PAX, never NSM.
	olap := AccessProfile{Scans: 100, ScanCols: []int{0}}
	adv, err := Advise(1_000_000, 16, olap, m)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best == NSM {
		t.Fatalf("OLAP advisor chose NSM: %+v", adv.Costs)
	}
	// OLTP: many full-row point reads → NSM (or PAX), never DSM.
	oltp := AccessProfile{Points: 100000, PointCols: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}}
	adv, err = Advise(1_000_000, 16, oltp, m)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best == DSM {
		t.Fatalf("OLTP advisor chose DSM: %+v", adv.Costs)
	}
	if len(adv.Costs) != 3 {
		t.Fatalf("advisor should cost all layouts: %v", adv.Costs)
	}
}

func TestAdvisorMixedWorkloadPAX(t *testing.T) {
	m := hw.Server2S()
	// Mixed OLTP/OLAP is PAX's home turf: scans want columns, points want
	// page locality.
	mixed := AccessProfile{
		Scans: 2000, ScanCols: []int{0, 1},
		Points: 3_000_000, PointCols: []int{0, 1, 2, 3, 4, 5, 6, 7},
	}
	adv, err := Advise(1_000_000, 16, mixed, m)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Costs[PAX] > adv.Costs[NSM] && adv.Costs[PAX] > adv.Costs[DSM] {
		t.Fatalf("PAX should not be strictly worst on mixed workloads: %+v", adv.Costs)
	}
}

func TestAdvisorErrors(t *testing.T) {
	m := hw.Laptop()
	if _, err := Advise(100, 4, AccessProfile{}, m); err == nil {
		t.Fatal("empty profile should fail")
	}
	if _, err := Advise(100, 4, AccessProfile{Scans: 1, ScanCols: []int{9}}, m); err == nil {
		t.Fatal("out-of-range column should fail")
	}
	if _, err := Advise(100, 4, AccessProfile{Scans: 1}, m); err == nil {
		t.Fatal("scans without columns should fail")
	}
	if _, err := Advise(100, 4, AccessProfile{Points: 1}, m); err == nil {
		t.Fatal("points without columns should fail")
	}
	if _, err := Advise(0, 4, AccessProfile{Scans: 1, ScanCols: []int{0}}, m); err == nil {
		t.Fatal("zero rows should fail")
	}
	if _, err := Advise(100, 4, AccessProfile{Scans: -1, Points: 1, PointCols: []int{0}}, m); err == nil {
		t.Fatal("negative scans should fail")
	}
}

// Property: every layout stores and retrieves the same logical relation —
// the (row, col) → index mapping is a bijection.
func TestLayoutBijectionProperty(t *testing.T) {
	f := func(rowsRaw uint16, colsRaw uint8, kindRaw uint8) bool {
		rows := int(rowsRaw)%2000 + 1
		ncols := int(colsRaw)%6 + 1
		kind := Kind(int(kindRaw) % 3)
		r := MustBuild(kind, makeCols(rows, ncols))
		seen := make(map[int]bool, rows*ncols)
		for row := 0; row < rows; row++ {
			for c := 0; c < ncols; c++ {
				idx := r.index(row, c)
				if idx < 0 || idx >= rows*ncols || seen[idx] {
					return false
				}
				seen[idx] = true
				if r.Get(row, c) != int64(c*1000000+row) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
