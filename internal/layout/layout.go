// Package layout implements the three classic in-memory storage layouts —
// NSM (row store), DSM (column store), and PAX (hybrid pages) — over the
// same logical relation, plus a PDSM-style cost-based layout advisor.
//
// The keynote argues that data layout is a hardware decision: which layout
// wins depends on cache-line utilization under the actual access pattern,
// not on the logical schema. This package makes that measurable three ways:
// real Go implementations whose memory behaviour differs (Get/SumColumn walk
// memory in layout order), an analytic cost description (ScanWork/PointWork
// feed the hw machine model), and a traced mode that pushes the exact
// address stream through the cache simulator.
package layout

import (
	"fmt"

	"hwstar/internal/cache"
	"hwstar/internal/hw"
)

// Kind identifies a storage layout.
type Kind int

const (
	// NSM is the N-ary Storage Model: full rows stored contiguously.
	NSM Kind = iota
	// DSM is the Decomposition Storage Model: each column contiguous.
	DSM
	// PAX stores pages of rows with column mini-pages inside each page.
	PAX
)

// String returns the layout name.
func (k Kind) String() string {
	switch k {
	case NSM:
		return "NSM"
	case DSM:
		return "DSM"
	case PAX:
		return "PAX"
	default:
		return fmt.Sprintf("layout(%d)", int(k))
	}
}

// fieldBytes is the width of every field: layout experiments use fixed-width
// 8-byte attributes, the convention of the PDSM/PAX literature.
const fieldBytes = 8

// paxPageBytes is the size of one PAX page. PAX packs all of a row group's
// column mini-pages into a single OS page so a full-row read costs one TLB
// entry; the rows-per-page therefore depends on the column count and is
// computed per relation (Relation.PAXRowsPerPage).
const paxPageBytes = 4096

// Relation is a fixed-width relation stored in one of the layouts.
type Relation struct {
	kind Kind
	rows int
	cols int
	// data holds all fields in layout-specific order (see index).
	data []int64
	// base is the simulated start address used by traced scans; relations
	// are placed at disjoint simulated addresses by the caller when several
	// are traced together.
	base uint64
	// paxRows is the number of rows per PAX page for this relation's width.
	paxRows int
}

// newRelation allocates the relation shell with derived parameters.
func newRelation(kind Kind, rows, cols int) *Relation {
	paxRows := paxPageBytes / (cols * fieldBytes)
	if paxRows < 1 {
		paxRows = 1
	}
	return &Relation{kind: kind, rows: rows, cols: cols, paxRows: paxRows}
}

// PAXRowsPerPage returns the number of rows stored per PAX page.
func (r *Relation) PAXRowsPerPage() int { return r.paxRows }

// Build materializes columns (all of equal length) into the given layout.
func Build(kind Kind, columns [][]int64) (*Relation, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("layout: need at least one column")
	}
	rows := len(columns[0])
	for i, c := range columns {
		if len(c) != rows {
			return nil, fmt.Errorf("layout: column %d has %d rows, expected %d", i, len(c), rows)
		}
	}
	r := newRelation(kind, rows, len(columns))
	r.data = make([]int64, rows*len(columns))
	for c, col := range columns {
		for row, v := range col {
			r.data[r.index(row, c)] = v
		}
	}
	return r, nil
}

// MustBuild is Build that panics on error, for fixtures.
func MustBuild(kind Kind, columns [][]int64) *Relation {
	r, err := Build(kind, columns)
	if err != nil {
		panic(err)
	}
	return r
}

// index maps (row, col) to a position in data according to the layout.
func (r *Relation) index(row, col int) int {
	switch r.kind {
	case NSM:
		return row*r.cols + col
	case DSM:
		return col*r.rows + row
	case PAX:
		page := row / r.paxRows
		inPage := row % r.paxRows
		pageRows := r.paxRows
		// The final page may be short.
		if (page+1)*r.paxRows > r.rows {
			pageRows = r.rows - page*r.paxRows
		}
		return page*r.paxRows*r.cols + col*pageRows + inPage
	default:
		panic(fmt.Sprintf("layout: unknown kind %d", int(r.kind)))
	}
}

// Kind returns the layout kind.
func (r *Relation) Kind() Kind { return r.kind }

// NumRows returns the row count.
func (r *Relation) NumRows() int { return r.rows }

// NumCols returns the column count.
func (r *Relation) NumCols() int { return r.cols }

// Bytes returns the relation footprint. It is computed from the shape, not
// from materialized storage, because the layout advisor prices relations it
// never materializes.
func (r *Relation) Bytes() int64 { return int64(r.rows) * int64(r.cols) * fieldBytes }

// SetBase assigns the simulated base address used by traced accesses.
func (r *Relation) SetBase(b uint64) { r.base = b }

// Get returns the field at (row, col).
func (r *Relation) Get(row, col int) int64 { return r.data[r.index(row, col)] }

// Set overwrites the field at (row, col).
func (r *Relation) Set(row, col int, v int64) { r.data[r.index(row, col)] = v }

// Addr returns the simulated address of field (row, col).
func (r *Relation) Addr(row, col int) uint64 {
	return r.base + uint64(r.index(row, col))*fieldBytes
}

// SumColumn computes the sum of one column by walking memory in layout
// order — the real-time counterpart of the modeled scan. On NSM this strides
// by the row width; on DSM it streams contiguously; on PAX it streams
// mini-pages.
func (r *Relation) SumColumn(col int) int64 {
	var sum int64
	switch r.kind {
	case NSM:
		idx := col
		for row := 0; row < r.rows; row++ {
			sum += r.data[idx]
			idx += r.cols
		}
	case DSM:
		start := col * r.rows
		for _, v := range r.data[start : start+r.rows] {
			sum += v
		}
	case PAX:
		for page := 0; page*r.paxRows < r.rows; page++ {
			pageRows := r.paxRows
			if (page+1)*r.paxRows > r.rows {
				pageRows = r.rows - page*r.paxRows
			}
			start := page*r.paxRows*r.cols + col*pageRows
			for _, v := range r.data[start : start+pageRows] {
				sum += v
			}
		}
	default:
		panic(fmt.Sprintf("layout: unknown kind %d", int(r.kind)))
	}
	return sum
}

// ReadRow copies row into out (len >= cols), walking memory in layout order.
func (r *Relation) ReadRow(row int, out []int64) {
	for c := 0; c < r.cols; c++ {
		out[c] = r.Get(row, c)
	}
}

// ScanWork returns the analytic cost description of scanning the given
// columns of the whole relation, for the machine model with line size
// lineBytes. Cache-line granularity is what separates the layouts: NSM pulls
// entire rows through the cache regardless of how many columns the query
// needs; DSM and PAX pull only the needed columns.
func (r *Relation) ScanWork(cols []int, lineBytes int64) hw.Work {
	k := int64(len(cols))
	n := int64(r.rows)
	w := hw.Work{Name: fmt.Sprintf("scan-%s", r.kind), Tuples: n, ComputePerTuple: float64(k)}
	rowBytes := int64(r.cols) * fieldBytes
	switch r.kind {
	case NSM:
		// Every line of every row is touched: full relation streamed unless
		// the row width exceeds a line and the needed columns cluster, which
		// we conservatively ignore (worst case is the common case for the
		// narrow rows used here).
		w.SeqReadBytes = n * rowBytes
	case DSM, PAX:
		w.SeqReadBytes = n * k * fieldBytes
	}
	_ = lineBytes
	return w
}

// PointWork returns the analytic cost of fetching all cols of one row, as a
// list of work items (PAX needs two classes of random access with different
// working sets). Charge every item to the same account.
func (r *Relation) PointWork(cols []int, lineBytes int64) []hw.Work {
	k := int64(len(cols))
	rowBytes := int64(r.cols) * fieldBytes
	name := fmt.Sprintf("point-%s", r.kind)
	switch r.kind {
	case NSM:
		// One row is one or a few adjacent lines: a single random access
		// per line of the row.
		lines := (rowBytes + lineBytes - 1) / lineBytes
		return []hw.Work{{Name: name, Tuples: 1, ComputePerTuple: float64(k),
			RandomReads: lines, RandomWS: r.Bytes()}}
	case DSM:
		// One random access per needed column, each in a distant region.
		return []hw.Work{{Name: name, Tuples: 1, ComputePerTuple: float64(k),
			RandomReads: k, RandomWS: r.Bytes()}}
	case PAX:
		// One full-cost access finds the page; the remaining columns live in
		// the same (now cache/TLB-warm) page, so their accesses see only a
		// page-sized working set.
		works := []hw.Work{{Name: name, Tuples: 1, ComputePerTuple: float64(k),
			RandomReads: 1, RandomWS: r.Bytes()}}
		if k > 1 {
			works = append(works, hw.Work{Name: name + "-page",
				RandomReads: k - 1, RandomWS: int64(r.paxRows) * rowBytes})
		}
		return works
	default:
		panic(fmt.Sprintf("layout: unknown kind %d", int(r.kind)))
	}
}

// TraceScan pushes the address stream of scanning cols through the cache
// hierarchy, in layout order, returning simulated cycles.
func (r *Relation) TraceScan(h *cache.Hierarchy, cols []int) float64 {
	total := 0.0
	switch r.kind {
	case NSM, PAX:
		// Row-major page order: visit rows, touching only requested fields
		// (the cache simulator turns co-located fields into line hits).
		for row := 0; row < r.rows; row++ {
			for _, c := range cols {
				total += h.Access(r.Addr(row, c))
			}
		}
	case DSM:
		// Column-major: stream each requested column fully.
		for _, c := range cols {
			for row := 0; row < r.rows; row++ {
				total += h.Access(r.Addr(row, c))
			}
		}
	}
	return total
}

// TracePoint pushes the address stream of one point lookup through the cache
// hierarchy, returning simulated cycles.
func (r *Relation) TracePoint(h *cache.Hierarchy, row int, cols []int) float64 {
	total := 0.0
	for _, c := range cols {
		total += h.Access(r.Addr(row, c))
	}
	return total
}
