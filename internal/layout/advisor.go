package layout

import (
	"fmt"

	"hwstar/internal/hw"
)

// AccessProfile characterizes a workload against one relation for the layout
// advisor: how many full-relation scans (and how many columns they touch)
// versus how many point lookups it performs per unit of work. This is the
// information a PDSM-style optimizer extracts from a query log.
type AccessProfile struct {
	// Scans is the number of sequential scans; ScanCols the columns each
	// touches (projectivity × column count).
	Scans    int
	ScanCols []int
	// Points is the number of point lookups; PointCols the columns each
	// fetches.
	Points    int
	PointCols []int
}

// Validate reports an error for nonsensical profiles.
func (p AccessProfile) Validate(numCols int) error {
	if p.Scans < 0 || p.Points < 0 {
		return fmt.Errorf("layout: negative access counts in profile")
	}
	if p.Scans+p.Points == 0 {
		return fmt.Errorf("layout: empty access profile")
	}
	for _, c := range p.ScanCols {
		if c < 0 || c >= numCols {
			return fmt.Errorf("layout: scan column %d out of range", c)
		}
	}
	for _, c := range p.PointCols {
		if c < 0 || c >= numCols {
			return fmt.Errorf("layout: point column %d out of range", c)
		}
	}
	if p.Scans > 0 && len(p.ScanCols) == 0 {
		return fmt.Errorf("layout: scans declared but no scan columns")
	}
	if p.Points > 0 && len(p.PointCols) == 0 {
		return fmt.Errorf("layout: points declared but no point columns")
	}
	return nil
}

// CostEstimate prices an AccessProfile against a relation shape (rows ×
// cols) in a given layout on machine m, returning total simulated cycles.
func CostEstimate(kind Kind, rows, cols int, p AccessProfile, m *hw.Machine) float64 {
	// A throwaway relation carries the shape; values are irrelevant for the
	// analytic model, so no data is materialized.
	r := newRelation(kind, rows, cols)
	ctx := hw.DefaultContext()
	total := 0.0
	if p.Scans > 0 {
		w := r.ScanWork(p.ScanCols, m.LineBytes())
		total += float64(p.Scans) * m.Cycles(w, ctx)
	}
	if p.Points > 0 {
		var per float64
		for _, w := range r.PointWork(p.PointCols, m.LineBytes()) {
			per += m.Cycles(w, ctx)
		}
		total += float64(p.Points) * per
	}
	return total
}

// Advice is the advisor's output: the chosen layout and the modeled cost of
// every candidate.
type Advice struct {
	Best  Kind
	Costs map[Kind]float64
}

// Advise picks the cheapest layout for the given relation shape and access
// profile on machine m — the cost-based storage-layout selection the PDSM
// line of work (ICDE 2013 #4) automates.
func Advise(rows, cols int, p AccessProfile, m *hw.Machine) (Advice, error) {
	if err := p.Validate(cols); err != nil {
		return Advice{}, err
	}
	if rows <= 0 || cols <= 0 {
		return Advice{}, fmt.Errorf("layout: relation shape %d×%d invalid", rows, cols)
	}
	adv := Advice{Costs: make(map[Kind]float64, 3)}
	best := Kind(-1)
	for _, k := range []Kind{NSM, DSM, PAX} {
		c := CostEstimate(k, rows, cols, p, m)
		adv.Costs[k] = c
		if best < 0 || c < adv.Costs[best] {
			best = k
		}
	}
	adv.Best = best
	return adv, nil
}
