// Package bench is the experiment harness: it renders parameter-sweep
// results as fixed-width tables (the form the experiments are reported in)
// and as CSV for downstream plotting, and provides small formatting helpers
// for cycle counts and byte sizes.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a title, column headers, rows of
// pre-formatted cells, and free-form notes rendered under the table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: table %q: row has %d cells, want %d", t.Title, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form annotation line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table with aligned fixed-width columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  " + n + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as a header row plus data rows.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cycles formats a cycle count with engineering suffixes (K/M/G).
func Cycles(c float64) string {
	switch {
	case c >= 1e9:
		return fmt.Sprintf("%.2fG", c/1e9)
	case c >= 1e6:
		return fmt.Sprintf("%.2fM", c/1e6)
	case c >= 1e3:
		return fmt.Sprintf("%.1fK", c/1e3)
	default:
		return fmt.Sprintf("%.0f", c)
	}
}

// Bytes formats a byte count with binary suffixes.
func Bytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Ratio formats a speedup/slowdown factor.
func Ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// F is fmt.Sprintf, re-exported so experiment code reads compactly.
func F(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// ErrMismatch reports that two implementations that must agree produced
// different results — experiments use it to fail loudly instead of printing
// wrong tables.
func ErrMismatch(id string, a, b int64) error {
	return fmt.Errorf("%s: result mismatch between implementations: %d vs %d", id, a, b)
}
