package bench

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "param", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-param", "222")
	tb.AddNote("note %d", 7)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "param", "longer-param", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: the "value" header starts at the same offset as "1".
	lines := strings.Split(out, "\n")
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity should panic")
		}
	}()
	NewTable("x", "a", "b").AddRow("only-one")
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "two,with comma")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,\"two,with comma\"\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		12:     "12",
		1500:   "1.5K",
		2.5e6:  "2.50M",
		3.25e9: "3.25G",
	}
	for in, want := range cases {
		if got := Cycles(in); got != want {
			t.Errorf("Cycles(%f) = %q, want %q", in, got, want)
		}
	}
	byteCases := map[int64]string{
		12:      "12B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for in, want := range byteCases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
	if Ratio(2.5) != "2.50x" {
		t.Error("Ratio format wrong")
	}
	if F("%d-%s", 1, "a") != "1-a" {
		t.Error("F format wrong")
	}
}
