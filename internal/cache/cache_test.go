package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
)

func smallCache() *Cache {
	// 4 sets × 2 ways × 64B lines = 512 bytes.
	return New(Config{Name: "T", SizeBytes: 512, LineBytes: 64, Assoc: 2, LatencyCycles: 4})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Assoc: 2},
		{Name: "npot-line", SizeBytes: 512, LineBytes: 48, Assoc: 2},
		{Name: "indivisible", SizeBytes: 500, LineBytes: 64, Assoc: 2},
		{Name: "neg-assoc", SizeBytes: 512, LineBytes: 64, Assoc: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
	good := Config{Name: "ok", SizeBytes: 512, LineBytes: 64, Assoc: 2, LatencyCycles: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on invalid config")
		}
	}()
	New(Config{Name: "bad"})
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(63) {
		t.Fatal("same-line access should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 4 sets, 2-way; set stride is 4*64 = 256 bytes
	// Three lines mapping to set 0: addresses 0, 256, 512.
	c.Access(0)
	c.Access(256)
	c.Access(512) // evicts line 0 (LRU)
	if c.Contains(0) {
		t.Fatal("line 0 should have been evicted")
	}
	if !c.Contains(256) || !c.Contains(512) {
		t.Fatal("lines 256 and 512 should be resident")
	}
	// Touch 256 to make it MRU, then install another conflicting line.
	c.Access(256)
	c.Access(768) // should evict 512, not 256
	if !c.Contains(256) {
		t.Fatal("MRU line 256 should survive")
	}
	if c.Contains(512) {
		t.Fatal("line 512 should have been evicted")
	}
	if got := c.Stats().Evictions; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
}

func TestWorkingSetSmallerThanCacheOnlyColdMisses(t *testing.T) {
	c := New(Config{Name: "T", SizeBytes: 4096, LineBytes: 64, Assoc: 4, LatencyCycles: 4})
	// 32 lines working set in a 64-line cache: after warmup, zero misses.
	for round := 0; round < 5; round++ {
		for addr := uint64(0); addr < 2048; addr += 64 {
			c.Access(addr)
		}
	}
	s := c.Stats()
	if s.Misses != 32 {
		t.Fatalf("misses = %d, want 32 cold misses only", s.Misses)
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := smallCache() // 8 lines total
	// 16-line working set swept cyclically with LRU: every access misses.
	for round := 0; round < 3; round++ {
		for addr := uint64(0); addr < 1024; addr += 64 {
			c.Access(addr)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("cyclic sweep over 2× cache should never hit with LRU, got %d hits", s.Hits)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := smallCache()
	c.Access(0)
	c.Access(256)
	before := c.Stats()
	_ = c.Contains(0)
	_ = c.Contains(999999)
	if c.Stats() != before {
		t.Fatal("Contains must not change statistics")
	}
	// LRU order unchanged: installing a third conflicting line should still
	// evict 0 (the LRU), proving Contains(0) did not promote it.
	c.Access(512)
	if c.Contains(0) {
		t.Fatal("Contains must not refresh LRU position")
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := smallCache()
	c.Access(0)
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("ResetStats left stats %+v", s)
	}
	if !c.Access(0) {
		t.Fatal("ResetStats must preserve contents")
	}
	c.Flush()
	if c.Access(0) {
		t.Fatal("Flush must empty the cache")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Name: "x", Hits: 3, Misses: 1}
	if s.Accesses() != 4 {
		t.Fatalf("accesses = %d", s.Accesses())
	}
	if s.MissRate() != 0.25 {
		t.Fatalf("miss rate = %f", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate should be 0")
	}
	if s.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(2, 4096)
	if tlb.Access(0) {
		t.Fatal("cold TLB access should miss")
	}
	if !tlb.Access(4095) {
		t.Fatal("same-page access should hit")
	}
	tlb.Access(4096) // page 1
	tlb.Access(8192) // page 2, evicts page 0
	if tlb.Access(0) {
		t.Fatal("page 0 should have been evicted")
	}
	tlb.Flush()
	if s := tlb.Stats(); s.Accesses() != 0 {
		t.Fatalf("flush left stats %+v", s)
	}
}

func TestNewTLBPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB should panic on non-power-of-two page size")
		}
	}()
	NewTLB(4, 3000)
}

func TestHierarchyLatencies(t *testing.T) {
	l1 := New(Config{Name: "L1", SizeBytes: 512, LineBytes: 64, Assoc: 2, LatencyCycles: 4})
	l2 := New(Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Assoc: 4, LatencyCycles: 12})
	h := NewHierarchy([]*Cache{l1, l2}, nil, 200, 0)

	if got := h.Access(0); got != 200 {
		t.Fatalf("cold access latency = %f, want 200", got)
	}
	if got := h.Access(0); got != 4 {
		t.Fatalf("L1 hit latency = %f, want 4", got)
	}
	// Evict from L1 by conflicting lines (L1 set stride = 256), then the
	// line should still hit in L2 (inclusive fill).
	h.Access(256)
	h.Access(512)
	if got := h.Access(0); got != 12 {
		t.Fatalf("L2 hit latency = %f, want 12", got)
	}
	if h.Accesses() != 5 {
		t.Fatalf("accesses = %d, want 5", h.Accesses())
	}
	if h.Cycles() <= 0 {
		t.Fatal("cycles should accumulate")
	}
}

func TestHierarchyTLBMissCost(t *testing.T) {
	l1 := New(Config{Name: "L1", SizeBytes: 512, LineBytes: 64, Assoc: 2, LatencyCycles: 4})
	h := NewHierarchy([]*Cache{l1}, NewTLB(1, 4096), 100, 30)
	if got := h.Access(0); got != 130 {
		t.Fatalf("cold access with TLB miss = %f, want 130", got)
	}
	if got := h.Access(64); got != 100 {
		t.Fatalf("same-page cold line = %f, want 100 (TLB hit)", got)
	}
	if got := h.Access(4096); got != 130 {
		t.Fatalf("new page = %f, want 130", got)
	}
}

func TestHierarchyAccessRange(t *testing.T) {
	l1 := New(Config{Name: "L1", SizeBytes: 512, LineBytes: 64, Assoc: 2, LatencyCycles: 4})
	h := NewHierarchy([]*Cache{l1}, nil, 100, 0)
	h.AccessRange(0, 256, 64) // 4 lines, all cold
	if h.Accesses() != 4 {
		t.Fatalf("accesses = %d, want 4", h.Accesses())
	}
	h.Flush()
	if got := h.AccessRange(0, 128, 0); got <= 0 {
		t.Fatal("stride 0 should default to 1 and return positive cycles")
	}
}

func TestFromMachine(t *testing.T) {
	m := hw.Server2S()
	h := FromMachine(m)
	stats := h.Levels()
	if len(stats) != len(m.Caches)+1 {
		t.Fatalf("levels = %d, want %d caches + TLB", len(stats), len(m.Caches))
	}
	if stats[0].Name != "L1d" || stats[len(stats)-1].Name != "TLB" {
		t.Fatalf("unexpected level names: %v", stats)
	}
	h.Access(0)
	h.ResetStats()
	if h.Accesses() != 0 {
		t.Fatal("ResetStats should zero access count")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := FromMachine(hw.Laptop())
	h.Access(0)
	h.Flush()
	if h.Accesses() != 0 || h.Cycles() != 0 {
		t.Fatal("Flush should zero counters")
	}
	if got := h.Access(0); got <= 100 {
		t.Fatalf("post-flush access should be a cold miss, got %f cycles", got)
	}
}

// Property: the simulator is deterministic — the same trace yields identical
// statistics across runs.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		run := func() Stats {
			c := smallCache()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < int(n); i++ {
				c.Access(uint64(rng.Intn(4096)))
			}
			return c.Stats()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals the number of accesses, and evictions never
// exceed misses.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		s := c.Stats()
		return s.Accesses() == int64(len(addrs)) && s.Evictions <= s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fully-associative cache (one set) with capacity >= distinct
// lines accessed only takes cold misses.
func TestFullyAssociativeColdMissProperty(t *testing.T) {
	f := func(addrs []uint8) bool {
		c := New(Config{Name: "FA", SizeBytes: 64 * 256, LineBytes: 64, Assoc: 256, LatencyCycles: 1})
		distinct := map[uint64]bool{}
		for _, a := range addrs {
			line := uint64(a) // each uint8 is its own line after shift? ensure distinct lines
			c.Access(line * 64)
			distinct[line] = true
		}
		return c.Stats().Misses == int64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fill inclusion — immediately after any access, the touched line
// is resident at every level of the hierarchy (misses install on the way in).
func TestFillInclusionProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		l1 := New(Config{Name: "L1", SizeBytes: 512, LineBytes: 64, Assoc: 2, LatencyCycles: 4})
		l2 := New(Config{Name: "L2", SizeBytes: 16384, LineBytes: 64, Assoc: 8, LatencyCycles: 12})
		h := NewHierarchy([]*Cache{l1, l2}, nil, 100, 0)
		for _, a := range addrs {
			h.Access(uint64(a))
			if !l1.Contains(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
