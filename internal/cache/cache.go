// Package cache implements a trace-driven, set-associative cache and TLB
// simulator. It stands in for the hardware performance counters the keynote's
// performance-engineering methodology relies on: algorithms run in a traced
// mode that feeds their memory accesses through a simulated hierarchy, and
// experiments report hit/miss counts per level exactly as a profiler would
// report counter values on real hardware.
//
// The simulator models inclusive caches with true-LRU replacement, which is
// the standard baseline in the architecture literature and sufficient to
// reproduce the qualitative effects the experiments target (working-set
// cliffs, pointer-chasing penalties, layout-dependent line utilization).
package cache

import (
	"fmt"

	"hwstar/internal/hw"
)

// Config describes one simulated cache level.
type Config struct {
	// Name labels the level in statistics ("L1d", "L2", ...).
	Name string
	// SizeBytes is the total capacity; LineBytes the line size; Assoc the
	// set associativity. SizeBytes must be divisible by LineBytes*Assoc.
	SizeBytes int64
	LineBytes int64
	Assoc     int
	// LatencyCycles is the cost of a hit in this level.
	LatencyCycles float64
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: all parameters must be positive", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	setBytes := c.LineBytes * int64(c.Assoc)
	if c.SizeBytes%setBytes != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by set size %d", c.Name, c.SizeBytes, setBytes)
	}
	return nil
}

// Stats holds access statistics for one level.
type Stats struct {
	Name      string
	Hits      int64
	Misses    int64
	Evictions int64
}

// Accesses returns hits + misses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns misses / accesses, or 0 when no accesses happened.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d accesses, %d misses (%.2f%%)", s.Name, s.Accesses(), s.Misses, 100*s.MissRate())
}

// Cache is one set-associative level with LRU replacement. It is not safe for
// concurrent use; traced runs are single-goroutine by design (simulated
// parallelism happens in the scheduler, not in traced mode).
type Cache struct {
	cfg       Config
	sets      [][]uint64 // per set: line tags ordered most- to least-recently used
	numSets   uint64
	lineShift uint
	stats     Stats
}

// New builds a cache from cfg, panicking on invalid configuration (callers
// construct caches from vetted machine profiles; a bad profile is a
// programming error, not runtime input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := uint64(cfg.SizeBytes / (cfg.LineBytes * int64(cfg.Assoc)))
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	sets := make([][]uint64, numSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets, numSets: numSets, lineShift: shift, stats: Stats{Name: cfg.Name}}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access touches addr. It returns true on a hit. On a miss the line is
// installed, evicting the LRU line of its set when the set is full.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line%c.numSets]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	c.install(line)
	return false
}

// install places line as MRU in its set, evicting if necessary.
func (c *Cache) install(line uint64) {
	idx := line % c.numSets
	set := c.sets[idx]
	if len(set) < c.cfg.Assoc {
		set = append(set, 0)
	} else {
		c.stats.Evictions++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	c.sets[idx] = set
}

// Contains reports whether addr's line is currently cached, without updating
// LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	for _, tag := range c.sets[line%c.numSets] {
		if tag == line {
			return true
		}
	}
	return false
}

// Stats returns a copy of the current statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics but keeps cache contents (useful to warm
// up, then measure).
func (c *Cache) ResetStats() {
	name := c.stats.Name
	c.stats = Stats{Name: name}
}

// Flush empties the cache and zeroes statistics.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.ResetStats()
}

// TLB simulates a fully-associative translation lookaside buffer with LRU
// replacement at page granularity.
type TLB struct {
	pageShift uint
	entries   int
	pages     []uint64 // MRU-first
	stats     Stats
}

// NewTLB builds a TLB with the given entry count and page size (a power of
// two).
func NewTLB(entries int, pageBytes int64) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("cache: invalid TLB parameters: %d entries, %d page bytes", entries, pageBytes))
	}
	shift := uint(0)
	for p := pageBytes; p > 1; p >>= 1 {
		shift++
	}
	return &TLB{pageShift: shift, entries: entries, pages: make([]uint64, 0, entries), stats: Stats{Name: "TLB"}}
}

// Access translates addr, returning true on a TLB hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	for i, p := range t.pages {
		if p == page {
			copy(t.pages[1:i+1], t.pages[:i])
			t.pages[0] = page
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	if len(t.pages) < t.entries {
		t.pages = append(t.pages, 0)
	} else {
		t.stats.Evictions++
	}
	copy(t.pages[1:], t.pages[:len(t.pages)-1])
	t.pages[0] = page
	return false
}

// Stats returns a copy of the TLB statistics.
func (t *TLB) Stats() Stats { return t.stats }

// Flush empties the TLB and zeroes statistics.
func (t *TLB) Flush() {
	t.pages = t.pages[:0]
	t.stats = Stats{Name: "TLB"}
}

// Hierarchy chains cache levels (closest first) plus a TLB and prices every
// access in simulated cycles. Levels are inclusive: a line missing in L1 is
// installed in every level on its way in from memory.
type Hierarchy struct {
	levels     []*Cache
	tlb        *TLB
	memLatency float64
	tlbMiss    float64
	accesses   int64
	cycles     float64
}

// NewHierarchy builds a hierarchy from explicit levels.
func NewHierarchy(levels []*Cache, tlb *TLB, memLatencyCycles, tlbMissCycles float64) *Hierarchy {
	if len(levels) == 0 {
		panic("cache: hierarchy needs at least one level")
	}
	return &Hierarchy{levels: levels, tlb: tlb, memLatency: memLatencyCycles, tlbMiss: tlbMissCycles}
}

// FromMachine builds the hierarchy described by a hw.Machine profile.
func FromMachine(m *hw.Machine) *Hierarchy {
	levels := make([]*Cache, len(m.Caches))
	for i, cl := range m.Caches {
		levels[i] = New(Config{
			Name:          cl.Name,
			SizeBytes:     cl.SizeBytes,
			LineBytes:     cl.LineBytes,
			Assoc:         cl.Assoc,
			LatencyCycles: cl.LatencyCycles,
		})
	}
	return NewHierarchy(levels, NewTLB(m.TLBEntries, m.PageBytes), m.MemLatencyCycles, m.TLBMissCycles)
}

// Access simulates one load/store at addr and returns its latency in cycles.
func (h *Hierarchy) Access(addr uint64) float64 {
	h.accesses++
	lat := 0.0
	if h.tlb != nil && !h.tlb.Access(addr) {
		lat += h.tlbMiss
	}
	hitLevel := -1
	for i, c := range h.levels {
		if c.Access(addr) {
			hitLevel = i
			break
		}
	}
	if hitLevel >= 0 {
		lat += h.levels[hitLevel].cfg.LatencyCycles
	} else {
		lat += h.memLatency
	}
	// The hierarchy is inclusive: every level the access missed in has
	// already installed the line (Cache.Access installs on miss), so by the
	// time control reaches here all inner levels hold the line.
	h.cycles += lat
	return lat
}

// AccessRange simulates a sequential sweep of n bytes starting at addr with
// the given stride, returning total cycles.
func (h *Hierarchy) AccessRange(addr uint64, n int64, stride int64) float64 {
	if stride <= 0 {
		stride = 1
	}
	total := 0.0
	for off := int64(0); off < n; off += stride {
		total += h.Access(addr + uint64(off))
	}
	return total
}

// Levels returns per-level statistics, innermost first, followed by the TLB
// stats when a TLB is configured.
func (h *Hierarchy) Levels() []Stats {
	out := make([]Stats, 0, len(h.levels)+1)
	for _, c := range h.levels {
		out = append(out, c.Stats())
	}
	if h.tlb != nil {
		out = append(out, h.tlb.Stats())
	}
	return out
}

// Accesses returns the number of simulated accesses.
func (h *Hierarchy) Accesses() int64 { return h.accesses }

// Cycles returns the total simulated cycles spent on memory accesses.
func (h *Hierarchy) Cycles() float64 { return h.cycles }

// Flush empties every level and the TLB and zeroes all statistics.
func (h *Hierarchy) Flush() {
	for _, c := range h.levels {
		c.Flush()
	}
	if h.tlb != nil {
		h.tlb.Flush()
	}
	h.accesses = 0
	h.cycles = 0
}

// ResetStats zeroes statistics but preserves cache contents.
func (h *Hierarchy) ResetStats() {
	for _, c := range h.levels {
		c.ResetStats()
	}
	h.accesses = 0
	h.cycles = 0
}
