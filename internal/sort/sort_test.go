package sort

import (
	"math"
	"reflect"
	stdsort "sort"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func TestRadixSortsKnownCases(t *testing.T) {
	cases := [][]int64{
		{},
		{5},
		{2, 1},
		{1, 2, 3},
		{3, 1, 2, 1, 3, 0},
		{-5, 3, -1, 0, 7, -5},
		{math.MaxInt64, math.MinInt64, 0, -1, 1},
	}
	for _, in := range cases {
		got := append([]int64(nil), in...)
		Radix(got, RadixOptions{}, hw.Server2S())
		want := append([]int64(nil), in...)
		stdsort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Radix(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestRadixLargeRandom(t *testing.T) {
	keys := workload.UniformInts(1, 100000, 1<<40)
	// Mix in negatives.
	for i := 0; i < len(keys); i += 3 {
		keys[i] = -keys[i]
	}
	got := append([]int64(nil), keys...)
	passes := Radix(got, RadixOptions{}, hw.Server2S())
	if passes <= 0 {
		t.Fatal("passes should be positive")
	}
	if !stdsort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("radix output not sorted")
	}
	want := append([]int64(nil), keys...)
	Comparison(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("radix disagrees with comparison sort")
	}
}

func TestRadixBitsPerPassVariants(t *testing.T) {
	keys := workload.UniformInts(2, 5000, 1<<30)
	for _, bits := range []int{1, 4, 8, 11, 16} {
		got := append([]int64(nil), keys...)
		Radix(got, RadixOptions{BitsPerPass: bits}, nil)
		if !stdsort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("bits=%d: not sorted", bits)
		}
	}
}

func TestRadixOptionsResolve(t *testing.T) {
	m := hw.Server2S()
	o := RadixOptions{}.resolve(m)
	if o.BitsPerPass != 6 { // log2(64 TLB entries)
		t.Fatalf("auto bits = %d, want 6", o.BitsPerPass)
	}
	if (RadixOptions{BitsPerPass: 20}).resolve(m).BitsPerPass != 20 {
		t.Fatal("explicit bits should be kept")
	}
	if (RadixOptions{}).resolve(nil).BitsPerPass != 6 {
		t.Fatal("nil machine should default to 64-entry TLB")
	}
}

func TestComparison(t *testing.T) {
	keys := []int64{3, -1, 2}
	Comparison(keys)
	if !reflect.DeepEqual(keys, []int64{-1, 2, 3}) {
		t.Fatalf("comparison sort = %v", keys)
	}
}

func TestCostModelOrdering(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()
	// At scale, radix should be cheaper than the comparison sort (that is
	// why database engines use it), and an unbuffered over-wide digit must
	// be penalized.
	n := int64(1 << 24)
	cmp := m.Cycles(ComparisonWork(n, m), ctx)
	radix := m.Cycles(RadixWork(n, RadixOptions{}, m), ctx)
	if radix >= cmp {
		t.Fatalf("radix %e should beat comparison %e at n=%d", radix, cmp, n)
	}
	wide := m.Cycles(RadixWork(n, RadixOptions{BitsPerPass: 16}, m), ctx)
	if wide <= radix {
		t.Fatalf("16-bit digits (fanout 65536 >> TLB) should cost more: %e <= %e", wide, radix)
	}
	if got := m.Cycles(ComparisonWork(1, m), ctx); got != 0 {
		t.Fatalf("sorting one element should be free, got %f", got)
	}
}

// Property: Radix is a correct sort for arbitrary inputs (result is sorted,
// and is a permutation of the input).
func TestRadixCorrectnessProperty(t *testing.T) {
	f := func(raw []int64, bitsRaw uint8) bool {
		bits := int(bitsRaw)%12 + 1
		got := append([]int64(nil), raw...)
		Radix(got, RadixOptions{BitsPerPass: bits}, nil)
		want := append([]int64(nil), raw...)
		stdsort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixSkipEqualDigitPass(t *testing.T) {
	// All keys equal: every pass skips, result unchanged and correct.
	keys := []int64{7, 7, 7, 7}
	Radix(keys, RadixOptions{BitsPerPass: 8}, nil)
	if !reflect.DeepEqual(keys, []int64{7, 7, 7, 7}) {
		t.Fatalf("keys = %v", keys)
	}
}
