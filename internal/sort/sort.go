// Package sort contrasts hardware-conscious and comparison-based sorting of
// int64 keys — another front of the keynote's argument. The comparison sort
// executes O(n log n) unpredictable branches and pointer-ish accesses; LSB
// radix sort replaces them with O(passes · n) sequential streams whose only
// irregularity is a bounded scatter, which software-managed counting keeps
// TLB-friendly. Both sorts are real implementations; both describe their
// behaviour to the machine model.
package sort

import (
	"math"
	stdsort "sort"

	"hwstar/internal/hw"
)

// keyBytes is the width of one element.
const keyBytes = 8

// Comparison sorts keys in place using the standard library's introsort —
// the hardware-oblivious baseline (fine algorithmics, hostile branch and
// access behaviour).
func Comparison(keys []int64) {
	stdsort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// RadixOptions tunes the LSB radix sort.
type RadixOptions struct {
	// BitsPerPass is the digit width; 0 derives it from the machine's TLB
	// (fan-out ≤ TLB entries) like the radix join does.
	BitsPerPass int
}

func (o RadixOptions) resolve(m *hw.Machine) RadixOptions {
	if o.BitsPerPass <= 0 {
		entries := 64
		if m != nil {
			entries = m.TLBEntries
		}
		o.BitsPerPass = log2floor(entries)
		if o.BitsPerPass < 1 {
			o.BitsPerPass = 1
		}
		if o.BitsPerPass > 16 {
			o.BitsPerPass = 16
		}
	}
	return o
}

func log2floor(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Radix sorts keys ascending using LSB radix passes over a biased (order-
// preserving) unsigned representation, so negative keys sort correctly.
// It returns the number of passes executed (for cost reporting).
func Radix(keys []int64, opts RadixOptions, m *hw.Machine) int {
	opts = opts.resolve(m)
	n := len(keys)
	if n <= 1 {
		return 0
	}
	bits := opts.BitsPerPass
	fanout := 1 << bits
	mask := uint64(fanout - 1)

	// Bias to unsigned so the natural unsigned digit order matches signed
	// order.
	src := make([]uint64, n)
	for i, k := range keys {
		src[i] = uint64(k) ^ (1 << 63)
	}
	dst := make([]uint64, n)

	passes := (64 + bits - 1) / bits
	count := make([]int, fanout)
	for p := 0; p < passes; p++ {
		shift := uint(p * bits)
		for i := range count {
			count[i] = 0
		}
		skip := true
		first := (src[0] >> shift) & mask
		for _, v := range src {
			d := (v >> shift) & mask
			count[d]++
			if d != first {
				skip = false
			}
		}
		if skip {
			// All digits equal in this pass: nothing to move.
			continue
		}
		sum := 0
		for i := 0; i < fanout; i++ {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, v := range src {
			d := (v >> shift) & mask
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
	}
	for i, v := range src {
		keys[i] = int64(v ^ (1 << 63))
	}
	return passes
}

// ComparisonWork models the introsort: n·log2(n) comparisons, each a
// hard-to-predict branch plus a swap touching scattered lines of the array.
func ComparisonWork(n int64, m *hw.Machine) hw.Work {
	if n <= 1 {
		return hw.Work{Name: "sort-comparison"}
	}
	levels := math.Log2(float64(n))
	cmp := float64(n) * levels
	return hw.Work{
		Name:            "sort-comparison",
		Tuples:          int64(cmp),
		ComputePerTuple: 4,
		BranchMisses:    int64(cmp / 2),
		// Partitioning touches the array once per level; the working set of
		// each partition shrinks geometrically, so roughly half the levels'
		// traffic is cache-resident. Charge the DRAM-visible share.
		SeqReadBytes:  int64(float64(n) * keyBytes * levels / 2),
		SeqWriteBytes: int64(float64(n) * keyBytes * levels / 2),
	}
}

// RadixWork models the LSB radix sort: per pass, one counting read sweep and
// one scatter write sweep, with the scatter sequential as long as the
// fan-out respects the TLB.
func RadixWork(n int64, opts RadixOptions, m *hw.Machine) hw.Work {
	opts = opts.resolve(m)
	passes := int64((64 + opts.BitsPerPass - 1) / opts.BitsPerPass)
	w := hw.Work{
		Name:            "sort-radix",
		Tuples:          n * passes,
		ComputePerTuple: 3, // digit extract + counter bump / cursor store
		SeqReadBytes:    2 * n * passes * keyBytes,
	}
	fanout := 1 << opts.BitsPerPass
	if m != nil && fanout > m.TLBEntries {
		w.RandomReads = n * passes
		w.RandomWS = n * keyBytes
	} else {
		w.SeqWriteBytes = n * passes * keyBytes
	}
	return w
}
