// Package vecexec implements vectorized (batch-at-a-time) query execution:
// operators process chunks of a few thousand values with tight, branch-light
// loops over typed column slices and selection vectors. It also provides
// "fused" single-loop implementations standing in for JiT query compilation
// (the PDSM+JiT line of work in the same proceedings): no materialized
// intermediates at all, one pass over the data.
//
// Together with internal/volcano this package powers experiment E6: the same
// queries executed tuple-at-a-time, vectorized, and fused, on identical
// data, with both real wall-clock and modeled-cycle comparisons.
package vecexec

import "fmt"

// ChunkSize is the number of rows processed per batch, sized so a handful of
// active vectors stay L1/L2-resident.
const ChunkSize = 4096

// Sel is a selection vector: indices of qualifying rows within a chunk. A
// nil Sel means "all rows"; an empty non-nil Sel means "no rows". Filter
// primitives always return a non-nil Sel — even when seeded with a nil out
// and zero rows qualify — so a filtered-to-nothing result can never be
// mistaken for "all rows" when chained into the next primitive. Callers
// that filter repeatedly should still seed out with a reusable buffer
// (e.g. make(Sel, 0, ChunkSize)) to keep the inner loop allocation-free.
type Sel = []int32

// vecTupleCycles is the modelled per-tuple, per-primitive cost of vectorized
// execution: one tight-loop iteration, amortized dispatch.
const vecTupleCycles = 3.0

// fusedTupleCycles is the modelled per-tuple cost of a fused (compiled)
// pipeline evaluating all predicates and aggregates in one loop.
const fusedTupleCycles = 6.0

// RangeFilterF64 appends to out the indices i in [0, n) (or in sel when sel
// is non-nil) with lo <= col[i] <= hi, returning the result. The loop is
// branch-light: the comparison result indexes the append. The result is
// never nil (see Sel).
func RangeFilterF64(col []float64, lo, hi float64, sel Sel, out Sel) Sel {
	if sel == nil {
		for i, v := range col {
			if v >= lo && v <= hi {
				out = append(out, int32(i))
			}
		}
		return notNil(out)
	}
	for _, i := range sel {
		v := col[i]
		if v >= lo && v <= hi {
			out = append(out, i)
		}
	}
	return notNil(out)
}

// RangeFilterI64 is RangeFilterF64 for int64 columns.
func RangeFilterI64(col []int64, lo, hi int64, sel Sel, out Sel) Sel {
	if sel == nil {
		for i, v := range col {
			if v >= lo && v <= hi {
				out = append(out, int32(i))
			}
		}
		return notNil(out)
	}
	for _, i := range sel {
		v := col[i]
		if v >= lo && v <= hi {
			out = append(out, i)
		}
	}
	return notNil(out)
}

// EqFilterI32 filters a dictionary-code column for equality with code.
func EqFilterI32(col []int32, code int32, sel Sel, out Sel) Sel {
	if sel == nil {
		for i, v := range col {
			if v == code {
				out = append(out, int32(i))
			}
		}
		return notNil(out)
	}
	for _, i := range sel {
		if col[i] == code {
			out = append(out, i)
		}
	}
	return notNil(out)
}

// notNil converts a nil Sel into an empty non-nil one without allocating.
// A filter that matched nothing must not hand "all rows" to the next
// primitive in the chain.
func notNil(out Sel) Sel {
	if out == nil {
		return Sel{}
	}
	return out
}

// SumF64 sums col over sel (or all of col when sel is nil).
func SumF64(col []float64, sel Sel) float64 {
	var s float64
	if sel == nil {
		for _, v := range col {
			s += v
		}
		return s
	}
	for _, i := range sel {
		s += col[i]
	}
	return s
}

// SumI64 sums col over sel (or all of col when sel is nil).
func SumI64(col []int64, sel Sel) int64 {
	var s int64
	if sel == nil {
		for _, v := range col {
			s += v
		}
		return s
	}
	for _, i := range sel {
		s += col[i]
	}
	return s
}

// SumProductF64 sums a[i]*b[i] over sel (or all rows when sel is nil).
func SumProductF64(a, b []float64, sel Sel) float64 {
	var s float64
	if sel == nil {
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for _, i := range sel {
		s += a[i] * b[i]
	}
	return s
}

// CountSel returns the number of selected rows (len(sel), or n when nil).
func CountSel(sel Sel, n int) int {
	if sel == nil {
		return n
	}
	return len(sel)
}

// Chunks calls fn(start, end) for consecutive chunks of n rows.
func Chunks(n int, fn func(start, end int)) {
	for start := 0; start < n; start += ChunkSize {
		end := start + ChunkSize
		if end > n {
			end = n
		}
		fn(start, end)
	}
}

// GroupAgg accumulates per-group aggregates keyed by a small dictionary-code
// pair (the Q1 shape: two low-cardinality group columns). Groups are indexed
// as g1*card2+g2 in dense arrays — the vectorized engine's answer to hash
// aggregation when cardinalities are known small.
type GroupAgg struct {
	card2 int
	Sums  [][]float64 // [aggIdx][groupIdx]
	Count []int64     // [groupIdx]
}

// NewGroupAgg creates a dense aggregator for card1×card2 groups and nAggs
// sum-aggregates.
func NewGroupAgg(card1, card2, nAggs int) *GroupAgg {
	if card1 <= 0 || card2 <= 0 || nAggs < 0 {
		panic(fmt.Sprintf("vecexec: bad group agg shape %d×%d×%d", card1, card2, nAggs))
	}
	g := &GroupAgg{card2: card2, Count: make([]int64, card1*card2)}
	g.Sums = make([][]float64, nAggs)
	for i := range g.Sums {
		g.Sums[i] = make([]float64, card1*card2)
	}
	return g
}

// GroupIndex returns the dense index of group (g1, g2).
func (g *GroupAgg) GroupIndex(g1, g2 int32) int { return int(g1)*g.card2 + int(g2) }

// Add folds value v into aggregate aggIdx of group (g1, g2).
func (g *GroupAgg) Add(aggIdx int, g1, g2 int32, v float64) {
	g.Sums[aggIdx][g.GroupIndex(g1, g2)] += v
}

// Bump increments the row count of group (g1, g2).
func (g *GroupAgg) Bump(g1, g2 int32) { g.Count[g.GroupIndex(g1, g2)]++ }
