package vecexec

import (
	"math/rand"
	"testing"

	"hwstar/internal/compress"
)

// TestFilterNeverNil pins the Sel contract: a filter seeded with a nil out
// that matches zero rows must return an empty non-nil Sel, not nil — nil
// means "all rows" to the next primitive.
func TestFilterNeverNil(t *testing.T) {
	f64 := []float64{1, 2, 3}
	i64 := []int64{1, 2, 3}
	i32 := []int32{1, 2, 3}
	if got := RangeFilterF64(f64, 100, 200, nil, nil); got == nil {
		t.Fatal("RangeFilterF64 returned nil for zero matches")
	}
	if got := RangeFilterI64(i64, 100, 200, nil, nil); got == nil {
		t.Fatal("RangeFilterI64 returned nil for zero matches")
	}
	if got := EqFilterI32(i32, 99, nil, nil); got == nil {
		t.Fatal("EqFilterI32 returned nil for zero matches")
	}
	// With a non-nil incoming sel and zero matches the result must also be
	// non-nil.
	if got := RangeFilterI64(i64, 100, 200, Sel{0, 1}, nil); got == nil {
		t.Fatal("RangeFilterI64 returned nil for zero matches over a sel")
	}
}

// TestChainedFilterZeroFirst chains two filters where the first selects
// zero rows. Before the non-nil guarantee, the first filter returned nil
// and the second treated it as "all rows", resurrecting every row the
// first filter had excluded.
func TestChainedFilterZeroFirst(t *testing.T) {
	price := []float64{10, 20, 30, 40}
	qty := []int64{1, 2, 3, 4}

	sel := RangeFilterF64(price, 1000, 2000, nil, nil) // nothing qualifies
	sel = RangeFilterI64(qty, 0, 100, sel, nil)        // everything qualifies — of nothing
	if len(sel) != 0 {
		t.Fatalf("chained filter after empty first stage selected %d rows, want 0", len(sel))
	}
	if CountSel(sel, len(qty)) != 0 {
		t.Fatalf("CountSel over chained empty = %d, want 0", CountSel(sel, len(qty)))
	}
}

// TestSumI64 checks the int64 aggregate with and without a selection.
func TestSumI64(t *testing.T) {
	col := []int64{5, -2, 7, 100}
	if s := SumI64(col, nil); s != 110 {
		t.Fatalf("SumI64 all = %d", s)
	}
	if s := SumI64(col, Sel{1, 3}); s != 98 {
		t.Fatalf("SumI64 sel = %d", s)
	}
	if s := SumI64(col, Sel{}); s != 0 {
		t.Fatalf("SumI64 empty sel = %d", s)
	}
}

// TestCompressedEntryPointsMatchDecoded runs the compressed-block filter +
// sum against the decoded column for random data, block by block.
func TestCompressedEntryPointsMatchDecoded(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	vals := make([]int64, 3*compress.BlockValues+200)
	for i := range vals {
		vals[i] = r.Int63n(1 << 20)
	}
	col := compress.Encode(vals)
	var buf [compress.BlockValues]int64
	for _, rng := range [][2]int64{{0, 1 << 19}, {1 << 10, 1 << 12}, {-5, -1}, {0, 1 << 20}} {
		lo, hi := rng[0], rng[1]
		var want, got int64
		for _, v := range vals {
			if v >= lo && v <= hi {
				want += v
			}
		}
		sel := make(Sel, 0, compress.BlockValues)
		BlocksOf(col, 0, col.Len(), func(blk, start, n int) {
			s, all, _ := RangeFilterCompressed(col, blk, lo, hi, buf[:], sel[:0])
			if all {
				s = nil
			} else if len(s) == 0 {
				return
			}
			sum, _ := SumCompressed(col, blk, s, buf[:])
			got += sum
		})
		if got != want {
			t.Fatalf("[%d,%d]: compressed sum %d != reference %d", lo, hi, got, want)
		}
	}
}
