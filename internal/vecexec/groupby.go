package vecexec

import "container/heap"

// HashGroupSum is the vectorized group-by for group keys too wide or too
// numerous for the dense GroupAgg array: an open-addressing table of
// (key, sum, count) slots sized to the expected cardinality, processed a
// selection at a time. It is the vectorized engine's counterpart of
// internal/agg's serial paths and exists so pipelines can group without
// falling back to Go maps in the hot loop.
type HashGroupSum struct {
	keys   []int64
	sums   []float64
	counts []int64
	used   []bool
	mask   uint64
	size   int
}

// NewHashGroupSum sizes the table for an expected number of groups (50%
// max fill).
func NewHashGroupSum(expectedGroups int) *HashGroupSum {
	capacity := 16
	for capacity < 2*expectedGroups {
		capacity <<= 1
	}
	return &HashGroupSum{
		keys:   make([]int64, capacity),
		sums:   make([]float64, capacity),
		counts: make([]int64, capacity),
		used:   make([]bool, capacity),
		mask:   uint64(capacity - 1),
	}
}

func ghash(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// grow doubles the table when fill reaches 50%.
func (g *HashGroupSum) grow() {
	old := *g
	capacity := len(old.keys) * 2
	g.keys = make([]int64, capacity)
	g.sums = make([]float64, capacity)
	g.counts = make([]int64, capacity)
	g.used = make([]bool, capacity)
	g.mask = uint64(capacity - 1)
	g.size = 0
	for i, u := range old.used {
		if u {
			slot := g.slotFor(old.keys[i])
			g.keys[slot] = old.keys[i]
			g.used[slot] = true
			g.sums[slot] = old.sums[i]
			g.counts[slot] = old.counts[i]
			g.size++
		}
	}
}

// slotFor returns the slot where key lives or should be inserted.
func (g *HashGroupSum) slotFor(key int64) uint64 {
	slot := ghash(key) & g.mask
	for g.used[slot] && g.keys[slot] != key {
		slot = (slot + 1) & g.mask
	}
	return slot
}

// AddBatch folds vals[i] into the group keys[i] for every selected row
// (sel nil = all rows).
func (g *HashGroupSum) AddBatch(keys []int64, vals []float64, sel Sel) {
	fold := func(i int32) {
		if 2*g.size >= len(g.keys) {
			g.grow()
		}
		slot := g.slotFor(keys[i])
		if !g.used[slot] {
			g.used[slot] = true
			g.keys[slot] = keys[i]
			g.size++
		}
		g.sums[slot] += vals[i]
		g.counts[slot]++
	}
	if sel == nil {
		for i := range keys {
			fold(int32(i))
		}
		return
	}
	for _, i := range sel {
		fold(i)
	}
}

// Len returns the number of groups.
func (g *HashGroupSum) Len() int { return g.size }

// Result returns one group's aggregate.
type GroupResult struct {
	Key   int64
	Sum   float64
	Count int64
}

// Results extracts all groups (unordered).
func (g *HashGroupSum) Results() []GroupResult {
	out := make([]GroupResult, 0, g.size)
	for i, u := range g.used {
		if u {
			out = append(out, GroupResult{Key: g.keys[i], Sum: g.sums[i], Count: g.counts[i]})
		}
	}
	return out
}

// TopK returns the k groups with the largest sums, descending (ties by
// smaller key first), using a size-k min-heap — the vectorized engine's
// ORDER BY ... LIMIT k without a full sort.
func (g *HashGroupSum) TopK(k int) []GroupResult {
	if k <= 0 {
		return nil
	}
	h := &groupHeap{}
	heap.Init(h)
	for i, u := range g.used {
		if !u {
			continue
		}
		r := GroupResult{Key: g.keys[i], Sum: g.sums[i], Count: g.counts[i]}
		if h.Len() < k {
			heap.Push(h, r)
		} else if less((*h)[0], r) {
			(*h)[0] = r
			heap.Fix(h, 0)
		}
	}
	out := make([]GroupResult, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(GroupResult)
	}
	return out
}

// less orders a strictly below b in the "top" ordering (smaller sum, or
// equal sum with larger key).
func less(a, b GroupResult) bool {
	if a.Sum != b.Sum {
		return a.Sum < b.Sum
	}
	return a.Key > b.Key
}

// groupHeap is a min-heap under the top ordering.
type groupHeap []GroupResult

func (h groupHeap) Len() int           { return len(h) }
func (h groupHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h groupHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x any)        { *h = append(*h, x.(GroupResult)) }
func (h *groupHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}
