package vecexec

import "hwstar/internal/hw"

// Cost descriptions for the E6 queries. Column widths follow the lineitem
// schema: four 8-byte numeric columns for Q6; five numerics plus two 4-byte
// dictionary code columns for Q1.

const (
	q6ColumnBytes = 4 * 8
	q1ColumnBytes = 5*8 + 2*4
)

// ChargeQ6Vectorized models the vectorized Q6 pipeline: three filter
// primitives plus one sum-product, each a tight loop; intermediate selection
// vectors stay cache-resident (chunked execution), so only base columns
// stream from memory.
func ChargeQ6Vectorized(acct *hw.Account, rows int64) {
	acct.Charge(hw.Work{
		Name:            "q6-vectorized",
		Tuples:          rows * 3, // four primitives over shrinking selections
		ComputePerTuple: vecTupleCycles,
		SeqReadBytes:    rows * q6ColumnBytes,
		BranchMisses:    rows / 4,
	})
}

// ChargeQ6Fused models the fused Q6 loop: one pass, one combined predicate,
// no intermediates.
func ChargeQ6Fused(acct *hw.Account, rows int64) {
	acct.Charge(hw.Work{
		Name:            "q6-fused",
		Tuples:          rows,
		ComputePerTuple: fusedTupleCycles,
		SeqReadBytes:    rows * q6ColumnBytes,
		BranchMisses:    rows / 4,
	})
}

// ChargeQ1Vectorized models the vectorized Q1: a filter primitive plus a
// gather-and-accumulate pass per chunk (the dense group array stays in L1).
func ChargeQ1Vectorized(acct *hw.Account, rows int64) {
	acct.Charge(hw.Work{
		Name:            "q1-vectorized",
		Tuples:          rows * 5, // filter + gather + five accumulate primitives
		ComputePerTuple: vecTupleCycles,
		SeqReadBytes:    rows * q1ColumnBytes,
		BranchMisses:    rows / 8, // the permissive date cutoff predicts well
	})
}

// ChargeQ1Fused models the fused Q1 loop.
func ChargeQ1Fused(acct *hw.Account, rows int64) {
	acct.Charge(hw.Work{
		Name:            "q1-fused",
		Tuples:          rows,
		ComputePerTuple: 2 * fusedTupleCycles, // five accumulations per tuple
		SeqReadBytes:    rows * q1ColumnBytes,
		BranchMisses:    rows / 8,
	})
}

// Exported per-tuple constants for cost charges assembled outside this
// package (e.g. the Q3 join pipeline in internal/queries).
const (
	// VecTupleCycles is the modelled vectorized per-primitive cost.
	VecTupleCycles = vecTupleCycles
	// FusedTupleCycles is the modelled fused-pipeline per-tuple cost.
	FusedTupleCycles = fusedTupleCycles
)
