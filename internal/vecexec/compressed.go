// Compressed-column entry points: the chunked operators' bridge onto
// FOR/RLE-encoded columns (internal/compress). Filters and aggregates run
// block-at-a-time directly on the encoded form — zone maps prune or
// whole-match blocks without touching the payload, RLE runs select by
// arithmetic, and FOR blocks decode on demand into a caller-provided
// L1-resident buffer. The scanned flags feed the hw cost model: only
// blocks whose payload was actually read charge their compressed bytes.

package vecexec

import "hwstar/internal/compress"

// RangeFilterCompressed appends to out the in-block row indices of block
// blk of col whose value lies in [lo, hi]. all=true short-circuits a
// whole-block match (nothing appended); scanned reports whether the block
// payload was read. When all is false the returned Sel is non-nil, per the
// Sel contract. buf must hold at least compress.BlockValues values.
func RangeFilterCompressed(col *compress.Compressed, blk int, lo, hi int64, buf []int64, out Sel) (sel Sel, all, scanned bool) {
	return col.RangeSelectBlock(blk, lo, hi, buf, out)
}

// SumCompressed sums block blk of col over sel — nil sel sums the whole
// block (RLE blocks by run arithmetic, constant FOR blocks by
// multiplication, neither touching buf). scanned reports whether the
// payload was read.
func SumCompressed(col *compress.Compressed, blk int, sel Sel, buf []int64) (sum int64, scanned bool) {
	return col.SumBlockSel(blk, sel, buf)
}

// BlocksOf calls fn(blk, start, n) for each block of a compressed column
// overlapping rows [lo, hi) — the block-aligned analogue of Chunks for
// morsel bodies. Morsel boundaries produced by the scheduler are aligned
// to compress.BlockValues, so [lo, hi) always covers whole blocks except
// possibly a short final block.
func BlocksOf(col *compress.Compressed, lo, hi int, fn func(blk, start, n int)) {
	for blk := lo / compress.BlockValues; ; blk++ {
		start := col.BlockStart(blk)
		if start >= hi || blk >= col.NumBlocks() {
			return
		}
		fn(blk, start, col.BlockLen(blk))
	}
}
