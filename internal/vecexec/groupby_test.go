package vecexec

import (
	"sort"
	"testing"
	"testing/quick"

	"hwstar/internal/workload"
)

func TestHashGroupSumBasics(t *testing.T) {
	g := NewHashGroupSum(4)
	keys := []int64{1, 2, 1, 3, 2, 1}
	vals := []float64{10, 20, 30, 40, 50, 60}
	g.AddBatch(keys, vals, nil)
	if g.Len() != 3 {
		t.Fatalf("groups = %d", g.Len())
	}
	got := map[int64]GroupResult{}
	for _, r := range g.Results() {
		got[r.Key] = r
	}
	if got[1].Sum != 100 || got[1].Count != 3 {
		t.Fatalf("group 1 = %+v", got[1])
	}
	if got[2].Sum != 70 || got[3].Sum != 40 {
		t.Fatalf("groups = %v", got)
	}
}

func TestHashGroupSumWithSelection(t *testing.T) {
	g := NewHashGroupSum(4)
	keys := []int64{1, 2, 1, 3}
	vals := []float64{10, 20, 30, 40}
	g.AddBatch(keys, vals, Sel{0, 3})
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	for _, r := range g.Results() {
		if r.Key == 1 && r.Sum != 10 {
			t.Fatalf("selected group 1 = %+v", r)
		}
	}
}

func TestHashGroupSumGrowth(t *testing.T) {
	g := NewHashGroupSum(2) // deliberately undersized
	keys := workload.SequentialInts(10000)
	vals := make([]float64, len(keys))
	for i := range vals {
		vals[i] = 1
	}
	g.AddBatch(keys, vals, nil)
	g.AddBatch(keys, vals, nil) // every key twice
	if g.Len() != 10000 {
		t.Fatalf("groups = %d", g.Len())
	}
	for _, r := range g.Results() {
		if r.Sum != 2 || r.Count != 2 {
			t.Fatalf("group %d = %+v", r.Key, r)
		}
	}
}

func TestTopK(t *testing.T) {
	g := NewHashGroupSum(8)
	keys := []int64{10, 20, 30, 40, 50}
	vals := []float64{5, 3, 9, 1, 7}
	g.AddBatch(keys, vals, nil)

	top3 := g.TopK(3)
	if len(top3) != 3 {
		t.Fatalf("topk = %v", top3)
	}
	if top3[0].Key != 30 || top3[1].Key != 50 || top3[2].Key != 10 {
		t.Fatalf("topk order = %v", top3)
	}
	// k beyond the group count returns everything, still ordered.
	all := g.TopK(100)
	if len(all) != 5 || all[4].Key != 40 {
		t.Fatalf("topk(100) = %v", all)
	}
	if g.TopK(0) != nil {
		t.Fatal("topk(0) should be nil")
	}
}

func TestTopKTieBreak(t *testing.T) {
	g := NewHashGroupSum(4)
	g.AddBatch([]int64{7, 3, 9}, []float64{1, 1, 1}, nil)
	top := g.TopK(2)
	if top[0].Key != 3 || top[1].Key != 7 {
		t.Fatalf("ties should order by smaller key: %v", top)
	}
}

// Property: the hash group-by agrees with a reference map, and TopK returns
// the k largest sums in order, for arbitrary inputs.
func TestHashGroupSumEquivalenceProperty(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []uint8, kRaw uint8) bool {
		n := len(rawKeys)
		if len(rawVals) < n {
			n = len(rawVals)
		}
		keys := make([]int64, n)
		vals := make([]float64, n)
		ref := map[int64]float64{}
		refCount := map[int64]int64{}
		for i := 0; i < n; i++ {
			keys[i] = int64(rawKeys[i] % 32)
			vals[i] = float64(rawVals[i])
			ref[keys[i]] += vals[i]
			refCount[keys[i]]++
		}
		g := NewHashGroupSum(8)
		g.AddBatch(keys, vals, nil)
		if g.Len() != len(ref) {
			return false
		}
		for _, r := range g.Results() {
			if ref[r.Key] != r.Sum || refCount[r.Key] != r.Count {
				return false
			}
		}
		// TopK equals the sorted reference prefix.
		k := int(kRaw)%8 + 1
		type pair struct {
			key int64
			sum float64
		}
		var ps []pair
		for kk, s := range ref {
			ps = append(ps, pair{kk, s})
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].sum != ps[j].sum {
				return ps[i].sum > ps[j].sum
			}
			return ps[i].key < ps[j].key
		})
		top := g.TopK(k)
		want := k
		if want > len(ps) {
			want = len(ps)
		}
		if len(top) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if top[i].Key != ps[i].key || top[i].Sum != ps[i].sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
