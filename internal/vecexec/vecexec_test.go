package vecexec

import (
	"math"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
)

func TestRangeFilterF64NoSel(t *testing.T) {
	col := []float64{1, 5, 3, 7, 5}
	sel := RangeFilterF64(col, 3, 5, nil, nil)
	want := []int32{1, 2, 4}
	if len(sel) != len(want) {
		t.Fatalf("sel = %v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
}

func TestRangeFilterF64WithSel(t *testing.T) {
	col := []float64{1, 5, 3, 7, 5}
	in := Sel{0, 1, 3}
	sel := RangeFilterF64(col, 4, 8, in, nil)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Fatalf("sel = %v", sel)
	}
}

func TestRangeFilterI64(t *testing.T) {
	col := []int64{10, 20, 30, 40}
	sel := RangeFilterI64(col, 15, 35, nil, nil)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("sel = %v", sel)
	}
	sel = RangeFilterI64(col, 15, 35, Sel{0, 3}, nil)
	if len(sel) != 0 {
		t.Fatalf("sel = %v", sel)
	}
}

func TestEqFilterI32(t *testing.T) {
	col := []int32{0, 1, 0, 2, 0}
	sel := EqFilterI32(col, 0, nil, nil)
	if len(sel) != 3 {
		t.Fatalf("sel = %v", sel)
	}
	sel = EqFilterI32(col, 0, Sel{1, 2, 3}, nil)
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("sel = %v", sel)
	}
}

func TestSums(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if got := SumF64(a, nil); got != 10 {
		t.Fatalf("SumF64 = %f", got)
	}
	if got := SumF64(a, Sel{0, 3}); got != 5 {
		t.Fatalf("SumF64 sel = %f", got)
	}
	if got := SumProductF64(a, b, nil); got != 10+40+90+160 {
		t.Fatalf("SumProductF64 = %f", got)
	}
	if got := SumProductF64(a, b, Sel{1}); got != 40 {
		t.Fatalf("SumProductF64 sel = %f", got)
	}
}

func TestCountSel(t *testing.T) {
	if CountSel(nil, 7) != 7 || CountSel(Sel{1, 2}, 7) != 2 {
		t.Fatal("CountSel wrong")
	}
}

func TestChunksCoverage(t *testing.T) {
	var total int
	var calls int
	Chunks(ChunkSize*2+100, func(start, end int) {
		total += end - start
		calls++
		if end-start > ChunkSize {
			t.Fatalf("chunk too large: %d", end-start)
		}
	})
	if total != ChunkSize*2+100 || calls != 3 {
		t.Fatalf("coverage %d in %d calls", total, calls)
	}
	Chunks(0, func(start, end int) { t.Fatal("empty input should not call back") })
}

func TestGroupAgg(t *testing.T) {
	g := NewGroupAgg(2, 3, 2)
	g.Add(0, 1, 2, 5)
	g.Add(0, 1, 2, 7)
	g.Add(1, 0, 0, 1)
	g.Bump(1, 2)
	g.Bump(1, 2)
	gi := g.GroupIndex(1, 2)
	if g.Sums[0][gi] != 12 || g.Count[gi] != 2 {
		t.Fatalf("group (1,2): sum=%f count=%d", g.Sums[0][gi], g.Count[gi])
	}
	if g.Sums[1][g.GroupIndex(0, 0)] != 1 {
		t.Fatal("agg 1 wrong")
	}
}

func TestGroupAggPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape should panic")
		}
	}()
	NewGroupAgg(0, 1, 1)
}

func TestCostChargersOrdering(t *testing.T) {
	m := hw.Server2S()
	rows := int64(1 << 20)
	cost := func(f func(*hw.Account, int64)) float64 {
		acct := hw.NewAccount(m, hw.DefaultContext())
		f(acct, rows)
		return acct.TotalCycles()
	}
	v6, f6 := cost(ChargeQ6Vectorized), cost(ChargeQ6Fused)
	if f6 >= v6 {
		t.Fatalf("fused Q6 %.0f should beat vectorized %.0f", f6, v6)
	}
	v1, f1 := cost(ChargeQ1Vectorized), cost(ChargeQ1Fused)
	if f1 >= v1 {
		t.Fatalf("fused Q1 %.0f should beat vectorized %.0f", f1, v1)
	}
}

// Property: filters return exactly the indices satisfying the predicate, in
// ascending order, regardless of input selection.
func TestFilterCorrectnessProperty(t *testing.T) {
	f := func(vals []float64, loRaw, hiRaw float64) bool {
		lo, hi := loRaw, hiRaw
		if lo > hi {
			lo, hi = hi, lo
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		sel := RangeFilterF64(vals, lo, hi, nil, nil)
		// Verify exactness.
		j := 0
		for i, v := range vals {
			in := v >= lo && v <= hi
			matched := j < len(sel) && sel[j] == int32(i)
			if in != matched {
				return false
			}
			if matched {
				j++
			}
		}
		return j == len(sel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: filtering with a selection vector equals filtering the composed
// predicate.
func TestFilterCompositionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r % 16)
			b[i] = float64(r % 7)
		}
		// Seed out-buffers non-nil: an empty selection must stay
		// distinguishable from the nil "all rows" selection.
		s1 := RangeFilterF64(a, 3, 10, nil, make(Sel, 0, len(a)))
		s2 := RangeFilterF64(b, 1, 4, s1, make(Sel, 0, len(b)))
		// Reference: single pass with conjunction.
		var want []int32
		for i := range a {
			if a[i] >= 3 && a[i] <= 10 && b[i] >= 1 && b[i] <= 4 {
				want = append(want, int32(i))
			}
		}
		if len(want) != len(s2) {
			return false
		}
		for i := range want {
			if want[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
