package shard

import (
	"context"
	"errors"
	"testing"

	"hwstar/internal/agg"
	"hwstar/internal/cluster"
	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
	"hwstar/internal/workload"
)

// testRelation builds an n-row two-column relation (sequential keys,
// deterministic values) and an exact-sum oracle over key ranges.
func testRelation(n int) (cols [][]int64, expect func(lo, hi int64) int64) {
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i%97) + 1
	}
	return [][]int64{keys, vals}, func(lo, hi int64) int64 {
		var sum int64
		for i := range keys {
			if keys[i] >= lo && keys[i] <= hi {
				sum += vals[i]
			}
		}
		return sum
	}
}

func newRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	if opts.Shard.Workers == 0 {
		opts.Shard.Workers = 4
	}
	r, err := New(context.Background(), hw.Server2S(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func scanReq(table string, lo, hi int64) serve.Request {
	return serve.Request{Op: serve.OpScan, Table: table, Query: scan.Query{FilterCol: 0, Lo: lo, Hi: hi, AggCol: 1}}
}

func TestShardedScanMatchesSingleNode(t *testing.T) {
	cols, expect := testRelation(10_000)
	r := newRouter(t, Options{Shards: 4, Replicas: 2})
	if err := r.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int64{{0, 9999}, {100, 5000}, {9000, 9999}, {42, 42}} {
		resp, err := r.Submit(context.Background(), scanReq("events", rng[0], rng[1]))
		if err != nil {
			t.Fatalf("scan [%d,%d]: %v", rng[0], rng[1], err)
		}
		if want := expect(rng[0], rng[1]); resp.Sum != want {
			t.Fatalf("scan [%d,%d] = %d, want %d", rng[0], rng[1], resp.Sum, want)
		}
		if resp.Partial || resp.CoveredFraction != 1 {
			t.Fatalf("healthy cluster returned partial=%v covered=%v", resp.Partial, resp.CoveredFraction)
		}
	}
}

func TestDistributedJoinExactBothStrategies(t *testing.T) {
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 9, BuildRows: 2000, ProbeRows: 8000})
	in := serve.Request{Op: serve.OpJoin}
	in.Join.BuildKeys, in.Join.BuildVals = g.BuildKeys, g.BuildVals
	in.Join.ProbeKeys, in.Join.ProbeVals = g.ProbeKeys, g.ProbeVals

	// Single-node truth.
	solo := newRouter(t, Options{Shards: 1, Replicas: 1})
	want, err := solo.SubmitDist(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	r := newRouter(t, Options{Shards: 4, Replicas: 2})
	got, err := r.SubmitDist(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches != want.Matches || got.Checksum != want.Checksum {
		t.Fatalf("distributed join = %d/%d, want %d/%d", got.Matches, got.Checksum, want.Matches, want.Checksum)
	}
	if got.Strategy != cluster.StrategyShuffle && got.Strategy != cluster.StrategyBroadcast {
		t.Fatalf("no strategy recorded: %+v", got)
	}
	if got.NetworkCycles <= 0 || got.BytesMoved <= 0 {
		t.Fatalf("fabric not priced: net=%v bytes=%d", got.NetworkCycles, got.BytesMoved)
	}
}

func TestGroupSumRoutesExactly(t *testing.T) {
	r := newRouter(t, Options{Shards: 3, Replicas: 2})
	keys := []int64{1, 2, 1, 3, 2, 1}
	vals := []int64{10, 20, 30, 40, 50, 60}
	resp, err := r.Submit(context.Background(), serve.Request{Op: serve.OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyLocalMerge})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Groups[1] != 100 || resp.Groups[2] != 70 || resp.Groups[3] != 40 {
		t.Fatalf("groups = %v", resp.Groups)
	}
}

func TestClusterAdmissionSheds(t *testing.T) {
	r := newRouter(t, Options{Shards: 2, Replicas: 1, MaxInflight: 1})
	// Fill the single inflight slot by hand, then submit.
	r.inflight <- struct{}{}
	_, err := r.Submit(context.Background(), scanReq("missing", 0, 1))
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("over-inflight submit: %v, want ErrOverloaded", err)
	}
	<-r.inflight
}

func TestRouterClosedSheds(t *testing.T) {
	r := newRouter(t, Options{Shards: 2, Replicas: 1})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(context.Background(), scanReq("x", 0, 1)); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := r.Register("x", [][]int64{{1}, {2}}); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
}

func TestUnknownTableIsInvalid(t *testing.T) {
	r := newRouter(t, Options{Shards: 2, Replicas: 1})
	if _, err := r.Submit(context.Background(), scanReq("nope", 0, 1)); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("unknown table: %v, want ErrInvalidInput", err)
	}
}

func TestReplicasActuallyRegistered(t *testing.T) {
	cols, _ := testRelation(1000)
	r := newRouter(t, Options{Shards: 4, Replicas: 2})
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}
	r.mu.RLock()
	meta := r.tables["ev"]
	nodes := r.nodes
	r.mu.RUnlock()
	totalRows := 0
	for _, part := range meta.parts {
		if len(part.replicas) != 2 {
			t.Fatalf("partition %d has %d replicas, want 2", part.id, len(part.replicas))
		}
		totalRows += part.rows
		for _, nid := range part.replicas {
			if !nodes[nid].server().HasTable(context.Background(), part.derived) {
				t.Fatalf("node %d missing stripe %s", nid, part.derived)
			}
		}
	}
	if totalRows != 1000 {
		t.Fatalf("partitions cover %d rows, want 1000", totalRows)
	}
}

func TestClusterHealthSurfacesRoutingCounters(t *testing.T) {
	cols, _ := testRelation(400)
	r := newRouter(t, Options{Shards: 3, Replicas: 2})
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(context.Background(), scanReq("ev", 0, 399)); err != nil {
		t.Fatal(err)
	}
	ch := r.ClusterHealth()
	if ch.Shards != 3 || ch.Replicas != 2 || ch.LiveNodes != 3 {
		t.Fatalf("topology = %+v", ch)
	}
	h := r.Health()
	if h.Completed == 0 {
		t.Fatalf("aggregated health shows no completions: %+v", h)
	}
}
