package shard

import (
	"context"
	"errors"
	"math"
	"testing"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/store"
)

// openStores builds one durable store per shard in fresh temp dirs.
func openStores(t *testing.T, n int) []*store.Store {
	t.Helper()
	out := make([]*store.Store, n)
	for i := range out {
		st, err := store.Open(store.Options{Dir: t.TempDir(), Machine: hw.Server2S()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		out[i] = st
	}
	return out
}

func TestScanSurvivesSingleNodeLoss(t *testing.T) {
	cols, expect := testRelation(8000)
	want := expect(0, 7999)
	r := newRouter(t, Options{Shards: 4, Replicas: 2})
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}
	if err := r.KillNode(2); err != nil {
		t.Fatal(err)
	}
	resp, err := r.Submit(context.Background(), scanReq("ev", 0, 7999))
	if err != nil {
		t.Fatalf("scan after node loss: %v", err)
	}
	if resp.Sum != want {
		t.Fatalf("scan after node loss = %d, want %d — replica failover lost committed rows", resp.Sum, want)
	}
	if resp.Partial {
		t.Fatal("R=2 must absorb one node loss without going partial")
	}
	if ch := r.ClusterHealth(); ch.NodeLosses != 1 || ch.LiveNodes != 3 {
		t.Fatalf("health = %+v", ch)
	}
}

func TestTotalRangeLossReturnsTypedPartial(t *testing.T) {
	cols, expect := testRelation(9000)
	total := expect(0, 8999)
	r := newRouter(t, Options{Shards: 4, Replicas: 2})
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}

	// Kill every replica of partition 0, leaving at least one node alive.
	r.mu.RLock()
	part := r.tables["ev"].parts[0]
	r.mu.RUnlock()
	for _, nid := range part.replicas {
		if err := r.KillNode(nid); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := r.Submit(context.Background(), scanReq("ev", 0, 8999))
	if !errors.Is(err, errs.ErrPartialResult) {
		t.Fatalf("total range loss returned %v, want ErrPartialResult", err)
	}
	if !resp.Partial {
		t.Fatal("response must be marked Partial")
	}

	// The partial answer must be exactly the covered stripes' sum — never
	// a silent wrong total.
	lostLo := int64(0)
	lostHi := int64(part.rows - 1) // partition 0 is the first contiguous stripe
	wantPartial := total - expect(lostLo, lostHi)
	if resp.Sum != wantPartial {
		t.Fatalf("partial sum = %d, want exactly the covered stripes' %d", resp.Sum, wantPartial)
	}
	wantCovered := 1 - float64(part.rows)/9000
	if math.Abs(resp.CoveredFraction-wantCovered) > 1e-9 {
		t.Fatalf("covered fraction = %v, want %v", resp.CoveredFraction, wantCovered)
	}
	if ch := r.ClusterHealth(); ch.Partials == 0 {
		t.Fatal("partial not counted in cluster health")
	}
}

func TestRecoveryRereplicatesFromSurvivingStore(t *testing.T) {
	cols, expect := testRelation(6000)
	want := expect(0, 5999)
	stores := openStores(t, 3)
	r := newRouter(t, Options{Shards: 3, Replicas: 2, Stores: stores})

	// Node 1 is down while the table arrives: its store never sees its
	// stripes, so recovery MUST copy them from the surviving replicas'
	// durable stores — the node's own replay has nothing to offer.
	if err := r.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}
	// Cluster still answers exactly from the surviving replicas.
	resp, err := r.Submit(context.Background(), scanReq("ev", 0, 5999))
	if err != nil || resp.Sum != want {
		t.Fatalf("scan with node down: sum=%d err=%v, want %d", resp.Sum, err, want)
	}

	if err := r.RecoverNode(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	live := r.LiveNodes()
	if len(live) != 3 {
		t.Fatalf("live after recovery = %v", live)
	}

	// The revived node holds its assigned stripes again: kill the OTHER
	// replica of each of its partitions and the data must still be there.
	r.mu.RLock()
	meta := r.tables["ev"]
	nodes := r.nodes
	r.mu.RUnlock()
	for _, part := range meta.parts {
		if contains(part.replicas, 1) {
			if !nodes[1].server().HasTable(context.Background(), part.derived) {
				t.Fatalf("revived node 1 missing stripe %s after re-replication", part.derived)
			}
		}
	}
	resp, err = r.Submit(context.Background(), scanReq("ev", 0, 5999))
	if err != nil || resp.Sum != want {
		t.Fatalf("scan after recovery: sum=%d err=%v, want %d", resp.Sum, err, want)
	}
	if ch := r.ClusterHealth(); ch.Rereplications == 0 {
		t.Fatal("recovery performed no re-replications")
	}
}

func TestChaosTickIsSeededAndSpares(t *testing.T) {
	mk := func() *Router {
		return newRouter(t, Options{
			Shards: 4, Replicas: 2,
			Faults: fault.New(fault.Config{Seed: 7, NodeLossProb: 0.9}),
		})
	}
	a, b := mk(), mk()
	var killsA, killsB []int
	for tick := 0; tick < 6; tick++ {
		killsA = append(killsA, a.ChaosTick(context.Background())...)
		killsB = append(killsB, b.ChaosTick(context.Background())...)
	}
	if len(killsA) != len(killsB) {
		t.Fatalf("same seed, different kill counts: %v vs %v", killsA, killsB)
	}
	for i := range killsA {
		if killsA[i] != killsB[i] {
			t.Fatalf("same seed, different kill order: %v vs %v", killsA, killsB)
		}
	}
	// Even at p=0.9 over many ticks the tick never kills the last node.
	if len(a.LiveNodes()) < 1 {
		t.Fatal("chaos tick killed the whole cluster")
	}
}

func TestKillAndRecoverIdempotent(t *testing.T) {
	stores := openStores(t, 2)
	r := newRouter(t, Options{Shards: 2, Replicas: 2, Stores: stores})
	if err := r.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := r.KillNode(0); err != nil {
		t.Fatal(err) // second kill is a no-op
	}
	if err := r.RecoverNode(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.RecoverNode(context.Background(), 0); err != nil {
		t.Fatal(err) // second recovery is a no-op
	}
	if got := len(r.LiveNodes()); got != 2 {
		t.Fatalf("live = %d, want 2", got)
	}
	if err := r.KillNode(9); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("out-of-range kill: %v, want ErrInvalidInput", err)
	}
}
