package shard

import (
	"context"
	"fmt"

	"hwstar/internal/errs"
	"hwstar/internal/store"
)

// KillNode simulates whole-node loss (fault.ClassNodeLoss made manual):
// the node's serve.Server disappears from routing immediately and is
// drained in the background. In-flight requests against it either finish
// or fail over; new dispatches skip it. The node's durable store — bytes
// on disk — survives, exactly like a crashed machine's disks, and seeds
// recovery when the node revives. Killing an already-dead node is a no-op.
func (r *Router) KillNode(id int) error {
	n, err := r.nodeByID(id)
	if err != nil {
		return err
	}
	if !n.alive.CompareAndSwap(true, false) {
		return nil
	}
	r.nodeLosses.Add(1)
	r.reg.Counter("shard.node_losses").Inc()

	n.mu.Lock()
	srv := n.srv
	n.srv = nil
	n.mu.Unlock()
	if srv != nil {
		// Drain the abandoned server off the request path so 128-cycle
		// chaos runs don't accumulate live dispatch goroutines.
		r.reapWG.Add(1)
		go func() {
			defer r.reapWG.Done()
			srv.Close()
		}()
	}
	return nil
}

// RecoverNode revives a killed node: a fresh serve.Server is built from
// the shard template (replaying the node's own durable store, when one is
// armed), the node's ring-assigned partitions are re-replicated from a
// surviving replica's durable store, and the node rejoins routing. The
// copy is memory-governed under the "_rereplicate" tenant on the
// cluster-wide governor — recovery traffic competes for budget like any
// other tenant instead of stampeding the cluster.
func (r *Router) RecoverNode(ctx context.Context, id int) error {
	n, err := r.nodeByID(id)
	if err != nil {
		return err
	}
	if n.alive.Load() {
		return nil
	}

	srv, err := r.buildServer(n)
	if err != nil {
		return fmt.Errorf("shard: recover node %d: %w", id, err)
	}
	if err := srv.WaitRecovered(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("shard: recover node %d: %w", id, err)
	}

	n.mu.Lock()
	n.srv = srv
	n.mu.Unlock()

	if err := r.rereplicate(ctx, n); err != nil {
		n.mu.Lock()
		n.srv = nil
		n.mu.Unlock()
		srv.Close()
		return fmt.Errorf("shard: recover node %d: %w", id, err)
	}
	n.brk.reset()
	n.alive.Store(true)
	return nil
}

// rereplicate restores every partition assigned to n from a surviving
// replica's durable store. Stripes the revived node's own replay already
// restored are skipped; stripes nobody holds durably stay lost (their
// table remains partial until re-registered).
func (r *Router) rereplicate(ctx context.Context, n *node) error {
	r.mu.RLock()
	tables := make([]*tableMeta, 0, len(r.tables))
	for _, meta := range r.tables {
		tables = append(tables, meta)
	}
	nodes := r.nodes
	r.mu.RUnlock()

	srv := n.server()
	for _, meta := range tables {
		for _, part := range meta.parts {
			if !contains(part.replicas, n.id) {
				continue
			}
			if srv.HasTable(ctx, part.derived) {
				continue
			}
			cols, ok := r.fetchStripe(ctx, nodes, part, n.id)
			if !ok {
				continue
			}
			if err := r.governedCopy(part, cols, func() error {
				return srv.Register(part.derived, cols)
			}); err != nil {
				return fmt.Errorf("re-replicate %s: %w", part.derived, err)
			}
			r.rereplications.Add(1)
			r.reg.Counter("shard.rereplications").Inc()
		}
	}
	return nil
}

// governedCopy runs one stripe copy under the "_rereplicate" tenant's
// slice of the cluster-wide budget, charging the stripe's byte size for
// the duration of the copy.
func (r *Router) governedCopy(part *partition, cols [][]int64, copyFn func() error) error {
	if r.gov == nil {
		return copyFn()
	}
	resv, err := r.gov.ReserveFor("_rereplicate", 0)
	if err != nil {
		return err
	}
	defer resv.Release()
	bytes := int64(len(cols)) * int64(part.rows) * 8
	if err := resv.Charge("rereplicate-stripe", -1, bytes); err != nil {
		return err
	}
	return copyFn()
}

// fetchStripe reads one partition's columns from a surviving replica's
// durable store, preferring live replicas (their store reflects the
// latest registration flush).
func (r *Router) fetchStripe(ctx context.Context, nodes []*node, part *partition, excludeID int) ([][]int64, bool) {
	ordered := make([]*node, 0, len(part.replicas))
	for _, nid := range part.replicas {
		if nid == excludeID {
			continue
		}
		src := nodes[nid]
		if src.alive.Load() {
			ordered = append(ordered, src)
		}
	}
	for _, nid := range part.replicas {
		if nid == excludeID {
			continue
		}
		if src := nodes[nid]; !src.alive.Load() {
			ordered = append(ordered, src)
		}
	}
	for _, src := range ordered {
		if src.st == nil {
			continue
		}
		t, _, err := src.st.Load(ctx, part.derived)
		if err != nil {
			continue
		}
		if cols, ok := store.ColsFromTable(t); ok {
			return cols, true
		}
	}
	return nil, false
}

// ChaosTick draws node loss for every live node from the armed injector —
// fault.ClassNodeLoss at the router, the way the scheduler draws core
// loss per worker per run. Fired losses kill the node (replica failover
// and, later, RecoverNode take it from there). The tick never kills the
// cluster's last live node: a routerless cluster is an outage, not a
// degraded state, and tests stage total loss explicitly via KillNode or
// Config.LostNodes. Returns the ids killed this tick, in node order.
func (r *Router) ChaosTick(ctx context.Context) []int {
	inj := r.opts.Faults
	if !inj.Enabled() {
		return nil
	}
	r.mu.RLock()
	nodes := r.nodes
	r.mu.RUnlock()

	live := 0
	for _, n := range nodes {
		if n.alive.Load() {
			live++
		}
	}
	var killed []int
	for _, n := range nodes {
		if ctx.Err() != nil {
			break
		}
		if live <= 1 {
			break
		}
		if !n.alive.Load() {
			continue
		}
		if inj.LoseNode(n.id) {
			if err := r.KillNode(n.id); err == nil {
				killed = append(killed, n.id)
				live--
			}
		}
	}
	return killed
}

// LiveNodes returns the ids of nodes currently accepting routes.
func (r *Router) LiveNodes() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []int
	for _, n := range r.nodes {
		if n.alive.Load() {
			out = append(out, n.id)
		}
	}
	return out
}

func (r *Router) nodeByID(id int) (*node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 0 || id >= len(r.nodes) {
		return nil, fmt.Errorf("shard: node %d out of range [0,%d): %w", id, len(r.nodes), errs.ErrInvalidInput)
	}
	return r.nodes[id], nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
