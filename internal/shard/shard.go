// Package shard is the serving tier lifted one level up the hardware
// hierarchy: N serve.Server shards — each a full single-node engine with
// its own scheduler, memory governor, breaker, and durable store — behind
// a router that owns placement, replication, and the fabric. The keynote's
// argument ("software must understand the hardware it runs on") applied at
// rack scale means the router prices the network like any other bandwidth
// tier: distributed joins choose shuffle-vs-broadcast through the planner
// with the fabric costed via cluster.Cluster, scatter-gather scans charge
// the aggregation hop, and the hedged-dispatch deadline is derived from
// the cost model rather than a hard-coded timeout.
//
// Robustness mechanisms mirror the single-node ones, one level up:
//
//   - fault.ClassNodeLoss kills a whole shard the way core loss kills a
//     worker; the router fails over to surviving replicas;
//   - each node carries a router-side circuit breaker (the node's own
//     breaker guards its internals; this one guards the route to it);
//   - hedged dispatch sends a late request to a second replica and
//     cancels the loser, bounding the tail the way straggler retirement
//     bounds a slow core;
//   - when a key range loses every replica, scans degrade to typed
//     partial results (errs.ErrPartialResult + CoveredFraction) instead
//     of failing or — worse — silently returning a wrong total;
//   - recovery re-replicates a revived node's partitions from a surviving
//     replica's durable store under the governed "_rereplicate" tenant,
//     the way checkpoints run under "_checkpoint";
//   - cluster-wide admission (MaxInflight) and a cluster-wide memory
//     budget federate the per-shard governors: one router-level gate in
//     front of N per-node gates.
package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hwstar/internal/cluster"
	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/metrics"
	"hwstar/internal/serve"
	"hwstar/internal/store"
)

// Options configures a Router.
type Options struct {
	// Shards is the node count N. Default 4.
	Shards int
	// Replicas is the replication factor R: every partition is registered
	// on R distinct nodes. Clamped to Shards. Default 2.
	Replicas int
	// Partitions is the per-table partition count. Default Shards.
	Partitions int

	// Cluster prices the fabric between shards. The zero value defaults to
	// a Rack10GbE with Shards nodes on the shard machine profile.
	Cluster cluster.Cluster

	// Shard is the template for every shard's serve.Options. Store is
	// overridden per node from Stores; everything else is shared.
	Shard serve.Options

	// Stores, when non-nil, must hold one durable store per shard
	// (len == Shards). They make recovery real: a revived node
	// re-replicates its partitions from a surviving replica's store.
	// Without stores a revived node comes back empty and its ranges stay
	// partial until re-registered.
	Stores []*store.Store

	// Faults drives router-level fault draws: ChaosTick asks it LoseNode
	// per live node. Nil injects nothing.
	Faults *fault.Injector

	// MaxInflight is the cluster-wide admission bound: requests beyond it
	// are shed with errs.ErrOverloaded before touching any shard. Default
	// Shards × 256.
	MaxInflight int

	// Memory is the cluster-wide byte budget federated above the per-shard
	// governors. Distributed joins and group-sums reserve their working
	// set here before scattering; re-replication reserves under the
	// "_rereplicate" tenant. The zero value disables the router-level
	// budget (per-shard governors still apply).
	Memory mem.Config

	// HedgeDelay, when positive, is a fixed hedged-dispatch deadline:
	// if the first replica has not answered within it, the request is
	// hedged to a second replica and the loser cancelled. When zero the
	// deadline is derived from the cost model: the estimated cycles of
	// the operation × the router's observed wall-ns-per-cycle ×
	// HedgeMultiplier, floored at 50µs.
	HedgeDelay time.Duration
	// HedgeMultiplier scales the cost-model-derived hedge deadline.
	// Default 3 (hedge when a replica is 3× slower than the model says).
	HedgeMultiplier float64

	// BreakerThreshold consecutive route failures open a node's
	// router-side breaker (default 3); after BreakerCooldown (default
	// 10ms) one request probes it half-open. The breaker only reorders
	// candidates — an open breaker node is still tried when it is the
	// last replica standing.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > o.Shards {
		o.Replicas = o.Shards
	}
	if o.Partitions <= 0 {
		o.Partitions = o.Shards
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = o.Shards * 256
	}
	if o.HedgeMultiplier <= 0 {
		o.HedgeMultiplier = 3
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Millisecond
	}
}

// Response is a distributed execution outcome: the merged serve.Response
// plus the routing story behind it.
type Response struct {
	serve.Response

	// Strategy is the distributed join plan that ran (joins only).
	Strategy cluster.Strategy
	// NetworkCycles is the modeled fabric cost folded into SimCycles;
	// BytesMoved the fabric traffic behind it.
	NetworkCycles float64
	BytesMoved    int64
	// Hedged reports that at least one partition dispatch hedged to a
	// second replica; Failovers counts replica failovers this request.
	Hedged    bool
	Failovers int
}

// node is one shard: a serve.Server, its durable store, liveness, and the
// router-side breaker guarding the route to it.
type node struct {
	id    int
	st    *store.Store
	brk   breaker
	alive atomic.Bool

	mu  sync.RWMutex
	srv *serve.Server
}

func (n *node) server() *serve.Server {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.srv
}

// partition is one contiguous row stripe of a registered table, placed on
// a fixed replica set. derived is the per-shard table name the stripe is
// registered under ("orders@3" for partition 3 of "orders").
type partition struct {
	id       int
	derived  string
	rows     int
	replicas []int // node ids, ring order, primary first
}

type tableMeta struct {
	name      string
	totalRows int
	parts     []*partition
}

// Router places tables across shards and routes requests with failover,
// hedging, and graceful partial degradation. It satisfies the same
// submission surface as serve.Server, so the frontend serves a cluster
// the same way it serves one node.
type Router struct {
	opts    Options
	machine *hw.Machine
	clu     cluster.Cluster
	ring    *ring
	gov     *mem.Governor // nil when Options.Memory is zero
	reg     *metrics.Registry

	inflight chan struct{}

	mu     sync.RWMutex
	nodes  []*node
	tables map[string]*tableMeta
	closed bool

	// reapWG tracks background teardown of killed nodes' servers.
	reapWG sync.WaitGroup

	// rotor spreads primary picks across replicas.
	rotor atomic.Uint64

	// nsPerCycle is the EWMA of observed wall-nanoseconds per modeled
	// cycle, stored as math.Float64bits; it calibrates the cost-model-
	// derived hedge deadline.
	nsPerCycle atomic.Uint64

	failovers      atomic.Int64
	hedges         atomic.Int64
	hedgeWins      atomic.Int64
	partials       atomic.Int64
	nodeLosses     atomic.Int64
	rereplications atomic.Int64
}

// New builds the shard tier: opts.Shards serve.Servers on machine m behind
// a consistent-hash router. Every shard is constructed from the
// opts.Shard template (with its own store when opts.Stores is set), has
// replayed its durable state, and accepts registrations by the time New
// returns — or the whole constructor fails and tears down. ctx bounds the
// recovery replays.
func New(ctx context.Context, m *hw.Machine, opts Options) (*Router, error) {
	if m == nil {
		return nil, fmt.Errorf("shard: %w", errs.ErrNilMachine)
	}
	opts.setDefaults()
	if opts.Stores != nil && len(opts.Stores) != opts.Shards {
		return nil, fmt.Errorf("shard: %d stores for %d shards: %w", len(opts.Stores), opts.Shards, errs.ErrInvalidInput)
	}
	clu := opts.Cluster
	if clu.Nodes == 0 && clu.Machine == nil {
		clu = cluster.Rack10GbE(opts.Shards)
		clu.Machine = m
	}
	clu.Nodes = opts.Shards
	if err := clu.Validate(); err != nil {
		return nil, err
	}

	r := &Router{
		opts:     opts,
		machine:  m,
		clu:      clu,
		ring:     newRing(opts.Shards),
		reg:      metrics.NewRegistry(),
		inflight: make(chan struct{}, opts.MaxInflight),
		tables:   make(map[string]*tableMeta),
	}
	if opts.Memory.BudgetBytes > 0 {
		r.gov = mem.NewGovernor(opts.Memory)
	}
	for i := 0; i < opts.Shards; i++ {
		n := &node{id: i, brk: breaker{threshold: opts.BreakerThreshold, cooldown: opts.BreakerCooldown}}
		if opts.Stores != nil {
			n.st = opts.Stores[i]
		}
		srv, err := r.buildServer(n)
		if err == nil {
			err = srv.WaitRecovered(ctx)
		}
		if err != nil {
			if srv != nil {
				srv.Close()
			}
			for _, prev := range r.nodes {
				prev.server().Close()
			}
			return nil, fmt.Errorf("shard: node %d: %w", i, err)
		}
		n.srv = srv
		n.alive.Store(true)
		r.nodes = append(r.nodes, n)
	}
	return r, nil
}

// buildServer constructs one shard's serve.Server from the template.
func (r *Router) buildServer(n *node) (*serve.Server, error) {
	so := r.opts.Shard
	so.Store = n.st
	return serve.New(r.machine, so)
}

// Close drains every live shard and releases router state. Safe to call
// once; requests submitted after Close shed with errs.ErrClosed.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	nodes := r.nodes
	r.mu.Unlock()

	var first error
	for _, n := range nodes {
		if srv := n.server(); srv != nil {
			if err := srv.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	r.reapWG.Wait()
	return first
}

// Register splits the relation into Partitions contiguous row stripes and
// registers each stripe on its ring-assigned Replicas nodes. Placement is
// stable across restarts (it hashes names, not load), so a re-registered
// table lands on the same shards its durable stripes live on.
func (r *Router) Register(name string, cols [][]int64) error {
	if len(cols) == 0 || len(cols[0]) == 0 {
		return fmt.Errorf("shard: register %q: empty relation: %w", name, errs.ErrInvalidInput)
	}
	rows := len(cols[0])
	for _, c := range cols {
		if len(c) != rows {
			return fmt.Errorf("shard: register %q: ragged columns: %w", name, errs.ErrInvalidInput)
		}
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("shard: register %q: %w", name, errs.ErrClosed)
	}
	nodes := r.nodes
	r.mu.Unlock()

	nparts := r.opts.Partitions
	if nparts > rows {
		nparts = rows
	}
	meta := &tableMeta{name: name, totalRows: rows}
	for p := 0; p < nparts; p++ {
		lo := rows * p / nparts
		hi := rows * (p + 1) / nparts
		stripe := make([][]int64, len(cols))
		for c := range cols {
			stripe[c] = cols[c][lo:hi]
		}
		part := &partition{
			id:       p,
			derived:  name + "@" + strconv.Itoa(p),
			rows:     hi - lo,
			replicas: r.ring.lookup(name+"/"+strconv.Itoa(p), r.opts.Replicas),
		}
		for _, nid := range part.replicas {
			n := nodes[nid]
			if !n.alive.Load() {
				// A dead replica misses the stripe; re-replication
				// restores it when the node revives.
				continue
			}
			if err := n.server().Register(part.derived, stripe); err != nil {
				return fmt.Errorf("shard: register %q partition %d on node %d: %w", name, p, nid, err)
			}
		}
		meta.parts = append(meta.parts, part)
	}

	r.mu.Lock()
	r.tables[name] = meta
	r.mu.Unlock()
	return nil
}

// Submit routes one request through the shard tier and merges the result
// into a single serve.Response — the same surface a single node offers, so
// the frontend is cluster-oblivious. Partial scans return both a usable
// Response (Partial set, exact over CoveredFraction) and an error wrapping
// errs.ErrPartialResult.
func (r *Router) Submit(ctx context.Context, req serve.Request) (serve.Response, error) {
	resp, err := r.SubmitDist(ctx, req)
	return resp.Response, err
}

// SubmitDist is Submit with the distributed execution detail (strategy,
// fabric cost, hedging/failover story) preserved.
func (r *Router) SubmitDist(ctx context.Context, req serve.Request) (Response, error) {
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return Response{}, fmt.Errorf("shard: %w", errs.ErrClosed)
	}

	// Cluster-wide admission: one gate in front of N per-shard gates.
	select {
	case r.inflight <- struct{}{}:
	default:
		return Response{}, fmt.Errorf("shard: cluster inflight limit %d: %w", r.opts.MaxInflight, errs.ErrOverloaded)
	}
	defer func() { <-r.inflight }()

	start := time.Now()
	var resp Response
	var err error
	switch req.Op {
	case serve.OpScan:
		resp, err = r.scatterScan(ctx, req)
	case serve.OpJoin:
		resp, err = r.distJoin(ctx, req)
	default:
		// Group-sums and analytic queries carry their data inline, so any
		// live node computes the exact answer; route with failover.
		resp, err = r.routeAny(ctx, req)
	}
	if err == nil || resp.Partial {
		r.observeWall(time.Since(start), resp.SimCycles)
		r.reg.Histogram("shard.latency_ms").Record(float64(time.Since(start).Microseconds()) / 1e3)
	}
	return resp, err
}

// candidates returns the live-first, breaker-aware ordering of a replica
// set, rotated by the request rotor so load spreads across replicas.
// Nodes with open breakers sort after healthy ones but are never dropped:
// the last replica standing gets tried, breaker or not. Dead nodes are
// excluded entirely.
func (r *Router) candidates(replicas []int) []*node {
	r.mu.RLock()
	nodes := r.nodes
	r.mu.RUnlock()

	rot := int(r.rotor.Add(1))
	now := time.Now()
	var healthy, degraded []*node
	for i := range replicas {
		n := nodes[replicas[(i+rot)%len(replicas)]]
		if !n.alive.Load() {
			continue
		}
		if n.brk.allow(now) {
			healthy = append(healthy, n)
		} else {
			degraded = append(degraded, n)
		}
	}
	return append(healthy, degraded...)
}

// scatterScan fans a scan out to every partition, hedging and failing
// over per partition, and merges the per-stripe sums. Partitions with no
// surviving replica degrade the result to a typed partial: the sum is
// exact over the covered stripes and the caller learns exactly how much
// of the table it covers.
func (r *Router) scatterScan(ctx context.Context, req serve.Request) (Response, error) {
	r.mu.RLock()
	meta, ok := r.tables[req.Table]
	r.mu.RUnlock()
	if !ok {
		return Response{}, fmt.Errorf("shard: unknown table %q: %w", req.Table, errs.ErrInvalidInput)
	}

	type partOut struct {
		resp serve.Response
		err  error
		part *partition
		hov  hedgeOutcome
	}
	outs := make([]partOut, len(meta.parts))
	var wg sync.WaitGroup
	for i, part := range meta.parts {
		wg.Add(1)
		go func(i int, part *partition) {
			defer wg.Done()
			preq := req
			preq.Table = part.derived
			est := r.estimateScanCycles(part.rows)
			resp, hov, err := r.dispatch(ctx, part.replicas, preq, est)
			outs[i] = partOut{resp: resp, err: err, part: part, hov: hov}
		}(i, part)
	}
	wg.Wait()

	var out Response
	var coveredRows, coveredParts int
	var maxCycles float64
	var firstErr error
	for _, o := range outs {
		out.Failovers += o.hov.failovers
		out.Hedged = out.Hedged || o.hov.hedged
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		coveredParts++
		coveredRows += o.part.rows
		out.Sum += o.resp.Sum
		out.Spilled = out.Spilled || o.resp.Spilled
		out.SpillBytes += o.resp.SpillBytes
		if o.resp.BatchSize > out.BatchSize {
			out.BatchSize = o.resp.BatchSize
		}
		if o.resp.SimCycles > maxCycles {
			maxCycles = o.resp.SimCycles
		}
	}

	// Price the gather hop: every covered partition ships one aggregate
	// row back to the router over the fabric.
	if coveredParts > 1 {
		gatherBytes := int64(coveredParts) * 16
		out.NetworkCycles = r.clu.NetLatencyCycles + float64(gatherBytes)/r.clu.NetBytesPerCycle
		out.BytesMoved = gatherBytes
	}
	out.SimCycles = maxCycles + out.NetworkCycles

	if coveredRows == 0 && firstErr != nil {
		// Nothing answered: propagate the routing failure, not a partial.
		return out, firstErr
	}
	if coveredRows < meta.totalRows {
		out.Partial = true
		out.CoveredFraction = float64(coveredRows) / float64(meta.totalRows)
		r.partials.Add(1)
		r.reg.Counter("shard.partials").Inc()
		return out, fmt.Errorf("shard: scan %q covered %.0f%% of rows (lost replicas): %w",
			req.Table, out.CoveredFraction*100, errs.ErrPartialResult)
	}
	out.CoveredFraction = 1
	return out, nil
}

// routeAny runs an inline-data request (group-sum, Q1, Q6, unregistered-
// table ops) on one live node, failing over across all nodes: the data
// travels with the request, so any node computes the exact answer. The
// cluster-wide memory budget is reserved first — the federated governor's
// admission in front of the chosen shard's own.
func (r *Router) routeAny(ctx context.Context, req serve.Request) (Response, error) {
	if resv, err := r.reserve(req.Tenant); err != nil {
		return Response{}, err
	} else if resv != nil {
		defer resv.Release()
	}

	r.mu.RLock()
	all := make([]int, len(r.nodes))
	for i := range all {
		all[i] = i
	}
	r.mu.RUnlock()

	est := r.estimateInlineCycles(req)
	resp, hov, err := r.dispatch(ctx, all, req, est)
	return Response{Response: resp, Hedged: hov.hedged, Failovers: hov.failovers}, err
}

// reserve takes the request's slice of the cluster-wide budget, or nil
// when the router-level governor is off.
func (r *Router) reserve(tenant string) (*mem.Reservation, error) {
	if r.gov == nil {
		return nil, nil
	}
	resv, err := r.gov.ReserveFor(tenant, 0)
	if err != nil {
		return nil, fmt.Errorf("shard: cluster memory budget: %w", err)
	}
	return resv, nil
}

// estimateScanCycles prices a full scan of rows through the machine model
// — the per-partition cost estimate the hedge deadline derives from.
func (r *Router) estimateScanCycles(rows int) float64 {
	acct := hw.NewAccount(r.machine, hw.DefaultContext())
	acct.Charge(hw.Work{
		Name:            "shard-scan-estimate",
		Tuples:          int64(rows),
		ComputePerTuple: 2,
		SeqReadBytes:    int64(rows) * 16,
	})
	return acct.TotalCycles()
}

// estimateInlineCycles prices an inline-data operation (group-sum and the
// analytic queries) as one streaming pass over its payload.
func (r *Router) estimateInlineCycles(req serve.Request) float64 {
	rows := int64(len(req.Keys))
	if rows == 0 {
		rows = 4096
	}
	acct := hw.NewAccount(r.machine, hw.DefaultContext())
	acct.Charge(hw.Work{
		Name:            "shard-inline-estimate",
		Tuples:          rows,
		ComputePerTuple: 4,
		SeqReadBytes:    rows * 16,
		RandomReads:     rows,
		RandomWS:        rows * 17,
	})
	return acct.TotalCycles()
}

// Metrics returns the router's own registry (per-shard registries hang off
// each serve.Server).
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Machine returns the per-node machine profile.
func (r *Router) Machine() *hw.Machine { return r.machine }

// Workers returns the cluster-wide simulated-core budget: the sum of the
// live shards' worker budgets.
func (r *Router) Workers() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, n := range r.nodes {
		if n.alive.Load() {
			total += n.server().Workers()
		}
	}
	return total
}

// SetTenantMemCap forwards a per-tenant byte cap to the cluster-wide
// governor (when armed) and to every live shard's governor, so a tenant's
// cap binds wherever its queries land.
func (r *Router) SetTenantMemCap(tenant string, bytes int64) {
	if r.gov != nil {
		r.gov.SetTenantCap(tenant, bytes)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, n := range r.nodes {
		if n.alive.Load() {
			n.server().SetTenantMemCap(tenant, bytes)
		}
	}
}
