package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hwstar/internal/errs"
	"hwstar/internal/serve"
)

// hedgeOutcome is the routing story of one replicated dispatch.
type hedgeOutcome struct {
	hedged    bool
	failovers int
}

// minHedgeDelay floors the cost-model-derived hedge deadline: below it the
// hedge would race scheduling noise, not stragglers.
const minHedgeDelay = 50 * time.Microsecond

// hedgeDelayFor derives the hedged-dispatch deadline for an operation the
// cost model prices at estCycles: the cycles converted to wall time
// through the router's observed ns-per-cycle calibration, stretched by
// HedgeMultiplier. A fixed Options.HedgeDelay overrides the derivation
// (deterministic tests and experiments).
func (r *Router) hedgeDelayFor(estCycles float64) time.Duration {
	if r.opts.HedgeDelay > 0 {
		return r.opts.HedgeDelay
	}
	ns := r.wallNsPerCycle()
	d := time.Duration(estCycles * ns * r.opts.HedgeMultiplier)
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d
}

// ewmaAlpha weights new wall-per-cycle observations; ~1/8 smooths
// scheduling noise while tracking real drift within a few tens of
// requests.
const ewmaAlpha = 0.125

// defaultNsPerCycle seeds the calibration before the first observation:
// simulated execution is far cheaper than the cycles it models, so start
// small and let the EWMA find the real ratio.
const defaultNsPerCycle = 0.01

func (r *Router) wallNsPerCycle() float64 {
	if bits := r.nsPerCycle.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return defaultNsPerCycle
}

// observeWall feeds one completed request's wall-time-per-modeled-cycle
// ratio into the EWMA calibration.
func (r *Router) observeWall(wall time.Duration, simCycles float64) {
	if simCycles <= 0 || wall <= 0 {
		return
	}
	obs := float64(wall.Nanoseconds()) / simCycles
	for {
		oldBits := r.nsPerCycle.Load()
		old := defaultNsPerCycle
		if oldBits != 0 {
			old = math.Float64frombits(oldBits)
		}
		next := old + ewmaAlpha*(obs-old)
		if r.nsPerCycle.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// attemptResult is one replica's answer.
type attemptResult struct {
	resp   serve.Response
	err    error
	node   *node
	hedged bool
}

// dispatch sends req to the replica set with failover and hedged dispatch:
//
//   - candidates are ordered live-first and breaker-aware;
//   - the primary attempt starts immediately; if it has not answered
//     within the cost-model-derived hedge deadline, the same request is
//     hedged to the next candidate and whichever answers first wins, the
//     loser's context cancelled;
//   - a failed attempt (node died, shed, errored) fails over to the next
//     unused candidate immediately;
//   - only when every candidate has failed does the dispatch fail.
//
// The results channel is buffered to the attempt count and every attempt
// goroutine sends exactly one result, so no goroutine outlives the
// dispatch uncollected — the hedged-dispatch cancel path is leak-free (a
// test pins this).
func (r *Router) dispatch(ctx context.Context, replicas []int, req serve.Request, estCycles float64) (serve.Response, hedgeOutcome, error) {
	cands := r.candidates(replicas)
	if len(cands) == 0 {
		return serve.Response{}, hedgeOutcome{}, fmt.Errorf("shard: no live replica for %q (replicas %v): %w",
			req.Table, replicas, errs.ErrDegraded)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(cands))
	var launched int
	launch := func(n *node, hedged bool) {
		launched++
		go func() {
			srv := n.server()
			if srv == nil || !n.alive.Load() {
				results <- attemptResult{err: fmt.Errorf("shard: node %d down: %w", n.id, errs.ErrDegraded), node: n, hedged: hedged}
				return
			}
			resp, err := srv.Submit(actx, req)
			results <- attemptResult{resp: resp, err: err, node: n, hedged: hedged}
		}()
	}

	launch(cands[0], false)
	hedgeTimer := time.NewTimer(r.hedgeDelayFor(estCycles))
	defer hedgeTimer.Stop()

	var out hedgeOutcome
	var lastErr error
	pending := 1
	for pending > 0 {
		select {
		case <-ctx.Done():
			return serve.Response{}, out, fmt.Errorf("shard: dispatch cancelled: %w", ctx.Err())
		case <-hedgeTimer.C:
			// Primary exceeded the model-derived deadline: hedge to the
			// next unused candidate, if any.
			if launched < len(cands) {
				out.hedged = true
				r.hedges.Add(1)
				r.reg.Counter("shard.hedges").Inc()
				launch(cands[launched], true)
				pending++
			}
		case res := <-results:
			pending--
			if res.err == nil {
				res.node.brk.onSuccess()
				if res.hedged {
					r.hedgeWins.Add(1)
					r.reg.Counter("shard.hedge_wins").Inc()
				}
				return res.resp, out, nil
			}
			if errors.Is(res.err, context.Canceled) && ctx.Err() == nil {
				// Lost the hedge race — not a node failure.
				continue
			}
			res.node.brk.onFailure()
			lastErr = res.err
			if launched < len(cands) {
				out.failovers++
				r.failovers.Add(1)
				r.reg.Counter("shard.failovers").Inc()
				launch(cands[launched], false)
				pending++
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard: all replicas lost: %w", errs.ErrDegraded)
	}
	return serve.Response{}, out, lastErr
}

// breaker is the router-side circuit breaker guarding the route to one
// node. It mirrors serve's internal breaker in miniature: consecutive
// route failures open it, a cooldown later one request probes half-open,
// success closes it. Unlike serve's, it never sheds — candidates with
// open breakers merely sort last, because a breaker must not turn "slow
// node" into "lost range".
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	consec   int
	open     bool
	openedAt time.Time
	trips    int64
}

func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || now.Sub(b.openedAt) >= b.cooldown
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.consec = 0
	b.open = false
	b.mu.Unlock()
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if !b.open && b.consec >= b.threshold {
		b.open = true
		b.openedAt = time.Now()
		b.trips++
	}
}

func (b *breaker) snapshot() (open bool, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open, b.trips
}

func (b *breaker) reset() {
	b.mu.Lock()
	b.consec, b.open, b.openedAt = 0, false, time.Time{}
	b.mu.Unlock()
}
