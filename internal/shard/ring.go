package shard

import (
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over node ids. Placement must be stable —
// the same table/partition key always lands on the same replica set — and
// balanced, so every node carries a similar share of partitions. Virtual
// points give the balance; hashing names (not node counts) gives the
// stability: adding a node moves only the partitions whose arcs it splits.
//
// Membership is fixed at router construction. Liveness is NOT a ring
// concern: a dead node keeps its ring position and its partition
// assignments, and the router fails over among the assigned replicas at
// dispatch time. Rebuilding the ring on every failure would silently
// reassign ranges away from their durable copies.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// vnodesPerNode is the virtual-point count per physical node. 64 keeps the
// per-node load imbalance under ~15% for small clusters while the ring
// stays tiny (a few KiB).
const vnodesPerNode = 64

// hash64 is FNV-1a with a splitmix64 finalizer — cheap and stable across
// processes. The finalizer matters: raw FNV of short, similar strings
// clusters in the high bits, and ring positions are compared on the full
// value, so without it vnode arcs bunch up and the load skews 3× (we need
// spread, not cryptographic strength).
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func newRing(nodes int) *ring {
	r := &ring{nodes: nodes, points: make([]ringPoint, 0, nodes*vnodesPerNode)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64("node-" + strconv.Itoa(n) + "/vp-" + strconv.Itoa(v)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// lookup returns the first r distinct nodes clockwise from key's hash —
// the replica set for that key, primary first. r is clamped to the node
// count.
func (rg *ring) lookup(key string, r int) []int {
	if r > rg.nodes {
		r = rg.nodes
	}
	h := hash64(key)
	i := sort.Search(len(rg.points), func(i int) bool { return rg.points[i].hash >= h })
	out := make([]int, 0, r)
	seen := make(map[int]bool, r)
	for len(out) < r {
		p := rg.points[i%len(rg.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
		i++
	}
	return out
}
