package shard

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestHedgedDispatchCancelLeaksNoGoroutines pins the hedge cancel path:
// with an aggressive fixed hedge delay every scan hedges to a second
// replica and cancels the loser; after the storm and router close, the
// goroutine count must return to baseline — a cancelled loser that blocks
// forever (unbuffered result channel, ignored context) would show up
// here.
func TestHedgedDispatchCancelLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		cols, expect := testRelation(4000)
		want := expect(0, 3999)
		r := newRouter(t, Options{Shards: 4, Replicas: 2, HedgeDelay: time.Nanosecond})
		defer r.Close()
		if err := r.Register("ev", cols); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			resp, err := r.Submit(context.Background(), scanReq("ev", 0, 3999))
			if err != nil {
				t.Fatal(err)
			}
			if resp.Sum != want {
				t.Fatalf("hedged scan %d = %d, want %d", i, resp.Sum, want)
			}
		}
		if ch := r.ClusterHealth(); ch.Hedges == 0 {
			t.Fatal("1ns hedge delay produced no hedges")
		}
	}()

	// Losers unwind asynchronously after cancel; poll for quiescence.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked by hedge cancel path: before=%d after=%d\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// TestHedgeWinsRecorded drives hedges and checks the win counter moves —
// with both replicas healthy and a 1ns delay, some hedged attempts must
// beat their primaries over enough trials.
func TestHedgeWinsRecorded(t *testing.T) {
	cols, _ := testRelation(2000)
	r := newRouter(t, Options{Shards: 2, Replicas: 2, HedgeDelay: time.Nanosecond})
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := r.Submit(context.Background(), scanReq("ev", 0, 1999)); err != nil {
			t.Fatal(err)
		}
	}
	ch := r.ClusterHealth()
	if ch.Hedges == 0 {
		t.Fatal("no hedges fired")
	}
	t.Logf("hedges=%d wins=%d", ch.Hedges, ch.HedgeWins)
}

// TestCostModelDerivedHedgeDelay checks the deadline derivation: with no
// fixed override the delay comes from estimated cycles × calibrated
// ns-per-cycle × multiplier, floored at minHedgeDelay.
func TestCostModelDerivedHedgeDelay(t *testing.T) {
	r := newRouter(t, Options{Shards: 2, Replicas: 2, HedgeMultiplier: 3})
	small := r.hedgeDelayFor(10)
	if small != minHedgeDelay {
		t.Fatalf("tiny estimate delay = %v, want floor %v", small, minHedgeDelay)
	}
	big := r.hedgeDelayFor(1e12)
	if big <= minHedgeDelay {
		t.Fatalf("huge estimate delay = %v, want above floor", big)
	}

	// Calibration moves with observations.
	r.observeWall(100*time.Millisecond, 1e6) // 100ns per cycle observed
	if got := r.wallNsPerCycle(); got <= defaultNsPerCycle {
		t.Fatalf("EWMA did not move: %v", got)
	}

	// Fixed override wins.
	r2 := newRouter(t, Options{Shards: 2, Replicas: 2, HedgeDelay: 7 * time.Millisecond})
	if got := r2.hedgeDelayFor(1e12); got != 7*time.Millisecond {
		t.Fatalf("fixed delay = %v, want 7ms", got)
	}
}

// TestParentCancellationPropagates: a cancelled caller context aborts the
// dispatch promptly with the context error, not a replica error.
func TestParentCancellationPropagates(t *testing.T) {
	cols, _ := testRelation(2000)
	r := newRouter(t, Options{Shards: 2, Replicas: 2})
	if err := r.Register("ev", cols); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Submit(ctx, scanReq("ev", 0, 1999)); err == nil {
		t.Fatal("cancelled submit succeeded")
	}
}
