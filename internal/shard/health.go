package shard

import (
	"fmt"

	"hwstar/internal/errs"
	"hwstar/internal/mem"
	"hwstar/internal/serve"
)

// PartitionInfo describes one partition's placement: the contiguous row
// stripe it covers and the nodes replicating it (primary first). Chaos
// tooling and experiments use it to stage targeted failures — killing
// every replica of one range is how a total-loss partial result is forced
// deterministically.
type PartitionInfo struct {
	ID       int
	Rows     int
	Replicas []int
}

// Partitions returns the placement of name's partitions in partition order.
func (r *Router) Partitions(name string) ([]PartitionInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	meta, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("shard: unknown table %q: %w", name, errs.ErrInvalidInput)
	}
	out := make([]PartitionInfo, len(meta.parts))
	for i, p := range meta.parts {
		out[i] = PartitionInfo{ID: p.id, Rows: p.rows, Replicas: append([]int(nil), p.replicas...)}
	}
	return out, nil
}

// NodeHealth is one shard's slice of the cluster picture.
type NodeHealth struct {
	ID    int
	Alive bool
	// BreakerOpen and BreakerTrips describe the router-side breaker
	// guarding the route to this node (the node's own breaker is inside
	// Serve).
	BreakerOpen  bool
	BreakerTrips int64
	// Serve is the node's own health snapshot (zero when the node is
	// dead — its server is gone).
	Serve serve.Health
}

// ClusterHealth is the router's full observability surface: per-node
// breakdowns plus the routing counters that only exist at this tier.
type ClusterHealth struct {
	Shards, Replicas, Partitions int
	LiveNodes                    int

	// Routing counters: replica failovers, hedged dispatches and how many
	// hedges won, partial-result responses, node losses, and stripes
	// re-replicated during recovery.
	Failovers, Hedges, HedgeWins int64
	Partials                     int64
	NodeLosses, Rereplications   int64

	// Memory is the cluster-wide governor's snapshot (zero when the
	// router-level budget is off).
	Memory mem.Stats

	Nodes []NodeHealth
}

// ClusterHealth snapshots the shard tier.
func (r *Router) ClusterHealth() ClusterHealth {
	r.mu.RLock()
	nodes := r.nodes
	r.mu.RUnlock()

	ch := ClusterHealth{
		Shards:         r.opts.Shards,
		Replicas:       r.opts.Replicas,
		Partitions:     r.opts.Partitions,
		Failovers:      r.failovers.Load(),
		Hedges:         r.hedges.Load(),
		HedgeWins:      r.hedgeWins.Load(),
		Partials:       r.partials.Load(),
		NodeLosses:     r.nodeLosses.Load(),
		Rereplications: r.rereplications.Load(),
	}
	if r.gov != nil {
		ch.Memory = r.gov.Stats()
	}
	for _, n := range nodes {
		nh := NodeHealth{ID: n.id, Alive: n.alive.Load()}
		nh.BreakerOpen, nh.BreakerTrips = n.brk.snapshot()
		if srv := n.server(); srv != nil && nh.Alive {
			nh.Serve = srv.Health()
		}
		ch.Nodes = append(ch.Nodes, nh)
	}
	ch.LiveNodes = 0
	for _, nh := range ch.Nodes {
		if nh.Alive {
			ch.LiveNodes++
		}
	}
	return ch
}

// Health merges the live shards' health into one serve.Health — the
// single-node surface the frontend already speaks, summed across the
// cluster. State degrades when any live node is degraded; the cluster-
// wide governor's snapshot replaces the per-shard one when armed.
// Cluster-only detail (failovers, hedges, partials) lives in
// ClusterHealth.
func (r *Router) Health() serve.Health {
	ch := r.ClusterHealth()
	var out serve.Health
	out.State = "ok"
	for _, nh := range ch.Nodes {
		if !nh.Alive {
			continue
		}
		h := nh.Serve
		if h.State == "degraded" || h.State == "recovering" {
			out.State = h.State
		}
		out.QueueDepth += h.QueueDepth
		out.ConsecutiveFailures += h.ConsecutiveFailures
		out.Admitted += h.Admitted
		out.Completed += h.Completed
		out.Failed += h.Failed
		out.Rejected += h.Rejected
		out.Shed += h.Shed
		out.DeadlineExceeded += h.DeadlineExceeded
		out.Retries += h.Retries
		out.RetryExhausted += h.RetryExhausted
		out.BreakerTrips += h.BreakerTrips
		out.Redispatched += h.Redispatched
		out.PanicsRecovered += h.PanicsRecovered
		out.StragglersRetired += h.StragglersRetired
		out.CoresLost += h.CoresLost
		out.DegradedScans += h.DegradedScans
		out.MemShed += h.MemShed
		out.Spills += h.Spills
		out.SpillBytes += h.SpillBytes
		out.OOMKilled += h.OOMKilled
		out.Checkpoints += h.Checkpoints
		out.CheckpointFailures += h.CheckpointFailures
		out.ColdLoads += h.ColdLoads
		out.ReplayedTables += h.ReplayedTables
		out.RecoveringShed += h.RecoveringShed
		out.Durable = out.Durable || h.Durable
		if h.Faults != nil && out.Faults == nil {
			out.Faults = make(map[string]int64)
		}
		for k, v := range h.Faults {
			out.Faults[k] += v
		}
		for id, th := range h.Tenants {
			if out.Tenants == nil {
				out.Tenants = make(map[string]serve.TenantHealth)
			}
			agg := out.Tenants[id]
			agg.Admitted += th.Admitted
			agg.Completed += th.Completed
			agg.Failed += th.Failed
			agg.Rejected += th.Rejected
			agg.Shed += th.Shed
			agg.MemShed += th.MemShed
			agg.DeadlineExceeded += th.DeadlineExceeded
			agg.Invalid += th.Invalid
			agg.Spills += th.Spills
			agg.SpillBytes += th.SpillBytes
			out.Tenants[id] = agg
		}
	}
	if r.gov != nil {
		out.Memory = ch.Memory
	}
	if out.Faults == nil && ch.NodeLosses > 0 {
		out.Faults = make(map[string]int64)
	}
	if out.Faults != nil {
		out.Faults["node-loss"] += ch.NodeLosses
	}
	return out
}

// TenantHealth merges one tenant's counters across the live shards.
func (r *Router) TenantHealth(tenant string) serve.TenantHealth {
	r.mu.RLock()
	nodes := r.nodes
	r.mu.RUnlock()

	var out serve.TenantHealth
	for _, n := range nodes {
		srv := n.server()
		if srv == nil || !n.alive.Load() {
			continue
		}
		th := srv.TenantHealth(tenant)
		out.Admitted += th.Admitted
		out.Completed += th.Completed
		out.Failed += th.Failed
		out.Rejected += th.Rejected
		out.Shed += th.Shed
		out.MemShed += th.MemShed
		out.DeadlineExceeded += th.DeadlineExceeded
		out.Invalid += th.Invalid
		out.Spills += th.Spills
		out.SpillBytes += th.SpillBytes
		if th.MemInUseBytes > 0 {
			out.MemInUseBytes += th.MemInUseBytes
		}
		if th.MemCapBytes > out.MemCapBytes {
			out.MemCapBytes = th.MemCapBytes
		}
	}
	return out
}
