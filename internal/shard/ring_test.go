package shard

import (
	"fmt"
	"testing"
)

func TestRingReplicaSetsAreDistinctAndStable(t *testing.T) {
	rg := newRing(8)
	for p := 0; p < 100; p++ {
		key := fmt.Sprintf("orders/%d", p)
		reps := rg.lookup(key, 3)
		if len(reps) != 3 {
			t.Fatalf("key %s: %d replicas, want 3", key, len(reps))
		}
		seen := map[int]bool{}
		for _, n := range reps {
			if n < 0 || n >= 8 {
				t.Fatalf("key %s: node %d out of range", key, n)
			}
			if seen[n] {
				t.Fatalf("key %s: duplicate replica %d in %v", key, n, reps)
			}
			seen[n] = true
		}
		again := rg.lookup(key, 3)
		for i := range reps {
			if reps[i] != again[i] {
				t.Fatalf("key %s: lookup not stable: %v vs %v", key, reps, again)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const nodes, keys = 8, 4096
	rg := newRing(nodes)
	counts := make([]int, nodes)
	for p := 0; p < keys; p++ {
		counts[rg.lookup(fmt.Sprintf("t/%d", p), 1)[0]]++
	}
	want := keys / nodes
	for n, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("node %d holds %d of %d primaries (ideal %d) — ring badly imbalanced", n, c, keys, want)
		}
	}
}

func TestRingClampsReplicasToNodes(t *testing.T) {
	rg := newRing(2)
	if got := rg.lookup("x", 5); len(got) != 2 {
		t.Fatalf("replicas = %v, want clamped to 2 nodes", got)
	}
}
