package shard

import (
	"context"
	"fmt"
	"sync"

	"hwstar/internal/cluster"
	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/planner"
	"hwstar/internal/serve"
)

// distJoin executes a scatter-gather equi-join across the live shards.
// The movement strategy — shuffle (hash-partition both sides) vs
// broadcast (replicate the build side, stripe the probes) — comes from
// the planner with the fabric priced through cluster.Cluster, never a
// row-count heuristic. Join inputs travel inline with the request, so a
// failed sub-join fails over to any other live node and the merged answer
// is always exact: joins degrade by slowing down, not by going partial.
func (r *Router) distJoin(ctx context.Context, req serve.Request) (Response, error) {
	in := req.Join
	if err := in.Validate(); err != nil {
		return Response{}, err
	}
	if resv, err := r.reserve(req.Tenant); err != nil {
		return Response{}, err
	} else if resv != nil {
		defer resv.Release()
	}

	live := r.LiveNodes()
	if len(live) == 0 {
		return Response{}, fmt.Errorf("shard: no live nodes: %w", errs.ErrDegraded)
	}

	clu := r.clu
	clu.Nodes = len(live)
	plan := planner.ChooseDistStrategy(clu, planner.StatsOf(in, 0), hw.DefaultContext())
	if len(live) == 1 {
		// One node left: no movement, run the whole join there.
		resp, hov, err := r.dispatch(ctx, live, req, plan.Predicted)
		return Response{Response: resp, Strategy: plan.Strategy, Hedged: hov.hedged, Failovers: hov.failovers}, err
	}

	subs := splitJoin(in, len(live), plan.Strategy)
	shufBytes, bcastBytes := clu.PredictBytes(int64(len(in.BuildKeys)), int64(len(in.ProbeKeys)))
	bytesMoved := shufBytes
	if plan.Strategy == cluster.StrategyBroadcast {
		bytesMoved = bcastBytes
	}

	type subOut struct {
		resp serve.Response
		err  error
		hov  hedgeOutcome
	}
	outs := make([]subOut, len(subs))
	est := plan.Predicted
	var wg sync.WaitGroup
	for i := range subs {
		if len(subs[i].BuildKeys) == 0 && len(subs[i].ProbeKeys) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sreq := req
			sreq.Join = subs[i]
			// Preferred node first, every other live node as failover —
			// the sub-join's data is inline, so anyone can run it.
			order := rotated(live, i)
			resp, hov, err := r.dispatch(ctx, order, sreq, est)
			outs[i] = subOut{resp: resp, err: err, hov: hov}
		}(i)
	}
	wg.Wait()

	var out Response
	out.Strategy = plan.Strategy
	out.BytesMoved = bytesMoved
	out.NetworkCycles = r.clu.NetLatencyCycles + float64(bytesMoved)/float64(len(live))/r.clu.NetBytesPerCycle
	var maxLocal float64
	for _, o := range outs {
		out.Failovers += o.hov.failovers
		out.Hedged = out.Hedged || o.hov.hedged
		if o.err != nil {
			// dispatch already exhausted every live node; the join cannot
			// be completed exactly, and joins never return partials.
			return out, o.err
		}
		out.Matches += o.resp.Matches
		out.Checksum += o.resp.Checksum
		out.Spilled = out.Spilled || o.resp.Spilled
		out.SpillBytes += o.resp.SpillBytes
		if o.resp.SimCycles > maxLocal {
			maxLocal = o.resp.SimCycles
		}
	}
	out.SimCycles = maxLocal + out.NetworkCycles
	out.CoveredFraction = 1
	return out, nil
}

// splitJoin partitions a join input for n-way distributed execution.
// Shuffle: both sides hash-partitioned by key, so matching keys land on
// the same sub-join. Broadcast: every sub-join sees the full build side
// and a contiguous probe stripe.
func splitJoin(in join.Input, n int, strat cluster.Strategy) []join.Input {
	subs := make([]join.Input, n)
	if strat == cluster.StrategyBroadcast {
		for i := range subs {
			lo := len(in.ProbeKeys) * i / n
			hi := len(in.ProbeKeys) * (i + 1) / n
			subs[i] = join.Input{
				BuildKeys: in.BuildKeys, BuildVals: in.BuildVals,
				ProbeKeys: in.ProbeKeys[lo:hi], ProbeVals: in.ProbeVals[lo:hi],
			}
		}
		return subs
	}
	for i, k := range in.BuildKeys {
		d := hashPart(k, n)
		subs[d].BuildKeys = append(subs[d].BuildKeys, k)
		subs[d].BuildVals = append(subs[d].BuildVals, in.BuildVals[i])
	}
	for i, k := range in.ProbeKeys {
		d := hashPart(k, n)
		subs[d].ProbeKeys = append(subs[d].ProbeKeys, k)
		subs[d].ProbeVals = append(subs[d].ProbeVals, in.ProbeVals[i])
	}
	return subs
}

// hashPart assigns a join key to a sub-join, mirroring the cluster
// simulation's node hash (Fibonacci multiplicative hashing).
func hashPart(k int64, n int) int {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(n))
}

// rotated returns ids rotated so ids[i%len] leads — the distributed
// join's preferred-node ordering with everyone else as failover.
func rotated(ids []int, i int) []int {
	out := make([]int, len(ids))
	for j := range ids {
		out[j] = ids[(i+j)%len(ids)]
	}
	return out
}
