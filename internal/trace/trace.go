// Package trace is hwstar's query-lifecycle observability layer: per-request
// span trees that attribute both wall time and simulated cycles to the stages
// a request passes through (admit → queue → batch assembly → dispatch →
// per-morsel execute → retry/degrade).
//
// The keynote's demand for "strict performance engineering principles"
// against the hardware is impossible to satisfy blind: tuning needs
// measurement that attributes cost to causes (McKenney's first rule). The
// serving layer (PR 1) and the resilience layer (PR 2) added behaviour —
// shared-scan batching, retries, straggler re-dispatch — whose cost shows up
// only in the tail; spans are how that tail is decomposed into queueing,
// batching, execution, and recovery components.
//
// Design constraints, in order:
//
//   - Zero cost when off. A nil *Tracer and a nil *Span are valid receivers
//     for every method; call sites never branch on "is tracing enabled".
//   - Bounded memory always. Completed traces live in a fixed-capacity ring
//     (old traces are overwritten), and each trace caps its span count;
//     sustained serving load cannot grow the heap.
//   - Both clocks. Every span carries wall time (what the client felt) and
//     simulated cycles (what the modeled machine paid); the two decompose
//     differently and both matter.
//
// A Tracer samples: every SampleEvery-th Start call records a trace, the
// rest return nil spans that no-op through the whole request path.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a Tracer. The zero value is usable: capacity 256 traces,
// 512 spans per trace, every trace sampled.
type Config struct {
	// Capacity is the number of completed traces the ring retains; older
	// traces are overwritten. Default 256.
	Capacity int
	// MaxSpans caps the spans recorded per trace; Child calls beyond the cap
	// return nil spans and are counted in Dropped. Default 512.
	MaxSpans int
	// SampleEvery records every Nth started trace (1 = all, the default).
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	return c
}

// Tracer creates and retains traces. All methods are safe for concurrent use
// and safe on a nil receiver (every operation no-ops).
type Tracer struct {
	cfg Config

	started atomic.Uint64 // Start calls, sampled or not
	dropped atomic.Uint64 // spans dropped by MaxSpans

	mu   sync.Mutex
	ring []*liveTrace // completed traces, ring-ordered
	next int          // ring write cursor
	n    int          // filled entries
}

// New returns a Tracer with the given config.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, ring: make([]*liveTrace, cfg.Capacity)}
}

// liveTrace is a trace under construction. Spans append under the trace lock;
// once the root ends the trace is published to the ring and never mutated
// again (the serving pipeline ends all children before the root).
type liveTrace struct {
	id    uint64
	tr    *Tracer
	mu    sync.Mutex
	spans []*Span
}

// Span is one stage of a trace. Fields are written through methods while the
// trace is live; read them from SpanData snapshots, not from live spans.
type Span struct {
	lt     *liveTrace
	id     int32
	parent int32 // -1 for the root

	name   string
	start  time.Time
	wall   time.Duration
	cycles float64
	bytes  int64
	attrs  []Attr
	events []string
	ended  bool
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key, Value string
}

// Start begins a new trace rooted at a span with the given name. It returns
// nil — a fully usable no-op span — when the tracer is nil or this trace
// falls outside the sampling rate.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	n := t.started.Add(1)
	if (n-1)%uint64(t.cfg.SampleEvery) != 0 {
		return nil
	}
	lt := &liveTrace{id: n, tr: t}
	root := &Span{lt: lt, id: 0, parent: -1, name: name, start: time.Now()}
	lt.spans = append(lt.spans, root)
	return root
}

// Started returns the number of Start calls (sampled or not) and the number
// of spans dropped by per-trace caps.
func (t *Tracer) Started() (started, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	return t.started.Load(), t.dropped.Load()
}

// publish places a completed trace in the ring, overwriting the oldest.
func (t *Tracer) publish(lt *liveTrace) {
	t.mu.Lock()
	t.ring[t.next] = lt
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Child starts a sub-span under s. Nil-safe: a nil parent returns a nil
// child. Children beyond the trace's MaxSpans cap are dropped (counted on
// the tracer) so span floods cannot grow memory.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	lt := s.lt
	lt.mu.Lock()
	if len(lt.spans) >= lt.tr.cfg.MaxSpans {
		lt.mu.Unlock()
		lt.tr.dropped.Add(1)
		return nil
	}
	c := &Span{lt: lt, id: int32(len(lt.spans)), parent: s.id, name: name, start: time.Now()}
	lt.spans = append(lt.spans, c)
	lt.mu.Unlock()
	return c
}

// Emit records an already-completed child span carrying only simulated
// cycles — the shape operators use for per-phase cycle attribution, where
// wall time is an artifact of the virtual-time simulation.
func (s *Span) Emit(name string, cycles float64) {
	c := s.Child(name)
	if c == nil {
		return
	}
	c.AddCycles(cycles)
	c.End()
}

// AddCycles attributes simulated cycles to the span.
func (s *Span) AddCycles(c float64) {
	if s == nil {
		return
	}
	s.lt.mu.Lock()
	s.cycles += c
	s.lt.mu.Unlock()
}

// AddBytes attributes simulated memory bytes to the span — the peak operator
// state a governed request charged against its reservation, plus any spill
// traffic. Traces then show WHERE a request's footprint went, the way
// AddCycles shows where its time went.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.lt.mu.Lock()
	s.bytes += n
	s.lt.mu.Unlock()
}

// SetAttr attaches a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.lt.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.lt.mu.Unlock()
}

// Annotate appends a formatted event to the span (fault firings, retries,
// breaker transitions).
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	ev := fmt.Sprintf(format, args...)
	s.lt.mu.Lock()
	s.events = append(s.events, ev)
	s.lt.mu.Unlock()
}

// Event appends a pre-built event string to the span: Annotate without the
// formatting, for call sites inside allocation-policed loops that assemble
// the message with strconv instead of boxing through fmt.
func (s *Span) Event(ev string) {
	if s == nil {
		return
	}
	s.lt.mu.Lock()
	s.events = append(s.events, ev)
	s.lt.mu.Unlock()
}

// End completes the span, fixing its wall duration. Ending the root span
// publishes the whole trace to the tracer's ring; End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	lt := s.lt
	lt.mu.Lock()
	if s.ended {
		lt.mu.Unlock()
		return
	}
	s.ended = true
	s.wall = time.Since(s.start)
	root := s.parent == -1
	lt.mu.Unlock()
	if root {
		lt.tr.publish(lt)
	}
}

// SpanData is an immutable snapshot of one span.
type SpanData struct {
	// ID is the span's index within its trace; Parent is the parent span's
	// ID, -1 for the root.
	ID, Parent int
	// Name identifies the stage ("request:scan", "queue", "execute", ...).
	Name string
	// Start is the wall-clock start; Wall the duration (0 if never ended).
	Start time.Time
	Wall  time.Duration
	// Cycles is the simulated-machine cost attributed to this span.
	Cycles float64
	// Bytes is the simulated memory footprint attributed to this span (0
	// for ungoverned requests).
	Bytes int64
	// Attrs and Events carry annotations recorded on the span.
	Attrs  []Attr
	Events []string
}

// TraceData is an immutable snapshot of one completed trace. Spans[0] is the
// root; Spans[i].ID == i.
type TraceData struct {
	ID    uint64
	Spans []SpanData
}

// Snapshot copies the completed traces out of the ring, oldest first.
func (t *Tracer) Snapshot() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lts := make([]*liveTrace, 0, t.n)
	for i := 0; i < t.n; i++ {
		idx := (t.next - t.n + i + len(t.ring)) % len(t.ring)
		lts = append(lts, t.ring[idx])
	}
	t.mu.Unlock()

	out := make([]TraceData, 0, len(lts))
	for _, lt := range lts {
		out = append(out, lt.snapshot())
	}
	return out
}

func (lt *liveTrace) snapshot() TraceData {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	td := TraceData{ID: lt.id, Spans: make([]SpanData, len(lt.spans))}
	for i, s := range lt.spans {
		td.Spans[i] = SpanData{
			ID:     int(s.id),
			Parent: int(s.parent),
			Name:   s.name,
			Start:  s.start,
			Wall:   s.wall,
			Cycles: s.cycles,
			Bytes:  s.bytes,
			Attrs:  append([]Attr(nil), s.attrs...),
			Events: append([]string(nil), s.events...),
		}
	}
	return td
}

// Root returns the trace's root span.
func (td TraceData) Root() SpanData {
	if len(td.Spans) == 0 {
		return SpanData{}
	}
	return td.Spans[0]
}

// SumWall totals the wall time of spans with the given name.
func (td TraceData) SumWall(name string) time.Duration {
	var sum time.Duration
	for _, s := range td.Spans {
		if s.Name == name {
			sum += s.Wall
		}
	}
	return sum
}

// SumCycles totals the simulated cycles of spans with the given name.
func (td TraceData) SumCycles(name string) float64 {
	var sum float64
	for _, s := range td.Spans {
		if s.Name == name {
			sum += s.Cycles
		}
	}
	return sum
}

// Render formats the trace as an indented span tree with wall milliseconds,
// simulated megacycles, attributes, and events — the -trace dump format.
func (td TraceData) Render() string {
	children := make(map[int][]int, len(td.Spans))
	for _, s := range td.Spans {
		if s.Parent >= 0 {
			children[s.Parent] = append(children[s.Parent], s.ID)
		}
	}
	for _, c := range children {
		sort.Ints(c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d\n", td.ID)
	var walk func(id, depth int)
	walk = func(id, depth int) {
		s := td.Spans[id]
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s  wall=%.3fms", indent, s.Name, float64(s.Wall.Microseconds())/1000)
		if s.Cycles > 0 {
			fmt.Fprintf(&b, " sim=%.3fMcyc", s.Cycles/1e6)
		}
		if s.Bytes > 0 {
			fmt.Fprintf(&b, " mem=%.1fKiB", float64(s.Bytes)/1024)
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, ev := range s.Events {
			fmt.Fprintf(&b, "%s  ! %s\n", indent, ev)
		}
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	if len(td.Spans) > 0 {
		walk(0, 0)
	}
	return b.String()
}
