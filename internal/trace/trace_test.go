package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("req")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// Every method must no-op on a nil span.
	c := sp.Child("queue")
	c.AddCycles(10)
	c.SetAttr("k", "v")
	c.Annotate("event %d", 1)
	c.Emit("phase", 5)
	c.End()
	sp.End()
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}
}

func TestSpanTreeRecorded(t *testing.T) {
	tr := New(Config{})
	root := tr.Start("request:scan")
	q := root.Child("queue")
	time.Sleep(time.Millisecond)
	q.End()
	ex := root.Child("execute")
	ex.AddCycles(2e6)
	ex.Emit("clock-scan", 1.5e6)
	ex.SetAttr("batch", "4")
	ex.End()
	root.Annotate("retry %d", 1)
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	td := traces[0]
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	if td.Root().Name != "request:scan" || td.Root().Parent != -1 {
		t.Fatalf("bad root: %+v", td.Root())
	}
	if td.SumWall("queue") < time.Millisecond {
		t.Fatalf("queue wall = %v, want >= 1ms", td.SumWall("queue"))
	}
	if got := td.SumCycles("execute"); got != 2e6 {
		t.Fatalf("execute cycles = %f, want 2e6", got)
	}
	if got := td.SumCycles("clock-scan"); got != 1.5e6 {
		t.Fatalf("clock-scan cycles = %f, want 1.5e6", got)
	}
	if len(td.Spans[0].Events) != 1 || td.Spans[0].Events[0] != "retry 1" {
		t.Fatalf("root events = %v", td.Spans[0].Events)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 3})
	var sampled int
	for i := 0; i < 9; i++ {
		if sp := tr.Start("r"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 with SampleEvery=3, want 3", sampled)
	}
	if got := len(tr.Snapshot()); got != 3 {
		t.Fatalf("snapshot has %d traces, want 3", got)
	}
}

func TestRingBounded(t *testing.T) {
	tr := New(Config{Capacity: 4})
	for i := 0; i < 20; i++ {
		tr.Start("r").End()
	}
	traces := tr.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(traces))
	}
	// Oldest-first ordering: the survivors are the last four traces started.
	if traces[0].ID != 17 || traces[3].ID != 20 {
		t.Fatalf("ring ids = %d..%d, want 17..20", traces[0].ID, traces[3].ID)
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Config{MaxSpans: 4})
	root := tr.Start("r")
	var kept int
	for i := 0; i < 10; i++ {
		if c := root.Child("c"); c != nil {
			kept++
			c.End()
		}
	}
	root.End()
	if kept != 3 { // root takes one slot
		t.Fatalf("kept %d children with MaxSpans=4, want 3", kept)
	}
	if _, dropped := tr.Started(); dropped != 7 {
		t.Fatalf("dropped = %d, want 7", dropped)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatal("empty context must yield nil span")
	}
	// A nil span leaves the context untouched.
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("nil span must not wrap the context")
	}
	tr := New(Config{})
	sp := tr.Start("r")
	ctx = NewContext(ctx, sp)
	if got := FromContext(ctx); got != sp {
		t.Fatal("span lost in context round-trip")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{})
	sp := tr.Start("r")
	sp.End()
	sp.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("double End published %d traces, want 1", got)
	}
}

func TestRender(t *testing.T) {
	tr := New(Config{})
	root := tr.Start("request:scan")
	ex := root.Child("execute")
	ex.AddCycles(3e6)
	ex.End()
	root.Annotate("retry 1")
	root.End()
	out := tr.Snapshot()[0].Render()
	for _, want := range []string{"request:scan", "  execute", "sim=3.000Mcyc", "! retry 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Capacity: 64, MaxSpans: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.Start("r")
				for j := 0; j < 4; j++ {
					c := root.Child("phase")
					c.AddCycles(1)
					c.Annotate("e")
					c.End()
				}
				root.End()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 64 {
		t.Fatalf("ring has %d traces, want 64", got)
	}
}
