package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying the span. Layers that cannot take a span
// parameter (the scheduler, the operators) receive it this way.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil — and nil is a fully
// usable no-op span, so callers chain methods without checking.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
