package planner

import (
	"testing"

	"hwstar/internal/cluster"
	"hwstar/internal/hw"
	"hwstar/internal/join"
)

// TestChooseDistStrategyRegimes pins the two classic regimes: a tiny
// build side against a huge probe side favours broadcast (replicating
// the build moves almost nothing, and probes never cross the fabric);
// comparable sides favour shuffle (replicating the build would move
// (N-1)× its size while shuffling moves under 1× of each side).
func TestChooseDistStrategyRegimes(t *testing.T) {
	c := cluster.Rack10GbE(8)

	small := ChooseDistStrategy(c, join.Stats{BuildRows: 1 << 10, ProbeRows: 1 << 22}, hw.DefaultContext())
	if small.Strategy != cluster.StrategyBroadcast {
		t.Fatalf("tiny build: chose %s (all: %v), want broadcast", small.Strategy, small.All)
	}
	big := ChooseDistStrategy(c, join.Stats{BuildRows: 1 << 21, ProbeRows: 1 << 22}, hw.DefaultContext())
	if big.Strategy != cluster.StrategyShuffle {
		t.Fatalf("comparable sides: chose %s (all: %v), want shuffle", big.Strategy, big.All)
	}

	for _, p := range []DistPlan{small, big} {
		if p.Predicted <= 0 || len(p.All) != 2 {
			t.Fatalf("malformed plan: %+v", p)
		}
		if p.Predicted != p.All[p.Strategy] {
			t.Fatalf("predicted %v != All[%s] %v", p.Predicted, p.Strategy, p.All[p.Strategy])
		}
	}
}

// TestChooseDistStrategyAgreesWithMovedBytesAtScale checks coherence with
// the cluster simulation: when the byte gap is decisive, the planner's
// pick matches StrategyAuto's bytes-only rule.
func TestChooseDistStrategyAgreesWithMovedBytesAtScale(t *testing.T) {
	c := cluster.Rack10GbE(8)
	for _, s := range []join.Stats{
		{BuildRows: 1 << 8, ProbeRows: 1 << 22},
		{BuildRows: 1 << 22, ProbeRows: 1 << 22},
	} {
		plan := ChooseDistStrategy(c, s, hw.DefaultContext())
		sb, bb := c.PredictBytes(s.BuildRows, s.ProbeRows)
		bytesPick := cluster.StrategyShuffle
		if bb < sb {
			bytesPick = cluster.StrategyBroadcast
		}
		if plan.Strategy != bytesPick {
			t.Fatalf("stats %+v: planner %s vs bytes rule %s (sb=%d bb=%d all=%v)",
				s, plan.Strategy, bytesPick, sb, bb, plan.All)
		}
	}
}

// TestChooseDistStrategySingleNode: one node means no fabric cost and
// either pick is sound; the chooser must not divide by zero or return a
// zero plan.
func TestChooseDistStrategySingleNode(t *testing.T) {
	c := cluster.Rack10GbE(1)
	p := ChooseDistStrategy(c, join.Stats{BuildRows: 1000, ProbeRows: 4000}, hw.DefaultContext())
	if p.Predicted <= 0 {
		t.Fatalf("single-node plan: %+v", p)
	}
	if p.All[cluster.StrategyShuffle] != p.All[cluster.StrategyBroadcast] {
		t.Fatalf("single node should price both strategies identically (no fabric): %v", p.All)
	}
}
