// Package planner is the keynote's conclusion made executable: "from now
// on, software must be developed paying close attention to the underlying
// hardware" means, operationally, that an engine consults a machine model
// at plan time instead of hard-coding one algorithm. The planner enumerates
// the join variants the engine implements — naive shared-table, group-
// prefetched, Bloom-filtered, radix-partitioned — prices each against the
// machine profile and workload statistics, and executes the winner.
package planner

import (
	"fmt"

	"hwstar/internal/hw"
	"hwstar/internal/join"
)

// JoinVariant names an executable join implementation.
type JoinVariant string

// Variants the planner chooses among.
const (
	VariantNPO      JoinVariant = "npo"
	VariantPrefetch JoinVariant = "npo-gp"
	VariantBloom    JoinVariant = "npo-bloom"
	VariantRadix    JoinVariant = "radix"
)

// Plan is a costed decision.
type Plan struct {
	Variant JoinVariant
	// Predicted is the winning estimate; All holds every variant's cost.
	Predicted float64
	All       map[JoinVariant]float64
}

// ChooseJoin prices every variant for the given statistics on machine m and
// returns the cheapest.
func ChooseJoin(m *hw.Machine, s join.Stats, ctx hw.ExecContext) Plan {
	all := map[JoinVariant]float64{
		VariantNPO:      join.EstimateNPO(m, s, ctx),
		VariantPrefetch: join.EstimateNPOPrefetch(m, s, ctx),
		VariantBloom:    join.EstimateNPOBloom(m, s, ctx),
		VariantRadix:    join.EstimateRadix(m, s, ctx),
	}
	best := VariantNPO
	for v, c := range all {
		if c < all[best] || (c == all[best] && v < best) {
			best = v
		}
	}
	return Plan{Variant: best, Predicted: all[best], All: all}
}

// Execute runs the planned variant on real input, returning the join result
// and the actually-charged cycles for plan-quality evaluation.
func Execute(p Plan, in join.Input, m *hw.Machine, ctx hw.ExecContext) (join.Result, float64, error) {
	acct := hw.NewAccount(m, ctx)
	var res join.Result
	var err error
	switch p.Variant {
	case VariantNPO:
		res, err = join.NPO(in, acct)
	case VariantPrefetch:
		res, err = join.NPOPrefetch(in, acct)
	case VariantBloom:
		res, err = join.NPOBloom(in, acct)
	case VariantRadix:
		res, err = join.Radix(in, join.RadixOptions{}, m, acct)
	default:
		return join.Result{}, 0, fmt.Errorf("planner: unknown variant %q", p.Variant)
	}
	if err != nil {
		return join.Result{}, 0, err
	}
	return res, acct.TotalCycles(), nil
}

// StatsOf derives planning statistics from an input plus an (estimated or
// known) probe miss fraction.
func StatsOf(in join.Input, missFrac float64) join.Stats {
	return join.Stats{
		BuildRows: int64(len(in.BuildKeys)),
		ProbeRows: int64(len(in.ProbeKeys)),
		MissFrac:  missFrac,
	}
}

// Regret evaluates a plan against the true best variant by executing all of
// them on real input: it returns the chosen-over-best cycle ratio (1.0 =
// the planner picked the actual winner).
func Regret(in join.Input, m *hw.Machine, ctx hw.ExecContext, missFrac float64) (Plan, float64, error) {
	p := ChooseJoin(m, StatsOf(in, missFrac), ctx)
	_, chosenCycles, err := Execute(p, in, m, ctx)
	if err != nil {
		return Plan{}, 0, err
	}
	best := chosenCycles
	for _, v := range []JoinVariant{VariantNPO, VariantPrefetch, VariantBloom, VariantRadix} {
		_, c, err := Execute(Plan{Variant: v}, in, m, ctx)
		if err != nil {
			return Plan{}, 0, err
		}
		if c < best {
			best = c
		}
	}
	return p, chosenCycles / best, nil
}
