package planner

import (
	"hwstar/internal/cluster"
	"hwstar/internal/hw"
	"hwstar/internal/join"
)

// DistPlan is a costed distributed-join decision: which movement strategy
// the fabric and the per-node machine model together favour.
type DistPlan struct {
	Strategy cluster.Strategy
	// Predicted is the winning estimate in cycles; All holds every
	// strategy's predicted makespan (network + slowest local join).
	Predicted float64
	All       map[cluster.Strategy]float64
}

// ChooseDistStrategy prices shuffle vs broadcast for a distributed
// equi-join on cluster c: the fabric phase via c's NIC parameters (bytes
// from cluster.PredictBytes spread across the nodes' concurrent
// transfers) plus the slowest node's local radix join via the same
// estimator ChooseJoin uses. This is the keynote's planner obligation
// extended one tier up — the network priced like any other bandwidth
// level, not a heuristic row-count cutoff.
func ChooseDistStrategy(c cluster.Cluster, s join.Stats, ctx hw.ExecContext) DistPlan {
	nodes := c.Nodes
	if nodes < 1 {
		nodes = 1
	}
	shufBytes, bcastBytes := c.PredictBytes(s.BuildRows, s.ProbeRows)

	perNode := func(rows int64) int64 {
		n := rows / int64(nodes)
		if n < 1 && rows > 0 {
			n = 1
		}
		return n
	}
	netCycles := func(bytes int64) float64 {
		if bytes <= 0 || nodes <= 1 {
			return 0
		}
		// Transfers run concurrently; the makespan is the busiest NIC,
		// approximated as an even share of the traffic.
		return c.NetLatencyCycles + float64(bytes)/float64(nodes)/c.NetBytesPerCycle
	}

	shufLocal := join.EstimateRadix(c.Machine, join.Stats{
		BuildRows: perNode(s.BuildRows), ProbeRows: perNode(s.ProbeRows), MissFrac: s.MissFrac,
	}, ctx)
	bcastLocal := join.EstimateRadix(c.Machine, join.Stats{
		BuildRows: s.BuildRows, ProbeRows: perNode(s.ProbeRows), MissFrac: s.MissFrac,
	}, ctx)

	all := map[cluster.Strategy]float64{
		cluster.StrategyShuffle:   netCycles(shufBytes) + shufLocal,
		cluster.StrategyBroadcast: netCycles(bcastBytes) + bcastLocal,
	}
	best := cluster.StrategyShuffle
	if all[cluster.StrategyBroadcast] < all[cluster.StrategyShuffle] {
		best = cluster.StrategyBroadcast
	}
	return DistPlan{Strategy: best, Predicted: all[best], All: all}
}
