package planner

import (
	"testing"

	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/workload"
)

func input(build, probe int, miss float64) join.Input {
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 61, BuildRows: build, ProbeRows: probe, Miss: miss})
	return join.Input{BuildKeys: g.BuildKeys, BuildVals: g.BuildVals, ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals}
}

func TestChooseJoinRegimes(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()

	// Cache-resident build side, all probes match: nothing beats plain NPO.
	small := ChooseJoin(m, join.Stats{BuildRows: 4096, ProbeRows: 16384}, ctx)
	if small.Variant != VariantNPO {
		t.Fatalf("small all-match join: planner picked %s (%v)", small.Variant, small.All)
	}

	// Large build side: the MLP-recovering or partitioned variants must
	// displace naive NPO.
	large := ChooseJoin(m, join.Stats{BuildRows: 1 << 22, ProbeRows: 1 << 23}, ctx)
	if large.Variant == VariantNPO {
		t.Fatalf("large join: planner kept naive NPO (%v)", large.All)
	}

	// Large build + 90% misses: the Bloom variant must win.
	missy := ChooseJoin(m, join.Stats{BuildRows: 1 << 22, ProbeRows: 1 << 23, MissFrac: 0.9}, ctx)
	if missy.Variant != VariantBloom {
		t.Fatalf("miss-heavy join: planner picked %s (%v)", missy.Variant, missy.All)
	}

	if len(large.All) != 4 || large.Predicted != large.All[large.Variant] {
		t.Fatalf("plan bookkeeping wrong: %+v", large)
	}
}

func TestEstimatesMatchExecutedAccounts(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()
	in := input(1<<16, 1<<18, 0.3)
	s := StatsOf(in, 0.3)

	cases := []struct {
		variant  JoinVariant
		estimate float64
	}{
		{VariantNPO, join.EstimateNPO(m, s, ctx)},
		{VariantPrefetch, join.EstimateNPOPrefetch(m, s, ctx)},
		{VariantBloom, join.EstimateNPOBloom(m, s, ctx)},
		{VariantRadix, join.EstimateRadix(m, s, ctx)},
	}
	for _, c := range cases {
		_, actual, err := Execute(Plan{Variant: c.variant}, in, m, ctx)
		if err != nil {
			t.Fatalf("%s: %v", c.variant, err)
		}
		ratio := c.estimate / actual
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("%s: estimate %.0f vs executed %.0f (ratio %.3f)", c.variant, c.estimate, actual, ratio)
		}
	}
}

func TestExecuteVariantsAgree(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()
	in := input(3000, 12000, 0.5)
	var first join.Result
	for i, v := range []JoinVariant{VariantNPO, VariantPrefetch, VariantBloom, VariantRadix} {
		res, cycles, err := Execute(Plan{Variant: v}, in, m, ctx)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if cycles <= 0 {
			t.Fatalf("%s: no cycles charged", v)
		}
		if i == 0 {
			first = res
		} else if res.Matches != first.Matches || res.Checksum != first.Checksum {
			t.Fatalf("%s disagrees with %s", v, VariantNPO)
		}
	}
	if _, _, err := Execute(Plan{Variant: "bogus"}, in, m, ctx); err == nil {
		t.Fatal("unknown variant should fail")
	}
}

func TestRegretNearOne(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()
	grid := []struct {
		build, probe int
		miss         float64
	}{
		{1 << 12, 1 << 14, 0},
		{1 << 16, 1 << 18, 0},
		{1 << 16, 1 << 18, 0.8},
		{1 << 19, 1 << 20, 0.5},
	}
	for _, g := range grid {
		in := input(g.build, g.probe, g.miss)
		plan, regret, err := Regret(in, m, ctx, g.miss)
		if err != nil {
			t.Fatal(err)
		}
		if regret > 1.1 {
			t.Fatalf("build=%d miss=%.1f: planner picked %s with regret %.3f (%v)",
				g.build, g.miss, plan.Variant, regret, plan.All)
		}
	}
}
