// Package cluster extends the machine model one level up the hierarchy the
// keynote says software must now understand: the network. A Cluster is a
// set of identical machines joined by a NIC-bandwidth-limited fabric, and
// the two classic distributed equi-join strategies — shuffle (repartition
// both sides) and broadcast (replicate the build side) — are implemented
// over real, node-partitioned data with the fabric priced like any other
// bandwidth tier.
package cluster

import (
	"context"
	"fmt"
	"math"

	"hwstar/internal/hw"
	"hwstar/internal/join"
)

// Cluster is a rack of identical nodes.
type Cluster struct {
	// Nodes is the machine count.
	Nodes int
	// Machine is the per-node profile (cost model for local work).
	Machine *hw.Machine
	// NetBytesPerCycle is the per-node NIC bandwidth, expressed in bytes
	// per core cycle of the node's machine so network and compute costs
	// share one unit.
	NetBytesPerCycle float64
	// NetLatencyCycles is the per-transfer fixed cost (connection setup,
	// serialization floor). Real fabrics always have one — Rack10GbE models
	// it at 50k cycles — but zero is explicitly valid: it prices an ideal
	// latency-free fabric, the limiting case experiments use to separate
	// bandwidth effects from latency effects. NaN and ±Inf are rejected.
	NetLatencyCycles float64
}

// Validate reports an error for inconsistent clusters. NetBytesPerCycle
// must be a positive finite number. NetLatencyCycles must be finite and
// non-negative; zero is the documented ideal-fabric case (no per-transfer
// floor), not an error — callers modelling a real NIC should start from
// Rack10GbE/Rack40GbE, which always carry a serialization floor.
func (c Cluster) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	}
	if c.Machine == nil {
		return fmt.Errorf("cluster: machine profile required")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.NetBytesPerCycle <= 0 || math.IsNaN(c.NetBytesPerCycle) || math.IsInf(c.NetBytesPerCycle, 0) {
		return fmt.Errorf("cluster: NetBytesPerCycle must be positive and finite, got %v", c.NetBytesPerCycle)
	}
	if c.NetLatencyCycles < 0 || math.IsNaN(c.NetLatencyCycles) || math.IsInf(c.NetLatencyCycles, 0) {
		return fmt.Errorf("cluster: NetLatencyCycles must be finite and >= 0 (0 = ideal latency-free fabric), got %v", c.NetLatencyCycles)
	}
	return nil
}

// Rack10GbE returns an n-node cluster of 2-socket servers on a 10 GbE
// fabric (~1.25 GB/s per NIC ≈ 0.5 B/cycle at 2.4 GHz).
func Rack10GbE(n int) Cluster {
	return Cluster{
		Nodes:            n,
		Machine:          hw.Server2S(),
		NetBytesPerCycle: 0.5,
		NetLatencyCycles: 50_000,
	}
}

// Rack40GbE returns an n-node cluster with a 40 GbE fabric — the "network
// catches up with memory" scenario.
func Rack40GbE(n int) Cluster {
	c := Rack10GbE(n)
	c.NetBytesPerCycle = 2
	return c
}

// Strategy names a distributed join plan.
type Strategy string

// Strategies.
const (
	// StrategyShuffle hash-partitions both relations across nodes; each
	// node joins its partition locally. Network: ~(N-1)/N of both inputs.
	StrategyShuffle Strategy = "shuffle"
	// StrategyBroadcast replicates the build relation to every node; probes
	// never move. Network: (N-1) × build size.
	StrategyBroadcast Strategy = "broadcast"
	// StrategyAuto picks whichever moves fewer bytes.
	StrategyAuto Strategy = "auto"
)

const tupleBytes = 16

// Result is a distributed join outcome.
type Result struct {
	join.Result
	// Strategy is the plan that ran (resolved for StrategyAuto).
	Strategy Strategy
	// NetworkCycles is the fabric time of the busiest node; LocalCycles the
	// local join time of the busiest node; MakespanCycles their sum (the
	// phases barrier-separate).
	NetworkCycles  float64
	LocalCycles    float64
	MakespanCycles float64
	// BytesMoved is total traffic across the fabric.
	BytesMoved int64
}

// hashNode assigns a key to a node.
func hashNode(k int64, nodes int) int {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(nodes))
}

// nodeData is one node's share of a relation.
type nodeData struct {
	keys, vals []int64
}

// distribute splits a relation round-robin across nodes — the initial
// placement before any join runs (as if each node loaded its own chunk).
func distribute(keys, vals []int64, nodes int) []nodeData {
	out := make([]nodeData, nodes)
	for i := range keys {
		n := i % nodes
		out[n].keys = append(out[n].keys, keys[i])
		out[n].vals = append(out[n].vals, vals[i])
	}
	return out
}

// shuffle redistributes node-local data by key hash, returning the new
// per-node data and the bytes each node sent.
func shuffle(data []nodeData, nodes int) ([]nodeData, []int64) {
	out := make([]nodeData, nodes)
	sent := make([]int64, nodes)
	for src, nd := range data {
		for i, k := range nd.keys {
			dst := hashNode(k, nodes)
			out[dst].keys = append(out[dst].keys, k)
			out[dst].vals = append(out[dst].vals, nd.vals[i])
			if dst != src {
				sent[src] += tupleBytes
			}
		}
	}
	return out, sent
}

// PredictBytes returns the fabric traffic each strategy would move for the
// given relation sizes, used by StrategyAuto and by experiments.
func (c Cluster) PredictBytes(buildRows, probeRows int64) (shuffleBytes, broadcastBytes int64) {
	if c.Nodes <= 1 {
		return 0, 0
	}
	frac := float64(c.Nodes-1) / float64(c.Nodes)
	shuffleBytes = int64(frac * float64(buildRows+probeRows) * tupleBytes)
	broadcastBytes = int64(c.Nodes-1) * buildRows * tupleBytes
	return shuffleBytes, broadcastBytes
}

// Join executes the distributed equi-join over the cluster. Input data is
// initially distributed round-robin (node i holds every i-th tuple); the
// strategy decides what moves. All node-local joins are real radix joins;
// the returned matches/checksum are exact. Cancelling ctx stops the join
// between node-local phases and returns ctx.Err().
func (c Cluster) Join(ctx context.Context, in join.Input, strat Strategy) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if strat == StrategyAuto || strat == "" {
		sb, bb := c.PredictBytes(int64(len(in.BuildKeys)), int64(len(in.ProbeKeys)))
		if bb < sb {
			strat = StrategyBroadcast
		} else {
			strat = StrategyShuffle
		}
	}

	build := distribute(in.BuildKeys, in.BuildVals, c.Nodes)
	probe := distribute(in.ProbeKeys, in.ProbeVals, c.Nodes)
	res := Result{Strategy: strat}

	var localBuild, localProbe []nodeData
	sent := make([]int64, c.Nodes)
	switch strat {
	case StrategyShuffle:
		var sentB, sentP []int64
		localBuild, sentB = shuffle(build, c.Nodes)
		localProbe, sentP = shuffle(probe, c.Nodes)
		for i := range sent {
			sent[i] = sentB[i] + sentP[i]
		}
	case StrategyBroadcast:
		// Every node receives the full build side; its own share it already
		// has, the rest arrives over the fabric. Probes stay put.
		full := nodeData{keys: in.BuildKeys, vals: in.BuildVals}
		localBuild = make([]nodeData, c.Nodes)
		for i := range localBuild {
			localBuild[i] = full
			sent[i] = int64(len(in.BuildKeys)-len(build[i].keys)) * tupleBytes
		}
		localProbe = probe
	default:
		return Result{}, fmt.Errorf("cluster: unknown strategy %q", strat)
	}

	// Price the fabric phase: nodes transfer concurrently; the makespan is
	// the busiest NIC. (For broadcast, "sent" counts each node's inbound
	// replica traffic, which is the binding side on a switched fabric.)
	var maxNet float64
	for i := range sent {
		res.BytesMoved += sent[i]
		net := 0.0
		if sent[i] > 0 {
			net = c.NetLatencyCycles + float64(sent[i])/c.NetBytesPerCycle
		}
		if net > maxNet {
			maxNet = net
		}
	}
	res.NetworkCycles = maxNet

	// Local joins run in parallel across nodes; makespan is the slowest
	// node (skew shows up here for shuffle).
	var maxLocal float64
	for n := 0; n < c.Nodes; n++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		acct := hw.NewAccount(c.Machine, hw.DefaultContext())
		localIn := join.Input{
			BuildKeys: localBuild[n].keys, BuildVals: localBuild[n].vals,
			ProbeKeys: localProbe[n].keys, ProbeVals: localProbe[n].vals,
		}
		r, err := join.Radix(localIn, join.RadixOptions{}, c.Machine, acct)
		if err != nil {
			return Result{}, err
		}
		res.Matches += r.Matches
		res.Checksum += r.Checksum
		if acct.TotalCycles() > maxLocal {
			maxLocal = acct.TotalCycles()
		}
	}
	res.LocalCycles = maxLocal
	res.MakespanCycles = res.NetworkCycles + res.LocalCycles
	res.SimCycles = res.MakespanCycles
	return res, nil
}
