package cluster

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hwstar/internal/join"
	"hwstar/internal/workload"
)

func testInput(buildRows, probeRows int) join.Input {
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 21, BuildRows: buildRows, ProbeRows: probeRows})
	return join.Input{BuildKeys: g.BuildKeys, BuildVals: g.BuildVals, ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals}
}

func TestClusterValidate(t *testing.T) {
	if err := Rack10GbE(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Cluster{
		{Nodes: 0},
		{Nodes: 2},
		func() Cluster { c := Rack10GbE(2); c.NetBytesPerCycle = 0; return c }(),
		func() Cluster { c := Rack10GbE(2); c.NetLatencyCycles = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad cluster %d should fail validation", i)
		}
	}
}

func TestValidateZeroLatencyFabric(t *testing.T) {
	// NetLatencyCycles == 0 is the documented ideal-fabric case: valid, and
	// joins over it price pure bandwidth with no per-transfer floor.
	c := Rack10GbE(4)
	c.NetLatencyCycles = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("zero-latency fabric must validate: %v", err)
	}
	in := testInput(2000, 8000)
	ideal, err := c.Join(t.Context(), in, StrategyShuffle)
	if err != nil {
		t.Fatal(err)
	}
	real, err := Rack10GbE(4).Join(t.Context(), in, StrategyShuffle)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.BytesMoved != real.BytesMoved {
		t.Fatalf("latency must not change traffic: %d vs %d", ideal.BytesMoved, real.BytesMoved)
	}
	wantDelta := Rack10GbE(4).NetLatencyCycles
	if got := real.NetworkCycles - ideal.NetworkCycles; got != wantDelta {
		t.Fatalf("network cycles delta = %v, want exactly the serialization floor %v", got, wantDelta)
	}

	// Non-finite network parameters are rejected, not silently priced.
	for i, c := range []Cluster{
		func() Cluster { c := Rack10GbE(2); c.NetLatencyCycles = math.NaN(); return c }(),
		func() Cluster { c := Rack10GbE(2); c.NetLatencyCycles = math.Inf(1); return c }(),
		func() Cluster { c := Rack10GbE(2); c.NetBytesPerCycle = math.NaN(); return c }(),
		func() Cluster { c := Rack10GbE(2); c.NetBytesPerCycle = math.Inf(1); return c }(),
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("non-finite cluster %d should fail validation", i)
		}
	}
}

func TestJoinContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	_, err := Rack10GbE(4).Join(ctx, testInput(100, 100), StrategyShuffle)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join returned %v, want context.Canceled", err)
	}
}

func TestDistributedJoinMatchesLocal(t *testing.T) {
	in := testInput(4000, 16000)
	want, err := join.NPO(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		c := Rack10GbE(nodes)
		for _, strat := range []Strategy{StrategyShuffle, StrategyBroadcast, StrategyAuto} {
			res, err := c.Join(t.Context(), in, strat)
			if err != nil {
				t.Fatalf("%d nodes / %s: %v", nodes, strat, err)
			}
			if res.Matches != want.Matches || res.Checksum != want.Checksum {
				t.Fatalf("%d nodes / %s: %d matches, want %d", nodes, strat, res.Matches, want.Matches)
			}
		}
	}
}

func TestDuplicateKeysAcrossNodes(t *testing.T) {
	in := join.Input{
		BuildKeys: []int64{5, 5, 9, 9, 9},
		BuildVals: []int64{1, 2, 3, 4, 5},
		ProbeKeys: []int64{5, 9, 5, 9, 7},
		ProbeVals: []int64{10, 20, 30, 40, 50},
	}
	want, _ := join.NestedLoop(in, nil)
	c := Rack10GbE(3)
	for _, strat := range []Strategy{StrategyShuffle, StrategyBroadcast} {
		res, err := c.Join(t.Context(), in, strat)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want.Matches || res.Checksum != want.Checksum {
			t.Fatalf("%s: %+v, want %+v", strat, res.Result, want)
		}
	}
}

func TestSingleNodeMovesNothing(t *testing.T) {
	in := testInput(1000, 4000)
	c := Rack10GbE(1)
	res, err := c.Join(t.Context(), in, StrategyShuffle)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMoved != 0 || res.NetworkCycles != 0 {
		t.Fatalf("single node moved %d bytes", res.BytesMoved)
	}
}

func TestPredictBytesShapes(t *testing.T) {
	c := Rack10GbE(8)
	// Tiny build, huge probe: broadcast moves far less.
	sb, bb := c.PredictBytes(1000, 10_000_000)
	if bb >= sb {
		t.Fatalf("small build: broadcast %d should beat shuffle %d", bb, sb)
	}
	// Equal sides: shuffle moves less (broadcast replicates N-1 times).
	sb, bb = c.PredictBytes(5_000_000, 5_000_000)
	if sb >= bb {
		t.Fatalf("equal sides: shuffle %d should beat broadcast %d", sb, bb)
	}
	// One node: nothing moves.
	sb, bb = Rack10GbE(1).PredictBytes(100, 100)
	if sb != 0 || bb != 0 {
		t.Fatal("single node should predict zero traffic")
	}
}

func TestAutoPicksCheaperStrategy(t *testing.T) {
	c := Rack10GbE(8)
	smallBuild := testInput(500, 40000)
	res, err := c.Join(t.Context(), smallBuild, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyBroadcast {
		t.Fatalf("small build should broadcast, picked %s", res.Strategy)
	}
	bigBuild := testInput(40000, 40000)
	res, err = c.Join(t.Context(), bigBuild, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyShuffle {
		t.Fatalf("equal sides should shuffle, picked %s", res.Strategy)
	}
}

func TestActualTrafficMatchesPrediction(t *testing.T) {
	c := Rack10GbE(4)
	in := testInput(8000, 32000)
	res, err := c.Join(t.Context(), in, StrategyShuffle)
	if err != nil {
		t.Fatal(err)
	}
	predicted, _ := c.PredictBytes(8000, 32000)
	// Hash placement vs round-robin start: traffic is ~(N-1)/N of the data,
	// within a few percent of the prediction.
	ratio := float64(res.BytesMoved) / float64(predicted)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("shuffle traffic %d vs predicted %d (ratio %.3f)", res.BytesMoved, predicted, ratio)
	}

	resB, err := c.Join(t.Context(), in, StrategyBroadcast)
	if err != nil {
		t.Fatal(err)
	}
	_, predictedB := c.PredictBytes(8000, 32000)
	if resB.BytesMoved != predictedB {
		t.Fatalf("broadcast traffic %d, predicted %d", resB.BytesMoved, predictedB)
	}
}

func TestFasterFabricShrinksNetworkTime(t *testing.T) {
	in := testInput(20000, 80000)
	slow, err := Rack10GbE(4).Join(t.Context(), in, StrategyShuffle)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Rack40GbE(4).Join(t.Context(), in, StrategyShuffle)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NetworkCycles >= slow.NetworkCycles {
		t.Fatalf("40GbE network time %f should beat 10GbE %f", fast.NetworkCycles, slow.NetworkCycles)
	}
	if fast.Matches != slow.Matches {
		t.Fatal("fabric speed must not change results")
	}
}

func TestJoinErrors(t *testing.T) {
	c := Rack10GbE(2)
	if _, err := c.Join(t.Context(), join.Input{BuildKeys: []int64{1}}, StrategyShuffle); err == nil {
		t.Fatal("invalid input should fail")
	}
	if _, err := c.Join(t.Context(), testInput(10, 10), Strategy("bogus")); err == nil {
		t.Fatal("unknown strategy should fail")
	}
	bad := Cluster{Nodes: 0}
	if _, err := bad.Join(t.Context(), testInput(10, 10), StrategyShuffle); err == nil {
		t.Fatal("invalid cluster should fail")
	}
}

// Property: both strategies agree with the single-machine reference on
// arbitrary inputs and node counts.
func TestDistributedEquivalenceProperty(t *testing.T) {
	f := func(buildRaw, probeRaw []uint8, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%6 + 1
		in := join.Input{
			BuildKeys: make([]int64, len(buildRaw)),
			BuildVals: make([]int64, len(buildRaw)),
			ProbeKeys: make([]int64, len(probeRaw)),
			ProbeVals: make([]int64, len(probeRaw)),
		}
		for i, b := range buildRaw {
			in.BuildKeys[i] = int64(b % 24)
			in.BuildVals[i] = int64(i)
		}
		for i, p := range probeRaw {
			in.ProbeKeys[i] = int64(p % 32)
			in.ProbeVals[i] = int64(i * 3)
		}
		want, err := join.NestedLoop(in, nil)
		if err != nil {
			return false
		}
		c := Rack10GbE(nodes)
		for _, strat := range []Strategy{StrategyShuffle, StrategyBroadcast} {
			got, err := c.Join(t.Context(), in, strat)
			if err != nil || got.Matches != want.Matches || got.Checksum != want.Checksum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
