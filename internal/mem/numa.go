package mem

import (
	"fmt"

	"hwstar/internal/hw"
)

// Policy selects how a region's pages are distributed over NUMA nodes.
type Policy int

const (
	// PolicyLocal binds every page to the allocating socket — the placement
	// a NUMA-aware engine strives for.
	PolicyLocal Policy = iota
	// PolicyInterleave spreads pages round-robin over all nodes — the OS
	// default many systems fall back to, trading latency for balance.
	PolicyInterleave
	// PolicyRemote binds every page to one node that is not the reader's —
	// the pathological placement a NUMA-oblivious engine can stumble into.
	PolicyRemote
	// PolicyFirstTouch binds pages to whichever socket first touches them;
	// in this model it resolves to the node passed at placement time, like
	// PolicyLocal, but is tracked separately because a first-touch region
	// read by a different socket later is the classic NUMA trap.
	PolicyFirstTouch
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLocal:
		return "local"
	case PolicyInterleave:
		return "interleave"
	case PolicyRemote:
		return "remote"
	case PolicyFirstTouch:
		return "first-touch"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Placement records how many bytes of a region live on each NUMA node.
type Placement struct {
	// PerNode[i] is the number of bytes resident on node i.
	PerNode []int64
}

// TotalBytes returns the region size.
func (p Placement) TotalBytes() int64 {
	var t int64
	for _, b := range p.PerNode {
		t += b
	}
	return t
}

// LocalRemote splits the region into bytes local to readerNode and bytes on
// other nodes.
func (p Placement) LocalRemote(readerNode int) (local, remote int64) {
	for node, b := range p.PerNode {
		if node == readerNode {
			local += b
		} else {
			remote += b
		}
	}
	return local, remote
}

// LocalFraction returns the fraction of the region local to readerNode,
// or 1 for an empty region.
func (p Placement) LocalFraction(readerNode int) float64 {
	local, remote := p.LocalRemote(readerNode)
	total := local + remote
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// NUMAAllocator produces Placements on a given machine according to a policy.
// It also tracks per-node occupancy so experiments can report balance.
type NUMAAllocator struct {
	machine *hw.Machine
	policy  Policy
	perNode []int64
	nextRR  int
}

// NewNUMAAllocator returns an allocator for machine m using policy p.
func NewNUMAAllocator(m *hw.Machine, p Policy) *NUMAAllocator {
	return &NUMAAllocator{machine: m, policy: p, perNode: make([]int64, m.Sockets)}
}

// Policy returns the allocator's policy.
func (na *NUMAAllocator) Policy() Policy { return na.policy }

// Place assigns bytes for a region allocated by code running on
// allocatingNode and returns the resulting placement. allocatingNode is
// clamped into range.
func (na *NUMAAllocator) Place(bytes int64, allocatingNode int) Placement {
	if bytes < 0 {
		panic(fmt.Sprintf("mem: Place(%d): negative size", bytes))
	}
	n := na.machine.Sockets
	if allocatingNode < 0 {
		allocatingNode = 0
	}
	if allocatingNode >= n {
		allocatingNode = n - 1
	}
	per := make([]int64, n)
	switch na.policy {
	case PolicyLocal, PolicyFirstTouch:
		per[allocatingNode] = bytes
	case PolicyInterleave:
		base := bytes / int64(n)
		rem := bytes % int64(n)
		for i := 0; i < n; i++ {
			per[i] = base
		}
		// Distribute the remainder round-robin starting at a rotating node
		// so repeated small placements stay balanced.
		for i := int64(0); i < rem; i++ {
			per[(na.nextRR+int(i))%n]++
		}
		na.nextRR = (na.nextRR + int(rem)) % n
	case PolicyRemote:
		target := (allocatingNode + 1) % n
		per[target] = bytes
	default:
		panic(fmt.Sprintf("mem: unknown policy %d", int(na.policy)))
	}
	for i, b := range per {
		na.perNode[i] += b
	}
	return Placement{PerNode: per}
}

// NodeOccupancy returns a copy of cumulative bytes placed per node.
func (na *NUMAAllocator) NodeOccupancy() []int64 {
	out := make([]int64, len(na.perNode))
	copy(out, na.perNode)
	return out
}

// Imbalance returns (max-min)/total occupancy across nodes, or 0 when nothing
// has been placed. Perfectly balanced placement yields 0.
func (na *NUMAAllocator) Imbalance() float64 {
	var total, minB, maxB int64
	minB = -1
	for _, b := range na.perNode {
		total += b
		if minB < 0 || b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxB-minB) / float64(total)
}

// ReadWork converts reading a placed region sequentially from readerNode into
// a hw.Work description: local bytes stream at socket bandwidth, remote bytes
// cross the interconnect.
func ReadWork(name string, p Placement, readerNode int) hw.Work {
	local, remote := p.LocalRemote(readerNode)
	return hw.Work{Name: name, SeqReadBytes: local, RemoteSeqBytes: remote}
}

// RandomReadWork converts n random reads against a placed region from
// readerNode into hw.Work: accesses split between local and remote in
// proportion to the placement, with the full region as working set.
func RandomReadWork(name string, p Placement, readerNode int, reads int64) hw.Work {
	frac := p.LocalFraction(readerNode)
	localReads := int64(frac * float64(reads))
	return hw.Work{
		Name:              name,
		RandomReads:       localReads,
		RemoteRandomReads: reads - localReads,
		RandomWS:          p.TotalBytes(),
	}
}
