package mem

import "testing"

func TestArenaBigAllocGetsDedicatedChunk(t *testing.T) {
	a := NewArena(64)
	small := a.Alloc(10)
	big := a.Alloc(500) // larger than the chunk size: dedicated chunk
	if len(big) != 500 {
		t.Fatalf("big len = %d", len(big))
	}
	if a.AllocatedBytes() != 510 {
		t.Fatalf("allocated = %d, want 510", a.AllocatedBytes())
	}
	if a.FootprintBytes() != 64+500 {
		t.Fatalf("footprint = %d, want one standard + one dedicated chunk", a.FootprintBytes())
	}
	// The bump cursor must survive the big detour: the next small allocation
	// comes from the original chunk, not a fresh one.
	small2 := a.Alloc(10)
	if len(small2) != 10 || a.FootprintBytes() != 64+500 {
		t.Fatalf("small alloc after big grew footprint to %d", a.FootprintBytes())
	}
	_ = small
}

func TestArenaZeroSizeAlloc(t *testing.T) {
	a := NewArena(64)
	s := a.Alloc(0)
	if len(s) != 0 {
		t.Fatalf("len = %d", len(s))
	}
	if a.AllocatedBytes() != 0 {
		t.Fatalf("allocated = %d, want 0", a.AllocatedBytes())
	}
}

func TestArenaResetReusesChunks(t *testing.T) {
	a := NewArena(128)
	a.Alloc(100)
	a.Alloc(100) // second standard chunk
	a.Alloc(400) // dedicated big chunk
	if a.FootprintBytes() != 128*2+400 {
		t.Fatalf("footprint = %d", a.FootprintBytes())
	}
	a.Reset()
	if a.AllocatedBytes() != 0 {
		t.Fatalf("allocated after reset = %d", a.AllocatedBytes())
	}
	// Standard chunks are retained for reuse; the big chunk is dropped.
	if a.FootprintBytes() != 128*2 {
		t.Fatalf("footprint after reset = %d, want 256 (retained chunks only)", a.FootprintBytes())
	}
	// Allocating again consumes the free list instead of growing.
	a.Alloc(100)
	a.Alloc(100)
	if a.FootprintBytes() != 128*2 {
		t.Fatalf("footprint after reuse = %d, want 256 (no new chunks)", a.FootprintBytes())
	}
	if a.AllocatedBytes() != 200 {
		t.Fatalf("allocated after reuse = %d", a.AllocatedBytes())
	}
}

func TestArenaResetZeroesReusedChunks(t *testing.T) {
	a := NewArena(64)
	s := a.Alloc(64)
	for i := range s {
		s[i] = 0xFF
	}
	a.Reset()
	s2 := a.Alloc(64)
	for i, b := range s2 {
		if b != 0 {
			t.Fatalf("reused chunk not zeroed at %d", i)
		}
	}
}

func TestArenaReleaseAfterReset(t *testing.T) {
	a := NewArena(64)
	a.Alloc(10)
	a.Reset()
	a.Release()
	if a.AllocatedBytes() != 0 || a.FootprintBytes() != 0 {
		t.Fatalf("release should drop retained chunks: allocated=%d footprint=%d",
			a.AllocatedBytes(), a.FootprintBytes())
	}
	if s := a.Alloc(5); len(s) != 5 {
		t.Fatal("arena should be reusable after release")
	}
}

func TestTypedArenaReset(t *testing.T) {
	a := NewTypedArena[int64](8)
	s := a.Alloc(4)
	s[0], s[3] = 7, 9
	a.Reset()
	if a.AllocatedElems() != 0 {
		t.Fatalf("allocated after reset = %d", a.AllocatedElems())
	}
	s2 := a.Alloc(4)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused prefix not zeroed at %d: %d", i, v)
		}
	}
}
