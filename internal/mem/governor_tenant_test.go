package mem

import (
	"errors"
	"testing"

	"hwstar/internal/errs"
)

// TestTenantCapDeniesAdmission pins the tenant-cap admission rule: a tenant
// at its cap is refused with ErrMemoryPressure even while the global budget
// has headroom, and the denial is attributed to the tenant in Stats.
func TestTenantCapDeniesAdmission(t *testing.T) {
	g := NewGovernor(Config{
		BudgetBytes:   1000,
		PerQueryBytes: 200,
		TenantCaps:    map[string]int64{"noisy": 300},
	})
	r1, err := g.ReserveFor("noisy", 200)
	if err != nil {
		t.Fatalf("first reservation within cap: %v", err)
	}
	if _, err := g.ReserveFor("noisy", 200); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("over-cap reservation error = %v, want ErrMemoryPressure", err)
	}
	// The global budget still has 800 free: another tenant is unaffected.
	r2, err := g.ReserveFor("quiet", 200)
	if err != nil {
		t.Fatalf("other tenant blocked by noisy's cap: %v", err)
	}
	s := g.Stats()
	if s.TenantInUse["noisy"] != 200 || s.TenantInUse["quiet"] != 200 {
		t.Fatalf("TenantInUse = %v", s.TenantInUse)
	}
	if s.TenantDenied["noisy"] != 1 {
		t.Fatalf("TenantDenied = %v, want noisy:1", s.TenantDenied)
	}
	if s.TenantCaps["noisy"] != 300 {
		t.Fatalf("TenantCaps = %v", s.TenantCaps)
	}
	if s.AdmissionDenied != 1 {
		t.Fatalf("AdmissionDenied = %d, want 1", s.AdmissionDenied)
	}
	r1.Release()
	r2.Release()
	if s := g.Stats(); len(s.TenantInUse) != 0 {
		t.Fatalf("TenantInUse after release = %v, want empty", s.TenantInUse)
	}
}

// TestTenantCapDeniesGrow pins the grow path: a charge that would push the
// tenant past its cap is denied (the spill trigger), counted both globally
// and per tenant.
func TestTenantCapDeniesGrow(t *testing.T) {
	g := NewGovernor(Config{
		BudgetBytes:   1000,
		PerQueryBytes: 100,
		TenantCaps:    map[string]int64{"noisy": 150},
	})
	r, err := g.ReserveFor("noisy", 100)
	if err != nil {
		t.Fatal(err)
	}
	// Within grant: no grow needed.
	if err := r.Charge("agg-table", 0, 100); err != nil {
		t.Fatalf("charge within grant: %v", err)
	}
	// Grow past the tenant cap (150) but well under the budget (1000).
	if err := r.Charge("agg-table", 0, 100); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("over-cap grow error = %v, want ErrMemoryPressure", err)
	}
	s := g.Stats()
	if s.Denied != 1 || s.TenantDenied["noisy"] != 1 {
		t.Fatalf("Denied=%d TenantDenied=%v, want 1 and noisy:1", s.Denied, s.TenantDenied)
	}
	r.Release()
}

// TestTenantCapBoundsAvailable pins spill sizing: Available() reports the
// tenant's headroom when it is tighter than the global budget's.
func TestTenantCapBoundsAvailable(t *testing.T) {
	g := NewGovernor(Config{
		BudgetBytes:   1000,
		PerQueryBytes: 100,
		TenantCaps:    map[string]int64{"noisy": 300},
	})
	r, err := g.ReserveFor("noisy", 100)
	if err != nil {
		t.Fatal(err)
	}
	// Unused grant 100 + tenant headroom (300-100=200, tighter than the
	// global 1000-100=900).
	if got := r.Available(); got != 300 {
		t.Fatalf("Available = %d, want grant slack + tenant headroom = 300", got)
	}
	// An uncapped tenant sees global headroom.
	r2, err := g.ReserveFor("quiet", 100)
	if err != nil {
		t.Fatal(err)
	}
	// Unused grant 100 + global headroom 1000-200=800.
	if got := r2.Available(); got != 900 {
		t.Fatalf("uncapped Available = %d, want grant slack + global headroom = 900", got)
	}
	r.Release()
	r2.Release()
}

// TestSetTenantCapLiveUpdate pins SetTenantCap: caps apply to the next
// reservation, and bytes <= 0 removes the cap.
func TestSetTenantCapLiveUpdate(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1000, PerQueryBytes: 100})
	g.SetTenantCap("t", 100)
	if _, err := g.ReserveFor("t", 200); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("capped reserve error = %v, want ErrMemoryPressure", err)
	}
	g.SetTenantCap("t", 0) // uncap
	r, err := g.ReserveFor("t", 200)
	if err != nil {
		t.Fatalf("uncapped reserve: %v", err)
	}
	r.Release()
	// Nil receiver and empty tenant are no-ops, not panics.
	var nilG *Governor
	nilG.SetTenantCap("t", 100)
	g.SetTenantCap("", 100)
}

// TestKillOnOverageIgnoresTenantCaps pins the naive-mode contract: the
// ungoverned engine has no governance at all, so tenant caps do not apply.
func TestKillOnOverageIgnoresTenantCaps(t *testing.T) {
	g := NewGovernor(Config{
		BudgetBytes:   1000,
		PerQueryBytes: 100,
		KillOnOverage: true,
		TenantCaps:    map[string]int64{"noisy": 50},
	})
	r, err := g.ReserveFor("noisy", 400)
	if err != nil {
		t.Fatalf("naive mode must grant past the tenant cap: %v", err)
	}
	if err := r.Charge("join-build", 0, 300); err != nil {
		t.Fatalf("naive charge under budget: %v", err)
	}
	// The global budget still kills once usage passes it.
	if err := r.Charge("join-build", 0, 800); !errors.Is(err, errs.ErrOOMKilled) {
		t.Fatalf("over-budget naive charge = %v, want ErrOOMKilled", err)
	}
	r.Release()
}

// TestReserveForUnlabelled pins that Reserve and ReserveFor("") are the same
// path and carry no tenant dimension.
func TestReserveForUnlabelled(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1000, PerQueryBytes: 100})
	r, err := g.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if s := g.Stats(); s.TenantInUse != nil {
		t.Fatalf("unlabelled reservation grew a tenant dimension: %v", s.TenantInUse)
	}
}
