package mem

import (
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
)

func TestArenaAlloc(t *testing.T) {
	a := NewArena(128)
	s1 := a.Alloc(10)
	s2 := a.Alloc(20)
	if len(s1) != 10 || len(s2) != 20 {
		t.Fatalf("lengths = %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		s1[i] = 0xAA
	}
	for _, b := range s2 {
		if b != 0 {
			t.Fatal("allocations must not overlap or alias")
		}
	}
	if a.AllocatedBytes() != 30 {
		t.Fatalf("allocated = %d, want 30", a.AllocatedBytes())
	}
}

func TestArenaLargeAllocation(t *testing.T) {
	a := NewArena(64)
	big := a.Alloc(1000)
	if len(big) != 1000 {
		t.Fatalf("len = %d", len(big))
	}
	if a.FootprintBytes() < 1000 {
		t.Fatalf("footprint = %d", a.FootprintBytes())
	}
}

func TestArenaChunkRollover(t *testing.T) {
	a := NewArena(100)
	a.Alloc(60)
	a.Alloc(60) // does not fit the first chunk
	if a.FootprintBytes() != 200 {
		t.Fatalf("footprint = %d, want 200 (two chunks)", a.FootprintBytes())
	}
}

func TestArenaRelease(t *testing.T) {
	a := NewArena(0) // default chunk size
	a.Alloc(10)
	a.Release()
	if a.AllocatedBytes() != 0 || a.FootprintBytes() != 0 {
		t.Fatal("release should zero accounting")
	}
	if s := a.Alloc(5); len(s) != 5 {
		t.Fatal("arena should be reusable after release")
	}
}

func TestArenaNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Alloc should panic")
		}
	}()
	NewArena(0).Alloc(-1)
}

func TestArenaSlicesDoNotGrowIntoEachOther(t *testing.T) {
	a := NewArena(1024)
	s1 := a.Alloc(8)
	s2 := a.Alloc(8)
	s1 = append(s1, 1) // must reallocate due to capped capacity, not clobber s2
	for _, b := range s2 {
		if b != 0 {
			t.Fatal("append to earlier slice clobbered later allocation")
		}
	}
	_ = s1
}

func TestTypedArena(t *testing.T) {
	a := NewTypedArena[int64](16)
	s := a.Alloc(10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	big := a.Alloc(100)
	if len(big) != 100 {
		t.Fatalf("big len = %d", len(big))
	}
	if a.AllocatedElems() != 110 {
		t.Fatalf("allocated = %d", a.AllocatedElems())
	}
	a.Release()
	if a.AllocatedElems() != 0 {
		t.Fatal("release should zero accounting")
	}
}

func TestTypedArenaZeroed(t *testing.T) {
	a := NewTypedArena[uint32](8)
	s1 := a.Alloc(4)
	for i := range s1 {
		s1[i] = 7
	}
	s2 := a.Alloc(4)
	for _, v := range s2 {
		if v != 0 {
			t.Fatal("fresh allocation must be zeroed")
		}
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		PolicyLocal:      "local",
		PolicyInterleave: "interleave",
		PolicyRemote:     "remote",
		PolicyFirstTouch: "first-touch",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestPlacementLocal(t *testing.T) {
	m := hw.NUMA4S()
	na := NewNUMAAllocator(m, PolicyLocal)
	p := na.Place(1000, 2)
	if p.TotalBytes() != 1000 {
		t.Fatalf("total = %d", p.TotalBytes())
	}
	local, remote := p.LocalRemote(2)
	if local != 1000 || remote != 0 {
		t.Fatalf("local/remote = %d/%d", local, remote)
	}
	if f := p.LocalFraction(0); f != 0 {
		t.Fatalf("fraction from node 0 = %f, want 0", f)
	}
}

func TestPlacementInterleave(t *testing.T) {
	m := hw.NUMA4S()
	na := NewNUMAAllocator(m, PolicyInterleave)
	p := na.Place(1001, 0)
	if p.TotalBytes() != 1001 {
		t.Fatalf("total = %d", p.TotalBytes())
	}
	// Every node gets 250, one gets the extra byte.
	var extras int
	for _, b := range p.PerNode {
		switch b {
		case 250:
		case 251:
			extras++
		default:
			t.Fatalf("unexpected per-node bytes %d", b)
		}
	}
	if extras != 1 {
		t.Fatalf("extras = %d, want 1", extras)
	}
	if f := p.LocalFraction(1); f < 0.24 || f > 0.26 {
		t.Fatalf("interleaved local fraction = %f, want ~0.25", f)
	}
}

func TestPlacementRemote(t *testing.T) {
	m := hw.Server2S()
	na := NewNUMAAllocator(m, PolicyRemote)
	p := na.Place(500, 0)
	local, remote := p.LocalRemote(0)
	if local != 0 || remote != 500 {
		t.Fatalf("remote policy: local/remote = %d/%d", local, remote)
	}
}

func TestPlacementFirstTouch(t *testing.T) {
	m := hw.Server2S()
	na := NewNUMAAllocator(m, PolicyFirstTouch)
	p := na.Place(100, 1)
	if p.PerNode[1] != 100 {
		t.Fatalf("first-touch should bind to toucher: %v", p.PerNode)
	}
}

func TestPlaceClampsNode(t *testing.T) {
	m := hw.Server2S()
	na := NewNUMAAllocator(m, PolicyLocal)
	p := na.Place(10, 99)
	if p.PerNode[m.Sockets-1] != 10 {
		t.Fatalf("out-of-range node should clamp: %v", p.PerNode)
	}
	p = na.Place(10, -5)
	if p.PerNode[0] != 10 {
		t.Fatalf("negative node should clamp to 0: %v", p.PerNode)
	}
}

func TestOccupancyAndImbalance(t *testing.T) {
	m := hw.Server2S()
	local := NewNUMAAllocator(m, PolicyLocal)
	local.Place(100, 0)
	local.Place(100, 0)
	if imb := local.Imbalance(); imb != 1 {
		t.Fatalf("all-on-one-node imbalance = %f, want 1", imb)
	}
	inter := NewNUMAAllocator(m, PolicyInterleave)
	inter.Place(100, 0)
	if imb := inter.Imbalance(); imb != 0 {
		t.Fatalf("interleave imbalance = %f, want 0", imb)
	}
	occ := inter.NodeOccupancy()
	if occ[0] != 50 || occ[1] != 50 {
		t.Fatalf("occupancy = %v", occ)
	}
	empty := NewNUMAAllocator(m, PolicyLocal)
	if empty.Imbalance() != 0 {
		t.Fatal("empty allocator imbalance should be 0")
	}
}

func TestReadWorkConversion(t *testing.T) {
	m := hw.NUMA4S()
	na := NewNUMAAllocator(m, PolicyInterleave)
	p := na.Place(4000, 0)
	w := ReadWork("scan", p, 0)
	if w.SeqReadBytes != 1000 || w.RemoteSeqBytes != 3000 {
		t.Fatalf("read work = %+v", w)
	}
}

func TestRandomReadWorkConversion(t *testing.T) {
	m := hw.Server2S()
	na := NewNUMAAllocator(m, PolicyLocal)
	p := na.Place(1<<20, 1)
	w := RandomReadWork("probe", p, 1, 1000)
	if w.RandomReads != 1000 || w.RemoteRandomReads != 0 {
		t.Fatalf("local probe work = %+v", w)
	}
	w = RandomReadWork("probe", p, 0, 1000)
	if w.RandomReads != 0 || w.RemoteRandomReads != 1000 {
		t.Fatalf("remote probe work = %+v", w)
	}
	if w.RandomWS != 1<<20 {
		t.Fatalf("working set = %d", w.RandomWS)
	}
}

// Property: placement conserves bytes and never assigns negative amounts,
// for any policy and any node.
func TestPlacementConservationProperty(t *testing.T) {
	m := hw.NUMA4S()
	f := func(bytes uint32, node uint8, polRaw uint8) bool {
		pol := Policy(int(polRaw) % 4)
		na := NewNUMAAllocator(m, pol)
		p := na.Place(int64(bytes), int(node)%8)
		if p.TotalBytes() != int64(bytes) {
			return false
		}
		for _, b := range p.PerNode {
			if b < 0 {
				return false
			}
		}
		local, remote := p.LocalRemote(0)
		return local+remote == int64(bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated interleaved placements stay balanced within one byte per
// node times the number of placements.
func TestInterleaveBalanceProperty(t *testing.T) {
	m := hw.NUMA4S()
	f := func(sizes []uint16) bool {
		na := NewNUMAAllocator(m, PolicyInterleave)
		for _, s := range sizes {
			na.Place(int64(s), 0)
		}
		occ := na.NodeOccupancy()
		var minB, maxB int64 = 1 << 62, 0
		for _, b := range occ {
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
		}
		return maxB-minB <= int64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
