package mem

import (
	"errors"
	"sync"
	"testing"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
)

func TestNilGovernorGrantsEverything(t *testing.T) {
	var g *Governor
	r, err := g.Reserve(1 << 40)
	if err != nil || r != nil {
		t.Fatalf("nil governor Reserve = %v, %v; want nil, nil", r, err)
	}
	if err := r.Charge("anywhere", 0, 1<<40); err != nil {
		t.Fatalf("nil reservation Charge = %v", err)
	}
	if a := r.Available(); a < 1<<61 {
		t.Fatalf("nil reservation Available = %d, want unbounded", a)
	}
	r.Uncharge(1)
	r.NoteSpill(1)
	r.Release()
	if s := g.Stats(); s.BudgetBytes != 0 || s.InUseBytes != 0 || s.Reservations != 0 || s.TenantInUse != nil {
		t.Fatalf("nil governor Stats = %+v, want zero", s)
	}
}

func TestReserveDefaultsAndAdmissionDenial(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1000})
	if pq := g.PerQuery(); pq != 250 {
		t.Fatalf("PerQuery = %d, want BudgetBytes/4 = 250", pq)
	}
	var resvs []*Reservation
	for i := 0; i < 4; i++ {
		r, err := g.Reserve(0)
		if err != nil {
			t.Fatalf("reservation %d: %v", i, err)
		}
		resvs = append(resvs, r)
	}
	if _, err := g.Reserve(0); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("5th reservation err = %v, want ErrMemoryPressure", err)
	}
	s := g.Stats()
	if s.InUseBytes != 1000 || s.Reservations != 4 || s.AdmissionDenied != 1 {
		t.Fatalf("stats = %+v", s)
	}
	resvs[0].Release()
	if r, err := g.Reserve(0); err != nil || r == nil {
		t.Fatalf("reserve after release = %v, %v", r, err)
	}
}

func TestChargeGrowsGrantAndDenies(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1000, PerQueryBytes: 100})
	r, err := g.Reserve(0)
	if err != nil {
		t.Fatal(err)
	}
	// Within the grant: no governor growth.
	if err := r.Charge("site", 0, 100); err != nil {
		t.Fatal(err)
	}
	// Beyond the grant: grows against the governor.
	if err := r.Charge("site", 0, 400); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().InUseBytes; got != 500 {
		t.Fatalf("in use = %d, want 500", got)
	}
	// Beyond the budget: denied, accounting untouched.
	if err := r.Charge("site", 0, 600); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("over-budget charge err = %v, want ErrMemoryPressure", err)
	}
	if r.UsedBytes() != 500 || g.Stats().InUseBytes != 500 {
		t.Fatalf("denial mutated accounting: used=%d inUse=%d", r.UsedBytes(), g.Stats().InUseBytes)
	}
	if g.Stats().Denied != 1 {
		t.Fatalf("Denied = %d, want 1", g.Stats().Denied)
	}
	// Uncharge frees reservation headroom but keeps the grant.
	r.Uncharge(500)
	if r.UsedBytes() != 0 || g.Stats().InUseBytes != 500 {
		t.Fatalf("after uncharge: used=%d inUse=%d", r.UsedBytes(), g.Stats().InUseBytes)
	}
	if r.PeakBytes() != 500 {
		t.Fatalf("peak = %d, want 500", r.PeakBytes())
	}
	r.Release()
	if g.Stats().InUseBytes != 0 || g.Stats().Reservations != 0 {
		t.Fatalf("after release: %+v", g.Stats())
	}
	// Charges after release fail rather than leak.
	if err := r.Charge("site", 0, 1); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("post-release charge err = %v", err)
	}
	r.Release() // idempotent
}

func TestKillOnOverageGrantsThenKills(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1000, KillOnOverage: true})
	// Naive mode admits everything, even over budget.
	r, err := g.Reserve(900)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Reserve(900)
	if err != nil {
		t.Fatalf("naive admission refused: %v", err)
	}
	// The grant already oversubscribes; the next growing charge dies.
	err = r2.Charge("big-table", 0, 950)
	if !errors.Is(err, errs.ErrOOMKilled) {
		t.Fatalf("overage charge err = %v, want ErrOOMKilled", err)
	}
	if errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatal("an OOM kill must not look retryable")
	}
	s := g.Stats()
	if s.OOMKills != 1 {
		t.Fatalf("OOMKills = %d, want 1", s.OOMKills)
	}
	if s.InUseBytes <= s.BudgetBytes {
		t.Fatalf("naive usage should exceed budget: %+v", s)
	}
	r.Release()
	r2.Release()
}

func TestAvailableTracksBudgetHeadroom(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1000, PerQueryBytes: 400})
	r, _ := g.Reserve(0)
	if a := r.Available(); a != 1000 { // 400 unused grant + 600 free
		t.Fatalf("Available = %d, want 1000", a)
	}
	if err := r.Charge("site", 0, 300); err != nil {
		t.Fatal(err)
	}
	if a := r.Available(); a != 700 { // 100 unused + 600 free
		t.Fatalf("Available = %d, want 700", a)
	}
	// Unlimited governor: effectively unbounded.
	gu := NewGovernor(Config{})
	ru, _ := gu.Reserve(0)
	if a := ru.Available(); a < 1<<61 {
		t.Fatalf("unlimited Available = %d", a)
	}
}

func TestAllocFaultInjectionDeniesWithoutAccounting(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, AllocFailSites: map[string]float64{"join-build": 1}})
	g := NewGovernor(Config{BudgetBytes: 1 << 20, Faults: inj})
	r, err := g.Reserve(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Charge("join-build", 3, 100); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("injected charge err = %v, want ErrMemoryPressure", err)
	}
	if r.UsedBytes() != 0 {
		t.Fatalf("injected denial accounted bytes: %d", r.UsedBytes())
	}
	// The shielded site is untouched.
	if err := r.Charge("agg-table", 3, 100); err != nil {
		t.Fatalf("uninjected site failed: %v", err)
	}
	evs := inj.Log()
	if len(evs) != 1 || evs[0].Class != fault.ClassAllocFail || evs[0].Site != "join-build" || evs[0].Worker != 3 {
		t.Fatalf("fault log = %+v", evs)
	}
}

func TestGovernorConcurrentChargesBalance(t *testing.T) {
	g := NewGovernor(Config{BudgetBytes: 1 << 30, PerQueryBytes: 1 << 10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.Reserve(0)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 1000; j++ {
				if err := r.Charge("chaos", 0, 4096); err != nil {
					t.Error(err)
					return
				}
				r.Uncharge(4096)
			}
			r.Release()
		}()
	}
	wg.Wait()
	s := g.Stats()
	if s.InUseBytes != 0 || s.Reservations != 0 {
		t.Fatalf("leaked accounting: %+v", s)
	}
	if s.PeakBytes <= 0 {
		t.Fatalf("peak never moved: %+v", s)
	}
}

func TestSpillFanout(t *testing.T) {
	cases := []struct {
		table, avail int64
		workers      int
		want         int
	}{
		{1 << 20, 1 << 19, 1, 2},       // halving fits exactly
		{1 << 20, (1 << 19) - 1, 1, 4}, // halving is one byte short: quarter
		{1 << 20, 1 << 20, 1, 2},       // smallest fanout that fits
		{1 << 20, 1 << 10, 1, 1024},    // deep split still fits
		{1 << 30, 16, 1, 0},            // unspillable: nothing fits
		{0, 1, 1, 2},                   // empty table fits trivially
		{1 << 20, 1 << 19, 4, 8},       // concurrent workers need smaller parts
		{1 << 20, 0, 1, 0},             // no headroom at all
		{1 << 20, 1 << 19, 0, 0},       // no workers
	}
	for _, c := range cases {
		if got := SpillFanout(c.table, c.avail, c.workers); got != c.want {
			t.Errorf("SpillFanout(%d, %d, %d) = %d, want %d", c.table, c.avail, c.workers, got, c.want)
		}
	}
}
