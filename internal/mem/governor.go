package mem

import (
	"fmt"
	"sync"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
)

// Config arms a Governor. The zero value disables governance entirely: a
// Governor built from it grants every request without accounting, which keeps
// ungoverned code paths (the plain Engine facade, unit tests) free of
// conditionals.
type Config struct {
	// BudgetBytes is the server-wide byte budget the governor enforces. 0
	// disables budgeting (every reservation and charge is granted).
	BudgetBytes int64
	// PerQueryBytes is the default reservation granted to one query at
	// admission. 0 defaults to BudgetBytes/4 so at least a few queries can
	// run concurrently before admission pushes back.
	PerQueryBytes int64
	// KillOnOverage switches the governor into "naive engine" mode: every
	// reservation is granted and charges are never denied, but the first
	// charge that pushes total usage past BudgetBytes returns a fatal
	// errs.ErrOOMKilled — the simulated OOM kill an ungoverned engine
	// suffers. E22 uses this as the baseline against governed spill.
	KillOnOverage bool
	// Faults, when armed with a positive AllocFailProb (or AllocFailSites),
	// injects allocation failures into Charge: a charge fails with
	// errs.ErrMemoryPressure before any bytes are accounted.
	Faults *fault.Injector

	// TenantCaps caps individual tenants' shares of the budget: a
	// reservation made through ReserveFor fails with errs.ErrMemoryPressure
	// once that tenant's in-use bytes would pass its cap, even while the
	// global budget has headroom — one noisy tenant cannot drain the pool.
	// Tenants absent from the map are bounded only by the global budget.
	TenantCaps map[string]int64
}

// Stats is a point-in-time snapshot of a governor, exported through
// serve.Health and the metrics registry.
type Stats struct {
	// BudgetBytes and InUseBytes describe the current budget position.
	BudgetBytes int64
	InUseBytes  int64
	// PeakBytes is the high-water mark of InUseBytes over the governor's
	// lifetime.
	PeakBytes int64
	// Reservations is the number of live reservations.
	Reservations int
	// Denied counts reservation grows refused for lack of budget (spill
	// triggers); AdmissionDenied counts whole-query reservations refused at
	// admission (sheds); OOMKills counts simulated kills (KillOnOverage
	// mode only).
	Denied          int64
	AdmissionDenied int64
	OOMKills        int64

	// TenantCaps, TenantInUse, and TenantDenied break the budget position
	// down by tenant for every tenant with a cap or live usage. Nil when the
	// governor carries no tenant dimension.
	TenantCaps   map[string]int64
	TenantInUse  map[string]int64
	TenantDenied map[string]int64
}

// Governor tracks a server-wide memory budget and hands out per-query
// Reservations. All methods are safe for concurrent use; a nil *Governor is
// valid and grants everything (mirroring the nil-injector and nil-span
// conventions elsewhere in hwstar).
//
// The governor accounts simulated operator state — hash tables, partition
// buffers — not Go heap bytes. That is deliberate: the point of the model is
// to show WHERE a budget forces a plan change (spill, shed), and simulated
// bytes make that reproducible across hosts, exactly as internal/hw prices
// simulated cycles rather than measuring wall time.
type Governor struct {
	mu    sync.Mutex
	cfg   Config
	inUse int64
	peak  int64
	live  int
	stats Stats

	// Tenant dimension: per-tenant caps, in-use bytes, and denial counts.
	// All nil until a cap is set or a tenant-labelled reservation is made.
	tenantCaps map[string]int64
	tenantUse  map[string]int64
	tenantDeny map[string]int64
}

// NewGovernor returns a governor armed with cfg.
func NewGovernor(cfg Config) *Governor {
	if cfg.PerQueryBytes <= 0 && cfg.BudgetBytes > 0 {
		cfg.PerQueryBytes = cfg.BudgetBytes / 4
	}
	g := &Governor{cfg: cfg}
	for id, cap := range cfg.TenantCaps {
		if cap > 0 {
			if g.tenantCaps == nil {
				g.tenantCaps = make(map[string]int64)
			}
			g.tenantCaps[id] = cap
		}
	}
	return g
}

// SetTenantCap caps (or, with bytes <= 0, uncaps) one tenant's share of the
// budget. Safe to call while reservations are live: the cap applies to the
// next reservation or grow.
func (g *Governor) SetTenantCap(tenant string, bytes int64) {
	if g == nil || tenant == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if bytes <= 0 {
		delete(g.tenantCaps, tenant)
		return
	}
	if g.tenantCaps == nil {
		g.tenantCaps = make(map[string]int64)
	}
	g.tenantCaps[tenant] = bytes
}

// Budget returns the configured budget (0 = unlimited).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.BudgetBytes
}

// PerQuery returns the default per-query reservation size.
func (g *Governor) PerQuery() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.PerQueryBytes
}

// Reserve grants a reservation of n bytes (n <= 0 means the configured
// per-query default). Under KillOnOverage the grant always succeeds — the
// naive engine admits everything and dies later. Otherwise a grant that
// would push usage past the budget is refused with errs.ErrMemoryPressure,
// which the serving layer turns into an admission shed.
func (g *Governor) Reserve(n int64) (*Reservation, error) {
	return g.ReserveFor("", n)
}

// ReserveFor is Reserve with tenant attribution: the grant is charged against
// the tenant's cap (if one is set) before the global budget, and the tenant's
// in-use bytes are tracked for Stats. An empty tenant is the untenanted form.
// KillOnOverage mode ignores tenant caps — the naive engine has no
// governance at all.
func (g *Governor) ReserveFor(tenant string, n int64) (*Reservation, error) {
	if g == nil {
		return nil, nil
	}
	if n <= 0 {
		n = g.cfg.PerQueryBytes
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.cfg.KillOnOverage {
		if cap, ok := g.tenantCaps[tenant]; ok && tenant != "" && g.tenantUse[tenant]+n > cap {
			g.stats.AdmissionDenied++
			g.noteTenantDenied(tenant)
			return nil, fmt.Errorf("mem: reserve %d bytes for tenant %q with %d of %d tenant cap in use: %w",
				n, tenant, g.tenantUse[tenant], cap, errs.ErrMemoryPressure)
		}
		if g.cfg.BudgetBytes > 0 && g.inUse+n > g.cfg.BudgetBytes {
			g.stats.AdmissionDenied++
			if tenant != "" {
				g.noteTenantDenied(tenant)
			}
			return nil, fmt.Errorf("mem: reserve %d bytes with %d of %d in use: %w",
				n, g.inUse, g.cfg.BudgetBytes, errs.ErrMemoryPressure)
		}
	}
	g.grow(n)
	g.growTenant(tenant, n)
	g.live++
	return &Reservation{gov: g, tenant: tenant, granted: n}, nil
}

// grow adds n bytes to usage and maintains the peak. Callers hold g.mu.
func (g *Governor) grow(n int64) {
	g.inUse += n
	if g.inUse > g.peak {
		g.peak = g.inUse
	}
}

// growTenant adds n bytes to a tenant's usage. Callers hold g.mu.
func (g *Governor) growTenant(tenant string, n int64) {
	if tenant == "" {
		return
	}
	if g.tenantUse == nil {
		g.tenantUse = make(map[string]int64)
	}
	g.tenantUse[tenant] += n
}

// noteTenantDenied counts one denial against a tenant. Callers hold g.mu.
func (g *Governor) noteTenantDenied(tenant string) {
	if g.tenantDeny == nil {
		g.tenantDeny = make(map[string]int64)
	}
	g.tenantDeny[tenant]++
}

// tryGrow attempts to add n bytes to usage for a reservation grow, applying
// tenant-cap, budget, and kill semantics. Callers hold g.mu.
func (g *Governor) tryGrow(n int64, tenant, site string) error {
	if tenant != "" && !g.cfg.KillOnOverage {
		if cap, ok := g.tenantCaps[tenant]; ok && g.tenantUse[tenant]+n > cap {
			g.stats.Denied++
			g.noteTenantDenied(tenant)
			return fmt.Errorf("mem: charge %d bytes at %s with %d of %d tenant %q cap in use: %w",
				n, site, g.tenantUse[tenant], cap, tenant, errs.ErrMemoryPressure)
		}
	}
	if g.cfg.BudgetBytes > 0 && g.inUse+n > g.cfg.BudgetBytes {
		if g.cfg.KillOnOverage {
			g.stats.OOMKills++
			g.grow(n) // the naive engine allocates anyway; the kill is the consequence
			g.growTenant(tenant, n)
			return fmt.Errorf("mem: %s pushed usage to %d of %d budget: %w",
				site, g.inUse, g.cfg.BudgetBytes, errs.ErrOOMKilled)
		}
		g.stats.Denied++
		if tenant != "" {
			g.noteTenantDenied(tenant)
		}
		return fmt.Errorf("mem: charge %d bytes at %s with %d of %d in use: %w",
			n, site, g.inUse, g.cfg.BudgetBytes, errs.ErrMemoryPressure)
	}
	g.grow(n)
	g.growTenant(tenant, n)
	return nil
}

// release returns n bytes to the pool and, when final, retires the
// reservation.
func (g *Governor) release(n int64, final bool, tenant string) {
	g.mu.Lock()
	g.inUse -= n
	if tenant != "" && g.tenantUse != nil {
		g.tenantUse[tenant] -= n
		if g.tenantUse[tenant] <= 0 {
			delete(g.tenantUse, tenant)
		}
	}
	if final {
		g.live--
	}
	g.mu.Unlock()
}

// Stats returns a snapshot.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.BudgetBytes = g.cfg.BudgetBytes
	s.InUseBytes = g.inUse
	s.PeakBytes = g.peak
	s.Reservations = g.live
	s.TenantCaps = copyTenantMap(g.tenantCaps)
	s.TenantInUse = copyTenantMap(g.tenantUse)
	s.TenantDenied = copyTenantMap(g.tenantDeny)
	return s
}

// copyTenantMap snapshots a tenant map, preserving nil for "no dimension".
func copyTenantMap(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SpillFanout picks a grace-hash spill fan-out: the smallest power of two K
// such that `workers` concurrently-resident partition tables of
// tableBytes/K bytes fit in avail bytes. Returns 0 when no K ≤ 1024 fits —
// the operator cannot run even spilled within its budget.
func SpillFanout(tableBytes, avail int64, workers int) int {
	if avail <= 0 || workers < 1 {
		return 0
	}
	for k := int64(2); k <= 1024; k <<= 1 {
		if tableBytes/k*int64(workers) <= avail {
			return int(k)
		}
	}
	return 0
}

// Reservation is one query's slice of the budget. Operators charge their
// simulated state against it as they build; a charge that cannot be granted
// tells the operator to degrade (spill) rather than grow. A nil *Reservation
// grants everything, so ungoverned call sites need no checks. Methods are
// safe for concurrent use by the workers of one query.
type Reservation struct {
	gov    *Governor
	tenant string // attribution for tenant caps/usage; "" = untenanted

	mu       sync.Mutex
	granted  int64 // bytes held against the governor
	used     int64 // bytes charged by operators
	peakUsed int64 // high-water mark of used
	spills   int64 // operator spill decisions under this reservation
	spillB   int64 // bytes written to the spill tier
	closed   bool
}

// Charge requests n simulated bytes at the named site for the given worker.
// It consults the allocation-fault injector first (a fired fault denies the
// charge with errs.ErrMemoryPressure before any accounting), then satisfies
// the request from the reservation, growing it against the governor when
// used+n exceeds the current grant. A denial leaves the reservation exactly
// as it was, so the caller can spill and continue.
func (r *Reservation) Charge(site string, worker int, n int64) error {
	if r == nil || r.gov == nil || n <= 0 {
		return nil
	}
	if err := r.gov.cfg.Faults.AllocError(site, worker); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("mem: charge at %s after release: %w", site, errs.ErrMemoryPressure)
	}
	if r.used+n > r.granted {
		need := r.used + n - r.granted
		r.gov.mu.Lock()
		err := r.gov.tryGrow(need, r.tenant, site)
		r.gov.mu.Unlock()
		if err != nil {
			return err
		}
		r.granted += need
	}
	r.used += n
	if r.used > r.peakUsed {
		r.peakUsed = r.used
	}
	return nil
}

// Uncharge returns n previously charged bytes to the reservation (the grant
// against the governor is kept until Release, so a query's budget slice is
// stable once won).
func (r *Reservation) Uncharge(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	if n > r.used {
		n = r.used
	}
	r.used -= n
	r.mu.Unlock()
}

// Available returns the bytes this reservation could still charge without
// growing past the governor's budget: the unused grant plus the governor's
// free headroom. Unlimited governors report a very large value. Operators
// use it to size spill partitions so each fits the remaining budget.
func (r *Reservation) Available() int64 {
	const unbounded = int64(1) << 62
	if r == nil {
		return unbounded
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	slack := r.granted - r.used
	g := r.gov
	if g == nil {
		return unbounded
	}
	g.mu.Lock()
	free := unbounded
	if g.cfg.BudgetBytes > 0 {
		free = g.cfg.BudgetBytes - g.inUse
	}
	if cap, ok := g.tenantCaps[r.tenant]; ok && r.tenant != "" {
		if tf := cap - g.tenantUse[r.tenant]; tf < free {
			free = tf
		}
	}
	g.mu.Unlock()
	if free >= unbounded {
		return unbounded
	}
	if free < 0 {
		free = 0
	}
	return slack + free
}

// NoteSpill records one operator spill decision and the simulated bytes it
// wrote to the spill tier; the counters surface in serve metrics and E22.
func (r *Reservation) NoteSpill(bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spills++
	r.spillB += bytes
	r.mu.Unlock()
}

// UsedBytes returns the bytes currently charged.
func (r *Reservation) UsedBytes() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// PeakBytes returns the reservation's high-water mark of charged bytes —
// the query's peak simulated operator footprint.
func (r *Reservation) PeakBytes() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peakUsed
}

// Spills returns the spill decisions and spill-tier bytes recorded so far.
func (r *Reservation) Spills() (count, bytes int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spills, r.spillB
}

// Release returns the whole grant to the governor. Idempotent; charges after
// Release fail.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	granted := r.granted
	r.granted = 0
	r.used = 0
	r.mu.Unlock()
	if r.gov != nil {
		r.gov.release(granted, true, r.tenant)
	}
}
