// Package mem provides the memory substrate of hwstar: chunked arena
// allocators that keep operator state out of the garbage collector's way, and
// NUMA placement bookkeeping that tells the hardware model which socket's
// memory a region lives on.
//
// Real NUMA placement is impossible from portable Go (and the build host has
// a single socket anyway), so placement here is explicit metadata: allocators
// decide a distribution of bytes over nodes according to a policy, and the
// scheduler/cost model turns "reader on socket 2, region interleaved over 4
// nodes" into local and remote traffic. The arithmetic is exactly what an OS
// with the corresponding mbind/numactl policy would produce.
package mem

import "fmt"

// defaultChunk is the arena chunk size when callers pass a non-positive one.
const defaultChunk = 1 << 20

// Arena is a bump allocator over large chunks. Allocations are never freed
// individually; Release drops all chunks at once. Arena is not safe for
// concurrent use — each worker owns its own arena, which is itself one of the
// hardware-conscious disciplines the keynote advocates (no shared allocator
// contention).
type Arena struct {
	chunkSize int
	cur       []byte
	off       int
	chunks    [][]byte
	free      [][]byte // standard-size chunks retained by Reset for reuse
	allocated int64
}

// NewArena returns an arena with the given chunk size in bytes.
func NewArena(chunkSize int) *Arena {
	if chunkSize <= 0 {
		chunkSize = defaultChunk
	}
	return &Arena{chunkSize: chunkSize}
}

// Alloc returns a zeroed byte slice of length n carved from the arena.
// Requests larger than the chunk size get a dedicated chunk.
func (a *Arena) Alloc(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("mem: Alloc(%d): negative size", n))
	}
	a.allocated += int64(n)
	if n > a.chunkSize {
		big := make([]byte, n)
		a.chunks = append(a.chunks, big)
		return big
	}
	if a.cur == nil || a.off+n > len(a.cur) {
		if l := len(a.free); l > 0 {
			a.cur = a.free[l-1]
			a.free[l-1] = nil
			a.free = a.free[:l-1]
		} else {
			a.cur = make([]byte, a.chunkSize)
		}
		a.chunks = append(a.chunks, a.cur)
		a.off = 0
	}
	s := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// AllocatedBytes returns the total bytes handed out (not chunk capacity).
func (a *Arena) AllocatedBytes() int64 { return a.allocated }

// FootprintBytes returns the total capacity of all chunks held by the arena,
// including chunks kept for reuse by Reset.
func (a *Arena) FootprintBytes() int64 {
	var t int64
	for _, c := range a.chunks {
		t += int64(len(c))
	}
	for _, c := range a.free {
		t += int64(len(c))
	}
	return t
}

// Release drops every chunk, returning the memory to the Go runtime.
func (a *Arena) Release() {
	a.cur = nil
	a.chunks = nil
	a.free = nil
	a.off = 0
	a.allocated = 0
}

// Reset makes the arena empty but keeps its standard-size chunks for reuse,
// so per-morsel arenas stop churning the runtime allocator. Dedicated
// big-allocation chunks are dropped (they are sized to one request and
// unlikely to recur). Retained chunks are zeroed here so Alloc's "zeroed
// slice" contract holds without per-allocation clears. All slices handed out
// before Reset are invalid afterwards.
func (a *Arena) Reset() {
	for i, c := range a.chunks {
		if len(c) == a.chunkSize {
			for j := range c {
				c[j] = 0
			}
			a.free = append(a.free, c)
		}
		a.chunks[i] = nil // let dropped big chunks go to the GC now
	}
	a.cur = nil
	a.chunks = a.chunks[:0]
	a.off = 0
	a.allocated = 0
}

// TypedArena is a bump allocator for slices of a fixed element type. It is
// the building block for operator-owned buffers (hash table parts, partition
// outputs) whose lifetime is one query.
type TypedArena[T any] struct {
	chunkElems int
	cur        []T
	off        int
	allocated  int64
}

// NewTypedArena returns an arena that allocates in chunks of chunkElems
// elements.
func NewTypedArena[T any](chunkElems int) *TypedArena[T] {
	if chunkElems <= 0 {
		chunkElems = 64 << 10
	}
	return &TypedArena[T]{chunkElems: chunkElems}
}

// Alloc returns a zeroed slice of n elements.
func (a *TypedArena[T]) Alloc(n int) []T {
	if n < 0 {
		panic(fmt.Sprintf("mem: TypedArena.Alloc(%d): negative size", n))
	}
	a.allocated += int64(n)
	if n > a.chunkElems {
		return make([]T, n)
	}
	if a.cur == nil || a.off+n > len(a.cur) {
		a.cur = make([]T, a.chunkElems)
		a.off = 0
	}
	s := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// AllocatedElems returns the total number of elements handed out.
func (a *TypedArena[T]) AllocatedElems() int64 { return a.allocated }

// Release drops the current chunk reference.
func (a *TypedArena[T]) Release() {
	a.cur = nil
	a.off = 0
	a.allocated = 0
}

// Reset rewinds the arena over its current chunk instead of dropping it,
// zeroing the used prefix so Alloc's contract holds. Slices handed out
// before Reset are invalid afterwards.
func (a *TypedArena[T]) Reset() {
	var zero T
	for i := 0; i < a.off; i++ {
		a.cur[i] = zero
	}
	a.off = 0
	a.allocated = 0
}
