// Package workload generates the synthetic datasets and operation streams
// used by every experiment: uniform and Zipf-skewed keys, foreign-key join
// inputs, a TPC-H-flavoured lineitem table, and a YCSB-style key-value
// operation mix. All generators are seeded and deterministic so experiments
// reproduce bit-identically.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"hwstar/internal/table"
)

// UniformInts returns n keys drawn uniformly from [0, max).
func UniformInts(seed int64, n int, max int64) []int64 {
	if max <= 0 {
		panic(fmt.Sprintf("workload: UniformInts max=%d", max))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(max)
	}
	return out
}

// SequentialInts returns 0..n-1.
func SequentialInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// ShuffledInts returns a random permutation of 0..n-1.
func ShuffledInts(seed int64, n int) []int64 {
	out := SequentialInts(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ZipfInts returns n keys in [0, max) with Zipfian skew parameter s > 1.
// Higher s concentrates mass on few keys; s→1 approaches uniform-ish heavy
// tails. Keys are scattered over the domain (rank r does not equal key r) so
// that skew does not accidentally correlate with key locality.
func ZipfInts(seed int64, n int, max int64, s float64) []int64 {
	if max <= 0 {
		panic(fmt.Sprintf("workload: ZipfInts max=%d", max))
	}
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(max-1))
	// Scatter ranks over the key domain with a fixed multiplicative hash.
	out := make([]int64, n)
	for i := range out {
		rank := z.Uint64()
		out[i] = int64((rank * 0x9E3779B97F4A7C15) % uint64(max))
	}
	return out
}

// Floats returns n floats uniform in [lo, hi).
func Floats(seed int64, n int, lo, hi float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// JoinConfig describes a foreign-key join input: a build relation with
// BuildRows unique keys and a probe relation with ProbeRows keys drawn from
// the build key domain.
type JoinConfig struct {
	Seed      int64
	BuildRows int
	ProbeRows int
	// ZipfS > 0 skews probe keys toward few build keys; 0 means uniform.
	ZipfS float64
	// Miss is the fraction of probe keys that match nothing (drawn outside
	// the build domain).
	Miss float64
}

// JoinInput holds generated join inputs. Build keys are a permutation of
// 0..BuildRows-1 (unique, as in a primary key); BuildVals/ProbeVals are
// payloads carried through the join.
type JoinInput struct {
	BuildKeys, ProbeKeys []int64
	BuildVals, ProbeVals []int64
}

// GenerateJoin materializes a JoinConfig.
func GenerateJoin(cfg JoinConfig) JoinInput {
	if cfg.BuildRows <= 0 || cfg.ProbeRows < 0 {
		panic(fmt.Sprintf("workload: bad join config %+v", cfg))
	}
	in := JoinInput{
		BuildKeys: ShuffledInts(cfg.Seed, cfg.BuildRows),
		BuildVals: UniformInts(cfg.Seed+1, cfg.BuildRows, 1<<30),
		ProbeVals: UniformInts(cfg.Seed+2, cfg.ProbeRows, 1<<30),
	}
	if cfg.ZipfS > 0 {
		in.ProbeKeys = ZipfInts(cfg.Seed+3, cfg.ProbeRows, int64(cfg.BuildRows), cfg.ZipfS)
	} else {
		in.ProbeKeys = UniformInts(cfg.Seed+3, cfg.ProbeRows, int64(cfg.BuildRows))
	}
	if cfg.Miss > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed + 4))
		for i := range in.ProbeKeys {
			if rng.Float64() < cfg.Miss {
				// Keys >= BuildRows never match.
				in.ProbeKeys[i] = int64(cfg.BuildRows) + rng.Int63n(int64(cfg.BuildRows)+1)
			}
		}
	}
	return in
}

// LineItemSchema returns the schema of the TPC-H-flavoured lineitem table
// used by the execution-model experiments (Q1/Q6 shape).
func LineItemSchema() *table.Schema {
	return table.MustSchema(
		table.ColumnDef{Name: "orderkey", Type: table.Int64},
		table.ColumnDef{Name: "quantity", Type: table.Float64},
		table.ColumnDef{Name: "extendedprice", Type: table.Float64},
		table.ColumnDef{Name: "discount", Type: table.Float64},
		table.ColumnDef{Name: "tax", Type: table.Float64},
		table.ColumnDef{Name: "returnflag", Type: table.String},
		table.ColumnDef{Name: "linestatus", Type: table.String},
		table.ColumnDef{Name: "shipdate", Type: table.Int64},
	)
}

// LineItem generates n rows in the shape of TPC-H lineitem. shipdate is a
// day number in [0, 2557) (seven years), quantities in [1, 51), discounts in
// [0, 0.1], matching the predicate constants of Q1/Q6.
func LineItem(seed int64, n int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	flags := []string{"A", "N", "R"}
	statuses := []string{"F", "O"}
	b := table.NewBuilder("lineitem", LineItemSchema(), n)
	for i := 0; i < n; i++ {
		b.MustAppendRow(
			table.IntValue(int64(i/4)),
			table.FloatValue(1+float64(rng.Intn(50))),
			table.FloatValue(900+rng.Float64()*104000),
			table.FloatValue(float64(rng.Intn(11))/100),
			table.FloatValue(float64(rng.Intn(9))/100),
			table.StringValue(flags[rng.Intn(len(flags))]),
			table.StringValue(statuses[rng.Intn(len(statuses))]),
			table.IntValue(rng.Int63n(2557)),
		)
	}
	return b.Build()
}

// OrdersSchema returns the schema of the orders table used by join examples.
func OrdersSchema() *table.Schema {
	return table.MustSchema(
		table.ColumnDef{Name: "orderkey", Type: table.Int64},
		table.ColumnDef{Name: "custkey", Type: table.Int64},
		table.ColumnDef{Name: "totalprice", Type: table.Float64},
		table.ColumnDef{Name: "orderpriority", Type: table.String},
	)
}

// Orders generates n orders with unique orderkeys 0..n-1.
func Orders(seed int64, n int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	prios := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	b := table.NewBuilder("orders", OrdersSchema(), n)
	for i := 0; i < n; i++ {
		b.MustAppendRow(
			table.IntValue(int64(i)),
			table.IntValue(rng.Int63n(int64(n/10+1))),
			table.FloatValue(1000+rng.Float64()*450000),
			table.StringValue(prios[rng.Intn(len(prios))]),
		)
	}
	return b.Build()
}

// OpKind is a YCSB-style operation type.
type OpKind int

const (
	// OpRead looks a key up.
	OpRead OpKind = iota
	// OpUpdate overwrites the value of an existing key.
	OpUpdate
	// OpInsert adds a new key.
	OpInsert
	// OpScan reads a short range starting at a key.
	OpScan
)

// String returns the op name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one key-value operation.
type Op struct {
	Kind OpKind
	Key  int64
	// ScanLen is the range length for OpScan.
	ScanLen int
}

// Mix is a YCSB-style workload mix; fractions must sum to at most 1, with the
// remainder going to reads.
type Mix struct {
	UpdateFrac float64
	InsertFrac float64
	ScanFrac   float64
	// ZipfS skews key popularity when > 0.
	ZipfS float64
}

// MixReadMostly is 95% reads / 5% updates with Zipf skew (YCSB-B shape).
func MixReadMostly() Mix { return Mix{UpdateFrac: 0.05, ZipfS: 1.2} }

// MixUpdateHeavy is 50/50 reads and updates (YCSB-A shape).
func MixUpdateHeavy() Mix { return Mix{UpdateFrac: 0.5, ZipfS: 1.2} }

// MixScanHeavy is 95% short scans / 5% inserts (YCSB-E shape).
func MixScanHeavy() Mix { return Mix{InsertFrac: 0.05, ScanFrac: 0.95, ZipfS: 1.2} }

// GenerateOps produces n operations over an initial keyspace of keyspace
// keys. Inserted keys extend the keyspace monotonically.
func GenerateOps(seed int64, n int, keyspace int64, mix Mix) []Op {
	if keyspace <= 0 {
		panic("workload: keyspace must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if mix.ZipfS > 0 {
		s := mix.ZipfS
		if s <= 1 {
			s = 1.0001
		}
		zipf = rand.NewZipf(rng, s, 1, uint64(keyspace-1))
	}
	nextInsert := keyspace
	pick := func() int64 {
		if zipf != nil {
			return int64((zipf.Uint64() * 0x9E3779B97F4A7C15) % uint64(keyspace))
		}
		return rng.Int63n(keyspace)
	}
	out := make([]Op, n)
	for i := range out {
		r := rng.Float64()
		switch {
		case r < mix.UpdateFrac:
			out[i] = Op{Kind: OpUpdate, Key: pick()}
		case r < mix.UpdateFrac+mix.InsertFrac:
			out[i] = Op{Kind: OpInsert, Key: nextInsert}
			nextInsert++
		case r < mix.UpdateFrac+mix.InsertFrac+mix.ScanFrac:
			out[i] = Op{Kind: OpScan, Key: pick(), ScanLen: 1 + rng.Intn(100)}
		default:
			out[i] = Op{Kind: OpRead, Key: pick()}
		}
	}
	return out
}

// SelfSimilar returns n keys in [0, max) from the self-similar (80-20
// fractal) distribution with skew h in (0.5, 1): a fraction h of accesses
// falls in the first (1-h) fraction of the domain, recursively. It is the
// other standard skew model of the benchmarking literature (Gray et al.),
// heavier-headed than Zipf at the same nominal skew.
func SelfSimilar(seed int64, n int, max int64, h float64) []int64 {
	if max <= 0 {
		panic(fmt.Sprintf("workload: SelfSimilar max=%d", max))
	}
	if h <= 0.5 {
		h = 0.501
	}
	if h >= 1 {
		h = 0.999
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	exp := math.Log(1-h) / math.Log(h)
	for i := range out {
		u := rng.Float64()
		// Inverse transform of the self-similar CDF.
		out[i] = int64(float64(max) * math.Pow(u, exp))
		if out[i] >= max {
			out[i] = max - 1
		}
	}
	return out
}
