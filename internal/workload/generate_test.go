package workload

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestUniformIntsRangeAndDeterminism(t *testing.T) {
	a := UniformInts(7, 1000, 50)
	b := UniformInts(7, 1000, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce")
	}
	for _, v := range a {
		if v < 0 || v >= 50 {
			t.Fatalf("out of range: %d", v)
		}
	}
	c := UniformInts(8, 1000, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestUniformIntsPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic on max<=0")
		}
	}()
	UniformInts(1, 10, 0)
}

func TestSequentialAndShuffled(t *testing.T) {
	s := SequentialInts(5)
	if !reflect.DeepEqual(s, []int64{0, 1, 2, 3, 4}) {
		t.Fatalf("sequential = %v", s)
	}
	sh := ShuffledInts(3, 100)
	if len(sh) != 100 {
		t.Fatalf("len = %d", len(sh))
	}
	sorted := append([]int64(nil), sh...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if !reflect.DeepEqual(sorted, SequentialInts(100)) {
		t.Fatal("shuffle must be a permutation")
	}
	if reflect.DeepEqual(sh, SequentialInts(100)) {
		t.Fatal("shuffle of 100 elements should not be identity")
	}
}

func TestZipfSkewConcentration(t *testing.T) {
	const n, max = 100000, 10000
	skewed := ZipfInts(1, n, max, 1.5)
	uniform := UniformInts(1, n, max)
	top := func(keys []int64) float64 {
		counts := map[int64]int{}
		for _, k := range keys {
			counts[k]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / float64(len(keys))
	}
	if ts, tu := top(skewed), top(uniform); ts < 10*tu {
		t.Fatalf("zipf top key share %.4f should dwarf uniform %.4f", ts, tu)
	}
	for _, v := range skewed {
		if v < 0 || v >= max {
			t.Fatalf("zipf key out of range: %d", v)
		}
	}
}

func TestZipfClampsS(t *testing.T) {
	// s <= 1 must not panic (clamped internally).
	keys := ZipfInts(1, 100, 1000, 0.5)
	if len(keys) != 100 {
		t.Fatal("clamped zipf should still generate")
	}
}

func TestFloatsRange(t *testing.T) {
	fs := Floats(2, 1000, -1, 3)
	for _, f := range fs {
		if f < -1 || f >= 3 {
			t.Fatalf("out of range: %f", f)
		}
	}
}

func TestGenerateJoinShapes(t *testing.T) {
	in := GenerateJoin(JoinConfig{Seed: 1, BuildRows: 1000, ProbeRows: 5000})
	if len(in.BuildKeys) != 1000 || len(in.ProbeKeys) != 5000 {
		t.Fatalf("sizes: %d/%d", len(in.BuildKeys), len(in.ProbeKeys))
	}
	// Build keys are a permutation (unique primary keys).
	seen := map[int64]bool{}
	for _, k := range in.BuildKeys {
		if seen[k] {
			t.Fatalf("duplicate build key %d", k)
		}
		seen[k] = true
		if k < 0 || k >= 1000 {
			t.Fatalf("build key out of range: %d", k)
		}
	}
	// Without Miss, every probe key matches.
	for _, k := range in.ProbeKeys {
		if k < 0 || k >= 1000 {
			t.Fatalf("probe key out of domain: %d", k)
		}
	}
}

func TestGenerateJoinMissFraction(t *testing.T) {
	in := GenerateJoin(JoinConfig{Seed: 2, BuildRows: 1000, ProbeRows: 20000, Miss: 0.3})
	misses := 0
	for _, k := range in.ProbeKeys {
		if k >= 1000 {
			misses++
		}
	}
	frac := float64(misses) / float64(len(in.ProbeKeys))
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("miss fraction = %f, want ~0.3", frac)
	}
}

func TestGenerateJoinPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic on BuildRows=0")
		}
	}()
	GenerateJoin(JoinConfig{})
}

func TestLineItem(t *testing.T) {
	tbl := LineItem(1, 500)
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	qty, err := tbl.Float64Column("quantity")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qty {
		if q < 1 || q > 50 {
			t.Fatalf("quantity out of range: %f", q)
		}
	}
	disc, _ := tbl.Float64Column("discount")
	for _, d := range disc {
		if d < 0 || d > 0.10000001 {
			t.Fatalf("discount out of range: %f", d)
		}
	}
	ship, _ := tbl.Int64Column("shipdate")
	for _, s := range ship {
		if s < 0 || s >= 2557 {
			t.Fatalf("shipdate out of range: %d", s)
		}
	}
	rf, err := tbl.StringColumn("returnflag")
	if err != nil {
		t.Fatal(err)
	}
	if rf.CardinalityOfDict() > 3 {
		t.Fatalf("returnflag cardinality = %d", rf.CardinalityOfDict())
	}
}

func TestOrders(t *testing.T) {
	tbl := Orders(1, 200)
	keys, err := tbl.Int64Column("orderkey")
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("orderkey[%d] = %d", i, k)
		}
	}
	prio, err := tbl.StringColumn("orderpriority")
	if err != nil {
		t.Fatal(err)
	}
	if prio.CardinalityOfDict() > 5 {
		t.Fatalf("priority cardinality = %d", prio.CardinalityOfDict())
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{OpRead: "read", OpUpdate: "update", OpInsert: "insert", OpScan: "scan"} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", int(k), k.String(), want)
		}
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestGenerateOpsMixFractions(t *testing.T) {
	ops := GenerateOps(1, 100000, 10000, Mix{UpdateFrac: 0.3, InsertFrac: 0.1, ScanFrac: 0.2})
	counts := map[OpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / float64(len(ops)) }
	if f := frac(OpUpdate); f < 0.28 || f > 0.32 {
		t.Fatalf("update frac = %f", f)
	}
	if f := frac(OpInsert); f < 0.08 || f > 0.12 {
		t.Fatalf("insert frac = %f", f)
	}
	if f := frac(OpScan); f < 0.18 || f > 0.22 {
		t.Fatalf("scan frac = %f", f)
	}
	if f := frac(OpRead); f < 0.38 || f > 0.42 {
		t.Fatalf("read frac = %f", f)
	}
}

func TestGenerateOpsInsertKeysMonotone(t *testing.T) {
	ops := GenerateOps(2, 5000, 100, Mix{InsertFrac: 0.5})
	last := int64(99)
	for _, op := range ops {
		if op.Kind == OpInsert {
			if op.Key != last+1 {
				t.Fatalf("insert key %d, want %d", op.Key, last+1)
			}
			last = op.Key
		}
	}
}

func TestGenerateOpsScanLens(t *testing.T) {
	ops := GenerateOps(3, 2000, 100, MixScanHeavy())
	for _, op := range ops {
		if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
			t.Fatalf("scan len = %d", op.ScanLen)
		}
	}
}

func TestPredefinedMixes(t *testing.T) {
	if m := MixReadMostly(); m.UpdateFrac != 0.05 {
		t.Fatal("read-mostly mix wrong")
	}
	if m := MixUpdateHeavy(); m.UpdateFrac != 0.5 {
		t.Fatal("update-heavy mix wrong")
	}
	if m := MixScanHeavy(); m.ScanFrac != 0.95 {
		t.Fatal("scan-heavy mix wrong")
	}
}

func TestGenerateOpsPanicsOnBadKeyspace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic on keyspace<=0")
		}
	}()
	GenerateOps(1, 10, 0, Mix{})
}

// Property: generators are pure functions of their seed.
func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n) + 1
		if !reflect.DeepEqual(ZipfInts(seed, m, 100, 1.3), ZipfInts(seed, m, 100, 1.3)) {
			return false
		}
		a := GenerateJoin(JoinConfig{Seed: seed, BuildRows: m, ProbeRows: m, ZipfS: 1.2, Miss: 0.1})
		b := GenerateJoin(JoinConfig{Seed: seed, BuildRows: m, ProbeRows: m, ZipfS: 1.2, Miss: 0.1})
		if !reflect.DeepEqual(a, b) {
			return false
		}
		return reflect.DeepEqual(GenerateOps(seed, m, 50, MixReadMostly()), GenerateOps(seed, m, 50, MixReadMostly()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSimilarSkewAndRange(t *testing.T) {
	const n, max = 100000, 10000
	keys := SelfSimilar(1, n, max, 0.8)
	inHead := 0
	for _, k := range keys {
		if k < 0 || k >= max {
			t.Fatalf("key out of range: %d", k)
		}
		if k < max/5 { // first 20% of the domain
			inHead++
		}
	}
	frac := float64(inHead) / float64(n)
	// 80-20 rule: ~80% of accesses in the first 20% of the domain.
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("head fraction = %f, want ~0.8", frac)
	}
	// Clamped parameters must not panic.
	if got := SelfSimilar(2, 100, 1000, 0.3); len(got) != 100 {
		t.Fatal("clamped h should still generate")
	}
	if got := SelfSimilar(2, 100, 1000, 1.5); len(got) != 100 {
		t.Fatal("clamped h should still generate")
	}
}

func TestSelfSimilarPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic on max<=0")
		}
	}()
	SelfSimilar(1, 10, 0, 0.8)
}
