package volcano

import (
	"math"
	"testing"

	"hwstar/internal/hw"
	"hwstar/internal/table"
)

func fixtureTable(t *testing.T) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.ColumnDef{Name: "id", Type: table.Int64},
		table.ColumnDef{Name: "grp", Type: table.String},
		table.ColumnDef{Name: "val", Type: table.Float64},
	)
	b := table.NewBuilder("fixture", s, 6)
	b.MustAppendRow(table.IntValue(1), table.StringValue("a"), table.FloatValue(10))
	b.MustAppendRow(table.IntValue(2), table.StringValue("b"), table.FloatValue(20))
	b.MustAppendRow(table.IntValue(3), table.StringValue("a"), table.FloatValue(30))
	b.MustAppendRow(table.IntValue(4), table.StringValue("b"), table.FloatValue(40))
	b.MustAppendRow(table.IntValue(5), table.StringValue("a"), table.FloatValue(50))
	return b.Build()
}

func TestTableScan(t *testing.T) {
	rows, err := Run(NewTableScan(fixtureTable(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2][0].I != 3 || rows[2][1].S != "a" || rows[2][2].F != 30 {
		t.Fatalf("row 2 = %v", rows[2])
	}
}

func TestTableScanReopen(t *testing.T) {
	scan := NewTableScan(fixtureTable(t))
	first, _ := Run(scan)
	second, err := Run(scan) // Run calls Open again
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("reopen produced %d rows, want %d", len(second), len(first))
	}
}

func TestFilter(t *testing.T) {
	it := NewFilter(NewTableScan(fixtureTable(t)), func(r Row) bool { return r[0].I%2 == 1 })
	rows, err := Run(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("filtered rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r[0].I%2 != 1 {
			t.Fatalf("filter leak: %v", r)
		}
	}
}

func TestProject(t *testing.T) {
	it := NewProject(NewTableScan(fixtureTable(t)), []func(Row) table.Value{
		func(r Row) table.Value { return table.FloatValue(r[2].F * 2) },
		func(r Row) table.Value { return r[1] },
	})
	rows, err := Run(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0].F != 20 || rows[0][1].S != "a" {
		t.Fatalf("projection wrong: %v", rows[0])
	}
}

func TestHashAggregateGrouped(t *testing.T) {
	agg := NewHashAggregate(NewTableScan(fixtureTable(t)), []int{1}, []AggSpec{
		{Kind: AggSum, Col: 2},
		{Kind: AggCount},
		{Kind: AggMin, Col: 2},
		{Kind: AggMax, Col: 2},
		{Kind: AggAvg, Col: 2},
	})
	rows, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	byGroup := map[string]Row{}
	for _, r := range rows {
		byGroup[r[0].S] = r
	}
	a := byGroup["a"]
	if a[1].F != 90 || a[2].I != 3 || a[3].F != 10 || a[4].F != 50 || a[5].F != 30 {
		t.Fatalf("group a = %v", a)
	}
	b := byGroup["b"]
	if b[1].F != 60 || b[2].I != 2 {
		t.Fatalf("group b = %v", b)
	}
}

func TestHashAggregateGlobal(t *testing.T) {
	agg := NewHashAggregate(NewTableScan(fixtureTable(t)), nil, []AggSpec{{Kind: AggSum, Col: 2}})
	rows, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].F != 150 {
		t.Fatalf("global sum = %v", rows)
	}
}

func TestHashAggregateIntColumn(t *testing.T) {
	agg := NewHashAggregate(NewTableScan(fixtureTable(t)), nil, []AggSpec{{Kind: AggSum, Col: 0}})
	rows, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].F != 15 {
		t.Fatalf("int sum = %v", rows[0])
	}
}

func TestHashAggregateStringAggError(t *testing.T) {
	agg := NewHashAggregate(NewTableScan(fixtureTable(t)), nil, []AggSpec{{Kind: AggSum, Col: 1}})
	if _, err := Run(agg); err == nil {
		t.Fatal("aggregating a string column should fail")
	}
}

func TestEmptyPipeline(t *testing.T) {
	s := table.MustSchema(table.ColumnDef{Name: "x", Type: table.Int64})
	empty := table.NewBuilder("empty", s, 0).Build()
	rows, err := Run(NewHashAggregate(NewTableScan(empty), nil, []AggSpec{{Kind: AggCount}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty table should produce no groups, got %v", rows)
	}
}

func TestPipelineComposition(t *testing.T) {
	// scan → filter → project → aggregate, all composed.
	tbl := fixtureTable(t)
	pipeline := NewHashAggregate(
		NewProject(
			NewFilter(NewTableScan(tbl), func(r Row) bool { return r[2].F >= 20 }),
			[]func(Row) table.Value{
				func(r Row) table.Value { return r[1] },
				func(r Row) table.Value { return table.FloatValue(r[2].F / 10) },
			}),
		[]int{0},
		[]AggSpec{{Kind: AggSum, Col: 1}})
	rows, err := Run(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range rows {
		got[r[0].S] = r[1].F
	}
	if math.Abs(got["a"]-8) > 1e-12 || math.Abs(got["b"]-6) > 1e-12 {
		t.Fatalf("pipeline result = %v", got)
	}
}

func TestChargeCost(t *testing.T) {
	m := hw.Laptop()
	acct := hw.NewAccount(m, hw.DefaultContext())
	ChargeCost(acct, 1000, 4, 20)
	if acct.TotalCycles() <= 0 {
		t.Fatal("volcano cost should be positive")
	}
	bd := acct.Breakdown()
	if bd.Compute < 1000*4*interpTupleCycles {
		t.Fatalf("compute %f below interpretation floor", bd.Compute)
	}
	if bd.Branches <= 0 {
		t.Fatal("branch misses should be charged")
	}
}

func ordersFixture(t *testing.T) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.ColumnDef{Name: "key", Type: table.Int64},
		table.ColumnDef{Name: "name", Type: table.String},
	)
	b := table.NewBuilder("dim", s, 3)
	b.MustAppendRow(table.IntValue(1), table.StringValue("one"))
	b.MustAppendRow(table.IntValue(2), table.StringValue("two"))
	b.MustAppendRow(table.IntValue(2), table.StringValue("zwei")) // duplicate build key
	return b.Build()
}

func TestHashJoin(t *testing.T) {
	facts := fixtureTable(t) // ids 1..5
	dim := ordersFixture(t)
	join := NewHashJoin(NewTableScan(dim), NewTableScan(facts), 0, 0)
	rows, err := Run(join)
	if err != nil {
		t.Fatal(err)
	}
	// fact ids 1 and 2 match; id 2 matches two build rows.
	if len(rows) != 3 {
		t.Fatalf("joined rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		// probe columns (3) then build columns (2)
		if len(r) != 5 {
			t.Fatalf("row width = %d", len(r))
		}
		if r[0].I != r[3].I {
			t.Fatalf("join key mismatch: %v", r)
		}
	}
}

func TestHashJoinNoMatches(t *testing.T) {
	facts := fixtureTable(t)
	empty := table.NewBuilder("empty", table.MustSchema(table.ColumnDef{Name: "key", Type: table.Int64}), 0).Build()
	rows, err := Run(NewHashJoin(NewTableScan(empty), NewTableScan(facts), 0, 0))
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty build join: %v, %v", rows, err)
	}
}

func TestHashJoinColumnOutOfRange(t *testing.T) {
	facts := fixtureTable(t)
	dim := ordersFixture(t)
	if _, err := Run(NewHashJoin(NewTableScan(dim), NewTableScan(facts), 9, 0)); err == nil {
		t.Fatal("bad build column should fail")
	}
	if _, err := Run(NewHashJoin(NewTableScan(dim), NewTableScan(facts), 0, 9)); err == nil {
		t.Fatal("bad probe column should fail")
	}
}

func TestHashJoinComposedPipeline(t *testing.T) {
	facts := fixtureTable(t)
	dim := ordersFixture(t)
	join := NewHashJoin(NewTableScan(dim), NewTableScan(facts), 0, 0)
	agg := NewHashAggregate(join, []int{4}, []AggSpec{{Kind: AggSum, Col: 2}}) // group by dim name, sum fact val
	rows, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range rows {
		got[r[0].S] = r[1].F
	}
	if got["one"] != 10 || got["two"] != 20 || got["zwei"] != 20 {
		t.Fatalf("aggregated join = %v", got)
	}
}
