package volcano

import "fmt"

// HashJoin is the iterator-model equi-join: it drains the build child into
// an in-memory hash table on Open, then streams the probe child, emitting
// the probe row concatenated with each matching build row. Like everything
// in this package it is the faithful hardware-oblivious rendition — boxed
// values as hash keys, a map of slices, one virtual call per tuple.
type HashJoin struct {
	build, probe       Iterator
	buildCol, probeCol int

	ht      map[string][]Row
	pending []Row // remaining matches for the current probe row
	cur     Row
}

// NewHashJoin joins build and probe on equality of the given columns.
func NewHashJoin(build, probe Iterator, buildCol, probeCol int) *HashJoin {
	return &HashJoin{build: build, probe: probe, buildCol: buildCol, probeCol: probeCol}
}

// Open builds the hash table from the build child.
func (j *HashJoin) Open() error {
	if err := j.build.Open(); err != nil {
		return err
	}
	defer j.build.Close()
	j.ht = make(map[string][]Row)
	for {
		row, ok, err := j.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if j.buildCol < 0 || j.buildCol >= len(row) {
			return fmt.Errorf("volcano: hash join build column %d out of range", j.buildCol)
		}
		key := row[j.buildCol].String()
		j.ht[key] = append(j.ht[key], row)
	}
	j.pending = nil
	return j.probe.Open()
}

// Next implements Iterator: output rows are probe columns followed by build
// columns.
func (j *HashJoin) Next() (Row, bool, error) {
	for {
		if len(j.pending) > 0 {
			match := j.pending[0]
			j.pending = j.pending[1:]
			out := make(Row, 0, len(j.cur)+len(match))
			out = append(out, j.cur...)
			out = append(out, match...)
			return out, true, nil
		}
		row, ok, err := j.probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.probeCol < 0 || j.probeCol >= len(row) {
			return nil, false, fmt.Errorf("volcano: hash join probe column %d out of range", j.probeCol)
		}
		j.cur = row
		j.pending = j.ht[row[j.probeCol].String()]
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.ht = nil
	j.pending = nil
	return j.probe.Close()
}

// compile-time interface checks for all operators in the package.
var (
	_ Iterator = (*TableScan)(nil)
	_ Iterator = (*Filter)(nil)
	_ Iterator = (*Project)(nil)
	_ Iterator = (*HashAggregate)(nil)
	_ Iterator = (*HashJoin)(nil)
)
