// Package volcano implements the classic tuple-at-a-time iterator execution
// model — the keynote's archetype of hardware-oblivious software. Every
// operator is an Iterator whose Next returns one dynamically typed tuple;
// every tuple crosses several virtual calls, materializes boxed values, and
// takes data-dependent branches. The design was perfect for the machines it
// was invented on and is exactly what modern memory hierarchies punish; the
// vectorized engine in internal/vecexec is its hardware-conscious
// counterpart, and the two are compared head-to-head in experiment E6.
package volcano

import (
	"fmt"

	"hwstar/internal/hw"
	"hwstar/internal/table"
)

// Row is one materialized tuple.
type Row = []table.Value

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the operator tree for iteration.
	Open() error
	// Next returns the next tuple, or ok=false at end of stream.
	Next() (Row, bool, error)
	// Close releases resources.
	Close() error
}

// interpTupleCycles is the modelled per-operator, per-tuple interpretation
// overhead: virtual dispatch, value boxing, branch checks. The VLDB
// vectorization literature measured 30–100 cycles per tuple per operator in
// iterator engines; we charge the low end.
const interpTupleCycles = 35

// TableScan iterates a table, materializing each row.
type TableScan struct {
	tbl *table.Table
	pos int
}

// NewTableScan returns a scan over tbl.
func NewTableScan(tbl *table.Table) *TableScan { return &TableScan{tbl: tbl} }

// Open implements Iterator.
func (s *TableScan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *TableScan) Next() (Row, bool, error) {
	if s.pos >= s.tbl.NumRows() {
		return nil, false, nil
	}
	row := s.tbl.Row(s.pos)
	s.pos++
	return row, true, nil
}

// Close implements Iterator.
func (s *TableScan) Close() error { return nil }

// Filter passes through rows satisfying pred.
type Filter struct {
	child Iterator
	pred  func(Row) bool
}

// NewFilter wraps child with a predicate.
func NewFilter(child Iterator, pred func(Row) bool) *Filter {
	return &Filter{child: child, pred: pred}
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.child.Open() }

// Next implements Iterator.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.pred(row) {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.child.Close() }

// Project maps each row through expression functions.
type Project struct {
	child Iterator
	exprs []func(Row) table.Value
}

// NewProject wraps child with projection expressions.
func NewProject(child Iterator, exprs []func(Row) table.Value) *Project {
	return &Project{child: child, exprs: exprs}
}

// Open implements Iterator.
func (p *Project) Open() error { return p.child.Open() }

// Next implements Iterator.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = e(row)
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.child.Close() }

// AggKind selects an aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// AggSpec aggregates column Col of the input rows with the given function.
// For AggCount, Col is ignored.
type AggSpec struct {
	Kind AggKind
	Col  int
}

// aggState carries one group's running aggregates.
type aggState struct {
	sums   []float64
	mins   []float64
	maxs   []float64
	counts []int64
	n      int64
}

// HashAggregate groups rows by the given columns and computes aggregates.
// It is a blocking operator: the whole input is consumed on the first Next.
type HashAggregate struct {
	child     Iterator
	groupCols []int
	aggs      []AggSpec

	results []Row
	pos     int
	done    bool
}

// NewHashAggregate groups child by groupCols computing aggs.
func NewHashAggregate(child Iterator, groupCols []int, aggs []AggSpec) *HashAggregate {
	return &HashAggregate{child: child, groupCols: groupCols, aggs: aggs}
}

// Open implements Iterator.
func (h *HashAggregate) Open() error {
	h.results = nil
	h.pos = 0
	h.done = false
	return h.child.Open()
}

// Next implements Iterator. Output rows are group key values followed by one
// value per aggregate (Float64 for sum/min/max/avg, Int64 for count).
func (h *HashAggregate) Next() (Row, bool, error) {
	if !h.done {
		if err := h.consume(); err != nil {
			return nil, false, err
		}
		h.done = true
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	row := h.results[h.pos]
	h.pos++
	return row, true, nil
}

func (h *HashAggregate) consume() error {
	groups := map[string]*aggState{}
	keys := map[string]Row{}
	var order []string
	for {
		row, ok, err := h.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := ""
		for _, c := range h.groupCols {
			key += row[c].String() + "\x00"
		}
		st, exists := groups[key]
		if !exists {
			st = &aggState{
				sums:   make([]float64, len(h.aggs)),
				mins:   make([]float64, len(h.aggs)),
				maxs:   make([]float64, len(h.aggs)),
				counts: make([]int64, len(h.aggs)),
			}
			groups[key] = st
			keyRow := make(Row, len(h.groupCols))
			for i, c := range h.groupCols {
				keyRow[i] = row[c]
			}
			keys[key] = keyRow
			order = append(order, key)
		}
		st.n++
		for ai, spec := range h.aggs {
			var v float64
			if spec.Kind != AggCount {
				var err error
				if v, err = numeric(row[spec.Col]); err != nil {
					return err
				}
			}
			switch spec.Kind {
			case AggSum, AggAvg:
				st.sums[ai] += v
				st.counts[ai]++
			case AggCount:
				st.counts[ai]++
			case AggMin:
				if st.counts[ai] == 0 || v < st.mins[ai] {
					st.mins[ai] = v
				}
				st.counts[ai]++
			case AggMax:
				if st.counts[ai] == 0 || v > st.maxs[ai] {
					st.maxs[ai] = v
				}
				st.counts[ai]++
			}
		}
	}
	for _, key := range order {
		st := groups[key]
		row := append(Row{}, keys[key]...)
		for ai, spec := range h.aggs {
			switch spec.Kind {
			case AggSum:
				row = append(row, table.FloatValue(st.sums[ai]))
			case AggCount:
				row = append(row, table.IntValue(st.counts[ai]))
			case AggMin:
				row = append(row, table.FloatValue(st.mins[ai]))
			case AggMax:
				row = append(row, table.FloatValue(st.maxs[ai]))
			case AggAvg:
				row = append(row, table.FloatValue(st.sums[ai]/float64(st.counts[ai])))
			}
		}
		h.results = append(h.results, row)
	}
	return nil
}

// Close implements Iterator.
func (h *HashAggregate) Close() error { return h.child.Close() }

// numeric converts a value to float64 for aggregation.
func numeric(v table.Value) (float64, error) {
	switch v.Kind {
	case table.Int64:
		return float64(v.I), nil
	case table.Float64:
		return v.F, nil
	default:
		return 0, fmt.Errorf("volcano: cannot aggregate %s value", v.Kind)
	}
}

// Run opens the iterator tree, drains it, and closes it.
func Run(root Iterator) ([]Row, error) {
	if err := root.Open(); err != nil {
		return nil, err
	}
	defer root.Close()
	var out []Row
	for {
		row, ok, err := root.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// ChargeCost models a Volcano execution on the machine model: every tuple
// crosses `operators` iterator boundaries paying interpretation overhead,
// plus the base table stream, plus one hard-to-predict branch per
// filter-tuple (selectivity-dependent misprediction is charged at worst
// case 50%).
func ChargeCost(acct *hw.Account, rows int64, operators int, rowBytes int64) {
	acct.Charge(hw.Work{
		Name:            "volcano",
		Tuples:          rows * int64(operators),
		ComputePerTuple: interpTupleCycles,
		SeqReadBytes:    rows * rowBytes,
		BranchMisses:    rows / 2,
	})
}
