package concurrent

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

// orderedMap is the shared behaviour of both structures.
type orderedMap interface {
	Insert(key, value int64)
	Get(key int64) (int64, bool)
	Scan(lo, hi int64, fn func(key, val int64) bool)
	Len() int
}

func implementations() map[string]func() orderedMap {
	return map[string]func() orderedMap{
		"skiplist": func() orderedMap { return NewSkipList(1) },
		"locked":   func() orderedMap { return NewLockedTree() },
	}
}

func TestInsertGetSequential(t *testing.T) {
	for name, mk := range implementations() {
		m := mk()
		keys := workload.ShuffledInts(2, 3000)
		for _, k := range keys {
			m.Insert(k, k*7)
		}
		if m.Len() != 3000 {
			t.Fatalf("%s: len = %d", name, m.Len())
		}
		for _, k := range keys {
			v, ok := m.Get(k)
			if !ok || v != k*7 {
				t.Fatalf("%s: Get(%d) = %d, %v", name, k, v, ok)
			}
		}
		if _, ok := m.Get(99999); ok {
			t.Fatalf("%s: phantom key", name)
		}
	}
}

func TestUpdateInPlace(t *testing.T) {
	for name, mk := range implementations() {
		m := mk()
		m.Insert(5, 1)
		m.Insert(5, 2)
		if m.Len() != 1 {
			t.Fatalf("%s: len = %d", name, m.Len())
		}
		if v, _ := m.Get(5); v != 2 {
			t.Fatalf("%s: update lost, v = %d", name, v)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	for name, mk := range implementations() {
		m := mk()
		for _, k := range workload.ShuffledInts(3, 500) {
			m.Insert(k, k)
		}
		var got []int64
		m.Scan(100, 199, func(k, v int64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 100 || got[0] != 100 || got[99] != 199 {
			t.Fatalf("%s: scan = %d keys [%d..%d]", name, len(got), got[0], got[len(got)-1])
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("%s: scan out of order", name)
		}
		// Early stop.
		n := 0
		m.Scan(0, 499, func(k, v int64) bool { n++; return n < 7 })
		if n != 7 {
			t.Fatalf("%s: early stop visited %d", name, n)
		}
	}
}

func TestSkipListNegativeAndExtremeKeys(t *testing.T) {
	s := NewSkipList(4)
	keys := []int64{0, -1, 1, -1 << 62, 1 << 62}
	for _, k := range keys {
		s.Insert(k, k)
	}
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
	var got []int64
	s.Scan(-1<<62, 1<<62, func(k, v int64) bool { got = append(got, k); return true })
	if len(got) != 5 {
		t.Fatalf("scan = %v", got)
	}
}

// TestConcurrentInserts hammers both structures from many goroutines and
// verifies no key is lost — run with -race this doubles as the memory-model
// check for the latch-free code.
func TestConcurrentInserts(t *testing.T) {
	for name, mk := range implementations() {
		m := mk()
		const workers, perWorker = 8, 2000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					k := int64(w*perWorker + i)
					m.Insert(k, k*3)
				}
			}()
		}
		wg.Wait()
		if m.Len() != workers*perWorker {
			t.Fatalf("%s: len = %d, want %d", name, m.Len(), workers*perWorker)
		}
		for k := int64(0); k < workers*perWorker; k++ {
			if v, ok := m.Get(k); !ok || v != k*3 {
				t.Fatalf("%s: lost key %d (v=%d ok=%v)", name, k, v, ok)
			}
		}
	}
}

// TestConcurrentOverlappingKeys makes goroutines race on the same keys:
// every key must end with one of the written values and Len must count
// distinct keys exactly once.
func TestConcurrentOverlappingKeys(t *testing.T) {
	for name, mk := range implementations() {
		m := mk()
		const workers, keys = 8, 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := int64(0); k < keys; k++ {
					m.Insert(k, int64(w))
				}
			}()
		}
		wg.Wait()
		if m.Len() != keys {
			t.Fatalf("%s: len = %d, want %d", name, m.Len(), keys)
		}
		for k := int64(0); k < keys; k++ {
			v, ok := m.Get(k)
			if !ok || v < 0 || v >= workers {
				t.Fatalf("%s: key %d has foreign value %d", name, k, v)
			}
		}
	}
}

// TestConcurrentReadersDuringWrites interleaves scans with inserts; scans
// must always see a sorted, duplicate-free prefix of the key space.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	s := NewSkipList(5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := int64(0); k < 20000; k++ {
			s.Insert(k, k)
		}
	}()
	for {
		var prev int64 = -1
		ok := true
		s.Scan(0, 1<<62, func(k, v int64) bool {
			if k <= prev {
				ok = false
				return false
			}
			prev = k
			return true
		})
		if !ok {
			t.Fatal("scan saw out-of-order or duplicate keys mid-insert")
		}
		select {
		case <-done:
			if s.Len() != 20000 {
				t.Fatalf("len = %d", s.Len())
			}
			return
		default:
		}
	}
}

func TestMakespanModels(t *testing.T) {
	m := hw.NUMA4S()
	const n, ops = 1 << 20, 1 << 20
	// Single worker: the locked tree is FASTER (no retries, cheap uncontended
	// latch vs CAS machinery is a wash; our model charges the latch hold
	// either way, so allow a small margin) — the point is it must not be
	// dramatically worse serially.
	l1 := LockedMakespan(m, n, ops, 1)
	f1 := LatchFreeMakespan(m, n, ops, 1)
	if l1 > 2*f1 {
		t.Fatalf("serial locked %e should be in the same class as latch-free %e", l1, f1)
	}
	// Scaling: by 32 workers the latch-free structure must be far ahead,
	// and the locked tree's makespan must flatline (serial term dominates).
	l32 := LockedMakespan(m, n, ops, 32)
	f32 := LatchFreeMakespan(m, n, ops, 32)
	if f32 >= l32 {
		t.Fatalf("at 32 workers latch-free %e should beat locked %e", f32, l32)
	}
	if speedup := l1 / l32; speedup > 4 {
		t.Fatalf("locked tree should not scale: speedup %f", speedup)
	}
	if speedup := f1 / f32; speedup < 8 {
		t.Fatalf("latch-free should scale: speedup %f", speedup)
	}
}

// Property: the skip list agrees with a reference map under arbitrary
// insert/update sequences, and scans return exactly the sorted key set.
func TestSkipListEquivalenceProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		s := NewSkipList(seed)
		ref := map[int64]int64{}
		for i, op := range ops {
			k, v := int64(op%256), int64(i)
			s.Insert(k, v)
			ref[k] = v
		}
		if s.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := s.Get(k)
			if !ok || got != v {
				return false
			}
		}
		var keys []int64
		s.Scan(0, 256, func(k, v int64) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != len(ref) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
