package concurrent

import (
	"math"
	"sync"

	"hwstar/internal/hw"
	"hwstar/internal/index"
)

// LockedTree wraps the cache-conscious B+-tree with one reader-writer latch
// — the conventional shared-index design whose writers serialize and whose
// latch cache line bounces between cores. It exists as the baseline the
// latch-free structure is measured against; its single-threaded performance
// is excellent, which is exactly the trap.
type LockedTree struct {
	mu sync.RWMutex
	bt *index.BTree
}

// NewLockedTree returns an empty lock-protected B+-tree.
func NewLockedTree() *LockedTree {
	return &LockedTree{bt: index.NewBTree(0)}
}

// Insert stores (key, value) under the write latch.
func (t *LockedTree) Insert(key, value int64) {
	t.mu.Lock()
	t.bt.Insert(key, value)
	t.mu.Unlock()
}

// Get returns the value under key, taking the read latch.
func (t *LockedTree) Get(key int64) (int64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bt.Get(key)
}

// Scan visits keys in [lo, hi] under the read latch.
func (t *LockedTree) Scan(lo, hi int64, fn func(key, val int64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.bt.Scan(lo, hi, fn)
}

// Len returns the number of stored keys.
func (t *LockedTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bt.Len()
}

// Cost model for E15 — update-heavy access to a shared index by P workers.
//
// Both models share the same per-operation structural work (a descent of
// the ordered structure, cache-resident levels plus a DRAM-class leaf
// touch). They differ in what sharing costs:
//
//   - the locked tree serializes writers: its makespan has a serial term of
//     lockHold cycles per write, plus latch-line transfer on every
//     acquisition;
//   - the latch-free list admits concurrent writers; contention appears
//     only as CAS retries, whose probability scales with P over the number
//     of distinct hot insertion points.

// opWork is the structural cost of one index operation against an index of
// n keys on machine m (dependent descent into a DRAM-resident structure).
func opWork(n int64) hw.Work {
	return hw.Work{
		Name:            "index-op",
		Tuples:          1,
		ComputePerTuple: 40, // descent comparisons and bookkeeping
		RandomReads:     3,  // levels that miss cache
		RandomWS:        n * 32,
	}
}

// lockHoldCycles is the latch hold time of one write (acquire, update leaf,
// release) and latchTransferCycles the cross-core latch line transfer.
const (
	lockHoldCycles      = 120.0
	latchTransferCycles = 120.0
)

// LockedMakespan returns the modeled cycles for ops update operations by
// `workers` cores against a locked index of n keys on m: the non-critical
// work runs in parallel, but every write holds the latch serially and every
// acquisition bounces the latch line once there is more than one worker.
func LockedMakespan(m *hw.Machine, n, ops int64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	per := m.Cycles(opWork(n), hw.ExecContext{ActiveCoresOnSocket: workers, InterferenceFactor: 1})
	parallel := float64(ops) * per / float64(workers)
	serial := float64(ops) * lockHoldCycles
	if workers > 1 {
		serial += float64(ops) * latchTransferCycles
	}
	return parallel + serial
}

// casRetryBase is the cost of one failed CAS (line transfer + retry work).
const casRetryBase = 150.0

// LatchFreeMakespan returns the modeled cycles for the same workload on the
// latch-free list: fully parallel, with CAS retries whose expected count per
// operation grows with workers over the breadth of insertion points
// (~sqrt(n) distinct hot neighbourhoods for uniform keys).
func LatchFreeMakespan(m *hw.Machine, n, ops int64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	per := m.Cycles(opWork(n), hw.ExecContext{ActiveCoresOnSocket: workers, InterferenceFactor: 1})
	hotPoints := float64(n)
	if hotPoints > 1 {
		// Conflicts need two writers in the same predecessor neighbourhood.
		hotPoints = math.Sqrt(hotPoints)
	}
	retryProb := float64(workers-1) / hotPoints
	if retryProb > 1 {
		retryProb = 1
	}
	perOp := per + retryProb*casRetryBase
	return float64(ops) * perOp / float64(workers)
}
