// Package concurrent contrasts two ways of sharing an ordered index among
// cores — the problem the Bw-tree (same proceedings, #28) attacks: a
// conventional lock-protected tree, whose writers serialize on latches and
// whose cache lines ping-pong, and a latch-free skip list whose inserts
// commit with a single CAS and whose readers never block. Both structures
// are real, concurrency-safe Go code (exercised with goroutines and the
// race detector in tests); their multicore behaviour is modelled for the
// E15 experiment, since the build host cannot run true parallelism.
//
// The skip list is insert/update/read-only (like every other index in this
// repository): with no deletions, lock-free insertion needs no node marking
// and is exactly the classic CAS-threading construction.
package concurrent

import "sync/atomic"

// maxLevel bounds the skip list height (supports ~2^32 keys at p=0.5).
const maxLevel = 32

// slNode is one skip-list node. next pointers are atomically threaded;
// value is atomically replaceable (updates in place).
type slNode struct {
	key   int64
	value atomic.Int64
	next  []atomic.Pointer[slNode]
}

// SkipList is a latch-free ordered map from int64 to int64 supporting
// concurrent Insert/Get/Scan without any locks.
type SkipList struct {
	head *slNode
	// level is the current highest level in use (monotone, atomically
	// raised).
	level atomic.Int32
	size  atomic.Int64
	// seed feeds the per-insert level choice; accessed atomically to stay
	// race-free without a lock.
	seed atomic.Uint64
}

// NewSkipList returns an empty skip list. seed makes level choices (and
// hence the structure) deterministic for a given insertion sequence in
// single-threaded use.
func NewSkipList(seed int64) *SkipList {
	head := &slNode{key: -1 << 63, next: make([]atomic.Pointer[slNode], maxLevel)}
	s := &SkipList{head: head}
	s.level.Store(1)
	s.seed.Store(uint64(seed)*2 + 1)
	return s
}

// Len returns the number of keys.
func (s *SkipList) Len() int { return int(s.size.Load()) }

// randomLevel draws a geometric level with p = 1/2 from a lock-free xorshift
// stream.
func (s *SkipList) randomLevel() int {
	for {
		old := s.seed.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.seed.CompareAndSwap(old, x) {
			lvl := 1
			for x&1 == 1 && lvl < maxLevel {
				lvl++
				x >>= 1
			}
			return lvl
		}
	}
}

// findPredecessors fills preds/succs with the nodes around key at every
// level.
func (s *SkipList) findPredecessors(key int64, preds, succs *[maxLevel]*slNode) {
	prev := s.head
	for lvl := int(s.level.Load()) - 1; lvl >= 0; lvl-- {
		cur := prev.next[lvl].Load()
		for cur != nil && cur.key < key {
			prev = cur
			cur = prev.next[lvl].Load()
		}
		preds[lvl] = prev
		succs[lvl] = cur
	}
}

// Get returns the value stored under key.
func (s *SkipList) Get(key int64) (int64, bool) {
	prev := s.head
	for lvl := int(s.level.Load()) - 1; lvl >= 0; lvl-- {
		cur := prev.next[lvl].Load()
		for cur != nil && cur.key < key {
			prev = cur
			cur = prev.next[lvl].Load()
		}
		if cur != nil && cur.key == key {
			return cur.value.Load(), true
		}
	}
	return 0, false
}

// Insert stores (key, value), atomically replacing the value of an existing
// key. Safe for concurrent use by any number of goroutines.
func (s *SkipList) Insert(key, value int64) {
	var preds, succs [maxLevel]*slNode
	for {
		s.findPredecessors(key, &preds, &succs)
		if n := succs[0]; n != nil && n.key == key {
			n.value.Store(value)
			return
		}
		topLevel := s.randomLevel()
		// Raise the list level if needed (monotone CAS loop).
		for {
			cur := s.level.Load()
			if int(cur) >= topLevel || s.level.CompareAndSwap(cur, int32(topLevel)) {
				break
			}
		}
		// Fill predecessor slots for levels the search loop did not cover
		// (those above the previous list level start at head).
		for lvl := 0; lvl < topLevel; lvl++ {
			if preds[lvl] == nil {
				preds[lvl] = s.head
				succs[lvl] = s.head.next[lvl].Load()
			}
		}
		node := &slNode{key: key, next: make([]atomic.Pointer[slNode], topLevel)}
		node.value.Store(value)
		for lvl := 0; lvl < topLevel; lvl++ {
			node.next[lvl].Store(succs[lvl])
		}
		// Linearization point: CAS the bottom level.
		if !preds[0].next[0].CompareAndSwap(succs[0], node) {
			continue // raced with another insert near this key; retry
		}
		s.size.Add(1)
		// Thread the upper levels best-effort; a failed CAS re-finds the
		// neighbourhood (the node is already reachable via level 0, so
		// correctness never depends on these).
		for lvl := 1; lvl < topLevel; lvl++ {
			for {
				if preds[lvl].next[lvl].CompareAndSwap(succs[lvl], node) {
					break
				}
				var p2, s2 [maxLevel]*slNode
				s.findPredecessors(key, &p2, &s2)
				if s2[lvl] == node {
					break // someone already sees it at this level
				}
				preds[lvl], succs[lvl] = p2[lvl], s2[lvl]
				if preds[lvl] == nil {
					preds[lvl] = s.head
					succs[lvl] = s.head.next[lvl].Load()
				}
				node.next[lvl].Store(succs[lvl])
			}
		}
		return
	}
}

// Scan visits keys in [lo, hi] ascending; fn returning false stops early.
func (s *SkipList) Scan(lo, hi int64, fn func(key, val int64) bool) {
	prev := s.head
	for lvl := int(s.level.Load()) - 1; lvl >= 0; lvl-- {
		cur := prev.next[lvl].Load()
		for cur != nil && cur.key < lo {
			prev = cur
			cur = prev.next[lvl].Load()
		}
	}
	for cur := prev.next[0].Load(); cur != nil && cur.key <= hi; cur = cur.next[0].Load() {
		if cur.key >= lo {
			if !fn(cur.key, cur.value.Load()) {
				return
			}
		}
	}
}
