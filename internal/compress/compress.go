// Package compress implements the lightweight column codecs main-memory
// engines use to trade (abundant) compute for (scarce) memory bandwidth —
// the keynote's bandwidth-wall theme in executable form: frame-of-reference
// bit-packing and run-length encoding, block-organized so scans decode
// block-at-a-time in cache and never materialize the full column.
package compress

import (
	"fmt"
	"math/bits"

	"hwstar/internal/hw"
)

// BlockValues is the number of values per compression block. Blocks decode
// into an 8 KiB stack-friendly buffer, well inside L1.
const BlockValues = 1024

// blockKind discriminates the per-block encoding.
type blockKind uint8

const (
	kindFOR blockKind = iota // frame-of-reference + bit-packing
	kindRLE                  // run-length encoding
)

// BlockHeaderBytes is the modelled encoded footprint of a block's metadata
// (kind, count, reference/width bookkeeping, zone map). A zone-map-pruned
// block costs only this many bytes of memory traffic.
const BlockHeaderBytes = 16

// block is one encoded block of up to BlockValues values.
type block struct {
	kind blockKind
	n    int // values in the block
	// Zone map: the exact min/max of the block's values, stored at encode
	// time so range predicates can prune (or accept) whole blocks without
	// decoding and without overflow-prone width arithmetic.
	minV, maxV int64
	// FOR: reference value, bit width, packed payload.
	ref   int64
	width uint8
	words []uint64
	// RLE: alternating value/run pairs.
	runs []int64
}

// Compressed is an encoded int64 column.
type Compressed struct {
	blocks []block
	n      int
}

// Encode compresses values, choosing FOR or RLE per block, whichever is
// smaller.
func Encode(values []int64) *Compressed {
	c := &Compressed{n: len(values)}
	for start := 0; start < len(values); start += BlockValues {
		end := start + BlockValues
		if end > len(values) {
			end = len(values)
		}
		c.blocks = append(c.blocks, encodeBlock(values[start:end]))
	}
	return c
}

func encodeBlock(vals []int64) block {
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	forB := encodeFOR(vals)
	b := forB
	rleB, ok := encodeRLE(vals)
	if ok && blockBytes(rleB) < blockBytes(forB) {
		b = rleB
	}
	b.minV, b.maxV = minV, maxV
	return b
}

func encodeFOR(vals []int64) block {
	minV := vals[0]
	maxV := vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := uint64(maxV - minV)
	width := uint8(bits.Len64(span))
	b := block{kind: kindFOR, n: len(vals), ref: minV, width: width}
	if width == 0 {
		return b // constant block: no payload at all
	}
	words := (len(vals)*int(width) + 63) / 64
	b.words = make([]uint64, words)
	bitPos := 0
	for _, v := range vals {
		delta := uint64(v - minV)
		word, off := bitPos/64, uint(bitPos%64)
		b.words[word] |= delta << off
		if off+uint(width) > 64 {
			b.words[word+1] |= delta >> (64 - off)
		}
		bitPos += int(width)
	}
	return b
}

// encodeRLE returns an RLE block and whether it is well-formed (it always
// is; the bool mirrors future codecs that can decline).
func encodeRLE(vals []int64) (block, bool) {
	b := block{kind: kindRLE, n: len(vals)}
	i := 0
	for i < len(vals) {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		b.runs = append(b.runs, vals[i], int64(j-i))
		i = j
	}
	return b, true
}

// blockBytes returns the encoded footprint of a block.
func blockBytes(b block) int64 {
	switch b.kind {
	case kindFOR:
		return BlockHeaderBytes + int64(len(b.words))*8
	case kindRLE:
		return BlockHeaderBytes + int64(len(b.runs))*8
	default:
		panic(fmt.Sprintf("compress: unknown block kind %d", b.kind))
	}
}

// Len returns the number of encoded values.
func (c *Compressed) Len() int { return c.n }

// Bytes returns the compressed footprint.
func (c *Compressed) Bytes() int64 {
	var t int64
	for _, b := range c.blocks {
		t += blockBytes(b)
	}
	return t
}

// RawBytes returns the uncompressed footprint.
func (c *Compressed) RawBytes() int64 { return int64(c.n) * 8 }

// Ratio returns raw/compressed size (higher is better), or 1 for an empty
// column.
func (c *Compressed) Ratio() float64 {
	cb := c.Bytes()
	if cb == 0 {
		return 1
	}
	return float64(c.RawBytes()) / float64(cb)
}

// decodeBlock expands a block into buf (len >= b.n) and returns the values.
func decodeBlock(b block, buf []int64) []int64 {
	out := buf[:b.n]
	switch b.kind {
	case kindFOR:
		if b.width == 0 {
			for i := range out {
				out[i] = b.ref
			}
			return out
		}
		width := uint(b.width)
		mask := uint64(1)<<width - 1
		if width == 64 {
			mask = ^uint64(0)
		}
		bitPos := 0
		for i := 0; i < b.n; i++ {
			word, off := bitPos/64, uint(bitPos%64)
			v := b.words[word] >> off
			if off+width > 64 {
				v |= b.words[word+1] << (64 - off)
			}
			out[i] = b.ref + int64(v&mask)
			bitPos += int(width)
		}
	case kindRLE:
		pos := 0
		for r := 0; r < len(b.runs); r += 2 {
			v, runLen := b.runs[r], int(b.runs[r+1])
			for k := 0; k < runLen; k++ {
				out[pos] = v
				pos++
			}
		}
	}
	return out
}

// Decode materializes the full column.
func (c *Compressed) Decode() []int64 {
	out := make([]int64, 0, c.n)
	var buf [BlockValues]int64
	for _, b := range c.blocks {
		out = append(out, decodeBlock(b, buf[:])...)
	}
	return out
}

// Sum scans the compressed column, decoding block-at-a-time in cache.
func (c *Compressed) Sum() int64 {
	var sum int64
	var buf [BlockValues]int64
	for _, b := range c.blocks {
		if b.kind == kindRLE {
			// RLE blocks aggregate without expansion: value × run length.
			for r := 0; r < len(b.runs); r += 2 {
				sum += b.runs[r] * b.runs[r+1]
			}
			continue
		}
		for _, v := range decodeBlock(b, buf[:]) {
			sum += v
		}
	}
	return sum
}

// RangeCount counts values in [lo, hi] without materializing the column.
// Blocks whose stored zone map misses the predicate are skipped outright,
// and blocks wholly inside it are counted without decoding. (Earlier
// versions derived the block maximum as ref + (1<<width - 1), which can
// overflow int64 for blocks near the top of the domain and silently skip
// blocks that matched; the zone map is exact and overflow-free.)
func (c *Compressed) RangeCount(lo, hi int64) int64 {
	var count int64
	var buf [BlockValues]int64
	for _, b := range c.blocks {
		if b.minV > hi || b.maxV < lo {
			continue
		}
		if b.minV >= lo && b.maxV <= hi {
			count += int64(b.n)
			continue
		}
		if b.kind == kindRLE {
			for r := 0; r < len(b.runs); r += 2 {
				if b.runs[r] >= lo && b.runs[r] <= hi {
					count += b.runs[r+1]
				}
			}
			continue
		}
		for _, v := range decodeBlock(b, buf[:]) {
			if v >= lo && v <= hi {
				count++
			}
		}
	}
	return count
}

// ScanWorkRaw models scanning n uncompressed values: pure streaming with
// trivial per-value compute.
func ScanWorkRaw(n int64) hw.Work {
	return hw.Work{
		Name:            "scan-raw",
		Tuples:          n,
		ComputePerTuple: 1,
		SeqReadBytes:    n * 8,
	}
}

// ScanWork models scanning this compressed column: fewer bytes cross the
// memory bus, paid for with per-value decode compute (shift/mask for FOR,
// run expansion bookkeeping for RLE). The trade is exactly the keynote's:
// spend the plentiful resource (ALU) to save the scarce one (bandwidth).
func (c *Compressed) ScanWork() hw.Work {
	return hw.Work{
		Name:            "scan-compressed",
		Tuples:          int64(c.n),
		ComputePerTuple: 4,
		SeqReadBytes:    c.Bytes(),
	}
}
