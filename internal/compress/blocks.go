// Block-level access to a compressed column: the entry points the
// vectorized execution path uses to scan FOR/RLE blocks in place —
// zone-map pruning, selection-vector filtering, and selective aggregation
// with decode-on-demand, block-at-a-time in cache.

package compress

// NumBlocks returns the number of encoded blocks.
func (c *Compressed) NumBlocks() int { return len(c.blocks) }

// BlockStart returns the row offset of block i within the column.
func (c *Compressed) BlockStart(i int) int { return i * BlockValues }

// BlockLen returns the number of values in block i (BlockValues except for
// a short final block).
func (c *Compressed) BlockLen(i int) int { return c.blocks[i].n }

// BlockBytes returns the encoded footprint of block i, header included —
// the memory traffic a scan of the block costs under the hw model.
func (c *Compressed) BlockBytes(i int) int64 { return blockBytes(c.blocks[i]) }

// BlockRange returns the exact min and max value in block i — the zone map
// stored at encode time.
func (c *Compressed) BlockRange(i int) (minV, maxV int64) {
	b := &c.blocks[i]
	return b.minV, b.maxV
}

// DecodeBlock expands block i into buf (len(buf) >= BlockLen(i)) and
// returns the decoded values.
func (c *Compressed) DecodeBlock(i int, buf []int64) []int64 {
	return decodeBlock(c.blocks[i], buf)
}

// RangeSelectBlock appends to out the in-block row indices of block i whose
// value lies in [lo, hi]. The returned all flag short-circuits full-block
// matches: when true, every row qualifies and nothing was appended, so the
// caller can aggregate the whole block (see SumBlockSel with a nil sel)
// without materializing BlockLen indices. scanned reports whether the
// block's payload was read: false when the zone map pruned the block or
// proved a full match (header-only traffic), true otherwise.
//
// RLE blocks select by run arithmetic — qualifying runs contribute their
// index ranges directly, no decode. FOR blocks decode into buf first.
//
// Whenever all is false the returned sel is non-nil even if empty: a nil
// selection vector means "all rows" to downstream primitives (see
// vecexec.Sel), so a filtered-to-zero block must stay distinguishable.
func (c *Compressed) RangeSelectBlock(i int, lo, hi int64, buf []int64, out []int32) (sel []int32, all, scanned bool) {
	b := &c.blocks[i]
	if b.minV > hi || b.maxV < lo {
		return notNil(out), false, false
	}
	if b.minV >= lo && b.maxV <= hi {
		return out, true, false
	}
	if b.kind == kindRLE {
		pos := int32(0)
		for r := 0; r < len(b.runs); r += 2 {
			v, runLen := b.runs[r], int32(b.runs[r+1])
			if v >= lo && v <= hi {
				for k := int32(0); k < runLen; k++ {
					out = append(out, pos+k)
				}
			}
			pos += runLen
		}
		return notNil(out), false, true
	}
	for j, v := range decodeBlock(*b, buf) {
		if v >= lo && v <= hi {
			out = append(out, int32(j))
		}
	}
	return notNil(out), false, true
}

// notNil turns a nil selection vector into an empty non-nil one without
// allocating, preserving the "nil means all rows" convention for callers
// that seeded out with nil.
func notNil(sel []int32) []int32 {
	if sel == nil {
		return []int32{}
	}
	return sel
}

// SumBlockSel sums the values of block i at the in-block indices in sel; a
// nil sel sums the whole block. scanned reports whether the payload was
// read — false only for the constant-block whole-sum fast path, which
// needs nothing beyond the header. Whole-block RLE sums use run
// arithmetic; selective sums decode into buf and gather.
func (c *Compressed) SumBlockSel(i int, sel []int32, buf []int64) (sum int64, scanned bool) {
	b := &c.blocks[i]
	if sel == nil {
		if b.kind == kindRLE {
			for r := 0; r < len(b.runs); r += 2 {
				sum += b.runs[r] * b.runs[r+1]
			}
			return sum, true
		}
		if b.width == 0 {
			return b.ref * int64(b.n), false
		}
		for _, v := range decodeBlock(*b, buf) {
			sum += v
		}
		return sum, true
	}
	if len(sel) == 0 {
		return 0, false
	}
	if b.kind == kindFOR && b.width == 0 {
		return b.ref * int64(len(sel)), false
	}
	vals := decodeBlock(*b, buf)
	for _, j := range sel {
		sum += vals[j]
	}
	return sum, true
}
