package compress

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func TestRoundTripKnownCases(t *testing.T) {
	cases := [][]int64{
		{},
		{42},
		{1, 2, 3, 4, 5},
		{7, 7, 7, 7, 7, 7},
		{-100, 100, 0, -50, 50},
		{math.MaxInt64, math.MinInt64, 0},
	}
	for _, in := range cases {
		c := Encode(in)
		got := c.Decode()
		if len(in) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty round trip = %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("round trip %v = %v", in, got)
		}
		if c.Len() != len(in) {
			t.Fatalf("Len = %d", c.Len())
		}
	}
}

func TestRoundTripLarge(t *testing.T) {
	for name, data := range map[string][]int64{
		"uniform-small-domain": workload.UniformInts(1, 50000, 256),
		"uniform-wide":         workload.UniformInts(2, 50000, 1<<40),
		"sequential":           workload.SequentialInts(50000),
		"zipf":                 workload.ZipfInts(3, 50000, 1<<20, 1.5),
	} {
		c := Encode(data)
		if !reflect.DeepEqual(c.Decode(), data) {
			t.Fatalf("%s: round trip failed", name)
		}
	}
}

func TestCompressionRatios(t *testing.T) {
	// 8-bit domain packs ~8x (frame-of-reference to one byte per value).
	narrow := Encode(workload.UniformInts(4, 100000, 256))
	if r := narrow.Ratio(); r < 6 {
		t.Fatalf("8-bit domain ratio = %.2f, want > 6", r)
	}
	// Constant column collapses almost entirely (RLE or width-0 FOR).
	constant := Encode(make([]int64, 100000))
	if r := constant.Ratio(); r < 100 {
		t.Fatalf("constant column ratio = %.2f, want > 100", r)
	}
	// Full-width random data cannot compress.
	wide := Encode(workload.UniformInts(5, 100000, math.MaxInt64))
	if r := wide.Ratio(); r > 1.1 {
		t.Fatalf("incompressible ratio = %.2f, want ~1", r)
	}
	if wide.Bytes() <= 0 || wide.RawBytes() != 800000 {
		t.Fatal("byte accounting wrong")
	}
}

func TestRLEChosenForRunHeavyData(t *testing.T) {
	// Long runs: RLE should beat FOR (values span a wide range, killing
	// bit-packing, but runs are long).
	data := make([]int64, 10000)
	for i := range data {
		data[i] = int64(i/1000) * 1e12
	}
	c := Encode(data)
	if r := c.Ratio(); r < 50 {
		t.Fatalf("run-heavy ratio = %.2f, want > 50", r)
	}
	if !reflect.DeepEqual(c.Decode(), data) {
		t.Fatal("RLE round trip failed")
	}
}

func TestSumMatchesReference(t *testing.T) {
	for _, data := range [][]int64{
		workload.UniformInts(6, 30000, 1000),
		workload.ZipfInts(7, 30000, 100, 1.5), // triggers RLE fast path in places
		{-5, -5, -5, 10},
	} {
		var want int64
		for _, v := range data {
			want += v
		}
		if got := Encode(data).Sum(); got != want {
			t.Fatalf("Sum = %d, want %d", got, want)
		}
	}
}

func TestRangeCountMatchesReference(t *testing.T) {
	data := workload.UniformInts(8, 30000, 10000)
	c := Encode(data)
	for _, r := range [][2]int64{{0, 9999}, {100, 200}, {5000, 5000}, {-10, -1}, {20000, 30000}} {
		var want int64
		for _, v := range data {
			if v >= r[0] && v <= r[1] {
				want++
			}
		}
		if got := c.RangeCount(r[0], r[1]); got != want {
			t.Fatalf("RangeCount[%d,%d] = %d, want %d", r[0], r[1], got, want)
		}
	}
}

func TestRangeCountBlockPruning(t *testing.T) {
	// Sorted data gives disjoint per-block ranges; a narrow predicate must
	// still count exactly (pruning is an optimization, not a semantics
	// change).
	data := workload.SequentialInts(100000)
	c := Encode(data)
	if got := c.RangeCount(50_000, 50_099); got != 100 {
		t.Fatalf("pruned range count = %d, want 100", got)
	}
	if got := c.RangeCount(-5, -1); got != 0 {
		t.Fatalf("out-of-domain count = %d", got)
	}
}

func TestScanWorkTradeoff(t *testing.T) {
	m := hw.Server2S()
	data := workload.UniformInts(9, 1<<20, 256) // packs ~8x
	c := Encode(data)

	// One idle core: raw wins (no decode cost, bandwidth is free).
	solo := hw.DefaultContext()
	rawSolo := m.Cycles(ScanWorkRaw(int64(len(data))), solo)
	compSolo := m.Cycles(c.ScanWork(), solo)
	if compSolo <= rawSolo {
		t.Fatalf("idle machine: compressed %f should lose to raw %f", compSolo, rawSolo)
	}

	// Full socket: bandwidth per core collapses and compression wins.
	busy := hw.ExecContext{ActiveCoresOnSocket: m.CoresPerSocket, InterferenceFactor: 1}
	rawBusy := m.Cycles(ScanWorkRaw(int64(len(data))), busy)
	compBusy := m.Cycles(c.ScanWork(), busy)
	if compBusy >= rawBusy {
		t.Fatalf("saturated socket: compressed %f should beat raw %f", compBusy, rawBusy)
	}
}

// Property: encode/decode is the identity for arbitrary data, and the
// compressed aggregates agree with the plain ones.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []int32, narrow bool) bool {
		data := make([]int64, len(raw))
		for i, v := range raw {
			if narrow {
				data[i] = int64(v % 16)
			} else {
				data[i] = int64(v) * 1000003
			}
		}
		c := Encode(data)
		dec := c.Decode()
		if len(dec) != len(data) {
			return false
		}
		var want int64
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
			want += data[i]
		}
		if c.Sum() != want {
			return false
		}
		var wantCount int64
		for _, v := range data {
			if v >= -1000 && v <= 1000 {
				wantCount++
			}
		}
		return c.RangeCount(-1000, 1000) == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
