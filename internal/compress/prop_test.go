package compress

import (
	"math"
	"math/rand"
	"testing"
)

// propGen produces adversarial column shapes: long RLE runs straddling
// block boundaries, FOR blocks whose deltas sit near the top of the int64
// domain, constant stretches, and full-domain noise.
type propGen struct {
	name string
	gen  func(r *rand.Rand, n int) []int64
}

var propGens = []propGen{
	{"uniform-small", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = r.Int63n(1000)
		}
		return out
	}},
	{"long-runs", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, 0, n)
		for len(out) < n {
			v := r.Int63n(50) - 25
			runLen := 1 + r.Intn(3*BlockValues) // runs cross block boundaries
			for k := 0; k < runLen && len(out) < n; k++ {
				out = append(out, v)
			}
		}
		return out
	}},
	{"near-overflow-high", func(r *rand.Rand, n int) []int64 {
		// Values packed against MaxInt64 with spans wide enough that the
		// old width-derived block maximum (ref + (1<<width - 1)) wraps
		// negative.
		out := make([]int64, n)
		span := int64(1)<<61 + r.Int63n(1<<61)
		for i := range out {
			out[i] = math.MaxInt64 - r.Int63n(span)
		}
		return out
	}},
	{"near-overflow-low", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		span := int64(1)<<61 + r.Int63n(1<<61)
		for i := range out {
			out[i] = math.MinInt64 + r.Int63n(span)
		}
		return out
	}},
	{"full-domain", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(r.Uint64())
		}
		return out
	}},
	{"sorted-ramp", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		v := r.Int63n(1 << 40)
		for i := range out {
			v += r.Int63n(16)
			out[i] = v
		}
		return out
	}},
}

// propRange draws a predicate range, mixing tight ranges around observed
// values (so block-straddling part-matches happen) with extreme bounds.
func propRange(r *rand.Rand, vals []int64) (int64, int64) {
	switch r.Intn(4) {
	case 0:
		return math.MinInt64, math.MaxInt64
	case 1: // tight window around a sampled value
		v := vals[r.Intn(len(vals))]
		w := r.Int63n(1 << 10)
		lo := v - w
		if lo > v { // wrapped
			lo = math.MinInt64
		}
		hi := v + w
		if hi < v {
			hi = math.MaxInt64
		}
		return lo, hi
	case 2: // half-open high
		return vals[r.Intn(len(vals))], math.MaxInt64
	default: // window between two sampled values (maybe empty)
		a, b := vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]
		if a > b {
			a, b = b, a
		}
		return a, b
	}
}

// TestPropertyCodecMatchesRaw cross-checks Decode, Sum, RangeCount, and the
// block-level select/sum primitives against the raw slice across seeded
// random inputs. Sizes deliberately straddle block boundaries.
func TestPropertyCodecMatchesRaw(t *testing.T) {
	r := rand.New(rand.NewSource(0xC0DEC))
	sizes := []int{1, 7, BlockValues - 1, BlockValues, BlockValues + 1, 3*BlockValues + 513}
	for _, g := range propGens {
		for trial := 0; trial < 8; trial++ {
			n := sizes[trial%len(sizes)]
			vals := g.gen(r, n)
			c := Encode(vals)

			got := c.Decode()
			if len(got) != len(vals) {
				t.Fatalf("%s n=%d: Decode len=%d", g.name, n, len(got))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%s n=%d: Decode[%d]=%d want %d", g.name, n, i, got[i], vals[i])
				}
			}

			var wantSum int64
			for _, v := range vals {
				wantSum += v // wrapping add; codec paths must wrap identically
			}
			if s := c.Sum(); s != wantSum {
				t.Fatalf("%s n=%d: Sum=%d want %d", g.name, n, s, wantSum)
			}

			for q := 0; q < 16; q++ {
				lo, hi := propRange(r, vals)
				var want int64
				for _, v := range vals {
					if v >= lo && v <= hi {
						want++
					}
				}
				if cnt := c.RangeCount(lo, hi); cnt != want {
					t.Fatalf("%s n=%d: RangeCount(%d,%d)=%d want %d", g.name, n, lo, hi, cnt, want)
				}
				checkBlockSelect(t, g.name, c, vals, lo, hi)
			}
		}
	}
}

// checkBlockSelect verifies RangeSelectBlock + SumBlockSel reproduce the
// reference filtered sum and count per block.
func checkBlockSelect(t *testing.T, name string, c *Compressed, vals []int64, lo, hi int64) {
	t.Helper()
	var buf [BlockValues]int64
	for i := 0; i < c.NumBlocks(); i++ {
		start, bn := c.BlockStart(i), c.BlockLen(i)
		var wantCnt int
		var wantSum int64
		for _, v := range vals[start : start+bn] {
			if v >= lo && v <= hi {
				wantCnt++
				wantSum += v
			}
		}
		sel, all, _ := c.RangeSelectBlock(i, lo, hi, buf[:], nil)
		var gotCnt int
		var gotSum int64
		if all {
			if len(sel) != 0 {
				t.Fatalf("%s block %d: all=true with %d appended indices", name, i, len(sel))
			}
			gotCnt = bn
			gotSum, _ = c.SumBlockSel(i, nil, buf[:])
		} else {
			gotCnt = len(sel)
			gotSum, _ = c.SumBlockSel(i, sel, buf[:])
		}
		if gotCnt != wantCnt || gotSum != wantSum {
			t.Fatalf("%s block %d [%d,%d]: got cnt=%d sum=%d want cnt=%d sum=%d",
				name, i, lo, hi, gotCnt, gotSum, wantCnt, wantSum)
		}
	}
}

// TestRangeCountPruneOverflowRegression pins the zone-map fix: with the
// old width-derived pruning, a block packed against MaxInt64 computed its
// maximum as ref + (1<<width - 1), which wraps negative and pruned the
// block even though every value matched.
func TestRangeCountPruneOverflowRegression(t *testing.T) {
	vals := []int64{math.MaxInt64 - 6, math.MaxInt64 - 1, math.MaxInt64 - 4}
	c := Encode(vals)
	if got := c.RangeCount(math.MaxInt64-6, math.MaxInt64); got != 3 {
		t.Fatalf("RangeCount over near-MaxInt64 block = %d, want 3", got)
	}
	if got := c.RangeCount(math.MaxInt64-5, math.MaxInt64-1); got != 2 {
		t.Fatalf("partial RangeCount over near-MaxInt64 block = %d, want 2", got)
	}
}

// TestBlockRangeAndBytes sanity-checks the block metadata accessors used
// for pruning and cost accounting.
func TestBlockRangeAndBytes(t *testing.T) {
	vals := make([]int64, BlockValues+10)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	c := Encode(vals)
	if c.NumBlocks() != 2 {
		t.Fatalf("NumBlocks=%d", c.NumBlocks())
	}
	if c.BlockLen(0) != BlockValues || c.BlockLen(1) != 10 {
		t.Fatalf("BlockLen = %d,%d", c.BlockLen(0), c.BlockLen(1))
	}
	if c.BlockStart(1) != BlockValues {
		t.Fatalf("BlockStart(1)=%d", c.BlockStart(1))
	}
	minV, maxV := c.BlockRange(0)
	if minV != 0 || maxV != 96 {
		t.Fatalf("BlockRange(0) = %d,%d", minV, maxV)
	}
	var total int64
	for i := 0; i < c.NumBlocks(); i++ {
		if c.BlockBytes(i) < BlockHeaderBytes {
			t.Fatalf("BlockBytes(%d)=%d below header", i, c.BlockBytes(i))
		}
		total += c.BlockBytes(i)
	}
	if total != c.Bytes() {
		t.Fatalf("sum of BlockBytes %d != Bytes %d", total, c.Bytes())
	}
}
