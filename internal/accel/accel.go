// Package accel models the specialized accelerators the keynote's
// dark-silicon discussion predicts (FPGA dataflow engines in the style of
// the author's group's Ibex/IBM Netezza line): a streaming device that
// executes filter/aggregate operators at line rate but pays a fixed setup
// latency and must receive its input over a transfer link. The offload
// planner decides per operator whether the CPU or the accelerator is
// cheaper — the crossover experiment E7 sweeps data size to locate where
// offloading starts to win.
//
// Operators run for real on the host (the model prices, never fakes,
// results); only the cost is the device's.
package accel

import (
	"fmt"

	"hwstar/internal/hw"
)

// Device describes a streaming accelerator. Cycles are host-clock cycles so
// costs compare directly with CPU work priced by the machine model.
type Device struct {
	// Name labels the device in experiment output.
	Name string
	// SetupCycles is the fixed cost of launching one offloaded operator
	// (command submission, pipeline fill, result collection).
	SetupCycles float64
	// BytesPerCycle is the device's streaming throughput once running.
	BytesPerCycle float64
	// TransferBytesPerCycle is the host→device link bandwidth; data must
	// cross it unless the device sits in the data path.
	TransferBytesPerCycle float64
	// InDataPath marks devices that see the data anyway (e.g. on the
	// storage or network path), eliminating the transfer term.
	InDataPath bool
}

// Validate reports an error for non-positive parameters.
func (d Device) Validate() error {
	if d.SetupCycles < 0 || d.BytesPerCycle <= 0 || (!d.InDataPath && d.TransferBytesPerCycle <= 0) {
		return fmt.Errorf("accel: device %q has invalid parameters", d.Name)
	}
	return nil
}

// FPGA2013 returns a device modelled on early-2010s FPGA query accelerators:
// high setup cost, line-rate streaming, PCIe-class transfer link.
func FPGA2013() Device {
	return Device{
		Name:                  "fpga-pcie",
		SetupCycles:           2_000_000, // ~0.8ms at 2.4GHz
		BytesPerCycle:         16,        // processes a full line burst per cycle
		TransferBytesPerCycle: 3,         // ~PCIe gen2 x8 effective
	}
}

// SmartStorage returns an in-data-path device (Ibex-style "intelligent
// storage engine"): modest throughput but no transfer cost and low setup.
func SmartStorage() Device {
	return Device{
		Name:          "smart-storage",
		SetupCycles:   200_000,
		BytesPerCycle: 6,
		InDataPath:    true,
	}
}

// OffloadCycles prices streaming `bytes` through the device.
func (d Device) OffloadCycles(bytes int64) float64 {
	c := d.SetupCycles + float64(bytes)/d.BytesPerCycle
	if !d.InDataPath {
		c += float64(bytes) / d.TransferBytesPerCycle
	}
	return c
}

// Placement says where the planner decided to run an operator.
type Placement string

// Placements.
const (
	PlaceCPU   Placement = "cpu"
	PlaceAccel Placement = "accel"
)

// Plan compares the CPU cost of a streaming operator (priced on machine m
// under ctx) with the device cost and returns the cheaper placement along
// with both costs.
func Plan(d Device, m *hw.Machine, ctx hw.ExecContext, w hw.Work) (Placement, float64, float64) {
	cpu := m.Cycles(w, ctx)
	bytes := w.SeqReadBytes + w.SeqWriteBytes + w.RemoteSeqBytes
	dev := d.OffloadCycles(bytes)
	if dev < cpu {
		return PlaceAccel, cpu, dev
	}
	return PlaceCPU, cpu, dev
}

// FilterSum is the operator used by the offload experiments: count and sum
// of values within [lo, hi]. Run executes it on the host and returns the
// result plus the cycles of the chosen placement.
type FilterSum struct {
	Device  Device
	Machine *hw.Machine
	Ctx     hw.ExecContext
}

// Result of a FilterSum execution.
type Result struct {
	Count     int64
	Sum       int64
	Placement Placement
	// CPUCycles and AccelCycles are both reported so experiments can plot
	// the crossover; Cycles is the chosen one.
	CPUCycles, AccelCycles, Cycles float64
}

// Run filters data to [lo, hi], returning count/sum and modeled costs.
func (f FilterSum) Run(data []int64, lo, hi int64) (Result, error) {
	if err := f.Device.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	for _, v := range data {
		if v >= lo && v <= hi {
			res.Count++
			res.Sum += v
		}
	}
	w := hw.Work{
		Name:            "filter-sum",
		Tuples:          int64(len(data)),
		ComputePerTuple: 3,
		SeqReadBytes:    int64(len(data)) * 8,
		BranchMisses:    int64(len(data)) / 4,
	}
	res.Placement, res.CPUCycles, res.AccelCycles = Plan(f.Device, f.Machine, f.Ctx, w)
	if res.Placement == PlaceAccel {
		res.Cycles = res.AccelCycles
	} else {
		res.Cycles = res.CPUCycles
	}
	return res, nil
}

// Crossover returns the smallest data size (in bytes, probed at powers of
// two between 1 KiB and maxBytes) at which offloading the canonical
// filter-sum beats the CPU, or -1 when it never does.
func Crossover(d Device, m *hw.Machine, ctx hw.ExecContext, maxBytes int64) int64 {
	for bytes := int64(1 << 10); bytes <= maxBytes; bytes <<= 1 {
		tuples := bytes / 8
		w := hw.Work{
			Tuples:          tuples,
			ComputePerTuple: 3,
			SeqReadBytes:    bytes,
			BranchMisses:    tuples / 4,
		}
		if p, _, _ := Plan(d, m, ctx, w); p == PlaceAccel {
			return bytes
		}
	}
	return -1
}
