package accel

import (
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func TestDeviceValidate(t *testing.T) {
	if err := FPGA2013().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmartStorage().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Device{Name: "bad", BytesPerCycle: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero throughput should be invalid")
	}
	noLink := Device{Name: "nolink", SetupCycles: 1, BytesPerCycle: 1}
	if err := noLink.Validate(); err == nil {
		t.Fatal("discrete device without link bandwidth should be invalid")
	}
}

func TestOffloadCyclesComponents(t *testing.T) {
	d := Device{Name: "d", SetupCycles: 100, BytesPerCycle: 10, TransferBytesPerCycle: 5}
	// 1000 bytes: 100 setup + 100 stream + 200 transfer.
	if got := d.OffloadCycles(1000); got != 400 {
		t.Fatalf("offload = %f, want 400", got)
	}
	d.InDataPath = true
	if got := d.OffloadCycles(1000); got != 200 {
		t.Fatalf("in-path offload = %f, want 200", got)
	}
}

func TestPlanPrefersCPUForSmallData(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()
	d := FPGA2013()
	small := hw.Work{Tuples: 100, ComputePerTuple: 3, SeqReadBytes: 800}
	p, cpu, dev := Plan(d, m, ctx, small)
	if p != PlaceCPU {
		t.Fatalf("small data should stay on CPU (cpu=%f dev=%f)", cpu, dev)
	}
	if dev < d.SetupCycles {
		t.Fatal("device cost must include setup")
	}
}

func TestPlanPrefersAccelForLargeStreams(t *testing.T) {
	m := hw.Server2S()
	// A busy socket makes CPU streaming expensive — consolidation pressure
	// is exactly when offload pays.
	ctx := hw.ExecContext{ActiveCoresOnSocket: 8, InterferenceFactor: 1}
	d := FPGA2013()
	big := hw.Work{Tuples: 1 << 26, ComputePerTuple: 3, SeqReadBytes: 1 << 29} // 512 MiB
	p, cpu, dev := Plan(d, m, ctx, big)
	if p != PlaceAccel {
		t.Fatalf("large stream should offload (cpu=%f dev=%f)", cpu, dev)
	}
}

func TestCrossoverMonotone(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.ExecContext{ActiveCoresOnSocket: 8, InterferenceFactor: 1}
	d := FPGA2013()
	cross := Crossover(d, m, ctx, 1<<34)
	if cross <= 0 {
		t.Fatal("FPGA should win somewhere below 16 GiB on a busy socket")
	}
	// Everything at or above the crossover must also prefer the device.
	for bytes := cross; bytes <= cross<<3; bytes <<= 1 {
		tuples := bytes / 8
		w := hw.Work{Tuples: tuples, ComputePerTuple: 3, SeqReadBytes: bytes, BranchMisses: tuples / 4}
		if p, _, _ := Plan(d, m, ctx, w); p != PlaceAccel {
			t.Fatalf("placement flipped back to CPU at %d bytes", bytes)
		}
	}
	// The in-data-path device crosses over earlier.
	crossSmart := Crossover(SmartStorage(), m, ctx, 1<<34)
	if crossSmart <= 0 || crossSmart > cross {
		t.Fatalf("in-path device crossover %d should not exceed discrete %d", crossSmart, cross)
	}
}

func TestCrossoverNeverForTinyLimit(t *testing.T) {
	m := hw.Server2S()
	if c := Crossover(FPGA2013(), m, hw.DefaultContext(), 1<<12); c != -1 {
		t.Fatalf("crossover within 4 KiB should be impossible, got %d", c)
	}
}

func TestFilterSumCorrectness(t *testing.T) {
	m := hw.Server2S()
	data := workload.UniformInts(1, 10000, 1000)
	var wantCount, wantSum int64
	for _, v := range data {
		if v >= 100 && v <= 499 {
			wantCount++
			wantSum += v
		}
	}
	f := FilterSum{Device: FPGA2013(), Machine: m, Ctx: hw.DefaultContext()}
	res, err := f.Run(data, 100, 499)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantCount || res.Sum != wantSum {
		t.Fatalf("filter-sum = %d/%d, want %d/%d", res.Count, res.Sum, wantCount, wantSum)
	}
	if res.Cycles <= 0 || res.CPUCycles <= 0 || res.AccelCycles <= 0 {
		t.Fatalf("cycles not reported: %+v", res)
	}
	if res.Placement == PlaceAccel && res.Cycles != res.AccelCycles {
		t.Fatal("chosen cycles inconsistent")
	}
}

func TestFilterSumInvalidDevice(t *testing.T) {
	m := hw.Laptop()
	f := FilterSum{Device: Device{Name: "bad"}, Machine: m, Ctx: hw.DefaultContext()}
	if _, err := f.Run([]int64{1}, 0, 1); err == nil {
		t.Fatal("invalid device should fail")
	}
}

// Property: the planner is consistent — it picks the strictly cheaper side
// (ties go to the CPU).
func TestPlanConsistencyProperty(t *testing.T) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()
	d := FPGA2013()
	f := func(kb uint16) bool {
		bytes := int64(kb)*1024 + 8
		w := hw.Work{Tuples: bytes / 8, ComputePerTuple: 3, SeqReadBytes: bytes}
		p, cpu, dev := Plan(d, m, ctx, w)
		if p == PlaceAccel {
			return dev < cpu
		}
		return cpu <= dev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
