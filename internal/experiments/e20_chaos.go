package experiments

import (
	"context"
	"sort"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/sched"
	"hwstar/internal/serve"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Chaos: resilient execution under injected panics, stragglers, and transients",
		Claim: "panic isolation, straggler re-dispatch, and morsel retry keep tail latency bounded and complete every admitted query under a fault mix that fails or 8x-inflates a naive engine",
		Run:   runE20,
	})
}

// e20TrialStats aggregates one engine configuration over many fault trials.
type e20TrialStats struct {
	completed int
	attempts  int
	makespans []float64 // cumulative Mcyc to success, completed trials only
	faults    sched.FaultStats
}

func (s *e20TrialStats) quantile(q float64) float64 {
	if len(s.makespans) == 0 {
		return 0
	}
	sort.Float64s(s.makespans)
	i := int(q * float64(len(s.makespans)-1))
	return s.makespans[i]
}

// e20SchedTrials runs `trials` independent chaos trials of the same morsel
// set. A trial re-runs the query until it succeeds (capped at maxAttempts),
// and its latency is the CUMULATIVE makespan across attempts: the retry-free
// engine has no morsel recovery, so every injected panic burns the cycles
// already spent and forces a whole-query re-execution, while the resilient
// engine absorbs the same faults inside a single run. Attempt k of trial t
// uses injector seed base+100*t+k for both engines, so they face identical
// fault draws.
func e20SchedTrials(m *hw.Machine, trials, nTasks int, cost float64, resilient bool) (e20TrialStats, error) {
	const maxAttempts = 50
	var out e20TrialStats
	for trial := 0; trial < trials; trial++ {
		var spent float64
		done := false
		for attempt := 0; attempt < maxAttempts && !done; attempt++ {
			inj := fault.New(fault.Config{
				Seed:          9000 + 100*int64(trial) + int64(attempt),
				PanicProb:     0.01,
				StragglerProb: 0.10,
				StragglerSkew: 8,
			})
			opts := sched.Options{
				Workers:   8,
				Stealing:  true,
				Inject:    inj,
				BlockSize: 8,
			}
			if resilient {
				opts.IsolatePanics = true
				opts.StragglerThreshold = 3
			}
			s, err := sched.New(m, opts)
			if err != nil {
				return out, err
			}
			tasks := make([]sched.Task, nTasks)
			for i := range tasks {
				tasks[i] = sched.Task{
					Name: "chaos-morsel",
					Site: "chaos-morsel",
					Run:  func(w *sched.Worker) { w.AdvanceCycles(cost) },
				}
			}
			res, runErr := s.RunContext(context.Background(), tasks)
			out.attempts++
			out.faults.Add(res.FaultStats)
			spent += res.MakespanCycles / 1e6 // failed attempts still burned their cycles
			done = runErr == nil
		}
		if done {
			out.completed++
			out.makespans = append(out.makespans, spent)
		}
	}
	return out, nil
}

func runE20(cfg Config) ([]*Table, error) {
	m := hw.Server2S()

	// Part 1: scheduler-level chaos. The same morsel set, the same per-trial
	// fault seeds; the only difference is whether the scheduler isolates
	// panics and retires stragglers. Fully deterministic: the virtual-time
	// loop draws faults in one thread, so a seed fixes the whole trial.
	trials := cfg.scaled(60, 20)
	nTasks := 256
	const cost = 1e5 // cycles per morsel => 3.2 Mcyc ideal makespan on 8 workers
	t1 := bench.NewTable("E20: naive vs resilient scheduling, "+bench.F("%d", trials)+" trials of "+bench.F("%d", nTasks)+" morsels (1% panic, 10% straggler @8x)",
		"engine", "completed", "attempts", "p50 Mcyc", "p99 Mcyc", "panics", "retries", "re-dispatched", "stragglers retired")
	naive, err := e20SchedTrials(m, trials, nTasks, cost, false)
	if err != nil {
		return nil, err
	}
	resil, err := e20SchedTrials(m, trials, nTasks, cost, true)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		s    e20TrialStats
	}{{"naive", naive}, {"resilient", resil}} {
		t1.AddRow(row.name,
			bench.F("%d/%d", row.s.completed, trials),
			bench.F("%d", row.s.attempts),
			bench.F("%.2f", row.s.quantile(0.50)),
			bench.F("%.2f", row.s.quantile(0.99)),
			bench.F("%d", row.s.faults.Panics),
			bench.F("%d", row.s.faults.TaskRetries),
			bench.F("%d", row.s.faults.Redispatched),
			bench.F("%d", row.s.faults.StragglersRetired))
	}
	t1.AddNote("latency is cumulative Mcyc to success: the naive engine re-runs the whole query after every panic, paying for the cycles it burned; the resilient engine absorbs the same faults in one run")

	// Part 2: serving-level chaos. Both servers run the same block-claiming
	// scheduler config under the same fault seed; only the resilience policy
	// differs. The client resubmits a failed query (up to 10 times), and a
	// query's latency is the cumulative Mcyc over its submissions — failed
	// passes report the cycles they burned, so the cost of failure is
	// charged to the client that caused it. Sequential submissions with
	// MaxBatch=1 keep the injector's draw order deterministic.
	rows := cfg.scaled(1<<18, 1<<14)
	cols := [][]int64{
		workload.UniformInts(2001, rows, 100000),
		workload.UniformInts(2002, rows, 1000),
	}
	queriesN := cfg.scaled(200, 40)
	los := workload.UniformInts(2003, queriesN, 90000)

	type serveStats struct {
		completed, gaveUp, submissions int
		p99                            float64
		h                              serve.Health
	}
	runServer := func(resilient bool) (serveStats, error) {
		var st serveStats
		opts := serve.Options{
			QueueDepth:     4,
			MaxBatch:       1,
			Workers:        8,
			SchedBlockSize: 8,
			ScanSegRows:    rows / 64, // ~64 morsels per pass
			Faults: fault.New(fault.Config{
				Seed:          9900,
				PanicProb:     0.005,
				TransientProb: 0.005,
				StragglerProb: 0.10,
				StragglerSkew: 8,
			}),
		}
		if resilient {
			opts.MaxRetries = 3
			opts.RetryBackoff = 50 * time.Microsecond
			opts.IsolatePanics = true
			opts.StragglerThreshold = 3
		}
		s, err := serve.New(m, opts)
		if err != nil {
			return st, err
		}
		defer s.Close()
		if err := s.Register("facts", cols); err != nil {
			return st, err
		}
		var cycles []float64
		for i := 0; i < queriesN; i++ {
			var spent float64
			done := false
			for attempt := 0; attempt < 10 && !done; attempt++ {
				resp, err := s.Submit(context.Background(), serve.Request{
					Op:    serve.OpScan,
					Table: "facts",
					Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1},
				})
				st.submissions++
				spent += resp.SimCycles / 1e6 // failed passes report burned cycles
				done = err == nil
			}
			if done {
				st.completed++
				cycles = append(cycles, spent)
			} else {
				st.gaveUp++
			}
		}
		if len(cycles) > 0 {
			sort.Float64s(cycles)
			st.p99 = cycles[int(0.99*float64(len(cycles)-1))]
		}
		st.h = s.Health()
		return st, nil
	}

	t2 := bench.NewTable("E20: naive vs resilient serving, "+bench.F("%d", queriesN)+" sequential scans (0.5% panic, 0.5% transient, 10% straggler @8x)",
		"server", "completed", "gave up", "submissions", "p99 Mcyc", "retries", "panics recovered", "stragglers retired", "faults injected")
	for _, resilient := range []bool{false, true} {
		name := "naive"
		if resilient {
			name = "resilient"
		}
		st, err := runServer(resilient)
		if err != nil {
			return nil, err
		}
		var injected int64
		for _, n := range st.h.Faults {
			injected += n
		}
		t2.AddRow(name,
			bench.F("%d", st.completed),
			bench.F("%d", st.gaveUp),
			bench.F("%d", st.submissions),
			bench.F("%.2f", st.p99),
			bench.F("%d", st.h.Retries),
			bench.F("%d", st.h.PanicsRecovered),
			bench.F("%d", st.h.StragglersRetired),
			bench.F("%d", injected))
	}
	t2.AddNote("latency is cumulative Mcyc across a query's submissions: the naive server makes its clients resubmit and re-pay for every fault; the resilient server absorbs faults with morsel retry, isolation, and straggler re-dispatch")
	return []*Table{t1, t2}, nil
}
