package experiments

import (
	"context"
	"hwstar/internal/agg"
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/sched"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Multicore scaling of scan / aggregation / join",
		Claim: "performance now comes from cores, but memory bandwidth walls off linear speedup",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E2a",
		Title: "Work stealing ablation under task skew",
		Claim: "static partitioning leaves cores idle when work is skewed",
		Run:   runE2a,
	})
	register(Experiment{
		ID:    "E2b",
		Title: "Morsel size sweep",
		Claim: "morsels must be small enough to balance, large enough to amortize dispatch",
		Run:   runE2b,
	})
}

func runE2(cfg Config) ([]*Table, error) {
	m := hw.NUMA4S()
	rows := cfg.scaled(1<<22, 1<<14)
	keys := workload.ZipfInts(201, rows, int64(rows/64)+1, 1.1)
	vals := workload.UniformInts(202, rows, 1000)
	jin := joinInput(workload.JoinConfig{Seed: 203, BuildRows: rows / 8, ProbeRows: rows / 2})

	t := bench.NewTable("E2: simulated speedup vs cores ("+m.Name+", memory-bound scan / radix agg / radix join)",
		"cores", "scan speedup", "agg speedup", "join speedup", "ideal")

	workers := []int{1, 2, 4, 8, 16, 32, 64}
	var scan1, agg1, join1 float64
	for _, w := range workers {
		if w > m.TotalCores() {
			break
		}
		// Scan: pure streaming morsels.
		s, err := sched.New(m, sched.Options{Workers: w, Stealing: true})
		if err != nil {
			return nil, err
		}
		tasks := sched.Morsels(rows, 1<<14, "scan", func(start, end int, wk *sched.Worker) {
			wk.Charge(hw.Work{Name: "scan", Tuples: int64(end - start), ComputePerTuple: 2,
				SeqReadBytes: int64(end-start) * 16})
		})
		scanMk := s.Run(tasks).MakespanCycles

		// Aggregation: radix-partitioned.
		s2, err := sched.New(m, sched.Options{Workers: w, Stealing: true})
		if err != nil {
			return nil, err
		}
		aggRes, err := agg.Parallel(context.Background(), keys, vals, agg.StrategyRadix, s2, m, 1<<14)
		if err != nil {
			return nil, err
		}

		// Join: parallel radix.
		s3, err := sched.New(m, sched.Options{Workers: w, Stealing: true})
		if err != nil {
			return nil, err
		}
		joinRes, err := join.ParallelRadix(context.Background(), jin, join.RadixOptions{}, s3, m, 1<<14)
		if err != nil {
			return nil, err
		}

		if w == 1 {
			scan1, agg1, join1 = scanMk, aggRes.MakespanCycles, joinRes.MakespanCycles
		}
		t.AddRow(bench.F("%d", w),
			bench.Ratio(scan1/scanMk),
			bench.Ratio(agg1/aggRes.MakespanCycles),
			bench.Ratio(join1/joinRes.MakespanCycles),
			bench.F("%d.00x", w))
	}
	t.AddNote("scan saturates at the per-socket bandwidth wall; compute-heavier operators scale further")
	return []*Table{t}, nil
}

func runE2a(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	nTasks := cfg.scaled(512, 32)
	t := bench.NewTable("E2a: work stealing under skewed task durations ("+m.Name+", 16 workers)",
		"skew", "no-steal makespan Mcyc", "steal makespan Mcyc", "steal benefit")
	for _, skew := range []float64{1, 4, 16, 64} {
		mk := func(stealing bool) (float64, error) {
			s, err := sched.New(m, sched.Options{Workers: 16, Stealing: stealing})
			if err != nil {
				return 0, err
			}
			tasks := make([]sched.Task, nTasks)
			for i := range tasks {
				dur := 1000.0
				if i%16 == 0 {
					dur *= skew
				}
				d := dur
				// Pin everything to socket 0 to model data born on one node.
				tasks[i] = sched.Task{Socket: 0, Run: func(w *sched.Worker) { w.AdvanceCycles(d) }}
			}
			return s.Run(tasks).MakespanCycles, nil
		}
		noSteal, err := mk(false)
		if err != nil {
			return nil, err
		}
		steal, err := mk(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(bench.F("%.0fx", skew),
			bench.F("%.2f", noSteal/1e6), bench.F("%.2f", steal/1e6),
			bench.Ratio(noSteal/steal))
	}
	t.AddNote("all work is born on socket 0; without stealing the other socket's 8 cores idle")
	return []*Table{t}, nil
}

func runE2b(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	rows := cfg.scaled(1<<22, 1<<15)
	t := bench.NewTable("E2b: morsel size sweep, parallel scan ("+m.Name+", 16 workers)",
		"morsel rows", "tasks", "makespan Mcyc", "imbalance")
	const dispatchCycles = 2000 // per-task scheduling overhead
	for _, morsel := range []int{1 << 8, 1 << 11, 1 << 14, 1 << 17, 1 << 20} {
		s, err := sched.New(m, sched.Options{Workers: 16, Stealing: true})
		if err != nil {
			return nil, err
		}
		tasks := sched.Morsels(rows, morsel, "scan", func(start, end int, wk *sched.Worker) {
			wk.AdvanceCycles(dispatchCycles)
			wk.Charge(hw.Work{Tuples: int64(end - start), ComputePerTuple: 2,
				SeqReadBytes: int64(end-start) * 16})
		})
		res := s.Run(tasks)
		t.AddRow(bench.F("%d", morsel), bench.F("%d", res.TasksRun),
			bench.F("%.2f", res.MakespanCycles/1e6), bench.F("%.3f", res.Imbalance()))
	}
	t.AddNote("tiny morsels pay dispatch overhead; huge morsels leave the tail unbalanced")
	return []*Table{t}, nil
}
