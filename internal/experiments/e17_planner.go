package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/planner"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Hardware-conscious planning: variant choice by machine model",
		Claim: "the right operator is a function of hardware and statistics; a cost model can pick it at plan time",
		Run:   runE17,
	})
}

func runE17(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	ctx := hw.DefaultContext()

	// Table 1: the decision map over (build size × miss fraction).
	t1 := bench.NewTable("E17: planner decision map ("+m.Name+", probe = 4x build)",
		"build rows", "miss 0%", "miss 50%", "miss 90%")
	for _, build := range []int64{1 << 12, 1 << 16, 1 << 20, 1 << 23} {
		row := []string{bench.F("%d", build)}
		for _, miss := range []float64{0, 0.5, 0.9} {
			p := planner.ChooseJoin(m, join.Stats{BuildRows: build, ProbeRows: 4 * build, MissFrac: miss}, ctx)
			row = append(row, string(p.Variant))
		}
		t1.AddRow(row...)
	}
	t1.AddNote("cache-resident builds keep the naive join; big builds switch to MLP-recovering variants;")
	t1.AddNote("high miss rates bring in the semi-join filter — all read off the machine model, no heuristics")

	// Table 2: plan quality — execute the plan and every alternative on
	// real data; report the regret (chosen / best actual cycles).
	t2 := bench.NewTable("E17: plan quality on executed joins (regret = chosen/best actual cycles)",
		"build rows", "miss", "chosen", "regret")
	grid := []struct {
		build int
		miss  float64
	}{
		{1 << 12, 0},
		{1 << 16, 0.5},
		{1 << 18, 0},
		{1 << 18, 0.9},
	}
	for _, g := range grid {
		n := cfg.scaled(g.build, 1<<10)
		gen := workload.GenerateJoin(workload.JoinConfig{Seed: 1701, BuildRows: n, ProbeRows: 4 * n, Miss: g.miss})
		in := join.Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
		p, regret, err := planner.Regret(in, m, ctx, g.miss)
		if err != nil {
			return nil, err
		}
		t2.AddRow(bench.F("%d", n), bench.F("%.2f", g.miss), string(p.Variant), bench.F("%.3f", regret))
	}
	t2.AddNote("regret 1.000 means the model picked the true winner; small regret means a near-tie")
	return []*Table{t1, t2}, nil
}
