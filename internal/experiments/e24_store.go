package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
	"hwstar/internal/store"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Title: "Durable tier: crash recovery, recovery time vs data volume, checkpoint interference",
		Claim: "a checkpointed storage tier with an atomically-committed manifest never loses a committed version across injected mid-checkpoint kills and replays exactly the pre-crash contents; recovery cost scales with validated data volume through the modeled flash tier; and background checkpoints run concurrently with serving without collapsing interactive latency",
		Run:   runE24,
	})
}

// E24CrashBench summarizes the kill/recover schedules — the durability
// contract, counted exactly. LostVersions and ContentMismatches must be
// zero; the experiment fails loudly otherwise.
type E24CrashBench struct {
	Schedules         int `json:"schedules"`
	Lives             int `json:"lives_per_schedule"`
	InjectedCrashes   int `json:"injected_crashes"`
	Checkpoints       int `json:"committed_checkpoints"`
	Recoveries        int `json:"recoveries"`
	Fallbacks         int `json:"recovery_fallbacks"`
	LostVersions      int `json:"lost_committed_versions"`
	ContentMismatches int `json:"content_mismatches"`
}

// E24RecoveryPoint is one point of the recovery-time-vs-volume sweep.
type E24RecoveryPoint struct {
	Tables         int     `json:"tables"`
	BytesValidated int64   `json:"bytes_validated"`
	SimMcycles     float64 `json:"sim_mcycles"`
	WallMs         float64 `json:"wall_ms"`
}

// E24InterferenceBench compares interactive scan p99 with and without
// background checkpoints running against the same durable server.
type E24InterferenceBench struct {
	BaselineP50Ms   float64 `json:"baseline_p50_ms"`
	BaselineP99Ms   float64 `json:"baseline_p99_ms"`
	CheckpointP50Ms float64 `json:"checkpoint_p50_ms"`
	CheckpointP99Ms float64 `json:"checkpoint_p99_ms"`
	P99Ratio        float64 `json:"p99_checkpoint_vs_baseline"`
	Checkpoints     int64   `json:"checkpoints_committed"`
	SegmentBytes    int64   `json:"checkpoint_bytes"`
}

// E24Bench is the full E24 outcome — the schema of BENCH_store.json.
type E24Bench struct {
	Scale        float64              `json:"scale"`
	Machine      string               `json:"machine"`
	Crash        E24CrashBench        `json:"crash_recovery"`
	Recovery     []E24RecoveryPoint   `json:"recovery_vs_volume"`
	Interference E24InterferenceBench `json:"checkpoint_interference"`
}

// e24Cols derives the columns staged for one attempt version of one
// schedule. Contents are a function of the version alone (within a
// schedule), so every landed MANIFEST-v has exactly one possible content
// and recovery can be verified byte-for-byte no matter which life landed
// it.
func e24Cols(sched int, version uint64, rows int) [][]int64 {
	return [][]int64{
		workload.UniformInts(int64(sched)*1000+int64(version), rows, 1_000_000),
		workload.UniformInts(int64(sched)*1000+int64(version)+500, rows, 1000),
	}
}

// e24Verify compares every table of a freshly recovered store against the
// expected state for its version, returning the mismatch count.
func e24Verify(ctx context.Context, st *store.Store, want map[string][][]int64) int {
	mismatches := 0
	if got := st.Tables(); len(got) != len(want) {
		mismatches++
	}
	for name, wantCols := range want {
		t, _, err := st.Load(ctx, name)
		if err != nil {
			mismatches++
			continue
		}
		gotCols, ok := store.ColsFromTable(t)
		if !ok || len(gotCols) != len(wantCols) {
			mismatches++
			continue
		}
		for c := range wantCols {
			if len(gotCols[c]) != len(wantCols[c]) {
				mismatches++
				break
			}
			for r := range wantCols[c] {
				if gotCols[c][r] != wantCols[c][r] {
					mismatches++
					break
				}
			}
		}
	}
	return mismatches
}

// runE24Crash runs the kill/recover schedules: each schedule is a sequence
// of "lives" over one directory — open (recover), verify the recovered
// state byte-for-byte, stage new data, checkpoint under a seeded injector
// that may kill the process mid-checkpoint, abandon the store without
// cleanup (the SIGKILL), repeat.
//
// A checkpoint that returns success must be visible to the next life. A
// checkpoint that "died" is commit-uncertain, exactly like a crash during
// any WAL commit: the attempt's manifest may or may not have landed, so the
// next life must recover either the previous version or the attempted one —
// never anything older than the last acked commit, and always with the
// exact contents recorded for whatever version it landed on.
func runE24Crash(m *hw.Machine, schedules, lives, rows int) (E24CrashBench, error) {
	ctx := context.Background()
	b := E24CrashBench{Schedules: schedules, Lives: lives}
	for sched := 0; sched < schedules; sched++ {
		dir, err := os.MkdirTemp("", "hwstar-e24-crash-*")
		if err != nil {
			return b, err
		}
		// states[v] is the one possible content of version v; committed is
		// the last acked version, attempted the highest version any
		// checkpoint tried to write.
		states := map[uint64]map[string][][]int64{0: {}}
		var committed, attempted uint64
		for life := 0; life < lives; life++ {
			in := fault.New(fault.Config{
				Seed:      int64(2400 + sched*100 + life),
				CrashProb: 0.4,
				MaxFaults: 1,
			})
			st, err := store.Open(store.Options{Dir: dir, Machine: m, Faults: in})
			if err != nil {
				os.RemoveAll(dir)
				return b, fmt.Errorf("e24: schedule %d life %d: recovery failed: %w", sched, life, err)
			}
			b.Recoveries++
			b.Fallbacks += st.Recovery().Fallbacks
			v := st.Version()
			if v < committed || v > attempted || states[v] == nil {
				b.LostVersions++
			} else {
				b.ContentMismatches += e24Verify(ctx, st, states[v])
			}

			// Stage the deterministic table for the next version and try to
			// commit it.
			next := v + 1
			name := fmt.Sprintf("t%d", int(next)%4)
			cols := e24Cols(sched, next, rows)
			nextState := make(map[string][][]int64, len(states[v])+1)
			for n, c := range states[v] {
				nextState[n] = c
			}
			nextState[name] = cols
			states[next] = nextState
			if next > attempted {
				attempted = next
			}
			t, err := store.TableFromCols(name, cols)
			if err != nil {
				os.RemoveAll(dir)
				return b, err
			}
			if err := st.Put(t); err != nil {
				os.RemoveAll(dir)
				return b, err
			}
			_, err = st.Checkpoint(ctx, nil)
			switch {
			case err == nil:
				b.Checkpoints++
				committed = next
			case errors.Is(err, store.ErrInjectedCrash):
				// The process "died" mid-checkpoint: partial files stay on
				// disk, the commit is uncertain until the next recovery.
				b.InjectedCrashes++
			default:
				os.RemoveAll(dir)
				return b, fmt.Errorf("e24: schedule %d life %d: checkpoint: %w", sched, life, err)
			}
			// No Close: a kill does not run shutdown hooks.
		}
		os.RemoveAll(dir)
	}
	if b.LostVersions > 0 || b.ContentMismatches > 0 {
		return b, fmt.Errorf("e24: durability contract violated: %d lost committed versions, %d content mismatches (want 0 and 0)",
			b.LostVersions, b.ContentMismatches)
	}
	return b, nil
}

// runE24Recovery measures recovery against data volume: checkpoint k tables
// of fixed size, reopen, and record what replay validated and what it cost
// through the modeled flash tier.
func runE24Recovery(m *hw.Machine, tableCounts []int, rows int) ([]E24RecoveryPoint, error) {
	ctx := context.Background()
	var points []E24RecoveryPoint
	for _, k := range tableCounts {
		dir, err := os.MkdirTemp("", "hwstar-e24-recover-*")
		if err != nil {
			return nil, err
		}
		st, err := store.Open(store.Options{Dir: dir, Machine: m})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		for i := 0; i < k; i++ {
			cols := [][]int64{
				workload.UniformInts(int64(2450+i), rows, 1_000_000),
				workload.UniformInts(int64(2460+i), rows, 1000),
			}
			t, err := store.TableFromCols(fmt.Sprintf("vol%d", i), cols)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			if err := st.Put(t); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
		}
		if _, err := st.Checkpoint(ctx, nil); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		st.Close()

		st2, err := store.Open(store.Options{Dir: dir, Machine: m})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		r := st2.Recovery()
		points = append(points, E24RecoveryPoint{
			Tables:         r.TablesTotal,
			BytesValidated: r.BytesValidated,
			SimMcycles:     r.SimCycles / 1e6,
			WallMs:         float64(r.WallNanos) / 1e6,
		})
		st2.Close()
		os.RemoveAll(dir)
	}
	return points, nil
}

// e24Workload fires clients×requests interactive scans at srv and returns
// the per-request wall latencies in milliseconds. Lo windows walk the key
// domain deterministically — no RNG, so both phases submit the identical
// query stream.
func e24Workload(srv *serve.Server, clients, requests int) []float64 {
	var mu sync.Mutex
	var latencies []float64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				lo := int64((c*7919 + i*104729) % 90000)
				req := serve.Request{
					Op:    serve.OpScan,
					Table: "facts",
					Query: scan.Query{FilterCol: 0, Lo: lo, Hi: lo + 5000, AggCol: 1},
				}
				start := time.Now()
				_, err := srv.Submit(context.Background(), req)
				if err != nil {
					continue
				}
				ms := float64(time.Since(start).Microseconds()) / 1000
				mu.Lock()
				latencies = append(latencies, ms)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return latencies
}

// runE24Interference measures interactive p99 on a durable server twice:
// once quiescent, once with a short-interval background checkpointer racing
// the same workload while a churn writer keeps marking tables dirty (clean
// tables checkpoint for free; the interference under test is segment
// encoding and flash writes on the serving path's machine).
func runE24Interference(m *hw.Machine, clients, requests, factRows, churnRows int) (E24InterferenceBench, error) {
	run := func(interval time.Duration) ([]float64, int64, int64, error) {
		dir, err := os.MkdirTemp("", "hwstar-e24-cp-*")
		if err != nil {
			return nil, 0, 0, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(store.Options{Dir: dir, Machine: m})
		if err != nil {
			return nil, 0, 0, err
		}
		defer st.Close()
		srv, err := serve.New(m, serve.Options{
			Workers:            8,
			QueueDepth:         1024,
			MaxBatch:           256,
			BatchWindow:        500 * time.Microsecond,
			Store:              st,
			CheckpointInterval: interval,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		if err := srv.WaitRecovered(context.Background()); err != nil {
			srv.Close()
			return nil, 0, 0, err
		}
		facts := [][]int64{
			workload.UniformInts(2471, factRows, 100000),
			workload.UniformInts(2472, factRows, 1000),
		}
		if err := srv.Register("facts", facts); err != nil {
			srv.Close()
			return nil, 0, 0, err
		}
		// Persist the initial load before the measured window (both phases):
		// the steady state under test is incremental background checkpoints,
		// not the one-off bulk write of the whole fact table.
		if _, err := srv.Checkpoint(context.Background()); err != nil {
			srv.Close()
			return nil, 0, 0, err
		}

		// Churn writer: keep a side table dirty so every background
		// checkpoint has real segment work, in both phases (in the baseline
		// it only stages memory).
		stopChurn := make(chan struct{})
		var churnWG sync.WaitGroup
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for gen := 0; ; gen++ {
				select {
				case <-stopChurn:
					return
				case <-time.After(2 * time.Millisecond):
				}
				cols := [][]int64{workload.UniformInts(int64(2480+gen), churnRows, 1000)}
				_ = srv.Register("churn", cols)
			}
		}()

		lat := e24Workload(srv, clients, requests)
		close(stopChurn)
		churnWG.Wait()
		if err := srv.Close(); err != nil {
			return nil, 0, 0, err
		}
		// Health after Close so the shutdown flush counts too.
		h := srv.Health()
		return lat, h.Checkpoints, srv.Metrics().Counter("serve.checkpoint_bytes").Value(), nil
	}

	baseLat, _, _, err := run(0)
	if err != nil {
		return E24InterferenceBench{}, err
	}
	cpLat, cpCount, cpBytes, err := run(10 * time.Millisecond)
	if err != nil {
		return E24InterferenceBench{}, err
	}
	b := E24InterferenceBench{
		BaselineP50Ms:   quantileOf(baseLat, 0.5),
		BaselineP99Ms:   quantileOf(baseLat, 0.99),
		CheckpointP50Ms: quantileOf(cpLat, 0.5),
		CheckpointP99Ms: quantileOf(cpLat, 0.99),
		Checkpoints:     cpCount,
		SegmentBytes:    cpBytes,
	}
	if b.BaselineP99Ms > 0 {
		b.P99Ratio = b.CheckpointP99Ms / b.BaselineP99Ms
	}
	return b, nil
}

// RunE24 executes the durability experiment and returns both the rendered
// tables and the structured bench artifact (BENCH_store.json).
func RunE24(cfg Config) (*E24Bench, []*Table, error) {
	m := hw.Server2S()
	schedules := cfg.scaled(16, 4)
	lives := cfg.scaled(8, 4)
	crashRows := cfg.scaled(4096, 512)
	recoveryRows := cfg.scaled(1<<15, 1<<11)
	clients := cfg.scaled(8, 4)
	requests := cfg.scaled(150, 25)
	factRows := cfg.scaled(1<<19, 1<<14)
	churnRows := cfg.scaled(1<<14, 1<<11)

	crash, err := runE24Crash(m, schedules, lives, crashRows)
	if err != nil {
		return nil, nil, err
	}
	recovery, err := runE24Recovery(m, []int{1, 2, 4, 8}, recoveryRows)
	if err != nil {
		return nil, nil, err
	}
	interference, err := runE24Interference(m, clients, requests, factRows, churnRows)
	if err != nil {
		return nil, nil, err
	}

	b := &E24Bench{
		Scale:        cfg.Scale,
		Machine:      "server-2s8c",
		Crash:        crash,
		Recovery:     recovery,
		Interference: interference,
	}

	t1 := bench.NewTable(
		fmt.Sprintf("E24: committed state across injected mid-checkpoint kills (%d schedules × %d lives, crash prob 0.4)",
			crash.Schedules, crash.Lives),
		"recoveries", "injected crashes", "committed checkpoints", "fallbacks", "lost versions", "content mismatches")
	t1.AddRow(bench.F("%d", crash.Recoveries), bench.F("%d", crash.InjectedCrashes),
		bench.F("%d", crash.Checkpoints), bench.F("%d", crash.Fallbacks),
		bench.F("%d", crash.LostVersions), bench.F("%d", crash.ContentMismatches))

	t2 := bench.NewTable("E24: recovery replay vs data volume (modeled flash reads, full checksum validation)",
		"tables", "bytes validated", "modeled Mcycles", "wall ms")
	for _, p := range recovery {
		t2.AddRow(bench.F("%d", p.Tables), bench.F("%d", p.BytesValidated),
			bench.F("%.2f", p.SimMcycles), bench.F("%.2f", p.WallMs))
	}

	t3 := bench.NewTable("E24: interactive scan latency with background checkpoints racing the workload",
		"phase", "p50 ms", "p99 ms", "p99 vs baseline", "checkpoints", "segment bytes")
	t3.AddRow("no checkpoints", bench.F("%.3f", interference.BaselineP50Ms),
		bench.F("%.3f", interference.BaselineP99Ms), "1.00x", "0", "0")
	t3.AddRow("10ms interval", bench.F("%.3f", interference.CheckpointP50Ms),
		bench.F("%.3f", interference.CheckpointP99Ms), bench.F("%.2fx", interference.P99Ratio),
		bench.F("%d", interference.Checkpoints), bench.F("%d", interference.SegmentBytes))

	return b, []*Table{t1, t2, t3}, nil
}

func runE24(cfg Config) ([]*Table, error) {
	_, tables, err := RunE24(cfg)
	return tables, err
}
