package experiments

import (
	"sync"

	"hwstar/internal/bench"
	"hwstar/internal/concurrent"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Latch-free vs lock-based shared index under concurrent updates",
		Claim: "latches serialize multicore writers; CAS-threaded structures keep scaling",
		Run:   runE15,
	})
}

func runE15(cfg Config) ([]*Table, error) {
	m := hw.NUMA4S()
	n := int64(cfg.scaled(1<<20, 1<<14))
	ops := int64(cfg.scaled(1<<20, 1<<14))

	t := bench.NewTable("E15: "+bench.F("%d", ops)+" updates to a shared index of "+bench.F("%d", n)+" keys ("+m.Name+")",
		"workers", "locked Mcyc", "latch-free Mcyc", "locked speedup", "latch-free speedup", "advantage")
	l1 := concurrent.LockedMakespan(m, n, ops, 1)
	f1 := concurrent.LatchFreeMakespan(m, n, ops, 1)
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		if w > m.TotalCores() {
			break
		}
		lw := concurrent.LockedMakespan(m, n, ops, w)
		fw := concurrent.LatchFreeMakespan(m, n, ops, w)
		t.AddRow(bench.F("%d", w),
			bench.F("%.1f", lw/1e6),
			bench.F("%.1f", fw/1e6),
			bench.Ratio(l1/lw),
			bench.Ratio(f1/fw),
			bench.Ratio(lw/fw))
	}
	t.AddNote("the locked tree's makespan flatlines at the latch's serial term; CAS retries stay rare")

	// Live correctness witness: both structures absorb the same concurrent
	// insert workload on the host and agree on the result.
	keys := workload.ShuffledInts(1501, int(minI64(n, 1<<15)))
	sl := concurrent.NewSkipList(1)
	lt := concurrent.NewLockedTree()
	var wg sync.WaitGroup
	const goroutines = 8
	chunk := (len(keys) + goroutines - 1) / goroutines
	for g := 0; g < goroutines; g++ {
		lo := g * chunk
		hi := min(lo+chunk, len(keys))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []int64) {
			defer wg.Done()
			for _, k := range part {
				sl.Insert(k, k)
				lt.Insert(k, k)
			}
		}(keys[lo:hi])
	}
	wg.Wait()
	if sl.Len() != len(keys) || lt.Len() != len(keys) {
		return nil, bench.ErrMismatch("E15", int64(sl.Len()), int64(lt.Len()))
	}
	t.AddNote("live witness: %d concurrent inserts from %d goroutines, zero lost in either structure",
		len(keys), goroutines)
	return []*Table{t}, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
