package experiments

import (
	"context"
	"sync"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Concurrent query service: shared-scan batching and admission control",
		Claim: "a serving layer that batches concurrent scans into one clock scan amortizes the pass across clients, and a bounded intake queue sheds load instead of collapsing",
		Run:   runE19,
	})
}

func runE19(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	rows := cfg.scaled(1<<19, 1<<13)
	cols := [][]int64{
		workload.UniformInts(1901, rows, 100000),
		workload.UniformInts(1902, rows, 1000),
	}

	// Part 1: N concurrent scan clients against two server configurations —
	// MaxBatch=1 degenerates to per-query execution, MaxBatch=N lets the
	// window collect the whole cohort into one shared clock scan. Each
	// client reports its amortized modeled cycles; the comparison is the
	// serving-layer version of E3's sharing argument.
	t1 := bench.NewTable("E19: batched vs per-query serving over "+bench.F("%d", rows)+" rows ("+m.Name+")",
		"clients", "per-query Mcyc/q", "batched Mcyc/q", "speedup", "batches", "batch p50", "admitted", "rejected")

	runCohort := func(clients, maxBatch int) (meanMcyc float64, batches int, p50 float64, admitted, rejected int64, err error) {
		s, err := serve.New(m, serve.Options{
			QueueDepth:  clients,
			MaxBatch:    maxBatch,
			BatchWindow: 10 * time.Second, // flush on MaxBatch, deterministically
		})
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		defer s.Close()
		if err := s.Register("facts", cols); err != nil {
			return 0, 0, 0, 0, 0, err
		}
		los := workload.UniformInts(1903, clients, 90000)
		cycles := make([]float64, clients)
		errsOut := make([]error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := s.Submit(context.Background(), serve.Request{
					Op:    serve.OpScan,
					Table: "facts",
					Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1},
				})
				if err != nil {
					errsOut[i] = err
					return
				}
				cycles[i] = resp.SimCycles
			}()
		}
		wg.Wait()
		var total float64
		for i := 0; i < clients; i++ {
			if errsOut[i] != nil {
				return 0, 0, 0, 0, 0, errsOut[i]
			}
			total += cycles[i]
		}
		bs := s.Metrics().Histogram("serve.batch_size")
		ctrs := s.Metrics().Counters()
		return total / float64(clients) / 1e6, bs.Count(), bs.Quantile(0.5),
			ctrs["serve.admitted"], ctrs["serve.rejected"], nil
	}

	for _, clients := range []int{8, 32, 128} {
		perQ, _, _, _, _, err := runCohort(clients, 1)
		if err != nil {
			return nil, err
		}
		batched, batches, p50, admitted, rejected, err := runCohort(clients, clients)
		if err != nil {
			return nil, err
		}
		t1.AddRow(bench.F("%d", clients),
			bench.F("%.2f", perQ),
			bench.F("%.2f", batched),
			bench.Ratio(perQ/batched),
			bench.F("%d", batches),
			bench.F("%.0f", p50),
			bench.F("%d", admitted),
			bench.F("%d", rejected))
	}
	t1.AddNote("per-query serving re-reads the columns per client; the batched server answers the cohort in one pass")

	// Part 2: admission control. Aggregations serialize on the worker
	// budget, so a burst far beyond the intake queue must be shed with
	// ErrOverloaded while every admitted request still completes.
	t2 := bench.NewTable("E19: admission control under a "+bench.F("%d", 64)+"-client burst",
		"queue depth", "admitted", "rejected", "completed")
	keys := workload.ZipfInts(1904, cfg.scaled(1<<20, 1<<12), 4096, 1.1)
	vals := workload.UniformInts(1905, len(keys), 100)
	for _, depth := range []int{4, 16} {
		s, err := serve.New(m, serve.Options{QueueDepth: depth, OpWorkers: m.TotalCores()})
		if err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Submit(context.Background(), serve.Request{
					Op: serve.OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyRadix,
				})
			}()
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			return nil, err
		}
		ctrs := s.Metrics().Counters()
		t2.AddRow(bench.F("%d", depth),
			bench.F("%d", ctrs["serve.admitted"]),
			bench.F("%d", ctrs["serve.rejected"]),
			bench.F("%d", ctrs["serve.completed"]))
	}
	t2.AddNote("rejected = admitted-queue overflow surfaced to clients as ErrOverloaded, not unbounded buffering")
	return []*Table{t1, t2}, nil
}
