package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Semi-join reduction with a blocked Bloom filter",
		Claim: "a cache-line filter turns non-matching probes from DRAM walks into LLC touches",
		Run:   runE16,
	})
}

func runE16(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	n := cfg.scaled(1<<21, 1<<12) // build side: hash table beyond the LLC at full scale
	t := bench.NewTable("E16: group-prefetched NPO join ± blocked Bloom filter, build="+bench.F("%d", n)+", probe=4x ("+m.Name+")",
		"miss frac", "npo+gp Mcyc", "npo+gp+bloom Mcyc", "bloom speedup")
	for _, miss := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		gen := workload.GenerateJoin(workload.JoinConfig{Seed: 1601, BuildRows: n, ProbeRows: 4 * n, Miss: miss})
		in := join.Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}

		plain := hw.NewAccount(m, hw.DefaultContext())
		pr, err := join.NPOPrefetch(in, plain)
		if err != nil {
			return nil, err
		}
		bloomed := hw.NewAccount(m, hw.DefaultContext())
		br, err := join.NPOBloom(in, bloomed)
		if err != nil {
			return nil, err
		}
		if pr.Matches != br.Matches || pr.Checksum != br.Checksum {
			return nil, errMismatch("E16", pr.Matches, br.Matches)
		}
		t.AddRow(bench.F("%.2f", miss),
			bench.F("%.1f", plain.TotalCycles()/1e6),
			bench.F("%.1f", bloomed.TotalCycles()/1e6),
			bench.Ratio(plain.TotalCycles()/bloomed.TotalCycles()))
	}
	t.AddNote("at 0%% misses the filter is pure overhead; the payoff grows with the reject rate")
	t.AddNote("against a prefetched probe loop the break-even sits high: rejecting a probe only saves an overlapped miss")
	return []*Table{t}, nil
}
