package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/cluster"
	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/planner"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
	"hwstar/internal/shard"
	"hwstar/internal/store"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E26",
		Title: "Sharded tier: node-loss failover, hedged-dispatch tails, typed partial results, distributed join strategies",
		Claim: "a replicated consistent-hash serving tier survives seeded node-kill/failover cycles with zero lost committed answers on replicated ranges (recovery re-replicating from surviving durable stores); hedged dispatch bounds the straggler tail to within 2x the no-fault p99; total replica loss degrades to typed partial results that are exact over the covered fraction, never silently wrong totals; and the planner's cost model picks shuffle vs broadcast per the fabric price while distributed joins stay exact",
		Run:   runE26,
	})
}

// E26FailoverBench counts the kill/failover cycles — the replication
// contract, verified exactly. LostAnswers must be zero.
type E26FailoverBench struct {
	Cycles         int   `json:"kill_failover_cycles"`
	NodeKills      int   `json:"node_kills"`
	ScansVerified  int   `json:"scans_verified"`
	LostAnswers    int   `json:"lost_committed_answers"`
	Rereplications int64 `json:"rereplications"`
}

// E26HedgeBench compares scan latency on a healthy cluster against one with
// injected per-shard stragglers and hedged dispatch absorbing them.
type E26HedgeBench struct {
	NoFaultP50Ms   float64 `json:"no_fault_p50_ms"`
	NoFaultP99Ms   float64 `json:"no_fault_p99_ms"`
	StragglerP50Ms float64 `json:"straggler_p50_ms"`
	StragglerP99Ms float64 `json:"straggler_p99_ms"`
	P99Ratio       float64 `json:"p99_straggler_vs_no_fault"`
	Hedges         int64   `json:"hedged_dispatches"`
	HedgeWins      int64   `json:"hedge_wins"`
}

// E26PartialBench counts the total-replica-loss trials. Every trial must
// produce a typed partial result with the exact covered sum; a single
// silent wrong total fails the experiment.
type E26PartialBench struct {
	Trials           int     `json:"trials"`
	TypedPartials    int     `json:"typed_partial_results"`
	ExactCoveredSums int     `json:"exact_covered_sums"`
	SilentWrongSums  int     `json:"silent_wrong_sums"`
	MinCoveredFrac   float64 `json:"min_covered_fraction"`
}

// E26StrategyPoint is one row of the shuffle-vs-broadcast table.
type E26StrategyPoint struct {
	BuildRows        int     `json:"build_rows"`
	ProbeRows        int     `json:"probe_rows"`
	Chosen           string  `json:"chosen_strategy"`
	ShuffleMcycles   float64 `json:"shuffle_predicted_mcycles"`
	BroadcastMcycles float64 `json:"broadcast_predicted_mcycles"`
	BytesMoved       int64   `json:"bytes_moved"`
	NetworkMcycles   float64 `json:"network_mcycles"`
	Matches          int64   `json:"matches"`
	Exact            bool    `json:"matches_single_node"`
}

// E26Bench is the full E26 outcome — the schema of BENCH_cluster.json.
type E26Bench struct {
	Scale      float64            `json:"scale"`
	Machine    string             `json:"machine"`
	Shards     int                `json:"shards"`
	Replicas   int                `json:"replicas"`
	Failover   E26FailoverBench   `json:"failover"`
	Hedge      E26HedgeBench      `json:"hedged_dispatch"`
	Partial    E26PartialBench    `json:"partial_results"`
	Strategies []E26StrategyPoint `json:"distributed_joins"`
}

// e26Relation builds an n-row relation (sequential keys, deterministic
// values) and an exact range-sum oracle.
func e26Relation(n int) ([][]int64, func(lo, hi int64) int64) {
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i%97) + 1
	}
	return [][]int64{keys, vals}, func(lo, hi int64) int64 {
		var sum int64
		for i := range keys {
			if keys[i] >= lo && keys[i] <= hi {
				sum += vals[i]
			}
		}
		return sum
	}
}

func e26ScanReq(table string, lo, hi int64) serve.Request {
	return serve.Request{Op: serve.OpScan, Table: table, Query: scan.Query{FilterCol: 0, Lo: lo, Hi: hi, AggCol: 1}}
}

// e26Stores opens one durable store per shard in fresh temp directories and
// returns them with a cleanup closure.
func e26Stores(m *hw.Machine, n int) ([]*store.Store, func(), error) {
	var stores []*store.Store
	var dirs []string
	cleanup := func() {
		for _, st := range stores {
			st.Close()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "hwstar-e26-*")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		dirs = append(dirs, dir)
		st, err := store.Open(store.Options{Dir: dir, Machine: m})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		stores = append(stores, st)
	}
	return stores, cleanup, nil
}

// runE26Failover is the core robustness loop: `cycles` seeded node kills,
// each followed by scans verified against the oracle (R=2 must absorb one
// node loss exactly) and a recovery that re-replicates the revived node's
// stripes from the surviving replicas' durable stores.
func runE26Failover(m *hw.Machine, shards, cycles, rows int) (E26FailoverBench, error) {
	ctx := context.Background()
	b := E26FailoverBench{Cycles: cycles}

	stores, cleanup, err := e26Stores(m, shards)
	if err != nil {
		return b, err
	}
	defer cleanup()

	r, err := shard.New(ctx, m, shard.Options{
		Shards:   shards,
		Replicas: 2,
		Shard:    serve.Options{Workers: 4},
		Stores:   stores,
	})
	if err != nil {
		return b, err
	}
	defer r.Close()

	// The table arrives while node 0 is down, so its durable store never
	// sees its stripes: the first recovery MUST re-replicate them from the
	// surviving replicas' stores (the cycle loop then proves the copied
	// data keeps answering). Later cycles re-replicate whatever a node's
	// own graceful-flush replay can't restore.
	cols, expect := e26Relation(rows)
	if err := r.KillNode(0); err != nil {
		return b, err
	}
	if err := r.Register("facts", cols); err != nil {
		return b, err
	}
	if err := r.RecoverNode(ctx, 0); err != nil {
		return b, err
	}

	// Seeded victim selection: the injector's node-loss draws pick the
	// kill each cycle, so the whole schedule replays from the seed.
	inj := fault.New(fault.Config{Seed: 2600, NodeLossProb: 0.5})
	for cycle := 0; cycle < cycles; cycle++ {
		victim := -1
		for _, id := range r.LiveNodes() {
			if inj.LoseNode(id) {
				victim = id
				break
			}
		}
		if victim < 0 {
			victim = cycle % shards
		}
		if err := r.KillNode(victim); err != nil {
			return b, err
		}
		b.NodeKills++

		// Three deterministic ranges per cycle; with one node down and
		// R=2 every stripe still has a live replica, so every answer must
		// be full and exact.
		for q := 0; q < 3; q++ {
			lo := int64((cycle*1031 + q*2711) % rows)
			hi := lo + int64(rows/3)
			if hi >= int64(rows) {
				hi = int64(rows) - 1
			}
			resp, err := r.Submit(ctx, e26ScanReq("facts", lo, hi))
			b.ScansVerified++
			if err != nil || resp.Partial || resp.Sum != expect(lo, hi) {
				b.LostAnswers++
			}
		}

		if err := r.RecoverNode(ctx, victim); err != nil {
			return b, err
		}
	}
	b.Rereplications = r.ClusterHealth().Rereplications
	if b.LostAnswers > 0 {
		return b, fmt.Errorf("e26: replication contract violated: %d lost committed answers across %d kill/failover cycles (want 0)",
			b.LostAnswers, b.Cycles)
	}
	return b, nil
}

// e26Latencies fires clients×requests deterministic scans at the router
// and returns per-request wall milliseconds.
func e26Latencies(r *shard.Router, clients, requests, rows int) []float64 {
	var mu sync.Mutex
	var out []float64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				lo := int64((c*7919 + i*104729) % (rows / 2))
				start := time.Now()
				_, err := r.Submit(context.Background(), e26ScanReq("facts", lo, lo+int64(rows/4)))
				if err != nil {
					continue
				}
				ms := float64(time.Since(start).Microseconds()) / 1000
				mu.Lock()
				out = append(out, ms)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out
}

// runE26Hedge compares the same scan workload on a healthy cluster and on
// one whose shards straggle (seeded per-shard injector), with hedged
// dispatch bounding the tail. The gate is the ISSUE's acceptance bar:
// straggler p99 within 2x the no-fault p99 (plus a small absolute grace
// for sub-millisecond timer noise at tiny scales).
func runE26Hedge(m *hw.Machine, shards, clients, requests, rows int) (E26HedgeBench, error) {
	run := func(stragglers bool) ([]float64, int64, int64, error) {
		opts := shard.Options{
			Shards:   shards,
			Replicas: 2,
			Shard:    serve.Options{Workers: 4},
		}
		if stragglers {
			opts.Shard.Faults = fault.New(fault.Config{
				Seed:          2610,
				StragglerProb: 0.2,
				StragglerSkew: 8,
			})
			opts.Shard.StragglerThreshold = 3
		}
		r, err := shard.New(context.Background(), m, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		defer r.Close()
		cols, _ := e26Relation(rows)
		if err := r.Register("facts", cols); err != nil {
			return nil, 0, 0, err
		}
		lat := e26Latencies(r, clients, requests, rows)
		ch := r.ClusterHealth()
		return lat, ch.Hedges, ch.HedgeWins, nil
	}

	base, _, _, err := run(false)
	if err != nil {
		return E26HedgeBench{}, err
	}
	straggly, hedges, wins, err := run(true)
	if err != nil {
		return E26HedgeBench{}, err
	}
	b := E26HedgeBench{
		NoFaultP50Ms:   quantileOf(base, 0.5),
		NoFaultP99Ms:   quantileOf(base, 0.99),
		StragglerP50Ms: quantileOf(straggly, 0.5),
		StragglerP99Ms: quantileOf(straggly, 0.99),
		Hedges:         hedges,
		HedgeWins:      wins,
	}
	if b.NoFaultP99Ms > 0 {
		b.P99Ratio = b.StragglerP99Ms / b.NoFaultP99Ms
	}
	if b.StragglerP99Ms > 2*b.NoFaultP99Ms+0.25 {
		return b, fmt.Errorf("e26: hedged-dispatch gate failed: straggler p99 %.3fms > 2x no-fault p99 %.3fms",
			b.StragglerP99Ms, b.NoFaultP99Ms)
	}
	return b, nil
}

// runE26Partial stages total replica loss: each trial kills every replica
// of a table's first partition (collateral partitions whose replica pair is
// the same dead set are tracked too) and demands a typed partial result
// whose sum is exactly the covered stripes' total.
func runE26Partial(m *hw.Machine, shards, trials, rows int) (E26PartialBench, error) {
	ctx := context.Background()
	b := E26PartialBench{Trials: trials, MinCoveredFrac: 1}
	for trial := 0; trial < trials; trial++ {
		r, err := shard.New(ctx, m, shard.Options{
			Shards:   shards,
			Replicas: 2,
			Shard:    serve.Options{Workers: 4},
		})
		if err != nil {
			return b, err
		}
		// Per-trial table names move the placement around the ring, so the
		// trials cover different partition→replica layouts.
		name := fmt.Sprintf("t%d", trial)
		cols, expect := e26Relation(rows)
		if err := r.Register(name, cols); err != nil {
			r.Close()
			return b, err
		}
		parts, err := r.Partitions(name)
		if err != nil {
			r.Close()
			return b, err
		}
		killed := make(map[int]bool)
		for _, nid := range parts[0].Replicas {
			if err := r.KillNode(nid); err != nil {
				r.Close()
				return b, err
			}
			killed[nid] = true
		}
		var lostSum int64
		lostRows := 0
		lo := int64(0)
		for _, p := range parts {
			hi := lo + int64(p.Rows) - 1
			allDead := true
			for _, nid := range p.Replicas {
				if !killed[nid] {
					allDead = false
				}
			}
			if allDead {
				lostSum += expect(lo, hi)
				lostRows += p.Rows
			}
			lo = hi + 1
		}

		resp, err := r.Submit(ctx, e26ScanReq(name, 0, int64(rows)-1))
		total := expect(0, int64(rows)-1)
		switch {
		case err == nil && resp.Sum != total:
			b.SilentWrongSums++
		case errors.Is(err, errs.ErrPartialResult) && resp.Partial:
			b.TypedPartials++
			if resp.Sum == total-lostSum {
				b.ExactCoveredSums++
			}
			if resp.CoveredFraction < b.MinCoveredFrac {
				b.MinCoveredFrac = resp.CoveredFraction
			}
		}
		r.Close()
	}
	if b.SilentWrongSums > 0 || b.TypedPartials != b.Trials || b.ExactCoveredSums != b.Trials {
		return b, fmt.Errorf("e26: partial-result contract violated: %d/%d typed, %d/%d exact, %d silent wrong sums",
			b.TypedPartials, b.Trials, b.ExactCoveredSums, b.Trials, b.SilentWrongSums)
	}
	return b, nil
}

// runE26Strategy prices the two classic distributed-join regimes through
// the planner and runs both on the cluster, verifying exactness against a
// single-node execution.
func runE26Strategy(m *hw.Machine, shards, probeRows int) ([]E26StrategyPoint, error) {
	ctx := context.Background()
	solo, err := shard.New(ctx, m, shard.Options{Shards: 1, Replicas: 1, Shard: serve.Options{Workers: 4}})
	if err != nil {
		return nil, err
	}
	defer solo.Close()
	clu, err := shard.New(ctx, m, shard.Options{Shards: shards, Replicas: 2, Shard: serve.Options{Workers: 4}})
	if err != nil {
		return nil, err
	}
	defer clu.Close()

	fabric := cluster.Rack10GbE(shards)
	var points []E26StrategyPoint
	for i, buildRows := range []int{probeRows / 64, probeRows / 2} {
		g := workload.GenerateJoin(workload.JoinConfig{Seed: int64(2620 + i), BuildRows: buildRows, ProbeRows: probeRows})
		var req serve.Request
		req.Op = serve.OpJoin
		req.Join.BuildKeys, req.Join.BuildVals = g.BuildKeys, g.BuildVals
		req.Join.ProbeKeys, req.Join.ProbeVals = g.ProbeKeys, g.ProbeVals

		want, err := solo.SubmitDist(ctx, req)
		if err != nil {
			return nil, err
		}
		got, err := clu.SubmitDist(ctx, req)
		if err != nil {
			return nil, err
		}
		plan := planner.ChooseDistStrategy(fabric, join.Stats{
			BuildRows: int64(buildRows), ProbeRows: int64(probeRows),
		}, hw.DefaultContext())
		points = append(points, E26StrategyPoint{
			BuildRows:        buildRows,
			ProbeRows:        probeRows,
			Chosen:           string(got.Strategy),
			ShuffleMcycles:   plan.All[cluster.StrategyShuffle] / 1e6,
			BroadcastMcycles: plan.All[cluster.StrategyBroadcast] / 1e6,
			BytesMoved:       got.BytesMoved,
			NetworkMcycles:   got.NetworkCycles / 1e6,
			Matches:          got.Matches,
			Exact:            got.Matches == want.Matches && got.Checksum == want.Checksum,
		})
		if !points[len(points)-1].Exact {
			return points, fmt.Errorf("e26: distributed join diverged from single-node truth at build=%d probe=%d", buildRows, probeRows)
		}
	}
	return points, nil
}

// RunE26 executes the sharded-tier experiment and returns both the rendered
// tables and the structured bench artifact (BENCH_cluster.json).
func RunE26(cfg Config) (*E26Bench, []*Table, error) {
	m := hw.Server2S()
	const shards = 4
	cycles := cfg.scaled(128, 16)
	rows := cfg.scaled(6000, 2000)
	clients := cfg.scaled(8, 4)
	requests := cfg.scaled(100, 25)
	trials := cfg.scaled(6, 3)
	probeRows := cfg.scaled(1<<15, 1<<12)

	failover, err := runE26Failover(m, shards, cycles, rows)
	if err != nil {
		return nil, nil, err
	}
	hedge, err := runE26Hedge(m, shards, clients, requests, rows)
	if err != nil {
		return nil, nil, err
	}
	partial, err := runE26Partial(m, shards, trials, rows)
	if err != nil {
		return nil, nil, err
	}
	strategies, err := runE26Strategy(m, shards, probeRows)
	if err != nil {
		return nil, nil, err
	}

	b := &E26Bench{
		Scale:      cfg.Scale,
		Machine:    "server-2s8c",
		Shards:     shards,
		Replicas:   2,
		Failover:   failover,
		Hedge:      hedge,
		Partial:    partial,
		Strategies: strategies,
	}

	t1 := bench.NewTable(
		fmt.Sprintf("E26: seeded node-kill/failover cycles on %d shards x 2 replicas (durable re-replication on recovery)", shards),
		"cycles", "node kills", "scans verified", "lost committed answers", "re-replications")
	t1.AddRow(bench.F("%d", failover.Cycles), bench.F("%d", failover.NodeKills),
		bench.F("%d", failover.ScansVerified), bench.F("%d", failover.LostAnswers),
		bench.F("%d", failover.Rereplications))

	t2 := bench.NewTable("E26: hedged dispatch vs per-shard stragglers (cost-model-derived hedge deadline)",
		"phase", "p50 ms", "p99 ms", "p99 vs no-fault", "hedges", "hedge wins")
	t2.AddRow("no faults", bench.F("%.3f", hedge.NoFaultP50Ms), bench.F("%.3f", hedge.NoFaultP99Ms), "1.00x", "-", "-")
	t2.AddRow("stragglers+hedging", bench.F("%.3f", hedge.StragglerP50Ms), bench.F("%.3f", hedge.StragglerP99Ms),
		bench.F("%.2fx", hedge.P99Ratio), bench.F("%d", hedge.Hedges), bench.F("%d", hedge.HedgeWins))

	t3 := bench.NewTable("E26: total replica loss degrades to typed partial results (never silent wrong sums)",
		"trials", "typed partials", "exact covered sums", "silent wrong sums", "min covered fraction")
	t3.AddRow(bench.F("%d", partial.Trials), bench.F("%d", partial.TypedPartials),
		bench.F("%d", partial.ExactCoveredSums), bench.F("%d", partial.SilentWrongSums),
		bench.F("%.3f", partial.MinCoveredFrac))

	t4 := bench.NewTable("E26: distributed join strategy chosen by the planner's fabric-priced cost model",
		"build rows", "probe rows", "chosen", "shuffle Mcyc", "broadcast Mcyc", "bytes moved", "network Mcyc", "exact")
	for _, p := range strategies {
		t4.AddRow(bench.F("%d", p.BuildRows), bench.F("%d", p.ProbeRows), p.Chosen,
			bench.F("%.2f", p.ShuffleMcycles), bench.F("%.2f", p.BroadcastMcycles),
			bench.F("%d", p.BytesMoved), bench.F("%.3f", p.NetworkMcycles),
			bench.F("%v", p.Exact))
	}

	return b, []*Table{t1, t2, t3, t4}, nil
}

func runE26(cfg Config) ([]*Table, error) {
	_, tables, err := RunE26(cfg)
	return tables, err
}
