package experiments

import (
	"reflect"
	"testing"

	"hwstar/internal/hw"
)

// TestE20ResilientBeatsNaive asserts the experiment's headline claim at test
// scale: under the same per-trial fault seeds (1% panic, 10% straggler @8x),
// the resilient scheduler completes every trial and sustains a lower p99
// makespan than the naive retry-free engine.
func TestE20ResilientBeatsNaive(t *testing.T) {
	m := hw.Server2S()
	const trials, nTasks, cost = 20, 256, 1e5

	naive, err := e20SchedTrials(m, trials, nTasks, cost, false)
	if err != nil {
		t.Fatalf("naive trials: %v", err)
	}
	resil, err := e20SchedTrials(m, trials, nTasks, cost, true)
	if err != nil {
		t.Fatalf("resilient trials: %v", err)
	}

	if resil.completed != trials {
		t.Fatalf("resilient engine completed %d/%d trials", resil.completed, trials)
	}
	if naive.completed == 0 {
		t.Fatal("naive engine completed nothing; fault mix too hot to compare tails")
	}
	np99, rp99 := naive.quantile(0.99), resil.quantile(0.99)
	if rp99 >= np99 {
		t.Fatalf("resilient p99 %.2f Mcyc not below naive p99 %.2f Mcyc", rp99, np99)
	}
	// The mix must actually have fired: stragglers in both engines, and the
	// resilient one must have retired and re-dispatched.
	if naive.faults.Panics+resil.faults.Panics == 0 {
		t.Fatal("no panics fired across either engine")
	}
	if resil.faults.StragglersRetired == 0 || resil.faults.Redispatched == 0 {
		t.Fatalf("resilient engine never re-dispatched: %+v", resil.faults)
	}
}

// TestE20Reproducible asserts that the same seeds produce identical trial
// statistics — the chaos runs are deterministic, not merely plausible.
func TestE20Reproducible(t *testing.T) {
	m := hw.Server2S()
	const trials, nTasks, cost = 10, 256, 1e5
	for _, resilient := range []bool{false, true} {
		a, err := e20SchedTrials(m, trials, nTasks, cost, resilient)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e20SchedTrials(m, trials, nTasks, cost, resilient)
		if err != nil {
			t.Fatal(err)
		}
		if a.completed != b.completed || !reflect.DeepEqual(a.makespans, b.makespans) || a.faults != b.faults {
			t.Fatalf("resilient=%v not reproducible:\n  a=%+v %v\n  b=%+v %v",
				resilient, a.faults, a.makespans, b.faults, b.makespans)
		}
	}
}
