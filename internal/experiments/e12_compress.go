package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/compress"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Scan compression: trading compute for memory bandwidth",
		Claim: "once cores share the memory bus, decompressing in cache beats streaming raw bytes",
		Run:   runE12,
	})
}

func runE12(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	n := cfg.scaled(1<<22, 1<<14)

	datasets := []struct {
		name string
		data []int64
	}{
		{"8-bit domain", workload.UniformInts(1201, n, 256)},
		{"20-bit domain", workload.UniformInts(1202, n, 1<<20)},
		{"run-heavy (sorted zipf)", sortedZipf(1203, n)},
		{"incompressible", workload.UniformInts(1204, n, 1<<62)},
	}

	t := bench.NewTable("E12: scan of "+bench.F("%d", n)+" values, raw vs compressed ("+m.Name+")",
		"data", "ratio", "raw Mcyc (1 core)", "comp Mcyc (1 core)", "raw Mcyc (8 cores)", "comp Mcyc (8 cores)", "busy winner")
	solo := hw.DefaultContext()
	busy := hw.ExecContext{ActiveCoresOnSocket: m.CoresPerSocket, InterferenceFactor: 1}
	for _, ds := range datasets {
		c := compress.Encode(ds.data)
		// Verify the compressed aggregate live before pricing anything.
		var want int64
		for _, v := range ds.data {
			want += v
		}
		if got := c.Sum(); got != want {
			return nil, bench.ErrMismatch("E12", got, want)
		}
		rawSolo := m.Cycles(compress.ScanWorkRaw(int64(n)), solo)
		compSolo := m.Cycles(c.ScanWork(), solo)
		rawBusy := m.Cycles(compress.ScanWorkRaw(int64(n)), busy)
		compBusy := m.Cycles(c.ScanWork(), busy)
		winner := "compressed"
		if rawBusy < compBusy {
			winner = "raw"
		}
		t.AddRow(ds.name,
			bench.F("%.1fx", c.Ratio()),
			bench.F("%.1f", rawSolo/1e6), bench.F("%.1f", compSolo/1e6),
			bench.F("%.1f", rawBusy/1e6), bench.F("%.1f", compBusy/1e6),
			winner)
	}
	t.AddNote("on an idle core decode overhead loses; on a saturated socket bandwidth is the price that matters")
	return []*Table{t}, nil
}

// sortedZipf produces a run-heavy column: zipf-skewed values, sorted.
func sortedZipf(seed int64, n int) []int64 {
	data := workload.ZipfInts(seed, n, 1000, 1.4)
	// Insertion into buckets then concatenation keeps this O(n + k).
	counts := map[int64]int{}
	for _, v := range data {
		counts[v]++
	}
	out := make([]int64, 0, n)
	for v := int64(0); v < 1000; v++ {
		for i := 0; i < counts[v]; i++ {
			out = append(out, v)
		}
	}
	return out
}
