package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "Vectorized compressed serving: the fused hot path, its controller, and its tail",
		Claim: "executing shared scan batches directly on FOR/RLE-compressed columns — zone-map pruning, precomputed block sums, decode-on-demand — answers a scan-heavy serving cohort in at least 1.5x fewer modeled cycles than the row-at-a-time pass with identical results; the online controller converges on morsel size and batch width from runtime feedback alone; and the fused path holds tail latency under the E20 fault mix",
		Run:   runE25,
	})
}

// E25CohortPoint compares one cohort size across the two execution paths.
// Sums are verified equal query-by-query before the point is accepted.
type E25CohortPoint struct {
	Clients       int     `json:"clients"`
	RowMcycPerQ   float64 `json:"row_mcyc_per_query"`
	VecMcycPerQ   float64 `json:"vec_mcyc_per_query"`
	Speedup       float64 `json:"speedup"`
	BlocksPruned  int64   `json:"blocks_pruned"`
	FastSums      int64   `json:"block_fast_sums"`
	BlocksScanned int64   `json:"blocks_scanned"`
}

// E25ControllerBench summarizes the online controller's run on a steady
// workload: where it started, where it settled, and what the move bought.
type E25ControllerBench struct {
	Passes            int64   `json:"passes"`
	Retunes           int64   `json:"retunes"`
	Converged         bool    `json:"converged"`
	InitialMorselRows int     `json:"initial_morsel_rows"`
	FinalMorselRows   int     `json:"final_morsel_rows"`
	InitialBatchWidth int     `json:"initial_batch_width"`
	FinalBatchWidth   int     `json:"final_batch_width"`
	FirstCost         float64 `json:"first_cost_per_row_query"`
	FinalCost         float64 `json:"final_cost_per_row_query"`
}

// E25ChaosBench compares the two paths under the E20 serve fault mix — same
// seeds, same resilience policy, only the execution path differs.
type E25ChaosBench struct {
	RowCompleted int     `json:"row_completed"`
	VecCompleted int     `json:"vec_completed"`
	RowP99Mcyc   float64 `json:"row_p99_mcyc"`
	VecP99Mcyc   float64 `json:"vec_p99_mcyc"`
	P99Ratio     float64 `json:"p99_vec_vs_row"`
}

// E25Bench is the full E25 outcome — the schema of BENCH_serve.json.
// Speedup is the headline number: the largest cohort's row/vec cycle ratio.
type E25Bench struct {
	Scale            float64            `json:"scale"`
	Machine          string             `json:"machine"`
	CompressionRatio float64            `json:"compression_ratio"`
	Cohorts          []E25CohortPoint   `json:"cohorts"`
	Speedup          float64            `json:"speedup"`
	Controller       E25ControllerBench `json:"controller"`
	Chaos            E25ChaosBench      `json:"chaos"`
}

// e25Cols builds the serving relation: an append-ordered filter column
// (monotone trend plus bounded noise, the shape of an event-time key) and a
// uniform measure column. Ordered data is what makes zone maps and block
// sums live: most blocks fall wholly outside or wholly inside a range
// predicate, exactly as in a time-partitioned serving table.
func e25Cols(rows int) [][]int64 {
	noise := workload.UniformInts(2501, rows, 256)
	filter := make([]int64, rows)
	for i := range filter {
		filter[i] = int64(i)*100000/int64(rows) + noise[i] - 128
	}
	return [][]int64{filter, workload.UniformInts(2502, rows, 1000)}
}

// e25Cohort fires `clients` concurrent range scans at one server and returns
// mean modeled Mcyc per query plus each client's sum, in client order.
func e25Cohort(s *serve.Server, clients int, los []int64) (float64, []int64, error) {
	sums := make([]int64, clients)
	cycles := make([]float64, clients)
	errsOut := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), serve.Request{
				Op:    serve.OpScan,
				Table: "events",
				Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1},
			})
			if err != nil {
				errsOut[i] = err
				return
			}
			sums[i] = resp.Sum
			cycles[i] = resp.SimCycles
		}()
	}
	wg.Wait()
	var total float64
	for i := 0; i < clients; i++ {
		if errsOut[i] != nil {
			return 0, nil, errsOut[i]
		}
		total += cycles[i]
	}
	return total / float64(clients) / 1e6, sums, nil
}

// runE25Cohorts measures row vs vectorized execution of identical cohorts,
// verifying result equality before accepting any speedup.
func runE25Cohorts(m *hw.Machine, cols [][]int64, cohortSizes []int) ([]E25CohortPoint, float64, error) {
	var points []E25CohortPoint
	ratio := 0.0
	for _, clients := range cohortSizes {
		los := workload.UniformInts(2503, clients, 90000)
		run := func(vectorized bool) (float64, []int64, serve.Health, error) {
			s, err := serve.New(m, serve.Options{
				QueueDepth:  clients,
				MaxBatch:    clients,
				BatchWindow: 10 * time.Second, // flush on MaxBatch, deterministically
				Vectorized:  vectorized,
			})
			if err != nil {
				return 0, nil, serve.Health{}, err
			}
			defer s.Close()
			if err := s.Register("events", cols); err != nil {
				return 0, nil, serve.Health{}, err
			}
			mcyc, sums, err := e25Cohort(s, clients, los)
			return mcyc, sums, s.Health(), err
		}
		rowM, rowSums, _, err := run(false)
		if err != nil {
			return nil, 0, err
		}
		vecM, vecSums, h, err := run(true)
		if err != nil {
			return nil, 0, err
		}
		for i := range rowSums {
			if rowSums[i] != vecSums[i] {
				return nil, 0, fmt.Errorf("e25: cohort %d query %d: vectorized sum %d != row sum %d",
					clients, i, vecSums[i], rowSums[i])
			}
		}
		if h.VecPasses == 0 {
			return nil, 0, fmt.Errorf("e25: cohort %d: vectorized server took the row path", clients)
		}
		p := E25CohortPoint{
			Clients:       clients,
			RowMcycPerQ:   rowM,
			VecMcycPerQ:   vecM,
			BlocksPruned:  h.VecBlocksPruned,
			FastSums:      h.VecFastSums,
			BlocksScanned: h.VecBlocksScanned,
		}
		if vecM > 0 {
			p.Speedup = rowM / vecM
		}
		points = append(points, p)
		ratio = p.Speedup
	}
	return points, ratio, nil
}

// runE25Controller drives a steady workload through an adaptive server and
// snapshots the controller before and after: the E2b sweep, rediscovered at
// runtime.
func runE25Controller(m *hw.Machine, cols [][]int64, passes, clients int) (E25ControllerBench, error) {
	s, err := serve.New(m, serve.Options{
		QueueDepth:  clients,
		MaxBatch:    clients,
		BatchWindow: 10 * time.Second,
		Vectorized:  true,
		VecAdaptive: true,
	})
	if err != nil {
		return E25ControllerBench{}, err
	}
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		return E25ControllerBench{}, err
	}
	init := s.Health().Ctl
	b := E25ControllerBench{InitialMorselRows: init.MorselRows, InitialBatchWidth: init.BatchWidth}
	los := workload.UniformInts(2504, clients, 90000)
	for pass := 0; pass < passes; pass++ {
		if _, _, err := e25Cohort(s, clients, los); err != nil {
			return b, err
		}
		if pass == 0 {
			b.FirstCost = s.Health().Ctl.CostPerRowQuery
		}
	}
	final := s.Health().Ctl
	b.Passes = final.Observations
	b.Retunes = final.Retunes
	b.Converged = final.Converged
	b.FinalMorselRows = final.MorselRows
	b.FinalBatchWidth = final.BatchWidth
	b.FinalCost = final.CostPerRowQuery
	return b, nil
}

// runE25Chaos reruns E20's serving-level fault mix on both paths: identical
// seeds, identical resilience policy, sequential submissions so the fault
// draws line up. Latency is cumulative Mcyc across a query's submissions.
func runE25Chaos(m *hw.Machine, cols [][]int64, queriesN int) (E25ChaosBench, error) {
	rows := len(cols[0])
	los := workload.UniformInts(2505, queriesN, 90000)
	run := func(vectorized bool) (int, float64, error) {
		s, err := serve.New(m, serve.Options{
			QueueDepth:     4,
			MaxBatch:       1,
			Workers:        8,
			SchedBlockSize: 8,
			ScanSegRows:    rows / 64,
			Vectorized:     vectorized,
			Faults: fault.New(fault.Config{
				Seed:          2550,
				PanicProb:     0.005,
				TransientProb: 0.005,
				StragglerProb: 0.10,
				StragglerSkew: 8,
			}),
			MaxRetries:         3,
			RetryBackoff:       50 * time.Microsecond,
			IsolatePanics:      true,
			StragglerThreshold: 3,
		})
		if err != nil {
			return 0, 0, err
		}
		defer s.Close()
		if err := s.Register("events", cols); err != nil {
			return 0, 0, err
		}
		completed := 0
		var cycles []float64
		for i := 0; i < queriesN; i++ {
			var spent float64
			done := false
			for attempt := 0; attempt < 10 && !done; attempt++ {
				resp, err := s.Submit(context.Background(), serve.Request{
					Op:    serve.OpScan,
					Table: "events",
					Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1},
				})
				spent += resp.SimCycles / 1e6 // failed passes report burned cycles
				done = err == nil
			}
			if done {
				completed++
				cycles = append(cycles, spent)
			}
		}
		p99 := 0.0
		if len(cycles) > 0 {
			sort.Float64s(cycles)
			p99 = cycles[int(0.99*float64(len(cycles)-1))]
		}
		return completed, p99, nil
	}
	rowDone, rowP99, err := run(false)
	if err != nil {
		return E25ChaosBench{}, err
	}
	vecDone, vecP99, err := run(true)
	if err != nil {
		return E25ChaosBench{}, err
	}
	b := E25ChaosBench{
		RowCompleted: rowDone,
		VecCompleted: vecDone,
		RowP99Mcyc:   rowP99,
		VecP99Mcyc:   vecP99,
	}
	if rowP99 > 0 {
		b.P99Ratio = vecP99 / rowP99
	}
	return b, nil
}

// RunE25 executes the vectorized-serving experiment and returns both the
// rendered tables and the structured artifact (BENCH_serve.json). It fails
// loudly if the fused path diverges from the row path, if the headline
// speedup misses 1.5x, or if chaos p99 regresses.
func RunE25(cfg Config) (*E25Bench, []*Table, error) {
	m := hw.Server2S()
	rows := cfg.scaled(1<<19, 1<<14)
	cols := e25Cols(rows)
	cohortSizes := []int{8, 32, 128}
	passes := cfg.scaled(48, 16)
	chaosQueries := cfg.scaled(200, 40)

	points, speedup, err := runE25Cohorts(m, cols, cohortSizes)
	if err != nil {
		return nil, nil, err
	}
	// The headline gate is a full-size claim: on a shrunk smoke table the
	// fixed per-query zone sweep has too few blocks to amortize over and
	// the row path's query index legitimately wins the largest cohort.
	// Sum equivalence and the chaos gate below still hold at every scale.
	if speedup < 1.5 && rows >= 1<<19 {
		return nil, nil, fmt.Errorf("e25: headline speedup %.2fx misses the 1.5x target", speedup)
	}
	ctl, err := runE25Controller(m, cols, passes, 32)
	if err != nil {
		return nil, nil, err
	}
	chaos, err := runE25Chaos(m, cols, chaosQueries)
	if err != nil {
		return nil, nil, err
	}
	// 5% tolerance: on tiny smoke tables both paths' p99 is the same
	// straggler-dominated retry, and the ratio wobbles a fraction of a
	// percent around 1. At full size the vectorized path sits near 0.1x.
	if chaos.RowP99Mcyc > 0 && chaos.P99Ratio > 1.05 {
		return nil, nil, fmt.Errorf("e25: vectorized chaos p99 regressed: %.2fx the row path", chaos.P99Ratio)
	}

	// Table-wide compression ratio, read off a fresh vectorized server.
	ratioSrv, err := serve.New(m, serve.Options{QueueDepth: 1, Vectorized: true})
	if err != nil {
		return nil, nil, err
	}
	if err := ratioSrv.Register("events", cols); err != nil {
		ratioSrv.Close()
		return nil, nil, err
	}
	compRatio := ratioSrv.Metrics().Histogram("serve.vec_compression_ratio").Max()
	ratioSrv.Close()

	b := &E25Bench{
		Scale:            cfg.Scale,
		Machine:          "server-2s8c",
		CompressionRatio: compRatio,
		Cohorts:          points,
		Speedup:          speedup,
		Controller:       ctl,
		Chaos:            chaos,
	}

	t1 := bench.NewTable("E25: vectorized compressed pass vs row-at-a-time clock scan over "+bench.F("%d", rows)+" ordered rows",
		"clients", "row Mcyc/q", "vec Mcyc/q", "speedup", "blocks pruned", "fast sums", "blocks scanned")
	for _, p := range points {
		t1.AddRow(bench.F("%d", p.Clients),
			bench.F("%.3f", p.RowMcycPerQ),
			bench.F("%.3f", p.VecMcycPerQ),
			bench.Ratio(p.Speedup),
			bench.F("%d", p.BlocksPruned),
			bench.F("%d", p.FastSums),
			bench.F("%d", p.BlocksScanned))
	}
	t1.AddNote("identical sums on both paths, verified query-by-query; the vectorized pass touches compressed bytes and skips or fast-sums zone-resolved blocks")

	t2 := bench.NewTable("E25: online controller on a steady "+bench.F("%d", 32)+"-client workload ("+bench.F("%d", passes)+" passes)",
		"knob", "initial", "final", "passes", "retunes", "converged", "cost/row-q first→final")
	t2.AddRow("morsel rows", bench.F("%d", ctl.InitialMorselRows), bench.F("%d", ctl.FinalMorselRows),
		bench.F("%d", ctl.Passes), bench.F("%d", ctl.Retunes), fmt.Sprint(ctl.Converged),
		bench.F("%.4f→%.4f", ctl.FirstCost, ctl.FinalCost))
	t2.AddRow("batch width", bench.F("%d", ctl.InitialBatchWidth), bench.F("%d", ctl.FinalBatchWidth),
		"", "", "", "")
	t2.AddNote("E2b's offline morsel sweep as a runtime hill-climb: probe a power-of-two neighbor, keep it only if measurably cheaper")

	t3 := bench.NewTable("E25: E20 fault mix on both paths ("+bench.F("%d", chaosQueries)+" sequential scans, 0.5% panic, 0.5% transient, 10% straggler @8x)",
		"path", "completed", "p99 Mcyc", "p99 vs row")
	t3.AddRow("row", bench.F("%d", chaos.RowCompleted), bench.F("%.2f", chaos.RowP99Mcyc), "1.00x")
	t3.AddRow("vectorized", bench.F("%d", chaos.VecCompleted), bench.F("%.2f", chaos.VecP99Mcyc), bench.Ratio(chaos.P99Ratio))
	t3.AddNote("same fault seeds, same retry/isolation policy; only the execution path differs")

	return b, []*Table{t1, t2, t3}, nil
}

func runE25(cfg Config) ([]*Table, error) {
	_, tables, err := RunE25(cfg)
	return tables, err
}
