package experiments

import (
	"context"
	"sort"
	"sync"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
	"hwstar/internal/trace"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "Observability: tail-latency decomposition from query-lifecycle traces",
		Claim: "per-request span trees decompose the p99 latency of a chaos-loaded server into queue wait, batch assembly, execution, and retry backoff — locating the tail in the serving layer, not the operator",
		Run:   runE21,
	})
}

// e21Breakdown is one traced request's lifecycle, in wall milliseconds.
type e21Breakdown struct {
	total, queue, batch, execute, retry float64
	execMcyc                            float64
	retried                             bool
}

func (b e21Breakdown) other() float64 {
	o := b.total - b.queue - b.batch - b.execute - b.retry
	if o < 0 {
		o = 0
	}
	return o
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// e21Run fires concurrent scan clients at a fully traced, chaos-loaded
// resilient server and returns every request's lifecycle breakdown. Wall
// times are real (this experiment measures the serving layer itself), so
// absolute numbers vary by host; the decomposition structure is the result.
func e21Run(cfg Config) ([]e21Breakdown, serve.Health, error) {
	m := hw.Server2S()
	requests := cfg.scaled(400, 60)
	const clients = 8
	rows := cfg.scaled(1<<18, 1<<14)
	cols := [][]int64{
		workload.UniformInts(2101, rows, 100000),
		workload.UniformInts(2102, rows, 1000),
	}

	tr := trace.New(trace.Config{Capacity: requests, SampleEvery: 1})
	s, err := serve.New(m, serve.Options{
		QueueDepth:     requests,
		MaxBatch:       16,
		BatchWindow:    200 * time.Microsecond,
		Workers:        8,
		SchedBlockSize: 8,
		ScanSegRows:    rows / 64,
		Faults: fault.New(fault.Config{
			Seed:          9950,
			TransientProb: 0.02,
			StragglerProb: 0.05,
			StragglerSkew: 8,
		}),
		MaxRetries:         4,
		RetryBackoff:       100 * time.Microsecond,
		JitterSeed:         21,
		IsolatePanics:      true,
		StragglerThreshold: 3,
		Trace:              tr,
	})
	if err != nil {
		return nil, serve.Health{}, err
	}
	los := workload.UniformInts(2103, requests, 90000)
	if err := s.Register("facts", cols); err != nil {
		s.Close()
		return nil, serve.Health{}, err
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c; i < requests; i += clients {
				_, _ = s.Submit(context.Background(), serve.Request{
					Op:    serve.OpScan,
					Table: "facts",
					Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1},
				})
			}
		}()
	}
	wg.Wait()
	h := s.Health()
	if err := s.Close(); err != nil {
		return nil, h, err
	}

	var out []e21Breakdown
	for _, td := range tr.Snapshot() {
		b := e21Breakdown{
			total:    ms(td.Root().Wall),
			queue:    ms(td.SumWall("queue")),
			batch:    ms(td.SumWall("batch-assembly")),
			execute:  ms(td.SumWall("execute")),
			retry:    ms(td.SumWall("retry-backoff")),
			execMcyc: td.SumCycles("execute") / 1e6,
			retried:  td.SumWall("retry-backoff") > 0,
		}
		out = append(out, b)
	}
	return out, h, nil
}

func runE21(cfg Config) ([]*Table, error) {
	bds, h, err := e21Run(cfg)
	if err != nil {
		return nil, err
	}
	if len(bds) == 0 {
		return nil, nil
	}
	sort.Slice(bds, func(i, j int) bool { return bds[i].total < bds[j].total })
	at := func(q float64) e21Breakdown { return bds[int(q*float64(len(bds)-1))] }

	t1 := bench.NewTable("E21: request latency decomposed by lifecycle stage, "+bench.F("%d", len(bds))+" traced scans under chaos (2% transient, 5% straggler @8x; 4 retries)",
		"quantile", "total ms", "queue ms", "batch-assembly ms", "execute ms", "retry-backoff ms", "other ms", "exec Mcyc")
	for _, row := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1.0}} {
		b := at(row.q)
		t1.AddRow(row.name,
			bench.F("%.3f", b.total),
			bench.F("%.3f", b.queue),
			bench.F("%.3f", b.batch),
			bench.F("%.3f", b.execute),
			bench.F("%.3f", b.retry),
			bench.F("%.3f", b.other()),
			bench.F("%.2f", b.execMcyc))
	}
	t1.AddNote("each row is ONE traced request at that latency quantile, its wall time split by span: where the p99 differs from the p50 is where the tail lives")

	// Aggregate view: total milliseconds spent per stage across all traced
	// requests, plus how many requests retried at all.
	var sum e21Breakdown
	retried := 0
	for _, b := range bds {
		sum.total += b.total
		sum.queue += b.queue
		sum.batch += b.batch
		sum.execute += b.execute
		sum.retry += b.retry
		if b.retried {
			retried++
		}
	}
	pct := func(v float64) string {
		if sum.total == 0 {
			return "0%"
		}
		return bench.F("%.1f%%", 100*v/sum.total)
	}
	t2 := bench.NewTable("E21: aggregate time by stage ("+bench.F("%d", retried)+"/"+bench.F("%d", len(bds))+" requests retried; server retries "+bench.F("%d", h.Retries)+", re-dispatched "+bench.F("%d", h.Redispatched)+")",
		"stage", "total ms", "share of wall")
	t2.AddRow("queue", bench.F("%.2f", sum.queue), pct(sum.queue))
	t2.AddRow("batch-assembly", bench.F("%.2f", sum.batch), pct(sum.batch))
	t2.AddRow("execute", bench.F("%.2f", sum.execute), pct(sum.execute))
	t2.AddRow("retry-backoff", bench.F("%.2f", sum.retry), pct(sum.retry))
	t2.AddRow("other", bench.F("%.2f", sum.total-sum.queue-sum.batch-sum.execute-sum.retry), pct(sum.total-sum.queue-sum.batch-sum.execute-sum.retry))
	t2.AddNote("wall milliseconds are host-real (the serving layer is being measured, not simulated); exec Mcyc ties each request back to the machine model")
	return []*Table{t1, t2}, nil
}
