package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 24 {
		t.Fatalf("expected at least 24 experiments, got %d", len(all))
	}
	want := []string{"E1", "E1a", "E1b", "E1c", "E2", "E2a", "E2b", "E3", "E4", "E5", "E5a",
		"E6", "E7", "E8", "E9", "E10", "E10a", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
		"E19", "E20", "E21", "E22", "E23", "E24", "E25", "E26"}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	// Sorted by numeric ID.
	for i := 1; i < len(all); i++ {
		if !idLess(all[i-1].ID, all[i].ID) {
			t.Fatalf("registry out of order: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestIDOrdering(t *testing.T) {
	cases := [][2]string{{"E1", "E2"}, {"E2", "E10"}, {"E1", "E1a"}, {"E1a", "E1b"}, {"E9", "E10"}}
	for _, c := range cases {
		if !idLess(c[0], c[1]) {
			t.Errorf("want %s < %s", c[0], c[1])
		}
		if idLess(c[1], c[0]) {
			t.Errorf("ordering not antisymmetric for %v", c)
		}
	}
}

func TestConfigScaled(t *testing.T) {
	c := Config{Scale: 0.5}
	if got := c.scaled(100, 1); got != 50 {
		t.Fatalf("scaled = %d", got)
	}
	if got := c.scaled(100, 80); got != 80 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := (Config{}).scaled(100, 1); got != 100 {
		t.Fatalf("zero scale should default to 1: %d", got)
	}
	if (Config{Scale: 2}).clampScale() != 1 {
		t.Fatal("clampScale should cap at 1")
	}
}

// TestAllExperimentsRunAtTestScale is the integration test of the whole
// suite: every experiment must complete without error and produce at least
// one table with at least one data row.
func TestAllExperimentsRunAtTestScale(t *testing.T) {
	cfg := TestConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", e.ID, tb.Title)
				}
				var sb strings.Builder
				if err := tb.Render(&sb); err != nil {
					t.Fatalf("%s: render failed: %v", e.ID, err)
				}
				if !strings.Contains(sb.String(), tb.Title) {
					t.Fatalf("%s: rendered output missing title", e.ID)
				}
			}
			if e.Claim == "" || e.Title == "" {
				t.Fatalf("%s: missing title or claim", e.ID)
			}
		})
	}
}

// TestExperimentsDeterministic re-runs a representative subset and compares
// rendered output byte-for-byte (real-time columns excluded by choosing
// experiments without them).
func TestExperimentsDeterministic(t *testing.T) {
	cfg := TestConfig()
	for _, id := range []string{"E3", "E4", "E5a", "E7", "E8", "E9"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		render := func() string {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			var sb strings.Builder
			for _, tb := range tables {
				tb.Render(&sb)
			}
			return sb.String()
		}
		if render() != render() {
			t.Fatalf("%s is not deterministic", id)
		}
	}
}
