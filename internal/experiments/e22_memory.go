package experiments

import (
	"context"
	"errors"
	"sort"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/bench"
	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/sched"
	"hwstar/internal/serve"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Title: "Memory pressure: unbounded allocation vs governed spill and shed",
		Claim: "a byte budget enforced at admission and allocation turns memory overload from simulated OOM kills into graceful degradation: every query completes, spilled plans pay a bounded bandwidth premium, and p99 stays bounded while the ungoverned engine aborts",
		Run:   runE22,
	})
}

// runE22Curve runs one governed aggregation at each budget fraction and
// reports the degradation curve: as the budget shrinks below the table
// footprint the operator spills at a growing fan-out, peak footprint stays
// under the budget, and the cost rises only by the spill tier's bandwidth
// premium — the graceful half of the experiment's claim.
func runE22Curve(cfg Config, m *hw.Machine) (*Table, error) {
	rows := cfg.scaled(1<<18, 1<<14)
	groups := int64(cfg.scaled(1<<15, 1<<11))
	keys := workload.UniformInts(2201, rows, groups)
	vals := workload.UniformInts(2202, rows, 1000)
	tableBytes := int64(len(agg.Serial(keys, vals))) * 34 // groupEntryBytes

	t := bench.NewTable("E22: governed aggregation degradation curve, "+bench.F("%d", rows)+" rows, table ≈ "+bench.F("%.0f", float64(tableBytes)/1024)+" KiB",
		"budget", "completed", "spilled", "spill KiB", "peak KiB", "makespan Mcyc", "vs unlimited")
	var baseline float64
	for _, frac := range []struct {
		name string
		div  int64 // 0 = unlimited
	}{{"unlimited", 0}, {"1/2 table", 2}, {"1/4 table", 4}, {"1/8 table", 8}} {
		var resv *mem.Reservation
		if frac.div > 0 {
			budget := tableBytes / frac.div
			gov := mem.NewGovernor(mem.Config{BudgetBytes: budget})
			var err error
			resv, err = gov.Reserve(budget) // the whole budget is this query's
			if err != nil {
				return nil, err
			}
		}
		s, err := sched.New(m, sched.Options{Workers: 8, Stealing: true, Mem: resv, BlockSize: 8})
		if err != nil {
			return nil, err
		}
		res, err := agg.Parallel(context.Background(), keys, vals, agg.StrategyGlobal, s, m, 0)
		if err != nil {
			return nil, err
		}
		if frac.div == 0 {
			baseline = res.MakespanCycles
		}
		ratio := 1.0
		if baseline > 0 {
			ratio = res.MakespanCycles / baseline
		}
		t.AddRow(frac.name,
			bench.F("%v", err == nil),
			bench.F("%v", res.Spilled),
			bench.F("%.0f", float64(res.SpillBytes)/1024),
			bench.F("%.0f", float64(resv.PeakBytes())/1024),
			bench.F("%.2f", res.MakespanCycles/1e6),
			bench.F("%.2fx", ratio))
		resv.Release()
	}
	t.AddNote("shrinking the budget below the table footprint trades memory for spill-tier bandwidth: peak stays under budget while the makespan grows by the partition write+read premium, priced like any other tier in the hardware model")
	return t, nil
}

// runE22Serve compares three servers on the same memory-hostile query
// sequence: ungoverned-naive (KillOnOverage: allocation always succeeds, but
// crossing the budget is a simulated OOM kill), governed, and governed under
// injected allocation faults. Sequential submissions with MaxBatch=1 keep
// every engine's fault and allocation draw order deterministic.
func runE22Serve(cfg Config, m *hw.Machine) (*Table, error) {
	rows := cfg.scaled(1<<16, 1<<13)
	queriesN := cfg.scaled(120, 24)
	const budget = int64(48 << 10)

	// Alternate small (in-budget) and large (over-budget) aggregations: the
	// hostile half of the workload is what separates the engines.
	reqs := make([]serve.Request, queriesN)
	for i := 0; i < queriesN; i++ {
		groups := int64(256) // ≈ 8.5 KiB table: fits any engine
		if i%2 == 1 {
			groups = 4096 // ≈ 136 KiB table: over budget, must spill or die
		}
		keys := workload.UniformInts(2300+int64(i), rows, groups)
		vals := workload.UniformInts(2400+int64(i), rows, 1000)
		reqs[i] = serve.Request{Op: serve.OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyGlobal}
	}

	type engineStats struct {
		completed, aborted, spills int
		oomKills, shed             int64
		p50, p99                   float64
		spillKiB                   float64
	}
	runEngine := func(mc mem.Config, inj *fault.Injector, retries int) (engineStats, error) {
		var st engineStats
		opts := serve.Options{
			QueueDepth: 4, MaxBatch: 1, Workers: 8, OpWorkers: 8,
			SchedBlockSize: 8,
			Memory:         mc,
			Faults:         inj,
		}
		if retries > 0 {
			opts.MaxRetries = retries
			opts.RetryBackoff = 50 * time.Microsecond
		}
		s, err := serve.New(m, opts)
		if err != nil {
			return st, err
		}
		defer s.Close()
		var cycles []float64
		for i := 0; i < queriesN; i++ {
			resp, err := s.Submit(context.Background(), reqs[i])
			if err != nil {
				if !errors.Is(err, errs.ErrOOMKilled) && !errors.Is(err, errs.ErrMemoryPressure) {
					return st, err
				}
				st.aborted++
				continue
			}
			st.completed++
			if resp.Spilled {
				st.spills++
			}
			cycles = append(cycles, resp.SimCycles/1e6)
		}
		if len(cycles) > 0 {
			sort.Float64s(cycles)
			st.p50 = cycles[len(cycles)/2]
			st.p99 = cycles[int(0.99*float64(len(cycles)-1))]
		}
		h := s.Health()
		st.oomKills = h.OOMKilled
		st.shed = h.MemShed
		st.spillKiB = float64(h.SpillBytes) / 1024
		return st, nil
	}

	t := bench.NewTable("E22: serving a memory-hostile sequence, "+bench.F("%d", queriesN)+" group-bys (half over a "+bench.F("%d", budget>>10)+" KiB budget) on one server",
		"engine", "completed", "aborted", "oom kills", "spilled", "spill KiB", "p50 Mcyc", "p99 Mcyc")
	rowsSpec := []struct {
		name    string
		mc      mem.Config
		inj     *fault.Injector
		retries int
	}{
		{"naive (unbounded)", mem.Config{BudgetBytes: budget, KillOnOverage: true}, nil, 0},
		{"governed", mem.Config{BudgetBytes: budget}, nil, 0},
		{"governed + alloc faults", mem.Config{BudgetBytes: budget},
			fault.New(fault.Config{Seed: 2299, AllocFailProb: 0.02}), 4},
	}
	for _, spec := range rowsSpec {
		st, err := runEngine(spec.mc, spec.inj, spec.retries)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.name,
			bench.F("%d/%d", st.completed, queriesN),
			bench.F("%d", st.aborted),
			bench.F("%d", st.oomKills),
			bench.F("%d", st.spills),
			bench.F("%.0f", st.spillKiB),
			bench.F("%.2f", st.p50),
			bench.F("%.2f", st.p99))
	}
	t.AddNote("the naive engine allocates without asking and is OOM-killed by every over-budget table; the governed engine degrades the same queries to grace-hash spill plans and completes all of them with a bounded p99, even when allocation faults force retries")
	return t, nil
}

func runE22(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	t1, err := runE22Curve(cfg, m)
	if err != nil {
		return nil, err
	}
	t2, err := runE22Serve(cfg, m)
	if err != nil {
		return nil, err
	}
	return []*Table{t1, t2}, nil
}
