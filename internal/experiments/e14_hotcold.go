package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/hotcold"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Hot/cold classification for DRAM/flash tiering",
		Claim: "as the memory hierarchy grows a flash tier, placement must follow access frequency, not recency",
		Run:   runE14,
	})
}

func runE14(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	n := cfg.scaled(400_000, 20_000)
	keyspace := int64(n / 4)

	// OLTP-style trace: Zipf point accesses with periodic analytic sweeps
	// that pollute recency-based caches.
	zipf := workload.ZipfInts(1401, n, keyspace, 1.3)
	trace := make([]int64, 0, n+n/4)
	for i, v := range zipf {
		trace = append(trace, v)
		if i%4 == 0 {
			trace = append(trace, int64(i)%keyspace)
		}
	}

	est, err := hotcold.NewEstimator().Estimate(trace)
	if err != nil {
		return nil, err
	}

	dram := m.MemLatencyCycles
	t := bench.NewTable("E14: fast-tier hit rate and avg access latency vs memory budget ("+m.Name+", flash tier)",
		"budget %", "classifier hit", "LRU hit", "oracle hit", "class avg cyc", "LRU avg cyc", "all-flash cyc")
	for _, pct := range []int{1, 2, 5, 10, 25} {
		k := int(keyspace) * pct / 100
		hot := hotcold.HotSet(est, k)
		classHit := hotcold.HitRate(trace, hot)
		lruHit := hotcold.LRUHitRate(trace, k)
		oracleHit := hotcold.OracleHitRate(trace, k)

		classLat := hotcold.TierLatency(trace, hot, dram, hotcold.FlashLatencyCycles)
		lruLat := lruHit*dram + (1-lruHit)*hotcold.FlashLatencyCycles
		t.AddRow(bench.F("%d%%", pct),
			bench.F("%.3f", classHit),
			bench.F("%.3f", lruHit),
			bench.F("%.3f", oracleHit),
			bench.F("%.0f", classLat),
			bench.F("%.0f", lruLat),
			bench.F("%.0f", float64(hotcold.FlashLatencyCycles)))
	}
	t.AddNote("the analytic sweeps flood LRU with cold records; exponential smoothing shrugs them off")
	return []*Table{t}, nil
}
