package experiments

import (
	"reflect"
	"strconv"
	"testing"

	"hwstar/internal/hw"
)

// TestE22GovernedBeatsNaive asserts the experiment's headline claim at test
// scale: on the same memory-hostile query sequence, the naive engine is
// OOM-killed by every over-budget table while the governed engine completes
// everything by spilling, with zero kills and a real spill count.
func TestE22GovernedBeatsNaive(t *testing.T) {
	tables, err := runE22(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}

	// Table 2 rows: naive, governed, governed+faults. Columns:
	// engine, completed, aborted, oom kills, spilled, spill KiB, p50, p99.
	rows := tables[1].Rows
	if len(rows) != 3 {
		t.Fatalf("serve rows = %d, want 3", len(rows))
	}
	naive, governed := rows[0], rows[1]
	if naive[3] == "0" {
		t.Fatalf("naive engine never OOM-killed: %v", naive)
	}
	if naive[1] == naive[2] && naive[2] == "0" {
		t.Fatalf("naive row empty: %v", naive)
	}
	if governed[2] != "0" || governed[3] != "0" {
		t.Fatalf("governed engine aborted or was killed: %v", governed)
	}
	if governed[4] == "0" {
		t.Fatalf("governed engine never spilled: %v", governed)
	}

	// The degradation curve: every budgeted row must complete, and the
	// sub-table budgets must have spilled.
	for i, row := range tables[0].Rows {
		if row[1] != "true" {
			t.Fatalf("curve row %d did not complete: %v", i, row)
		}
		if i > 0 && row[2] != "true" {
			t.Fatalf("curve row %d (budget below table) did not spill: %v", i, row)
		}
	}
}

// TestE22Reproducible runs the full experiment twice: every row of every
// table must be identical — memory chaos is deterministic, not merely
// plausible.
func TestE22Reproducible(t *testing.T) {
	a, err := runE22(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runE22(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Rows, b[i].Rows) {
			t.Fatalf("table %d not reproducible:\n  a=%v\n  b=%v", i, a[i].Rows, b[i].Rows)
		}
	}
}

// TestE22SpillCostIsPriced checks the cost-model side: a spilled plan must
// cost more simulated cycles than the unlimited plan (the spill tier is not
// free), but within a small factor — degradation, not collapse.
func TestE22SpillCostIsPriced(t *testing.T) {
	tbl, err := runE22Curve(TestConfig(), hw.Server2S())
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return f
	}
	base := parse(tbl.Rows[0][5])
	worst := parse(tbl.Rows[len(tbl.Rows)-1][5])
	if worst <= base {
		t.Fatalf("spilled makespan %.2f not above unlimited %.2f: the spill tier priced nothing", worst, base)
	}
	if worst > 10*base {
		t.Fatalf("spilled makespan %.2f more than 10x unlimited %.2f: degradation is not graceful", worst, base)
	}
}
