package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/cache"
	"hwstar/internal/hw"
	"hwstar/internal/index"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E10a",
		Title: "Index structures under YCSB operation mixes (traced)",
		Claim: "which index wins depends on the op mix: point-heavy vs scan-heavy stress different parts of the hierarchy",
		Run:   runE10a,
	})
}

func runE10a(cfg Config) ([]*Table, error) {
	m := hw.Laptop()
	keyspace := int64(cfg.scaled(1<<17, 1<<12))
	nOps := cfg.scaled(4000, 500)

	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"YCSB-B (95% read)", workload.MixReadMostly()},
		{"YCSB-A (50% update)", workload.MixUpdateHeavy()},
		{"YCSB-E (95% scan)", workload.MixScanHeavy()},
	}

	t := bench.NewTable("E10a: traced cycles/op over "+bench.F("%d", keyspace)+" keys ("+m.Name+", cache simulator)",
		"mix", "bst cyc/op", "btree cyc/op", "btree speedup")
	for mi, mc := range mixes {
		ops := workload.GenerateOps(int64(1020+mi), nOps, keyspace, mc.mix)

		run := func(tracedGet func(*cache.Hierarchy, int64) float64,
			tracedScan func(*cache.Hierarchy, int64, int) float64,
			insert func(int64)) float64 {
			h := cache.FromMachine(m)
			var cycles float64
			for _, op := range ops {
				switch op.Kind {
				case workload.OpRead:
					cycles += tracedGet(h, op.Key)
				case workload.OpUpdate:
					// Read-modify-write: locate (traced), then store.
					cycles += tracedGet(h, op.Key)
					insert(op.Key)
				case workload.OpInsert:
					cycles += tracedGet(h, op.Key) // descent to the leaf
					insert(op.Key)
				case workload.OpScan:
					cycles += tracedScan(h, op.Key, op.ScanLen)
				}
			}
			return cycles / float64(len(ops))
		}

		bst := index.NewBST(0)
		bt := index.NewBTree(1 << 40)
		for _, k := range workload.ShuffledInts(1021, int(keyspace)) {
			bst.Insert(k, k)
			bt.Insert(k, k)
		}
		bstCyc := run(
			func(h *cache.Hierarchy, k int64) float64 { _, _, c := bst.TracedGet(h, k); return c },
			func(h *cache.Hierarchy, k int64, n int) float64 { _, c := bst.TracedScan(h, k, 1<<62, n); return c },
			func(k int64) { bst.Insert(k, k) })
		btCyc := run(
			func(h *cache.Hierarchy, k int64) float64 { _, _, c := bt.TracedGet(h, k); return c },
			func(h *cache.Hierarchy, k int64, n int) float64 { _, c := bt.TracedScan(h, k, 1<<62, n); return c },
			func(k int64) { bt.Insert(k, k) })

		t.AddRow(mc.name,
			bench.F("%.0f", bstCyc),
			bench.F("%.0f", btCyc),
			bench.Ratio(bstCyc/btCyc))
	}
	t.AddNote("scan-heavy mixes widen the gap: the leaf chain streams while the BST pointer-walks every entry")
	return []*Table{t}, nil
}
