package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/energy"
	"hwstar/internal/hw"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Energy-aware execution: DVFS policy vs workload character",
		Claim: "the energy-optimal clock depends on where the cycles go — memory-bound work should run slow",
		Run:   runE9,
	})
}

func runE9(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	mo := energy.NewModel(m)
	period := 2.0 // seconds per job slot

	// Jobs spanning the memory-boundness spectrum, ~1.2 G scalable-equivalent
	// cycles each so they fit the period at any frequency.
	mixes := []float64{0, 0.25, 0.5, 0.75, 0.95}
	t := bench.NewTable("E9: energy per job within a "+bench.F("%.0fs", period)+" period ("+m.Name+", 4 cores)",
		"mem-bound frac", "race-to-idle J", "pace J", "optimal J", "optimal freq", "saving vs race")
	for _, mix := range mixes {
		total := 1.2e9 * cfg.clampScale()
		j := energy.Job{
			Name:          bench.F("mix-%.2f", mix),
			ComputeCycles: total * (1 - mix),
			MemCycles:     total * mix,
			Cores:         4,
		}
		race, err := mo.RaceToIdle(j, period)
		if err != nil {
			return nil, err
		}
		pace, err := mo.PaceToDeadline(j, period)
		if err != nil {
			return nil, err
		}
		opt, err := mo.OptimalFrequency(j, period)
		if err != nil {
			return nil, err
		}
		t.AddRow(bench.F("%.2f", mix),
			bench.F("%.1f", race.Joules),
			bench.F("%.1f", pace.Joules),
			bench.F("%.1f", opt.Joules),
			bench.F("%.2f", opt.Frequency),
			bench.Ratio(race.Joules/opt.Joules))
	}
	t.AddNote("as work becomes memory-bound, the optimal frequency slides toward the DVFS floor")
	return []*Table{t}, nil
}

// clampScale keeps energy jobs meaningful at test scale: the model is
// analytic, so scaling only shrinks the absolute joules, never the shape.
func (c Config) clampScale() float64 {
	if c.Scale <= 0 || c.Scale > 1 {
		return 1
	}
	return c.Scale
}
