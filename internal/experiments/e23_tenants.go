package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/frontend"
	v1 "hwstar/internal/frontend/v1"
	"hwstar/internal/hw"
	"hwstar/internal/serve"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Title: "Multi-tenant isolation: noisy batch tenant vs interactive tenant over the HTTP API",
		Claim: "per-tenant governance at the network frontend — token-bucket rate limits, priority lanes, and an interactive core reserve — keeps an interactive tenant's p99 within a small factor of its solo latency while a noisy batch tenant is rate-limited deterministically, instead of the noisy tenant starving everyone through a shared queue",
		Run:   runE23,
	})
}

// E23TenantBench is one tenant's outcome, JSON-stable for BENCH_frontend.json.
type E23TenantBench struct {
	Tenant        string  `json:"tenant"`
	Priority      string  `json:"priority"`
	Sent          int64   `json:"sent"`
	Completed     int64   `json:"completed"`
	RateLimited   int64   `json:"rate_limited"`
	QuotaRejected int64   `json:"quota_rejected"`
	Shed          int64   `json:"shed"`
	Failed        int64   `json:"failed"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// E23Bench is the full E23 outcome — the schema of BENCH_frontend.json, the
// perf-trajectory artifact CI and future PRs diff against.
type E23Bench struct {
	Scale       float64        `json:"scale"`
	Machine     string         `json:"machine"`
	SoloP50Ms   float64        `json:"interactive_solo_p50_ms"`
	SoloP99Ms   float64        `json:"interactive_solo_p99_ms"`
	DuoP50Ms    float64        `json:"interactive_duo_p50_ms"`
	DuoP99Ms    float64        `json:"interactive_duo_p99_ms"`
	P99Ratio    float64        `json:"interactive_p99_duo_vs_solo"`
	Interactive E23TenantBench `json:"interactive"`
	Noisy       E23TenantBench `json:"noisy"`
}

// e23Client is one tenant's HTTP session against the frontend under test.
type e23Client struct {
	base  string
	token string
	http  *http.Client
}

func newE23Client(base, tenant, key string) (*e23Client, error) {
	c := &e23Client{base: base, http: &http.Client{Timeout: 30 * time.Second}}
	body, _ := json.Marshal(v1.SessionRequest{Tenant: tenant, Key: key})
	resp, err := c.http.Post(base+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("e23: session open for %s: HTTP %d", tenant, resp.StatusCode)
	}
	var sr v1.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	c.token = sr.Token
	return c, nil
}

// query posts one pre-marshaled query body and classifies the outcome by
// wire error code. Marshaling stays outside so the noisy tenant's large
// inline payload is encoded once, not per request — client-side encoding is
// not the contention under measurement.
func (c *e23Client) query(body []byte) (status int, code string, err error) {
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var qr v1.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return resp.StatusCode, "", err
		}
		return resp.StatusCode, "", nil
	}
	var eb v1.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, eb.Error.Code, nil
}

// e23Counts tallies one cohort's outcomes.
type e23Counts struct {
	mu                                                sync.Mutex
	sent, completed, rateLimited, quota, shed, failed int64
	latenciesMs                                       []float64
	elapsed                                           time.Duration
}

func (c *e23Counts) note(status int, code string, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sent++
	switch {
	case status == http.StatusOK:
		c.completed++
		c.latenciesMs = append(c.latenciesMs, float64(latency.Microseconds())/1000)
	case code == v1.CodeRateLimited:
		c.rateLimited++
	case code == v1.CodeQuotaExceeded:
		c.quota++
	case code == v1.CodeOverloaded || code == v1.CodeMemoryPressure:
		c.shed++
	default:
		c.failed++
	}
}

func (c *e23Counts) quantile(q float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return quantileOf(c.latenciesMs, q)
}

func quantileOf(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

func (c *e23Counts) bench(tenant, priority string) E23TenantBench {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := E23TenantBench{
		Tenant: tenant, Priority: priority,
		Sent: c.sent, Completed: c.completed,
		RateLimited: c.rateLimited, QuotaRejected: c.quota,
		Shed: c.shed, Failed: c.failed,
		P50Ms: quantileOf(c.latenciesMs, 0.5), P99Ms: quantileOf(c.latenciesMs, 0.99),
	}
	if c.elapsed > 0 {
		b.ThroughputRPS = float64(c.completed) / c.elapsed.Seconds()
	}
	return b
}

// e23Cohort fires clients×requests queries from a tenant's session, one
// goroutine per client, and tallies the outcomes. think paces each client
// between requests (jittered ±50%): the run is in-process, so without a
// stand-in for network RTT a rejected client can resubmit at a rate no
// real network would carry, and the phases would not overlap.
func e23Cohort(c *e23Client, clients, requests int, think time.Duration, mkQuery func(rng *rand.Rand) []byte, counts *e23Counts) {
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2300 + i)))
			for j := 0; j < requests; j++ {
				if think > 0 && j > 0 {
					time.Sleep(think/2 + time.Duration(rng.Int63n(int64(think))))
				}
				q := mkQuery(rng)
				qStart := time.Now()
				status, code, err := c.query(q)
				if err != nil {
					counts.note(0, "", 0)
					continue
				}
				counts.note(status, code, time.Since(qStart))
			}
		}()
	}
	wg.Wait()
	counts.mu.Lock()
	counts.elapsed = time.Since(start)
	counts.mu.Unlock()
}

// RunE23 executes the two-tenant isolation experiment and returns both the
// rendered tables and the structured bench artifact.
//
// Phase 1 (solo): the interactive tenant runs its scan workload alone.
// Phase 2 (duo): the same workload runs while a noisy batch tenant floods
// expensive grouped aggregations; the noisy tenant's token bucket is
// burst-only (rate 0), so its admission count — and therefore its rejection
// count — is exact, not probabilistic.
func RunE23(cfg Config) (*E23Bench, []*Table, error) {
	m := hw.Server2S()
	intClients := cfg.scaled(8, 2)
	intRequests := cfg.scaled(80, 5)
	noisyClients := cfg.scaled(8, 2)
	noisyRequests := cfg.scaled(80, 5)
	noisyBurst := cfg.scaled(64, 4)
	rows := cfg.scaled(1<<20, 1<<15)
	aggRows := cfg.scaled(1<<14, 1<<10)

	srv, err := serve.New(m, serve.Options{
		Workers:            8,
		QueueDepth:         1024,
		BatchQueueDepth:    1024,
		MaxBatch:           256,
		BatchWindow:        500 * time.Microsecond,
		InteractiveReserve: 6,
	})
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	cols := [][]int64{
		workload.UniformInts(2311, rows, 100000),
		workload.UniformInts(2312, rows, 1000),
	}
	if err := srv.Register("facts", cols); err != nil {
		return nil, nil, err
	}

	fe, err := frontend.New(frontend.Config{
		Server: srv,
		Tenants: []frontend.TenantConfig{
			{ID: "int-a", Key: "int-a-key", Priority: "interactive"},
			{ID: "noisy-b", Key: "noisy-b-key", Priority: "batch", Burst: noisyBurst, MaxConcurrent: 1},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	hs := httptest.NewServer(fe.Handler())
	defer hs.Close()

	intClient, err := newE23Client(hs.URL, "int-a", "int-a-key")
	if err != nil {
		return nil, nil, err
	}
	noisyClient, err := newE23Client(hs.URL, "noisy-b", "noisy-b-key")
	if err != nil {
		return nil, nil, err
	}

	mkScan := func(rng *rand.Rand) []byte {
		lo := int64(rng.Intn(90000))
		body, _ := json.Marshal(&v1.QueryRequest{
			Op: v1.OpScan, Table: "facts",
			Scan: &v1.ScanArgs{FilterCol: 0, Lo: lo, Hi: lo + 5000, AggCol: 1},
		})
		return body
	}
	aggKeys := workload.UniformInts(2313, aggRows, 1024)
	aggVals := workload.UniformInts(2314, aggRows, 100)
	aggBody, _ := json.Marshal(&v1.QueryRequest{
		Op:       v1.OpGroupSum,
		GroupSum: &v1.GroupSumArgs{Keys: aggKeys, Vals: aggVals, Strategy: "radix-partitioned"},
	})
	mkAgg := func(*rand.Rand) []byte { return aggBody }

	// Phase 1: interactive tenant alone.
	var solo e23Counts
	e23Cohort(intClient, intClients, intRequests, 0, mkScan, &solo)

	// Phase 2: same interactive workload under the noisy batch flood.
	var duo, noisy e23Counts
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e23Cohort(noisyClient, noisyClients, noisyRequests, 20*time.Millisecond, mkAgg, &noisy)
	}()
	go func() {
		defer wg.Done()
		e23Cohort(intClient, intClients, intRequests, 0, mkScan, &duo)
	}()
	wg.Wait()

	b := &E23Bench{
		Scale:     cfg.Scale,
		Machine:   "server-2s8c",
		SoloP50Ms: solo.quantile(0.5), SoloP99Ms: solo.quantile(0.99),
		DuoP50Ms: duo.quantile(0.5), DuoP99Ms: duo.quantile(0.99),
	}
	if b.SoloP99Ms > 0 {
		b.P99Ratio = b.DuoP99Ms / b.SoloP99Ms
	}
	// The duo-phase interactive counters plus the solo phase both ran on the
	// int-a session; report the duo phase (the contended one).
	b.Interactive = duo.bench("int-a", "interactive")
	b.Noisy = noisy.bench("noisy-b", "batch")

	// The noisy tenant's bucket is burst-only: admitted exactly
	// min(sent, burst), rejected exactly sent-burst. Anything else is a
	// frontend bug, not noise.
	wantSent := int64(noisyClients * noisyRequests)
	wantLimited := wantSent - int64(noisyBurst)
	if wantLimited < 0 {
		wantLimited = 0
	}
	if b.Noisy.RateLimited != wantLimited {
		return nil, nil, fmt.Errorf("e23: noisy tenant rate-limited %d times, want exactly %d (burst %d of %d sent)",
			b.Noisy.RateLimited, wantLimited, noisyBurst, wantSent)
	}

	t1 := bench.NewTable(
		fmt.Sprintf("E23: interactive tenant p99 under a noisy batch tenant (%d×%d interactive, %d×%d noisy, burst %d)",
			intClients, intRequests, noisyClients, noisyRequests, noisyBurst),
		"phase", "sent", "completed", "p50 ms", "p99 ms", "p99 vs solo")
	t1.AddRow("solo", bench.F("%d", solo.sent), bench.F("%d", solo.completed),
		bench.F("%.2f", b.SoloP50Ms), bench.F("%.2f", b.SoloP99Ms), "1.00x")
	t1.AddRow("vs noisy batch", bench.F("%d", duo.sent), bench.F("%d", duo.completed),
		bench.F("%.2f", b.DuoP50Ms), bench.F("%.2f", b.DuoP99Ms), bench.F("%.2fx", b.P99Ratio))

	t2 := bench.NewTable("E23: per-tenant governance (noisy tenant burst-only bucket: rejections are exact)",
		"tenant", "priority", "sent", "completed", "rate-limited", "quota-rejected", "shed", "failed", "throughput rps")
	for _, tb := range []E23TenantBench{b.Interactive, b.Noisy} {
		t2.AddRow(tb.Tenant, tb.Priority, bench.F("%d", tb.Sent), bench.F("%d", tb.Completed),
			bench.F("%d", tb.RateLimited), bench.F("%d", tb.QuotaRejected), bench.F("%d", tb.Shed),
			bench.F("%d", tb.Failed), bench.F("%.0f", tb.ThroughputRPS))
	}
	return b, []*Table{t1, t2}, nil
}

func runE23(cfg Config) ([]*Table, error) {
	_, tables, err := RunE23(cfg)
	return tables, err
}
