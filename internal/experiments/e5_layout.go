package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/cache"
	"hwstar/internal/hw"
	"hwstar/internal/layout"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Storage layout vs access pattern (NSM/DSM/PAX)",
		Claim: "cache-line utilization, not the logical schema, decides the right layout",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E5a",
		Title: "Layout advisor (PDSM-style cost-based selection)",
		Claim: "the layout decision can be made by a hardware cost model instead of folklore",
		Run:   runE5a,
	})
}

func runE5(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	const ncols = 16
	rows := cfg.scaled(1<<20, 1<<12)

	// Analytic scan sweep over projectivity.
	scanT := bench.NewTable("E5: full scan of "+bench.F("%d", rows)+"x16 relation, modeled ("+m.Name+")",
		"cols read", "NSM Mcyc", "DSM Mcyc", "PAX Mcyc", "DSM saving")
	nsm := layout.MustBuild(layout.NSM, makeLayoutCols(rows, ncols))
	dsm := layout.MustBuild(layout.DSM, makeLayoutCols(rows, ncols))
	pax := layout.MustBuild(layout.PAX, makeLayoutCols(rows, ncols))
	ctx := hw.DefaultContext()
	for _, k := range []int{1, 2, 4, 8, 16} {
		cols := make([]int, k)
		for i := range cols {
			cols[i] = i
		}
		cn := m.Cycles(nsm.ScanWork(cols, m.LineBytes()), ctx)
		cd := m.Cycles(dsm.ScanWork(cols, m.LineBytes()), ctx)
		cp := m.Cycles(pax.ScanWork(cols, m.LineBytes()), ctx)
		scanT.AddRow(bench.F("%d/16", k),
			bench.F("%.1f", cn/1e6), bench.F("%.1f", cd/1e6), bench.F("%.1f", cp/1e6),
			bench.Ratio(cn/cd))
	}
	scanT.AddNote("NSM streams all 128 row-bytes regardless of projectivity")

	// Traced point-access comparison (cache-simulator ground truth).
	tracedRows := cfg.scaled(1<<15, 1<<11)
	nsmS := layout.MustBuild(layout.NSM, makeLayoutCols(tracedRows, 8))
	dsmS := layout.MustBuild(layout.DSM, makeLayoutCols(tracedRows, 8))
	paxS := layout.MustBuild(layout.PAX, makeLayoutCols(tracedRows, 8))
	dsmS.SetBase(1 << 32)
	paxS.SetBase(1 << 33)
	probes := workload.UniformInts(501, 4000, int64(tracedRows))
	all8 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	pointT := bench.NewTable("E5: traced point reads (full row of 8 cols), cache simulator ("+m.Name+")",
		"layout", "cycles/probe", "L1 miss/probe", "TLB miss/probe")
	for _, rc := range []struct {
		name string
		rel  *layout.Relation
	}{{"NSM", nsmS}, {"DSM", dsmS}, {"PAX", paxS}} {
		h := cache.FromMachine(m)
		var cycles float64
		for _, p := range probes {
			cycles += rc.rel.TracePoint(h, int(p), all8)
		}
		lv := h.Levels()
		l1 := lv[0]
		tlb := lv[len(lv)-1]
		pointT.AddRow(rc.name,
			bench.F("%.1f", cycles/float64(len(probes))),
			bench.F("%.2f", float64(l1.Misses)/float64(len(probes))),
			bench.F("%.2f", float64(tlb.Misses)/float64(len(probes))))
	}
	pointT.AddNote("a 64-byte NSM row is one line; DSM scatters it over 8 distant lines")
	return []*Table{scanT, pointT}, nil
}

func makeLayoutCols(rows, cols int) [][]int64 {
	out := make([][]int64, cols)
	for c := range out {
		out[c] = workload.UniformInts(int64(500+c), rows, 1<<30)
	}
	return out
}

func runE5a(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	rows := cfg.scaled(1<<20, 1<<12)
	allCols := make([]int, 16)
	for i := range allCols {
		allCols[i] = i
	}
	profiles := []struct {
		name string
		p    layout.AccessProfile
	}{
		{"OLAP (1000 scans of 2 cols)", layout.AccessProfile{Scans: 1000, ScanCols: []int{0, 1}}},
		{"OLTP (1M full-row points)", layout.AccessProfile{Points: 1_000_000, PointCols: allCols}},
		{"mixed (100 scans + 200k points)", layout.AccessProfile{
			Scans: 100, ScanCols: []int{0, 1},
			Points: 200_000, PointCols: allCols,
		}},
	}
	t := bench.NewTable("E5a: layout advisor on a "+bench.F("%d", rows)+"x16 relation ("+m.Name+")",
		"workload", "NSM Mcyc", "DSM Mcyc", "PAX Mcyc", "advisor picks")
	for _, pr := range profiles {
		adv, err := layout.Advise(rows, 16, pr.p, m)
		if err != nil {
			return nil, err
		}
		t.AddRow(pr.name,
			bench.F("%.1f", adv.Costs[layout.NSM]/1e6),
			bench.F("%.1f", adv.Costs[layout.DSM]/1e6),
			bench.F("%.1f", adv.Costs[layout.PAX]/1e6),
			adv.Best.String())
	}
	return []*Table{t}, nil
}
