package experiments

import (
	"math"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/queries"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Execution models: Volcano vs vectorized vs fused (Q1/Q6)",
		Claim: "tuple-at-a-time interpretation wastes the CPU; batches and compiled pipelines reclaim it",
		Run:   runE6,
	})
}

func runE6(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	rows := cfg.scaled(1_000_000, 20_000)
	li := workload.LineItem(601, rows)
	orders := workload.Orders(602, rows/4)

	t := bench.NewTable("E6: "+bench.F("%d", rows)+"-row lineitem ("+m.Name+")",
		"query", "engine", "model cyc/tuple", "vs volcano", "real ms")

	type queryCase struct {
		name string
		run  func(eng queries.Engine, acct *hw.Account) error
	}
	var q6check, q1check, q3check float64
	cases := []queryCase{
		{"Q6", func(eng queries.Engine, acct *hw.Account) error {
			got, err := queries.Q6(eng, li, queries.DefaultQ6(), acct)
			if err != nil {
				return err
			}
			if q6check == 0 {
				q6check = got
			} else if math.Abs(got-q6check) > 1e-6*math.Abs(q6check) {
				return bench.ErrMismatch("E6-Q6", int64(got), int64(q6check))
			}
			return nil
		}},
		{"Q1", func(eng queries.Engine, acct *hw.Account) error {
			got, err := queries.Q1(eng, li, queries.DefaultQ1(), acct)
			if err != nil {
				return err
			}
			var count int64
			for _, r := range got {
				count += r.Count
			}
			if q1check == 0 {
				q1check = float64(count)
			} else if float64(count) != q1check {
				return bench.ErrMismatch("E6-Q1", count, int64(q1check))
			}
			return nil
		}},
		{"Q3", func(eng queries.Engine, acct *hw.Account) error {
			got, err := queries.Q3(eng, li, orders, queries.DefaultQ3(), acct)
			if err != nil {
				return err
			}
			var count int64
			for _, r := range got {
				count += r.Count
			}
			if q3check == 0 {
				q3check = float64(count)
			} else if float64(count) != q3check {
				return bench.ErrMismatch("E6-Q3", count, int64(q3check))
			}
			return nil
		}},
	}

	for _, qc := range cases {
		var volcanoCycles float64
		for _, eng := range queries.Engines() {
			acct := hw.NewAccount(m, hw.DefaultContext())
			start := time.Now()
			if err := qc.run(eng, acct); err != nil {
				return nil, err
			}
			realMs := float64(time.Since(start).Microseconds()) / 1000
			perTuple := acct.TotalCycles() / float64(rows)
			if eng == queries.EngineVolcano {
				volcanoCycles = acct.TotalCycles()
			}
			t.AddRow(qc.name, string(eng),
				bench.F("%.1f", perTuple),
				bench.Ratio(volcanoCycles/acct.TotalCycles()),
				bench.F("%.1f", realMs))
		}
	}
	t.AddNote("'real ms' is the actual Go implementation on this host — the same ordering, live")
	return []*Table{t}, nil
}
