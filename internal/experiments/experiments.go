// Package experiments implements the E1–E24 experiment suite defined in
// DESIGN.md: each experiment operationalizes one claim of the keynote
// "Hardware killed the software star" as a parameter sweep over the hwstar
// engine and its hardware-oblivious baselines, and renders the results as
// tables. cmd/hwbench runs them from the command line; bench_test.go wraps
// each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"

	"hwstar/internal/bench"
)

// Table is the result-table type experiments produce (see internal/bench).
type Table = bench.Table

// Config scales experiment sizes. Scale 1 is the full (paper-style) size;
// tests run at a small fraction to stay fast. Machine profiles are fixed per
// experiment so results are comparable across runs.
type Config struct {
	Scale float64
}

// DefaultConfig runs experiments at full size.
func DefaultConfig() Config { return Config{Scale: 1} }

// TestConfig runs experiments at a fraction of full size, for unit tests and
// smoke runs.
func TestConfig() Config { return Config{Scale: 0.05} }

// scaled returns n scaled by the config, floored at min.
func (c Config) scaled(n int, min int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < min {
		v = min
	}
	return v
}

// Experiment is one entry of the suite.
type Experiment struct {
	// ID is the experiment identifier ("E1", "E2a", ...).
	ID string
	// Title is a one-line description; Claim the keynote claim it tests.
	Title string
	Claim string
	// Run executes the experiment and returns its result tables.
	Run func(cfg Config) ([]*Table, error)
}

// registry holds all experiments, populated by init functions in the
// per-experiment files.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E1 < E1a < E2 < ... < E10 (numeric then suffix).
func idLess(a, b string) bool {
	na, sa := splitID(a)
	nb, sb := splitID(b)
	if na != nb {
		return na < nb
	}
	return sa < sb
}

func splitID(id string) (int, string) {
	var n int
	var suffix string
	fmt.Sscanf(id, "E%d%s", &n, &suffix)
	return n, suffix
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}
