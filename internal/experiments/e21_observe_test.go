package experiments

import "testing"

// TestE21Decomposes runs the observability experiment at test scale and
// asserts its structural claims: every traced request's stage walls sum to
// no more than its total, execution carries simulated cycles, and the chaos
// mix actually exercised the retry path somewhere in the run.
func TestE21Decomposes(t *testing.T) {
	bds, h, err := e21Run(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bds) == 0 {
		t.Fatal("no traces captured")
	}
	for i, b := range bds {
		if b.total <= 0 {
			t.Fatalf("trace %d: empty total wall: %+v", i, b)
		}
		if parts := b.queue + b.batch + b.execute + b.retry; parts > b.total*1.001 {
			t.Fatalf("trace %d: stage walls %.3fms exceed total %.3fms", i, parts, b.total)
		}
		if b.execMcyc <= 0 {
			t.Fatalf("trace %d: no simulated cycles attributed to execution: %+v", i, b)
		}
	}
	if h.Completed == 0 {
		t.Fatalf("no requests completed: %+v", h)
	}
	// Deterministic fault draws at a fixed seed: the transient mix must have
	// fired at least once so the retry-backoff stage is a real measurement.
	if h.Retries == 0 {
		t.Fatalf("chaos mix produced no retries; decomposition never saw the retry stage: %+v", h)
	}
}

// TestE21Tables checks the experiment renders its two tables.
func TestE21Tables(t *testing.T) {
	tables, err := runE21(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
}
