package experiments

import "testing"

// TestE26GatesHold runs the sharded-tier experiment at small scale and
// checks the acceptance gates the full run enforces: zero lost committed
// answers across the kill/failover cycles, every total-replica-loss trial
// a typed exact partial (no silent wrong sums), and distributed joins
// exact against single-node truth. RunE26 itself errors when a gate
// fails, so the main assertion is err == nil.
func TestE26GatesHold(t *testing.T) {
	b, tables, err := RunE26(Config{Scale: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	if b.Failover.LostAnswers != 0 {
		t.Fatalf("lost %d committed answers", b.Failover.LostAnswers)
	}
	if b.Failover.NodeKills != b.Failover.Cycles {
		t.Fatalf("kills %d != cycles %d", b.Failover.NodeKills, b.Failover.Cycles)
	}
	if b.Failover.Rereplications == 0 {
		t.Fatal("recovery never re-replicated")
	}
	if b.Partial.SilentWrongSums != 0 || b.Partial.TypedPartials != b.Partial.Trials {
		t.Fatalf("partial contract: %+v", b.Partial)
	}
	if b.Partial.MinCoveredFrac <= 0 || b.Partial.MinCoveredFrac >= 1 {
		t.Fatalf("covered fraction %v outside (0,1)", b.Partial.MinCoveredFrac)
	}
	for _, p := range b.Strategies {
		if !p.Exact {
			t.Fatalf("inexact distributed join: %+v", p)
		}
		if p.Chosen != "shuffle" && p.Chosen != "broadcast" {
			t.Fatalf("unknown strategy %q", p.Chosen)
		}
	}
}
