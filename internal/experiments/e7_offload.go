package experiments

import (
	"hwstar/internal/accel"
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Accelerator offload crossover (dark silicon)",
		Claim: "specialized engines win once streams are long enough to amortize setup and transfer",
		Run:   runE7,
	})
}

func runE7(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	// Consolidated socket: the realistic case for offload decisions.
	ctx := hw.ExecContext{ActiveCoresOnSocket: 8, InterferenceFactor: 1}
	fpga := accel.FPGA2013()
	smart := accel.SmartStorage()

	t := bench.NewTable("E7: filter-sum placement vs data size ("+m.Name+", busy socket)",
		"data", "cpu Mcyc", "fpga Mcyc", "smart-storage Mcyc", "planner picks (fpga)", "planner picks (smart)")
	for _, bytes := range []int64{1 << 20, 1 << 23, 1 << 26, 1 << 29, 1 << 32} {
		tuples := bytes / 8
		w := hw.Work{Tuples: tuples, ComputePerTuple: 3, SeqReadBytes: bytes, BranchMisses: tuples / 4}
		pf, cpu, fdev := accel.Plan(fpga, m, ctx, w)
		ps, _, sdev := accel.Plan(smart, m, ctx, w)
		t.AddRow(bench.Bytes(bytes),
			bench.F("%.1f", cpu/1e6),
			bench.F("%.1f", fdev/1e6),
			bench.F("%.1f", sdev/1e6),
			string(pf), string(ps))
	}
	if cross := accel.Crossover(fpga, m, ctx, 1<<36); cross > 0 {
		t.AddNote("FPGA crossover at %s; in-data-path device at %s",
			bench.Bytes(cross), bench.Bytes(accel.Crossover(smart, m, ctx, 1<<36)))
	}

	// Validation: the operator itself runs for real at a modest size.
	n := cfg.scaled(1<<22, 1<<12)
	data := workload.UniformInts(701, n, 1<<20)
	fs := accel.FilterSum{Device: fpga, Machine: m, Ctx: ctx}
	res, err := fs.Run(data, 1<<18, 1<<19)
	if err != nil {
		return nil, err
	}
	t.AddNote("live validation: filter-sum over %d tuples matched %d rows (placement: %s)",
		n, res.Count, res.Placement)
	return []*Table{t}, nil
}
