package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "NUMA placement policies",
		Claim: "where memory lives decides scan bandwidth and probe latency; oblivious placement forfeits both",
		Run:   runE4,
	})
}

func runE4(cfg Config) ([]*Table, error) {
	m := hw.NUMA4S()
	bytes := int64(cfg.scaled(1<<30, 1<<24))
	probes := int64(cfg.scaled(1<<22, 1<<14))
	readerNode := 0

	type policyCase struct {
		name   string
		policy mem.Policy
		// allocNode is where the allocating code runs; the classic
		// first-touch trap allocates on one node and reads from another.
		allocNode int
	}
	cases := []policyCase{
		{"local (NUMA-aware)", mem.PolicyLocal, readerNode},
		{"interleave (OS default)", mem.PolicyInterleave, readerNode},
		{"first-touch by wrong thread", mem.PolicyFirstTouch, 2},
		{"remote (worst case)", mem.PolicyRemote, readerNode},
	}

	t := bench.NewTable("E4: reading "+bench.Bytes(bytes)+" from socket 0 ("+m.Name+")",
		"placement", "local frac", "scan Mcyc", "probe Mcyc", "scan slowdown", "probe slowdown")

	var scanBase, probeBase float64
	ctx := hw.DefaultContext()
	for i, pc := range cases {
		na := mem.NewNUMAAllocator(m, pc.policy)
		placement := na.Place(bytes, pc.allocNode)
		scanCycles := m.Cycles(mem.ReadWork("scan", placement, readerNode), ctx)
		probeCycles := m.Cycles(mem.RandomReadWork("probe", placement, readerNode, probes), ctx)
		if i == 0 {
			scanBase, probeBase = scanCycles, probeCycles
		}
		t.AddRow(pc.name,
			bench.F("%.2f", placement.LocalFraction(readerNode)),
			bench.F("%.1f", scanCycles/1e6),
			bench.F("%.1f", probeCycles/1e6),
			bench.Ratio(scanCycles/scanBase),
			bench.Ratio(probeCycles/probeBase))
	}
	t.AddNote("remote latency %.0f vs local %.0f cycles; interconnect %.1f vs socket %.1f B/cyc",
		m.RemoteLatencyCycles, m.MemLatencyCycles, m.InterconnectBW, m.MemBWPerSocket)
	return []*Table{t}, nil
}
