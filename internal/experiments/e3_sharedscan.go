package experiments

import (
	"reflect"

	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Shared clock scan vs query-at-a-time",
		Claim: "under concurrency, sharing one scan across queries beats re-reading the data per query",
		Run:   runE3,
	})
}

func runE3(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	rows := cfg.scaled(1<<20, 1<<14)
	rel, err := scan.NewRelation([][]int64{
		workload.UniformInts(301, rows, 100000),
		workload.UniformInts(302, rows, 1000),
	})
	if err != nil {
		return nil, err
	}

	t := bench.NewTable("E3: concurrent analytics over "+bench.F("%d", rows)+" rows ("+m.Name+")",
		"queries", "qat Mcyc", "shared Mcyc", "shared+index Mcyc", "sharing speedup", "index speedup")

	mkQueries := func(n int) []scan.Query {
		qs := make([]scan.Query, n)
		los := workload.UniformInts(303, n, 90000)
		for i := range qs {
			qs[i] = scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 5000, AggCol: 1}
		}
		return qs
	}

	for _, q := range []int{1, 4, 16, 64, 256, 1024} {
		qs := mkQueries(q)
		qat := hw.NewAccount(m, hw.DefaultContext())
		want, err := scan.QueryAtATime(rel, qs, qat)
		if err != nil {
			return nil, err
		}
		naive := hw.NewAccount(m, hw.DefaultContext())
		got, err := scan.Shared(rel, qs, scan.SharedOptions{}, naive)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(got, want) {
			return nil, bench.ErrMismatch("E3-shared", int64(len(got)), int64(len(want)))
		}
		indexed := hw.NewAccount(m, hw.DefaultContext())
		got, err = scan.Shared(rel, qs, scan.SharedOptions{UseQueryIndex: true}, indexed)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(got, want) {
			return nil, bench.ErrMismatch("E3-indexed", int64(len(got)), int64(len(want)))
		}
		t.AddRow(bench.F("%d", q),
			bench.F("%.1f", qat.TotalCycles()/1e6),
			bench.F("%.1f", naive.TotalCycles()/1e6),
			bench.F("%.1f", indexed.TotalCycles()/1e6),
			bench.Ratio(qat.TotalCycles()/naive.TotalCycles()),
			bench.Ratio(naive.TotalCycles()/indexed.TotalCycles()))
	}
	t.AddNote("query-at-a-time grows linearly in queries; the indexed clock scan grows only with matches")
	return []*Table{t}, nil
}
