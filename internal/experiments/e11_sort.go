package experiments

import (
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/hw"
	hwsort "hwstar/internal/sort"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Sorting: comparison sort vs hardware-conscious radix sort",
		Claim: "replacing unpredictable comparisons with bounded sequential scatters wins at scale",
		Run:   runE11,
	})
}

func runE11(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	t := bench.NewTable("E11: sorting int64 keys ("+m.Name+")",
		"keys", "cmp Mcyc", "radix Mcyc", "radix speedup", "real cmp ms", "real radix ms")
	ctx := hw.DefaultContext()
	for _, base := range []int{1 << 16, 1 << 20, 1 << 23} {
		n := cfg.scaled(base, 1<<12)
		keys := workload.UniformInts(1101, n, 1<<62)

		cmpKeys := append([]int64(nil), keys...)
		start := time.Now()
		hwsort.Comparison(cmpKeys)
		cmpMs := float64(time.Since(start).Microseconds()) / 1000

		radixKeys := append([]int64(nil), keys...)
		start = time.Now()
		hwsort.Radix(radixKeys, hwsort.RadixOptions{}, m)
		radixMs := float64(time.Since(start).Microseconds()) / 1000

		for i := range cmpKeys {
			if cmpKeys[i] != radixKeys[i] {
				return nil, bench.ErrMismatch("E11", cmpKeys[i], radixKeys[i])
			}
		}

		cmpCyc := m.Cycles(hwsort.ComparisonWork(int64(n), m), ctx)
		radixCyc := m.Cycles(hwsort.RadixWork(int64(n), hwsort.RadixOptions{}, m), ctx)
		t.AddRow(bench.F("%d", n),
			bench.F("%.1f", cmpCyc/1e6),
			bench.F("%.1f", radixCyc/1e6),
			bench.Ratio(cmpCyc/radixCyc),
			bench.F("%.1f", cmpMs),
			bench.F("%.1f", radixMs))
	}
	t.AddNote("the live columns show the same ordering on this host: radix sort needs no branch predictions")
	return []*Table{t}, nil
}
