package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/cache"
	"hwstar/internal/hw"
	"hwstar/internal/index"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Pointer chasing vs cache-conscious indexing (BST vs B+-tree)",
		Claim: "one dependent cache line per comparison loses to line-packed nodes once the index leaves the cache",
		Run:   runE10,
	})
}

func runE10(cfg Config) ([]*Table, error) {
	m := hw.Laptop()
	t := bench.NewTable("E10: traced random probes ("+m.Name+", cache simulator)",
		"keys", "bst bytes", "bst cyc/probe", "btree cyc/probe", "btree speedup", "bst L1miss/probe", "btree L1miss/probe")

	for _, base := range []int{1 << 12, 1 << 15, 1 << 18} {
		n := cfg.scaled(base, 1<<10)
		keys := workload.ShuffledInts(1001, n)
		bst := index.NewBST(0)
		bt := index.NewBTree(1 << 40)
		for _, k := range keys {
			bst.Insert(k, k)
			bt.Insert(k, k)
		}
		probes := workload.UniformInts(1002, 2000, int64(n))

		hb := cache.FromMachine(m)
		var bstCycles float64
		for _, p := range probes {
			_, ok, c := bst.TracedGet(hb, p)
			if !ok {
				return nil, bench.ErrMismatch("E10-bst", p, -1)
			}
			bstCycles += c
		}
		ht := cache.FromMachine(m)
		var btCycles float64
		for _, p := range probes {
			_, ok, c := bt.TracedGet(ht, p)
			if !ok {
				return nil, bench.ErrMismatch("E10-btree", p, -1)
			}
			btCycles += c
		}
		np := float64(len(probes))
		t.AddRow(bench.F("%d", n),
			bench.Bytes(bst.Bytes()),
			bench.F("%.0f", bstCycles/np),
			bench.F("%.0f", btCycles/np),
			bench.Ratio(bstCycles/btCycles),
			bench.F("%.1f", float64(hb.Levels()[0].Misses)/np),
			bench.F("%.1f", float64(ht.Levels()[0].Misses)/np))
	}
	t.AddNote("BST probes degrade ~3x faster in absolute cycles as the index outgrows the caches (LLC %s):",
		bench.Bytes(m.LLC().SizeBytes))
	t.AddNote("each binary comparison is one dependent sparse line, vs a short burst of adjacent lines per B+-tree level")
	return []*Table{t}, nil
}
