package experiments

import (
	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/vmsim"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Virtualization interference and performance predictability",
		Claim: "consolidation destroys latency predictability; isolation restores it at a bandwidth tax",
		Run:   runE8,
	})
}

func runE8(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	n := cfg.scaled(20_000, 1_000)
	spec := vmsim.QuerySpec{Work: hw.Work{
		Name: "point-query-mix", Tuples: 50_000, ComputePerTuple: 5,
		SeqReadBytes: 4 << 20,
		RandomReads:  10_000, RandomWS: 1 << 30,
	}}

	levels := []struct {
		name  string
		inter vmsim.Interference
	}{
		{"dedicated", vmsim.None()},
		{"light neighbours", vmsim.Light()},
		{"heavy neighbours", vmsim.Heavy()},
		{"heavy + isolation", vmsim.Isolated(vmsim.Heavy())},
	}
	t := bench.NewTable("E8: latency distribution of "+bench.F("%d", n)+" queries ("+m.Name+")",
		"environment", "p50 Kcyc", "p95 Kcyc", "p99 Kcyc", "p999 Kcyc", "p99/p50")
	for _, lv := range levels {
		h, err := vmsim.RunDistribution(m, spec, lv.inter, n, 801)
		if err != nil {
			return nil, err
		}
		p := vmsim.Summarize(h)
		t.AddRow(lv.name,
			bench.F("%.0f", p.P50/1e3), bench.F("%.0f", p.P95/1e3),
			bench.F("%.0f", p.P99/1e3), bench.F("%.0f", p.P999/1e3),
			bench.F("%.2f", p.TailRatio()))
	}
	t.AddNote("isolation (pinned cores + cache partitioning) trades median latency for a flat tail")
	return []*Table{t}, nil
}
