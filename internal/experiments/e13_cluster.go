package experiments

import (
	"context"
	"hwstar/internal/bench"
	"hwstar/internal/cluster"
	"hwstar/internal/join"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Rack-scale joins: shuffle vs broadcast over the network tier",
		Claim: "at rack scale the network is the next bandwidth wall; the winning plan depends on sizes and fabric",
		Run:   runE13,
	})
}

func runE13(cfg Config) ([]*Table, error) {
	probeRows := cfg.scaled(1<<21, 1<<14)

	// Table 1: build/probe ratio sweep on a fixed 8-node 10GbE rack.
	rack := cluster.Rack10GbE(8)
	t1 := bench.NewTable("E13: 8-node 10GbE rack, probe = "+bench.F("%d", probeRows)+" rows, sweep build size",
		"build rows", "shuffle Mcyc", "broadcast Mcyc", "auto picks", "net frac (auto)")
	for _, frac := range []int{256, 64, 16, 4, 1} {
		buildRows := probeRows / frac
		gen := workload.GenerateJoin(workload.JoinConfig{Seed: 1301, BuildRows: buildRows, ProbeRows: probeRows})
		in := join.Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}

		sh, err := rack.Join(context.Background(), in, cluster.StrategyShuffle)
		if err != nil {
			return nil, err
		}
		bc, err := rack.Join(context.Background(), in, cluster.StrategyBroadcast)
		if err != nil {
			return nil, err
		}
		if sh.Matches != bc.Matches || sh.Checksum != bc.Checksum {
			return nil, bench.ErrMismatch("E13", sh.Matches, bc.Matches)
		}
		auto, err := rack.Join(context.Background(), in, cluster.StrategyAuto)
		if err != nil {
			return nil, err
		}
		t1.AddRow(bench.F("%d", buildRows),
			bench.F("%.1f", sh.MakespanCycles/1e6),
			bench.F("%.1f", bc.MakespanCycles/1e6),
			string(auto.Strategy),
			bench.F("%.2f", auto.NetworkCycles/auto.MakespanCycles))
	}
	t1.AddNote("broadcast wins while (nodes-1)·build < (nodes-1)/nodes·(build+probe); auto tracks the flip")

	// Table 2: node scaling under two fabrics.
	buildRows := probeRows / 4
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 1302, BuildRows: buildRows, ProbeRows: probeRows})
	in := join.Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	t2 := bench.NewTable("E13: shuffle join scaling with nodes (build 1:4 probe)",
		"nodes", "10GbE Mcyc", "10GbE net frac", "40GbE Mcyc", "40GbE net frac")
	var base10 float64
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		r10, err := cluster.Rack10GbE(nodes).Join(context.Background(), in, cluster.StrategyShuffle)
		if err != nil {
			return nil, err
		}
		r40, err := cluster.Rack40GbE(nodes).Join(context.Background(), in, cluster.StrategyShuffle)
		if err != nil {
			return nil, err
		}
		if nodes == 1 {
			base10 = r10.MakespanCycles
		}
		_ = base10
		netFrac := func(r cluster.Result) float64 {
			if r.MakespanCycles == 0 {
				return 0
			}
			return r.NetworkCycles / r.MakespanCycles
		}
		t2.AddRow(bench.F("%d", nodes),
			bench.F("%.1f", r10.MakespanCycles/1e6),
			bench.F("%.2f", netFrac(r10)),
			bench.F("%.1f", r40.MakespanCycles/1e6),
			bench.F("%.2f", netFrac(r40)))
	}
	t2.AddNote("adding nodes shrinks local work but the slow fabric's share grows — scale-out hits the network wall first")
	return []*Table{t1, t2}, nil
}
