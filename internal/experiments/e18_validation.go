package experiments

import (
	"math/rand"

	"hwstar/internal/bench"
	"hwstar/internal/cache"
	"hwstar/internal/hw"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Model validation: analytic latencies vs trace-driven simulation",
		Claim: "the two substrates agree — the fast analytic model predicts what the cache simulator measures",
		Run:   runE18,
	})
}

func runE18(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	accesses := cfg.scaled(200_000, 20_000)

	t := bench.NewTable("E18: random access latency, analytic model vs cache simulator ("+m.Name+")",
		"working set", "level", "analytic cyc", "simulated cyc", "ratio")
	cases := []struct {
		ws    int64
		level string
	}{
		{16 << 10, "L1"},
		{128 << 10, "L2"},
		{8 << 20, "L3"},
		{256 << 20, "DRAM+TLB"},
	}
	for _, c := range cases {
		analytic := m.RandomLatency(c.ws)

		h := cache.FromMachine(m)
		rng := rand.New(rand.NewSource(1801))
		// Warm up: touch the working set twice, then measure.
		warm := int(c.ws / 64)
		if warm > accesses {
			warm = accesses
		}
		for i := 0; i < 2*warm; i++ {
			h.Access(uint64(rng.Int63n(c.ws)))
		}
		h.ResetStats()
		n := accesses
		for i := 0; i < n; i++ {
			h.Access(uint64(rng.Int63n(c.ws)))
		}
		simulated := h.Cycles() / float64(h.Accesses())

		t.AddRow(bench.Bytes(c.ws), c.level,
			bench.F("%.1f", analytic),
			bench.F("%.1f", simulated),
			bench.F("%.2f", simulated/analytic))
	}
	t.AddNote("every experiment that reports modeled cycles rests on these latencies;")
	t.AddNote("the simulator reproduces them from first principles (LRU sets + TLB), not from the same table")
	return []*Table{t}, nil
}
