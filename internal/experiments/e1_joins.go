package experiments

import (
	"context"
	"time"

	"hwstar/internal/bench"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/sched"
	"hwstar/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Hardware-conscious vs oblivious joins (size sweep)",
		Claim: "join algorithms tailored to caches/TLB beat oblivious ones once state exceeds the LLC",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E1a",
		Title: "Radix join ablation: software-managed buffers & pass structure",
		Claim: "partitioning must respect TLB reach; SW buffers recover single-pass fan-out",
		Run:   runE1a,
	})
	register(Experiment{
		ID:    "E1c",
		Title: "Software prefetching (group-structured probes) vs partitioning",
		Claim: "restructuring for memory-level parallelism recovers the shared-table join without partitioning",
		Run:   runE1c,
	})
	register(Experiment{
		ID:    "E1b",
		Title: "Join under probe-side skew (parallel, 16 workers)",
		Claim: "skew turns the partitioned join's strength (partition ownership) into load imbalance",
		Run:   runE1b,
	})
}

func joinInput(cfg workload.JoinConfig) join.Input {
	g := workload.GenerateJoin(cfg)
	return join.Input{BuildKeys: g.BuildKeys, BuildVals: g.BuildVals, ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals}
}

func runE1(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	t := bench.NewTable("E1: serial equi-join, probe = 4x build ("+m.Name+")",
		"build rows", "ht bytes", "npo Mcyc", "radix Mcyc", "sm Mcyc", "radix speedup", "real npo ms", "real radix ms")
	sizes := []int{1 << 12, 1 << 14, 1 << 17, 1 << 20, 1 << 22}
	for _, base := range sizes {
		n := cfg.scaled(base, 1<<10)
		in := joinInput(workload.JoinConfig{Seed: 101, BuildRows: n, ProbeRows: 4 * n})

		start := time.Now()
		npoAcct := hw.NewAccount(m, hw.DefaultContext())
		npoRes, err := join.NPO(in, npoAcct)
		if err != nil {
			return nil, err
		}
		npoMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		radixAcct := hw.NewAccount(m, hw.DefaultContext())
		radixRes, err := join.Radix(in, join.RadixOptions{}, m, radixAcct)
		if err != nil {
			return nil, err
		}
		radixMs := float64(time.Since(start).Microseconds()) / 1000

		smAcct := hw.NewAccount(m, hw.DefaultContext())
		smRes, err := join.SortMerge(in, smAcct)
		if err != nil {
			return nil, err
		}
		if npoRes.Matches != radixRes.Matches || npoRes.Matches != smRes.Matches {
			return nil, errMismatch("E1", npoRes.Matches, radixRes.Matches)
		}
		htBytes := int64(2*n) * 17
		t.AddRow(
			bench.F("%d", n), bench.Bytes(htBytes),
			bench.F("%.1f", npoAcct.TotalCycles()/1e6),
			bench.F("%.1f", radixAcct.TotalCycles()/1e6),
			bench.F("%.1f", smAcct.TotalCycles()/1e6),
			bench.Ratio(npoAcct.TotalCycles()/radixAcct.TotalCycles()),
			bench.F("%.1f", npoMs), bench.F("%.1f", radixMs),
		)
	}
	t.AddNote("radix speedup crosses 1.0 once the hash table falls out of the upper cache levels (L2 %s, LLC %s)",
		bench.Bytes(m.Caches[1].SizeBytes), bench.Bytes(m.LLC().SizeBytes))
	return []*Table{t}, nil
}

func runE1a(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	n := cfg.scaled(1<<21, 1<<12)
	in := joinInput(workload.JoinConfig{Seed: 102, BuildRows: n, ProbeRows: 2 * n})
	t := bench.NewTable("E1a: radix partitioning strategies, build="+bench.F("%d", n)+" ("+m.Name+")",
		"strategy", "bits", "passes", "Mcycles", "vs best")

	type variant struct {
		name   string
		opts   join.RadixOptions
		passes int
	}
	variants := []variant{
		{"multi-pass (TLB-bounded)", join.RadixOptions{TotalBits: 12, MaxBitsPerPass: 6}, 2},
		{"single-pass unbuffered", join.RadixOptions{TotalBits: 12, MaxBitsPerPass: 12}, 1},
		{"single-pass SW buffers", join.RadixOptions{TotalBits: 12, MaxBitsPerPass: 12, SWBuffers: true}, 1},
	}
	costs := make([]float64, len(variants))
	var first join.Result
	for i, v := range variants {
		acct := hw.NewAccount(m, hw.DefaultContext())
		res, err := join.Radix(in, v.opts, m, acct)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = res
		} else if res.Matches != first.Matches {
			return nil, errMismatch("E1a", first.Matches, res.Matches)
		}
		costs[i] = acct.TotalCycles()
	}
	best := costs[0]
	for _, c := range costs {
		if c < best {
			best = c
		}
	}
	for i, v := range variants {
		t.AddRow(v.name, bench.F("%d", v.opts.TotalBits), bench.F("%d", v.passes),
			bench.F("%.1f", costs[i]/1e6), bench.Ratio(costs[i]/best))
	}
	t.AddNote("fan-out 4096 vs %d TLB entries: the unbuffered single pass thrashes the TLB", m.TLBEntries)
	return []*Table{t}, nil
}

func runE1b(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	// The build-side table must exceed the LLC so the verdict is decided by
	// skew-induced imbalance, not by cache residency.
	n := cfg.scaled(1<<21, 1<<12)
	t := bench.NewTable("E1b: parallel join under probe skew, 16 workers ("+m.Name+")",
		"zipf s", "npo makespan Mcyc", "radix makespan Mcyc", "radix imbalance", "winner")
	for _, s := range []float64{0, 1.05, 1.25, 1.5} {
		in := joinInput(workload.JoinConfig{Seed: 103, BuildRows: n, ProbeRows: 4 * n, ZipfS: s})
		sn, err := sched.New(m, sched.Options{Workers: 16, Stealing: true})
		if err != nil {
			return nil, err
		}
		npo, err := join.ParallelNPO(context.Background(), in, sn, 1<<13)
		if err != nil {
			return nil, err
		}
		sr, err := sched.New(m, sched.Options{Workers: 16, Stealing: true})
		if err != nil {
			return nil, err
		}
		radix, err := join.ParallelRadix(context.Background(), in, join.RadixOptions{}, sr, m, 1<<13)
		if err != nil {
			return nil, err
		}
		if npo.Matches != radix.Matches {
			return nil, errMismatch("E1b", npo.Matches, radix.Matches)
		}
		winner := "radix"
		if npo.MakespanCycles < radix.MakespanCycles {
			winner = "npo"
		}
		joinPhase := radix.Phases[len(radix.Phases)-1]
		t.AddRow(bench.F("%.2f", s),
			bench.F("%.1f", npo.MakespanCycles/1e6),
			bench.F("%.1f", radix.MakespanCycles/1e6),
			bench.F("%.2f", joinPhase.Imbalance()),
			winner)
	}
	t.AddNote("rising imbalance under skew erodes the radix join's advantage")
	return []*Table{t}, nil
}

func runE1c(cfg Config) ([]*Table, error) {
	m := hw.Server2S()
	t := bench.NewTable("E1c: NPO vs group-prefetched NPO vs radix, probe = 2x build ("+m.Name+")",
		"build rows", "npo Mcyc", "npo+gp Mcyc", "radix Mcyc", "gp vs npo", "gp vs radix")
	for _, base := range []int{1 << 17, 1 << 20, 1 << 22} {
		n := cfg.scaled(base, 1<<11)
		in := joinInput(workload.JoinConfig{Seed: 104, BuildRows: n, ProbeRows: 2 * n})
		npoA := hw.NewAccount(m, hw.DefaultContext())
		npo, err := join.NPO(in, npoA)
		if err != nil {
			return nil, err
		}
		gpA := hw.NewAccount(m, hw.DefaultContext())
		gp, err := join.NPOPrefetch(in, gpA)
		if err != nil {
			return nil, err
		}
		rxA := hw.NewAccount(m, hw.DefaultContext())
		rx, err := join.Radix(in, join.RadixOptions{}, m, rxA)
		if err != nil {
			return nil, err
		}
		if npo.Matches != gp.Matches || npo.Matches != rx.Matches {
			return nil, errMismatch("E1c", npo.Matches, gp.Matches)
		}
		t.AddRow(bench.F("%d", n),
			bench.F("%.1f", npoA.TotalCycles()/1e6),
			bench.F("%.1f", gpA.TotalCycles()/1e6),
			bench.F("%.1f", rxA.TotalCycles()/1e6),
			bench.Ratio(npoA.TotalCycles()/gpA.TotalCycles()),
			bench.Ratio(rxA.TotalCycles()/gpA.TotalCycles()))
	}
	t.AddNote("group-structured probes overlap misses the naive loop serializes, reaching radix-class cost")
	t.AddNote("without the partitioning passes — but without their cache residency under multi-query pressure")
	return []*Table{t}, nil
}

func errMismatch(id string, a, b int64) error {
	return bench.ErrMismatch(id, a, b)
}
