package energy

import (
	"math"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
)

func computeBound() Job {
	return Job{Name: "compute", ComputeCycles: 2.4e9, MemCycles: 0.1e9, Cores: 4}
}

func memoryBound() Job {
	return Job{Name: "memory", ComputeCycles: 0.2e9, MemCycles: 2.3e9, Cores: 4}
}

func TestJobValidate(t *testing.T) {
	if err := computeBound().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{Name: "empty", Cores: 1},
		{Name: "negative", ComputeCycles: -1, Cores: 1},
		{Name: "nocores", ComputeCycles: 1, Cores: 0},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Fatalf("job %q should be invalid", j.Name)
		}
	}
}

func TestMemoryBoundness(t *testing.T) {
	if mb := memoryBound().MemoryBoundness(); mb < 0.9 {
		t.Fatalf("memory-bound job boundness = %f", mb)
	}
	if cb := computeBound().MemoryBoundness(); cb > 0.1 {
		t.Fatalf("compute-bound job boundness = %f", cb)
	}
	if (Job{}).MemoryBoundness() != 0 {
		t.Fatal("empty job boundness should be 0")
	}
}

func TestPowerCubic(t *testing.T) {
	mo := NewModel(hw.Server2S())
	idle := mo.Power(0, 1)
	if idle != mo.Machine.WattsIdle {
		t.Fatalf("idle power = %f", idle)
	}
	full := mo.Power(4, 1.0)
	half := mo.Power(4, 0.5)
	// Dynamic part at half frequency is 1/8 of full.
	dynFull := full - idle
	dynHalf := half - idle
	if math.Abs(dynHalf-dynFull/8) > 1e-9 {
		t.Fatalf("cubic scaling violated: %f vs %f/8", dynHalf, dynFull)
	}
}

func TestRuntimeScaling(t *testing.T) {
	mo := NewModel(hw.Server2S())
	j := computeBound()
	full := mo.Runtime(j, 1.0)
	half := mo.Runtime(j, 0.5)
	// Compute time doubles; memory time fixed.
	wantHalf := 2*(j.ComputeCycles/(2.4e9)) + j.MemCycles/2.4e9
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Fatalf("runtime at half freq = %f, want %f", half, wantHalf)
	}
	if half <= full {
		t.Fatal("lower frequency must not be faster")
	}
	// A purely memory-bound job barely slows down.
	mj := memoryBound()
	if ratio := mo.Runtime(mj, 0.5) / mo.Runtime(mj, 1.0); ratio > 1.2 {
		t.Fatalf("memory-bound slowdown at half freq = %f, should be small", ratio)
	}
}

func TestRaceToIdleMeetsDeadline(t *testing.T) {
	mo := NewModel(hw.Server2S())
	o, err := mo.RaceToIdle(computeBound(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !o.MetDeadline || o.Frequency != 1.0 {
		t.Fatalf("race-to-idle outcome: %+v", o)
	}
	if o.IdleJoules <= 0 {
		t.Fatal("race-to-idle should spend idle energy")
	}
}

func TestPaceStretchesIntoPeriod(t *testing.T) {
	mo := NewModel(hw.Server2S())
	j := computeBound()
	o, err := mo.PaceToDeadline(j, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !o.MetDeadline {
		t.Fatalf("pace must meet a generous deadline: %+v", o)
	}
	if o.Frequency >= 1.0 {
		t.Fatal("pace should pick a reduced frequency for a loose deadline")
	}
	// Tight deadline forces full speed.
	tight := mo.Runtime(j, 1.0) * 1.001
	o, err = mo.PaceToDeadline(j, tight)
	if err != nil {
		t.Fatal(err)
	}
	if o.Frequency < 0.99 {
		t.Fatalf("tight deadline should run at full speed, got f=%f", o.Frequency)
	}
}

func TestMemoryBoundJobsPreferLowFrequency(t *testing.T) {
	// The classic DVFS result: for memory-bound work, lowering the clock
	// saves energy almost for free, so the optimal frequency is below the
	// maximum; for compute-bound work with idle-heavy machines,
	// race-to-idle is competitive.
	mo := NewModel(hw.Server2S())
	period := 5.0
	mem, err := mo.OptimalFrequency(memoryBound(), period)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Frequency > 0.6 {
		t.Fatalf("memory-bound optimal frequency = %f, expected low", mem.Frequency)
	}
	race, _ := mo.RaceToIdle(memoryBound(), period)
	if mem.Joules >= race.Joules {
		t.Fatalf("optimal (%f J) should beat race-to-idle (%f J) for memory-bound work", mem.Joules, race.Joules)
	}
}

func TestOptimalNeverWorseThanPolicies(t *testing.T) {
	mo := NewModel(hw.Server2S())
	for _, j := range []Job{computeBound(), memoryBound()} {
		period := mo.Runtime(j, mo.FMin) * 1.1
		opt, err := mo.OptimalFrequency(j, period)
		if err != nil {
			t.Fatal(err)
		}
		race, _ := mo.RaceToIdle(j, period)
		pace, _ := mo.PaceToDeadline(j, period)
		if opt.Joules > race.Joules+1e-9 || opt.Joules > pace.Joules+1e-9 {
			t.Fatalf("%s: optimal %f J worse than race %f / pace %f", j.Name, opt.Joules, race.Joules, pace.Joules)
		}
	}
}

func TestImpossibleDeadlineFallsBackToFullSpeed(t *testing.T) {
	mo := NewModel(hw.Server2S())
	o, err := mo.OptimalFrequency(computeBound(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if o.MetDeadline || o.Frequency != mo.FMax {
		t.Fatalf("impossible deadline should report full-speed miss: %+v", o)
	}
}

func TestAtFrequencyErrors(t *testing.T) {
	mo := NewModel(hw.Laptop())
	if _, err := mo.atFrequency(Job{}, 1, 1); err == nil {
		t.Fatal("invalid job should fail")
	}
	if _, err := mo.atFrequency(computeBound(), 0, 1); err == nil {
		t.Fatal("zero frequency should fail")
	}
	if _, err := mo.atFrequency(computeBound(), 1, 0); err == nil {
		t.Fatal("zero period should fail")
	}
	if _, err := mo.RaceToIdle(Job{}, 1); err == nil {
		t.Fatal("invalid job should fail race-to-idle")
	}
	if _, err := mo.PaceToDeadline(Job{}, 1); err == nil {
		t.Fatal("invalid job should fail pace")
	}
	if _, err := mo.OptimalFrequency(Job{}, 1); err == nil {
		t.Fatal("invalid job should fail optimal")
	}
}

func TestJobFromWork(t *testing.T) {
	m := hw.Server2S()
	w := hw.Work{Name: "scan", Tuples: 1000, ComputePerTuple: 5, SeqReadBytes: 1 << 20}
	j := JobFromWork(m, w, hw.DefaultContext(), 2)
	if j.ComputeCycles != 5000 {
		t.Fatalf("compute = %f", j.ComputeCycles)
	}
	if j.MemCycles <= 0 {
		t.Fatal("streaming should appear as memory cycles")
	}
	if j.Cores != 2 || j.Name != "scan" {
		t.Fatalf("job = %+v", j)
	}
}

// Property: energy and runtime are consistent — runtime decreases
// monotonically with frequency, busy power increases monotonically.
func TestMonotonicityProperty(t *testing.T) {
	mo := NewModel(hw.Server2S())
	f := func(compRaw, memRaw uint16) bool {
		j := Job{Name: "p", ComputeCycles: float64(compRaw) * 1e6, MemCycles: float64(memRaw) * 1e6, Cores: 2}
		if j.ComputeCycles+j.MemCycles == 0 {
			return true
		}
		prevRt := math.Inf(1)
		prevPw := 0.0
		for f := mo.FMin; f <= mo.FMax+1e-9; f += 0.05 {
			rt := mo.Runtime(j, f)
			pw := mo.Power(j.Cores, f)
			if rt > prevRt+1e-9 || pw < prevPw-1e-9 {
				return false
			}
			prevRt, prevPw = rt, pw
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
