// Package energy models the power wall the keynote names among the forces
// reshaping hardware: dynamic power grows roughly with the cube of clock
// frequency (P_dyn ∝ C·V²·f with V ∝ f), so the energy-optimal operating
// point of a data-processing job depends on where its time goes. The model
// splits a job into frequency-scaled compute time and frequency-invariant
// memory time, prices power at each DVFS step, and evaluates the two classic
// policies — race-to-idle and pace-to-deadline — so experiment E9 can show
// where each wins.
package energy

import (
	"fmt"
	"math"

	"hwstar/internal/hw"
)

// Job describes one unit of work at the machine's nominal frequency:
// ComputeCycles scale with frequency; MemCycles (stalls on DRAM) do not.
type Job struct {
	Name          string
	ComputeCycles float64
	MemCycles     float64
	// Cores is the number of active cores while the job runs.
	Cores int
}

// Validate reports an error for nonsensical jobs.
func (j Job) Validate() error {
	if j.ComputeCycles < 0 || j.MemCycles < 0 || j.ComputeCycles+j.MemCycles == 0 {
		return fmt.Errorf("energy: job %q must have positive work", j.Name)
	}
	if j.Cores <= 0 {
		return fmt.Errorf("energy: job %q needs at least one core", j.Name)
	}
	return nil
}

// JobFromWork converts a priced hw.Work into a Job: streaming and random
// stalls form the memory part, compute and branches the scalable part.
func JobFromWork(m *hw.Machine, w hw.Work, ctx hw.ExecContext, cores int) Job {
	c := m.Cost(w, ctx)
	return Job{
		Name:          w.Name,
		ComputeCycles: c.Compute + c.Branches,
		MemCycles:     c.Streaming + c.RandomAccess,
		Cores:         cores,
	}
}

// Model prices power on a machine across its DVFS range.
type Model struct {
	Machine *hw.Machine
	// FMin and FMax bound the DVFS range as fractions of nominal frequency.
	FMin, FMax float64
	// SleepWatts is the package power once all work is done and the machine
	// drops into a deep idle state. It is what makes race-to-idle a real
	// strategy: finishing early only pays off if "idle" is much cheaper
	// than "awake".
	SleepWatts float64
}

// NewModel returns a model with the conventional 40%–100% DVFS range and a
// deep-idle state at a quarter of the machine's active-idle power.
func NewModel(m *hw.Machine) Model {
	return Model{Machine: m, FMin: 0.4, FMax: 1.0, SleepWatts: m.WattsIdle / 4}
}

// Power returns watts drawn when `cores` cores run at frequency fraction f:
// idle floor plus per-core dynamic power scaling with f³ (V ∝ f).
func (mo Model) Power(cores int, f float64) float64 {
	dyn := mo.Machine.WattsPerCoreActive * float64(cores) * f * f * f
	return mo.Machine.WattsIdle + dyn
}

// Runtime returns the wall-clock seconds of job j at frequency fraction f:
// compute time stretches as 1/f, memory time is fixed by DRAM, not the core
// clock.
func (mo Model) Runtime(j Job, f float64) float64 {
	nominalHz := mo.Machine.FreqGHz * 1e9
	compute := j.ComputeCycles / (nominalHz * f)
	memory := j.MemCycles / nominalHz
	return compute + memory
}

// Outcome is the result of executing a job under a policy within a period.
type Outcome struct {
	Frequency      float64 // chosen frequency fraction
	RuntimeSeconds float64
	// BusyJoules is energy while running; IdleJoules the energy idling out
	// the remainder of the period; Joules their sum.
	BusyJoules, IdleJoules, Joules float64
	// MetDeadline reports whether the job finished within the period.
	MetDeadline bool
}

// RaceToIdle runs the job at full frequency, then idles until the period
// ends.
func (mo Model) RaceToIdle(j Job, periodSeconds float64) (Outcome, error) {
	return mo.atFrequency(j, mo.FMax, periodSeconds)
}

// PaceToDeadline picks the lowest frequency in the DVFS range that still
// meets the deadline and runs there (stretching work into the period).
func (mo Model) PaceToDeadline(j Job, periodSeconds float64) (Outcome, error) {
	if err := j.Validate(); err != nil {
		return Outcome{}, err
	}
	// The runtime is monotone decreasing in f; binary-search the slowest
	// feasible frequency at 1% resolution.
	f := mo.FMax
	for cand := mo.FMin; cand <= mo.FMax; cand += 0.01 {
		if mo.Runtime(j, cand) <= periodSeconds {
			f = cand
			break
		}
	}
	return mo.atFrequency(j, f, periodSeconds)
}

// OptimalFrequency scans the DVFS range at 1% steps for the frequency
// minimizing total energy over the period (including idle energy) subject to
// meeting the deadline, and returns its outcome.
func (mo Model) OptimalFrequency(j Job, periodSeconds float64) (Outcome, error) {
	if err := j.Validate(); err != nil {
		return Outcome{}, err
	}
	best := Outcome{Joules: math.Inf(1)}
	for f := mo.FMin; f <= mo.FMax+1e-9; f += 0.01 {
		o, err := mo.atFrequency(j, f, periodSeconds)
		if err != nil {
			return Outcome{}, err
		}
		if o.MetDeadline && o.Joules < best.Joules {
			best = o
		}
	}
	if math.IsInf(best.Joules, 1) {
		// Nothing meets the deadline: report full speed.
		return mo.atFrequency(j, mo.FMax, periodSeconds)
	}
	return best, nil
}

// atFrequency executes j at frequency fraction f over the period.
func (mo Model) atFrequency(j Job, f float64, periodSeconds float64) (Outcome, error) {
	if err := j.Validate(); err != nil {
		return Outcome{}, err
	}
	if f <= 0 {
		return Outcome{}, fmt.Errorf("energy: frequency fraction %f must be positive", f)
	}
	if periodSeconds <= 0 {
		return Outcome{}, fmt.Errorf("energy: period %f must be positive", periodSeconds)
	}
	rt := mo.Runtime(j, f)
	busy := mo.Power(j.Cores, f) * math.Min(rt, periodSeconds)
	idleTime := periodSeconds - rt
	var idle float64
	if idleTime > 0 {
		idle = mo.SleepWatts * idleTime
	}
	return Outcome{
		Frequency:      f,
		RuntimeSeconds: rt,
		BusyJoules:     busy,
		IdleJoules:     idle,
		Joules:         busy + idle,
		MetDeadline:    rt <= periodSeconds+1e-12,
	}, nil
}

// MemoryBoundness returns the fraction of job time spent waiting on memory
// at nominal frequency — the knob that decides which DVFS policy wins.
func (j Job) MemoryBoundness() float64 {
	total := j.ComputeCycles + j.MemCycles
	if total == 0 {
		return 0
	}
	return j.MemCycles / total
}
