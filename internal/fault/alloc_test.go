package fault

import (
	"errors"
	"testing"

	"hwstar/internal/errs"
)

func TestAllocErrorWrapsMemoryPressure(t *testing.T) {
	in := New(Config{Seed: 7, AllocFailProb: 1})
	err := in.AllocError("join-build", 2)
	if !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("err = %v, want ErrMemoryPressure", err)
	}
	if got := in.Counts()[ClassAllocFail]; got != 1 {
		t.Fatalf("alloc-fail count = %d, want 1", got)
	}
}

func TestAllocSitesOverrideDefault(t *testing.T) {
	in := New(Config{Seed: 7, AllocFailProb: 1, AllocFailSites: map[string]float64{"agg-table": 0}})
	if err := in.AllocError("agg-table", 0); err != nil {
		t.Fatalf("shielded site fired: %v", err)
	}
	if err := in.AllocError("join-build", 0); err == nil {
		t.Fatal("unshielded site did not fire")
	}
}

func TestAllocFailArmsEnabled(t *testing.T) {
	if in := New(Config{AllocFailProb: 0.5}); !in.Enabled() {
		t.Fatal("AllocFailProb should enable the injector")
	}
	if in := New(Config{AllocFailSites: map[string]float64{"x": 1}}); !in.Enabled() {
		t.Fatal("AllocFailSites should enable the injector")
	}
	if in := New(Config{}); in.Enabled() {
		t.Fatal("zero config should be inert")
	}
}

func TestAllocErrorDeterministicReplay(t *testing.T) {
	run := func() []Event {
		in := New(Config{Seed: 42, AllocFailProb: 0.3})
		for i := 0; i < 100; i++ {
			in.AllocError("site", i%4)
		}
		return in.Log()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired at p=0.3 over 100 draws")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAllocErrorHonoursMaxFaults(t *testing.T) {
	in := New(Config{Seed: 1, AllocFailProb: 1, MaxFaults: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if in.AllocError("site", 0) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (budget)", fired)
	}
}
