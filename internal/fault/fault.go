// Package fault is a seeded, deterministic fault-injection substrate for the
// hwstar execution stack. Real hardware fails partially — cores stall,
// machines run hot and slow down, tasks die — and a parallel design is only
// trustworthy when exactly those modes are exercised deliberately. An
// Injector is armed on a scheduler run (sched.Options.Inject) or a server
// (serve.Options.Faults) or a store (store.Options.Faults) or a shard
// router (shard.Options.Faults) and produces nine fault classes at
// configurable, reproducible probabilities:
//
//   - panics: a scheduled task panics before its body runs;
//   - stragglers: a worker's cycle charges are multiplied by a skew factor,
//     modelling a thermally throttled or contended core;
//   - transient errors: a task fails with errs.ErrTransient, retryable;
//   - core loss: a worker disappears at the start of a run;
//   - allocation failures: a memory-reservation charge fails with
//     errs.ErrMemoryPressure before any bytes are accounted;
//   - crashes: the process "dies" at a named durability step, aborting a
//     checkpoint with exactly the partial on-disk state a SIGKILL would
//     leave;
//   - torn writes: only a prefix of a payload reaches disk while the write
//     reports success, caught by checksums at read time;
//   - checksum flips: a silent single-byte corruption after the checksum
//     was computed, modelling bit rot;
//   - node loss: a whole node (one shard's serve.Server) disappears,
//     drawn per node per chaos tick by the shard router.
//
// Injected panics and transient errors fire at the morsel boundary, BEFORE
// the task body executes, so a re-dispatched or retried morsel never
// double-applies partial effects. Every fired fault is appended to a log the
// tests assert against: a chaos test is only meaningful if it can prove each
// fault class actually fired.
//
// All draws come from one seeded source, so a single-threaded consumer (the
// scheduler's virtual-time loop, a sequential experiment driver) replays the
// exact same fault sequence from the same seed.
package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"hwstar/internal/errs"
)

// Class names a fault category in the log and in count snapshots.
type Class string

// Fault classes.
const (
	ClassPanic        Class = "panic"
	ClassStraggler    Class = "straggler"
	ClassTransient    Class = "transient"
	ClassCoreLoss     Class = "core-loss"
	ClassAllocFail    Class = "alloc-fail"
	ClassCrash        Class = "crash"
	ClassTornWrite    Class = "torn-write"
	ClassChecksumFlip Class = "checksum-flip"
	// ClassNodeLoss is core loss lifted one level up the hierarchy: a whole
	// shard (every core of one node's serve.Server) disappears at once. The
	// shard router draws it per node per chaos tick and drives replica
	// failover + re-replication in response.
	ClassNodeLoss Class = "node-loss"
)

// Config arms an Injector. Probabilities are in [0,1]; zero disables the
// class. Panic and transient probabilities are drawn once per task
// execution; straggler and core-loss probabilities once per worker per
// scheduler run.
type Config struct {
	// Seed makes the fault sequence reproducible.
	Seed int64

	// PanicProb is the per-task-execution probability of an injected panic.
	PanicProb float64
	// TransientProb is the per-task-execution probability of a retryable
	// transient failure.
	TransientProb float64
	// StragglerProb is the per-worker probability of being a straggler for
	// one run; StragglerSkew is the cycle multiplier applied to a straggling
	// worker's charges (values <= 1 default to 4).
	StragglerProb float64
	StragglerSkew float64
	// CoreLossProb is the per-worker probability of disappearing at run
	// start. The scheduler never loses its last surviving worker.
	CoreLossProb float64
	// NodeLossProb is the per-node probability, drawn once per chaos tick by
	// the shard router, that the whole node (its serve.Server shard) dies.
	// The router's chaos tick never kills the cluster's last live node;
	// tests stage total loss explicitly via LostNodes or KillNode.
	NodeLossProb float64

	// StragglerWorkers, LostCores and LostNodes arm specific workers/nodes
	// deterministically, in addition to the probabilistic draws — tests use
	// these to stage an exact failure.
	StragglerWorkers []int
	LostCores        []int
	LostNodes        []int

	// AllocFailProb is the per-allocation-request probability that a memory
	// reservation charge fails with errs.ErrMemoryPressure, modelling a
	// governor denial (or, on real hardware, an mmap/brk failure) without
	// the budget actually being exhausted. Charges fail BEFORE any bytes are
	// accounted, so a retried allocation never double-charges.
	AllocFailProb float64

	// CrashProb is the per-durability-step probability that the process
	// "dies" at that step: the store aborts the checkpoint immediately,
	// leaving exactly the partial on-disk state a SIGKILL at that instant
	// would leave. Recovery must cope with whatever is on disk.
	CrashProb float64
	// TornWriteProb is the per-write probability that only a prefix of the
	// payload reaches disk while the write still reports success, modelling
	// a power cut mid-sector. The checksum catches it at read time.
	TornWriteProb float64
	// ChecksumFlipProb is the per-file probability of a silent single-byte
	// corruption after the checksum was computed, modelling bit rot or a
	// misdirected write. Only checksum validation at read time can catch it.
	ChecksumFlipProb float64

	// PanicSites, TransientSites and AllocFailSites override the class
	// probability for specific sites (a site is the morsel family name, e.g.
	// "clock-scan" or "agg-part"; allocation sites are charge labels like
	// "join-build" or "agg-table"). An entry of 0 shields that site entirely.
	PanicSites     map[string]float64
	TransientSites map[string]float64
	AllocFailSites map[string]float64
	// CrashSites, TornWriteSites and ChecksumFlipSites override the
	// durability-fault probabilities for specific sites (sites are store
	// step labels like "segment-payload", "manifest-write" or
	// "current-rename"). An entry of 0 shields that site entirely.
	CrashSites        map[string]float64
	TornWriteSites    map[string]float64
	ChecksumFlipSites map[string]float64

	// MaxFaults, when positive, caps the total number of injected faults:
	// after the budget is spent the injector goes quiet. Tests use it to
	// stage "fails twice, then recovers" sequences.
	MaxFaults int
}

// Event is one fired fault, in firing order.
type Event struct {
	// Seq is the 0-based position in the fault log.
	Seq int
	// Class is the fault category; Site the morsel family it hit ("" for
	// worker-level faults); Worker the simulated core involved.
	Class  Class
	Site   string
	Worker int
}

// Injector produces faults from a seeded source and logs every firing. All
// methods are safe for concurrent use; a nil *Injector is valid and injects
// nothing.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	log    []Event
	counts map[Class]int
}

// New returns an Injector armed with cfg.
func New(cfg Config) *Injector {
	if cfg.StragglerSkew <= 1 {
		cfg.StragglerSkew = 4
	}
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[Class]int),
	}
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	c := in.cfg
	return c.PanicProb > 0 || c.TransientProb > 0 || c.StragglerProb > 0 ||
		c.CoreLossProb > 0 || c.NodeLossProb > 0 || c.AllocFailProb > 0 ||
		c.CrashProb > 0 || c.TornWriteProb > 0 || c.ChecksumFlipProb > 0 ||
		len(c.StragglerWorkers) > 0 || len(c.LostCores) > 0 || len(c.LostNodes) > 0 ||
		len(c.AllocFailSites) > 0 ||
		len(c.CrashSites) > 0 || len(c.TornWriteSites) > 0 || len(c.ChecksumFlipSites) > 0
}

// fire draws one fault with the given probability, honouring the fault
// budget, and logs it when it fires. Callers hold no lock.
func (in *Injector) fire(class Class, prob float64, site string, worker int) bool {
	if prob <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.MaxFaults > 0 && len(in.log) >= in.cfg.MaxFaults {
		return false
	}
	if prob < 1 && in.rng.Float64() >= prob {
		return false
	}
	in.record(class, site, worker)
	return true
}

// record appends one event. Callers hold in.mu.
func (in *Injector) record(class Class, site string, worker int) {
	in.log = append(in.log, Event{Seq: len(in.log), Class: class, Site: site, Worker: worker})
	in.counts[class]++
}

func siteProb(overrides map[string]float64, site string, def float64) float64 {
	if p, ok := overrides[site]; ok {
		return p
	}
	return def
}

// ShouldPanic reports whether the task executing at site on the given worker
// must panic. The scheduler calls it before the task body, so the panic has
// no partial effects.
func (in *Injector) ShouldPanic(site string, worker int) bool {
	if in == nil {
		return false
	}
	return in.fire(ClassPanic, siteProb(in.cfg.PanicSites, site, in.cfg.PanicProb), site, worker)
}

// TaskError returns an injected transient failure for the task at site on
// the given worker, or nil. The error wraps errs.ErrTransient.
func (in *Injector) TaskError(site string, worker int) error {
	if in == nil {
		return nil
	}
	if !in.fire(ClassTransient, siteProb(in.cfg.TransientSites, site, in.cfg.TransientProb), site, worker) {
		return nil
	}
	return fmt.Errorf("fault: injected transient at %s on worker %d: %w", site, worker, errs.ErrTransient)
}

// AllocError returns an injected allocation failure for the reservation
// charge at site on the given worker, or nil. The error wraps
// errs.ErrMemoryPressure; it fires before any bytes are accounted, so the
// caller's budget is untouched and a retry is safe.
func (in *Injector) AllocError(site string, worker int) error {
	if in == nil {
		return nil
	}
	if !in.fire(ClassAllocFail, siteProb(in.cfg.AllocFailSites, site, in.cfg.AllocFailProb), site, worker) {
		return nil
	}
	return fmt.Errorf("fault: injected alloc failure at %s on worker %d: %w", site, worker, errs.ErrMemoryPressure)
}

// ShouldCrash reports whether the process "dies" at the durability step
// named site. The store aborts the checkpoint on the spot, leaving the same
// partial on-disk state a SIGKILL at that instant would leave.
func (in *Injector) ShouldCrash(site string) bool {
	if in == nil {
		return false
	}
	return in.fire(ClassCrash, siteProb(in.cfg.CrashSites, site, in.cfg.CrashProb), site, -1)
}

// TornWrite reports whether the write at site is torn: only a prefix of the
// payload reaches disk while the write still reports success.
func (in *Injector) TornWrite(site string) bool {
	if in == nil {
		return false
	}
	return in.fire(ClassTornWrite, siteProb(in.cfg.TornWriteSites, site, in.cfg.TornWriteProb), site, -1)
}

// FlipChecksum reports whether the file written at site suffers a silent
// single-byte corruption after its checksum was computed.
func (in *Injector) FlipChecksum(site string) bool {
	if in == nil {
		return false
	}
	return in.fire(ClassChecksumFlip, siteProb(in.cfg.ChecksumFlipSites, site, in.cfg.ChecksumFlipProb), site, -1)
}

// WorkerSkew returns the cycle multiplier for the given worker in one run:
// the configured skew when the worker straggles, 1 otherwise.
func (in *Injector) WorkerSkew(worker int) float64 {
	if in == nil {
		return 1
	}
	for _, id := range in.cfg.StragglerWorkers {
		if id == worker {
			in.mu.Lock()
			in.record(ClassStraggler, "", worker)
			in.mu.Unlock()
			return in.cfg.StragglerSkew
		}
	}
	if in.fire(ClassStraggler, in.cfg.StragglerProb, "", worker) {
		return in.cfg.StragglerSkew
	}
	return 1
}

// LoseCore reports whether the given worker disappears for one run.
func (in *Injector) LoseCore(worker int) bool {
	if in == nil {
		return false
	}
	for _, id := range in.cfg.LostCores {
		if id == worker {
			in.mu.Lock()
			in.record(ClassCoreLoss, "", worker)
			in.mu.Unlock()
			return true
		}
	}
	return in.fire(ClassCoreLoss, in.cfg.CoreLossProb, "", worker)
}

// LoseNode reports whether the given node's whole shard disappears this
// chaos tick. Deterministically-armed nodes (LostNodes) fire once on first
// draw, mirroring LostCores; otherwise NodeLossProb decides. The Worker
// field of the logged event carries the node index.
func (in *Injector) LoseNode(node int) bool {
	if in == nil {
		return false
	}
	for _, id := range in.cfg.LostNodes {
		if id == node {
			in.mu.Lock()
			in.record(ClassNodeLoss, "", node)
			in.mu.Unlock()
			return true
		}
	}
	return in.fire(ClassNodeLoss, in.cfg.NodeLossProb, "", node)
}

// Log returns a copy of the fault log in firing order.
func (in *Injector) Log() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// Counts returns the number of fired faults per class.
func (in *Injector) Counts() map[Class]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Class]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// CountsInt64 is Counts keyed by string, for metric snapshots.
func (in *Injector) CountsInt64() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[string(k)] = int64(v)
	}
	return out
}

// Reset clears the log and re-seeds the source, so the same injector can
// replay its sequence.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.log = nil
	in.counts = make(map[Class]int)
	in.rng = rand.New(rand.NewSource(in.cfg.Seed))
}
