package fault

import (
	"errors"
	"reflect"
	"testing"

	"hwstar/internal/errs"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if in.ShouldPanic("scan", 0) {
		t.Fatal("nil injector panicked")
	}
	if err := in.TaskError("scan", 0); err != nil {
		t.Fatalf("nil injector errored: %v", err)
	}
	if k := in.WorkerSkew(0); k != 1 {
		t.Fatalf("nil injector skew = %v", k)
	}
	if in.LoseCore(0) {
		t.Fatal("nil injector lost a core")
	}
	if in.Log() != nil || in.Counts() != nil || in.CountsInt64() != nil {
		t.Fatal("nil injector has state")
	}
	in.Reset() // must not panic
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 42, PanicProb: 0.1, TransientProb: 0.1, StragglerProb: 0.2, CoreLossProb: 0.05}
	draw := func(in *Injector) []Event {
		for w := 0; w < 8; w++ {
			in.WorkerSkew(w)
			in.LoseCore(w)
		}
		for i := 0; i < 200; i++ {
			in.ShouldPanic("scan", i%8)
			in.TaskError("agg", i%8)
		}
		return in.Log()
	}
	a := draw(New(cfg))
	b := draw(New(cfg))
	if len(a) == 0 {
		t.Fatal("no faults fired at these probabilities")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different logs:\n%v\n%v", a, b)
	}
	in := New(cfg)
	first := draw(in)
	in.Reset()
	if got := in.Log(); len(got) != 0 {
		t.Fatalf("log survives Reset: %v", got)
	}
	if again := draw(in); !reflect.DeepEqual(first, again) {
		t.Fatal("Reset does not replay the sequence")
	}
}

func TestEventLogOrder(t *testing.T) {
	in := New(Config{Seed: 1, PanicProb: 1})
	in.ShouldPanic("a", 3)
	in.ShouldPanic("b", 4)
	log := in.Log()
	if len(log) != 2 {
		t.Fatalf("log = %v", log)
	}
	want := []Event{{Seq: 0, Class: ClassPanic, Site: "a", Worker: 3}, {Seq: 1, Class: ClassPanic, Site: "b", Worker: 4}}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	if c := in.Counts(); c[ClassPanic] != 2 {
		t.Fatalf("counts = %v", c)
	}
	if c := in.CountsInt64(); c["panic"] != 2 {
		t.Fatalf("counts64 = %v", c)
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	in := New(Config{Seed: 1, TransientProb: 1, MaxFaults: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if err := in.TaskError("scan", 0); err != nil {
			if !errors.Is(err, errs.ErrTransient) {
				t.Fatalf("wrong error type: %v", err)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("budget of 2 fired %d faults", fired)
	}
}

func TestSiteOverrides(t *testing.T) {
	in := New(Config{
		Seed:           1,
		PanicProb:      1,
		PanicSites:     map[string]float64{"shielded": 0},
		TransientSites: map[string]float64{"fragile": 1},
	})
	if in.ShouldPanic("shielded", 0) {
		t.Fatal("shielded site panicked")
	}
	if !in.ShouldPanic("anything-else", 0) {
		t.Fatal("default panic prob ignored")
	}
	if err := in.TaskError("fragile", 0); err == nil {
		t.Fatal("fragile site did not fail")
	}
	if err := in.TaskError("other", 0); err != nil {
		t.Fatalf("zero default transient prob fired: %v", err)
	}
}

func TestExplicitWorkerLists(t *testing.T) {
	in := New(Config{Seed: 1, StragglerWorkers: []int{2}, StragglerSkew: 6, LostCores: []int{5}})
	if !in.Enabled() {
		t.Fatal("explicit lists should enable the injector")
	}
	if k := in.WorkerSkew(2); k != 6 {
		t.Fatalf("worker 2 skew = %v", k)
	}
	if k := in.WorkerSkew(3); k != 1 {
		t.Fatalf("worker 3 skew = %v", k)
	}
	if !in.LoseCore(5) {
		t.Fatal("worker 5 not lost")
	}
	if in.LoseCore(6) {
		t.Fatal("worker 6 lost")
	}
	c := in.Counts()
	if c[ClassStraggler] != 1 || c[ClassCoreLoss] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestNodeLoss(t *testing.T) {
	in := New(Config{Seed: 1, LostNodes: []int{1}})
	if !in.Enabled() {
		t.Fatal("LostNodes should enable the injector")
	}
	if !in.LoseNode(1) {
		t.Fatal("node 1 not lost")
	}
	if in.LoseNode(0) {
		t.Fatal("node 0 lost with zero probability")
	}
	if c := in.Counts(); c[ClassNodeLoss] != 1 {
		t.Fatalf("counts = %v", c)
	}

	// Probabilistic draws replay deterministically from the seed.
	a := New(Config{Seed: 42, NodeLossProb: 0.5})
	b := New(Config{Seed: 42, NodeLossProb: 0.5})
	for node := 0; node < 64; node++ {
		if a.LoseNode(node) != b.LoseNode(node) {
			t.Fatalf("node-loss draw diverged at node %d", node)
		}
	}
	if len(a.Log()) == 0 {
		t.Fatal("expected some node losses at p=0.5 over 64 draws")
	}
	for _, ev := range a.Log() {
		if ev.Class != ClassNodeLoss {
			t.Fatalf("unexpected class %s", ev.Class)
		}
	}
}

func TestSkewDefault(t *testing.T) {
	in := New(Config{Seed: 1, StragglerWorkers: []int{0}})
	if k := in.WorkerSkew(0); k != 4 {
		t.Fatalf("default skew = %v, want 4", k)
	}
}
