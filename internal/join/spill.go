package join

import (
	"context"
	"fmt"
	"strconv"

	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/sched"
	"hwstar/internal/trace"
)

// hashTableBytes returns the footprint newHashTable(n) will allocate: a
// power-of-two capacity at 50% max load, 17 bytes per slot. Operators charge
// this against their memory reservation BEFORE building, so a denial arrives
// while degrading (spilling) is still possible.
func hashTableBytes(n int) int64 {
	c := 16
	for c < 2*n {
		c <<= 1
	}
	return int64(c) * (8 + 8 + 1)
}

// graceHashJoin is the degraded execution ParallelNPO falls back to when its
// hash table does not fit the query's memory reservation: both relations are
// hash-partitioned into K fragments written to the simulated spill tier
// (priced by hw.Machine.SpillBandwidth, like NUMA-remote traffic is priced by
// the interconnect), then each fragment pair is read back and joined with a
// small table that does fit. The real join still executes in memory — the
// spill is a cost-model event, consistent with how every hwstar operator
// models hardware it cannot touch from portable Go. denial is the original
// over-budget error, returned verbatim when even spilling cannot fit.
func graceHashJoin(ctx context.Context, in Input, s *sched.Scheduler, morsel int, tableBytes int64, denial error) (ParallelResult, error) {
	var out ParallelResult
	resv := s.Mem()
	K := mem.SpillFanout(tableBytes, resv.Available(), s.Workers())
	if K == 0 {
		return out, denial
	}
	out.Spilled = true
	mask := uint64(K - 1)
	trace.FromContext(ctx).Annotate("join spilled: table %d B over budget, %d-way grace-hash", tableBytes, K)

	type part struct{ bk, bv, pk, pv []int64 }
	parts := make([]part, K)
	// Partition phase: both relations stream through the workers and out to
	// the spill tier. The scheduler's virtual-time loop executes morsels
	// sequentially, so scattering into shared partition buffers is safe (the
	// same discipline the NPO build phase relies on).
	partTasks := func(keys, vals []int64, build bool, label string) []sched.Task {
		return sched.Morsels(len(keys), morsel, label, func(start, end int, w *sched.Worker) {
			for i := start; i < end; i++ {
				p := &parts[hashKey(keys[i])&mask]
				if build {
					p.bk = append(p.bk, keys[i])
					p.bv = append(p.bv, vals[i])
				} else {
					p.pk = append(p.pk, keys[i])
					p.pv = append(p.pv, vals[i])
				}
			}
			n := int64(end - start)
			w.Charge(hw.Work{
				Name: label, Tuples: n, ComputePerTuple: 4,
				SeqReadBytes:    n * tupleBytes,
				SpillWriteBytes: n * tupleBytes,
			})
		})
	}
	phase, err := runPhaseTraced(ctx, s, "grace-part-build", partTasks(in.BuildKeys, in.BuildVals, true, "grace-part-build"))
	out.addPhase(phase)
	if err != nil {
		return out, err
	}
	phase, err = runPhaseTraced(ctx, s, "grace-part-probe", partTasks(in.ProbeKeys, in.ProbeVals, false, "grace-part-probe"))
	out.addPhase(phase)
	if err != nil {
		return out, err
	}

	spillBytes := int64(len(in.BuildKeys)+len(in.ProbeKeys)) * tupleBytes
	out.SpillBytes = spillBytes
	resv.NoteSpill(spillBytes)

	// Join phase: one task per partition reads its fragments back from the
	// spill tier and joins with a budget-charged small table. Charge failures
	// (budget exhausted mid-run, injected allocation faults) cannot surface
	// through a sched.Task, so they are collected and raised after the phase.
	partials := make([]Result, K)
	chargeErrs := make([]error, K)
	tasks := make([]sched.Task, 0, K)
	for p := 0; p < K; p++ {
		p := p
		tasks = append(tasks, sched.Task{
			Name:   "grace-join-p" + strconv.Itoa(p),
			Site:   "grace-join",
			Socket: -1,
			Run: func(w *sched.Worker) {
				pt := &parts[p]
				if len(pt.bk) == 0 {
					return
				}
				htBytes := hashTableBytes(len(pt.bk))
				if err := w.Mem().Charge("grace-join", w.ID, htBytes); err != nil {
					chargeErrs[p] = err
					return
				}
				defer w.Mem().Uncharge(htBytes)
				ht := newHashTable(len(pt.bk))
				for i, k := range pt.bk {
					ht.Insert(k, pt.bv[i])
				}
				part := &partials[p]
				for i, k := range pt.pk {
					pv := pt.pv[i]
					ht.ProbeEach(k, func(bv int64) { part.add(bv, pv) })
				}
				rows := int64(len(pt.bk) + len(pt.pk))
				w.Charge(hw.Work{
					Name: "grace-join", Tuples: rows, ComputePerTuple: 6,
					SpillReadBytes: rows * tupleBytes,
					RandomReads:    rows, RandomWS: ht.Bytes(),
				})
			},
		})
	}
	phase, err = runPhaseTraced(ctx, s, "grace-join", tasks)
	out.addPhase(phase)
	if err != nil {
		return out, err
	}
	if err := firstChargeErr(chargeErrs); err != nil {
		return out, fmt.Errorf("join: grace-hash partition table denied: %w", err)
	}

	for _, p := range partials {
		out.Matches += p.Matches
		out.Checksum += p.Checksum
	}
	out.SimCycles = out.MakespanCycles
	return out, nil
}

// firstChargeErr returns the first per-partition charge failure, if any.
func firstChargeErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
