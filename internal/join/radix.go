package join

import (
	"strconv"

	"hwstar/internal/hw"
)

// RadixOptions tunes the radix-partitioned hash join. The zero value asks
// for automatic tuning against the machine profile (partitions sized to fit
// the L2 cache, pass structure bounded by TLB reach).
type RadixOptions struct {
	// TotalBits is the number of radix bits (fan-out = 2^TotalBits). 0
	// means: choose so each build partition fits in half the L2 cache.
	TotalBits int
	// MaxBitsPerPass bounds the fan-out of a single partitioning pass; the
	// classic rule caps it near log2(TLB entries) so every output cursor
	// stays TLB-resident. 0 means: derive from the machine profile.
	MaxBitsPerPass int
	// SWBuffers enables software-managed buffers: partition outputs are
	// staged through cache-line-sized buffers, so a single pass can use a
	// large fan-out without TLB thrashing (at a small copy cost).
	SWBuffers bool
}

// resolve fills in automatic parameters from the machine profile. m may be
// nil, in which case conservative defaults are used.
func (o RadixOptions) resolve(m *hw.Machine, buildRows int) RadixOptions {
	if o.MaxBitsPerPass <= 0 {
		entries := 64
		if m != nil {
			entries = m.TLBEntries
		}
		o.MaxBitsPerPass = log2floor(entries)
		if o.MaxBitsPerPass < 1 {
			o.MaxBitsPerPass = 1
		}
	}
	if o.TotalBits <= 0 {
		target := int64(128 << 10) // half of a typical 256 KiB L2
		if m != nil && len(m.Caches) >= 2 {
			target = m.Caches[1].SizeBytes / 2
		}
		// Size by the per-partition hash-table footprint (~2 slots of 17
		// bytes per tuple at 50% fill), not by raw tuple bytes: the table is
		// what the probe phase's random accesses must keep cache-resident.
		const htBytesPerTuple = 2 * (8 + 8 + 1)
		bits := 0
		for int64(buildRows)*htBytesPerTuple>>uint(bits) > target {
			bits++
		}
		o.TotalBits = bits
	}
	if o.TotalBits > 24 {
		o.TotalBits = 24
	}
	return o
}

func log2floor(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// partitioned holds one relation scattered into 2^bits partitions.
type partitioned struct {
	keys, vals []int64
	// offsets[p] is the start of partition p in keys/vals; offsets has
	// fanout+1 entries.
	offsets []int
}

func (p *partitioned) partition(i int) (keys, vals []int64) {
	return p.keys[p.offsets[i]:p.offsets[i+1]], p.vals[p.offsets[i]:p.offsets[i+1]]
}

// radixPartition scatters (keys, vals) into 2^bits partitions by hash bits
// starting at bit `shift`. It is the real data movement: histogram, prefix
// sum, scatter.
func radixPartition(keys, vals []int64, bits, shift int) partitioned {
	fanout := 1 << bits
	mask := uint64(fanout - 1)
	hist := make([]int, fanout)
	for _, k := range keys {
		hist[(hashKey(k)>>shift)&mask]++
	}
	offsets := make([]int, fanout+1)
	for i := 0; i < fanout; i++ {
		offsets[i+1] = offsets[i] + hist[i]
	}
	out := partitioned{
		keys:    make([]int64, len(keys)),
		vals:    make([]int64, len(vals)),
		offsets: offsets,
	}
	cursor := make([]int, fanout)
	copy(cursor, offsets[:fanout])
	for i, k := range keys {
		p := (hashKey(k) >> shift) & mask
		out.keys[cursor[p]] = k
		out.vals[cursor[p]] = vals[i]
		cursor[p]++
	}
	return out
}

// partitionPassWork describes one partitioning pass of n tuples with the
// given fan-out to the machine model. Without software-managed buffers a
// fan-out beyond the TLB reach turns every scattered write into a TLB-missing
// random access; with them (or with a small fan-out) the pass streams.
func partitionPassWork(name string, n int64, fanout int, m *hw.Machine, sw bool) hw.Work {
	w := hw.Work{
		Name:            name,
		Tuples:          n,
		ComputePerTuple: 4, // hash + histogram/cursor arithmetic
		SeqReadBytes:    n * tupleBytes,
	}
	tlbOK := m == nil || fanout <= m.TLBEntries
	switch {
	case tlbOK:
		w.SeqWriteBytes = n * tupleBytes
	case sw:
		// Buffered scatter: copy into the line-sized buffer (extra compute),
		// flush full lines sequentially.
		w.SeqWriteBytes = 2 * n * tupleBytes
		w.ComputePerTuple += 2
	default:
		// Unbuffered wide scatter: every write lands on a different page.
		w.RandomReads = n
		w.RandomWS = n * tupleBytes
	}
	return w
}

// Radix executes the radix-partitioned hash join: both relations are
// partitioned by key hash until each build partition fits in cache, then
// partitions are joined pairwise with cache-resident hash tables. This is
// the "hardware-conscious" contender: it spends extra sequential passes to
// convert DRAM-latency random accesses into cache-resident ones.
//
// machine tunes partitioning (and is used for cost accounting via acct);
// pass nil for defaults without accounting.
func Radix(in Input, opts RadixOptions, machine *hw.Machine, acct *hw.Account) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if len(in.BuildKeys) == 0 {
		return Result{}, nil
	}
	opts = opts.resolve(machine, len(in.BuildKeys))

	// Plan the pass structure.
	passes := planPasses(opts)

	var res Result
	build := partitioned{keys: in.BuildKeys, vals: in.BuildVals, offsets: []int{0, len(in.BuildKeys)}}
	probe := partitioned{keys: in.ProbeKeys, vals: in.ProbeVals, offsets: []int{0, len(in.ProbeKeys)}}

	// Execute passes over each current partition (recursively refining).
	shift := 0
	for pi, bits := range passes {
		build = repartition(build, bits, shift)
		probe = repartition(probe, bits, shift)
		if acct != nil {
			fanout := 1 << bits
			acct.Charge(partitionPassWork("radix-pass"+strconv.Itoa(pi+1)+"-build",
				int64(len(build.keys)), fanout, machine, opts.SWBuffers))
			acct.Charge(partitionPassWork("radix-pass"+strconv.Itoa(pi+1)+"-probe",
				int64(len(probe.keys)), fanout, machine, opts.SWBuffers))
		}
		shift += bits
	}

	// Join partition pairs with cache-resident tables.
	nparts := len(build.offsets) - 1
	var maxPartBytes int64
	for p := 0; p < nparts; p++ {
		bk, bv := build.partition(p)
		pk, pv := probe.partition(p)
		if len(bk) == 0 || len(pk) == 0 {
			continue
		}
		ht := newHashTable(len(bk))
		for i, k := range bk {
			ht.Insert(k, bv[i])
		}
		for i, k := range pk {
			val := pv[i]
			ht.ProbeEach(k, func(bval int64) { res.add(bval, val) })
		}
		if ht.Bytes() > maxPartBytes {
			maxPartBytes = ht.Bytes()
		}
	}
	if acct != nil {
		// All per-partition tables are (by construction) small; their
		// random accesses hit the cache level that fits the largest one.
		acct.Charge(hw.Work{
			Name:            "radix-join-build",
			Tuples:          int64(len(build.keys)),
			ComputePerTuple: 6,
			SeqReadBytes:    int64(len(build.keys)) * tupleBytes,
			RandomReads:     int64(len(build.keys)),
			RandomWS:        maxPartBytes,
		})
		acct.Charge(hw.Work{
			Name:            "radix-join-probe",
			Tuples:          int64(len(probe.keys)),
			ComputePerTuple: 6,
			SeqReadBytes:    int64(len(probe.keys)) * tupleBytes,
			RandomReads:     int64(len(probe.keys)),
			RandomWS:        maxPartBytes,
		})
		res.SimCycles = acct.TotalCycles()
	}
	return res, nil
}

// planPasses splits TotalBits into per-pass bit counts. SWBuffers permit the
// whole fan-out in one pass; otherwise each pass is capped by
// MaxBitsPerPass.
func planPasses(opts RadixOptions) []int {
	if opts.TotalBits == 0 {
		return nil
	}
	if opts.SWBuffers {
		return []int{opts.TotalBits}
	}
	var passes []int
	left := opts.TotalBits
	for left > 0 {
		b := opts.MaxBitsPerPass
		if b > left {
			b = left
		}
		passes = append(passes, b)
		left -= b
	}
	return passes
}

// repartition applies one partitioning pass to every existing partition,
// refining the partition structure by `bits` more bits at `shift`.
func repartition(p partitioned, bits, shift int) partitioned {
	fanoutOld := len(p.offsets) - 1
	fanoutNew := fanoutOld << bits
	out := partitioned{
		keys:    make([]int64, len(p.keys)),
		vals:    make([]int64, len(p.vals)),
		offsets: make([]int, fanoutNew+1),
	}
	// First pass: histogram per refined partition.
	mask := uint64((1 << bits) - 1)
	hist := make([]int, fanoutNew)
	for old := 0; old < fanoutOld; old++ {
		keys, _ := p.partition(old)
		baseNew := old << bits
		for _, k := range keys {
			hist[baseNew+int((hashKey(k)>>shift)&mask)]++
		}
	}
	for i := 0; i < fanoutNew; i++ {
		out.offsets[i+1] = out.offsets[i] + hist[i]
	}
	cursor := make([]int, fanoutNew)
	copy(cursor, out.offsets[:fanoutNew])
	for old := 0; old < fanoutOld; old++ {
		keys, vals := p.partition(old)
		baseNew := old << bits
		for i, k := range keys {
			dst := baseNew + int((hashKey(k)>>shift)&mask)
			out.keys[cursor[dst]] = k
			out.vals[cursor[dst]] = vals[i]
			cursor[dst]++
		}
	}
	return out
}
