package join

// hashTable is an open-addressing (linear-probing) hash table specialized
// for int64 keys with int64 payloads. Duplicate keys are allowed; ProbeEach
// visits every matching entry. Slots are 16 bytes, the table is sized to a
// power of two at ~50% fill, and probing is branch-light — the same design
// the in-memory join literature uses for both the oblivious and the
// partitioned variants (the difference between them is *where* the table
// lives in the hierarchy, not its structure).
type hashTable struct {
	keys []int64
	vals []int64
	used []bool
	mask uint64
	size int
}

// newHashTable returns a table sized for n entries at 50% max load.
func newHashTable(n int) *hashTable {
	cap := 16
	for cap < 2*n {
		cap <<= 1
	}
	return &hashTable{
		keys: make([]int64, cap),
		vals: make([]int64, cap),
		used: make([]bool, cap),
		mask: uint64(cap - 1),
	}
}

// Insert adds (key, val); duplicates are stored as separate entries.
func (t *hashTable) Insert(key, val int64) {
	slot := hashKey(key) & t.mask
	for t.used[slot] {
		slot = (slot + 1) & t.mask
	}
	t.keys[slot] = key
	t.vals[slot] = val
	t.used[slot] = true
	t.size++
}

// ProbeEach calls fn with the payload of every entry matching key.
func (t *hashTable) ProbeEach(key int64, fn func(val int64)) {
	slot := hashKey(key) & t.mask
	for t.used[slot] {
		if t.keys[slot] == key {
			fn(t.vals[slot])
		}
		slot = (slot + 1) & t.mask
	}
}

// Len returns the number of stored entries.
func (t *hashTable) Len() int { return t.size }

// Bytes returns the table's memory footprint (the working set a probe walks
// through): key + value + used flag per slot.
func (t *hashTable) Bytes() int64 { return int64(len(t.keys)) * (8 + 8 + 1) }
