package join

import "hwstar/internal/hw"

// Analytic cost estimation: the same Work descriptions the algorithms charge
// when they run, built from statistics alone. This is what a
// hardware-conscious optimizer calls at plan time (internal/planner); the
// estimates are exact for NPO variants and match the executed accounts of
// the radix join up to partition-size rounding.

// Stats summarizes a join input for estimation.
type Stats struct {
	BuildRows, ProbeRows int64
	// MissFrac is the fraction of probe tuples matching nothing.
	MissFrac float64
}

// htBytesFor returns the hash-table footprint for n build tuples (power-of-
// two capacity at 50% fill, 17 bytes per slot), mirroring newHashTable.
func htBytesFor(n int64) int64 {
	cap := int64(16)
	for cap < 2*n {
		cap <<= 1
	}
	return cap * (8 + 8 + 1)
}

// EstimateNPO predicts the serial cycles of the no-partitioning join.
func EstimateNPO(m *hw.Machine, s Stats, ctx hw.ExecContext) float64 {
	ht := htBytesFor(s.BuildRows)
	build := hw.Work{Tuples: s.BuildRows, ComputePerTuple: 6,
		SeqReadBytes: s.BuildRows * tupleBytes,
		RandomReads:  s.BuildRows, RandomWS: ht}
	probe := hw.Work{Tuples: s.ProbeRows, ComputePerTuple: 6,
		SeqReadBytes: s.ProbeRows * tupleBytes,
		RandomReads:  s.ProbeRows, RandomWS: ht}
	return m.Cycles(build, ctx) + m.Cycles(probe, ctx)
}

// EstimateNPOPrefetch predicts the group-prefetched NPO.
func EstimateNPOPrefetch(m *hw.Machine, s Stats, ctx hw.ExecContext) float64 {
	ht := htBytesFor(s.BuildRows)
	build := hw.Work{Tuples: s.BuildRows, ComputePerTuple: 6,
		SeqReadBytes: s.BuildRows * tupleBytes,
		RandomReads:  s.BuildRows, RandomWS: ht, MLPBoost: gpMLPBoost}
	probe := hw.Work{Tuples: s.ProbeRows, ComputePerTuple: 7,
		SeqReadBytes: s.ProbeRows * tupleBytes,
		RandomReads:  s.ProbeRows, RandomWS: ht, MLPBoost: gpMLPBoost}
	return m.Cycles(build, ctx) + m.Cycles(probe, ctx)
}

// EstimateNPOBloom predicts the Bloom-filtered NPO given the expected probe
// miss fraction.
func EstimateNPOBloom(m *hw.Machine, s Stats, ctx hw.ExecContext) float64 {
	ht := htBytesFor(s.BuildRows)
	filterBytes := filterBytesFor(s.BuildRows)
	passed := int64(float64(s.ProbeRows) * (1 - s.MissFrac))
	total := 0.0
	total += m.Cycles(hw.Work{Tuples: s.BuildRows, ComputePerTuple: 6,
		SeqReadBytes: s.BuildRows * tupleBytes,
		RandomReads:  s.BuildRows, RandomWS: ht, MLPBoost: gpMLPBoost}, ctx)
	total += m.Cycles(hw.Work{Tuples: s.BuildRows, ComputePerTuple: 6,
		RandomReads: s.BuildRows, RandomWS: filterBytes, IndependentAccesses: true, HugePages: true}, ctx)
	total += m.Cycles(hw.Work{Tuples: s.ProbeRows, ComputePerTuple: 6,
		RandomReads: s.ProbeRows, RandomWS: filterBytes, IndependentAccesses: true, HugePages: true}, ctx)
	total += m.Cycles(hw.Work{Tuples: passed, ComputePerTuple: 7,
		SeqReadBytes: s.ProbeRows * tupleBytes,
		RandomReads:  passed, RandomWS: ht, MLPBoost: gpMLPBoost}, ctx)
	return total
}

// filterBytesFor mirrors bloom.New's sizing at the default 10 bits/key with
// 64-byte blocks.
func filterBytesFor(n int64) int64 {
	bits := n * 10
	blocks := (bits + 511) / 512
	if blocks == 0 {
		blocks = 1
	}
	return blocks * 64
}

// EstimateRadix predicts the serial radix join with auto-tuned options.
func EstimateRadix(m *hw.Machine, s Stats, ctx hw.ExecContext) float64 {
	opts := RadixOptions{}.resolve(m, int(s.BuildRows))
	passes := planPasses(opts)
	total := 0.0
	for _, bits := range passes {
		fanout := 1 << bits
		total += m.Cycles(partitionPassWork("est-part-build", s.BuildRows, fanout, m, opts.SWBuffers), ctx)
		total += m.Cycles(partitionPassWork("est-part-probe", s.ProbeRows, fanout, m, opts.SWBuffers), ctx)
	}
	partTuples := s.BuildRows
	if opts.TotalBits > 0 {
		partTuples = s.BuildRows >> uint(opts.TotalBits)
		if partTuples < 1 {
			partTuples = 1
		}
	}
	partHT := htBytesFor(partTuples)
	total += m.Cycles(hw.Work{Tuples: s.BuildRows, ComputePerTuple: 6,
		SeqReadBytes: s.BuildRows * tupleBytes,
		RandomReads:  s.BuildRows, RandomWS: partHT}, ctx)
	total += m.Cycles(hw.Work{Tuples: s.ProbeRows, ComputePerTuple: 6,
		SeqReadBytes: s.ProbeRows * tupleBytes,
		RandomReads:  s.ProbeRows, RandomWS: partHT}, ctx)
	return total
}
