package join

import (
	"hwstar/internal/bloom"
	"hwstar/internal/hw"
)

// NPOBloom is the no-partitioning hash join with semi-join reduction,
// layered on the group-prefetching probe loop (there is no reason to give
// up miss overlap when adding a filter): a blocked Bloom filter built
// alongside the hash table rejects non-matching probes with one touch of a
// small (usually LLC-resident) structure, so only probable matches pay the
// walk of the big table. The win scales with the probe miss rate — the
// common case in selective multi-way join plans.
func NPOBloom(in Input, acct *hw.Account) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var res Result

	ht := newHashTable(len(in.BuildKeys))
	filter := bloom.New(len(in.BuildKeys), 0)
	for i, k := range in.BuildKeys {
		ht.Insert(k, in.BuildVals[i])
		filter.Add(k)
	}
	if acct != nil {
		acct.Charge(hw.Work{
			Name:            "npo-bloom-build",
			Tuples:          int64(len(in.BuildKeys)),
			ComputePerTuple: 6,
			SeqReadBytes:    int64(len(in.BuildKeys)) * tupleBytes,
			RandomReads:     int64(len(in.BuildKeys)),
			RandomWS:        ht.Bytes(),
			MLPBoost:        gpMLPBoost,
		})
		acct.Charge(filter.ProbeWork("npo-bloom-filter-build", int64(len(in.BuildKeys))))
	}

	// Group-structured probe: stage 1 checks the filter for the whole group
	// and computes surviving slots; stage 2 walks only the survivors.
	var slots [prefetchGroup]uint64
	var live [prefetchGroup]int32
	var passed int64
	n := len(in.ProbeKeys)
	for start := 0; start < n; start += prefetchGroup {
		end := start + prefetchGroup
		if end > n {
			end = n
		}
		ln := 0
		for i := start; i < end; i++ {
			if filter.Contains(in.ProbeKeys[i]) {
				slots[ln] = hashKey(in.ProbeKeys[i]) & ht.mask
				live[ln] = int32(i)
				ln++
			}
		}
		passed += int64(ln)
		for g := 0; g < ln; g++ {
			i := live[g]
			slot := slots[g]
			key := in.ProbeKeys[i]
			pv := in.ProbeVals[i]
			for ht.used[slot] {
				if ht.keys[slot] == key {
					res.add(ht.vals[slot], pv)
				}
				slot = (slot + 1) & ht.mask
			}
		}
	}
	if acct != nil {
		// Every probe touches the filter; only survivors walk the table.
		acct.Charge(filter.ProbeWork("npo-bloom-check", int64(len(in.ProbeKeys))))
		acct.Charge(hw.Work{
			Name:            "npo-bloom-probe",
			Tuples:          passed,
			ComputePerTuple: 7,
			SeqReadBytes:    int64(len(in.ProbeKeys)) * tupleBytes,
			RandomReads:     passed,
			RandomWS:        ht.Bytes(),
			MLPBoost:        gpMLPBoost,
		})
		res.SimCycles = acct.TotalCycles()
	}
	return res, nil
}
