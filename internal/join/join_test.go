package join

import (
	"context"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/sched"
	"hwstar/internal/workload"
)

func smallInput() Input {
	return Input{
		BuildKeys: []int64{1, 2, 3, 4, 5},
		BuildVals: []int64{10, 20, 30, 40, 50},
		ProbeKeys: []int64{3, 3, 5, 9, 1},
		ProbeVals: []int64{100, 200, 300, 400, 500},
	}
}

func TestInputValidate(t *testing.T) {
	bad := Input{BuildKeys: []int64{1}, BuildVals: nil}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched build slices should fail")
	}
	bad = Input{ProbeKeys: []int64{1}, ProbeVals: nil}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched probe slices should fail")
	}
	if err := smallInput().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHashTableBasics(t *testing.T) {
	ht := newHashTable(4)
	ht.Insert(7, 70)
	ht.Insert(7, 71) // duplicate key
	ht.Insert(8, 80)
	if ht.Len() != 3 {
		t.Fatalf("len = %d", ht.Len())
	}
	var got []int64
	ht.ProbeEach(7, func(v int64) { got = append(got, v) })
	if len(got) != 2 {
		t.Fatalf("duplicate probe found %v", got)
	}
	got = got[:0]
	ht.ProbeEach(99, func(v int64) { got = append(got, v) })
	if len(got) != 0 {
		t.Fatal("missing key should match nothing")
	}
	if ht.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestHashTableManyCollisions(t *testing.T) {
	// Insert far more keys than initial sizing would like; table was sized
	// for them so fill stays at 50%.
	const n = 10000
	ht := newHashTable(n)
	for i := int64(0); i < n; i++ {
		ht.Insert(i, i*2)
	}
	for i := int64(0); i < n; i++ {
		found := false
		ht.ProbeEach(i, func(v int64) { found = v == i*2 })
		if !found {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestAllAlgorithmsAgreeOnSmallInput(t *testing.T) {
	in := smallInput()
	want, err := NestedLoop(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Matches != 4 { // keys 3 (twice), 5, 1 match; 9 misses
		t.Fatalf("reference matches = %d, want 4", want.Matches)
	}
	m := hw.Server2S()
	algos := map[string]func() (Result, error){
		"npo":        func() (Result, error) { return NPO(in, nil) },
		"radix":      func() (Result, error) { return Radix(in, RadixOptions{}, m, nil) },
		"radix-sw":   func() (Result, error) { return Radix(in, RadixOptions{TotalBits: 4, SWBuffers: true}, m, nil) },
		"sort-merge": func() (Result, error) { return SortMerge(in, nil) },
	}
	for name, run := range algos {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Matches != want.Matches || got.Checksum != want.Checksum {
			t.Fatalf("%s: result %+v, want %+v", name, got, want)
		}
	}
}

func TestDuplicateKeysCrossProduct(t *testing.T) {
	in := Input{
		BuildKeys: []int64{5, 5, 6},
		BuildVals: []int64{1, 2, 3},
		ProbeKeys: []int64{5, 5, 5, 6},
		ProbeVals: []int64{10, 20, 30, 40},
	}
	want, _ := NestedLoop(in, nil)
	if want.Matches != 2*3+1 {
		t.Fatalf("reference matches = %d, want 7", want.Matches)
	}
	m := hw.Laptop()
	for name, got := range map[string]Result{
		"npo":        mustJoin(t, func() (Result, error) { return NPO(in, nil) }),
		"radix":      mustJoin(t, func() (Result, error) { return Radix(in, RadixOptions{TotalBits: 2}, m, nil) }),
		"sort-merge": mustJoin(t, func() (Result, error) { return SortMerge(in, nil) }),
	} {
		if got.Matches != want.Matches || got.Checksum != want.Checksum {
			t.Fatalf("%s: %+v, want %+v", name, got, want)
		}
	}
}

func mustJoin(t *testing.T, f func() (Result, error)) Result {
	t.Helper()
	r, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEmptyInputs(t *testing.T) {
	m := hw.Laptop()
	empty := Input{}
	for name, f := range map[string]func() (Result, error){
		"npo":        func() (Result, error) { return NPO(empty, nil) },
		"radix":      func() (Result, error) { return Radix(empty, RadixOptions{}, m, nil) },
		"sort-merge": func() (Result, error) { return SortMerge(empty, nil) },
		"nested":     func() (Result, error) { return NestedLoop(empty, nil) },
	} {
		r, err := f()
		if err != nil || r.Matches != 0 {
			t.Fatalf("%s on empty input: %+v, %v", name, r, err)
		}
	}
}

func TestGeneratedWorkloadAgreement(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 11, BuildRows: 2000, ProbeRows: 8000, ZipfS: 1.3, Miss: 0.2})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	m := hw.Server2S()
	want := mustJoin(t, func() (Result, error) { return NPO(in, nil) })
	if got := mustJoin(t, func() (Result, error) { return Radix(in, RadixOptions{}, m, nil) }); got.Matches != want.Matches || got.Checksum != want.Checksum {
		t.Fatalf("radix disagrees: %+v vs %+v", got, want)
	}
	if got := mustJoin(t, func() (Result, error) { return SortMerge(in, nil) }); got.Matches != want.Matches || got.Checksum != want.Checksum {
		t.Fatalf("sort-merge disagrees: %+v vs %+v", got, want)
	}
	// Unique build keys, 20% misses: matches = ~80% of probes.
	if want.Matches < 6000 || want.Matches > 6800 {
		t.Fatalf("matches = %d, expected ~6400", want.Matches)
	}
}

func TestRadixOptionsResolve(t *testing.T) {
	m := hw.Server2S()
	o := RadixOptions{}.resolve(m, 1<<22) // 4M build tuples = 64 MiB
	if o.TotalBits <= 0 {
		t.Fatal("auto TotalBits should be positive for a large build side")
	}
	// Partitions must fit half the L2.
	partBytes := int64(1<<22) * tupleBytes >> uint(o.TotalBits)
	if partBytes > m.Caches[1].SizeBytes/2 {
		t.Fatalf("auto-tuned partition %d bytes exceeds L2/2", partBytes)
	}
	if o.MaxBitsPerPass != 6 { // log2(64 TLB entries)
		t.Fatalf("MaxBitsPerPass = %d, want 6", o.MaxBitsPerPass)
	}
	// Tiny build side needs no partitioning.
	o = RadixOptions{}.resolve(m, 100)
	if o.TotalBits != 0 {
		t.Fatalf("tiny build side should need 0 bits, got %d", o.TotalBits)
	}
	// Cap at 24 bits.
	o = RadixOptions{TotalBits: 30}.resolve(m, 1000)
	if o.TotalBits != 24 {
		t.Fatalf("TotalBits should cap at 24, got %d", o.TotalBits)
	}
}

func TestPlanPasses(t *testing.T) {
	if p := planPasses(RadixOptions{TotalBits: 0}); p != nil {
		t.Fatalf("0 bits → no passes, got %v", p)
	}
	if p := planPasses(RadixOptions{TotalBits: 14, MaxBitsPerPass: 6}); len(p) != 3 || p[0] != 6 || p[1] != 6 || p[2] != 2 {
		t.Fatalf("passes = %v", p)
	}
	if p := planPasses(RadixOptions{TotalBits: 14, MaxBitsPerPass: 6, SWBuffers: true}); len(p) != 1 || p[0] != 14 {
		t.Fatalf("SW-buffered passes = %v", p)
	}
}

func TestRadixPartitionIsPermutation(t *testing.T) {
	keys := workload.UniformInts(3, 5000, 1<<40)
	vals := workload.SequentialInts(5000)
	p := radixPartition(keys, vals, 4, 0)
	if len(p.keys) != 5000 || p.offsets[len(p.offsets)-1] != 5000 {
		t.Fatal("partition lost tuples")
	}
	// Key-value pairing preserved and every partition internally consistent.
	orig := map[int64]int64{}
	for i, k := range keys {
		orig[k] = vals[i] // keys are unique w.h.p. in a 2^40 domain
	}
	for part := 0; part < 16; part++ {
		pk, pv := p.partition(part)
		for i, k := range pk {
			if orig[k] != pv[i] {
				t.Fatalf("pairing broken for key %d", k)
			}
			if int((hashKey(k))&15) != part {
				t.Fatalf("key %d in wrong partition %d", k, part)
			}
		}
	}
}

func TestCostAccountingShape(t *testing.T) {
	// On a large join (build-side hash table far beyond the LLC), the
	// oblivious NPO must cost more simulated cycles than the
	// hardware-conscious radix join — the keynote's headline claim.
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 5, BuildRows: 1 << 21, ProbeRows: 1 << 22})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	m := hw.Server2S()

	npo := mustJoin(t, func() (Result, error) { return NPO(in, hw.NewAccount(m, hw.DefaultContext())) })
	radix := mustJoin(t, func() (Result, error) {
		return Radix(in, RadixOptions{}, m, hw.NewAccount(m, hw.DefaultContext()))
	})
	if npo.Matches != radix.Matches || npo.Checksum != radix.Checksum {
		t.Fatal("results disagree")
	}
	if npo.SimCycles <= radix.SimCycles {
		t.Fatalf("large join: NPO %.0f cycles should exceed radix %.0f", npo.SimCycles, radix.SimCycles)
	}

	// On a cache-resident join the ordering flips: partitioning is wasted
	// work when the whole table already fits in cache.
	small := workload.GenerateJoin(workload.JoinConfig{Seed: 6, BuildRows: 4096, ProbeRows: 1 << 16})
	sin := Input{BuildKeys: small.BuildKeys, BuildVals: small.BuildVals, ProbeKeys: small.ProbeKeys, ProbeVals: small.ProbeVals}
	npoS := mustJoin(t, func() (Result, error) { return NPO(sin, hw.NewAccount(m, hw.DefaultContext())) })
	radixS := mustJoin(t, func() (Result, error) {
		// Force partitioning to make the waste visible.
		return Radix(sin, RadixOptions{TotalBits: 8}, m, hw.NewAccount(m, hw.DefaultContext()))
	})
	if radixS.SimCycles <= npoS.SimCycles {
		t.Fatalf("cache-resident join: forced radix %.0f should exceed NPO %.0f", radixS.SimCycles, npoS.SimCycles)
	}
}

func TestSWBuffersBeatUnbufferedWideFanout(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 7, BuildRows: 1 << 18, ProbeRows: 1 << 19})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	m := hw.Server2S()
	wide := RadixOptions{TotalBits: 12, MaxBitsPerPass: 12} // fan-out 4096 >> 64 TLB entries
	unbuf := mustJoin(t, func() (Result, error) {
		return Radix(in, wide, m, hw.NewAccount(m, hw.DefaultContext()))
	})
	wide.SWBuffers = true
	buf := mustJoin(t, func() (Result, error) {
		return Radix(in, wide, m, hw.NewAccount(m, hw.DefaultContext()))
	})
	if buf.Matches != unbuf.Matches {
		t.Fatal("results disagree")
	}
	if buf.SimCycles >= unbuf.SimCycles {
		t.Fatalf("software-managed buffers %.0f should beat unbuffered wide fan-out %.0f", buf.SimCycles, unbuf.SimCycles)
	}
}

func TestParallelJoinsMatchSerial(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 8, BuildRows: 3000, ProbeRows: 9000, ZipfS: 1.2})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	want := mustJoin(t, func() (Result, error) { return NPO(in, nil) })

	m := hw.Server2S()
	s, err := sched.New(m, sched.Options{Workers: 8, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	pn, err := ParallelNPO(context.Background(), in, s, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pn.Matches != want.Matches || pn.Checksum != want.Checksum {
		t.Fatalf("parallel NPO %+v, want %+v", pn.Result, want)
	}
	if len(pn.Phases) != 2 || pn.MakespanCycles <= 0 {
		t.Fatalf("parallel NPO phases: %+v", pn.Phases)
	}

	pr, err := ParallelRadix(context.Background(), in, RadixOptions{TotalBits: 5}, s, m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Matches != want.Matches || pr.Checksum != want.Checksum {
		t.Fatalf("parallel radix %+v, want %+v", pr.Result, want)
	}
	if len(pr.Phases) != 3 {
		t.Fatalf("parallel radix should have 3 phases, got %d", len(pr.Phases))
	}
}

func TestParallelRadixScalesWithWorkers(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 9, BuildRows: 1 << 16, ProbeRows: 1 << 18})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	m := hw.Server2S()
	run := func(workers int) float64 {
		s, _ := sched.New(m, sched.Options{Workers: workers, Stealing: true})
		r, err := ParallelRadix(context.Background(), in, RadixOptions{}, s, m, 1<<13)
		if err != nil {
			t.Fatal(err)
		}
		return r.MakespanCycles
	}
	m1, m8 := run(1), run(8)
	if m8 >= m1 {
		t.Fatalf("8 workers (%.0f) should beat 1 (%.0f)", m8, m1)
	}
	if m1/m8 > 8.01 {
		t.Fatalf("speedup %f exceeds worker count", m1/m8)
	}
}

func TestParallelEmptyInput(t *testing.T) {
	m := hw.Laptop()
	s, _ := sched.New(m, sched.Options{Workers: 2})
	r, err := ParallelRadix(context.Background(), Input{}, RadixOptions{}, s, m, 0)
	if err != nil || r.Matches != 0 {
		t.Fatalf("empty parallel radix: %+v, %v", r, err)
	}
	rn, err := ParallelNPO(context.Background(), Input{}, s, 0)
	if err != nil || rn.Matches != 0 {
		t.Fatalf("empty parallel NPO: %+v, %v", rn, err)
	}
}

func TestParallelValidation(t *testing.T) {
	m := hw.Laptop()
	s, _ := sched.New(m, sched.Options{Workers: 1})
	bad := Input{BuildKeys: []int64{1}}
	if _, err := ParallelNPO(context.Background(), bad, s, 0); err == nil {
		t.Fatal("invalid input should fail")
	}
	if _, err := ParallelRadix(context.Background(), bad, RadixOptions{}, s, m, 0); err == nil {
		t.Fatal("invalid input should fail")
	}
}

// Property: all algorithms (serial and parallel) produce identical results
// on arbitrary inputs including duplicates and misses.
func TestAlgorithmsEquivalenceProperty(t *testing.T) {
	m := hw.Laptop()
	f := func(buildRaw, probeRaw []uint8) bool {
		in := Input{
			BuildKeys: make([]int64, len(buildRaw)),
			BuildVals: make([]int64, len(buildRaw)),
			ProbeKeys: make([]int64, len(probeRaw)),
			ProbeVals: make([]int64, len(probeRaw)),
		}
		for i, b := range buildRaw {
			in.BuildKeys[i] = int64(b % 32) // force duplicates and misses
			in.BuildVals[i] = int64(i * 7)
		}
		for i, p := range probeRaw {
			in.ProbeKeys[i] = int64(p % 48)
			in.ProbeVals[i] = int64(i * 13)
		}
		want, err := NestedLoop(in, nil)
		if err != nil {
			return false
		}
		got1, err := NPO(in, nil)
		if err != nil || got1 != want {
			return false
		}
		got2, err := Radix(in, RadixOptions{TotalBits: 3}, m, nil)
		if err != nil || got2 != want {
			return false
		}
		got3, err := SortMerge(in, nil)
		if err != nil || got3 != want {
			return false
		}
		s, _ := sched.New(m, sched.Options{Workers: 3, Stealing: true})
		got4, err := ParallelRadix(context.Background(), in, RadixOptions{TotalBits: 3}, s, m, 16)
		if err != nil || got4.Matches != want.Matches || got4.Checksum != want.Checksum {
			return false
		}
		got5, err := ParallelNPO(context.Background(), in, s, 16)
		if err != nil || got5.Matches != want.Matches || got5.Checksum != want.Checksum {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNPOPrefetchMatchesNPO(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 31, BuildRows: 3000, ProbeRows: 10000, ZipfS: 1.2, Miss: 0.1})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	want := mustJoin(t, func() (Result, error) { return NPO(in, nil) })
	got := mustJoin(t, func() (Result, error) { return NPOPrefetch(in, nil) })
	if got.Matches != want.Matches || got.Checksum != want.Checksum {
		t.Fatalf("prefetch NPO disagrees: %+v vs %+v", got, want)
	}
	if _, err := NPOPrefetch(Input{BuildKeys: []int64{1}}, nil); err == nil {
		t.Fatal("invalid input should fail")
	}
}

func TestNPOPrefetchClosesGapToRadix(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 32, BuildRows: 1 << 21, ProbeRows: 1 << 22})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	m := hw.Server2S()
	npo := mustJoin(t, func() (Result, error) { return NPO(in, hw.NewAccount(m, hw.DefaultContext())) })
	gp := mustJoin(t, func() (Result, error) { return NPOPrefetch(in, hw.NewAccount(m, hw.DefaultContext())) })
	radix := mustJoin(t, func() (Result, error) {
		return Radix(in, RadixOptions{}, m, hw.NewAccount(m, hw.DefaultContext()))
	})
	if gp.Matches != npo.Matches {
		t.Fatal("results disagree")
	}
	// Group prefetching must recover most of the naive NPO's loss, landing
	// in the radix join's performance class (the GP/AMAC literature shows
	// prefetch-restructured NPO competitive with partitioned joins).
	if gp.SimCycles >= npo.SimCycles*0.75 {
		t.Fatalf("gp %.0f should clearly beat naive npo %.0f", gp.SimCycles, npo.SimCycles)
	}
	ratio := gp.SimCycles / radix.SimCycles
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("gp %.0f should be radix-class (radix %.0f, ratio %.2f)", gp.SimCycles, radix.SimCycles, ratio)
	}
}

func TestNPOBloomMatchesNPO(t *testing.T) {
	gen := workload.GenerateJoin(workload.JoinConfig{Seed: 33, BuildRows: 4000, ProbeRows: 16000, Miss: 0.4})
	in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
	want := mustJoin(t, func() (Result, error) { return NPO(in, nil) })
	got := mustJoin(t, func() (Result, error) { return NPOBloom(in, nil) })
	if got.Matches != want.Matches || got.Checksum != want.Checksum {
		t.Fatalf("bloom join disagrees: %+v vs %+v", got, want)
	}
	if _, err := NPOBloom(Input{BuildKeys: []int64{1}}, nil); err == nil {
		t.Fatal("invalid input should fail")
	}
}

func TestNPOBloomPaysOffAtHighMissRate(t *testing.T) {
	m := hw.Server2S()
	cost := func(miss float64) (plain, bloomed float64) {
		gen := workload.GenerateJoin(workload.JoinConfig{Seed: 34, BuildRows: 1 << 20, ProbeRows: 1 << 22, Miss: miss})
		in := Input{BuildKeys: gen.BuildKeys, BuildVals: gen.BuildVals, ProbeKeys: gen.ProbeKeys, ProbeVals: gen.ProbeVals}
		pa := hw.NewAccount(m, hw.DefaultContext())
		// The fair baseline is the group-prefetched probe loop the bloom
		// variant is built on.
		pr := mustJoin(t, func() (Result, error) { return NPOPrefetch(in, pa) })
		ba := hw.NewAccount(m, hw.DefaultContext())
		br := mustJoin(t, func() (Result, error) { return NPOBloom(in, ba) })
		if pr.Matches != br.Matches {
			t.Fatal("results disagree")
		}
		return pa.TotalCycles(), ba.TotalCycles()
	}
	// All-match probes: the filter is overhead.
	if plain, bloomed := cost(0); bloomed <= plain {
		t.Fatalf("0%% misses: bloom %f should cost more than plain %f", bloomed, plain)
	}
	// Overwhelmingly-missing probes: the filter wins. (Against the
	// prefetched baseline the break-even sits high — rejecting a probe only
	// saves an already-overlapped table access.)
	if plain, bloomed := cost(0.95); bloomed >= plain {
		t.Fatalf("95%% misses: bloom %f should beat plain %f", bloomed, plain)
	}
}
