package join

import "hwstar/internal/hw"

// prefetchGroup is the batch size of the group-prefetching probe loop: big
// enough to expose independent misses, small enough for its state to stay
// in registers/L1.
const prefetchGroup = 16

// gpMLPBoost is the memory-level-parallelism improvement group prefetching
// achieves over a naive dependent probe loop (the 2–3× reported for GP/AMAC
// restructurings).
const gpMLPBoost = 2.5

// NPOPrefetch is the no-partitioning hash join with a group-prefetching
// probe loop: instead of probing one tuple at a time (hash → load → walk),
// it processes tuples in groups, first computing every group member's slot
// (the stage a real implementation issues prefetches from), then walking the
// groups' chains. This restructuring is the middle ground the
// hardware-conscious debate identified: it keeps the shared table but stops
// serializing its cache misses.
func NPOPrefetch(in Input, acct *hw.Account) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var res Result

	ht := newHashTable(len(in.BuildKeys))
	for i, k := range in.BuildKeys {
		ht.Insert(k, in.BuildVals[i])
	}
	if acct != nil {
		acct.Charge(hw.Work{
			Name:            "npo-gp-build",
			Tuples:          int64(len(in.BuildKeys)),
			ComputePerTuple: 6,
			SeqReadBytes:    int64(len(in.BuildKeys)) * tupleBytes,
			RandomReads:     int64(len(in.BuildKeys)),
			RandomWS:        ht.Bytes(),
			MLPBoost:        gpMLPBoost, // inserts batch the same way
		})
	}

	// Group-structured probe: stage 1 computes slots for the whole group
	// (issuing prefetches in a real system), stage 2 walks them.
	var slots [prefetchGroup]uint64
	n := len(in.ProbeKeys)
	for start := 0; start < n; start += prefetchGroup {
		end := start + prefetchGroup
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			slots[i-start] = hashKey(in.ProbeKeys[i]) & ht.mask
		}
		for i := start; i < end; i++ {
			slot := slots[i-start]
			key := in.ProbeKeys[i]
			pv := in.ProbeVals[i]
			for ht.used[slot] {
				if ht.keys[slot] == key {
					res.add(ht.vals[slot], pv)
				}
				slot = (slot + 1) & ht.mask
			}
		}
	}
	if acct != nil {
		acct.Charge(hw.Work{
			Name:            "npo-gp-probe",
			Tuples:          int64(n),
			ComputePerTuple: 7, // the extra staging costs a cycle per tuple
			SeqReadBytes:    int64(n) * tupleBytes,
			RandomReads:     int64(n),
			RandomWS:        ht.Bytes(),
			MLPBoost:        gpMLPBoost,
		})
		res.SimCycles = acct.TotalCycles()
	}
	return res, nil
}
