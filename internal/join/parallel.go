package join

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/sched"
	"hwstar/internal/trace"
)

// ParallelResult is a parallel join outcome: the (identical) join result
// plus the simulated schedule of each phase. MakespanCycles is the
// end-to-end parallel runtime, including the barrier between phases.
type ParallelResult struct {
	Result
	Phases         []sched.Result
	MakespanCycles float64
	// Spilled reports that the join exceeded its memory reservation and
	// degraded to the grace-hash spill path; SpillBytes is the simulated
	// traffic written to the spill tier.
	Spilled    bool
	SpillBytes int64
}

// addPhase appends a phase schedule and extends the makespan (phases are
// separated by barriers, as in the real algorithms).
func (r *ParallelResult) addPhase(s sched.Result) {
	r.Phases = append(r.Phases, s)
	r.MakespanCycles += s.MakespanCycles
}

// runPhaseTraced executes one phase's tasks under a named child span of the
// context's trace span (a no-op when the context carries none), attributing
// the phase makespan to the span so a trace decomposes the join's cost phase
// by phase — with the scheduler's per-worker breakdown beneath it.
func runPhaseTraced(ctx context.Context, s *sched.Scheduler, name string, tasks []sched.Task) (sched.Result, error) {
	ps := trace.FromContext(ctx).Child(name)
	res, err := s.RunContext(trace.NewContext(ctx, ps), tasks)
	ps.AddCycles(res.MakespanCycles)
	ps.End()
	return res, err
}

// ParallelNPO runs the no-partitioning hash join with all workers sharing
// one global hash table: morsels of the build relation insert concurrently,
// then morsels of the probe relation probe. Its scalability is limited by
// every worker random-accessing the same DRAM-resident table. Cancellation
// is checked at every morsel boundary; a cancelled context returns the
// context's error with the partial schedule already accounted.
//
// When the scheduler carries a memory reservation, the table footprint is
// charged before building. A denial (budget pressure or an injected
// allocation fault) degrades the join to the grace-hash spill path instead
// of growing unbounded; only a simulated OOM kill (naive mode) or an
// unspillable budget aborts.
func ParallelNPO(ctx context.Context, in Input, s *sched.Scheduler, morsel int) (ParallelResult, error) {
	if err := in.Validate(); err != nil {
		return ParallelResult{}, err
	}
	var out ParallelResult
	resv := s.Mem()
	tableBytes := hashTableBytes(len(in.BuildKeys))
	if err := resv.Charge("join-build", -1, tableBytes); err != nil {
		if errors.Is(err, errs.ErrMemoryPressure) {
			return graceHashJoin(ctx, in, s, morsel, tableBytes, err)
		}
		return out, fmt.Errorf("join: build table: %w", err)
	}
	defer resv.Uncharge(tableBytes)
	ht := newHashTable(len(in.BuildKeys))

	buildTasks := sched.Morsels(len(in.BuildKeys), morsel, "npo-build", func(start, end int, w *sched.Worker) {
		for i := start; i < end; i++ {
			ht.Insert(in.BuildKeys[i], in.BuildVals[i])
		}
		n := int64(end - start)
		w.Charge(hw.Work{
			Name: "npo-build", Tuples: n, ComputePerTuple: 6,
			SeqReadBytes: n * tupleBytes,
			RandomReads:  n, RandomWS: ht.Bytes(),
		})
	})
	phase, err := runPhaseTraced(ctx, s, "npo-build", buildTasks)
	out.addPhase(phase)
	if err != nil {
		return out, err
	}

	// Probe morsels accumulate into per-task partial results, merged after
	// the phase (no shared mutable aggregation state).
	msz := morselOrDefault(morsel)
	partials := make([]Result, (len(in.ProbeKeys)+msz-1)/msz)
	probeTasks := sched.Morsels(len(in.ProbeKeys), msz, "npo-probe", func(start, end int, w *sched.Worker) {
		part := &Result{}
		for i := start; i < end; i++ {
			pv := in.ProbeVals[i]
			ht.ProbeEach(in.ProbeKeys[i], func(bv int64) { part.add(bv, pv) })
		}
		partials[start/msz] = *part
		n := int64(end - start)
		w.Charge(hw.Work{
			Name: "npo-probe", Tuples: n, ComputePerTuple: 6,
			SeqReadBytes: n * tupleBytes,
			RandomReads:  n, RandomWS: ht.Bytes(),
		})
	})
	phase, err = runPhaseTraced(ctx, s, "npo-probe", probeTasks)
	out.addPhase(phase)
	if err != nil {
		return out, err
	}

	for _, p := range partials {
		out.Matches += p.Matches
		out.Checksum += p.Checksum
	}
	out.SimCycles = out.MakespanCycles
	return out, nil
}

func morselOrDefault(m int) int {
	if m <= 0 {
		return 1 << 14
	}
	return m
}

// ParallelRadix runs the parallel radix-partitioned hash join: workers
// partition disjoint chunks of both relations into thread-local partitioned
// buffers (phase 1), then each partition — assembled from all chunks — is
// joined by one task with a cache-resident table (phase 2). Partition-level
// tasks make skew visible as load imbalance rather than as contention.
// Cancellation is checked at every morsel/partition boundary.
func ParallelRadix(ctx context.Context, in Input, opts RadixOptions, s *sched.Scheduler, m *hw.Machine, morsel int) (ParallelResult, error) {
	if err := in.Validate(); err != nil {
		return ParallelResult{}, err
	}
	var out ParallelResult
	if len(in.BuildKeys) == 0 {
		return out, nil
	}
	opts = opts.resolve(m, len(in.BuildKeys))
	passes := planPasses(opts)
	fanout := 1 << opts.TotalBits

	// Phase 1: chunk-local partitioning. The physical scatter happens once
	// per relation chunk; the modelled cost reflects the pass structure
	// (multi-pass or software-buffered) the options describe.
	partitionChunks := func(keys, vals []int64, label string) ([]partitioned, error) {
		msz := morselOrDefault(morsel)
		nChunks := (len(keys) + msz - 1) / msz
		chunks := make([]partitioned, max(nChunks, 0))
		tasks := sched.Morsels(len(keys), msz, label, func(start, end int, w *sched.Worker) {
			chunks[start/msz] = radixPartition(keys[start:end], vals[start:end], opts.TotalBits, 0)
			n := int64(end - start)
			for pi, bits := range passes {
				w.Charge(partitionPassWork(label+"-pass"+strconv.Itoa(pi+1), n, 1<<bits, m, opts.SWBuffers))
			}
		})
		phase, err := runPhaseTraced(ctx, s, label, tasks)
		out.addPhase(phase)
		return chunks, err
	}
	buildChunks, err := partitionChunks(in.BuildKeys, in.BuildVals, "radix-part-build")
	if err != nil {
		return out, err
	}
	probeChunks, err := partitionChunks(in.ProbeKeys, in.ProbeVals, "radix-part-probe")
	if err != nil {
		return out, err
	}

	// Phase 2: one task per partition. Partition tables are cache-sized by
	// construction, so a reservation denial here (budget exhausted, injected
	// allocation fault) fails the partition cleanly instead of spilling —
	// there is nothing smaller to degrade to.
	partials := make([]Result, fanout)
	chargeErrs := make([]error, fanout)
	tasks := make([]sched.Task, 0, fanout)
	for p := 0; p < fanout; p++ {
		p := p
		tasks = append(tasks, sched.Task{
			Name:   "radix-join-p" + strconv.Itoa(p),
			Site:   "radix-join",
			Socket: -1,
			Run: func(w *sched.Worker) {
				part := &partials[p]
				var buildRows, probeRows int64
				for _, c := range buildChunks {
					bk, _ := c.partition(p)
					buildRows += int64(len(bk))
				}
				if buildRows == 0 {
					return
				}
				htBytes := hashTableBytes(int(buildRows))
				if err := w.Mem().Charge("radix-join", w.ID, htBytes); err != nil {
					chargeErrs[p] = err
					return
				}
				defer w.Mem().Uncharge(htBytes)
				ht := newHashTable(int(buildRows))
				for _, c := range buildChunks {
					bk, bv := c.partition(p)
					for i, k := range bk {
						ht.Insert(k, bv[i])
					}
				}
				for _, c := range probeChunks {
					pk, pv := c.partition(p)
					probeRows += int64(len(pk))
					for i, k := range pk {
						val := pv[i]
						ht.ProbeEach(k, func(bv int64) { part.add(bv, val) })
					}
				}
				w.Charge(hw.Work{
					Name: "radix-join", Tuples: buildRows + probeRows, ComputePerTuple: 6,
					SeqReadBytes: (buildRows + probeRows) * tupleBytes,
					RandomReads:  buildRows + probeRows, RandomWS: ht.Bytes(),
				})
			},
		})
	}
	phase, err := runPhaseTraced(ctx, s, "radix-join", tasks)
	out.addPhase(phase)
	if err != nil {
		return out, err
	}
	if err := firstChargeErr(chargeErrs); err != nil {
		return out, fmt.Errorf("join: radix partition table denied: %w", err)
	}

	for _, p := range partials {
		out.Matches += p.Matches
		out.Checksum += p.Checksum
	}
	out.SimCycles = out.MakespanCycles
	return out, nil
}
