// Package join implements the equi-join algorithms at the heart of the
// hardware-conscious-vs-oblivious debate the keynote cites (Balkesen et al.,
// ICDE 2013): a no-partitioning hash join that ignores the memory hierarchy,
// a parallel radix-partitioned hash join that is engineered for it, a
// sort-merge join, and a nested-loop reference. All algorithms are real
// implementations producing identical results; alongside the real execution
// they describe their memory behaviour to the hw machine model so
// experiments can report simulated cycles on arbitrary machine profiles.
package join

import (
	"fmt"

	"hwstar/internal/errs"
)

// Input is an equi-join input: build relation (keys+payload) and probe
// relation (keys+payload). The build side is conventionally the smaller one.
type Input struct {
	BuildKeys []int64
	BuildVals []int64
	ProbeKeys []int64
	ProbeVals []int64
}

// Validate reports an error when key and payload slices disagree.
func (in Input) Validate() error {
	if len(in.BuildKeys) != len(in.BuildVals) {
		return fmt.Errorf("join: build keys/vals length mismatch: %d vs %d: %w", len(in.BuildKeys), len(in.BuildVals), errs.ErrInvalidInput)
	}
	if len(in.ProbeKeys) != len(in.ProbeVals) {
		return fmt.Errorf("join: probe keys/vals length mismatch: %d vs %d: %w", len(in.ProbeKeys), len(in.ProbeVals), errs.ErrInvalidInput)
	}
	return nil
}

// tupleBytes is the in-memory width of one (key, payload) tuple.
const tupleBytes = 16

// Result summarizes a join execution. Following the methodology of the
// multicore join literature, matches are aggregated (count and checksum)
// rather than materialized, so the measurement isolates the join itself.
type Result struct {
	// Matches is the number of output tuples.
	Matches int64
	// Checksum aggregates matched payloads; algorithms producing the same
	// join must agree on it (it is order-insensitive).
	Checksum uint64
	// SimCycles is the simulated cycle cost when an account was provided.
	SimCycles float64
}

// merge folds one match into the result.
func (r *Result) add(buildVal, probeVal int64) {
	r.Matches++
	r.Checksum += uint64(buildVal) * 0x9E3779B97F4A7C15 >> 7
	r.Checksum += uint64(probeVal)
}

// Algorithm names a join implementation for experiment tables.
type Algorithm string

// Algorithm identifiers.
const (
	AlgNPO       Algorithm = "npo"        // no-partitioning hash join (hardware-oblivious)
	AlgRadix     Algorithm = "radix"      // parallel radix-partitioned hash join (hardware-conscious)
	AlgSortMerge Algorithm = "sort-merge" // sort-merge join
	AlgNested    Algorithm = "nested"     // nested-loop reference
)

// hashKey is the multiplicative hash shared by all hash-based algorithms.
func hashKey(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}
