package join

import "hwstar/internal/hw"

// NPO executes the no-partitioning hash join: build one table over the whole
// build relation, stream the probe relation against it. This is the
// "hardware-oblivious" contender — it trusts the cache hierarchy and
// out-of-order execution to hide the random accesses its shared table takes,
// which works while the table fits in cache and degrades into a
// DRAM-latency-bound random walk once it does not.
//
// acct may be nil to skip simulated-cost accounting.
func NPO(in Input, acct *hw.Account) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var res Result

	// Build phase: one insert per build tuple, each a random access into
	// the table.
	ht := newHashTable(len(in.BuildKeys))
	for i, k := range in.BuildKeys {
		ht.Insert(k, in.BuildVals[i])
	}
	if acct != nil {
		acct.Charge(hw.Work{
			Name:            "npo-build",
			Tuples:          int64(len(in.BuildKeys)),
			ComputePerTuple: 6, // hash + store + occupancy check
			SeqReadBytes:    int64(len(in.BuildKeys)) * tupleBytes,
			RandomReads:     int64(len(in.BuildKeys)),
			RandomWS:        ht.Bytes(),
		})
	}

	// Probe phase: stream probe tuples, one random access each.
	for i, k := range in.ProbeKeys {
		pv := in.ProbeVals[i]
		ht.ProbeEach(k, func(bv int64) { res.add(bv, pv) })
	}
	if acct != nil {
		acct.Charge(hw.Work{
			Name:            "npo-probe",
			Tuples:          int64(len(in.ProbeKeys)),
			ComputePerTuple: 6,
			SeqReadBytes:    int64(len(in.ProbeKeys)) * tupleBytes,
			RandomReads:     int64(len(in.ProbeKeys)),
			RandomWS:        ht.Bytes(),
		})
		res.SimCycles = acct.TotalCycles()
	}
	return res, nil
}

// NestedLoop is the O(n·m) reference implementation used to validate every
// other algorithm on small inputs.
func NestedLoop(in Input, acct *hw.Account) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	for i, bk := range in.BuildKeys {
		for j, pk := range in.ProbeKeys {
			if bk == pk {
				res.add(in.BuildVals[i], in.ProbeVals[j])
			}
		}
	}
	if acct != nil {
		n, m := int64(len(in.BuildKeys)), int64(len(in.ProbeKeys))
		acct.Charge(hw.Work{
			Name:            "nested-loop",
			Tuples:          n * m,
			ComputePerTuple: 2,
			SeqReadBytes:    n * m * tupleBytes,
		})
		res.SimCycles = acct.TotalCycles()
	}
	return res, nil
}
