package join

import (
	"math"
	"sort"

	"hwstar/internal/hw"
)

// SortMerge executes a sort-merge equi-join: sort both inputs by key, then
// merge. On modern hardware the sort is bandwidth-friendly (sequential
// passes) but pays O(n log n) compute, which is why hash-based joins win
// until SIMD sorting closes the gap — the crossover the multicore join
// papers dissect. Duplicate keys on both sides produce the full cross
// product, matching the other algorithms.
func SortMerge(in Input, acct *hw.Account) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var res Result

	bk, bv := sortByKey(in.BuildKeys, in.BuildVals)
	pk, pv := sortByKey(in.ProbeKeys, in.ProbeVals)

	i, j := 0, 0
	for i < len(bk) && j < len(pk) {
		switch {
		case bk[i] < pk[j]:
			i++
		case bk[i] > pk[j]:
			j++
		default:
			// Find the runs of equal keys on both sides.
			key := bk[i]
			i2 := i
			for i2 < len(bk) && bk[i2] == key {
				i2++
			}
			j2 := j
			for j2 < len(pk) && pk[j2] == key {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					res.add(bv[a], pv[b])
				}
			}
			i, j = i2, j2
		}
	}

	if acct != nil {
		n, m := int64(len(bk)), int64(len(pk))
		chargeSortWork(acct, "sm-sort-build", n)
		chargeSortWork(acct, "sm-sort-probe", m)
		acct.Charge(hw.Work{
			Name:            "sm-merge",
			Tuples:          n + m,
			ComputePerTuple: 3,
			SeqReadBytes:    (n + m) * tupleBytes,
		})
		res.SimCycles = acct.TotalCycles()
	}
	return res, nil
}

// chargeSortWork models an out-of-place merge sort of n tuples: log2(n)
// sequential read+write passes plus comparison compute.
func chargeSortWork(acct *hw.Account, name string, n int64) {
	if n <= 1 {
		return
	}
	levels := math.Ceil(math.Log2(float64(n)))
	acct.Charge(hw.Work{
		Name:            name,
		Tuples:          n,
		ComputePerTuple: 4 * levels,
		SeqReadBytes:    int64(levels) * n * tupleBytes,
		SeqWriteBytes:   int64(levels) * n * tupleBytes,
		BranchMisses:    int64(float64(n) * levels / 2), // ~50% mispredicted compares
	})
}

// sortByKey returns copies of keys and vals sorted by key (stable pairing).
func sortByKey(keys, vals []int64) ([]int64, []int64) {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	outK := make([]int64, len(keys))
	outV := make([]int64, len(vals))
	for i, id := range idx {
		outK[i] = keys[id]
		outV[i] = vals[id]
	}
	return outK, outV
}
