// Package queries implements two decision-support queries in the shape of
// TPC-H Q1 and Q6 on three execution engines — tuple-at-a-time (Volcano),
// vectorized, and fused (JiT stand-in) — over the same generated lineitem
// table. It is the workload of experiment E6: identical answers, radically
// different instruction footprints per tuple.
package queries

import (
	"fmt"
	"sort"

	"hwstar/internal/hw"
	"hwstar/internal/table"
	"hwstar/internal/vecexec"
	"hwstar/internal/volcano"
)

// Engine names an execution model.
type Engine string

// Engines.
const (
	EngineVolcano    Engine = "volcano"
	EngineVectorized Engine = "vectorized"
	EngineFused      Engine = "fused"
)

// Engines lists all execution models in comparison order.
func Engines() []Engine { return []Engine{EngineVolcano, EngineVectorized, EngineFused} }

// Q6Params parameterize the Q6-shaped query:
//
//	SELECT SUM(extendedprice*discount) FROM lineitem
//	WHERE shipdate in [DateLo, DateHi] AND discount in [DiscLo, DiscHi]
//	  AND quantity < QtyBelow
type Q6Params struct {
	DateLo, DateHi int64
	DiscLo, DiscHi float64
	QtyBelow       float64
}

// DefaultQ6 returns the canonical parameter set (one year, 6%±1% discount,
// quantity < 24).
func DefaultQ6() Q6Params {
	return Q6Params{DateLo: 365, DateHi: 729, DiscLo: 0.05, DiscHi: 0.07, QtyBelow: 24}
}

// Q6 runs the query on the given engine. acct may be nil.
func Q6(eng Engine, li *table.Table, p Q6Params, acct *hw.Account) (float64, error) {
	switch eng {
	case EngineVolcano:
		return q6Volcano(li, p, acct)
	case EngineVectorized:
		return q6Vectorized(li, p, acct)
	case EngineFused:
		return q6Fused(li, p, acct)
	default:
		return 0, fmt.Errorf("queries: unknown engine %q", eng)
	}
}

func lineitemCols(li *table.Table) (ship []int64, qty, price, disc, tax []float64, rf, ls *table.StringData, err error) {
	if ship, err = li.Int64Column("shipdate"); err != nil {
		return
	}
	if qty, err = li.Float64Column("quantity"); err != nil {
		return
	}
	if price, err = li.Float64Column("extendedprice"); err != nil {
		return
	}
	if disc, err = li.Float64Column("discount"); err != nil {
		return
	}
	if tax, err = li.Float64Column("tax"); err != nil {
		return
	}
	if rf, err = li.StringColumn("returnflag"); err != nil {
		return
	}
	ls, err = li.StringColumn("linestatus")
	return
}

func q6Volcano(li *table.Table, p Q6Params, acct *hw.Account) (float64, error) {
	shipIdx := li.Schema().ColumnIndex("shipdate")
	qtyIdx := li.Schema().ColumnIndex("quantity")
	priceIdx := li.Schema().ColumnIndex("extendedprice")
	discIdx := li.Schema().ColumnIndex("discount")

	scan := volcano.NewTableScan(li)
	filter := volcano.NewFilter(scan, func(r volcano.Row) bool {
		return r[shipIdx].I >= p.DateLo && r[shipIdx].I <= p.DateHi &&
			r[discIdx].F >= p.DiscLo && r[discIdx].F <= p.DiscHi &&
			r[qtyIdx].F < p.QtyBelow
	})
	project := volcano.NewProject(filter, []func(volcano.Row) table.Value{
		func(r volcano.Row) table.Value { return table.FloatValue(r[priceIdx].F * r[discIdx].F) },
	})
	agg := volcano.NewHashAggregate(project, nil, []volcano.AggSpec{{Kind: volcano.AggSum, Col: 0}})
	rows, err := volcano.Run(agg)
	if err != nil {
		return 0, err
	}
	if acct != nil {
		volcano.ChargeCost(acct, int64(li.NumRows()), 4, li.Schema().RowBytes())
	}
	if len(rows) == 0 {
		return 0, nil
	}
	return rows[0][0].F, nil
}

func q6Vectorized(li *table.Table, p Q6Params, acct *hw.Account) (float64, error) {
	ship, qty, price, disc, _, _, _, err := lineitemCols(li)
	if err != nil {
		return 0, err
	}
	var sum float64
	sel := make(vecexec.Sel, 0, vecexec.ChunkSize)
	sel2 := make(vecexec.Sel, 0, vecexec.ChunkSize)
	vecexec.Chunks(li.NumRows(), func(start, end int) {
		sel = vecexec.RangeFilterI64(ship[start:end], p.DateLo, p.DateHi, nil, sel[:0])
		sel2 = vecexec.RangeFilterF64(disc[start:end], p.DiscLo, p.DiscHi, sel, sel2[:0])
		sel = vecexec.RangeFilterF64(qty[start:end], 0, p.QtyBelow-1e-12, sel2, sel[:0])
		sum += vecexec.SumProductF64(price[start:end], disc[start:end], sel)
	})
	if acct != nil {
		vecexec.ChargeQ6Vectorized(acct, int64(li.NumRows()))
	}
	return sum, nil
}

func q6Fused(li *table.Table, p Q6Params, acct *hw.Account) (float64, error) {
	ship, qty, price, disc, _, _, _, err := lineitemCols(li)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i := range ship {
		if ship[i] >= p.DateLo && ship[i] <= p.DateHi &&
			disc[i] >= p.DiscLo && disc[i] <= p.DiscHi && qty[i] < p.QtyBelow {
			sum += price[i] * disc[i]
		}
	}
	if acct != nil {
		vecexec.ChargeQ6Fused(acct, int64(li.NumRows()))
	}
	return sum, nil
}

// Q1Row is one output group of the Q1-shaped query.
type Q1Row struct {
	ReturnFlag, LineStatus                    string
	SumQty, SumPrice, SumDiscPrice, SumCharge float64
	AvgQty, AvgPrice, AvgDisc                 float64
	Count                                     int64
}

// Q1Params parameterize the Q1-shaped query: aggregate all lineitems with
// shipdate <= DateHi, grouped by (returnflag, linestatus).
type Q1Params struct {
	DateHi int64
}

// DefaultQ1 uses the conventional shipdate cutoff near the end of the date
// domain.
func DefaultQ1() Q1Params { return Q1Params{DateHi: 2400} }

// Q1 runs the query on the given engine, returning groups sorted by
// (returnflag, linestatus).
func Q1(eng Engine, li *table.Table, p Q1Params, acct *hw.Account) ([]Q1Row, error) {
	switch eng {
	case EngineVolcano:
		return q1Volcano(li, p, acct)
	case EngineVectorized, EngineFused:
		return q1Columnar(eng, li, p, acct)
	default:
		return nil, fmt.Errorf("queries: unknown engine %q", eng)
	}
}

func q1Volcano(li *table.Table, p Q1Params, acct *hw.Account) ([]Q1Row, error) {
	s := li.Schema()
	shipIdx := s.ColumnIndex("shipdate")
	qtyIdx := s.ColumnIndex("quantity")
	priceIdx := s.ColumnIndex("extendedprice")
	discIdx := s.ColumnIndex("discount")
	taxIdx := s.ColumnIndex("tax")
	rfIdx := s.ColumnIndex("returnflag")
	lsIdx := s.ColumnIndex("linestatus")

	scan := volcano.NewTableScan(li)
	filter := volcano.NewFilter(scan, func(r volcano.Row) bool { return r[shipIdx].I <= p.DateHi })
	project := volcano.NewProject(filter, []func(volcano.Row) table.Value{
		func(r volcano.Row) table.Value { return r[rfIdx] },
		func(r volcano.Row) table.Value { return r[lsIdx] },
		func(r volcano.Row) table.Value { return r[qtyIdx] },
		func(r volcano.Row) table.Value { return r[priceIdx] },
		func(r volcano.Row) table.Value { return r[discIdx] },
		func(r volcano.Row) table.Value { return table.FloatValue(r[priceIdx].F * (1 - r[discIdx].F)) },
		func(r volcano.Row) table.Value {
			return table.FloatValue(r[priceIdx].F * (1 - r[discIdx].F) * (1 + r[taxIdx].F))
		},
	})
	agg := volcano.NewHashAggregate(project, []int{0, 1}, []volcano.AggSpec{
		{Kind: volcano.AggSum, Col: 2},
		{Kind: volcano.AggSum, Col: 3},
		{Kind: volcano.AggSum, Col: 5},
		{Kind: volcano.AggSum, Col: 6},
		{Kind: volcano.AggAvg, Col: 2},
		{Kind: volcano.AggAvg, Col: 3},
		{Kind: volcano.AggAvg, Col: 4},
		{Kind: volcano.AggCount},
	})
	rows, err := volcano.Run(agg)
	if err != nil {
		return nil, err
	}
	if acct != nil {
		volcano.ChargeCost(acct, int64(li.NumRows()), 4, li.Schema().RowBytes())
	}
	out := make([]Q1Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Q1Row{
			ReturnFlag: r[0].S, LineStatus: r[1].S,
			SumQty: r[2].F, SumPrice: r[3].F, SumDiscPrice: r[4].F, SumCharge: r[5].F,
			AvgQty: r[6].F, AvgPrice: r[7].F, AvgDisc: r[8].F, Count: r[9].I,
		})
	}
	sortQ1(out)
	return out, nil
}

// q1Columnar runs Q1 vectorized or fused over dictionary codes with a dense
// group array (both engines share the group layout; the fused variant does
// everything in one loop, the vectorized one in per-chunk primitives).
func q1Columnar(eng Engine, li *table.Table, p Q1Params, acct *hw.Account) ([]Q1Row, error) {
	ship, qty, price, disc, tax, rf, ls, err := lineitemCols(li)
	if err != nil {
		return nil, err
	}
	card1, card2 := rf.CardinalityOfDict(), ls.CardinalityOfDict()
	if card1 == 0 || card2 == 0 {
		return nil, nil
	}
	// Aggregates: sumQty, sumPrice, sumDiscPrice, sumCharge, sumDisc.
	g := vecexec.NewGroupAgg(card1, card2, 5)

	if eng == EngineFused {
		for i := range ship {
			if ship[i] > p.DateHi {
				continue
			}
			g1, g2 := rf.Codes[i], ls.Codes[i]
			dp := price[i] * (1 - disc[i])
			g.Add(0, g1, g2, qty[i])
			g.Add(1, g1, g2, price[i])
			g.Add(2, g1, g2, dp)
			g.Add(3, g1, g2, dp*(1+tax[i]))
			g.Add(4, g1, g2, disc[i])
			g.Bump(g1, g2)
		}
		if acct != nil {
			vecexec.ChargeQ1Fused(acct, int64(li.NumRows()))
		}
	} else {
		sel := make(vecexec.Sel, 0, vecexec.ChunkSize)
		vecexec.Chunks(li.NumRows(), func(start, end int) {
			sel = vecexec.RangeFilterI64(ship[start:end], 0, p.DateHi, nil, sel[:0])
			for _, ci := range sel {
				i := start + int(ci)
				g1, g2 := rf.Codes[i], ls.Codes[i]
				dp := price[i] * (1 - disc[i])
				g.Add(0, g1, g2, qty[i])
				g.Add(1, g1, g2, price[i])
				g.Add(2, g1, g2, dp)
				g.Add(3, g1, g2, dp*(1+tax[i]))
				g.Add(4, g1, g2, disc[i])
				g.Bump(g1, g2)
			}
		})
		if acct != nil {
			vecexec.ChargeQ1Vectorized(acct, int64(li.NumRows()))
		}
	}

	var out []Q1Row
	for g1 := 0; g1 < card1; g1++ {
		for g2 := 0; g2 < card2; g2++ {
			gi := g.GroupIndex(int32(g1), int32(g2))
			n := g.Count[gi]
			if n == 0 {
				continue
			}
			out = append(out, Q1Row{
				ReturnFlag: rf.Dict[g1], LineStatus: ls.Dict[g2],
				SumQty: g.Sums[0][gi], SumPrice: g.Sums[1][gi],
				SumDiscPrice: g.Sums[2][gi], SumCharge: g.Sums[3][gi],
				AvgQty: g.Sums[0][gi] / float64(n), AvgPrice: g.Sums[1][gi] / float64(n),
				AvgDisc: g.Sums[4][gi] / float64(n), Count: n,
			})
		}
	}
	sortQ1(out)
	return out, nil
}

func sortQ1(rows []Q1Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ReturnFlag != rows[j].ReturnFlag {
			return rows[i].ReturnFlag < rows[j].ReturnFlag
		}
		return rows[i].LineStatus < rows[j].LineStatus
	})
}
