package queries

import "time"

// timeNow is indirected for clarity in timing tests.
var timeNow = time.Now
