package queries

import (
	"testing"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func TestQ3EnginesAgree(t *testing.T) {
	li := workload.LineItem(71, 40000)
	orders := workload.Orders(72, 10000) // lineitem orderkey = i/4 ∈ [0, 10000)
	p := DefaultQ3()
	base, err := Q3(EngineVolcano, li, orders, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 || len(base) > 5 {
		t.Fatalf("Q3 groups = %d", len(base))
	}
	var totalCount int64
	for _, r := range base {
		totalCount += r.Count
		if r.Revenue <= 0 {
			t.Fatalf("group %s has revenue %f", r.OrderPriority, r.Revenue)
		}
	}
	// The cutoff selects roughly half the lineitems.
	if totalCount < 15000 || totalCount > 25000 {
		t.Fatalf("total joined rows = %d, expected ~20000", totalCount)
	}
	for _, eng := range []Engine{EngineVectorized, EngineFused} {
		got, err := Q3(eng, li, orders, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if len(got) != len(base) {
			t.Fatalf("%s: %d groups, want %d", eng, len(got), len(base))
		}
		for i := range base {
			if got[i].OrderPriority != base[i].OrderPriority || got[i].Count != base[i].Count {
				t.Fatalf("%s group %d: %+v vs %+v", eng, i, got[i], base[i])
			}
			if !relClose(got[i].Revenue, base[i].Revenue) {
				t.Fatalf("%s group %d revenue: %f vs %f", eng, i, got[i].Revenue, base[i].Revenue)
			}
		}
	}
}

func TestQ3UnknownEngine(t *testing.T) {
	li := workload.LineItem(73, 40)
	orders := workload.Orders(74, 10)
	if _, err := Q3(Engine("bogus"), li, orders, DefaultQ3(), nil); err == nil {
		t.Fatal("unknown engine should fail")
	}
}

func TestQ3CostOrdering(t *testing.T) {
	li := workload.LineItem(75, 80000)
	orders := workload.Orders(76, 20000)
	m := hw.Server2S()
	costs := map[Engine]float64{}
	for _, eng := range Engines() {
		acct := hw.NewAccount(m, hw.DefaultContext())
		if _, err := Q3(eng, li, orders, DefaultQ3(), acct); err != nil {
			t.Fatal(err)
		}
		costs[eng] = acct.TotalCycles()
	}
	if !(costs[EngineVolcano] > costs[EngineVectorized] && costs[EngineVectorized] > costs[EngineFused]) {
		t.Fatalf("cost ordering violated: %v", costs)
	}
}

func TestQ3EmptyFilter(t *testing.T) {
	li := workload.LineItem(77, 1000)
	orders := workload.Orders(78, 250)
	for _, eng := range Engines() {
		got, err := Q3(eng, li, orders, Q3Params{DateHi: -1}, nil)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: empty filter returned %v", eng, got)
		}
	}
}
