package queries

import (
	"math"
	"testing"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/denom < 1e-9
}

func TestQ6EnginesAgree(t *testing.T) {
	li := workload.LineItem(42, 50000)
	p := DefaultQ6()
	var results []float64
	for _, eng := range Engines() {
		got, err := Q6(eng, li, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		results = append(results, got)
	}
	if results[0] == 0 {
		t.Fatal("Q6 selected nothing; fixture broken")
	}
	for i := 1; i < len(results); i++ {
		if !relClose(results[0], results[i]) {
			t.Fatalf("engines disagree: %v", results)
		}
	}
}

func TestQ6SelectivityExtremes(t *testing.T) {
	li := workload.LineItem(7, 10000)
	// Empty range.
	none := Q6Params{DateLo: 9999, DateHi: 10000, DiscLo: 0, DiscHi: 1, QtyBelow: 100}
	for _, eng := range Engines() {
		got, err := Q6(eng, li, none, nil)
		if err != nil || got != 0 {
			t.Fatalf("%s empty range: %f, %v", eng, got, err)
		}
	}
	// Select-all range: all engines agree on total.
	all := Q6Params{DateLo: 0, DateHi: 1 << 40, DiscLo: 0, DiscHi: 1, QtyBelow: 1e18}
	want, _ := Q6(EngineFused, li, all, nil)
	for _, eng := range Engines() {
		got, err := Q6(eng, li, all, nil)
		if err != nil || !relClose(got, want) {
			t.Fatalf("%s select-all: %f vs %f (%v)", eng, got, want, err)
		}
	}
}

func TestQ1EnginesAgree(t *testing.T) {
	li := workload.LineItem(43, 30000)
	p := DefaultQ1()
	base, err := Q1(EngineVolcano, li, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 || len(base) > 6 {
		t.Fatalf("Q1 groups = %d", len(base))
	}
	for _, eng := range []Engine{EngineVectorized, EngineFused} {
		got, err := Q1(eng, li, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if len(got) != len(base) {
			t.Fatalf("%s: %d groups, want %d", eng, len(got), len(base))
		}
		for i := range base {
			b, g := base[i], got[i]
			if b.ReturnFlag != g.ReturnFlag || b.LineStatus != g.LineStatus || b.Count != g.Count {
				t.Fatalf("%s group %d: %+v vs %+v", eng, i, g, b)
			}
			for _, pair := range [][2]float64{
				{b.SumQty, g.SumQty}, {b.SumPrice, g.SumPrice},
				{b.SumDiscPrice, g.SumDiscPrice}, {b.SumCharge, g.SumCharge},
				{b.AvgQty, g.AvgQty}, {b.AvgPrice, g.AvgPrice}, {b.AvgDisc, g.AvgDisc},
			} {
				if !relClose(pair[0], pair[1]) {
					t.Fatalf("%s group %d numeric mismatch: %v", eng, i, pair)
				}
			}
		}
	}
}

func TestQ1CountsSumToFilteredRows(t *testing.T) {
	li := workload.LineItem(44, 20000)
	p := Q1Params{DateHi: 1200}
	ship, _ := li.Int64Column("shipdate")
	var want int64
	for _, s := range ship {
		if s <= p.DateHi {
			want++
		}
	}
	rows, err := Q1(EngineFused, li, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, r := range rows {
		got += r.Count
	}
	if got != want {
		t.Fatalf("counts sum to %d, want %d", got, want)
	}
}

func TestUnknownEngine(t *testing.T) {
	li := workload.LineItem(1, 10)
	if _, err := Q6(Engine("bogus"), li, DefaultQ6(), nil); err == nil {
		t.Fatal("unknown engine should fail Q6")
	}
	if _, err := Q1(Engine("bogus"), li, DefaultQ1(), nil); err == nil {
		t.Fatal("unknown engine should fail Q1")
	}
}

func TestCostOrderingAcrossEngines(t *testing.T) {
	// The modeled cost must reproduce the literature's ordering:
	// volcano ≫ vectorized > fused.
	li := workload.LineItem(45, 100000)
	m := hw.Server2S()
	costs := map[Engine]float64{}
	for _, eng := range Engines() {
		acct := hw.NewAccount(m, hw.DefaultContext())
		if _, err := Q6(eng, li, DefaultQ6(), acct); err != nil {
			t.Fatal(err)
		}
		costs[eng] = acct.TotalCycles()
	}
	if costs[EngineVolcano] <= costs[EngineVectorized] {
		t.Fatalf("volcano %.0f should exceed vectorized %.0f", costs[EngineVolcano], costs[EngineVectorized])
	}
	if costs[EngineVectorized] <= costs[EngineFused] {
		t.Fatalf("vectorized %.0f should exceed fused %.0f", costs[EngineVectorized], costs[EngineFused])
	}
	// Volcano interpretation overhead should be roughly an order of
	// magnitude, as the vectorization papers report.
	if ratio := costs[EngineVolcano] / costs[EngineFused]; ratio < 5 {
		t.Fatalf("volcano/fused ratio = %.1f, expected >5×", ratio)
	}
}

func TestQ6RealTimeOrdering(t *testing.T) {
	// The real Go implementations should also show volcano slower than
	// fused in wall-clock terms (interfaces + boxed values vs a tight
	// loop). Measured coarsely to stay robust on a loaded CI machine.
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	li := workload.LineItem(46, 200000)
	p := DefaultQ6()
	time := func(eng Engine) float64 {
		// Warm once, then measure three runs.
		if _, err := Q6(eng, li, p, nil); err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			start := nowNanos()
			if _, err := Q6(eng, li, p, nil); err != nil {
				t.Fatal(err)
			}
			if d := float64(nowNanos() - start); d < best {
				best = d
			}
		}
		return best
	}
	volcano, fused := time(EngineVolcano), time(EngineFused)
	if volcano < 2*fused {
		t.Logf("warning: volcano %.0fns vs fused %.0fns — expected ≥2× gap", volcano, fused)
	}
	if volcano <= fused {
		t.Fatalf("volcano (%.0fns) should be slower than fused (%.0fns) in real time", volcano, fused)
	}
}

func nowNanos() int64 { return timeNow().UnixNano() }
