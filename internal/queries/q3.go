package queries

import (
	"fmt"
	"sort"

	"hwstar/internal/hw"
	"hwstar/internal/table"
	"hwstar/internal/vecexec"
	"hwstar/internal/volcano"
)

// Q3Row is one output group of the Q3-shaped join query:
//
//	SELECT o.orderpriority, SUM(l.extendedprice * (1 - l.discount))
//	FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey
//	WHERE l.shipdate <= :date
//	GROUP BY o.orderpriority
type Q3Row struct {
	OrderPriority string
	Revenue       float64
	Count         int64
}

// Q3Params parameterize the query.
type Q3Params struct {
	DateHi int64
}

// DefaultQ3 uses a cutoff selecting roughly half the lineitems.
func DefaultQ3() Q3Params { return Q3Params{DateHi: 1278} }

// Q3 runs the join query on the given engine. The orders table must cover
// every orderkey occurring in lineitem.
func Q3(eng Engine, lineitem, orders *table.Table, p Q3Params, acct *hw.Account) ([]Q3Row, error) {
	switch eng {
	case EngineVolcano:
		return q3Volcano(lineitem, orders, p, acct)
	case EngineVectorized, EngineFused:
		return q3Columnar(eng, lineitem, orders, p, acct)
	default:
		return nil, fmt.Errorf("queries: unknown engine %q", eng)
	}
}

func q3Volcano(lineitem, orders *table.Table, p Q3Params, acct *hw.Account) ([]Q3Row, error) {
	ls := lineitem.Schema()
	shipIdx := ls.ColumnIndex("shipdate")
	lOrderIdx := ls.ColumnIndex("orderkey")
	priceIdx := ls.ColumnIndex("extendedprice")
	discIdx := ls.ColumnIndex("discount")
	os := orders.Schema()
	oOrderIdx := os.ColumnIndex("orderkey")
	prioIdx := os.ColumnIndex("orderpriority")

	filtered := volcano.NewFilter(volcano.NewTableScan(lineitem), func(r volcano.Row) bool {
		return r[shipIdx].I <= p.DateHi
	})
	joined := volcano.NewHashJoin(volcano.NewTableScan(orders), filtered, oOrderIdx, lOrderIdx)
	// Joined rows: lineitem columns then orders columns.
	nL := ls.NumColumns()
	project := volcano.NewProject(joined, []func(volcano.Row) table.Value{
		func(r volcano.Row) table.Value { return r[nL+prioIdx] },
		func(r volcano.Row) table.Value {
			return table.FloatValue(r[priceIdx].F * (1 - r[discIdx].F))
		},
	})
	agg := volcano.NewHashAggregate(project, []int{0}, []volcano.AggSpec{
		{Kind: volcano.AggSum, Col: 1},
		{Kind: volcano.AggCount},
	})
	rows, err := volcano.Run(agg)
	if err != nil {
		return nil, err
	}
	if acct != nil {
		// Scan+filter+join+project+agg over lineitem, plus the build scan.
		volcano.ChargeCost(acct, int64(lineitem.NumRows()), 5, ls.RowBytes())
		volcano.ChargeCost(acct, int64(orders.NumRows()), 1, os.RowBytes())
		// The oblivious join probes a boxed-key map the size of orders.
		acct.Charge(hw.Work{
			Name:            "q3-volcano-probe",
			Tuples:          int64(lineitem.NumRows()),
			ComputePerTuple: 30, // string key materialization + map lookup
			RandomReads:     int64(lineitem.NumRows()),
			RandomWS:        int64(orders.NumRows()) * 64, // map + boxed rows
		})
	}
	out := make([]Q3Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Q3Row{OrderPriority: r[0].S, Revenue: r[1].F, Count: r[2].I})
	}
	sortQ3(out)
	return out, nil
}

func q3Columnar(eng Engine, lineitem, orders *table.Table, p Q3Params, acct *hw.Account) ([]Q3Row, error) {
	ship, err := lineitem.Int64Column("shipdate")
	if err != nil {
		return nil, err
	}
	lOrder, err := lineitem.Int64Column("orderkey")
	if err != nil {
		return nil, err
	}
	price, err := lineitem.Float64Column("extendedprice")
	if err != nil {
		return nil, err
	}
	disc, err := lineitem.Float64Column("discount")
	if err != nil {
		return nil, err
	}
	oOrder, err := orders.Int64Column("orderkey")
	if err != nil {
		return nil, err
	}
	prio, err := orders.StringColumn("orderpriority")
	if err != nil {
		return nil, err
	}

	// Build a dense orderkey → priority-code vector (orderkeys are a
	// contiguous domain in this schema; a real system would hash).
	var maxKey int64 = -1
	for _, k := range oOrder {
		if k > maxKey {
			maxKey = k
		}
	}
	prioOf := make([]int32, maxKey+1)
	for i := range prioOf {
		prioOf[i] = -1
	}
	for i, k := range oOrder {
		prioOf[k] = prio.Codes[i]
	}

	card := prio.CardinalityOfDict()
	if card == 0 {
		return nil, nil
	}
	g := vecexec.NewGroupAgg(card, 1, 1)

	if eng == EngineFused {
		for i := range ship {
			if ship[i] > p.DateHi {
				continue
			}
			code := prioOf[lOrder[i]]
			if code < 0 {
				continue
			}
			g.Add(0, code, 0, price[i]*(1-disc[i]))
			g.Bump(code, 0)
		}
	} else {
		sel := make(vecexec.Sel, 0, vecexec.ChunkSize)
		vecexec.Chunks(lineitem.NumRows(), func(start, end int) {
			sel = vecexec.RangeFilterI64(ship[start:end], 0, p.DateHi, nil, sel[:0])
			for _, ci := range sel {
				i := start + int(ci)
				code := prioOf[lOrder[i]]
				if code < 0 {
					continue
				}
				g.Add(0, code, 0, price[i]*(1-disc[i]))
				g.Bump(code, 0)
			}
		})
	}

	if acct != nil {
		n := int64(lineitem.NumRows())
		tuples := n * 3 // filter + gather + accumulate primitives
		comp := float64(vecexec.VecTupleCycles)
		if eng == EngineFused {
			tuples = n
			comp = float64(vecexec.FusedTupleCycles)
		}
		acct.Charge(hw.Work{
			Name:            string(eng) + "-q3",
			Tuples:          tuples,
			ComputePerTuple: comp,
			SeqReadBytes:    n * (8 + 8 + 8 + 8), // ship, orderkey, price, disc
			RandomReads:     n,                   // the join gather
			RandomWS:        int64(len(prioOf)) * 4,
		})
	}

	var out []Q3Row
	for c := 0; c < card; c++ {
		gi := g.GroupIndex(int32(c), 0)
		if g.Count[gi] == 0 {
			continue
		}
		out = append(out, Q3Row{OrderPriority: prio.Dict[c], Revenue: g.Sums[0][gi], Count: g.Count[gi]})
	}
	sortQ3(out)
	return out, nil
}

func sortQ3(rows []Q3Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].OrderPriority < rows[j].OrderPriority })
}
