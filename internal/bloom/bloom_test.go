package bloom

import (
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 0)
	keys := workload.UniformInts(1, 10000, 1<<40)
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Len() != 10000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFalsePositiveRateNearExpected(t *testing.T) {
	const n = 50000
	f := New(n, 10)
	for _, k := range workload.SequentialInts(n) {
		f.Add(k)
	}
	// Probe keys far outside the inserted range.
	probes := workload.UniformInts(2, 200000, 1<<40)
	fp := 0
	for _, k := range probes {
		if k < n {
			continue
		}
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(len(probes))
	// Blocked filters pay a small constant over the ideal ~1%; accept <4%.
	if rate > 0.04 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
	if est := f.ExpectedFPR(); est <= 0 || est > 0.05 {
		t.Fatalf("expected FPR estimate %.4f out of range", est)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(0, 0)
	if f.Contains(42) {
		t.Fatal("empty filter should contain nothing")
	}
	if f.ExpectedFPR() != 0 {
		t.Fatal("empty filter FPR should be 0")
	}
	if f.Bytes() <= 0 {
		t.Fatal("filter should have a footprint")
	}
	if f.String() == "" {
		t.Fatal("String should render")
	}
}

func TestSizeScalesWithBitsPerKey(t *testing.T) {
	small := New(10000, 8)
	big := New(10000, 16)
	if big.Bytes() <= small.Bytes() {
		t.Fatalf("16 bits/key (%d B) should exceed 8 bits/key (%d B)", big.Bytes(), small.Bytes())
	}
}

func TestProbeWorkShape(t *testing.T) {
	m := hw.Server2S()
	f := New(1<<20, 10) // ~1.25 MiB: LLC-resident
	w := f.ProbeWork("bloom", 1000)
	if w.RandomReads != 1000 || w.RandomWS != f.Bytes() {
		t.Fatalf("probe work = %+v", w)
	}
	// Bloom probes into an LLC-resident filter must be far cheaper than
	// hash-table probes into a DRAM-resident table.
	htWork := hw.Work{Tuples: 1000, ComputePerTuple: 6, RandomReads: 1000, RandomWS: 1 << 30}
	if m.Cycles(w, hw.DefaultContext()) >= m.Cycles(htWork, hw.DefaultContext()) {
		t.Fatal("bloom probe should be cheaper than big-table probe")
	}
}

// Property: no false negatives for any insert set and probe order.
func TestNoFalseNegativeProperty(t *testing.T) {
	f := func(keys []int64) bool {
		fl := New(len(keys), 0)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
