// Package bloom implements a blocked Bloom filter — itself a
// hardware-conscious redesign of a classic structure: instead of k
// independent probes scattered over the whole bit array (k cache misses), a
// key hashes to one 64-byte block and sets/tests all its k bits inside that
// single cache line. One miss per lookup, same false-positive math to within
// a small constant.
//
// The engine uses it for semi-join reduction: probes that cannot match are
// rejected by one touch of a small filter instead of a DRAM-latency walk of
// a large hash table.
package bloom

import (
	"fmt"
	"math"

	"hwstar/internal/hw"
)

// blockWords is the number of 64-bit words per block: 8 words = 64 bytes =
// one cache line.
const blockWords = 8

// bitsPerKeyDefault gives ~1% false positives with 6 in-block probes.
const bitsPerKeyDefault = 10

// k is the number of bits set/tested per key.
const k = 6

// Filter is a blocked Bloom filter for int64 keys.
type Filter struct {
	blocks  []uint64 // len = numBlocks * blockWords
	nBlocks uint64
	n       int64 // keys added
}

// New sizes a filter for expectedKeys at bitsPerKey bits per key (0 uses
// the default 10).
func New(expectedKeys int, bitsPerKey int) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if bitsPerKey <= 0 {
		bitsPerKey = bitsPerKeyDefault
	}
	bits := uint64(expectedKeys) * uint64(bitsPerKey)
	nBlocks := (bits + blockWords*64 - 1) / (blockWords * 64)
	if nBlocks == 0 {
		nBlocks = 1
	}
	return &Filter{blocks: make([]uint64, nBlocks*blockWords), nBlocks: nBlocks}
}

// hash2 derives two independent 64-bit hashes for double hashing.
func hash2(key int64) (uint64, uint64) {
	h1 := uint64(key) * 0x9E3779B97F4A7C15
	h1 ^= h1 >> 29
	h2 := uint64(key) * 0xC2B2AE3D27D4EB4F
	h2 ^= h2 >> 31
	h2 |= 1 // odd, so the probe sequence covers the block
	return h1, h2
}

// Add inserts key.
func (f *Filter) Add(key int64) {
	h1, h2 := hash2(key)
	base := (h1 % f.nBlocks) * blockWords
	for i := 0; i < k; i++ {
		bit := (h1 + uint64(i)*h2) % (blockWords * 64)
		f.blocks[base+bit/64] |= 1 << (bit % 64)
	}
	f.n++
}

// Contains reports whether key may have been added (false positives
// possible, false negatives never).
func (f *Filter) Contains(key int64) bool {
	h1, h2 := hash2(key)
	base := (h1 % f.nBlocks) * blockWords
	for i := 0; i < k; i++ {
		bit := (h1 + uint64(i)*h2) % (blockWords * 64)
		if f.blocks[base+bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the filter footprint.
func (f *Filter) Bytes() int64 { return int64(len(f.blocks)) * 8 }

// Len returns the number of added keys.
func (f *Filter) Len() int64 { return f.n }

// ExpectedFPR estimates the false-positive rate for the current fill,
// using the standard Bloom approximation over the per-block bit budget.
func (f *Filter) ExpectedFPR() float64 {
	bits := float64(len(f.blocks) * 64)
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(f.n)/bits), k)
}

// ProbeWork models n filter lookups: one random access each into the filter
// (the blocked design's whole point), plus the bit arithmetic. The accesses
// are fully independent — each probe is a single line whose address is
// computable up front — so the core overlaps them at any hierarchy level.
// Filters are allocated on hugepages (the standard deployment for
// multi-megabyte filters), keeping them TLB-resident.
func (f *Filter) ProbeWork(name string, n int64) hw.Work {
	return hw.Work{
		Name:                name,
		Tuples:              n,
		ComputePerTuple:     6,
		RandomReads:         n,
		RandomWS:            f.Bytes(),
		IndependentAccesses: true,
		HugePages:           true,
	}
}

// String describes the filter.
func (f *Filter) String() string {
	return fmt.Sprintf("blocked-bloom: %d keys in %s (%.2f%% expected FPR)",
		f.n, fmtBytes(f.Bytes()), 100*f.ExpectedFPR())
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
