package frontend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hwstar/internal/fault"
	v1 "hwstar/internal/frontend/v1"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/serve"
	"hwstar/internal/table"
	"hwstar/internal/workload"
)

// fakeClock is an adjustable clock for deterministic bucket/TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testEnv is one frontend + engine + httptest server.
type testEnv struct {
	t     *testing.T
	srv   *serve.Server
	fe    *Frontend
	hs    *httptest.Server
	clock *fakeClock
}

// newTestEnv boots an engine with a "facts" relation and a "lineitem" table,
// fronted by the given tenants on a fake clock.
func newTestEnv(t *testing.T, opts serve.Options, tenants []TenantConfig, fcfg Config) *testEnv {
	t.Helper()
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 16
	}
	if opts.BatchWindow == 0 {
		opts.BatchWindow = 200 * time.Microsecond
	}
	srv, err := serve.New(hw.Server2S(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cols := [][]int64{
		workload.UniformInts(81, 1<<14, 10000),
		workload.UniformInts(82, 1<<14, 500),
	}
	if err := srv.Register("facts", cols); err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	fcfg.Server = srv
	fcfg.Tenants = tenants
	fcfg.Now = clock.now
	if fcfg.Lineitems == nil {
		fcfg.Lineitems = map[string]*table.Table{"lineitem": workload.LineItem(83, 2000)}
	}
	fe, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(fe.Handler())
	t.Cleanup(hs.Close)
	return &testEnv{t: t, srv: srv, fe: fe, hs: hs, clock: clock}
}

// do issues one request. body may be a raw string (sent verbatim) or any
// JSON-marshalable value.
func (e *testEnv) do(method, path, token string, body any) (int, http.Header, []byte) {
	e.t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, e.hs.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := e.hs.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// open opens a session and returns the token.
func (e *testEnv) open(tenant, key string) string {
	e.t.Helper()
	status, _, raw := e.do("POST", "/v1/session", "", v1.SessionRequest{Tenant: tenant, Key: key})
	if status != http.StatusOK {
		e.t.Fatalf("session open: HTTP %d: %s", status, raw)
	}
	var sr v1.SessionResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		e.t.Fatal(err)
	}
	return sr.Token
}

// errCode decodes a structured error body's code.
func errCode(t *testing.T, raw []byte) v1.ErrorInfo {
	t.Helper()
	var eb v1.ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("error body not JSON: %v: %s", err, raw)
	}
	if eb.Error.Code == "" {
		t.Fatalf("error body missing code: %s", raw)
	}
	return eb.Error
}

func defaultTenants() []TenantConfig {
	return []TenantConfig{
		{ID: "alpha", Key: "alpha-key"},
		{ID: "bravo", Key: "bravo-key", Priority: "batch"},
	}
}

// TestSessionRoutes covers /v1/session open and close.
func TestSessionRoutes(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, defaultTenants(), Config{})

	cases := []struct {
		name       string
		body       any
		wantStatus int
		wantCode   string
	}{
		{"ok", v1.SessionRequest{Tenant: "alpha", Key: "alpha-key"}, 200, ""},
		{"bad key", v1.SessionRequest{Tenant: "alpha", Key: "wrong"}, 401, v1.CodeUnauthenticated},
		{"unknown tenant", v1.SessionRequest{Tenant: "nobody", Key: "alpha-key"}, 401, v1.CodeUnauthenticated},
		{"malformed body", `{"tenant": `, 400, v1.CodeInvalidArgument},
		{"unknown field", `{"tenant":"alpha","key":"alpha-key","admin":true}`, 400, v1.CodeInvalidArgument},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, raw := e.do("POST", "/v1/session", "", c.body)
			if status != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", status, c.wantStatus, raw)
			}
			if c.wantCode != "" {
				if got := errCode(t, raw); got.Code != c.wantCode {
					t.Fatalf("code %q, want %q", got.Code, c.wantCode)
				}
				return
			}
			var sr v1.SessionResponse
			if err := json.Unmarshal(raw, &sr); err != nil || sr.Token == "" || sr.Tenant != "alpha" {
				t.Fatalf("session response %s (err %v)", raw, err)
			}
			if sr.Priority != "interactive" {
				t.Fatalf("default priority %q, want interactive", sr.Priority)
			}
		})
	}

	// Close: valid token 204, then the token is dead; closing again 401.
	tok := e.open("alpha", "alpha-key")
	if status, _, raw := e.do("DELETE", "/v1/session", tok, nil); status != 204 {
		t.Fatalf("close: HTTP %d: %s", status, raw)
	}
	if status, _, _ := e.do("POST", "/v1/query", tok, v1.QueryRequest{Op: v1.OpScan}); status != 401 {
		t.Fatalf("closed token still queries: HTTP %d", status)
	}
	if status, _, _ := e.do("DELETE", "/v1/session", tok, nil); status != 401 {
		t.Fatalf("double close: HTTP %d", status)
	}
}

// TestQueryRoutes is the table-driven sweep over /v1/query outcomes.
func TestQueryRoutes(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, defaultTenants(), Config{})
	alpha := e.open("alpha", "alpha-key")
	bravo := e.open("bravo", "bravo-key")

	scanQ := &v1.ScanArgs{FilterCol: 0, Lo: 100, Hi: 2000, AggCol: 1}
	keys := workload.UniformInts(84, 500, 16)
	vals := workload.UniformInts(85, 500, 50)

	cases := []struct {
		name       string
		token      string
		body       any
		wantStatus int
		wantCode   string
		check      func(t *testing.T, qr v1.QueryResponse)
	}{
		{"no auth", "", v1.QueryRequest{Op: v1.OpScan}, 401, v1.CodeUnauthenticated, nil},
		{"garbage token", "beefbeef", v1.QueryRequest{Op: v1.OpScan}, 401, v1.CodeUnauthenticated, nil},
		{"malformed body", alpha, `{"op": scan}`, 400, v1.CodeInvalidArgument, nil},
		{"unknown op", alpha, v1.QueryRequest{Op: "drop-tables"}, 400, v1.CodeInvalidArgument, nil},
		{"bad priority", alpha, v1.QueryRequest{Op: v1.OpScan, Priority: "urgent"}, 400, v1.CodeInvalidArgument, nil},
		{"scan missing args", alpha, v1.QueryRequest{Op: v1.OpScan, Table: "facts"}, 400, v1.CodeInvalidArgument, nil},
		{"unknown table", alpha, v1.QueryRequest{Op: v1.OpScan, Table: "nope", Scan: scanQ}, 400, v1.CodeInvalidArgument, nil},
		{"bad join algorithm", alpha, v1.QueryRequest{Op: v1.OpJoin, Join: &v1.JoinArgs{
			BuildKeys: keys, BuildVals: vals, ProbeKeys: keys, ProbeVals: vals, Algorithm: "bogo",
		}}, 400, v1.CodeInvalidArgument, nil},
		{"unknown lineitem table", alpha, v1.QueryRequest{Op: v1.OpQ6, Table: "nope"}, 400, v1.CodeInvalidArgument, nil},
		{"scan ok", alpha, v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: scanQ, TraceID: "trace-42"},
			200, "", func(t *testing.T, qr v1.QueryResponse) {
				if qr.Result.Sum <= 0 || qr.Cost.SimCycles <= 0 || qr.Cost.BatchSize < 1 {
					t.Fatalf("scan response: %+v", qr)
				}
				if qr.Tenant != "alpha" || qr.Priority != "interactive" || qr.TraceID != "trace-42" {
					t.Fatalf("attribution: %+v", qr)
				}
			}},
		{"join ok", alpha, v1.QueryRequest{Op: v1.OpJoin, Join: &v1.JoinArgs{
			BuildKeys: keys, BuildVals: vals, ProbeKeys: keys, ProbeVals: vals,
		}}, 200, "", func(t *testing.T, qr v1.QueryResponse) {
			if qr.Result.Matches <= 0 || qr.Result.Checksum == "" {
				t.Fatalf("join result: %+v", qr.Result)
			}
		}},
		{"group-sum ok", alpha, v1.QueryRequest{Op: v1.OpGroupSum, GroupSum: &v1.GroupSumArgs{Keys: keys, Vals: vals}},
			200, "", func(t *testing.T, qr v1.QueryResponse) {
				if len(qr.Result.Groups) == 0 {
					t.Fatalf("group-sum result: %+v", qr.Result)
				}
			}},
		{"q6 ok", alpha, v1.QueryRequest{Op: v1.OpQ6, Table: "lineitem"},
			200, "", func(t *testing.T, qr v1.QueryResponse) {
				if qr.Result.Revenue <= 0 {
					t.Fatalf("q6 result: %+v", qr.Result)
				}
			}},
		{"batch tenant default priority", bravo, v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: scanQ},
			200, "", func(t *testing.T, qr v1.QueryResponse) {
				if qr.Priority != "batch" || qr.Tenant != "bravo" {
					t.Fatalf("batch default: %+v", qr)
				}
			}},
		{"priority override", bravo, v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: scanQ, Priority: "interactive"},
			200, "", func(t *testing.T, qr v1.QueryResponse) {
				if qr.Priority != "interactive" {
					t.Fatalf("override: %+v", qr)
				}
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, raw := e.do("POST", "/v1/query", c.token, c.body)
			if status != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", status, c.wantStatus, raw)
			}
			if c.wantCode != "" {
				if got := errCode(t, raw); got.Code != c.wantCode {
					t.Fatalf("code %q, want %q: %s", got.Code, c.wantCode, raw)
				}
				return
			}
			var qr v1.QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatalf("response not JSON: %v: %s", err, raw)
			}
			if qr.Cost.WallMs < 0 {
				t.Fatalf("negative wall time: %+v", qr.Cost)
			}
			if c.check != nil {
				c.check(t, qr)
			}
		})
	}
}

// TestRateLimitBurstOnly pins the deterministic burst-only bucket: exactly
// Burst queries are admitted, the rest get 429 + Retry-After, before the
// body is even read.
func TestRateLimitBurstOnly(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, []TenantConfig{
		{ID: "capped", Key: "k", Burst: 2},
	}, Config{})
	tok := e.open("capped", "k")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 1000, AggCol: 1}}

	for i := 0; i < 2; i++ {
		if status, _, raw := e.do("POST", "/v1/query", tok, q); status != 200 {
			t.Fatalf("query %d within burst: HTTP %d: %s", i, status, raw)
		}
	}
	status, hdr, raw := e.do("POST", "/v1/query", tok, q)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over burst: HTTP %d: %s", status, raw)
	}
	info := errCode(t, raw)
	if info.Code != v1.CodeRateLimited || !info.Retryable || info.RetryAfterMs <= 0 {
		t.Fatalf("rate-limit error: %+v", info)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// Even a malformed body is refused with 429, not 400: governance runs
	// before the body is read.
	if status, _, raw := e.do("POST", "/v1/query", tok, `{"op": `); status != 429 {
		t.Fatalf("malformed body while throttled: HTTP %d: %s", status, raw)
	}

	// The tenant's stats expose the rejection count.
	var ts v1.TenantStats
	status, _, raw = e.do("GET", "/v1/tenants/capped/stats", tok, nil)
	if status != 200 {
		t.Fatalf("stats: HTTP %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &ts); err != nil {
		t.Fatal(err)
	}
	if ts.RateLimited != 2 || ts.Completed != 2 {
		t.Fatalf("stats: %+v", ts)
	}
}

// TestRateLimitRefills pins bucket refill against the injected clock.
func TestRateLimitRefills(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, []TenantConfig{
		{ID: "steady", Key: "k", RatePerSec: 10, Burst: 1},
	}, Config{})
	tok := e.open("steady", "k")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 1000, AggCol: 1}}

	if status, _, raw := e.do("POST", "/v1/query", tok, q); status != 200 {
		t.Fatalf("first query: HTTP %d: %s", status, raw)
	}
	status, _, raw := e.do("POST", "/v1/query", tok, q)
	if status != 429 {
		t.Fatalf("drained bucket: HTTP %d: %s", status, raw)
	}
	if info := errCode(t, raw); info.RetryAfterMs <= 0 || info.RetryAfterMs > 100 {
		t.Fatalf("retry-after %dms, want (0,100] for rate 10/s", info.RetryAfterMs)
	}
	e.clock.advance(150 * time.Millisecond) // refills 1.5 tokens -> capped at 1
	if status, _, raw := e.do("POST", "/v1/query", tok, q); status != 200 {
		t.Fatalf("after refill: HTTP %d: %s", status, raw)
	}
}

// TestRetryAfterHeaderAgreesWithBody pins the header/body contract: the
// body's RetryAfterMs carries the precise wait, the header that wait rounded
// up to whole seconds, so ceil(body_ms/1000) must equal the header.
func TestRetryAfterHeaderAgreesWithBody(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, []TenantConfig{
		{ID: "steady", Key: "k", RatePerSec: 10, Burst: 1},
	}, Config{})
	tok := e.open("steady", "k")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 1000, AggCol: 1}}

	if status, _, raw := e.do("POST", "/v1/query", tok, q); status != 200 {
		t.Fatalf("first query: HTTP %d: %s", status, raw)
	}
	status, hdr, raw := e.do("POST", "/v1/query", tok, q)
	if status != 429 {
		t.Fatalf("drained bucket: HTTP %d: %s", status, raw)
	}
	info := errCode(t, raw)
	if info.RetryAfterMs <= 0 || info.RetryAfterMs > 100 {
		t.Fatalf("retry-after %dms, want (0,100] for rate 10/s", info.RetryAfterMs)
	}
	hdrSecs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After header %q: %v", hdr.Get("Retry-After"), err)
	}
	if want := int(math.Ceil(float64(info.RetryAfterMs) / 1000)); hdrSecs != want {
		t.Fatalf("header %ds disagrees with body %dms (want ceil = %ds)", hdrSecs, info.RetryAfterMs, want)
	}
}

// TestRetryHint pins the bucket-consulting backoff used for engine-side
// 429s: a drained refilling bucket reports the true time to the next token,
// an idle or burst-only bucket reports 0 (no opinion).
func TestRetryHint(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, []TenantConfig{
		{ID: "steady", Key: "k", RatePerSec: 10, Burst: 1},
		{ID: "bursty", Key: "k", Burst: 2},
	}, Config{})
	now := e.clock.now()

	steady, _ := e.fe.tenant("steady")
	if hint := steady.retryHint(now); hint != 0 {
		t.Fatalf("full bucket hinted %v, want 0", hint)
	}
	if ok, _ := steady.takeToken(now); !ok {
		t.Fatal("token draw from full bucket refused")
	}
	hint := steady.retryHint(now)
	if hint <= 0 || hint > 100*time.Millisecond {
		t.Fatalf("drained bucket hinted %v, want (0,100ms] for rate 10/s", hint)
	}
	// The hint must match what a refusal would have reported.
	if _, retryAfter := steady.takeToken(now); retryAfter != hint {
		t.Fatalf("hint %v disagrees with takeToken's %v", hint, retryAfter)
	}

	bursty, _ := e.fe.tenant("bursty")
	bursty.takeToken(now)
	bursty.takeToken(now)
	if ok, _ := bursty.takeToken(now); ok {
		t.Fatal("burst-only bucket never drained")
	}
	if hint := bursty.retryHint(now); hint != 0 {
		t.Fatalf("burst-only bucket hinted %v, want 0", hint)
	}
}

// TestQuotaExhaustion pins the concurrency quota: with the tenant's only
// slot occupied, a query gets 429 QUOTA_EXCEEDED; freeing the slot admits it.
func TestQuotaExhaustion(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, []TenantConfig{
		{ID: "narrow", Key: "k", MaxConcurrent: 1},
	}, Config{})
	tok := e.open("narrow", "k")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 1000, AggCol: 1}}

	ts, ok := e.fe.tenant("narrow")
	if !ok {
		t.Fatal("tenant state missing")
	}
	if !ts.beginQuery() {
		t.Fatal("could not occupy the only slot")
	}
	status, hdr, raw := e.do("POST", "/v1/query", tok, q)
	if status != http.StatusTooManyRequests {
		t.Fatalf("quota full: HTTP %d: %s", status, raw)
	}
	if info := errCode(t, raw); info.Code != v1.CodeQuotaExceeded || !info.Retryable {
		t.Fatalf("quota error: %+v", info)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After header")
	}
	ts.endQuery()
	if status, _, raw := e.do("POST", "/v1/query", tok, q); status != 200 {
		t.Fatalf("after slot freed: HTTP %d: %s", status, raw)
	}
}

// TestSessionExpiry pins TTL expiry on the injected clock.
func TestSessionExpiry(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, defaultTenants(), Config{SessionTTL: time.Minute})
	tok := e.open("alpha", "alpha-key")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 1000, AggCol: 1}}
	if status, _, _ := e.do("POST", "/v1/query", tok, q); status != 200 {
		t.Fatal("fresh session refused")
	}
	e.clock.advance(2 * time.Minute)
	status, _, raw := e.do("POST", "/v1/query", tok, q)
	if status != 401 {
		t.Fatalf("expired session: HTTP %d: %s", status, raw)
	}
	if got := errCode(t, raw); got.Code != v1.CodeUnauthenticated {
		t.Fatalf("expired session code %q", got.Code)
	}
}

// TestTenantStatsIsolation pins the non-leak rule: another tenant's stats
// read exactly like a tenant that does not exist.
func TestTenantStatsIsolation(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, defaultTenants(), Config{})
	alpha := e.open("alpha", "alpha-key")

	if status, _, _ := e.do("GET", "/v1/tenants/alpha/stats", "", nil); status != 401 {
		t.Fatalf("unauthenticated stats: HTTP %d", status)
	}
	statusOther, _, rawOther := e.do("GET", "/v1/tenants/bravo/stats", alpha, nil)
	statusGhost, _, rawGhost := e.do("GET", "/v1/tenants/ghost/stats", alpha, nil)
	if statusOther != 404 || statusGhost != 404 {
		t.Fatalf("cross-tenant %d, ghost %d — both must be 404", statusOther, statusGhost)
	}
	if errCode(t, rawOther).Code != v1.CodeNotFound || errCode(t, rawGhost).Code != v1.CodeNotFound {
		t.Fatal("cross-tenant and ghost stats must carry the same code")
	}
	status, _, raw := e.do("GET", "/v1/tenants/alpha/stats", alpha, nil)
	if status != 200 {
		t.Fatalf("own stats: HTTP %d: %s", status, raw)
	}
	var ts v1.TenantStats
	if err := json.Unmarshal(raw, &ts); err != nil {
		t.Fatal(err)
	}
	if ts.Tenant != "alpha" || ts.Sessions != 1 {
		t.Fatalf("own stats: %+v", ts)
	}
}

// TestHealthRoute pins the health payload shape and per-tenant breakdown.
func TestHealthRoute(t *testing.T) {
	e := newTestEnv(t, serve.Options{}, defaultTenants(), Config{})
	alpha := e.open("alpha", "alpha-key")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 1000, AggCol: 1}}
	for i := 0; i < 3; i++ {
		if status, _, _ := e.do("POST", "/v1/query", alpha, q); status != 200 {
			t.Fatal("query failed")
		}
	}
	status, _, raw := e.do("GET", "/v1/health", "", nil)
	if status != 200 {
		t.Fatalf("health: HTTP %d: %s", status, raw)
	}
	var h v1.HealthResponse
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status == "" || h.Workers <= 0 || h.Completed != 3 {
		t.Fatalf("health: %+v", h)
	}
	ts, ok := h.Tenants["alpha"]
	if !ok || ts.Completed != 3 || ts.LatencyP50Ms <= 0 {
		t.Fatalf("health tenant breakdown: %+v", h.Tenants)
	}
}

// TestOverloadSheds429 drives a flood at a one-slot queue: some queries must
// be shed with 429 OVERLOADED + Retry-After, and nothing may fail any other
// way.
func TestOverloadSheds429(t *testing.T) {
	e := newTestEnv(t, serve.Options{
		Workers:    2,
		QueueDepth: 1,
		MaxBatch:   1,
	}, defaultTenants(), Config{})
	tok := e.open("alpha", "alpha-key")
	q := v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 10000, AggCol: 1}}

	const flood = 64
	shed := 0
	// Overload is a race between the flood and the dispatcher draining the
	// one-slot queue; a wave can in principle complete cleanly (the
	// scheduler may drain between every pair of arrivals), so flood in
	// waves until at least one shed is observed. The bound is generous
	// because every wave legitimately completing clean is the flaky tail:
	// 64 concurrent arrivals at a one-slot queue shed with overwhelming
	// probability per wave, but not with certainty.
	for wave := 0; wave < 25 && shed == 0; wave++ {
		statuses := make([]int, flood)
		codes := make([]string, flood)
		headers := make([]http.Header, flood)
		var wg sync.WaitGroup
		for i := 0; i < flood; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, hdr, raw := e.do("POST", "/v1/query", tok, q)
				statuses[i], headers[i] = status, hdr
				if status != 200 {
					var eb v1.ErrorBody
					_ = json.Unmarshal(raw, &eb)
					codes[i] = eb.Error.Code
				}
			}()
		}
		wg.Wait()

		for i, status := range statuses {
			switch status {
			case 200:
			case http.StatusTooManyRequests:
				shed++
				if codes[i] != v1.CodeOverloaded {
					t.Fatalf("shed %d carried code %q, want %q", i, codes[i], v1.CodeOverloaded)
				}
				if headers[i].Get("Retry-After") == "" {
					t.Fatalf("shed %d missing Retry-After", i)
				}
			default:
				t.Fatalf("query %d: unexpected HTTP %d (code %q)", i, status, codes[i])
			}
		}
	}
	if shed == 0 {
		t.Fatal("five floods at a one-slot queue shed nothing")
	}
}

// TestTwoTenantChaos is the race-enabled integration test: two tenants hammer
// every route concurrently while the engine runs with fault injection armed.
// Every response must be a well-formed wire message with a known code, and
// the health endpoint must stay consistent throughout.
func TestTwoTenantChaos(t *testing.T) {
	e := newTestEnv(t, serve.Options{
		Workers:    4,
		QueueDepth: 32,
		MaxRetries: 2,
		Memory:     mem.Config{BudgetBytes: 4 << 20, PerQueryBytes: 32 << 10},
		Faults: fault.New(fault.Config{
			Seed:          7,
			PanicProb:     0.02,
			TransientProb: 0.05,
			StragglerProb: 0.05,
			StragglerSkew: 2,
		}),
	}, []TenantConfig{
		{ID: "alpha", Key: "alpha-key", MaxConcurrent: 4},
		{ID: "bravo", Key: "bravo-key", Priority: "batch", RatePerSec: 50, Burst: 8},
	}, Config{})
	alpha := e.open("alpha", "alpha-key")
	bravo := e.open("bravo", "bravo-key")

	keys := workload.UniformInts(86, 800, 32)
	vals := workload.UniformInts(87, 800, 50)
	known := map[string]bool{
		v1.CodeInvalidArgument: true, v1.CodeRateLimited: true,
		v1.CodeQuotaExceeded: true, v1.CodeOverloaded: true,
		v1.CodeMemoryPressure: true, v1.CodeDegraded: true,
		v1.CodeUnavailable: true, v1.CodeDeadlineExceeded: true,
		v1.CodeInternal: true,
	}

	var wg sync.WaitGroup
	worker := func(tok string, id int) {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			var body any
			switch (id + j) % 4 {
			case 0:
				body = v1.QueryRequest{Op: v1.OpScan, Table: "facts", Scan: &v1.ScanArgs{Hi: 5000, AggCol: 1}}
			case 1:
				body = v1.QueryRequest{Op: v1.OpGroupSum, GroupSum: &v1.GroupSumArgs{Keys: keys, Vals: vals}}
			case 2:
				body = v1.QueryRequest{Op: "nonsense"} // always 400
			case 3:
				body = fmt.Sprintf(`{"op": %d}`, j) // always 400
			}
			status, _, raw := e.do("POST", "/v1/query", tok, body)
			switch {
			case status == 200:
				var qr v1.QueryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					t.Errorf("200 with non-wire body: %s", raw)
					return
				}
			default:
				if info := errCode(t, raw); !known[info.Code] {
					t.Errorf("HTTP %d with unknown code %q", status, info.Code)
					return
				}
			}
			if j%5 == 0 {
				if status, _, _ := e.do("GET", "/v1/health", "", nil); status != 200 {
					t.Errorf("health returned %d mid-chaos", status)
					return
				}
			}
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go worker(alpha, i)
		go worker(bravo, i+100)
	}
	wg.Wait()

	// Post-chaos: the books must balance per tenant on the frontend side.
	for _, id := range []string{"alpha", "bravo"} {
		tok := map[string]string{"alpha": alpha, "bravo": bravo}[id]
		status, _, raw := e.do("GET", "/v1/tenants/"+id+"/stats", tok, nil)
		if status != 200 {
			t.Fatalf("%s stats: HTTP %d", id, status)
		}
		var ts v1.TenantStats
		if err := json.Unmarshal(raw, &ts); err != nil {
			t.Fatal(err)
		}
		if ts.InFlight != 0 {
			t.Fatalf("%s still shows %d in-flight after drain", id, ts.InFlight)
		}
	}
}
