package v1

import (
	"context"
	"errors"
	"net/http"

	"hwstar/internal/errs"
)

// The closed error-code table. Codes are the stable, machine-readable half
// of the wire error contract: clients switch on Code, never on Message text
// or Go error strings. New codes may be added; existing codes never change
// meaning or HTTP status.
const (
	// CodeInvalidArgument — the request body is malformed or names an
	// unknown op/table/algorithm. HTTP 400. Not retryable.
	CodeInvalidArgument = "INVALID_ARGUMENT"
	// CodeUnauthenticated — missing, unknown, or expired session token, or
	// a bad tenant/key pair at session open. HTTP 401. Not retryable
	// (re-authenticate first).
	CodeUnauthenticated = "UNAUTHENTICATED"
	// CodeNotFound — the named resource (tenant id in /v1/tenants/{id})
	// does not exist. HTTP 404. Not retryable.
	CodeNotFound = "NOT_FOUND"
	// CodeRateLimited — the tenant's token bucket is empty. HTTP 429 with
	// Retry-After. Retryable.
	CodeRateLimited = "RATE_LIMITED"
	// CodeQuotaExceeded — the tenant is at its concurrent-query quota.
	// HTTP 429 with Retry-After. Retryable.
	CodeQuotaExceeded = "QUOTA_EXCEEDED"
	// CodeOverloaded — the server's admission queue is full (errs.
	// ErrOverloaded). HTTP 429 with Retry-After. Retryable.
	CodeOverloaded = "OVERLOADED"
	// CodeMemoryPressure — admission was refused for lack of memory budget,
	// global or tenant-cap (errs.ErrMemoryPressure). HTTP 429 with
	// Retry-After. Retryable.
	CodeMemoryPressure = "MEMORY_PRESSURE"
	// CodeDegraded — the circuit breaker is open (errs.ErrDegraded).
	// HTTP 503. Retryable.
	CodeDegraded = "DEGRADED"
	// CodeUnavailable — the server is shutting down (errs.ErrClosed).
	// HTTP 503. Retryable against a replacement instance.
	CodeUnavailable = "UNAVAILABLE"
	// CodeDeadlineExceeded — the request's deadline elapsed before
	// completion. HTTP 504. Retryable with a larger deadline.
	CodeDeadlineExceeded = "DEADLINE_EXCEEDED"
	// CodeInternal — worker panic, simulated OOM kill, or any unclassified
	// failure. HTTP 500. Not retryable.
	CodeInternal = "INTERNAL"
	// CodeDataLoss — durable state failed validation: a segment or manifest
	// checksum mismatch, torn write, or truncated file (errs.ErrCorrupted).
	// HTTP 500. Not retryable: the bytes on disk stay wrong.
	CodeDataLoss = "DATA_LOSS"
	// CodeUnavailableRecovering — the server is still replaying durable
	// state after a restart (errs.ErrRecovering). HTTP 503 with Retry-After.
	// Retryable: admission opens once the hot set is loaded.
	CodeUnavailableRecovering = "UNAVAILABLE_RECOVERING"
)

// CodeFor classifies err against the sentinel taxonomy, returning the wire
// code, the HTTP status it maps to, and whether the failure is retryable.
// A nil error returns ("", 200, false).
func CodeFor(err error) (code string, status int, retryable bool) {
	switch {
	case err == nil:
		return "", http.StatusOK, false
	case errors.Is(err, errs.ErrInvalidInput):
		return CodeInvalidArgument, http.StatusBadRequest, false
	case errors.Is(err, errs.ErrOverloaded):
		return CodeOverloaded, http.StatusTooManyRequests, true
	case errors.Is(err, errs.ErrMemoryPressure):
		return CodeMemoryPressure, http.StatusTooManyRequests, true
	case errors.Is(err, errs.ErrDegraded):
		return CodeDegraded, http.StatusServiceUnavailable, true
	case errors.Is(err, errs.ErrRecovering):
		return CodeUnavailableRecovering, http.StatusServiceUnavailable, true
	case errors.Is(err, errs.ErrClosed):
		return CodeUnavailable, http.StatusServiceUnavailable, true
	case errors.Is(err, errs.ErrCorrupted):
		return CodeDataLoss, http.StatusInternalServerError, false
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded, http.StatusGatewayTimeout, true
	case errors.Is(err, context.Canceled):
		return CodeDeadlineExceeded, http.StatusGatewayTimeout, false
	default:
		// errs.ErrWorkerPanic, errs.ErrOOMKilled, errs.ErrTransient (only
		// surfaced when retries are exhausted), and anything unclassified.
		return CodeInternal, http.StatusInternalServerError, false
	}
}
