// Package v1 is the frozen wire protocol of the hwstar network frontend.
//
// Every struct here is a versioned DTO: JSON tags are stable, fields are only
// ever added (never renamed or retyped), and nothing in internal/serve leaks
// through directly. The mapping functions (ToServe, ResponseFrom) are the
// single seam between wire and engine — internal refactors of serve.Request
// or serve.Response must update the mapping, not the wire format, so clients
// built against v1 keep working.
//
// The error side of the contract lives in errors.go: a closed table of
// machine-readable codes, each tied to an HTTP status and a retryability
// hint, derived from the sentinel taxonomy in internal/errs.
package v1

import (
	"fmt"

	"hwstar/internal/agg"
	"hwstar/internal/errs"
	"hwstar/internal/join"
	"hwstar/internal/queries"
	"hwstar/internal/scan"
	"hwstar/internal/serve"
)

// Op names accepted on the wire. They deliberately mirror serve's op
// identifiers today, but the two sets version independently.
const (
	OpScan     = "scan"
	OpJoin     = "join"
	OpGroupSum = "group-sum"
	OpQ1       = "q1"
	OpQ6       = "q6"
)

// Priority class names accepted on the wire.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// SessionRequest opens a session: POST /v1/session.
type SessionRequest struct {
	// Tenant is the tenant id to authenticate as.
	Tenant string `json:"tenant"`
	// Key is the tenant's configured API key.
	Key string `json:"key"`
}

// SessionResponse carries the bearer token for subsequent requests.
type SessionResponse struct {
	Token  string `json:"token"`
	Tenant string `json:"tenant"`
	// ExpiresUnixMs is the token's expiry as Unix epoch milliseconds.
	ExpiresUnixMs int64 `json:"expires_unix_ms"`
	// Priority is the tenant's default priority class.
	Priority string `json:"priority"`
}

// QueryRequest is one query: POST /v1/query with Authorization: Bearer <token>.
// Exactly the fields for the named op need to be set; the rest are ignored.
type QueryRequest struct {
	// Op selects the operation: scan | join | group-sum | q1 | q6.
	Op string `json:"op"`
	// Priority overrides the tenant's default class for this request
	// (interactive | batch). Empty uses the tenant default.
	Priority string `json:"priority,omitempty"`
	// TraceID is an optional client-chosen id echoed in the response and
	// attached to the server-side trace span.
	TraceID string `json:"trace_id,omitempty"`

	// Table names a server-registered relation (op=scan) or lineitem table
	// (op=q1, op=q6).
	Table string `json:"table,omitempty"`
	// Scan parameterizes op=scan against Table.
	Scan *ScanArgs `json:"scan,omitempty"`
	// Join carries inline build/probe columns for op=join.
	Join *JoinArgs `json:"join,omitempty"`
	// GroupSum carries inline key/value columns for op=group-sum.
	GroupSum *GroupSumArgs `json:"group_sum,omitempty"`
	// Engine selects the execution model for op=q1/q6
	// (volcano | vectorized | fused). Empty defaults to fused.
	Engine string `json:"engine,omitempty"`
}

// ScanArgs is a range-filter SUM: SELECT SUM(col[agg_col]) WHERE
// lo <= col[filter_col] <= hi.
type ScanArgs struct {
	FilterCol int   `json:"filter_col"`
	Lo        int64 `json:"lo"`
	Hi        int64 `json:"hi"`
	AggCol    int   `json:"agg_col"`
}

// JoinArgs is an equi-join over inline columns.
type JoinArgs struct {
	BuildKeys []int64 `json:"build_keys"`
	BuildVals []int64 `json:"build_vals"`
	ProbeKeys []int64 `json:"probe_keys"`
	ProbeVals []int64 `json:"probe_vals"`
	// Algorithm: npo | radix | sort-merge | nested; empty or "auto" lets the
	// server choose from its modeled cache hierarchy.
	Algorithm string `json:"algorithm,omitempty"`
}

// GroupSumArgs is SUM(vals) GROUP BY keys over inline columns.
type GroupSumArgs struct {
	Keys []int64 `json:"keys"`
	Vals []int64 `json:"vals"`
	// Strategy: global-atomic | local-merge | radix-partitioned; empty
	// defaults to local-merge.
	Strategy string `json:"strategy,omitempty"`
}

// QueryResponse is the success body of POST /v1/query.
type QueryResponse struct {
	Op       string `json:"op"`
	Tenant   string `json:"tenant"`
	Priority string `json:"priority"`
	// TraceID echoes the request's trace id (or carries a server-assigned
	// one) for joining against /debug/traces span trees.
	TraceID string    `json:"trace_id,omitempty"`
	Cost    CostInfo  `json:"cost"`
	Spill   SpillInfo `json:"spill"`
	Result  Result    `json:"result"`
	// Partial marks a sharded deployment's answer that covers only the
	// surviving fraction of the data: every replica of some range was down,
	// and the result is exact over CoveredFraction of the rows rather than
	// silently wrong over all of them. Single-server deployments never set
	// it. Partial responses are HTTP 200 — the body is a usable (flagged)
	// answer, not an error.
	Partial bool `json:"partial,omitempty"`
	// CoveredFraction is the fraction of rows the answer covers, in (0,1]
	// when Partial is set.
	CoveredFraction float64 `json:"covered_fraction,omitempty"`
}

// CostInfo prices the query on both clocks: simulated machine cycles and
// wall time, plus the batch the request shared.
type CostInfo struct {
	SimCycles float64 `json:"sim_cycles"`
	WallMs    float64 `json:"wall_ms"`
	BatchSize int     `json:"batch_size"`
}

// SpillInfo reports memory-governance degradation.
type SpillInfo struct {
	Spilled bool  `json:"spilled"`
	Bytes   int64 `json:"bytes"`
}

// Result carries the op-specific payload; only the fields for the request's
// op are meaningful.
type Result struct {
	// Sum is the scan aggregate (op=scan).
	Sum int64 `json:"sum"`
	// Matches counts join output rows; Checksum is the join checksum in hex
	// (a string keeps the uint64 exact in JSON) — op=join.
	Matches  int64  `json:"matches,omitempty"`
	Checksum string `json:"checksum,omitempty"`
	// Groups maps group key (decimal string) to sum (op=group-sum).
	Groups map[string]int64 `json:"groups,omitempty"`
	// Q1Rows is the grouped aggregate output (op=q1).
	Q1Rows []Q1Row `json:"q1_rows,omitempty"`
	// Revenue is the Q6 aggregate (op=q6).
	Revenue float64 `json:"revenue,omitempty"`
}

// Q1Row is one output group of the Q1-shaped query.
type Q1Row struct {
	ReturnFlag   string  `json:"return_flag"`
	LineStatus   string  `json:"line_status"`
	SumQty       float64 `json:"sum_qty"`
	SumPrice     float64 `json:"sum_price"`
	SumDiscPrice float64 `json:"sum_disc_price"`
	SumCharge    float64 `json:"sum_charge"`
	AvgQty       float64 `json:"avg_qty"`
	AvgPrice     float64 `json:"avg_price"`
	AvgDisc      float64 `json:"avg_disc"`
	Count        int64   `json:"count"`
}

// ToServe maps the wire request onto an internal serve.Request. It validates
// everything expressible at the wire layer (op names, priority classes,
// algorithm/strategy/engine identifiers, args presence); table-name
// resolution (Table, and the lineitem for q1/q6) is the frontend's job, so
// the returned request carries Table and a nil Lineitem.
func (q *QueryRequest) ToServe() (serve.Request, error) {
	var req serve.Request
	switch q.Priority {
	case "", PriorityInteractive:
		req.Priority = serve.PriorityInteractive
	case PriorityBatch:
		req.Priority = serve.PriorityBatch
	default:
		return req, fmt.Errorf("v1: unknown priority %q: %w", q.Priority, errs.ErrInvalidInput)
	}
	req.TraceID = q.TraceID

	switch q.Op {
	case OpScan:
		req.Op = serve.OpScan
		if q.Table == "" || q.Scan == nil {
			return req, fmt.Errorf("v1: op=scan needs table and scan args: %w", errs.ErrInvalidInput)
		}
		req.Table = q.Table
		req.Query = scan.Query{FilterCol: q.Scan.FilterCol, Lo: q.Scan.Lo, Hi: q.Scan.Hi, AggCol: q.Scan.AggCol}
	case OpJoin:
		req.Op = serve.OpJoin
		if q.Join == nil {
			return req, fmt.Errorf("v1: op=join needs join args: %w", errs.ErrInvalidInput)
		}
		switch q.Join.Algorithm {
		case "", "auto":
			req.Algorithm = "auto"
		case string(join.AlgNPO), string(join.AlgRadix):
			req.Algorithm = join.Algorithm(q.Join.Algorithm)
		default:
			return req, fmt.Errorf("v1: unknown join algorithm %q: %w", q.Join.Algorithm, errs.ErrInvalidInput)
		}
		req.Join = join.Input{
			BuildKeys: q.Join.BuildKeys, BuildVals: q.Join.BuildVals,
			ProbeKeys: q.Join.ProbeKeys, ProbeVals: q.Join.ProbeVals,
		}
	case OpGroupSum:
		req.Op = serve.OpGroupSum
		if q.GroupSum == nil {
			return req, fmt.Errorf("v1: op=group-sum needs group_sum args: %w", errs.ErrInvalidInput)
		}
		switch q.GroupSum.Strategy {
		case "":
			req.Strategy = agg.StrategyLocalMerge
		case string(agg.StrategyGlobal), string(agg.StrategyLocalMerge), string(agg.StrategyRadix):
			req.Strategy = agg.Strategy(q.GroupSum.Strategy)
		default:
			return req, fmt.Errorf("v1: unknown aggregation strategy %q: %w", q.GroupSum.Strategy, errs.ErrInvalidInput)
		}
		req.Keys, req.Vals = q.GroupSum.Keys, q.GroupSum.Vals
	case OpQ1, OpQ6:
		if q.Op == OpQ1 {
			req.Op = serve.OpQ1
		} else {
			req.Op = serve.OpQ6
		}
		if q.Table == "" {
			return req, fmt.Errorf("v1: op=%s needs a lineitem table name: %w", q.Op, errs.ErrInvalidInput)
		}
		req.Table = q.Table
		switch q.Engine {
		case "":
			req.Engine = queries.EngineFused
		case string(queries.EngineVolcano), string(queries.EngineVectorized), string(queries.EngineFused):
			req.Engine = queries.Engine(q.Engine)
		default:
			return req, fmt.Errorf("v1: unknown engine %q: %w", q.Engine, errs.ErrInvalidInput)
		}
	default:
		return req, fmt.Errorf("v1: unknown op %q: %w", q.Op, errs.ErrInvalidInput)
	}
	return req, nil
}

// ResponseFrom maps an internal serve.Response back onto the wire, stamping
// the request identity (op, tenant, priority, trace id) and wall time.
func ResponseFrom(q *QueryRequest, tenant, priority string, wallMs float64, resp serve.Response) QueryResponse {
	out := QueryResponse{
		Op:       q.Op,
		Tenant:   tenant,
		Priority: priority,
		TraceID:  q.TraceID,
		Cost:     CostInfo{SimCycles: resp.SimCycles, WallMs: wallMs, BatchSize: resp.BatchSize},
		Spill:    SpillInfo{Spilled: resp.Spilled, Bytes: resp.SpillBytes},
		Partial:  resp.Partial,
	}
	if resp.Partial {
		out.CoveredFraction = resp.CoveredFraction
	}
	switch q.Op {
	case OpScan:
		out.Result.Sum = resp.Sum
	case OpJoin:
		out.Result.Matches = resp.Matches
		out.Result.Checksum = fmt.Sprintf("%016x", resp.Checksum)
	case OpGroupSum:
		out.Result.Groups = make(map[string]int64, len(resp.Groups))
		for k, v := range resp.Groups {
			out.Result.Groups[fmt.Sprintf("%d", k)] = v
		}
	case OpQ1:
		out.Result.Q1Rows = make([]Q1Row, len(resp.Q1Rows))
		for i, r := range resp.Q1Rows {
			out.Result.Q1Rows[i] = Q1Row{
				ReturnFlag: r.ReturnFlag, LineStatus: r.LineStatus,
				SumQty: r.SumQty, SumPrice: r.SumPrice, SumDiscPrice: r.SumDiscPrice,
				SumCharge: r.SumCharge, AvgQty: r.AvgQty, AvgPrice: r.AvgPrice,
				AvgDisc: r.AvgDisc, Count: r.Count,
			}
		}
	case OpQ6:
		out.Result.Revenue = resp.Revenue
	}
	return out
}

// HealthResponse is the body of GET /v1/health.
type HealthResponse struct {
	// Status is "ok", "degraded" (circuit breaker open/half-open),
	// "recovering" (durable replay in progress, admission closed), or
	// "closed" (server shutting down).
	Status string `json:"status"`
	// Queue and workers.
	QueueDepth int `json:"queue_depth"`
	Workers    int `json:"workers"`
	// Admission totals.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	// Memory budget position (zero when ungoverned).
	MemInUseBytes  int64 `json:"mem_in_use_bytes"`
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
	// Durability (all zero/absent when the server runs memory-only).
	// Durable reports a durable store is armed; Recovering that boot replay
	// is still in progress. StoreVersion is the last committed manifest
	// version; RecoveredTables/RecoveredHot what boot replay found and how
	// much of it is DRAM-resident; RecoveryFallbacks how many corrupt
	// manifest versions recovery skipped past. Checkpoints and
	// CheckpointFailures count background/shutdown flushes; ColdLoads counts
	// flash-resident tables faulted in on first access.
	Durable            bool   `json:"durable,omitempty"`
	Recovering         bool   `json:"recovering,omitempty"`
	StoreVersion       uint64 `json:"store_version,omitempty"`
	RecoveredTables    int    `json:"recovered_tables,omitempty"`
	RecoveredHot       int    `json:"recovered_hot,omitempty"`
	RecoveryFallbacks  int    `json:"recovery_fallbacks,omitempty"`
	Checkpoints        int64  `json:"checkpoints,omitempty"`
	CheckpointFailures int64  `json:"checkpoint_failures,omitempty"`
	ColdLoads          int64  `json:"cold_loads,omitempty"`
	// Tenants breaks admission down per tenant id.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of the server, served standalone from
// GET /v1/tenants/{id}/stats and embedded in HealthResponse.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Engine-side admission and completion counters.
	Admitted         int64 `json:"admitted"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Rejected         int64 `json:"rejected"`
	Shed             int64 `json:"shed"`
	MemShed          int64 `json:"mem_shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Spills           int64 `json:"spills"`
	SpillBytes       int64 `json:"spill_bytes"`
	// Frontend-side governance counters.
	RateLimited   int64 `json:"rate_limited"`
	QuotaRejected int64 `json:"quota_rejected"`
	InFlight      int64 `json:"in_flight"`
	Sessions      int64 `json:"sessions"`
	// Latency quantiles in milliseconds (engine-side, successful queries).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	// Memory position against the tenant's cap (zero when uncapped).
	MemInUseBytes int64 `json:"mem_in_use_bytes"`
	MemCapBytes   int64 `json:"mem_cap_bytes"`
}

// ErrorBody is the JSON envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo describes one failure in machine-readable form.
type ErrorInfo struct {
	// Code is one of the Code* constants in this package.
	Code string `json:"code"`
	// Message is a human-readable description; its text is NOT part of the
	// stable contract, only Code is.
	Message string `json:"message"`
	// Retryable hints whether the same request may succeed later.
	Retryable bool `json:"retryable"`
	// RetryAfterMs is the suggested wait before retrying, in milliseconds.
	// It is set whenever the response carries a Retry-After header — on
	// 429s and on the 503 a recovering server sheds with — and is the
	// precise value: the header is this duration rounded up to whole
	// seconds (headers cannot carry fractions), so ceil(RetryAfterMs/1000)
	// always equals the header.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// TraceID echoes the request's trace id when one was supplied.
	TraceID string `json:"trace_id,omitempty"`
}
