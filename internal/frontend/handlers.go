package frontend

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hwstar/internal/errs"
	v1 "hwstar/internal/frontend/v1"
	"hwstar/internal/serve"
)

// errUnauthenticated marks frontend-origin auth failures; it never crosses
// the package boundary (handlers map it straight to CodeUnauthenticated).
var errUnauthenticated = errors.New("unauthenticated")

// maxBodyBytes bounds request bodies; inline join/group-sum columns fit
// comfortably, a hostile body cannot balloon the heap.
const maxBodyBytes = 8 << 20

// Handler mounts the v1 API:
//
//	POST   /v1/session            open a session (tenant + key → token)
//	DELETE /v1/session            close the presented session
//	POST   /v1/query              run one query (bearer token)
//	GET    /v1/health             engine health, per-tenant breakdown
//	GET    /v1/tenants/{id}/stats one tenant's stats (that tenant's token)
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/session", f.handleSessionOpen)
	mux.HandleFunc("DELETE /v1/session", f.handleSessionClose)
	mux.HandleFunc("POST /v1/query", f.handleQuery)
	mux.HandleFunc("GET /v1/health", f.handleHealth)
	mux.HandleFunc("GET /v1/tenants/{id}/stats", f.handleTenantStats)
	return mux
}

// bearer extracts the Authorization bearer token.
func bearer(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

func (f *Frontend) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter("frontend.requests").Inc()
	var req v1.SessionRequest
	if err := decodeBody(r, &req); err != nil {
		f.writeCode(w, v1.CodeInvalidArgument, http.StatusBadRequest, false, 0, "", err.Error())
		return
	}
	token, expires, err := f.openSession(req.Tenant, req.Key)
	if err != nil {
		f.reg.Counter("frontend.unauthenticated").Inc()
		f.writeCode(w, v1.CodeUnauthenticated, http.StatusUnauthorized, false, 0, "", "bad tenant or key")
		return
	}
	ts, _ := f.tenant(req.Tenant)
	writeJSON(w, http.StatusOK, v1.SessionResponse{
		Token:         token,
		Tenant:        req.Tenant,
		ExpiresUnixMs: expires.UnixMilli(),
		Priority:      ts.cfg.Priority,
	})
}

func (f *Frontend) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter("frontend.requests").Inc()
	if !f.closeSession(bearer(r)) {
		f.reg.Counter("frontend.unauthenticated").Inc()
		f.writeCode(w, v1.CodeUnauthenticated, http.StatusUnauthorized, false, 0, "", "unknown or expired session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (f *Frontend) handleQuery(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter("frontend.requests").Inc()
	ts, ok := f.resolveSession(bearer(r))
	if !ok {
		f.reg.Counter("frontend.unauthenticated").Inc()
		f.writeCode(w, v1.CodeUnauthenticated, http.StatusUnauthorized, false, 0, "", "unknown or expired session")
		return
	}
	tenant := ts.cfg.ID

	// Frontend governance runs BEFORE the body is read: a rate-limited or
	// over-quota tenant is refused for the price of a header parse, so a
	// flood of megabyte payloads cannot buy JSON-decode time on the way to
	// its 429. (This also means governance rejections win over body
	// validation: a throttled tenant gets 429, not 400, for a bad body.)
	if ok, retryAfter := ts.takeToken(f.now()); !ok {
		f.tenantGovInc(tenant, "rate_limited")
		f.writeCode(w, v1.CodeRateLimited, http.StatusTooManyRequests, true, retryAfter, "",
			fmt.Sprintf("tenant %q rate limit exceeded", tenant))
		return
	}
	if !ts.beginQuery() {
		f.tenantGovInc(tenant, "quota_rejected")
		f.writeCode(w, v1.CodeQuotaExceeded, http.StatusTooManyRequests, true, time.Second, "",
			fmt.Sprintf("tenant %q at max %d concurrent queries", tenant, ts.cfg.MaxConcurrent))
		return
	}
	defer ts.endQuery()

	var q v1.QueryRequest
	if err := decodeBody(r, &q); err != nil {
		f.tenantGovInc(tenant, "invalid")
		f.writeCode(w, v1.CodeInvalidArgument, http.StatusBadRequest, false, 0, "", err.Error())
		return
	}
	sreq, err := q.ToServe()
	if err != nil {
		f.tenantGovInc(tenant, "invalid")
		f.writeCode(w, v1.CodeInvalidArgument, http.StatusBadRequest, false, 0, q.TraceID, err.Error())
		return
	}
	if q.Priority == "" {
		sreq.Priority = serve.Priority(ts.cfg.Priority)
	}

	if sreq.Op == serve.OpQ1 || sreq.Op == serve.OpQ6 {
		li, found := f.lineitems[q.Table]
		if !found {
			f.tenantGovInc(tenant, "invalid")
			f.writeCode(w, v1.CodeInvalidArgument, http.StatusBadRequest, false, 0, q.TraceID,
				fmt.Sprintf("unknown lineitem table %q", q.Table))
			return
		}
		sreq.Lineitem = li
	}
	sreq.Tenant = tenant

	ctx := r.Context()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	start := f.now()
	resp, err := f.srv.Submit(ctx, sreq)
	wallMs := float64(f.now().Sub(start).Microseconds()) / 1000
	if err != nil && !errors.Is(err, errs.ErrPartialResult) {
		f.reg.Counter("frontend.queries_failed").Inc()
		f.writeError(w, ts, q.TraceID, err)
		return
	}
	// A partial result (sharded backend, every replica of some range down)
	// carries a usable answer that is exact over the covered fraction. That
	// is a flagged success on the wire, not an error: the client gets the
	// truth about what survived instead of a retryable 5xx hiding an exact
	// partial sum.
	if err != nil {
		f.reg.Counter("frontend.queries_partial").Inc()
	}
	f.reg.Counter("frontend.queries_ok").Inc()
	writeJSON(w, http.StatusOK, v1.ResponseFrom(&q, tenant, string(sreq.Priority.Lane()), wallMs, resp))
}

func (f *Frontend) handleHealth(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter("frontend.requests").Inc()
	h := f.srv.Health()
	out := v1.HealthResponse{
		Status:         h.State,
		QueueDepth:     h.QueueDepth,
		Workers:        f.srv.Workers(),
		Admitted:       h.Admitted,
		Completed:      h.Completed,
		Failed:         h.Failed,
		Shed:           h.Shed + h.MemShed,
		MemInUseBytes:  h.Memory.InUseBytes,
		MemBudgetBytes: h.Memory.BudgetBytes,
	}
	if h.Durable {
		out.Durable = true
		out.Recovering = h.Recovering
		out.StoreVersion = h.StoreVersion
		out.RecoveredTables = h.Recovery.TablesTotal
		out.RecoveredHot = h.Recovery.TablesHot
		out.RecoveryFallbacks = h.Recovery.Fallbacks
		out.Checkpoints = h.Checkpoints
		out.CheckpointFailures = h.CheckpointFailures
		out.ColdLoads = h.ColdLoads
	}
	if len(h.Tenants) > 0 {
		out.Tenants = make(map[string]v1.TenantStats, len(h.Tenants))
		for id, th := range h.Tenants {
			out.Tenants[id] = f.wireTenantStats(id, th)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (f *Frontend) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter("frontend.requests").Inc()
	ts, ok := f.resolveSession(bearer(r))
	if !ok {
		f.reg.Counter("frontend.unauthenticated").Inc()
		f.writeCode(w, v1.CodeUnauthenticated, http.StatusUnauthorized, false, 0, "", "unknown or expired session")
		return
	}
	id := r.PathValue("id")
	// A tenant may read only its own stats; anything else is indistinguishable
	// from a tenant that does not exist.
	if id != ts.cfg.ID {
		f.writeCode(w, v1.CodeNotFound, http.StatusNotFound, false, 0, "", fmt.Sprintf("no tenant %q", id))
		return
	}
	writeJSON(w, http.StatusOK, f.wireTenantStats(id, f.srv.TenantHealth(id)))
}

// wireTenantStats merges the engine's per-tenant health with the frontend's
// governance counters onto the wire DTO.
func (f *Frontend) wireTenantStats(id string, th serve.TenantHealth) v1.TenantStats {
	out := v1.TenantStats{
		Tenant:           id,
		Admitted:         th.Admitted,
		Completed:        th.Completed,
		Failed:           th.Failed,
		Rejected:         th.Rejected,
		Shed:             th.Shed,
		MemShed:          th.MemShed,
		DeadlineExceeded: th.DeadlineExceeded,
		Spills:           th.Spills,
		SpillBytes:       th.SpillBytes,
		LatencyP50Ms:     th.LatencyMs.P50,
		LatencyP99Ms:     th.LatencyMs.P99,
		MemInUseBytes:    th.MemInUseBytes,
		MemCapBytes:      th.MemCapBytes,
	}
	if ts, ok := f.tenant(id); ok {
		out.RateLimited, out.QuotaRejected, out.InFlight, out.Sessions = ts.govSnapshot()
	}
	return out
}

// tenantGovInc mirrors a frontend governance event into the metrics
// registry under the tenant's dimension.
func (f *Frontend) tenantGovInc(tenant, metric string) {
	f.reg.Counter("frontend." + metric).Inc()
	f.reg.Counter("frontend.tenant." + tenant + "." + metric).Inc()
}

// decodeBody strictly decodes a JSON body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("malformed JSON body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError maps an engine error through the v1 code table. 429s carry a
// Retry-After so well-behaved clients back off, and so does the 503 a
// recovering server sheds with — replay finishes on its own schedule, so
// the right client move is wait-and-retry, not fail over. For 429s the
// tenant's token bucket is consulted: if the tenant is also out of tokens,
// the hint is the actual time to the next token, not a flat second.
func (f *Frontend) writeError(w http.ResponseWriter, ts *tenantState, traceID string, err error) {
	code, status, retryable := v1.CodeFor(err)
	retryAfter := time.Duration(0)
	if status == http.StatusTooManyRequests || code == v1.CodeUnavailableRecovering {
		retryAfter = time.Second
		if status == http.StatusTooManyRequests && ts != nil {
			if hint := ts.retryHint(f.now()); hint > 0 {
				retryAfter = hint
			}
		}
	}
	f.writeCode(w, code, status, retryable, retryAfter, traceID, err.Error())
}

// writeCode writes one structured error body.
func (f *Frontend) writeCode(w http.ResponseWriter, code string, status int, retryable bool, retryAfter time.Duration, traceID, msg string) {
	info := v1.ErrorInfo{Code: code, Message: msg, Retryable: retryable, TraceID: traceID}
	if retryAfter > 0 {
		info.RetryAfterMs = retryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
	}
	writeJSON(w, status, v1.ErrorBody{Error: info})
}
