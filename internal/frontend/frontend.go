// Package frontend is hwstar's multi-tenant network face: an HTTP/JSON API
// (wire protocol in frontend/v1) over any Backend — a single serve.Server
// or a sharded, replicated shard.Router.
//
// The keynote's deployment reality — one engine, many concurrent clients of
// unequal importance — is exactly what the in-process Go API cannot express.
// This package adds the missing boundary layer:
//
//   - Sessions: tenants authenticate with an API key and get a bearer token
//     with a TTL; every query is attributed to the session's tenant.
//   - Governance before admission: a per-tenant token bucket (rate limit)
//     and a concurrent-query quota run BEFORE serve.Submit, so a noisy
//     tenant burns its own allowance, not the engine's intake queue.
//   - Governance inside the engine: tenant identity threads into
//     serve.Request, picking up per-tenant metrics, trace attribution,
//     tenant-capped memory reservations, and the priority lane the tenant
//     is configured for.
//
// Tenant and session state is sharded (hash of id/token → shard, each with
// its own RWMutex) so the per-request lookup path never funnels through one
// hot registry lock — McKenney's rule applied at the frontend, matching the
// partitioned design the execution layers already follow.
package frontend

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"hwstar/internal/errs"
	"hwstar/internal/metrics"
	"hwstar/internal/serve"
	"hwstar/internal/table"
)

// Backend is the engine surface the frontend fronts. Both a single
// serve.Server and a shard.Router satisfy it, so the same HTTP tier runs
// unchanged against one engine or a replicated cluster — the wire protocol
// never learns which it is talking to (a sharded backend merely starts
// setting the partial-result fields on serve.Response).
type Backend interface {
	Submit(ctx context.Context, req serve.Request) (serve.Response, error)
	Health() serve.Health
	TenantHealth(tenant string) serve.TenantHealth
	Workers() int
	Metrics() *metrics.Registry
	SetTenantMemCap(tenant string, bytes int64)
}

// TenantConfig declares one tenant and its governance envelope.
type TenantConfig struct {
	// ID names the tenant; it labels metrics, traces, and health breakdowns.
	ID string `json:"id"`
	// Key is the API key presented at session open.
	Key string `json:"key"`
	// Priority is the tenant's default dispatch class: "interactive" (the
	// default) or "batch". Individual queries may override it.
	Priority string `json:"priority,omitempty"`
	// RatePerSec and Burst arm the tenant's token bucket: Burst tokens to
	// start, refilled at RatePerSec. Burst <= 0 disables rate limiting.
	// RatePerSec 0 with a positive Burst is a burst-only bucket — exactly
	// Burst queries ever admitted — which experiments use for deterministic
	// rejection counts.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	// MaxConcurrent caps the tenant's in-flight queries. 0 = unlimited.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MemCapBytes caps the tenant's share of the memory governor's budget.
	// 0 = bounded only by the global budget.
	MemCapBytes int64 `json:"mem_cap_bytes,omitempty"`
}

// Config assembles a Frontend.
type Config struct {
	// Server is the engine the frontend fronts. Either Server or Backend is
	// required; Backend wins when both are set.
	Server *serve.Server
	// Backend fronts any engine implementing the Backend surface — in
	// particular a shard.Router, which presents a replicated cluster behind
	// the same six methods a single server exposes.
	Backend Backend
	// Tenants declares the tenant set. At least one tenant is required —
	// an API with no one authorized to call it is a misconfiguration.
	Tenants []TenantConfig
	// SessionTTL bounds token lifetime. Default 1 hour.
	SessionTTL time.Duration
	// QueryTimeout, when positive, caps each query's context deadline.
	QueryTimeout time.Duration
	// Lineitems names the tables q1/q6 queries may reference.
	Lineitems map[string]*table.Table
	// Now overrides the clock (token-bucket refill, session expiry) for
	// deterministic tests. Default time.Now.
	Now func() time.Time
}

// nShards is the tenant/session map shard count. 16 is far above the
// expected tenant cardinality; the point is that two tenants hashing apart
// never contend on a lookup lock.
const nShards = 16

// tenantShard is one slice of the tenant registry.
type tenantShard struct {
	mu sync.RWMutex
	m  map[string]*tenantState
}

// sessionShard is one slice of the session table.
type sessionShard struct {
	mu sync.RWMutex
	m  map[string]*session
}

// session is one live bearer token.
type session struct {
	tenant  string
	expires time.Time
}

// tenantState is one tenant's frontend-side governance state. The struct is
// always handled by pointer (nolockcopy) and its mutex scopes only this
// tenant — cross-tenant contention is impossible by construction.
type tenantState struct {
	cfg TenantConfig

	mu       sync.Mutex
	tokens   float64   // token-bucket level
	last     time.Time // last refill
	inFlight int64     // queries between quota begin/end
	sessions int64     // live (unexpired, unclosed) sessions

	// Monotonic governance counters, mirrored into the metrics registry.
	rateLimited   int64
	quotaRejected int64
}

// Frontend is the HTTP API server state. Create with New, mount Handler on
// an http.Server. All methods are safe for concurrent use.
type Frontend struct {
	srv       Backend
	reg       *metrics.Registry
	ttl       time.Duration
	timeout   time.Duration
	now       func() time.Time
	lineitems map[string]*table.Table

	tenants  [nShards]tenantShard
	sessions [nShards]sessionShard
}

// New validates cfg and builds a Frontend, arming the engine's governor
// with each tenant's memory cap.
func New(cfg Config) (*Frontend, error) {
	backend := cfg.Backend
	if backend == nil && cfg.Server != nil {
		backend = cfg.Server
	}
	if backend == nil {
		return nil, fmt.Errorf("frontend: nil backend (set Server or Backend): %w", errs.ErrInvalidInput)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("frontend: no tenants configured: %w", errs.ErrInvalidInput)
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f := &Frontend{
		srv:       backend,
		reg:       backend.Metrics(),
		ttl:       cfg.SessionTTL,
		timeout:   cfg.QueryTimeout,
		now:       cfg.Now,
		lineitems: cfg.Lineitems,
	}
	for i := range f.tenants {
		f.tenants[i].m = make(map[string]*tenantState)
	}
	for i := range f.sessions {
		f.sessions[i].m = make(map[string]*session)
	}
	for _, tc := range cfg.Tenants {
		if tc.ID == "" || tc.Key == "" {
			return nil, fmt.Errorf("frontend: tenant needs id and key: %w", errs.ErrInvalidInput)
		}
		switch tc.Priority {
		case "":
			tc.Priority = string(serve.PriorityInteractive)
		case string(serve.PriorityInteractive), string(serve.PriorityBatch):
		default:
			return nil, fmt.Errorf("frontend: tenant %q: unknown priority %q: %w", tc.ID, tc.Priority, errs.ErrInvalidInput)
		}
		sh := f.tenantShard(tc.ID)
		sh.mu.Lock()
		_, dup := sh.m[tc.ID]
		if !dup {
			sh.m[tc.ID] = &tenantState{cfg: tc, tokens: float64(tc.Burst), last: cfg.Now()}
		}
		sh.mu.Unlock()
		if dup {
			return nil, fmt.Errorf("frontend: duplicate tenant %q: %w", tc.ID, errs.ErrInvalidInput)
		}
		if tc.MemCapBytes > 0 {
			backend.SetTenantMemCap(tc.ID, tc.MemCapBytes)
		}
	}
	return f, nil
}

// shardIdx hashes a key onto a shard.
func shardIdx(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % nShards)
}

func (f *Frontend) tenantShard(id string) *tenantShard { return &f.tenants[shardIdx(id)] }

func (f *Frontend) sessionShard(tok string) *sessionShard { return &f.sessions[shardIdx(tok)] }

// tenant looks a tenant up; the read path takes only the shard's RLock.
func (f *Frontend) tenant(id string) (*tenantState, bool) {
	sh := f.tenantShard(id)
	sh.mu.RLock()
	ts, ok := sh.m[id]
	sh.mu.RUnlock()
	return ts, ok
}

// openSession authenticates a tenant/key pair and mints a bearer token.
func (f *Frontend) openSession(tenant, key string) (token string, expires time.Time, err error) {
	ts, ok := f.tenant(tenant)
	// Compare even on unknown tenants so the two failure modes are
	// indistinguishable on the wire.
	probe := ""
	if ok {
		probe = ts.cfg.Key
	}
	if subtle.ConstantTimeCompare([]byte(probe), []byte(key)) != 1 || !ok {
		return "", time.Time{}, fmt.Errorf("frontend: bad tenant or key: %w", errUnauthenticated)
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", time.Time{}, fmt.Errorf("frontend: token generation: %w", err)
	}
	token = hex.EncodeToString(raw[:])
	expires = f.now().Add(f.ttl)
	sh := f.sessionShard(token)
	sh.mu.Lock()
	sh.m[token] = &session{tenant: tenant, expires: expires}
	sh.mu.Unlock()
	ts.mu.Lock()
	ts.sessions++
	ts.mu.Unlock()
	f.reg.Counter("frontend.sessions_opened").Inc()
	return token, expires, nil
}

// closeSession revokes a token. Reports whether the token was live.
func (f *Frontend) closeSession(token string) bool {
	sh := f.sessionShard(token)
	sh.mu.Lock()
	s, ok := sh.m[token]
	if ok {
		delete(sh.m, token)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	if ts, found := f.tenant(s.tenant); found {
		ts.mu.Lock()
		ts.sessions--
		ts.mu.Unlock()
	}
	f.reg.Counter("frontend.sessions_closed").Inc()
	return true
}

// resolveSession maps a bearer token to its tenant state, expiring lazily.
func (f *Frontend) resolveSession(token string) (*tenantState, bool) {
	if token == "" {
		return nil, false
	}
	sh := f.sessionShard(token)
	sh.mu.RLock()
	s, ok := sh.m[token]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if f.now().After(s.expires) {
		f.closeSession(token)
		return nil, false
	}
	return f.tenant(s.tenant)
}

// takeToken draws one token from the tenant's bucket. On refusal it returns
// the duration after which a token will exist (1s for burst-only buckets,
// whose refusal is permanent).
func (t *tenantState) takeToken(now time.Time) (ok bool, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Burst <= 0 {
		return true, 0
	}
	if t.cfg.RatePerSec > 0 {
		if dt := now.Sub(t.last).Seconds(); dt > 0 {
			t.tokens = math.Min(float64(t.cfg.Burst), t.tokens+dt*t.cfg.RatePerSec)
			t.last = now
		}
	}
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	t.rateLimited++
	if t.cfg.RatePerSec <= 0 {
		return false, time.Second
	}
	return false, time.Duration((1 - t.tokens) / t.cfg.RatePerSec * float64(time.Second))
}

// retryHint estimates, without consuming a token, how long this tenant
// should wait before a retry is worth making: the token bucket's time to
// the next token. It returns 0 when a token is already available — the
// refusal was engine-side, and the bucket has no opinion — or when the
// tenant has no refilling bucket to consult.
func (t *tenantState) retryHint(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Burst <= 0 || t.cfg.RatePerSec <= 0 {
		return 0
	}
	if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens = math.Min(float64(t.cfg.Burst), t.tokens+dt*t.cfg.RatePerSec)
		t.last = now
	}
	if t.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - t.tokens) / t.cfg.RatePerSec * float64(time.Second))
}

// beginQuery claims a concurrency slot; endQuery returns it.
func (t *tenantState) beginQuery() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.MaxConcurrent > 0 && t.inFlight >= int64(t.cfg.MaxConcurrent) {
		t.quotaRejected++
		return false
	}
	t.inFlight++
	return true
}

func (t *tenantState) endQuery() {
	t.mu.Lock()
	t.inFlight--
	t.mu.Unlock()
}

// govSnapshot reads the tenant's frontend-side counters.
func (t *tenantState) govSnapshot() (rateLimited, quotaRejected, inFlight, sessions int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rateLimited, t.quotaRejected, t.inFlight, t.sessions
}
