package frontend

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	v1 "hwstar/internal/frontend/v1"
	"hwstar/internal/hw"
	"hwstar/internal/shard"
)

// newShardEnv boots a replicated shard.Router as the frontend's backend,
// registered with an n-row relation whose range sums are exactly computable.
func newShardEnv(t *testing.T, n int) (*testEnv, *shard.Router, func(lo, hi int64) int64) {
	t.Helper()
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i%97) + 1
	}
	expect := func(lo, hi int64) int64 {
		var sum int64
		for i := range keys {
			if keys[i] >= lo && keys[i] <= hi {
				sum += vals[i]
			}
		}
		return sum
	}
	router, err := shard.New(context.Background(), hw.Server2S(), shard.Options{Shards: 4, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })
	if err := router.Register("facts", [][]int64{keys, vals}); err != nil {
		t.Fatal(err)
	}
	fe, err := New(Config{
		Backend: router,
		Tenants: []TenantConfig{{ID: "acme", Key: "k1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(fe.Handler())
	t.Cleanup(hs.Close)
	return &testEnv{t: t, fe: fe, hs: hs}, router, expect
}

// TestShardBackendServesQueries: the frontend runs unmodified against a
// shard.Router — same wire protocol, same session flow — and a healthy
// cluster's answers are exact and unflagged.
func TestShardBackendServesQueries(t *testing.T) {
	env, _, expect := newShardEnv(t, 8000)
	tok := env.open("acme", "k1")

	status, _, raw := env.do("POST", "/v1/query", tok, v1.QueryRequest{
		Op: v1.OpScan, Table: "facts",
		Scan: &v1.ScanArgs{FilterCol: 0, Lo: 100, Hi: 6000, AggCol: 1},
	})
	if status != http.StatusOK {
		t.Fatalf("query: HTTP %d: %s", status, raw)
	}
	var qr v1.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if want := expect(100, 6000); qr.Result.Sum != want {
		t.Fatalf("sum = %d, want %d", qr.Result.Sum, want)
	}
	if qr.Partial || qr.CoveredFraction != 0 {
		t.Fatalf("healthy cluster flagged partial: %s", raw)
	}

	// Health aggregates across shards.
	status, _, raw = env.do("GET", "/v1/health", "", nil)
	if status != http.StatusOK {
		t.Fatalf("health: HTTP %d: %s", status, raw)
	}
	var hr v1.HealthResponse
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Completed == 0 || hr.Workers == 0 {
		t.Fatalf("aggregated health empty: %s", raw)
	}
}

// TestShardBackendPartialResultOnWire: when every replica of a range is
// down, the wire answer is HTTP 200 with partial=true, covered_fraction,
// and a sum that is exactly the covered stripes' total — never a silent
// wrong sum, never a 5xx hiding a usable answer.
func TestShardBackendPartialResultOnWire(t *testing.T) {
	const n = 9000
	env, router, expect := newShardEnv(t, n)
	tok := env.open("acme", "k1")

	parts, err := router.Partitions("facts")
	if err != nil {
		t.Fatal(err)
	}
	killed := make(map[int]bool)
	for _, nid := range parts[0].Replicas {
		if err := router.KillNode(nid); err != nil {
			t.Fatal(err)
		}
		killed[nid] = true
	}
	// Killing partition 0's replicas may take other partitions down with
	// them (their replica pair can be the same two nodes); every stripe
	// whose replicas are ALL dead is lost. Partitions are contiguous row
	// stripes in partition order, so prefix sums give each stripe's range.
	var lostSum int64
	lost := 0
	lo := int64(0)
	for _, p := range parts {
		hi := lo + int64(p.Rows) - 1
		allDead := true
		for _, nid := range p.Replicas {
			if !killed[nid] {
				allDead = false
			}
		}
		if allDead {
			lostSum += expect(lo, hi)
			lost += p.Rows
		}
		lo = hi + 1
	}
	if lost <= 0 || lost >= n {
		t.Fatalf("lost stripes cover %d rows, want a proper subset of %d", lost, n)
	}

	status, _, raw := env.do("POST", "/v1/query", tok, v1.QueryRequest{
		Op: v1.OpScan, Table: "facts",
		Scan: &v1.ScanArgs{FilterCol: 0, Lo: 0, Hi: n - 1, AggCol: 1},
	})
	if status != http.StatusOK {
		t.Fatalf("partial query must be HTTP 200, got %d: %s", status, raw)
	}
	var qr v1.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial {
		t.Fatalf("partial not flagged on the wire: %s", raw)
	}
	wantSum := expect(0, n-1) - lostSum
	if qr.Result.Sum != wantSum {
		t.Fatalf("partial sum = %d, want exactly the covered stripes' %d", qr.Result.Sum, wantSum)
	}
	wantCovered := 1 - float64(lost)/n
	if diff := qr.CoveredFraction - wantCovered; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("covered_fraction = %v, want %v", qr.CoveredFraction, wantCovered)
	}
}
