// Package hw models the hardware that the keynote "Hardware killed the
// software star" (Alonso, ICDE 2013) argues data processing software must pay
// attention to: multicore sockets, deep cache hierarchies, NUMA memory,
// limited bandwidth, and TLBs.
//
// The model is deliberately analytic rather than cycle-accurate: operators
// describe the Work they perform (tuples processed, bytes streamed, random
// accesses against a working set) and a Machine converts that description
// into simulated cycles, accounting for cache-level latencies, memory-level
// parallelism, bandwidth sharing among active cores, and local/remote NUMA
// asymmetry. This is the same style of model used throughout the
// hardware-conscious database literature to explain measured behaviour, and
// it makes every experiment in this repository deterministic and
// reproducible on any host (the build host exposes a single physical core,
// so real multicore measurements are impossible).
package hw

import (
	"fmt"
	"math"
)

// KiB, MiB and GiB are byte-size helpers used by machine profiles.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	// Name is a human label such as "L1d" or "L3".
	Name string
	// SizeBytes is the capacity of the cache. For levels with
	// SharedPerSocket set, this is the capacity shared by all cores of a
	// socket; otherwise it is per core.
	SizeBytes int64
	// LineBytes is the cache line size.
	LineBytes int64
	// Assoc is the set associativity (used by the trace-driven simulator in
	// internal/cache; the analytic model only uses size and latency).
	Assoc int
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles float64
	// SharedPerSocket marks socket-shared levels (typically the LLC).
	SharedPerSocket bool
}

// Machine is a parameterized description of a server. All latencies are in
// core clock cycles; all bandwidths are in bytes per core clock cycle so that
// cycle arithmetic needs no unit conversions.
type Machine struct {
	// Name identifies the profile in experiment output.
	Name string
	// Sockets and CoresPerSocket define the topology.
	Sockets        int
	CoresPerSocket int
	// FreqGHz converts cycles to wall-clock seconds in reports.
	FreqGHz float64
	// Caches lists the hierarchy from closest (L1) to farthest (LLC).
	Caches []CacheLevel

	// TLBEntries is the number of data-TLB entries; PageBytes the page size.
	TLBEntries    int
	PageBytes     int64
	TLBMissCycles float64
	// HugeTLBEntries and HugePageBytes describe the large-page TLB (zero
	// disables hugepage support). Allocating a structure on hugepages
	// multiplies its TLB reach by HugePageBytes/PageBytes — the standard
	// remedy for TLB-thrashed multi-megabyte working sets.
	HugeTLBEntries int
	HugePageBytes  int64

	// MemLatencyCycles is the latency of a local DRAM access;
	// RemoteLatencyCycles that of an access to another socket's memory.
	MemLatencyCycles    float64
	RemoteLatencyCycles float64

	// MemBWPerSocket is the local DRAM streaming bandwidth available to one
	// socket, in bytes per cycle. CoreStreamBW caps what a single core can
	// stream even when the socket is otherwise idle.
	MemBWPerSocket float64
	CoreStreamBW   float64
	// InterconnectBW is the cross-socket link bandwidth in bytes per cycle.
	InterconnectBW float64
	// SpillBWPerSocket is the streaming bandwidth of the spill tier — the
	// slower memory a governed operator overflows to when its working set
	// exceeds its budget (NVMe, CXL-attached memory, a fast network drive).
	// Zero means "an order of magnitude below DRAM": MemBWPerSocket/8.
	SpillBWPerSocket float64
	// FlashBWPerSocket is the streaming bandwidth of the durable flash tier
	// — the device the store checkpoints to and recovers from, and where
	// cold segments live under the DRAM/flash tiering policy. Zero means
	// "well below the spill tier": MemBWPerSocket/16.
	FlashBWPerSocket float64

	// MLP is the memory-level parallelism: how many independent random
	// misses a core can keep in flight. Effective random-access latency is
	// divided by min(MLP, available parallelism).
	MLP float64

	// BranchMissCycles is the pipeline refill penalty of a mispredicted
	// branch.
	BranchMissCycles float64

	// WattsPerCoreActive and WattsIdle feed the energy model in
	// internal/energy. Power here is at nominal frequency.
	WattsPerCoreActive float64
	WattsIdle          float64
}

// TotalCores returns Sockets × CoresPerSocket.
func (m *Machine) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// LLC returns the last-level cache description.
func (m *Machine) LLC() CacheLevel { return m.Caches[len(m.Caches)-1] }

// LineBytes returns the cache line size of the first level (all profiles use
// a uniform line size).
func (m *Machine) LineBytes() int64 { return m.Caches[0].LineBytes }

// TLBReach returns the number of bytes covered by the TLB.
func (m *Machine) TLBReach() int64 { return int64(m.TLBEntries) * m.PageBytes }

// HugeTLBReach returns the bytes covered by the large-page TLB (0 when the
// machine has no hugepage support).
func (m *Machine) HugeTLBReach() int64 { return int64(m.HugeTLBEntries) * m.HugePageBytes }

// Validate reports an error when the profile is internally inconsistent.
func (m *Machine) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 {
		return fmt.Errorf("hw: machine %q: topology must be positive, got %d sockets × %d cores",
			m.Name, m.Sockets, m.CoresPerSocket)
	}
	if len(m.Caches) == 0 {
		return fmt.Errorf("hw: machine %q: needs at least one cache level", m.Name)
	}
	var prevSize int64
	var prevLat float64
	for i, c := range m.Caches {
		if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.LatencyCycles <= 0 {
			return fmt.Errorf("hw: machine %q: cache %s has non-positive parameters", m.Name, c.Name)
		}
		if i > 0 && (c.SizeBytes < prevSize || c.LatencyCycles < prevLat) {
			return fmt.Errorf("hw: machine %q: cache %s must be larger and slower than the previous level", m.Name, c.Name)
		}
		prevSize, prevLat = c.SizeBytes, c.LatencyCycles
	}
	if m.MemLatencyCycles < m.LLC().LatencyCycles {
		return fmt.Errorf("hw: machine %q: DRAM latency below LLC latency", m.Name)
	}
	if m.Sockets > 1 && m.RemoteLatencyCycles < m.MemLatencyCycles {
		return fmt.Errorf("hw: machine %q: remote latency below local latency", m.Name)
	}
	if m.MemBWPerSocket <= 0 || m.CoreStreamBW <= 0 {
		return fmt.Errorf("hw: machine %q: bandwidths must be positive", m.Name)
	}
	if m.Sockets > 1 && m.InterconnectBW <= 0 {
		return fmt.Errorf("hw: machine %q: multi-socket machine needs interconnect bandwidth", m.Name)
	}
	if m.MLP < 1 {
		return fmt.Errorf("hw: machine %q: MLP must be >= 1", m.Name)
	}
	if m.PageBytes <= 0 || m.TLBEntries <= 0 {
		return fmt.Errorf("hw: machine %q: TLB parameters must be positive", m.Name)
	}
	return nil
}

// RandomLatency returns the average latency in cycles of one dependent random
// access into a working set of ws bytes, before memory-level parallelism is
// applied. The access hits the smallest cache level that contains the working
// set; beyond the TLB reach every access additionally pays an expected
// TLB-miss cost, regardless of which cache level holds the data — the TLB
// saturates long before the LLC does (this matches the trace-driven
// simulator, see experiment E18).
func (m *Machine) RandomLatency(ws int64) float64 {
	lat := m.MemLatencyCycles
	for _, c := range m.Caches {
		if ws <= c.SizeBytes {
			lat = c.LatencyCycles
			break
		}
	}
	return lat + m.expectedTLBMiss(ws, false)
}

// RandomLatencyHuge is RandomLatency for a structure allocated on hugepages:
// the same cache behaviour, but TLB reach comes from the large-page TLB.
func (m *Machine) RandomLatencyHuge(ws int64) float64 {
	lat := m.MemLatencyCycles
	for _, c := range m.Caches {
		if ws <= c.SizeBytes {
			lat = c.LatencyCycles
			break
		}
	}
	return lat + m.expectedTLBMiss(ws, true)
}

// expectedTLBMiss returns the expected per-access TLB-miss cost for a random
// working set of ws bytes: the miss probability grows with how far the set
// exceeds the (huge or base) TLB reach.
func (m *Machine) expectedTLBMiss(ws int64, huge bool) float64 {
	reach := m.TLBReach()
	if huge && m.HugeTLBReach() > reach {
		reach = m.HugeTLBReach()
	}
	if ws <= reach {
		return 0
	}
	missProb := 1 - float64(reach)/float64(ws)
	return missProb * m.TLBMissCycles
}

// RemoteRandomLatency is RandomLatency for an access that must cross the
// socket interconnect (the caches do not help a truly remote access pattern,
// so only working sets within the LLC are exempted).
func (m *Machine) RemoteRandomLatency(ws int64) float64 {
	if ws <= m.LLC().SizeBytes {
		// Still cache-resident: remote placement is irrelevant once lines
		// are loaded.
		return m.RandomLatency(ws)
	}
	return m.RemoteLatencyCycles + m.expectedTLBMiss(ws, false)
}

// StreamBandwidth returns the per-core streaming bandwidth in bytes/cycle when
// activeCores cores on the same socket stream from local memory concurrently.
// A single core is limited by CoreStreamBW; as cores are added the socket
// bandwidth is shared evenly.
func (m *Machine) StreamBandwidth(activeCores int) float64 {
	if activeCores < 1 {
		activeCores = 1
	}
	if activeCores > m.CoresPerSocket {
		activeCores = m.CoresPerSocket
	}
	share := m.MemBWPerSocket / float64(activeCores)
	return math.Min(m.CoreStreamBW, share)
}

// RemoteStreamBandwidth is StreamBandwidth for cross-socket streaming, which
// is additionally capped by the interconnect shared by the streaming cores.
func (m *Machine) RemoteStreamBandwidth(activeCores int) float64 {
	if m.Sockets <= 1 {
		return m.StreamBandwidth(activeCores)
	}
	if activeCores < 1 {
		activeCores = 1
	}
	local := m.StreamBandwidth(activeCores)
	link := m.InterconnectBW / float64(activeCores)
	return math.Min(local, link)
}

// SpillBandwidth returns the per-core spill-tier streaming bandwidth in
// bytes/cycle when activeCores cores on the same socket spill concurrently.
// The tier's socket bandwidth (SpillBWPerSocket, defaulting to an eighth of
// DRAM bandwidth) is shared evenly — spilling cores queue on the same device.
func (m *Machine) SpillBandwidth(activeCores int) float64 {
	if activeCores < 1 {
		activeCores = 1
	}
	if activeCores > m.CoresPerSocket {
		activeCores = m.CoresPerSocket
	}
	bw := m.SpillBWPerSocket
	if bw <= 0 {
		bw = m.MemBWPerSocket / 8
	}
	return bw / float64(activeCores)
}

// FlashBandwidth returns the per-core flash-tier streaming bandwidth in
// bytes/cycle when activeCores cores stream checkpoint or recovery traffic
// concurrently. The durable tier's socket bandwidth (FlashBWPerSocket,
// defaulting to a sixteenth of DRAM bandwidth) is shared evenly — a
// background checkpoint and a cold-segment load queue on the same device.
func (m *Machine) FlashBandwidth(activeCores int) float64 {
	if activeCores < 1 {
		activeCores = 1
	}
	if activeCores > m.CoresPerSocket {
		activeCores = m.CoresPerSocket
	}
	bw := m.FlashBWPerSocket
	if bw <= 0 {
		bw = m.MemBWPerSocket / 16
	}
	return bw / float64(activeCores)
}

// ContentionFactor models DRAM latency inflation under load: when many cores
// issue random misses concurrently, queueing at the memory controller raises
// effective latency. The factor is 1 for a single active core and grows
// linearly with utilization up to 2× at full socket occupancy — the shape
// measured in the multicore join literature.
func (m *Machine) ContentionFactor(activeCoresOnSocket int) float64 {
	if activeCoresOnSocket <= 1 {
		return 1
	}
	if activeCoresOnSocket > m.CoresPerSocket {
		activeCoresOnSocket = m.CoresPerSocket
	}
	util := float64(activeCoresOnSocket-1) / float64(m.CoresPerSocket-1)
	return 1 + util
}

// CyclesToSeconds converts simulated cycles to seconds on this machine.
func (m *Machine) CyclesToSeconds(cycles float64) float64 {
	return cycles / (m.FreqGHz * 1e9)
}

// String implements fmt.Stringer with a compact topology description.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d×%d cores @ %.1fGHz, LLC %dMiB, DRAM %.0f cyc (remote %.0f)",
		m.Name, m.Sockets, m.CoresPerSocket, m.FreqGHz,
		m.LLC().SizeBytes/MiB, m.MemLatencyCycles, m.RemoteLatencyCycles)
}
