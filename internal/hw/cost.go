package hw

import (
	"fmt"
	"math"
)

// Cost is the modeled hardware cost every hwstar operation reports alongside
// its real result. Result structs embed it, so callers read res.SimCycles
// uniformly across joins, aggregations, shared scans, queries, and server
// responses.
type Cost struct {
	// SimCycles is the simulated cycle cost on the operation's machine: the
	// parallel makespan for scheduled operators, the accounted total for
	// single-threaded ones, and the amortized per-query share for batched
	// server execution.
	SimCycles float64
}

// Work describes, in hardware-relevant terms, what a piece of code did. It is
// the vocabulary in which hwstar operators talk to the machine model:
// instead of "I hashed 16M tuples", an operator reports "16M tuples × 6
// compute cycles, 128 MiB streamed sequentially, 16M random reads against a
// 256 MiB working set". The machine model prices that description.
type Work struct {
	// Name labels the work item in cost breakdowns.
	Name string

	// Tuples is the number of items processed; ComputePerTuple the pure
	// ALU/branch cost per item in cycles (data already in registers/L1).
	Tuples          int64
	ComputePerTuple float64

	// SeqReadBytes and SeqWriteBytes are bytes streamed sequentially against
	// local memory. RemoteSeqBytes are bytes streamed across the socket
	// interconnect.
	SeqReadBytes   int64
	SeqWriteBytes  int64
	RemoteSeqBytes int64

	// SpillWriteBytes and SpillReadBytes are bytes streamed to and from the
	// simulated spill tier (see Machine.SpillBandwidth) when a governed
	// operator's working set exceeds its memory reservation.
	SpillWriteBytes int64
	SpillReadBytes  int64

	// RandomReads are dependent random accesses into a working set of
	// RandomWS bytes (which determines the cache level that services them).
	// RemoteRandomReads are random accesses to memory on another socket.
	RandomReads       int64
	RandomWS          int64
	RemoteRandomReads int64

	// BranchMisses counts mispredicted branches beyond what
	// ComputePerTuple already includes.
	BranchMisses int64

	// MLPBoost multiplies the machine's memory-level parallelism for this
	// work's DRAM-class random accesses. Software techniques like group
	// prefetching and AMAC restructure probe loops so more misses overlap;
	// values below 1 are treated as 1 (no boost).
	MLPBoost float64

	// IndependentAccesses marks random accesses that carry no dependence at
	// all — each is a single load whose address is known up front (e.g. one
	// blocked-Bloom-filter line per probe). The out-of-order core overlaps
	// these at every level of the hierarchy, so MLP amortization applies
	// even to cache-resident working sets. Dependent chains (hash-table
	// walks, tree descents) must leave this false.
	IndependentAccesses bool

	// HugePages marks structures allocated on large pages: their random
	// accesses use the large-page TLB reach (see Machine.HugeTLBEntries).
	HugePages bool
}

// Add returns the component-wise sum of two Work descriptions. The working
// set of the result is the larger of the two (a conservative choice used when
// merging per-phase accounts).
func (w Work) Add(o Work) Work {
	sum := Work{
		Name:              w.Name,
		Tuples:            w.Tuples + o.Tuples,
		SeqReadBytes:      w.SeqReadBytes + o.SeqReadBytes,
		SeqWriteBytes:     w.SeqWriteBytes + o.SeqWriteBytes,
		RemoteSeqBytes:    w.RemoteSeqBytes + o.RemoteSeqBytes,
		SpillWriteBytes:   w.SpillWriteBytes + o.SpillWriteBytes,
		SpillReadBytes:    w.SpillReadBytes + o.SpillReadBytes,
		RandomReads:       w.RandomReads + o.RandomReads,
		RemoteRandomReads: w.RemoteRandomReads + o.RemoteRandomReads,
		BranchMisses:      w.BranchMisses + o.BranchMisses,
		RandomWS:          max64(w.RandomWS, o.RandomWS),
	}
	// Preserve a meaningful average compute cost per tuple.
	if sum.Tuples > 0 {
		sum.ComputePerTuple = (float64(w.Tuples)*w.ComputePerTuple + float64(o.Tuples)*o.ComputePerTuple) / float64(sum.Tuples)
	}
	return sum
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CostBreakdown itemizes where simulated cycles went.
type CostBreakdown struct {
	Compute      float64
	Streaming    float64
	RandomAccess float64
	Branches     float64
	// Spill is the cycle cost of traffic to and from the spill tier.
	Spill float64
}

// Total returns the sum of all components.
func (c CostBreakdown) Total() float64 {
	return c.Compute + c.Streaming + c.RandomAccess + c.Branches + c.Spill
}

// String renders the breakdown for experiment logs.
func (c CostBreakdown) String() string {
	s := fmt.Sprintf("total=%.0f (compute=%.0f stream=%.0f random=%.0f branch=%.0f",
		c.Total(), c.Compute, c.Streaming, c.RandomAccess, c.Branches)
	if c.Spill > 0 {
		s += fmt.Sprintf(" spill=%.0f", c.Spill)
	}
	return s + ")"
}

// ExecContext tells the cost model under which conditions work executes:
// how many sibling cores on the same socket are active (bandwidth sharing and
// controller contention) and a latency multiplier from external interference
// (used by internal/vmsim).
type ExecContext struct {
	ActiveCoresOnSocket int
	// InterferenceFactor multiplies memory latencies and divides bandwidth;
	// 1 means an undisturbed machine. Values >1 model noisy neighbours.
	InterferenceFactor float64
}

// DefaultContext is a single active core on an otherwise idle machine.
func DefaultContext() ExecContext {
	return ExecContext{ActiveCoresOnSocket: 1, InterferenceFactor: 1}
}

func (e ExecContext) normalized() ExecContext {
	if e.ActiveCoresOnSocket < 1 {
		e.ActiveCoresOnSocket = 1
	}
	if e.InterferenceFactor < 1 {
		e.InterferenceFactor = 1
	}
	return e
}

// Cost prices a Work description on this machine under the given execution
// context, returning the itemized cycle breakdown for one core executing the
// work serially.
func (m *Machine) Cost(w Work, ctx ExecContext) CostBreakdown {
	ctx = ctx.normalized()
	var c CostBreakdown

	c.Compute = float64(w.Tuples) * w.ComputePerTuple
	c.Branches = float64(w.BranchMisses) * m.BranchMissCycles

	// Streaming: bandwidth shared among active cores, degraded by
	// interference.
	localBW := m.StreamBandwidth(ctx.ActiveCoresOnSocket) / ctx.InterferenceFactor
	seqBytes := float64(w.SeqReadBytes + w.SeqWriteBytes)
	c.Streaming = seqBytes / localBW
	if w.RemoteSeqBytes > 0 {
		remoteBW := m.RemoteStreamBandwidth(ctx.ActiveCoresOnSocket) / ctx.InterferenceFactor
		c.Streaming += float64(w.RemoteSeqBytes) / remoteBW
	}

	// Spill-tier traffic: streamed sequentially against the (much slower)
	// spill device, shared among the spilling cores and degraded by
	// interference like any other bandwidth.
	if spill := w.SpillWriteBytes + w.SpillReadBytes; spill > 0 {
		spillBW := m.SpillBandwidth(ctx.ActiveCoresOnSocket) / ctx.InterferenceFactor
		c.Spill = float64(spill) / spillBW
	}

	// Random accesses: base latency for the working set, inflated by
	// controller contention and interference, amortized by memory-level
	// parallelism when the working set is beyond the LLC (cache hits are
	// already pipelined and get no extra MLP benefit).
	boost := w.MLPBoost
	if boost < 1 {
		boost = 1
	}
	if w.RandomReads > 0 {
		lat := m.RandomLatency(w.RandomWS)
		if w.HugePages {
			lat = m.RandomLatencyHuge(w.RandomWS)
		}
		lat = m.applyMemoryPressure(lat, w.RandomWS, ctx, boost)
		if w.IndependentAccesses && w.RandomWS <= m.LLC().SizeBytes {
			// Cache-resident independent loads overlap too; DRAM-class
			// accesses were already amortized inside applyMemoryPressure.
			lat = maxF(lat/(m.MLP*boost), 1)
		}
		c.RandomAccess += float64(w.RandomReads) * lat
	}
	if w.RemoteRandomReads > 0 {
		lat := m.RemoteRandomLatency(w.RandomWS)
		lat = m.applyMemoryPressure(lat, w.RandomWS, ctx, boost)
		c.RandomAccess += float64(w.RemoteRandomReads) * lat
	}
	return c
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// applyMemoryPressure inflates a DRAM-class latency by contention and
// interference and amortizes it by achieved MLP (machine MLP times any
// software boost). Cache-resident working sets are only subject to
// interference (a polluted cache still costs more).
func (m *Machine) applyMemoryPressure(lat float64, ws int64, ctx ExecContext, mlpBoost float64) float64 {
	if ws <= m.LLC().SizeBytes {
		return lat * math.Sqrt(ctx.InterferenceFactor)
	}
	lat *= m.ContentionFactor(ctx.ActiveCoresOnSocket)
	lat *= ctx.InterferenceFactor
	return lat / (m.MLP * mlpBoost)
}

// Cycles is shorthand for Cost(w, ctx).Total().
func (m *Machine) Cycles(w Work, ctx ExecContext) float64 {
	return m.Cost(w, ctx).Total()
}

// Account accumulates Work and priced cycles over the phases of an operator,
// so experiments can report both a total and a per-phase breakdown.
type Account struct {
	machine *Machine
	ctx     ExecContext
	phases  []phaseCost
	total   CostBreakdown
}

type phaseCost struct {
	name string
	cost CostBreakdown
}

// NewAccount creates an account that prices work on m under ctx.
func NewAccount(m *Machine, ctx ExecContext) *Account {
	return &Account{machine: m, ctx: ctx.normalized()}
}

// Charge prices w and adds it to the account, returning the cycles charged.
func (a *Account) Charge(w Work) float64 {
	c := a.machine.Cost(w, a.ctx)
	a.phases = append(a.phases, phaseCost{name: w.Name, cost: c})
	a.total.Compute += c.Compute
	a.total.Streaming += c.Streaming
	a.total.RandomAccess += c.RandomAccess
	a.total.Branches += c.Branches
	a.total.Spill += c.Spill
	return c.Total()
}

// TotalCycles returns all cycles charged so far.
func (a *Account) TotalCycles() float64 { return a.total.Total() }

// Breakdown returns the accumulated itemized cost.
func (a *Account) Breakdown() CostBreakdown { return a.total }

// Phases returns "name: cycles" lines for each charged phase, in order.
func (a *Account) Phases() []string {
	out := make([]string, len(a.phases))
	for i, p := range a.phases {
		out[i] = fmt.Sprintf("%s: %.0f", p.name, p.cost.Total())
	}
	return out
}

// Machine returns the machine this account prices against.
func (a *Account) Machine() *Machine { return a.machine }

// Context returns the execution context of this account.
func (a *Account) Context() ExecContext { return a.ctx }
