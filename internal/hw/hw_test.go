package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValidate(t *testing.T) {
	for name, m := range Profiles() {
		if err := m.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"zero sockets", func(m *Machine) { m.Sockets = 0 }},
		{"no caches", func(m *Machine) { m.Caches = nil }},
		{"shrinking cache", func(m *Machine) { m.Caches[1].SizeBytes = 1 }},
		{"fast DRAM", func(m *Machine) { m.MemLatencyCycles = 1 }},
		{"remote faster than local", func(m *Machine) { m.RemoteLatencyCycles = 10 }},
		{"zero bandwidth", func(m *Machine) { m.MemBWPerSocket = 0 }},
		{"zero MLP", func(m *Machine) { m.MLP = 0 }},
		{"zero TLB", func(m *Machine) { m.TLBEntries = 0 }},
	}
	for _, tc := range cases {
		m := Server2S()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid machine", tc.name)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	m := NUMA4S()
	if got := m.TotalCores(); got != 64 {
		t.Fatalf("TotalCores = %d, want 64", got)
	}
	if m.LLC().Name != "L3" {
		t.Fatalf("LLC = %s, want L3", m.LLC().Name)
	}
	if m.LineBytes() != 64 {
		t.Fatalf("LineBytes = %d, want 64", m.LineBytes())
	}
	if got := m.TLBReach(); got != int64(m.TLBEntries)*m.PageBytes {
		t.Fatalf("TLBReach = %d", got)
	}
	if m.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestRandomLatencyMonotoneInWorkingSet(t *testing.T) {
	m := Server2S()
	sizes := []int64{1 * KiB, 16 * KiB, 64 * KiB, 1 * MiB, 8 * MiB, 64 * MiB, 1 * GiB, 16 * GiB}
	prev := 0.0
	for _, ws := range sizes {
		lat := m.RandomLatency(ws)
		if lat < prev {
			t.Fatalf("latency decreased at ws=%d: %f < %f", ws, lat, prev)
		}
		prev = lat
	}
}

func TestRandomLatencyLevels(t *testing.T) {
	m := Server2S()
	if got := m.RandomLatency(16 * KiB); got != 4 {
		t.Fatalf("L1-resident latency = %f, want 4", got)
	}
	if got := m.RandomLatency(128 * KiB); got != 12 {
		t.Fatalf("L2-resident latency = %f, want 12", got)
	}
	// L3-resident but far beyond the 256 KiB TLB reach: base 40 cycles plus
	// the expected TLB-miss cost.
	wantL3 := 40 + (1-0.025)*35.0
	if got := m.RandomLatency(10 * MiB); math.Abs(got-wantL3) > 1e-9 {
		t.Fatalf("L3-resident latency = %f, want %f", got, wantL3)
	}
	// Within TLB reach the cache latency is pure.
	if got := m.RandomLatency(200 * KiB); got != 12 {
		t.Fatalf("TLB-covered L2 latency = %f, want 12", got)
	}
	// Beyond LLC but within TLB reach would need ws <= 256KiB, so a large
	// working set always includes some TLB-miss cost.
	big := m.RandomLatency(4 * GiB)
	if big <= m.MemLatencyCycles {
		t.Fatalf("huge working set latency %f should exceed pure DRAM latency %f", big, m.MemLatencyCycles)
	}
}

func TestRemoteRandomLatencyExceedsLocal(t *testing.T) {
	m := NUMA4S()
	ws := int64(1 * GiB)
	local, remote := m.RandomLatency(ws), m.RemoteRandomLatency(ws)
	if remote <= local {
		t.Fatalf("remote %f should exceed local %f", remote, local)
	}
	// Cache-resident working sets should not pay the remote penalty.
	small := int64(1 * MiB)
	if m.RemoteRandomLatency(small) != m.RandomLatency(small) {
		t.Fatalf("cache-resident remote latency should equal local")
	}
}

func TestStreamBandwidthSharing(t *testing.T) {
	m := Server2S()
	one := m.StreamBandwidth(1)
	if one != m.CoreStreamBW {
		t.Fatalf("single-core BW = %f, want core cap %f", one, m.CoreStreamBW)
	}
	all := m.StreamBandwidth(m.CoresPerSocket)
	if want := m.MemBWPerSocket / float64(m.CoresPerSocket); math.Abs(all-want) > 1e-12 {
		t.Fatalf("full-socket per-core BW = %f, want %f", all, want)
	}
	// Monotone non-increasing in active cores.
	prev := math.Inf(1)
	for c := 1; c <= m.CoresPerSocket; c++ {
		bw := m.StreamBandwidth(c)
		if bw > prev {
			t.Fatalf("bandwidth increased at %d cores", c)
		}
		prev = bw
	}
	// Aggregate bandwidth must never exceed the socket limit.
	for c := 1; c <= m.CoresPerSocket; c++ {
		if agg := m.StreamBandwidth(c) * float64(c); agg > m.MemBWPerSocket+1e-9 {
			t.Fatalf("aggregate BW %f exceeds socket limit at %d cores", agg, c)
		}
	}
}

func TestRemoteStreamBandwidthCappedByInterconnect(t *testing.T) {
	m := NUMA4S()
	for c := 1; c <= m.CoresPerSocket; c++ {
		if rb, lb := m.RemoteStreamBandwidth(c), m.StreamBandwidth(c); rb > lb {
			t.Fatalf("remote BW %f exceeds local %f at %d cores", rb, lb, c)
		}
		if agg := m.RemoteStreamBandwidth(c) * float64(c); agg > m.InterconnectBW+1e-9 {
			t.Fatalf("aggregate remote BW %f exceeds interconnect at %d cores", agg, c)
		}
	}
	// Single socket machine: remote == local.
	l := Manycore()
	if l.RemoteStreamBandwidth(3) != l.StreamBandwidth(3) {
		t.Fatal("single-socket remote BW should equal local")
	}
}

func TestContentionFactorRange(t *testing.T) {
	m := Server2S()
	if got := m.ContentionFactor(1); got != 1 {
		t.Fatalf("contention(1) = %f, want 1", got)
	}
	if got := m.ContentionFactor(m.CoresPerSocket); math.Abs(got-2) > 1e-12 {
		t.Fatalf("contention(full) = %f, want 2", got)
	}
	if got := m.ContentionFactor(100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("contention should clamp to socket size")
	}
}

func TestCostComponents(t *testing.T) {
	m := Server2S()
	ctx := DefaultContext()

	// Pure compute.
	c := m.Cost(Work{Tuples: 1000, ComputePerTuple: 3}, ctx)
	if c.Compute != 3000 || c.Streaming != 0 || c.RandomAccess != 0 {
		t.Fatalf("pure compute mispriced: %+v", c)
	}

	// Pure streaming: bytes / core bandwidth.
	c = m.Cost(Work{SeqReadBytes: 1000}, ctx)
	if want := 1000 / m.CoreStreamBW; math.Abs(c.Streaming-want) > 1e-9 {
		t.Fatalf("streaming = %f, want %f", c.Streaming, want)
	}

	// Random access in L1: latency not divided by MLP.
	c = m.Cost(Work{RandomReads: 100, RandomWS: 8 * KiB}, ctx)
	if want := 100 * 4.0; math.Abs(c.RandomAccess-want) > 1e-9 {
		t.Fatalf("L1 random = %f, want %f", c.RandomAccess, want)
	}

	// Branch misses.
	c = m.Cost(Work{BranchMisses: 10}, ctx)
	if want := 10 * m.BranchMissCycles; math.Abs(c.Branches-want) > 1e-9 {
		t.Fatalf("branches = %f, want %f", c.Branches, want)
	}
}

func TestCostDRAMRandomUsesMLP(t *testing.T) {
	m := Server2S()
	ctx := DefaultContext()
	ws := int64(4 * GiB)
	c := m.Cost(Work{RandomReads: 1000, RandomWS: ws}, ctx)
	perAccess := c.RandomAccess / 1000
	raw := m.RandomLatency(ws)
	if perAccess >= raw {
		t.Fatalf("MLP should amortize DRAM latency: %f >= %f", perAccess, raw)
	}
	if want := raw / m.MLP; math.Abs(perAccess-want) > 1e-9 {
		t.Fatalf("per-access = %f, want %f", perAccess, want)
	}
}

func TestCostInterferenceSlowsMemory(t *testing.T) {
	m := Server2S()
	w := Work{SeqReadBytes: 1 << 20, RandomReads: 1000, RandomWS: 1 * GiB}
	base := m.Cycles(w, ExecContext{ActiveCoresOnSocket: 1, InterferenceFactor: 1})
	noisy := m.Cycles(w, ExecContext{ActiveCoresOnSocket: 1, InterferenceFactor: 2})
	if noisy <= base {
		t.Fatalf("interference should slow memory-bound work: %f <= %f", noisy, base)
	}
	// Compute-bound work is unaffected.
	cw := Work{Tuples: 1000, ComputePerTuple: 5}
	if m.Cycles(cw, ExecContext{ActiveCoresOnSocket: 1, InterferenceFactor: 3}) != m.Cycles(cw, DefaultContext()) {
		t.Fatal("interference should not slow pure compute")
	}
}

func TestCostMoreActiveCoresMoreCyclesPerCore(t *testing.T) {
	m := Server2S()
	w := Work{SeqReadBytes: 64 << 20, RandomReads: 1 << 20, RandomWS: 1 * GiB}
	solo := m.Cycles(w, ExecContext{ActiveCoresOnSocket: 1, InterferenceFactor: 1})
	crowded := m.Cycles(w, ExecContext{ActiveCoresOnSocket: m.CoresPerSocket, InterferenceFactor: 1})
	if crowded <= solo {
		t.Fatalf("sharing a socket should inflate per-core cycles: %f <= %f", crowded, solo)
	}
}

func TestWorkAdd(t *testing.T) {
	a := Work{Name: "a", Tuples: 10, ComputePerTuple: 2, SeqReadBytes: 100, RandomReads: 5, RandomWS: 1000}
	b := Work{Name: "b", Tuples: 30, ComputePerTuple: 4, SeqWriteBytes: 50, RemoteRandomReads: 7, RandomWS: 2000, BranchMisses: 3}
	s := a.Add(b)
	if s.Tuples != 40 || s.SeqReadBytes != 100 || s.SeqWriteBytes != 50 {
		t.Fatalf("bad sums: %+v", s)
	}
	if s.RandomWS != 2000 {
		t.Fatalf("working set should take max, got %d", s.RandomWS)
	}
	if want := (10.0*2 + 30.0*4) / 40.0; math.Abs(s.ComputePerTuple-want) > 1e-12 {
		t.Fatalf("weighted compute = %f, want %f", s.ComputePerTuple, want)
	}
	if s.RandomReads != 5 || s.RemoteRandomReads != 7 || s.BranchMisses != 3 {
		t.Fatalf("bad sums: %+v", s)
	}
}

func TestAccountAccumulates(t *testing.T) {
	m := Laptop()
	acct := NewAccount(m, DefaultContext())
	c1 := acct.Charge(Work{Name: "build", Tuples: 100, ComputePerTuple: 2})
	c2 := acct.Charge(Work{Name: "probe", SeqReadBytes: 6400})
	if math.Abs(acct.TotalCycles()-(c1+c2)) > 1e-9 {
		t.Fatalf("total %f != %f + %f", acct.TotalCycles(), c1, c2)
	}
	ph := acct.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %v", ph)
	}
	if acct.Machine() != m {
		t.Fatal("Machine() mismatch")
	}
	if acct.Breakdown().Total() != acct.TotalCycles() {
		t.Fatal("breakdown total mismatch")
	}
}

// Property: cost is additive — pricing a+b equals pricing a plus pricing b
// for compute/streaming/branch components under identical context (random
// access costs are additive only at equal working sets, so we fix RandomWS).
func TestCostAdditivityProperty(t *testing.T) {
	m := Server2S()
	ctx := ExecContext{ActiveCoresOnSocket: 4, InterferenceFactor: 1.5}
	f := func(t1, t2 uint16, b1, b2 uint16, r1, r2 uint8) bool {
		ws := int64(512 * MiB)
		wa := Work{Tuples: int64(t1), ComputePerTuple: 2, SeqReadBytes: int64(b1), RandomReads: int64(r1), RandomWS: ws}
		wb := Work{Tuples: int64(t2), ComputePerTuple: 2, SeqReadBytes: int64(b2), RandomReads: int64(r2), RandomWS: ws}
		lhs := m.Cycles(wa.Add(wb), ctx)
		rhs := m.Cycles(wa, ctx) + m.Cycles(wb, ctx)
		return math.Abs(lhs-rhs) < 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := Laptop()
	if got := m.CyclesToSeconds(2.6e9); math.Abs(got-1) > 1e-9 {
		t.Fatalf("2.6e9 cycles = %f s, want 1", got)
	}
}

func TestExecContextNormalization(t *testing.T) {
	m := Laptop()
	bad := ExecContext{ActiveCoresOnSocket: 0, InterferenceFactor: 0}
	good := DefaultContext()
	w := Work{SeqReadBytes: 4096, RandomReads: 10, RandomWS: 1 * GiB}
	if m.Cycles(w, bad) != m.Cycles(w, good) {
		t.Fatal("zero-valued context should normalize to default")
	}
}

func TestIndependentAccessesOverlapInCache(t *testing.T) {
	m := Server2S()
	ctx := DefaultContext()
	ws := int64(2 * MiB) // LLC-resident
	dep := Work{RandomReads: 1000, RandomWS: ws}
	ind := Work{RandomReads: 1000, RandomWS: ws, IndependentAccesses: true}
	cd, ci := m.Cycles(dep, ctx), m.Cycles(ind, ctx)
	if ci >= cd {
		t.Fatalf("independent cache-resident accesses %f should be cheaper than dependent %f", ci, cd)
	}
	if want := cd / m.MLP; math.Abs(ci-want) > 1e-9 {
		t.Fatalf("independent latency = %f, want %f", ci, want)
	}
	// DRAM-class accesses are already MLP-amortized: the flag adds nothing.
	big := int64(4 * GiB)
	depBig := Work{RandomReads: 1000, RandomWS: big}
	indBig := Work{RandomReads: 1000, RandomWS: big, IndependentAccesses: true}
	if m.Cycles(depBig, ctx) != m.Cycles(indBig, ctx) {
		t.Fatal("DRAM-class independent accesses should price the same")
	}
	// Latency never drops below one cycle.
	tiny := Work{RandomReads: 100, RandomWS: 1 * KiB, IndependentAccesses: true, MLPBoost: 100}
	if got := m.Cycles(tiny, ctx); got < 100 {
		t.Fatalf("per-access latency floored at 1 cycle, got %f total", got)
	}
}

func TestHugeTLB(t *testing.T) {
	m := Server2S()
	if m.HugeTLBReach() != int64(m.HugeTLBEntries)*m.HugePageBytes {
		t.Fatal("HugeTLBReach arithmetic wrong")
	}
	// A 4 MiB working set: base pages thrash the TLB, hugepages cover it.
	ws := int64(4 * MiB)
	base := m.RandomLatency(ws)
	huge := m.RandomLatencyHuge(ws)
	if huge >= base {
		t.Fatalf("hugepage latency %f should beat base-page %f", huge, base)
	}
	if huge != m.LLC().LatencyCycles {
		t.Fatalf("hugepage L3-resident latency = %f, want pure %f", huge, m.LLC().LatencyCycles)
	}
	// Beyond even the huge reach (64 MiB here), both pay TLB misses again.
	big := int64(1 << 30)
	if m.RandomLatencyHuge(big) <= m.MemLatencyCycles {
		t.Fatal("beyond huge reach the TLB cost must return")
	}
	// A machine without hugepage support: huge == base.
	none := Server2S()
	none.HugeTLBEntries = 0
	if none.RandomLatencyHuge(ws) != none.RandomLatency(ws) {
		t.Fatal("no hugepage support should fall back to base reach")
	}
	// Work-level flag routes through the huge path.
	w := Work{RandomReads: 100, RandomWS: ws, HugePages: true}
	wBase := Work{RandomReads: 100, RandomWS: ws}
	if m.Cycles(w, DefaultContext()) >= m.Cycles(wBase, DefaultContext()) {
		t.Fatal("HugePages work should price below base-page work")
	}
}

func TestBreakdownString(t *testing.T) {
	c := CostBreakdown{Compute: 1, Streaming: 2, RandomAccess: 3, Branches: 4}
	if c.String() == "" || c.Total() != 10 {
		t.Fatalf("breakdown = %q total %f", c.String(), c.Total())
	}
}

func TestCostRemoteSeqAndRemoteRandom(t *testing.T) {
	m := NUMA4S()
	ctx := DefaultContext()
	local := m.Cycles(Work{SeqReadBytes: 1 << 20}, ctx)
	remote := m.Cycles(Work{RemoteSeqBytes: 1 << 20}, ctx)
	if remote <= local {
		t.Fatalf("remote streaming %f should exceed local %f", remote, local)
	}
	rr := m.Cycles(Work{RemoteRandomReads: 1000, RandomWS: 1 << 30}, ctx)
	lr := m.Cycles(Work{RandomReads: 1000, RandomWS: 1 << 30}, ctx)
	if rr <= lr {
		t.Fatalf("remote random %f should exceed local %f", rr, lr)
	}
}

func TestWorkAddMaxAndEmpty(t *testing.T) {
	a := Work{RandomWS: 5}
	b := Work{RandomWS: 3}
	if a.Add(b).RandomWS != 5 || b.Add(a).RandomWS != 5 {
		t.Fatal("Add should take max working set both ways")
	}
	empty := Work{}
	if s := empty.Add(empty); s.Tuples != 0 || s.ComputePerTuple != 0 {
		t.Fatalf("empty Add = %+v", s)
	}
}

func TestStreamBandwidthClamps(t *testing.T) {
	m := Server2S()
	if m.StreamBandwidth(0) != m.StreamBandwidth(1) {
		t.Fatal("zero cores should clamp to one")
	}
	if m.StreamBandwidth(100) != m.StreamBandwidth(m.CoresPerSocket) {
		t.Fatal("excess cores should clamp to socket size")
	}
	if m.RemoteStreamBandwidth(0) <= 0 {
		t.Fatal("remote bandwidth should clamp too")
	}
}
