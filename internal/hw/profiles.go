package hw

// Predefined machine profiles. Parameters are representative of the hardware
// generations discussed in the keynote (circa 2013 servers) plus a manycore
// profile for the scaling experiments. All experiments name the profile they
// run on so results are reproducible.

// Laptop returns a single-socket 4-core client machine profile.
func Laptop() *Machine {
	return &Machine{
		Name:           "laptop-1s4c",
		Sockets:        1,
		CoresPerSocket: 4,
		FreqGHz:        2.6,
		Caches: []CacheLevel{
			{Name: "L1d", SizeBytes: 32 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 4},
			{Name: "L2", SizeBytes: 256 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 12},
			{Name: "L3", SizeBytes: 6 * MiB, LineBytes: 64, Assoc: 12, LatencyCycles: 36, SharedPerSocket: true},
		},
		TLBEntries:          64,
		PageBytes:           4 * KiB,
		TLBMissCycles:       30,
		HugeTLBEntries:      32,
		HugePageBytes:       2 * MiB,
		MemLatencyCycles:    180,
		RemoteLatencyCycles: 180,
		MemBWPerSocket:      8, // ~20 GB/s at 2.6 GHz
		CoreStreamBW:        4, // ~10 GB/s single core
		InterconnectBW:      0, // single socket
		SpillBWPerSocket:    1, // ~2.6 GB/s SATA-SSD-class spill tier
		MLP:                 4,
		BranchMissCycles:    15,
		WattsPerCoreActive:  8,
		WattsIdle:           10,
	}
}

// Server2S returns a two-socket, 8-cores-per-socket server profile — the
// canonical NUMA machine of the early-2010s literature.
func Server2S() *Machine {
	return &Machine{
		Name:           "server-2s8c",
		Sockets:        2,
		CoresPerSocket: 8,
		FreqGHz:        2.4,
		Caches: []CacheLevel{
			{Name: "L1d", SizeBytes: 32 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 4},
			{Name: "L2", SizeBytes: 256 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 12},
			{Name: "L3", SizeBytes: 20 * MiB, LineBytes: 64, Assoc: 20, LatencyCycles: 40, SharedPerSocket: true},
		},
		TLBEntries:          64,
		PageBytes:           4 * KiB,
		TLBMissCycles:       35,
		HugeTLBEntries:      32,
		HugePageBytes:       2 * MiB,
		MemLatencyCycles:    200,
		RemoteLatencyCycles: 310,
		MemBWPerSocket:      14, // ~34 GB/s per socket
		CoreStreamBW:        5,
		InterconnectBW:      5, // ~12 GB/s QPI-class link
		SpillBWPerSocket:    2, // ~5 GB/s NVMe-class spill tier
		MLP:                 4,
		BranchMissCycles:    17,
		WattsPerCoreActive:  10,
		WattsIdle:           45,
	}
}

// NUMA4S returns a four-socket, 16-cores-per-socket machine with a pronounced
// local/remote asymmetry, used by the NUMA placement experiments.
func NUMA4S() *Machine {
	return &Machine{
		Name:           "numa-4s16c",
		Sockets:        4,
		CoresPerSocket: 16,
		FreqGHz:        2.2,
		Caches: []CacheLevel{
			{Name: "L1d", SizeBytes: 32 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 4},
			{Name: "L2", SizeBytes: 256 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 12},
			{Name: "L3", SizeBytes: 32 * MiB, LineBytes: 64, Assoc: 16, LatencyCycles: 45, SharedPerSocket: true},
		},
		TLBEntries:          96,
		PageBytes:           4 * KiB,
		TLBMissCycles:       40,
		HugeTLBEntries:      32,
		HugePageBytes:       2 * MiB,
		MemLatencyCycles:    220,
		RemoteLatencyCycles: 420,
		MemBWPerSocket:      18,
		CoreStreamBW:        5,
		InterconnectBW:      4,
		SpillBWPerSocket:    2, // ~4.4 GB/s NVMe-class spill tier
		MLP:                 6,
		BranchMissCycles:    18,
		WattsPerCoreActive:  9,
		WattsIdle:           120,
	}
}

// Manycore returns a single-socket 64-core profile (the "sea of cores" the
// keynote's dark-silicon discussion anticipates): many simple cores sharing
// one memory system, so bandwidth saturates long before cores do.
func Manycore() *Machine {
	return &Machine{
		Name:           "manycore-1s64c",
		Sockets:        1,
		CoresPerSocket: 64,
		FreqGHz:        1.6,
		Caches: []CacheLevel{
			{Name: "L1d", SizeBytes: 32 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 3},
			{Name: "L2", SizeBytes: 512 * KiB, LineBytes: 64, Assoc: 8, LatencyCycles: 14},
			{Name: "L3", SizeBytes: 32 * MiB, LineBytes: 64, Assoc: 16, LatencyCycles: 50, SharedPerSocket: true},
		},
		TLBEntries:          64,
		PageBytes:           4 * KiB,
		TLBMissCycles:       45,
		HugeTLBEntries:      32,
		HugePageBytes:       2 * MiB,
		MemLatencyCycles:    260,
		RemoteLatencyCycles: 260,
		MemBWPerSocket:      24,
		CoreStreamBW:        3,
		InterconnectBW:      0,
		SpillBWPerSocket:    3, // ~4.8 GB/s NVMe-class spill tier
		MLP:                 4,
		BranchMissCycles:    12,
		WattsPerCoreActive:  3,
		WattsIdle:           40,
	}
}

// Profiles returns all predefined machines, keyed by name.
func Profiles() map[string]*Machine {
	out := map[string]*Machine{}
	for _, m := range []*Machine{Laptop(), Server2S(), NUMA4S(), Manycore()} {
		out[m.Name] = m
	}
	return out
}
