// Package hotcold implements access-frequency estimation for tiered memory
// placement — the keynote's "memory hierarchies keep deepening" theme made
// concrete, following the exponential-smoothing approach of Levandoski et
// al. (ICDE 2013): record accesses are logged (optionally sampled), an
// offline pass estimates per-record access frequencies with exponential
// smoothing, and the hottest records are pinned to the fast tier (DRAM)
// while the rest live on the slow tier (flash). The package also provides
// an LRU-caching baseline and an oracle for comparison.
package hotcold

import (
	"container/list"
	"fmt"
	"math"
	"sort"
)

// Estimator computes per-record access-frequency estimates from a log of
// record IDs using exponential smoothing in time slices: an access in slice
// t contributes weight decay^(now-t).
type Estimator struct {
	// Decay is the per-slice smoothing factor in (0, 1); higher keeps
	// history longer.
	Decay float64
	// SliceAccesses is the number of logged accesses per time slice.
	SliceAccesses int
}

// NewEstimator returns an estimator with the decay used in the reference
// work (0.8 per slice) and 10k accesses per slice.
func NewEstimator() Estimator { return Estimator{Decay: 0.8, SliceAccesses: 10_000} }

// Validate reports an error for out-of-range parameters.
func (e Estimator) Validate() error {
	if e.Decay <= 0 || e.Decay >= 1 {
		return fmt.Errorf("hotcold: decay %f must be in (0,1)", e.Decay)
	}
	if e.SliceAccesses <= 0 {
		return fmt.Errorf("hotcold: slice size %d must be positive", e.SliceAccesses)
	}
	return nil
}

// Estimate scans the access log (oldest first) and returns the smoothed
// frequency estimate per record. The backward-pass formulation visits every
// log entry exactly once — the property that let the reference system scan
// a billion accesses in sub-second time.
func (e Estimator) Estimate(log []int64) (map[int64]float64, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	est := make(map[int64]float64)
	if len(log) == 0 {
		return est, nil
	}
	slices := (len(log) + e.SliceAccesses - 1) / e.SliceAccesses
	for i, rec := range log {
		slice := i / e.SliceAccesses
		age := slices - 1 - slice
		est[rec] += math.Pow(e.Decay, float64(age))
	}
	return est, nil
}

// HotSet returns the ids of the k records with the highest estimates,
// deterministically (ties by id).
func HotSet(est map[int64]float64, k int) map[int64]bool {
	type pair struct {
		id int64
		f  float64
	}
	ps := make([]pair, 0, len(est))
	for id, f := range est {
		ps = append(ps, pair{id, f})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].f != ps[j].f {
			return ps[i].f > ps[j].f
		}
		return ps[i].id < ps[j].id
	})
	if k > len(ps) {
		k = len(ps)
	}
	hot := make(map[int64]bool, k)
	for _, p := range ps[:k] {
		hot[p.id] = true
	}
	return hot
}

// HitRate replays accesses against a fixed hot set and returns the fraction
// served from the fast tier.
func HitRate(accesses []int64, hot map[int64]bool) float64 {
	if len(accesses) == 0 {
		return 0
	}
	hits := 0
	for _, a := range accesses {
		if hot[a] {
			hits++
		}
	}
	return float64(hits) / float64(len(accesses))
}

// LRUHitRate replays accesses against an LRU cache of capacity k — the
// online caching baseline the offline classifier competes with.
func LRUHitRate(accesses []int64, k int) float64 {
	if len(accesses) == 0 || k <= 0 {
		return 0
	}
	order := list.New()
	pos := make(map[int64]*list.Element, k)
	hits := 0
	for _, a := range accesses {
		if el, ok := pos[a]; ok {
			hits++
			order.MoveToFront(el)
			continue
		}
		if order.Len() >= k {
			back := order.Back()
			delete(pos, back.Value.(int64))
			order.Remove(back)
		}
		pos[a] = order.PushFront(a)
	}
	return float64(hits) / float64(len(accesses))
}

// OracleHitRate computes the best possible fixed-hot-set hit rate: pin the
// k records that are actually accessed most in the replayed trace.
func OracleHitRate(accesses []int64, k int) float64 {
	counts := map[int64]float64{}
	for _, a := range accesses {
		counts[a]++
	}
	return HitRate(accesses, HotSet(counts, k))
}

// TierLatency models the average access latency of a trace under a given
// hot set: fast-tier hits cost dramLatency cycles, misses cost
// flashLatency. This is where the economics of the hierarchy shows up.
func TierLatency(accesses []int64, hot map[int64]bool, dramLatency, flashLatency float64) float64 {
	if len(accesses) == 0 {
		return 0
	}
	hit := HitRate(accesses, hot)
	return hit*dramLatency + (1-hit)*flashLatency
}

// FlashLatencyCycles is a representative read latency for 2013-era flash in
// CPU cycles (~40µs at 2.4 GHz ≈ 100k cycles; we use a fast-NVMe-ish 25k to
// stay conservative).
const FlashLatencyCycles = 25_000
