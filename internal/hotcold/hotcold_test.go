package hotcold

import (
	"math"
	"testing"
	"testing/quick"

	"hwstar/internal/workload"
)

func TestEstimatorValidate(t *testing.T) {
	if err := NewEstimator().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Estimator{
		{Decay: 0, SliceAccesses: 10},
		{Decay: 1, SliceAccesses: 10},
		{Decay: 1.5, SliceAccesses: 10},
		{Decay: 0.5, SliceAccesses: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("estimator %d should be invalid", i)
		}
	}
	if _, err := (Estimator{}).Estimate([]int64{1}); err == nil {
		t.Fatal("Estimate should reject invalid estimator")
	}
}

func TestEstimateEmptyLog(t *testing.T) {
	est, err := NewEstimator().Estimate(nil)
	if err != nil || len(est) != 0 {
		t.Fatalf("empty log: %v, %v", est, err)
	}
}

func TestEstimateFrequencyOrdering(t *testing.T) {
	// Record 1 accessed 3x as often as record 2 within one slice: estimate
	// must preserve the ordering and ratio.
	log := []int64{1, 2, 1, 1, 1, 2, 1, 1}
	est, err := NewEstimator().Estimate(log)
	if err != nil {
		t.Fatal(err)
	}
	if est[1] <= est[2] {
		t.Fatalf("est[1]=%f should exceed est[2]=%f", est[1], est[2])
	}
	if math.Abs(est[1]/est[2]-3) > 1e-9 {
		t.Fatalf("within one slice the ratio should be exact: %f", est[1]/est[2])
	}
}

func TestEstimateRecencyBias(t *testing.T) {
	// Same access counts, but record 9 is recent and record 8 is old:
	// exponential smoothing must rank 9 above 8.
	e := Estimator{Decay: 0.5, SliceAccesses: 4}
	log := []int64{8, 8, 8, 8 /* old slice */, 1, 2, 3, 4 /* middle */, 9, 9, 9, 9 /* recent */}
	est, err := e.Estimate(log)
	if err != nil {
		t.Fatal(err)
	}
	if est[9] <= est[8] {
		t.Fatalf("recent record 9 (%f) should outrank old record 8 (%f)", est[9], est[8])
	}
}

func TestHotSetSelection(t *testing.T) {
	est := map[int64]float64{1: 5, 2: 3, 3: 8, 4: 3}
	hot := HotSet(est, 2)
	if !hot[3] || !hot[1] || len(hot) != 2 {
		t.Fatalf("hot set = %v", hot)
	}
	// Ties break by id: k=3 must pick id 2 over id 4.
	hot = HotSet(est, 3)
	if !hot[2] || hot[4] {
		t.Fatalf("tie break wrong: %v", hot)
	}
	// k larger than population.
	if got := HotSet(est, 99); len(got) != 4 {
		t.Fatalf("oversized k: %v", got)
	}
}

func TestHitRate(t *testing.T) {
	hot := map[int64]bool{1: true}
	if got := HitRate([]int64{1, 2, 1, 2}, hot); got != 0.5 {
		t.Fatalf("hit rate = %f", got)
	}
	if HitRate(nil, hot) != 0 {
		t.Fatal("empty trace should be 0")
	}
}

func TestLRUHitRate(t *testing.T) {
	// Cyclic sweep over k+1 items thrashes LRU completely.
	trace := []int64{}
	for round := 0; round < 10; round++ {
		for v := int64(0); v < 4; v++ {
			trace = append(trace, v)
		}
	}
	if got := LRUHitRate(trace, 3); got != 0 {
		t.Fatalf("cyclic sweep over cache+1 items: hit rate %f, want 0", got)
	}
	if got := LRUHitRate(trace, 4); got < 0.85 {
		t.Fatalf("fitting cache should hit after warmup: %f", got)
	}
	if LRUHitRate(nil, 4) != 0 || LRUHitRate(trace, 0) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

func TestClassifierBeatsLRUOnSkewedTrace(t *testing.T) {
	// The headline result: on a Zipf trace with a scan mixed in (which
	// pollutes LRU), frequency-based classification beats LRU caching.
	const n, keyspace = 200_000, 50_000
	zipf := workload.ZipfInts(1, n, keyspace, 1.3)
	// Interleave a full sequential sweep (e.g. an analytic scan) that
	// floods LRU with cold records.
	trace := make([]int64, 0, n+keyspace)
	for i, v := range zipf {
		trace = append(trace, v)
		if i%4 == 0 {
			trace = append(trace, int64(i%keyspace))
		}
	}
	k := keyspace / 20 // 5% memory budget

	est, err := NewEstimator().Estimate(trace)
	if err != nil {
		t.Fatal(err)
	}
	classified := HitRate(trace, HotSet(est, k))
	lru := LRUHitRate(trace, k)
	oracle := OracleHitRate(trace, k)
	if classified <= lru {
		t.Fatalf("classifier %f should beat scan-polluted LRU %f", classified, lru)
	}
	if classified > oracle+1e-9 {
		t.Fatalf("nothing beats the oracle: %f > %f", classified, oracle)
	}
	if oracle-classified > 0.05 {
		t.Fatalf("classifier %f should be near-oracle %f on a stable distribution", classified, oracle)
	}
}

func TestTierLatency(t *testing.T) {
	hot := map[int64]bool{1: true}
	trace := []int64{1, 2} // 50% hit
	got := TierLatency(trace, hot, 100, 10000)
	if got != 0.5*100+0.5*10000 {
		t.Fatalf("tier latency = %f", got)
	}
	if TierLatency(nil, hot, 1, 2) != 0 {
		t.Fatal("empty trace latency should be 0")
	}
}

// Property: estimates are non-negative, cover exactly the logged records,
// and HotSet(k) always yields a hit rate no worse than any random k-subset
// would on the estimate's own ordering (monotone top-k property: hit rate
// is non-decreasing in k).
func TestHotSetMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		trace := make([]int64, len(raw))
		for i, r := range raw {
			trace[i] = int64(r % 32)
		}
		est, err := NewEstimator().Estimate(trace)
		if err != nil {
			return false
		}
		for id, f := range est {
			if f < 0 {
				return false
			}
			found := false
			for _, v := range trace {
				if v == id {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		prev := -1.0
		for k := 0; k <= 32; k += 4 {
			hr := HitRate(trace, HotSet(est, k))
			if hr < prev-1e-12 {
				return false
			}
			prev = hr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
