package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/scan"
	"hwstar/internal/workload"
)

// testRelation returns deterministic two-column data and the serial answer
// to a range query over it.
func testRelation(rows int) ([][]int64, func(lo, hi int64) int64) {
	cols := [][]int64{
		workload.UniformInts(71, rows, 10000),
		workload.UniformInts(72, rows, 500),
	}
	expect := func(lo, hi int64) int64 {
		var sum int64
		for i, v := range cols[0] {
			if v >= lo && v <= hi {
				sum += cols[1][i]
			}
		}
		return sum
	}
	return cols, expect
}

func newServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(hw.Server2S(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); !errors.Is(err, errs.ErrNilMachine) {
		t.Fatalf("nil machine: %v", err)
	}
	if _, err := New(hw.Laptop(), Options{Workers: 99}); !errors.Is(err, errs.ErrWorkersOutOfRange) {
		t.Fatalf("worker range: %v", err)
	}
	if _, err := New(hw.Laptop(), Options{Workers: 2, OpWorkers: 4}); !errors.Is(err, errs.ErrWorkersOutOfRange) {
		t.Fatalf("op workers beyond budget: %v", err)
	}
}

// TestScanBatching drives 64 concurrent scan clients into one shared pass:
// every client gets its own correct sum, and all of them report the same
// shared batch.
func TestScanBatching(t *testing.T) {
	const clients = 64
	cols, expect := testRelation(20000)
	// MaxBatch == clients and a generous window: the flush happens exactly
	// when the last client arrives, deterministically.
	s := newServer(t, Options{QueueDepth: clients, MaxBatch: clients, BatchWindow: 10 * time.Second})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}

	los := workload.UniformInts(73, clients, 9000)
	var wg sync.WaitGroup
	resps := make([]Response, clients)
	errsOut := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errsOut[i] = s.Submit(context.Background(), Request{
				Op:    OpScan,
				Table: "events",
				Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 800, AggCol: 1},
			})
		}()
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errsOut[i] != nil {
			t.Fatalf("client %d: %v", i, errsOut[i])
		}
		if want := expect(los[i], los[i]+800); resps[i].Sum != want {
			t.Fatalf("client %d: sum %d, want %d", i, resps[i].Sum, want)
		}
		if resps[i].BatchSize != clients {
			t.Fatalf("client %d: batch size %d, want %d", i, resps[i].BatchSize, clients)
		}
		if resps[i].SimCycles <= 0 {
			t.Fatalf("client %d: no modeled cost", i)
		}
	}
	ctrs := s.Metrics().Counters()
	if ctrs["serve.admitted"] != clients || ctrs["serve.completed"] != clients || ctrs["serve.rejected"] != 0 {
		t.Fatalf("counters: %v", ctrs)
	}
	if bs := s.Metrics().Histogram("serve.batch_size"); bs.Count() != 1 || bs.Max() != clients {
		t.Fatalf("batch size histogram: %s", bs.Summary())
	}
}

// TestBatchingAmortizesCycles is the acceptance check: with 64 concurrent
// scan-shaped clients, shared-scan batching must yield lower modeled cycles
// per query than per-query execution of the same requests.
func TestBatchingAmortizesCycles(t *testing.T) {
	const clients = 64
	cols, _ := testRelation(50000)
	los := workload.UniformInts(74, clients, 9000)

	run := func(maxBatch int) float64 {
		s := newServer(t, Options{QueueDepth: clients, MaxBatch: maxBatch, BatchWindow: 10 * time.Second})
		defer s.Close()
		if err := s.Register("events", cols); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		cycles := make([]float64, clients)
		for i := 0; i < clients; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := s.Submit(context.Background(), Request{
					Op:    OpScan,
					Table: "events",
					Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 800, AggCol: 1},
				})
				if err != nil {
					t.Error(err)
					return
				}
				cycles[i] = resp.SimCycles
			}()
		}
		wg.Wait()
		var total float64
		for _, c := range cycles {
			total += c
		}
		return total / clients
	}

	// MaxBatch 1 degenerates the server to per-query execution; the full
	// batch must amortize the pass across all clients.
	perQuery := run(1)
	batched := run(clients)
	if batched >= perQuery {
		t.Fatalf("batched %.0f cycles/query should beat per-query %.0f", batched, perQuery)
	}
	if perQuery/batched < 4 {
		t.Fatalf("expected ≥4x amortization at 64 clients, got %.1fx", perQuery/batched)
	}
}

// TestOverloadRejects pins the execution pipeline and floods the intake: the
// bounded queue must reject with ErrOverloaded rather than buffer without
// bound, and every admitted request must still complete after the stall.
func TestOverloadRejects(t *testing.T) {
	const submissions = 7
	s := newServer(t, Options{Workers: 4, OpWorkers: 4, QueueDepth: 2})
	hold := make(chan struct{})
	s.testHold = hold
	keys := workload.UniformInts(75, 4096, 64)
	vals := workload.UniformInts(76, 4096, 100)

	// With executors pinned, the server can absorb at most: 1 executing +
	// 1 in the dispatcher's hand + QueueDepth queued = 4 requests. The
	// remaining ≥3 of 7 must be rejected no matter how the goroutines
	// interleave.
	var wg sync.WaitGroup
	outcomes := make([]error, submissions)
	for i := 0; i < submissions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, outcomes[i] = s.Submit(context.Background(), Request{
				Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyRadix,
			})
		}()
		// Give each submission a moment to settle so admitted ones land
		// before the queue-full verdict of later ones.
		time.Sleep(2 * time.Millisecond)
	}
	close(hold)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var rejected, completed int
	for i, err := range outcomes {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, errs.ErrOverloaded):
			rejected++
		default:
			t.Fatalf("submission %d: unexpected error %v", i, err)
		}
	}
	if rejected < 3 {
		t.Fatalf("rejected %d of %d, want ≥3 (backpressure did not engage)", rejected, submissions)
	}
	if completed == 0 {
		t.Fatal("no admitted request completed")
	}
	ctrs := s.Metrics().Counters()
	if ctrs["serve.rejected"] != int64(rejected) || ctrs["serve.completed"] != int64(completed) {
		t.Fatalf("counters disagree with outcomes: %v (rejected=%d completed=%d)", ctrs, rejected, completed)
	}
}

// TestDeadlineExceeded covers both context failure modes: a request whose
// context dies while queued is dropped at dispatch, and one cancelled before
// execution never runs. Both surface the context error to the client and the
// deadline-exceeded counter.
func TestDeadlineExceeded(t *testing.T) {
	cols, _ := testRelation(1000)
	s := newServer(t, Options{QueueDepth: 8})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Submit(ctx, Request{
		Op: OpScan, Table: "events",
		Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 100, AggCol: 1},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Counters()["serve.deadline_exceeded"]; got != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", got)
	}

	// Cancellation after admission but before execution: pin the pipeline,
	// cancel, release — the executor must drop the request unrun.
	s2 := newServer(t, Options{Workers: 4, OpWorkers: 4, QueueDepth: 8})
	hold := make(chan struct{})
	s2.testHold = hold
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s2.Submit(ctx2, Request{
			Op: OpGroupSum, Keys: []int64{1, 2}, Vals: []int64{3, 4}, Strategy: agg.StrategyGlobal,
		})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it get admitted and pinned
	cancel2()
	close(hold)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainOnClose closes the server while a full batch is pinned in
// execution: Close must wait for the batch, every client must get its
// answer, and post-close submissions must fail with ErrClosed.
func TestDrainOnClose(t *testing.T) {
	const clients = 5
	cols, _ := testRelation(5000)
	s := newServer(t, Options{QueueDepth: clients, MaxBatch: clients, BatchWindow: 10 * time.Second})
	hold := make(chan struct{})
	s.testHold = hold
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errsOut := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errsOut[i] = s.Submit(context.Background(), Request{
				Op: OpScan, Table: "events",
				Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 5000, AggCol: 1},
			})
		}()
	}

	closed := make(chan error, 1)
	go func() {
		// Wait until the batch has been collected and pinned (all clients
		// admitted), then close while it is still in flight.
		for s.Metrics().Counters()["serve.admitted"] < clients {
			time.Sleep(time.Millisecond)
		}
		closed <- s.Close()
	}()
	time.Sleep(10 * time.Millisecond)
	close(hold)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	for i, err := range errsOut {
		if err != nil {
			t.Fatalf("client %d lost its response to Close: %v", i, err)
		}
	}

	if _, err := s.Submit(context.Background(), Request{
		Op: OpScan, Table: "events",
		Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 1, AggCol: 1},
	}); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// TestMixedOps exercises every request kind concurrently against one server
// under the worker budget, checking results against serial references.
func TestMixedOps(t *testing.T) {
	cols, expect := testRelation(10000)
	s := newServer(t, Options{QueueDepth: 64})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 77, BuildRows: 2000, ProbeRows: 8000})
	keys := workload.UniformInts(78, 5000, 100)
	vals := workload.UniformInts(79, 5000, 50)
	wantGroups := agg.Serial(keys, vals)
	li := workload.LineItem(80, 5000)

	var wg sync.WaitGroup
	check := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}()
	}
	ctx := context.Background()
	check("scan", func() error {
		resp, err := s.Submit(ctx, Request{Op: OpScan, Table: "events", Query: scan.Query{FilterCol: 0, Lo: 100, Hi: 900, AggCol: 1}})
		if err != nil {
			return err
		}
		if want := expect(100, 900); resp.Sum != want {
			t.Errorf("scan sum %d, want %d", resp.Sum, want)
		}
		return nil
	})
	check("join", func() error {
		resp, err := s.Submit(ctx, Request{Op: OpJoin, Join: joinInput(g), Algorithm: "auto"})
		if err != nil {
			return err
		}
		if resp.Matches != int64(len(g.ProbeKeys)) {
			t.Errorf("join matches %d, want %d", resp.Matches, len(g.ProbeKeys))
		}
		return nil
	})
	check("group-sum", func() error {
		resp, err := s.Submit(ctx, Request{Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyLocalMerge})
		if err != nil {
			return err
		}
		if len(resp.Groups) != len(wantGroups) {
			t.Errorf("groups %d, want %d", len(resp.Groups), len(wantGroups))
		}
		for k, v := range wantGroups {
			if resp.Groups[k] != v {
				t.Errorf("group %d = %d, want %d", k, resp.Groups[k], v)
			}
		}
		return nil
	})
	check("q1", func() error {
		resp, err := s.Submit(ctx, Request{Op: OpQ1, Lineitem: li, Engine: "vectorized"})
		if err != nil {
			return err
		}
		if len(resp.Q1Rows) == 0 || resp.SimCycles <= 0 {
			t.Errorf("q1: rows=%d cycles=%f", len(resp.Q1Rows), resp.SimCycles)
		}
		return nil
	})
	check("q6", func() error {
		resp, err := s.Submit(ctx, Request{Op: OpQ6, Lineitem: li, Engine: "fused"})
		if err != nil {
			return err
		}
		if resp.Revenue <= 0 || resp.SimCycles <= 0 {
			t.Errorf("q6: revenue=%f cycles=%f", resp.Revenue, resp.SimCycles)
		}
		return nil
	})
	wg.Wait()
}

func TestInvalidRequests(t *testing.T) {
	s := newServer(t, Options{})
	defer s.Close()
	cases := []Request{
		{Op: "bogus"},
		{Op: OpScan, Table: "missing"},
		{Op: OpJoin, Join: joinInput(workload.JoinInput{BuildKeys: []int64{1}}), Algorithm: "npo"},
		{Op: OpJoin, Algorithm: "sideways"},
		{Op: OpGroupSum, Keys: []int64{1}, Strategy: agg.StrategyGlobal},
		{Op: OpGroupSum, Strategy: "bogus"},
		{Op: OpQ1},
		{Op: OpQ6},
	}
	for i, req := range cases {
		if _, err := s.Submit(context.Background(), req); !errors.Is(err, errs.ErrInvalidInput) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	if got := s.Metrics().Counters()["serve.invalid"]; got != int64(len(cases)) {
		t.Errorf("invalid counter = %d, want %d", got, len(cases))
	}
}

// joinInput adapts the workload generator's output to a join.Input.
func joinInput(g workload.JoinInput) join.Input {
	return join.Input{
		BuildKeys: g.BuildKeys, BuildVals: g.BuildVals,
		ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals,
	}
}
