package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/join"
	"hwstar/internal/mem"
	"hwstar/internal/workload"
)

// groupReq builds a group-sum request whose table footprint is controlled by
// the group cardinality (34 simulated bytes per group).
func groupReq(rows int, groups int64) (Request, map[int64]int64) {
	keys := workload.UniformInts(91, rows, groups)
	vals := workload.UniformInts(92, rows, 100)
	return Request{Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyGlobal},
		agg.Serial(keys, vals)
}

// TestMemoryAdmissionShed holds one reservation-bearing request in flight and
// proves the next one is shed at admission with ErrMemoryPressure, then flows
// again once the first completes and releases.
func TestMemoryAdmissionShed(t *testing.T) {
	s := newServer(t, Options{
		Workers: 4, OpWorkers: 2, QueueDepth: 8,
		Memory: mem.Config{BudgetBytes: 1000, PerQueryBytes: 600},
	})
	hold := make(chan struct{})
	s.testHold = hold

	req, want := groupReq(64, 8)
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), req)
		done <- err
	}()
	// The first request's reservation is taken synchronously in Submit;
	// wait until the governor shows it.
	for i := 0; s.gov.Stats().Reservations != 1; i++ {
		if i > 500 {
			t.Fatal("first reservation never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	// 600 of 1000 bytes are held: a second 600-byte reservation must shed.
	if _, err := s.Submit(context.Background(), req); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("second submit err = %v, want ErrMemoryPressure", err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
	// Budget released: the same request is admitted again.
	resp, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("post-release submit: %v", err)
	}
	for k, w := range want {
		if resp.Groups[k] != w {
			t.Fatalf("group %d = %d, want %d", k, resp.Groups[k], w)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.MemShed != 1 || h.Memory.AdmissionDenied != 1 {
		t.Fatalf("shed accounting: %+v", h)
	}
	if h.Memory.InUseBytes != 0 || h.Memory.Reservations != 0 {
		t.Fatalf("budget leaked: %+v", h.Memory)
	}
}

// TestAggSpillCompletesWithinBudget gives a group-sum a budget far below its
// table footprint: it must degrade to the spill plan, return the exact
// answer, and never let the governor's peak exceed the budget.
func TestAggSpillCompletesWithinBudget(t *testing.T) {
	const budget = 16 << 10
	s := newServer(t, Options{
		Workers: 8, OpWorkers: 4, QueueDepth: 8,
		Memory: mem.Config{BudgetBytes: budget},
	})
	req, want := groupReq(8192, 2048) // table ≈ 2048 groups × 34 B ≈ 68 KiB
	resp, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("governed group-sum failed: %v", err)
	}
	if !resp.Spilled || resp.SpillBytes == 0 {
		t.Fatalf("expected a spill, got Spilled=%v SpillBytes=%d", resp.Spilled, resp.SpillBytes)
	}
	if len(resp.Groups) != len(want) {
		t.Fatalf("groups = %d, want %d", len(resp.Groups), len(want))
	}
	for k, w := range want {
		if resp.Groups[k] != w {
			t.Fatalf("group %d = %d, want %d", k, resp.Groups[k], w)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.Spills == 0 || h.SpillBytes == 0 {
		t.Fatalf("spill counters empty: %+v", h)
	}
	if h.Memory.PeakBytes > budget {
		t.Fatalf("peak %d exceeded budget %d", h.Memory.PeakBytes, budget)
	}
}

// TestJoinSpillCompletesWithinBudget is the join-side spill check: the NPO
// build table outgrows the budget, the grace-hash path runs, and the result
// matches the serial reference.
func TestJoinSpillCompletesWithinBudget(t *testing.T) {
	const budget = 32 << 10
	s := newServer(t, Options{
		Workers: 8, OpWorkers: 4, QueueDepth: 8,
		Memory: mem.Config{BudgetBytes: budget},
	})
	in := join.Input{
		BuildKeys: workload.UniformInts(93, 4096, 1<<30),
		BuildVals: workload.UniformInts(94, 4096, 100),
		ProbeKeys: workload.UniformInts(93, 8192, 1<<30), // same seed prefix: guaranteed matches
		ProbeVals: workload.UniformInts(95, 8192, 100),
	}
	ref, err := join.NPO(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Submit(context.Background(), Request{Op: OpJoin, Join: in, Algorithm: join.AlgNPO})
	if err != nil {
		t.Fatalf("governed join failed: %v", err)
	}
	if !resp.Spilled {
		t.Fatal("join did not spill under a 32 KiB budget")
	}
	if resp.Matches != ref.Matches || resp.Checksum != ref.Checksum {
		t.Fatalf("spilled join diverged: %d/%d, want %d/%d",
			resp.Matches, resp.Checksum, ref.Matches, ref.Checksum)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.Memory.PeakBytes > budget {
		t.Fatalf("peak %d exceeded budget %d", h.Memory.PeakBytes, budget)
	}
}

// TestNaiveOOMKill runs the same over-budget aggregation in KillOnOverage
// mode: the naive engine admits it, blows through the budget, and dies with
// the fatal (non-retryable) ErrOOMKilled.
func TestNaiveOOMKill(t *testing.T) {
	s := newServer(t, Options{
		Workers: 4, OpWorkers: 2, QueueDepth: 8,
		Memory:     mem.Config{BudgetBytes: 4 << 10, KillOnOverage: true},
		MaxRetries: 2, RetryBackoff: 10 * time.Microsecond,
	})
	req, _ := groupReq(8192, 2048)
	_, err := s.Submit(context.Background(), req)
	if !errors.Is(err, errs.ErrOOMKilled) {
		t.Fatalf("err = %v, want ErrOOMKilled", err)
	}
	if errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatal("an OOM kill must not be retryable memory pressure")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.OOMKilled != 1 || h.Memory.OOMKills != 1 {
		t.Fatalf("kill accounting: %+v", h)
	}
	if h.Retries != 0 {
		t.Fatalf("fatal kill was retried %d times", h.Retries)
	}
}

// TestMemoryChaos is the race-enabled memory-pressure chaos test: concurrent
// joins, aggregations, and scans against a tight budget with injected
// allocation failures. Every request must either succeed with the correct
// answer (spilled or not) or fail cleanly with a typed error — never panic,
// never hang, never leak budget.
func TestMemoryChaos(t *testing.T) {
	const clients = 48
	cols, expect := testRelation(20000)
	inj := fault.New(fault.Config{Seed: 17, AllocFailProb: 0.05})
	s := newServer(t, Options{
		Workers: 8, OpWorkers: 4, QueueDepth: clients, MaxBatch: 4,
		BatchWindow:  time.Millisecond,
		Faults:       inj,
		Memory:       mem.Config{BudgetBytes: 48 << 10}, // each heavy table ≈ 68 KiB: spills guaranteed
		MaxRetries:   3,
		RetryBackoff: 10 * time.Microsecond,
	})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	groupRq, wantGroups := groupReq(8192, 2048)
	joinIn := join.Input{
		BuildKeys: workload.UniformInts(96, 2048, 1<<20),
		BuildVals: workload.UniformInts(97, 2048, 100),
		ProbeKeys: workload.UniformInts(96, 4096, 1<<20),
		ProbeVals: workload.UniformInts(98, 4096, 100),
	}
	joinRef, err := join.NPO(joinIn, nil)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		kind string
		lo   int64
		resp Response
		err  error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch c % 3 {
			case 0:
				lo := int64(c * 100)
				resp, err := s.Submit(context.Background(), Request{
					Op: OpScan, Table: "events", Query: scanQuery(lo, lo+3000),
				})
				results[c] = result{kind: "scan", lo: lo, resp: resp, err: err}
			case 1:
				resp, err := s.Submit(context.Background(), groupRq)
				results[c] = result{kind: "agg", resp: resp, err: err}
			default:
				resp, err := s.Submit(context.Background(), Request{Op: OpJoin, Join: joinIn, Algorithm: join.AlgNPO})
				results[c] = result{kind: "join", resp: resp, err: err}
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	completed := 0
	for c, r := range results {
		if r.err != nil {
			if !errors.Is(r.err, errs.ErrMemoryPressure) && !errors.Is(r.err, errs.ErrOverloaded) {
				t.Fatalf("client %d (%s): untyped failure: %v", c, r.kind, r.err)
			}
			continue
		}
		completed++
		switch r.kind {
		case "scan":
			if want := expect(r.lo, r.lo+3000); r.resp.Sum != want {
				t.Fatalf("client %d: scan sum %d, want %d", c, r.resp.Sum, want)
			}
		case "agg":
			for k, want := range wantGroups {
				if r.resp.Groups[k] != want {
					t.Fatalf("client %d: group %d = %d, want %d", c, k, r.resp.Groups[k], want)
				}
			}
		case "join":
			if r.resp.Matches != joinRef.Matches || r.resp.Checksum != joinRef.Checksum {
				t.Fatalf("client %d: join diverged under chaos", c)
			}
		}
	}
	if completed == 0 {
		t.Fatal("memory chaos completed nothing")
	}
	h := s.Health()
	if h.Memory.InUseBytes != 0 || h.Memory.Reservations != 0 {
		t.Fatalf("budget leaked after drain: %+v", h.Memory)
	}
	if h.Spills == 0 {
		t.Fatalf("governed chaos never spilled: %+v", h)
	}
	if inj.Counts()[fault.ClassAllocFail] == 0 {
		t.Fatal("alloc-fail class never fired")
	}
}

// TestNoGoroutineLeaksUnderMemoryChaos drives governed, fault-injected load
// through several server lifetimes and checks the goroutine count settles.
func TestNoGoroutineLeaksUnderMemoryChaos(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s := newServer(t, Options{
			Workers: 4, OpWorkers: 2, QueueDepth: 4,
			Faults:       fault.New(fault.Config{Seed: int64(round), AllocFailProb: 0.1}),
			Memory:       mem.Config{BudgetBytes: 32 << 10},
			MaxRetries:   2,
			RetryBackoff: 10 * time.Microsecond,
		})
		req, _ := groupReq(4096, 1024)
		var wg sync.WaitGroup
		for c := 0; c < 16; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Submit(context.Background(), req)
			}()
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if st := s.gov.Stats(); st.InUseBytes != 0 || st.Reservations != 0 {
			t.Fatalf("round %d leaked budget: %+v", round, st)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
