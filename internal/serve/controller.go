// The online execution controller: E2b's offline morsel-size sweep turned
// into a runtime feedback loop. Every successful vectorized scan pass
// reports its modeled cost; the controller hill-climbs morsel size and
// query-batch width on the live workload, one knob at a time, over the
// power-of-two grid the offline sweep explored. Readers (the hot path) see
// the current settings through atomics — no lock on the submit path.

package serve

import (
	"math"
	"sync"
	"sync/atomic"

	"hwstar/internal/compress"
)

// Controller defaults and bounds. Morsel bounds are multiples of the
// compression block so a morsel never splits a block; width bounds keep a
// group's selection vectors and accumulators cache-resident.
const (
	vecMorselDefault = 8 * compress.BlockValues
	vecMorselMin     = compress.BlockValues
	vecMorselMax     = 128 * compress.BlockValues
	vecWidthDefault  = 8
	vecWidthMin      = 1
	vecWidthMax      = 256

	// ctlObsPerStep is how many pass observations average into one
	// measurement; ctlEpsilon is the relative improvement a probe must show
	// to be accepted. Both damp noise from varying batch sizes.
	ctlObsPerStep = 3
	ctlEpsilon    = 0.03
)

// VecCtlStats is a point-in-time snapshot of the adaptive controller, for
// Health and the metrics endpoints.
type VecCtlStats struct {
	// MorselRows and BatchWidth are the settings the next pass will use.
	MorselRows int
	BatchWidth int
	// Observations counts scan passes fed back; Retunes counts accepted
	// setting changes.
	Observations int64
	Retunes      int64
	// Converged reports that both knobs have stopped probing (steady
	// workload reached a local optimum on the power-of-two grid).
	Converged bool
	// CostPerRowQuery is the latest measured cost at the current settings,
	// in modeled cycles per (row × query); 0 until the first full
	// measurement window.
	CostPerRowQuery float64
}

// hillClimb is one knob's deterministic probe state machine. It measures
// the cost at the current value over obsPerStep observations, probes a
// power-of-two neighbor for the same window, and keeps whichever is
// cheaper. A probe must improve by eps to be accepted, so the sequence of
// accepted costs is non-increasing — monotone convergence on a steady
// workload. Two consecutive rejected probes (both directions exhausted)
// finish the knob.
type hillClimb struct {
	cur, lo, hi int

	baseCost float64 // mean cost at cur over the last full window
	baseN    int
	probe    int // candidate under measurement; 0 = measuring cur
	probeSum float64
	probeN   int
	dir      int // +1 probe cur*2 next, -1 probe cur/2
	fails    int // consecutive rejected probes
	done     bool

	baseSum float64
}

func newHillClimb(initial, lo, hi int) *hillClimb {
	if initial < lo {
		initial = lo
	}
	if initial > hi {
		initial = hi
	}
	return &hillClimb{cur: initial, lo: lo, hi: hi, dir: +1}
}

// setting returns the value passes should run with right now: the probe
// while one is being measured, the accepted value otherwise.
func (h *hillClimb) setting() int {
	if h.probe != 0 {
		return h.probe
	}
	return h.cur
}

// next returns the neighbor of cur in direction dir, or cur at a bound.
func (h *hillClimb) next() int {
	if h.dir > 0 {
		if n := h.cur * 2; n <= h.hi {
			return n
		}
		return h.cur
	}
	if n := h.cur / 2; n >= h.lo {
		return n
	}
	return h.cur
}

// observe feeds one cost sample. It returns changed=true when the knob's
// current value moved (a probe was accepted) and settled=true when this
// sample completed a probe decision (accept or reject) — the controller
// alternates knobs on settled decisions.
func (h *hillClimb) observe(cost float64) (changed, settled bool) {
	if h.done {
		return false, true
	}
	if h.probe == 0 {
		// Measuring the current value.
		h.baseSum += cost
		h.baseN++
		if h.baseN < ctlObsPerStep {
			return false, false
		}
		h.baseCost = h.baseSum / float64(h.baseN)
		// Pick the next probe; flip at bounds. No neighbor on either side
		// means the range is a single point: nothing to tune.
		if h.next() == h.cur {
			h.dir = -h.dir
		}
		if h.next() == h.cur {
			h.done = true
			return false, true
		}
		h.probe = h.next()
		h.probeSum, h.probeN = 0, 0
		return false, false
	}
	// Measuring the probe.
	h.probeSum += cost
	h.probeN++
	if h.probeN < ctlObsPerStep {
		return false, false
	}
	probeCost := h.probeSum / float64(h.probeN)
	if probeCost < h.baseCost*(1-ctlEpsilon) {
		// Accept: the probe's window becomes the new base; keep pushing the
		// same direction.
		h.cur = h.probe
		h.baseCost = probeCost
		h.baseSum, h.baseN = h.probeSum, h.probeN
		h.fails = 0
		h.probe = 0
		return true, true
	}
	// Reject: stay, flip direction; two consecutive rejections mean both
	// neighbors are worse — a local optimum on the grid.
	h.fails++
	h.dir = -h.dir
	h.probe = 0
	if h.fails >= 2 {
		h.done = true
	}
	return false, true
}

// vecController tunes the vectorized scan path's morsel size and batch
// width online. Hot-path readers (MorselRows, BatchWidth) are lock-free
// atomic loads; Observe serializes tuning state under a mutex off the
// request path (once per scan pass, not per request).
type vecController struct {
	adaptive bool

	morsel  atomic.Int64
	width   atomic.Int64
	obs     atomic.Int64
	retunes atomic.Int64
	conv    atomic.Bool
	cost    atomic.Uint64 // float64 bits of the latest measured cost

	mu     sync.Mutex
	knobs  [2]*hillClimb // 0 = morsel rows, 1 = batch width
	active int
}

// newVecController builds a controller starting from the given settings.
// adaptive=false pins them (the controller still counts observations).
func newVecController(morselRows, batchWidth int, adaptive bool) *vecController {
	if morselRows <= 0 {
		morselRows = vecMorselDefault
	}
	if batchWidth <= 0 {
		batchWidth = vecWidthDefault
	}
	c := &vecController{adaptive: adaptive}
	c.knobs[0] = newHillClimb(snapToBlocks(morselRows), vecMorselMin, vecMorselMax)
	c.knobs[1] = newHillClimb(batchWidth, vecWidthMin, vecWidthMax)
	c.morsel.Store(int64(c.knobs[0].cur))
	c.width.Store(int64(c.knobs[1].cur))
	return c
}

// snapToBlocks rounds rows up to a whole number of compression blocks (at
// least one), so morsel boundaries always align with block boundaries.
func snapToBlocks(rows int) int {
	if rows < compress.BlockValues {
		return compress.BlockValues
	}
	if rem := rows % compress.BlockValues; rem != 0 {
		rows += compress.BlockValues - rem
	}
	return rows
}

// MorselRows returns the morsel size the next vectorized pass should use.
func (c *vecController) MorselRows() int { return int(c.morsel.Load()) }

// BatchWidth returns the query-group width the next pass should use.
func (c *vecController) BatchWidth() int { return int(c.width.Load()) }

// Observe feeds one successful pass's feedback: rows scanned, queries
// answered, and the pass's modeled makespan. The active knob advances its
// probe state machine; knobs alternate on each completed probe decision so
// one knob's measurements never mix settings of the other.
func (c *vecController) Observe(rows, queries int, makespanCycles float64) {
	c.obs.Add(1)
	if !c.adaptive || rows <= 0 || queries <= 0 {
		return
	}
	cost := makespanCycles / (float64(rows) * float64(queries))
	c.cost.Store(math.Float64bits(cost))

	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.knobs[c.active]
	changed, settled := k.observe(cost)
	if changed {
		c.retunes.Add(1)
	}
	// Publish what the next pass should run with — including an in-flight
	// probe, which must be live to be measured.
	c.morsel.Store(int64(c.knobs[0].setting()))
	c.width.Store(int64(c.knobs[1].setting()))
	if settled {
		// Hand the next window to the other knob unless it is finished.
		other := 1 - c.active
		if !c.knobs[other].done {
			c.active = other
		}
	}
	if c.knobs[0].done && c.knobs[1].done {
		c.conv.Store(true)
	}
}

// Stats snapshots the controller.
func (c *vecController) Stats() VecCtlStats {
	return VecCtlStats{
		MorselRows:      c.MorselRows(),
		BatchWidth:      c.BatchWidth(),
		Observations:    c.obs.Load(),
		Retunes:         c.retunes.Load(),
		Converged:       c.conv.Load(),
		CostPerRowQuery: math.Float64frombits(c.cost.Load()),
	}
}
