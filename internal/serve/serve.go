// Package serve is the concurrent query service layer over the hwstar
// engine: it multiplexes many concurrent clients onto one simulated machine
// instead of running every query in isolation. The design operationalizes
// the SharedDB/Crescando argument the keynote builds on — under concurrency,
// the unit of execution should be a shared pass over the data, not a query:
//
//   - clients submit Requests through a bounded intake queue; when the queue
//     is full the server rejects with ErrOverloaded instead of buffering
//     without bound (admission control / backpressure);
//   - scan-shaped requests against the same registered relation are collected
//     for a batching window (or until MaxBatch) and executed as ONE
//     cooperative clock scan (scan.ParallelShared), so memory traffic is paid
//     once per batch rather than once per client;
//   - join/aggregate/query requests flow through the morsel scheduler under a
//     per-server simulated-core budget, so concurrent operations cannot
//     oversubscribe the machine;
//   - every request carries a context.Context honoured end to end: expired
//     deadlines are rejected before execution, and in-flight work stops at
//     the next morsel boundary; a server-wide RequestDeadline bounds
//     requests whose clients set none;
//   - Close drains: queued requests finish, new ones get ErrClosed.
//
// The server is also the resilience layer over a partially failing machine
// (arm faults with Options.Faults; see internal/fault):
//
//   - morsel-level transient failures and recovered worker panics are
//     retried with bounded exponential backoff plus jitter (MaxRetries,
//     RetryBackoff);
//   - a circuit breaker trips after BreakerThreshold consecutive failures:
//     while open, join/aggregate/query requests are shed with ErrDegraded,
//     and scan requests still run — from a reduced DegradedWorkers budget —
//     so the serving layer degrades instead of collapsing. After
//     BreakerCooldown one probe request half-opens the breaker; a success
//     closes it;
//   - Health() snapshots the breaker, retry, re-dispatch, and fault-log
//     state.
//
// With Options.Memory armed the server also governs memory (see
// internal/mem): join/aggregate requests win a reservation at admission or
// are shed with ErrMemoryPressure, operators charge hash-table state against
// the reservation and degrade to a grace-hash spill plan when a charge is
// denied, and finish() settles spill and peak-footprint accounting before
// releasing the reservation. Memory pressure deliberately does NOT feed the
// circuit breaker: a full budget is relieved by completions, not by shedding
// into degraded mode.
//
// With Options.Store armed the server is durable (see internal/store):
// registered tables are staged into the segment store, Checkpoint writes an
// atomically-committed manifest version while serving continues, and a
// restarted server replays the store before admitting traffic — requests
// arriving during the replay are rejected with ErrRecovering (retryable)
// until the hot set is registered. Cold-tier tables are validated at
// recovery but loaded lazily, priced through the machine's flash-bandwidth
// tier, on their first request. CheckpointInterval arms a background
// checkpointer whose encode buffers are charged against the memory governor,
// so durability work competes with queries under the same byte budget
// instead of around it.
//
// Per-server metrics (queue depth, batch sizes, latencies, modeled cycles
// per query, admission and resilience counters) are recorded in a
// metrics.Registry.
package serve

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/mem"
	"hwstar/internal/metrics"
	"hwstar/internal/queries"
	"hwstar/internal/scan"
	"hwstar/internal/sched"
	"hwstar/internal/store"
	"hwstar/internal/table"
	"hwstar/internal/trace"
)

// Op identifies a request kind.
type Op string

// Request kinds.
const (
	OpScan     Op = "scan"      // range-filter SUM over a registered relation (batchable)
	OpJoin     Op = "join"      // parallel equi-join
	OpGroupSum Op = "group-sum" // parallel GROUP BY SUM
	OpQ1       Op = "q1"        // TPC-H-Q1-shaped query over a lineitem table
	OpQ6       Op = "q6"        // TPC-H-Q6-shaped query over a lineitem table
)

// Priority classifies a request for the dispatch path. Interactive (the
// zero value) is the latency-sensitive class; batch is throughput work that
// must never starve interactive p99: batch requests queue in their own
// intake lane that the dispatcher serves only after the interactive lane,
// and batch operations are capped to Workers-InteractiveReserve simulated
// cores in total, so an interactive request never waits behind the whole
// batch backlog for a core.
type Priority string

// Priority classes. The empty string is interactive, so the zero Request
// keeps its pre-priority behaviour.
const (
	PriorityInteractive Priority = "interactive"
	PriorityBatch       Priority = "batch"
)

// batchClass reports whether p is the batch (sheddable, core-capped) class.
func (p Priority) batchClass() bool { return p == PriorityBatch }

// Lane names the dispatch lane the priority maps to ("interactive" or
// "batch"), normalizing the empty default.
func (p Priority) Lane() string {
	if p.batchClass() {
		return "batch"
	}
	return "interactive"
}

// Request is one client query. Set Op and the fields of the matching group;
// the rest stay zero.
type Request struct {
	Op Op

	// Tenant labels the request with the submitting tenant's identity.
	// Non-empty tenants get their own metric dimension (serve.tenant.<id>.*
	// counters and histograms), a per-tenant Health breakdown, tenant
	// attribution on trace spans, and — when the memory governor carries
	// per-tenant caps — a tenant-scoped memory budget. Empty means
	// unattributed (the pre-multi-tenancy behaviour).
	Tenant string

	// Priority selects the dispatch class: "" or "interactive" for the
	// latency-sensitive lane, "batch" for the core-capped throughput lane.
	Priority Priority

	// TraceID, when non-empty, is attached to the request's trace span so a
	// wire-level request id can be joined against the server's span trees.
	TraceID string

	// OpScan: one range-filter aggregation against the relation registered
	// under Table. Scan requests are the batchable shape — concurrent scans
	// of the same table share one clock-scan pass.
	Table string
	Query scan.Query

	// OpJoin: equi-join input and algorithm ("" or "auto" resolves from the
	// machine's cache hierarchy, as the Engine façade does).
	Join      join.Input
	Algorithm join.Algorithm

	// OpGroupSum: SUM(Vals) GROUP BY Keys with the given strategy.
	Keys, Vals []int64
	Strategy   agg.Strategy

	// OpQ1 / OpQ6: the lineitem table and execution engine.
	Lineitem *table.Table
	Engine   queries.Engine
}

// Response is the server's answer to one Request. The embedded hw.Cost
// reports the modeled cycles attributed to this request: for batched scans
// that is the batch makespan divided by the batch size — the amortization
// that makes sharing worthwhile.
type Response struct {
	hw.Cost

	// BatchSize is the number of requests that shared this execution
	// (1 for unbatched operations).
	BatchSize int

	// Spilled reports that the operation degraded to the simulated spill
	// tier because its table state did not fit the memory reservation;
	// SpillBytes is the simulated traffic written to that tier.
	Spilled    bool
	SpillBytes int64

	// Sum is the scan result (OpScan).
	Sum int64

	// Matches and Checksum report the join output (OpJoin).
	Matches  int64
	Checksum uint64

	// Groups is the aggregation result (OpGroupSum).
	Groups map[int64]int64

	// Q1Rows and Revenue are the analytic query results (OpQ1, OpQ6).
	Q1Rows  []queries.Q1Row
	Revenue float64

	// Partial reports that a distributed execution could not reach every
	// replica of every key range and the result covers only the surviving
	// fraction — exact over what it covers, never a silent wrong total.
	// CoveredFraction is the fraction of the table's rows the answer
	// includes (1 when Partial is false). Single-server executions never
	// set it; the shard router does, alongside errs.ErrPartialResult.
	Partial         bool
	CoveredFraction float64
}

// Options configures a Server.
type Options struct {
	// Workers is the server's simulated-core budget — the maximum number of
	// simulated cores in use across all concurrently executing operations.
	// 0 means all cores of the machine; more than the machine has is an
	// error.
	Workers int
	// OpWorkers is the number of simulated cores one join/aggregate
	// operation runs on. Defaults to half the budget (min 1) so two heavy
	// operations can overlap. Shared-scan batches always use the full
	// budget: one cooperative pass should own the machine.
	OpWorkers int
	// QueueDepth bounds the interactive intake queue; submissions beyond it
	// are rejected with ErrOverloaded. Default 256.
	QueueDepth int
	// BatchQueueDepth bounds the batch-priority intake lane. Default
	// QueueDepth. Batch traffic overflowing its lane is rejected with
	// ErrOverloaded without touching the interactive lane's headroom.
	BatchQueueDepth int
	// InteractiveReserve is the number of simulated-core tokens batch-class
	// work may never occupy: batch operations (and scan passes whose every
	// member is batch-class) hold at most Workers-InteractiveReserve tokens
	// in total, so interactive work always finds cores without waiting for
	// the batch backlog to drain. Default Workers/4 (min 1); must leave at
	// least one token for batch work (InteractiveReserve < Workers).
	InteractiveReserve int
	// BatchWindow is how long the batcher waits, after the first scan
	// request arrives, for more scans to share the pass. Default 500µs.
	BatchWindow time.Duration
	// MaxBatch caps the number of scan requests sharing one pass; reaching
	// it flushes immediately. Default 1024.
	MaxBatch int
	// ScanSegRows sets the clock-scan segment (morsel) size in rows for
	// batched scans; 0 uses the scan package default. Smaller segments mean
	// finer-grained fault isolation and re-dispatch.
	ScanSegRows int

	// Vectorized arms the batch-at-a-time, compression-aware scan path:
	// registered relations are additionally encoded into FOR/RLE-compressed
	// columns with per-block zone maps and block sums, and scan batches
	// execute with selection vectors directly on the compressed blocks,
	// decode-on-demand priced through the hw model. Scans fall back to the
	// row-at-a-time pass for tables without a current encoding. Off by
	// default.
	Vectorized bool
	// VecMorselRows is the vectorized pass's initial morsel size in rows,
	// snapped up to whole compression blocks (default 8 blocks = 8192).
	// When VecAdaptive is set this is only the controller's starting point.
	VecMorselRows int
	// VecBatchWidth is the initial number of queries evaluated as one group
	// against each decoded block (default 8, clamped to [1, 256]). Every
	// query in a group gathers into its own accumulator while the block is
	// hot, so the width sets the randomly-addressed working set of the
	// inner loop: wider groups touch the decoded data less often per
	// query, narrower groups keep the accumulator set cache-resident.
	VecBatchWidth int
	// VecAdaptive arms the online controller: every successful vectorized
	// pass feeds its modeled cost back, and the controller hill-climbs
	// morsel size and batch width at runtime (E2b's offline sweep as a
	// feedback loop). Requires Vectorized.
	VecAdaptive bool

	// Faults arms a fault injector on every scheduled operation. Nil (the
	// default) injects nothing.
	Faults *fault.Injector

	// Memory arms the memory governor: admission reserves
	// Memory.PerQueryBytes for every join/aggregate request against the
	// server-wide Memory.BudgetBytes, operators charge their hash-table
	// state against the reservation and degrade to the spill tier when it
	// cannot grow, and requests that cannot reserve at all are shed with
	// ErrMemoryPressure. The zero value disables governance. When
	// Memory.Faults is nil the server's own Faults injector drives
	// allocation-failure injection, so one seed replays compute and memory
	// chaos together.
	Memory mem.Config

	// RequestDeadline bounds requests whose context carries no deadline of
	// its own; 0 leaves them unbounded.
	RequestDeadline time.Duration

	// MaxRetries is how many times a failed operation (transient fault or
	// unabsorbed worker panic) is re-executed before the error reaches the
	// client; 0 disables retries. RetryBackoff is the base of the
	// exponential backoff between attempts (default 200µs when retries are
	// on); the actual sleep is base<<attempt, capped at 32×base, with full
	// jitter in [d/2, d).
	MaxRetries   int
	RetryBackoff time.Duration

	// JitterSeed seeds the retry-backoff jitter generator. The default (0)
	// derives a varied per-server seed, so concurrent server instances do
	// NOT draw identical jitter and synchronize their retry storms; set a
	// non-zero seed only where reproducible backoff sequences matter
	// (tests, deterministic experiments).
	JitterSeed int64

	// Trace arms query-lifecycle tracing: sampled requests record a span
	// tree (admit → queue → batch assembly → execute → retries) carrying
	// wall time and simulated cycles, retained in the tracer's bounded
	// ring. Nil disables tracing at zero cost.
	Trace *trace.Tracer

	// BreakerThreshold arms the circuit breaker: after that many
	// consecutive operation failures the breaker opens, shedding non-scan
	// requests with ErrDegraded and running scans on the DegradedWorkers
	// budget (default Workers/4, min 1). After BreakerCooldown (default
	// 10ms) one request probes half-open; success closes the breaker. 0
	// disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	DegradedWorkers  int

	// IsolatePanics, StragglerThreshold, and SchedBlockSize configure the
	// scheduler's own resilience for every operation this server runs (see
	// sched.Options).
	IsolatePanics      bool
	StragglerThreshold float64
	SchedBlockSize     int

	// Store arms the durable storage tier: an opened (and therefore already
	// crash-recovered) segment store. Tables registered on the server are
	// staged into it, Checkpoint persists them as an atomically-committed
	// manifest version, and New replays the store's tables back into the
	// serving layer before admitting traffic — Submit and Register return
	// ErrRecovering until the hot set is registered. The server does not
	// close the store; its opener does, after Server.Close. Nil (the
	// default) keeps the server memory-only.
	Store *store.Store

	// CheckpointInterval arms a background checkpointer that persists the
	// store every interval while the server runs, stopping (after a final
	// flush) at Close. Requires Store; 0 disables background checkpoints —
	// Close still flushes once when a store is armed.
	CheckpointInterval time.Duration
}

func (o Options) withDefaults(m *hw.Machine) (Options, error) {
	if o.Workers == 0 {
		o.Workers = m.TotalCores()
	}
	if o.Workers < 0 || o.Workers > m.TotalCores() {
		return o, fmt.Errorf("serve: worker budget %d out of range 1..%d: %w", o.Workers, m.TotalCores(), errs.ErrWorkersOutOfRange)
	}
	if o.OpWorkers == 0 {
		o.OpWorkers = o.Workers / 2
		if o.OpWorkers < 1 {
			o.OpWorkers = 1
		}
	}
	if o.OpWorkers < 0 || o.OpWorkers > o.Workers {
		return o, fmt.Errorf("serve: op workers %d out of range 1..%d: %w", o.OpWorkers, o.Workers, errs.ErrWorkersOutOfRange)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.BatchQueueDepth <= 0 {
		o.BatchQueueDepth = o.QueueDepth
	}
	switch {
	case o.InteractiveReserve < 0:
		o.InteractiveReserve = 0 // negative = explicitly no reserve
	case o.InteractiveReserve == 0:
		// Default: a quarter of the budget (min 1), but always leave batch
		// work at least one token — a 1-core machine cannot reserve.
		o.InteractiveReserve = o.Workers / 4
		if o.InteractiveReserve < 1 {
			o.InteractiveReserve = 1
		}
		if o.InteractiveReserve > o.Workers-1 {
			o.InteractiveReserve = o.Workers - 1
		}
	case o.InteractiveReserve >= o.Workers:
		return o, fmt.Errorf("serve: interactive reserve %d out of range 0..%d: %w", o.InteractiveReserve, o.Workers-1, errs.ErrWorkersOutOfRange)
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 500 * time.Microsecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxRetries > 0 && o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.VecAdaptive && !o.Vectorized {
		return o, fmt.Errorf("serve: adaptive controller without the vectorized path: %w", errs.ErrInvalidInput)
	}
	if o.Vectorized {
		if o.VecMorselRows <= 0 {
			o.VecMorselRows = vecMorselDefault
		}
		switch {
		case o.VecBatchWidth <= 0:
			o.VecBatchWidth = vecWidthDefault
		case o.VecBatchWidth > vecWidthMax:
			o.VecBatchWidth = vecWidthMax
		}
	}
	if o.CheckpointInterval > 0 && o.Store == nil {
		return o, fmt.Errorf("serve: checkpoint interval %s without a store: %w", o.CheckpointInterval, errs.ErrInvalidInput)
	}
	if o.BreakerThreshold > 0 {
		if o.BreakerCooldown <= 0 {
			o.BreakerCooldown = 10 * time.Millisecond
		}
		if o.DegradedWorkers <= 0 {
			o.DegradedWorkers = o.Workers / 4
			if o.DegradedWorkers < 1 {
				o.DegradedWorkers = 1
			}
		}
		if o.DegradedWorkers > o.Workers {
			return o, fmt.Errorf("serve: degraded workers %d out of range 1..%d: %w", o.DegradedWorkers, o.Workers, errs.ErrWorkersOutOfRange)
		}
	}
	return o, nil
}

// pending is one admitted request waiting for its outcome. The spans are
// nil (no-op) when tracing is off or the request fell outside the sampling
// rate: span is the request's root, queueSpan covers enqueue → dispatch,
// batchSpan covers a scan's wait while its batch assembles.
type pending struct {
	ctx  context.Context
	req  Request
	enq  time.Time
	done chan outcome

	// resv is the request's memory reservation (nil when ungoverned or for
	// scans, which carry no operator table state). Released in finish — the
	// single point every admitted request converges on.
	resv *mem.Reservation

	span      *trace.Span
	queueSpan *trace.Span
	batchSpan *trace.Span
}

type outcome struct {
	resp Response
	err  error
}

// Server is an admission-controlled, batching query service bound to one
// machine profile. All methods are safe for concurrent use.
type Server struct {
	machine *hw.Machine
	opts    Options
	reg     *metrics.Registry
	gov     *mem.Governor // nil when memory governance is off

	// intake is the interactive lane; intakeLo the batch-priority lane. The
	// dispatcher drains intake first, so batch backlog cannot impose
	// head-of-line latency on interactive requests.
	intake   chan *pending
	intakeLo chan *pending
	cores    *coreSem // priority-aware simulated-core token pool

	// brk is the circuit breaker (nil when disabled); rng feeds backoff
	// jitter deterministically.
	brk   *breaker
	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.RWMutex // guards closed, tables, vtables, and tenants
	closed  bool
	tables  map[string]*scan.Relation
	tenants map[string]struct{} // tenant ids seen, for the Health breakdown

	// Vectorized-path state (nil when Options.Vectorized is off): vtables
	// holds the compressed encodings maintained alongside tables, ctl the
	// online morsel/width controller.
	vtables map[string]*vecTable
	ctl     *vecController

	// Durable-tier state (zero when Options.Store is nil). recovering gates
	// admission while the boot replay registers the store's tables; recovered
	// closes when it finishes. stopc ends the background checkpointer and an
	// in-flight replay at Close.
	st         *store.Store
	recovering atomic.Bool
	recovered  chan struct{}
	stopc      chan struct{}

	wg sync.WaitGroup // dispatcher + in-flight executors

	// testHold, when non-nil, blocks every executor after it has acquired
	// its core tokens until the channel is closed. Tests use it to pin the
	// pipeline and exercise backpressure deterministically.
	testHold chan struct{}
}

// seedFallback distinguishes servers within one process if the entropy pool
// is somehow unreadable.
var seedFallback atomic.Int64

// entropySeed derives a per-instance jitter seed from the OS entropy pool.
// Jitter wants identity, not reproducibility: distinct servers — including
// ones in separate processes started the same instant — must not share a
// backoff phase. Reading crypto/rand once at construction is the
// seededrand-sanctioned way to get that; anything reproducible should
// thread Options.JitterSeed instead.
func entropySeed() int64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return int64(uint64(0x9E3779B97F4A7C15) ^ uint64(seedFallback.Add(1)))
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// New starts a server on the given machine profile. The returned server is
// running; stop it with Close.
func New(m *hw.Machine, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: %w", errs.ErrNilMachine)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults(m)
	if err != nil {
		return nil, err
	}
	// Backoff jitter must differ between server instances: a shared constant
	// seed makes concurrent servers draw identical jitter and synchronize
	// their retry storms, defeating the jitter's purpose (the PR 2 bug). A
	// time.Now seed is the opposite failure — servers started in the same
	// instant still collide, and chaos runs become unreproducible — so the
	// default seed comes from the OS entropy pool instead. Tests pin
	// JitterSeed for reproducibility.
	seed := opts.JitterSeed
	if seed == 0 {
		seed = entropySeed()
	}
	s := &Server{
		machine:  m,
		opts:     opts,
		reg:      metrics.NewRegistry(),
		intake:   make(chan *pending, opts.QueueDepth),
		intakeLo: make(chan *pending, opts.BatchQueueDepth),
		cores:    newCoreSem(opts.Workers, opts.Workers-opts.InteractiveReserve),
		tables:   make(map[string]*scan.Relation),
		tenants:  make(map[string]struct{}),
		rng:      rand.New(rand.NewSource(seed)),
	}
	if opts.BreakerThreshold > 0 {
		s.brk = &breaker{threshold: opts.BreakerThreshold, cooldown: opts.BreakerCooldown}
	}
	if opts.Vectorized {
		s.vtables = make(map[string]*vecTable)
		s.ctl = newVecController(opts.VecMorselRows, opts.VecBatchWidth, opts.VecAdaptive)
	}
	// Arm the memory governor when a budget is set or allocation faults are
	// requested (an unlimited governor still injects). The server's compute
	// fault injector doubles as the allocation injector unless the memory
	// config brings its own.
	mc := opts.Memory
	if mc.Faults == nil {
		mc.Faults = opts.Faults
	}
	if mc.BudgetBytes > 0 || mc.Faults != nil {
		s.gov = mem.NewGovernor(mc)
	}
	// A durable server replays its store before admitting traffic. The
	// replay runs concurrently with New returning — a restarted server binds
	// its listener immediately and sheds with ErrRecovering (retryable)
	// until the hot set is registered — so recovery time never multiplies
	// into connection-refused storms.
	if opts.Store != nil {
		s.st = opts.Store
		s.recovered = make(chan struct{})
		s.stopc = make(chan struct{})
		s.recovering.Store(true)
		s.wg.Add(1)
		go s.replayStore()
		if opts.CheckpointInterval > 0 {
			s.wg.Add(1)
			go s.checkpointLoop()
		}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// lifetimeCtx is the context of server-owned background work (the boot
// replay, the interval checkpointer): done when the server closes, never
// before. It is hand-rolled rather than derived from context.Background()
// because these goroutines have no caller to inherit cancellation from —
// their lifecycle IS the server's, and ctxfirst bans fresh root contexts in
// library code for exactly the caller-inheriting paths this is not.
type lifetimeCtx struct{ done chan struct{} }

func (c lifetimeCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c lifetimeCtx) Done() <-chan struct{}       { return c.done }
func (c lifetimeCtx) Value(any) any               { return nil }
func (c lifetimeCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

// replayStore registers the store's recovered tables into the serving layer
// and then opens admission. Hot-tier tables are resident after recovery and
// register for free; cold-tier tables are left to loadCold on first touch,
// so a cold start under load pays flash bandwidth only for tables the
// traffic actually asks for. Tables whose columns are not all int64 stay
// store-only: they are durable and Loadable, but have no scan.Relation
// shape.
func (s *Server) replayStore() {
	defer s.wg.Done()
	defer func() {
		s.recovering.Store(false)
		close(s.recovered)
	}()
	ctx := lifetimeCtx{done: s.stopc}
	for _, name := range s.st.Tables() {
		if ctx.Err() != nil {
			return
		}
		if s.st.Tier(name) != store.TierHot {
			continue
		}
		t, _, err := s.st.Load(ctx, name)
		if err != nil {
			s.reg.Counter("serve.replay_failures").Inc()
			continue
		}
		cols, ok := store.ColsFromTable(t)
		if !ok {
			continue
		}
		rel, err := scan.NewRelation(cols)
		if err != nil {
			s.reg.Counter("serve.replay_failures").Inc()
			continue
		}
		var vt *vecTable
		if s.opts.Vectorized {
			vt = newVecTable(cols)
		}
		s.mu.Lock()
		s.tables[name] = rel
		if vt != nil {
			s.vtables[name] = vt
		}
		s.mu.Unlock()
		s.reg.Counter("serve.replayed_tables").Inc()
	}
}

// checkpointLoop persists the store every CheckpointInterval until Close.
// It waits out the boot replay first: checkpointing mid-replay would write a
// manifest from a half-registered world for no benefit.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	ctx := lifetimeCtx{done: s.stopc}
	select {
	case <-s.recovered:
	case <-s.stopc:
		return
	}
	tick := time.NewTicker(s.opts.CheckpointInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-tick.C:
			if _, err := s.Checkpoint(ctx); err != nil && !errors.Is(err, context.Canceled) {
				s.reg.Counter("serve.checkpoint_failures").Inc()
			}
		}
	}
}

// WaitRecovered blocks until the server's boot replay has finished and
// admission is open, or ctx ends. It returns immediately on a memory-only
// server. Callers that must observe the full recovered table set (rather
// than retrying ErrRecovering) use it as a barrier.
func (s *Server) WaitRecovered(ctx context.Context) error {
	if s.recovered == nil {
		return nil
	}
	select {
	case <-s.recovered:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recovering reports whether the server is still replaying its durable
// state; while true, Submit and Register fail with ErrRecovering.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// Checkpoint persists every table staged in the durable store as one new
// atomically-committed manifest version, concurrent with serving: the store
// snapshots under its own lock and in-flight queries keep running against
// the resident tables. When the memory governor is armed, the checkpoint's
// encode buffers are charged against the server's byte budget under the
// "_checkpoint" tenant — a budget too full to grant them fails the
// checkpoint with ErrMemoryPressure rather than blowing the budget, and the
// interval loop simply tries again next tick. Checkpoints are single-flight;
// a concurrent call blocks on the store's checkpoint lock.
func (s *Server) Checkpoint(ctx context.Context) (store.CheckpointStats, error) {
	if s.st == nil {
		return store.CheckpointStats{}, fmt.Errorf("serve: checkpoint without a store: %w", errs.ErrInvalidInput)
	}
	var resv *mem.Reservation
	if s.gov != nil {
		var err error
		resv, err = s.gov.ReserveFor("_checkpoint", 0)
		if err != nil {
			s.reg.Counter("serve.checkpoint_mem_shed").Inc()
			return store.CheckpointStats{}, fmt.Errorf("serve: checkpoint shed at admission: %w", err)
		}
		defer resv.Release()
	}
	st, err := s.st.Checkpoint(ctx, resv)
	if err != nil {
		// The denial can come from the per-segment encode charge, not just
		// admission: count it under the same shed metric either way.
		if errors.Is(err, errs.ErrMemoryPressure) {
			s.reg.Counter("serve.checkpoint_mem_shed").Inc()
		}
		return st, err
	}
	s.reg.Counter("serve.checkpoints").Inc()
	s.reg.Counter("serve.checkpoint_segments").Add(int64(st.Segments))
	s.reg.Counter("serve.checkpoint_bytes").Add(st.Bytes)
	s.reg.Histogram("serve.checkpoint_cycles").Record(st.SimCycles)
	return st, nil
}

// Machine returns the server's hardware profile.
func (s *Server) Machine() *hw.Machine { return s.machine }

// Metrics returns the server's metrics registry. Counters:
// serve.admitted, serve.rejected, serve.invalid, serve.completed,
// serve.deadline_exceeded. Histograms: serve.batch_size, serve.latency_ms,
// serve.queue_wait_ms, serve.cycles_per_query. Gauge: serve.queue_depth.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Workers returns the server's simulated-core budget.
func (s *Server) Workers() int { return s.opts.Workers }

// Register makes a columnar relation available to scan requests under the
// given name. Registering an existing name replaces the relation (new
// batches see the new data; a batch in flight finishes on the old). On a
// durable server the columns are also staged into the segment store —
// zero-copy, so the next Checkpoint persists exactly the arrays being
// served — and registration is refused with ErrRecovering until the boot
// replay finishes (a replace racing the replay could silently lose to it).
func (s *Server) Register(name string, cols [][]int64) error {
	if s.recovering.Load() {
		return fmt.Errorf("serve: register %q: %w", name, errs.ErrRecovering)
	}
	rel, err := scan.NewRelation(cols)
	if err != nil {
		return err
	}
	if s.st != nil {
		t, err := store.TableFromCols(name, cols)
		if err != nil {
			return fmt.Errorf("serve: register %q: %w", name, err)
		}
		if err := s.st.Put(t); err != nil {
			return fmt.Errorf("serve: register %q: %w", name, err)
		}
	}
	var vt *vecTable
	if s.opts.Vectorized {
		vt = newVecTable(cols)
		s.reg.Histogram("serve.vec_compression_ratio").Record(vt.ratio())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: register %q: %w", name, errs.ErrClosed)
	}
	s.tables[name] = rel
	if vt != nil {
		s.vtables[name] = vt
	}
	return nil
}

// tenantInc bumps one tenant-dimension counter (serve.tenant.<id>.<metric>)
// and remembers the tenant id for the Health breakdown. No-op for the empty
// (unattributed) tenant.
func (s *Server) tenantInc(tenant, metric string) {
	if tenant == "" {
		return
	}
	s.noteTenant(tenant)
	s.reg.Counter("serve.tenant." + tenant + "." + metric).Inc()
}

// noteTenant records a tenant id in the seen set (read-mostly: the common
// case is a hit under the read lock).
func (s *Server) noteTenant(tenant string) {
	s.mu.RLock()
	_, ok := s.tenants[tenant]
	s.mu.RUnlock()
	if ok {
		return
	}
	s.mu.Lock()
	s.tenants[tenant] = struct{}{}
	s.mu.Unlock()
}

// tenantIDs snapshots the seen-tenant set.
func (s *Server) tenantIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	return ids
}

// SetTenantMemCap caps the named tenant's share of the server's memory
// budget: reservations for that tenant's requests fail with
// ErrMemoryPressure once the tenant's in-use bytes would pass the cap, even
// while the global budget has headroom (see mem.Governor.SetTenantCap).
// A zero or negative cap removes the tenant's cap. No-op when memory
// governance is off.
func (s *Server) SetTenantMemCap(tenant string, bytes int64) {
	s.gov.SetTenantCap(tenant, bytes)
}

// lookup returns the relation registered under name, faulting cold-tier
// tables in from the durable store on a miss.
// HasTable reports whether name is currently servable: registered in
// memory, or cold in the durable store and faulted in by the probe. The
// shard router's recovery uses it to skip stripes a revived node's own
// replay already restored.
func (s *Server) HasTable(ctx context.Context, name string) bool {
	_, ok := s.lookup(ctx, name)
	return ok
}

func (s *Server) lookup(ctx context.Context, name string) (*scan.Relation, bool) {
	s.mu.RLock()
	rel, ok := s.tables[name]
	s.mu.RUnlock()
	if ok || s.st == nil {
		return rel, ok
	}
	return s.loadCold(ctx, name)
}

// loadCold faults one cold-tier table in from the durable store: the load
// pays the machine's flash-bandwidth price (recorded, not charged to the
// triggering request — the warmed table serves every later request), and
// the decoded relation is registered so the next lookup hits memory.
func (s *Server) loadCold(ctx context.Context, name string) (*scan.Relation, bool) {
	if s.st.Tier(name) == "" {
		return nil, false // not a stored table either
	}
	t, cycles, err := s.st.Load(ctx, name)
	if err != nil {
		return nil, false
	}
	cols, ok := store.ColsFromTable(t)
	if !ok {
		return nil, false // durable but not scan-shaped
	}
	rel, err := scan.NewRelation(cols)
	if err != nil {
		return nil, false
	}
	var vt *vecTable
	if s.opts.Vectorized {
		vt = newVecTable(cols)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	// A racing loadCold may have won; keep the first registration so
	// in-flight batches and this lookup agree on one relation.
	if prior, ok := s.tables[name]; ok {
		return prior, true
	}
	s.tables[name] = rel
	if vt != nil {
		s.vtables[name] = vt
	}
	s.reg.Counter("serve.cold_loads").Inc()
	s.reg.Histogram("serve.cold_load_cycles").Record(cycles)
	return rel, true
}

// validate rejects malformed requests before they consume queue space.
func (s *Server) validate(ctx context.Context, req Request) error {
	switch req.Priority {
	case "", PriorityInteractive, PriorityBatch:
	default:
		return fmt.Errorf("serve: unknown priority %q: %w", req.Priority, errs.ErrInvalidInput)
	}
	switch req.Op {
	case OpScan:
		rel, ok := s.lookup(ctx, req.Table)
		if !ok {
			return fmt.Errorf("serve: unknown table %q: %w", req.Table, errs.ErrInvalidInput)
		}
		return req.Query.Validate(rel.NumCols())
	case OpJoin:
		switch req.Algorithm {
		case "", "auto", join.AlgNPO, join.AlgRadix:
		default:
			return fmt.Errorf("serve: unknown join algorithm %q: %w", req.Algorithm, errs.ErrInvalidInput)
		}
		return req.Join.Validate()
	case OpGroupSum:
		if len(req.Keys) != len(req.Vals) {
			return fmt.Errorf("serve: keys/vals length mismatch: %d vs %d: %w", len(req.Keys), len(req.Vals), errs.ErrInvalidInput)
		}
		switch req.Strategy {
		case agg.StrategyGlobal, agg.StrategyLocalMerge, agg.StrategyRadix:
			return nil
		default:
			return fmt.Errorf("serve: unknown aggregation strategy %q: %w", req.Strategy, errs.ErrInvalidInput)
		}
	case OpQ1, OpQ6:
		if req.Lineitem == nil {
			return fmt.Errorf("serve: %s needs a lineitem table: %w", req.Op, errs.ErrInvalidInput)
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown op %q: %w", req.Op, errs.ErrInvalidInput)
	}
}

// Submit enqueues one request and blocks until its response, the context's
// end, or rejection. A full intake queue fails fast with ErrOverloaded; a
// closed server with ErrClosed. If ctx ends while the request is queued the
// request is dropped at dispatch; if it ends mid-execution the operation
// stops at the next morsel boundary. In both cases Submit returns the
// context's error.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	// Recovery gate: a durable server replaying its store after restart has
	// an incomplete table set; admitting now would misclassify valid scans
	// as unknown-table. Shed retryably — admission opens the moment the hot
	// set is registered.
	if s.recovering.Load() {
		s.reg.Counter("serve.recovering_shed").Inc()
		s.tenantInc(req.Tenant, "shed")
		return Response{}, fmt.Errorf("serve: submit during recovery: %w", errs.ErrRecovering)
	}
	if err := s.validate(ctx, req); err != nil {
		s.reg.Counter("serve.invalid").Inc()
		s.tenantInc(req.Tenant, "invalid")
		return Response{}, err
	}
	// Degraded mode: shed everything but scans while the breaker is open.
	// Scans stay admitted — they run on the reduced worker budget.
	if s.brk != nil && req.Op != OpScan && !s.brk.allow(time.Now()) {
		s.reg.Counter("serve.shed").Inc()
		s.tenantInc(req.Tenant, "shed")
		return Response{}, fmt.Errorf("serve: circuit open, %s shed: %w", req.Op, errs.ErrDegraded)
	}
	// Memory admission: a join/aggregate request must win its reservation
	// before it may queue — admission considers memory, not just queue
	// depth. A budget too full to grant one sheds the request with
	// ErrMemoryPressure (retryable: pressure subsides as running queries
	// release). Scans reserve nothing: their state is streaming, not a
	// table. Q1/Q6 run single-threaded engines with no governed state.
	// Tenant-labelled requests reserve against their tenant's cap as well as
	// the global budget, so one tenant cannot drain the whole pool.
	var resv *mem.Reservation
	if s.gov != nil && (req.Op == OpJoin || req.Op == OpGroupSum) {
		var err error
		resv, err = s.gov.ReserveFor(req.Tenant, 0)
		if err != nil {
			s.reg.Counter("serve.mem_shed").Inc()
			s.tenantInc(req.Tenant, "mem_shed")
			return Response{}, fmt.Errorf("serve: %s shed at admission: %w", req.Op, err)
		}
	}
	if d := s.opts.RequestDeadline; d > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	p := &pending{ctx: ctx, req: req, enq: time.Now(), done: make(chan outcome, 1), resv: resv}
	// The trace (if this request is sampled) must be rooted before the
	// request enters the intake queue: the dispatcher reads the spans
	// concurrently the moment the send succeeds.
	p.span = s.opts.Trace.Start("request:" + string(req.Op))
	if req.Tenant != "" {
		p.span.SetAttr("tenant", req.Tenant)
	}
	if req.Priority.batchClass() {
		p.span.SetAttr("priority", "batch")
	}
	if req.TraceID != "" {
		p.span.SetAttr("trace_id", req.TraceID)
	}
	p.queueSpan = p.span.Child("queue")

	// Batch-priority requests queue in their own bounded lane; a full lane
	// rejects without consuming interactive headroom.
	lane, depth := s.intake, s.opts.QueueDepth
	if req.Priority.batchClass() {
		lane, depth = s.intakeLo, s.opts.BatchQueueDepth
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		p.resv.Release()
		p.span.SetAttr("status", "closed")
		p.queueSpan.End()
		p.span.End()
		return Response{}, fmt.Errorf("serve: submit: %w", errs.ErrClosed)
	}
	select {
	case lane <- p:
		s.mu.RUnlock()
		s.reg.Counter("serve.admitted").Inc()
		s.tenantInc(req.Tenant, "admitted")
		s.reg.Gauge("serve.queue_depth").Set(int64(len(s.intake) + len(s.intakeLo)))
	default:
		s.mu.RUnlock()
		p.resv.Release()
		s.reg.Counter("serve.rejected").Inc()
		s.tenantInc(req.Tenant, "rejected")
		p.span.SetAttr("status", "rejected")
		p.queueSpan.End()
		p.span.End()
		return Response{}, fmt.Errorf("serve: %s intake queue full (%d deep): %w", req.Priority.Lane(), depth, errs.ErrOverloaded)
	}

	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-ctx.Done():
		// The request may still be dispatched; the dispatcher will observe
		// the dead context and account it then.
		return Response{}, ctx.Err()
	}
}

// Close stops intake and drains: queued requests are still served, the
// background checkpointer and replay stop, then the server's goroutines
// exit. On a durable server, one final checkpoint flushes every staged
// table after the drain, so a cleanly-closed server restarts with nothing
// to lose; its error (if any) is Close's error. Safe to call once; further
// calls and further Submits return ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: close: %w", errs.ErrClosed)
	}
	s.closed = true
	close(s.intake)
	close(s.intakeLo)
	s.mu.Unlock()
	if s.stopc != nil {
		close(s.stopc)
	}
	s.wg.Wait()
	if s.st != nil {
		// The drain is over and nothing mutates the table set anymore; a
		// nil-done lifetimeCtx (never cancelled) is the right scope for the
		// shutdown flush.
		if _, err := s.Checkpoint(lifetimeCtx{}); err != nil {
			return fmt.Errorf("serve: close flush: %w", err)
		}
	}
	return nil
}

// coreSem is the server's simulated-core token pool. Unlike the plain
// channel semaphore it replaced, it is priority-aware: interactive
// acquisitions may take every token, while batch-class work is capped so it
// never holds more than batchCap tokens in total — the InteractiveReserve
// tokens always stay reachable for interactive requests. Acquisition is
// atomic (all tokens or none, under one lock), so concurrent acquirers
// cannot deadlock on partial holds.
type coreSem struct {
	mu        sync.Mutex
	cond      *sync.Cond
	free      int
	batchCap  int // max tokens batch-class work may hold in total
	batchHeld int

	// freed is a capacity-1 wakeup the dispatcher selects on while batch
	// work is parked waiting for tokens: every release pokes it, so parked
	// work is re-tried as soon as cores come back.
	freed chan struct{}
}

func newCoreSem(total, batchCap int) *coreSem {
	c := &coreSem{free: total, batchCap: batchCap, freed: make(chan struct{}, 1)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// acquireUpTo blocks until at least lo tokens are free, then takes every
// free token up to hi and returns the count taken (interactive class).
// Interactive work uses it to start on the reserved cores immediately and
// widen opportunistically, instead of waiting for in-flight batch holds to
// drain: with lo = InteractiveReserve, the wait is bounded by interactive
// work ahead of it, never by the batch backlog.
func (c *coreSem) acquireUpTo(lo, hi int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.free < lo {
		c.cond.Wait()
	}
	n := c.free
	if n > hi {
		n = hi
	}
	c.free -= n
	return n
}

// tryAcquireBatch takes n tokens for batch-class work if they are free and
// batch work stays within its cap. It never blocks: the dispatcher parks
// batch work it cannot place instead of stalling the interactive lane.
func (c *coreSem) tryAcquireBatch(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.free < n || c.batchHeld+n > c.batchCap {
		return false
	}
	c.free -= n
	c.batchHeld += n
	return true
}

// acquireBatch is the blocking form of tryAcquireBatch, used only while
// draining at close, when no interactive work can arrive anymore.
func (c *coreSem) acquireBatch(n int) {
	c.mu.Lock()
	for c.free < n || c.batchHeld+n > c.batchCap {
		c.cond.Wait()
	}
	c.free -= n
	c.batchHeld += n
	c.mu.Unlock()
}

// release returns n tokens, shrinking the batch hold when the releaser ran
// as batch class, and wakes both blocking waiters and the dispatcher's
// parked-work loop.
func (c *coreSem) release(n int, batchClass bool) {
	c.mu.Lock()
	c.free += n
	if batchClass {
		c.batchHeld -= n
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	select {
	case c.freed <- struct{}{}:
	default:
	}
}

// breaker is a consecutive-failure circuit breaker. Open means the server is
// in degraded mode; after cooldown, requests pass half-open until one
// succeeds (closing it) or fails (re-arming the cooldown).
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	consec   int
	open     bool
	openedAt time.Time
	trips    int64
}

// allow reports whether a sheddable request may proceed: always when
// closed, and as a half-open probe once the cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || now.Sub(b.openedAt) >= b.cooldown
}

// degraded reports whether the server is in degraded mode (breaker open,
// cooled down or not).
func (b *breaker) degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.consec = 0
	b.open = false
	b.mu.Unlock()
}

func (b *breaker) onFailure(now time.Time) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.open {
		b.openedAt = now // a failed half-open probe re-arms the cooldown
		return false
	}
	if b.consec >= b.threshold {
		b.open = true
		b.openedAt = now
		b.trips++
		return true
	}
	return false
}

func (b *breaker) snapshot() (consec int, open bool, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consec, b.open, b.trips
}

// newSched builds one scheduler for one operation, carrying the server's
// fault injector, resilience policy, and the request's memory reservation.
func (s *Server) newSched(workers int, resv *mem.Reservation) (*sched.Scheduler, error) {
	return sched.New(s.machine, sched.Options{
		Workers:            workers,
		Stealing:           true,
		Inject:             s.opts.Faults,
		Mem:                resv,
		IsolatePanics:      s.opts.IsolatePanics,
		StragglerThreshold: s.opts.StragglerThreshold,
		BlockSize:          s.opts.SchedBlockSize,
	})
}

// retryable classifies errors the retry loop acts on: transient morsel
// failures, worker panics, and memory pressure (which subsides as concurrent
// queries release their reservations). Validation and context errors are the
// client's problem; a simulated OOM kill is fatal by definition.
func retryable(err error) bool {
	return errors.Is(err, errs.ErrTransient) || errors.Is(err, errs.ErrWorkerPanic) ||
		errors.Is(err, errs.ErrMemoryPressure)
}

// backoff returns the sleep before retry attempt+1: exponential in the
// attempt with full jitter, capped at 32× the base.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.opts.RetryBackoff << attempt
	if max := 32 * s.opts.RetryBackoff; d > max {
		d = max
	}
	s.rngMu.Lock()
	j := s.rng.Float64()
	s.rngMu.Unlock()
	return d/2 + time.Duration(j*float64(d/2))
}

// withRetry runs op up to 1+MaxRetries times, sleeping an exponentially
// backed-off, jittered interval between attempts. Only retryable failures
// re-run; ctx ending stops the loop. Retries are annotated onto sp (nil-safe)
// and each backoff sleep is a "retry-backoff" child span, so a trace
// decomposes a slow request into execution vs waiting-to-retry.
func (s *Server) withRetry(ctx context.Context, sp *trace.Span, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || attempt >= s.opts.MaxRetries || !retryable(err) || ctx.Err() != nil {
			break
		}
		d := s.backoff(attempt)
		s.reg.Counter("serve.retries").Inc()
		s.reg.Histogram("serve.retry_backoff_ms").Record(float64(d.Microseconds()) / 1000)
		sp.Event("attempt " + strconv.Itoa(attempt+1) + " failed (" + err.Error() + "); retrying after " + d.String())
		bs := sp.Child("retry-backoff")
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
			bs.End()
		case <-ctx.Done():
			timer.Stop()
			bs.End()
			return fmt.Errorf("serve: retry abandoned: %w", ctx.Err())
		}
	}
	if err != nil && retryable(err) && s.opts.MaxRetries > 0 {
		s.reg.Counter("serve.retry_exhausted").Inc()
	}
	return err
}

// recordSched accumulates one schedule's fault handling into the server's
// counters. runErr is the schedule's outcome: a run that failed by
// surfacing a worker panic did NOT recover that final panic, so it is
// excluded from serve.panics_recovered (any earlier panics in the same run
// were absorbed by isolation and do count).
func (s *Server) recordSched(fs sched.FaultStats, runErr error) {
	recovered := fs.Panics
	if runErr != nil && errors.Is(runErr, errs.ErrWorkerPanic) {
		recovered--
	}
	if recovered > 0 {
		s.reg.Counter("serve.panics_recovered").Add(int64(recovered))
	}
	if fs.Redispatched > 0 {
		s.reg.Counter("serve.redispatched").Add(int64(fs.Redispatched))
	}
	if fs.StragglersRetired > 0 {
		s.reg.Counter("serve.stragglers_retired").Add(int64(fs.StragglersRetired))
	}
	if fs.CoresLost > 0 {
		s.reg.Counter("serve.cores_lost").Add(int64(fs.CoresLost))
	}
}

// recordPhases records a multi-phase operation's fault stats. Only the last
// phase can have surfaced opErr — earlier phases completed.
func (s *Server) recordPhases(phases []sched.Result, opErr error) {
	for i, ph := range phases {
		if i == len(phases)-1 {
			s.recordSched(ph.FaultStats, opErr)
		} else {
			s.recordSched(ph.FaultStats, nil)
		}
	}
}

// batch is the scan batch under collection: requests against one relation
// that will share a single clock-scan pass. workers is the simulated-core
// budget reserved for it — the full budget normally, the degraded budget
// while the breaker is open, the batch-capped budget when every member is
// batch-class (lo).
type batch struct {
	table   string
	rel     *scan.Relation
	vt      *vecTable // compressed encoding, nil = row-at-a-time pass
	reqs    []*pending
	workers int
	lo      bool // every member is batch-priority
}

// parkedWork is batch-class work the dispatcher could not place immediately:
// one non-scan operation (p) or one all-batch scan pass (b). Parked work
// waits, FIFO, for the core pool's freed signal. While anything is parked
// the batch lane is not consumed, so its bounded channel stays the only
// buffer and ErrOverloaded keeps meaning "the machine is behind" for batch
// traffic too.
type parkedWork struct {
	p       *pending
	b       *batch
	workers int
}

// interactiveFloor is the minimum core count an interactive placement asking
// for want cores may start with: the InteractiveReserve tokens (which batch
// work can never hold), clamped to [1, want].
func (s *Server) interactiveFloor(want int) int {
	lo := s.opts.InteractiveReserve
	if lo < 1 {
		lo = 1
	}
	if lo > want {
		lo = want
	}
	return lo
}

// dispatch is the server's single intake consumer: it collects scan requests
// into batches and hands every unit of execution to a goroutine only after
// reserving its simulated cores. Interactive work is dispatched with a
// blocking reservation — while the dispatcher waits, the interactive lane is
// the only buffer. Batch-class work never blocks the dispatcher: it is
// placed with a try-acquire against the batch core cap and parked when the
// tokens are not there, so a batch backlog cannot add head-of-line latency
// to the interactive lane.
func (s *Server) dispatch() {
	defer s.wg.Done()
	var cur *batch
	var window <-chan time.Time // nil when no batch is open
	var parked []parkedWork
	hiCh, loCh := s.intake, s.intakeLo

	// tryParked re-dispatches parked batch work, oldest first, stopping at
	// the first item the core pool still cannot take.
	tryParked := func() {
		for len(parked) > 0 {
			w := parked[0]
			if !s.cores.tryAcquireBatch(w.workers) {
				return
			}
			parked = parked[1:]
			s.wg.Add(1)
			if w.b != nil {
				go s.runBatch(w.b)
			} else {
				go s.runOne(w.p, w.workers, true)
			}
		}
	}

	flush := func() {
		if cur == nil {
			return
		}
		b := cur
		cur, window = nil, nil
		b.workers = s.opts.Workers // a shared pass owns the whole budget...
		if s.brk != nil && s.brk.degraded() {
			b.workers = s.opts.DegradedWorkers // ...unless the server is degraded
			s.reg.Counter("serve.degraded_scans").Inc()
		}
		if b.lo {
			// An all-batch pass runs core-capped and never blocks the
			// dispatcher: park it when the tokens are not there.
			if cap := s.opts.Workers - s.opts.InteractiveReserve; b.workers > cap {
				b.workers = cap
			}
			if s.cores.tryAcquireBatch(b.workers) {
				s.wg.Add(1)
				go s.runBatch(b)
			} else {
				parked = append(parked, parkedWork{b: b, workers: b.workers})
			}
			return
		}
		// An interactive pass starts as soon as the reserved cores are free
		// and widens to whatever else is idle — waiting for the full budget
		// would let in-flight batch holds add their entire runtime to
		// interactive latency.
		b.workers = s.cores.acquireUpTo(s.interactiveFloor(b.workers), b.workers)
		s.wg.Add(1)
		go s.runBatch(b)
	}

	// admit routes one dequeued request: non-scan operations to their own
	// goroutine (interactive blocking, batch try-or-park), scans into the
	// current shared batch.
	admit := func(p *pending) {
		s.reg.Gauge("serve.queue_depth").Set(int64(len(s.intake) + len(s.intakeLo)))
		p.queueSpan.End()
		s.reg.Histogram("serve.queue_wait_ms").Record(float64(time.Since(p.enq).Microseconds()) / 1000)
		if err := p.ctx.Err(); err != nil {
			s.finish(p, Response{}, fmt.Errorf("serve: dropped before dispatch: %w", err))
			return
		}
		if p.req.Op != OpScan {
			workers := s.opts.OpWorkers
			if p.req.Op == OpQ1 || p.req.Op == OpQ6 {
				workers = 1 // single-threaded query engines
			}
			if p.req.Priority.batchClass() {
				// Cap batch-class operations at the batch core budget, or
				// they could never be placed at all.
				if cap := s.opts.Workers - s.opts.InteractiveReserve; workers > cap {
					workers = cap
				}
				if s.cores.tryAcquireBatch(workers) {
					s.wg.Add(1)
					go s.runOne(p, workers, true)
				} else {
					parked = append(parked, parkedWork{p: p, workers: workers})
				}
				return
			}
			workers = s.cores.acquireUpTo(s.interactiveFloor(workers), workers)
			s.wg.Add(1)
			go s.runOne(p, workers, false)
			return
		}
		if cur != nil && cur.table != p.req.Table {
			flush() // a different relation cannot share the pass
		}
		if cur == nil {
			rel, ok := s.lookup(p.ctx, p.req.Table)
			if !ok { // table dropped since validation
				s.finish(p, Response{}, fmt.Errorf("serve: unknown table %q: %w", p.req.Table, errs.ErrInvalidInput))
				return
			}
			cur = &batch{table: p.req.Table, rel: rel, vt: s.vecFor(p.req.Table, rel), lo: true}
			window = time.After(s.opts.BatchWindow)
		}
		// A single interactive member promotes the whole pass: sharing the
		// scan with batch tenants is free, delaying an interactive member
		// behind the batch core cap is not.
		cur.lo = cur.lo && p.req.Priority.batchClass()
		// The batch-assembly span covers the wait from joining the batch
		// until the shared pass starts (window + core reservation).
		p.batchSpan = p.span.Child("batch-assembly")
		cur.reqs = append(cur.reqs, p)
		if len(cur.reqs) >= s.opts.MaxBatch {
			flush()
		}
	}

	for {
		// Biased drain: take everything the interactive lane has before
		// touching the batch lane, so interactive dispatch order never
		// depends on batch arrival order.
		select {
		case p, ok := <-hiCh:
			if ok {
				admit(p)
				continue
			}
			hiCh = nil
		default:
		}
		if hiCh == nil && loCh == nil {
			// Both lanes closed: drain. Parked batch work still runs — with
			// a blocking reservation now, since nothing else can arrive.
			flush()
			for _, w := range parked {
				s.cores.acquireBatch(w.workers)
				s.wg.Add(1)
				if w.b != nil {
					go s.runBatch(w.b)
				} else {
					go s.runOne(w.p, w.workers, true)
				}
			}
			return
		}
		// While batch work is parked the batch lane is left untouched and
		// the freed channel joins the select, so parked work resumes the
		// moment cores free up.
		lo := loCh
		var freed chan struct{}
		if len(parked) > 0 {
			lo = nil
			freed = s.cores.freed
		}
		select {
		case p, ok := <-hiCh:
			if !ok {
				hiCh = nil
				continue
			}
			admit(p)
		case p, ok := <-lo:
			if !ok {
				loCh = nil
				continue
			}
			admit(p)
		case <-freed:
			tryParked()
		case <-window:
			flush()
		}
	}
}

// runBatch executes one shared clock scan for every live request of the
// batch and distributes per-query results. The modeled cost attributed to
// each request is the batch makespan divided by the batch size.
func (s *Server) runBatch(b *batch) {
	defer s.wg.Done()
	defer s.cores.release(b.workers, b.lo)
	if c := s.testHold; c != nil {
		<-c
	}

	live := make([]*pending, 0, len(b.reqs))
	for _, p := range b.reqs {
		p.batchSpan.End() // assembly is over: the pass has its cores
		if err := p.ctx.Err(); err != nil {
			s.finish(p, Response{}, fmt.Errorf("serve: dropped from batch: %w", err))
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	qs := make([]scan.Query, len(live))
	for i, p := range live {
		qs[i] = p.req.Query
	}
	var sums []int64
	var schedRes sched.Result
	// The batch runs for all its members; individual deadlines were honoured
	// at collection time. Batch members share fate from here, including
	// retries: a transient morsel failure re-runs the whole pass. Cycles
	// burned by failed attempts are real machine work and stay charged to
	// the batch — the amortized cost reports what the request actually cost,
	// not just its final successful pass.
	var burned float64
	// One member — the first — is the trace leader: its per-attempt "execute"
	// span hosts the shared pass's full span tree (clock scan, per-worker
	// breakdown) and carries the whole batch makespan. The other members get
	// one "execute" span bracketing the shared execution (their request IS
	// waiting on that pass, retries included) with their amortized share of
	// the cycles — every trace decomposes, without N copies of the subtree.
	leader := live[0]
	execs := make([]*trace.Span, len(live))
	for i, p := range live {
		if p != leader {
			execs[i] = p.span.Child("execute")
		}
	}
	// The shared pass serves every member of the batch, so it must not die
	// with any single member's context — but severing it from the leader
	// entirely (context.Background) would also drop the leader's values.
	// WithoutCancel keeps the values and detaches only cancellation.
	passCtx := context.WithoutCancel(leader.ctx)
	err := s.withRetry(passCtx, leader.span, func() error {
		sch, err := s.newSched(b.workers, nil) // scans are streaming: no governed state
		if err != nil {
			return err
		}
		exec := leader.span.Child("execute")
		if b.vt != nil {
			// Vectorized compression-aware pass; the row-at-a-time clock
			// scan remains the fallback for unencoded tables.
			sums, schedRes, err = s.vecSharedScan(trace.NewContext(passCtx, exec), b.vt, qs, sch)
		} else {
			sums, schedRes, err = scan.ParallelShared(trace.NewContext(passCtx, exec), b.rel, qs, scan.SharedOptions{UseQueryIndex: true}, sch, s.opts.ScanSegRows)
		}
		exec.AddCycles(schedRes.MakespanCycles)
		exec.End()
		s.recordSched(schedRes.FaultStats, err)
		if err != nil {
			burned += schedRes.MakespanCycles
		}
		return err
	})
	if err == nil {
		per := (schedRes.MakespanCycles + burned) / float64(len(live))
		s.reg.Histogram("serve.batch_size").Record(float64(len(live)))
		s.reg.Histogram("serve.cycles_per_query").Record(per)
		batchSize := strconv.Itoa(len(live))
		for i, p := range live {
			p.span.SetAttr("batch_size", batchSize)
			execs[i].AddCycles(per)
			execs[i].End()
			s.finish(p, Response{Cost: hw.Cost{SimCycles: per}, BatchSize: len(live), Sum: sums[i]}, nil)
		}
		return
	}
	// Even a failed batch reports the cycles it burned, so clients (and the
	// chaos experiment) can account the cost of failure.
	per := burned / float64(len(live))
	for i, p := range live {
		execs[i].AddCycles(per)
		execs[i].End()
		s.finish(p, Response{Cost: hw.Cost{SimCycles: per}}, err)
	}
}

// runOne executes one non-batchable request on its reserved cores.
// batchClass records which class the cores were acquired under, so the
// release keeps the batch hold accounting straight.
func (s *Server) runOne(p *pending, workers int, batchClass bool) {
	defer s.wg.Done()
	defer s.cores.release(workers, batchClass)
	if c := s.testHold; c != nil {
		<-c
	}
	if err := p.ctx.Err(); err != nil {
		s.finish(p, Response{}, fmt.Errorf("serve: dropped before execution: %w", err))
		return
	}
	var resp Response
	err := s.withRetry(p.ctx, p.span, func() error {
		exec := p.span.Child("execute")
		var err error
		resp, err = s.execute(trace.NewContext(p.ctx, exec), p.req, workers, p.resv)
		exec.AddCycles(resp.SimCycles)
		exec.End()
		return err
	})
	if err == nil {
		s.reg.Histogram("serve.cycles_per_query").Record(resp.SimCycles)
	}
	s.finish(p, resp, err)
}

// execute runs one join/aggregate/query request under the client's context.
// resv is the request's memory reservation (nil when ungoverned); join and
// aggregate operators charge their table state against it and spill when a
// charge is denied.
func (s *Server) execute(ctx context.Context, req Request, workers int, resv *mem.Reservation) (Response, error) {
	switch req.Op {
	case OpJoin:
		sch, err := s.newSched(workers, resv)
		if err != nil {
			return Response{}, err
		}
		algo := req.Algorithm
		if algo == "" || algo == "auto" {
			if int64(len(req.Join.BuildKeys))*34 > s.machine.LLC().SizeBytes {
				algo = join.AlgRadix
			} else {
				algo = join.AlgNPO
			}
		}
		var res join.ParallelResult
		if algo == join.AlgRadix {
			res, err = join.ParallelRadix(ctx, req.Join, join.RadixOptions{}, sch, s.machine, 0)
		} else {
			res, err = join.ParallelNPO(ctx, req.Join, sch, 0)
		}
		s.recordPhases(res.Phases, err)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: res.MakespanCycles}, BatchSize: 1, Matches: res.Matches, Checksum: res.Checksum, Spilled: res.Spilled, SpillBytes: res.SpillBytes}, nil
	case OpGroupSum:
		sch, err := s.newSched(workers, resv)
		if err != nil {
			return Response{}, err
		}
		res, err := agg.Parallel(ctx, req.Keys, req.Vals, req.Strategy, sch, s.machine, 0)
		s.recordPhases(res.Phases, err)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: res.MakespanCycles}, BatchSize: 1, Groups: res.Groups, Spilled: res.Spilled, SpillBytes: res.SpillBytes}, nil
	case OpQ1:
		acct := hw.NewAccount(s.machine, hw.DefaultContext())
		rows, err := queries.Q1(req.Engine, req.Lineitem, queries.DefaultQ1(), acct)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: acct.TotalCycles()}, BatchSize: 1, Q1Rows: rows}, nil
	case OpQ6:
		acct := hw.NewAccount(s.machine, hw.DefaultContext())
		rev, err := queries.Q6(req.Engine, req.Lineitem, queries.DefaultQ6(), acct)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: acct.TotalCycles()}, BatchSize: 1, Revenue: rev}, nil
	default:
		return Response{}, fmt.Errorf("serve: unknown op %q: %w", req.Op, errs.ErrInvalidInput)
	}
}

// finish delivers the outcome and accounts it: context-terminated requests
// count as deadline-exceeded, successful ones record completion latency and
// close the breaker's failure streak, machine-level failures feed the
// breaker. It is the single convergence point for admitted requests, so it
// also settles the memory reservation: spill and peak-footprint accounting,
// then release back to the governor.
func (s *Server) finish(p *pending, resp Response, err error) {
	tenant := p.req.Tenant
	switch {
	case err == nil:
		s.reg.Counter("serve.completed").Inc()
		lat := float64(time.Since(p.enq).Microseconds()) / 1000
		s.reg.Histogram("serve.latency_ms").Record(lat)
		if tenant != "" {
			s.tenantInc(tenant, "completed")
			s.reg.Histogram("serve.tenant." + tenant + ".latency_ms").Record(lat)
			s.reg.Histogram("serve.tenant." + tenant + ".cycles_per_query").Record(resp.SimCycles)
		}
		p.span.SetAttr("status", "ok")
		if s.brk != nil {
			s.brk.onSuccess()
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("serve.deadline_exceeded").Inc()
		s.tenantInc(tenant, "deadline_exceeded")
		p.span.SetAttr("status", "deadline")
	default:
		s.reg.Counter("serve.failed").Inc()
		s.tenantInc(tenant, "failed")
		p.span.SetAttr("status", "failed")
		if errors.Is(err, errs.ErrOOMKilled) {
			s.reg.Counter("serve.oom_killed").Inc()
		}
		// Memory pressure is the governor's domain, not the machine's: it
		// does not feed the breaker. Tripping into degraded mode over a full
		// budget would shed the very load whose completion frees it.
		if s.brk != nil && retryable(err) && !errors.Is(err, errs.ErrMemoryPressure) {
			if s.brk.onFailure(time.Now()) {
				s.reg.Counter("serve.breaker_trips").Inc()
			}
		}
	}
	if p.resv != nil {
		if spills, spillB := p.resv.Spills(); spills > 0 {
			s.reg.Counter("serve.spills").Add(spills)
			s.reg.Counter("serve.spill_bytes").Add(spillB)
			if tenant != "" {
				s.noteTenant(tenant)
				s.reg.Counter("serve.tenant." + tenant + ".spills").Add(spills)
				s.reg.Counter("serve.tenant." + tenant + ".spill_bytes").Add(spillB)
			}
			p.span.SetAttr("spilled", "true")
		}
		p.span.AddBytes(p.resv.PeakBytes())
		p.resv.Release()
		gs := s.gov.Stats()
		s.reg.Gauge("serve.mem_in_use").Set(gs.InUseBytes)
		s.reg.Gauge("serve.mem_reservations").Set(int64(gs.Reservations))
	}
	// Close out the request's trace. queueSpan/batchSpan ends are idempotent
	// no-ops on the normal path; they matter for requests dropped before
	// dispatch or mid-assembly.
	p.queueSpan.End()
	p.batchSpan.End()
	p.span.End()
	p.done <- outcome{resp: resp, err: err}
}

// Health is a point-in-time snapshot of the server's resilience state.
type Health struct {
	// State is "ok" or "degraded" (circuit breaker open).
	State string
	// QueueDepth is the current intake backlog; ConsecutiveFailures the
	// breaker's failure streak.
	QueueDepth          int
	ConsecutiveFailures int

	// Admission and outcome counters.
	Admitted, Completed, Failed, Rejected, Shed, DeadlineExceeded int64

	// Resilience counters: retry attempts, operations that exhausted their
	// retry budget, breaker trips, morsels re-dispatched away from sick
	// workers, recovered panics, stragglers retired, cores lost.
	Retries, RetryExhausted, BreakerTrips       int64
	Redispatched, PanicsRecovered               int64
	StragglersRetired, CoresLost, DegradedScans int64

	// Memory-governance counters: requests shed at admission for lack of
	// budget, operator spill decisions and simulated spill-tier bytes, and
	// simulated OOM kills (KillOnOverage mode only).
	MemShed, Spills, SpillBytes, OOMKilled int64

	// Memory is the governor's snapshot (zero when governance is off).
	Memory mem.Stats

	// Faults counts injected faults by class, from the armed injector's log
	// (nil when no injector is armed).
	Faults map[string]int64

	// Durability state (all zero on a memory-only server). Recovering means
	// the boot replay is still running and admission is closed; Recovery is
	// the store's crash-recovery report (manifest version restored, fallback
	// and corruption counts, bytes validated); LastCheckpoint the most recent
	// checkpoint's shape. Checkpoints/CheckpointFailures/CheckpointMemShed
	// count background and explicit checkpoint outcomes; ColdLoads and
	// ReplayedTables count tables faulted in from the flash tier and tables
	// re-registered at boot; RecoveringShed counts requests rejected at the
	// recovery gate.
	Durable                                        bool
	Recovering                                     bool
	Recovery                                       store.RecoveryStats
	LastCheckpoint                                 store.CheckpointStats
	StoreVersion                                   uint64
	Checkpoints, CheckpointFailures                int64
	CheckpointMemShed, ColdLoads                   int64
	ReplayedTables, ReplayFailures, RecoveringShed int64

	// Vectorized-path state (all zero when Options.Vectorized is off).
	// VecPasses counts vectorized shared-scan passes; the block counters
	// decompose their outcomes (zone-map prunes, O(1) precomputed-sum
	// folds, payload decodes); Ctl is the online controller's snapshot.
	Vectorized                                     bool
	VecPasses                                      int64
	VecBlocksPruned, VecFastSums, VecBlocksScanned int64
	Ctl                                            VecCtlStats

	// Tenants breaks the admission/outcome counters down by tenant id, for
	// every tenant that has submitted at least one labelled request. Nil
	// when no request carried a tenant.
	Tenants map[string]TenantHealth
}

// TenantHealth is one tenant's slice of the server's counters and latency
// distribution. It is assembled from the per-tenant metric dimension — no
// mutexed state is copied to produce it.
type TenantHealth struct {
	// Admission and outcome counters for this tenant's requests.
	Admitted, Completed, Failed, Rejected, Shed, MemShed int64
	DeadlineExceeded, Invalid                            int64

	// Spill accounting for this tenant's governed operators.
	Spills, SpillBytes int64

	// LatencyMs summarizes the tenant's completed-request latency;
	// CyclesPerQuery the modeled cost distribution.
	LatencyMs, CyclesPerQuery metrics.HistogramStats

	// MemInUseBytes and MemCapBytes report the tenant's position against
	// its memory cap (both 0 when the governor carries no cap for it).
	MemInUseBytes, MemCapBytes int64
}

// Health snapshots the server's resilience state: breaker position, failure
// streak, retry/re-dispatch counters, and the fault injector's log counts.
func (s *Server) Health() Health {
	c := s.reg.Counters()
	h := Health{
		State:             "ok",
		QueueDepth:        len(s.intake),
		Admitted:          c["serve.admitted"],
		Completed:         c["serve.completed"],
		Failed:            c["serve.failed"],
		Rejected:          c["serve.rejected"],
		Shed:              c["serve.shed"],
		DeadlineExceeded:  c["serve.deadline_exceeded"],
		Retries:           c["serve.retries"],
		RetryExhausted:    c["serve.retry_exhausted"],
		BreakerTrips:      c["serve.breaker_trips"],
		Redispatched:      c["serve.redispatched"],
		PanicsRecovered:   c["serve.panics_recovered"],
		StragglersRetired: c["serve.stragglers_retired"],
		CoresLost:         c["serve.cores_lost"],
		DegradedScans:     c["serve.degraded_scans"],
		MemShed:           c["serve.mem_shed"],
		Spills:            c["serve.spills"],
		SpillBytes:        c["serve.spill_bytes"],
		OOMKilled:         c["serve.oom_killed"],
		Memory:            s.gov.Stats(),
		Faults:            s.opts.Faults.CountsInt64(),
	}
	if s.brk != nil {
		consec, open, _ := s.brk.snapshot()
		h.ConsecutiveFailures = consec
		if open {
			h.State = "degraded"
		}
	}
	if s.st != nil {
		h.Durable = true
		h.Recovering = s.recovering.Load()
		h.Recovery = s.st.Recovery()
		h.LastCheckpoint = s.st.LastCheckpoint()
		h.StoreVersion = s.st.Version()
		h.Checkpoints = c["serve.checkpoints"]
		h.CheckpointFailures = c["serve.checkpoint_failures"]
		h.CheckpointMemShed = c["serve.checkpoint_mem_shed"]
		h.ColdLoads = c["serve.cold_loads"]
		h.ReplayedTables = c["serve.replayed_tables"]
		h.ReplayFailures = c["serve.replay_failures"]
		h.RecoveringShed = c["serve.recovering_shed"]
		if h.Recovering {
			h.State = "recovering"
		}
	}
	if s.ctl != nil {
		h.Vectorized = true
		h.VecPasses = c["serve.vec_passes"]
		h.VecBlocksPruned = c["serve.vec_blocks_pruned"]
		h.VecFastSums = c["serve.vec_block_fast_sums"]
		h.VecBlocksScanned = c["serve.vec_blocks_scanned"]
		h.Ctl = s.ctl.Stats()
	}
	if ids := s.tenantIDs(); len(ids) > 0 {
		h.Tenants = make(map[string]TenantHealth, len(ids))
		for _, id := range ids {
			h.Tenants[id] = s.tenantHealth(id, c)
		}
	}
	return h
}

// TenantHealth returns one tenant's Health slice (zero for a tenant the
// server has never seen).
func (s *Server) TenantHealth(tenant string) TenantHealth {
	return s.tenantHealth(tenant, s.reg.Counters())
}

// tenantHealth assembles one tenant's breakdown from the counter snapshot c
// and the per-tenant histograms.
func (s *Server) tenantHealth(tenant string, c map[string]int64) TenantHealth {
	p := "serve.tenant." + tenant + "."
	th := TenantHealth{
		Admitted:         c[p+"admitted"],
		Completed:        c[p+"completed"],
		Failed:           c[p+"failed"],
		Rejected:         c[p+"rejected"],
		Shed:             c[p+"shed"],
		MemShed:          c[p+"mem_shed"],
		DeadlineExceeded: c[p+"deadline_exceeded"],
		Invalid:          c[p+"invalid"],
		Spills:           c[p+"spills"],
		SpillBytes:       c[p+"spill_bytes"],
		LatencyMs:        s.reg.Histogram(p + "latency_ms").Stats(),
		CyclesPerQuery:   s.reg.Histogram(p + "cycles_per_query").Stats(),
	}
	if gs := s.gov.Stats(); gs.TenantInUse != nil {
		th.MemInUseBytes = gs.TenantInUse[tenant]
		th.MemCapBytes = gs.TenantCaps[tenant]
	}
	return th
}
